// Quickstart: compress and decompress an MD trajectory with MDZ.
//
// Demonstrates the one-shot trajectory API: pick an error bound, compress,
// decompress, and check the guarantee.

#include <cmath>
#include <cstdio>

#include "core/mdz.h"
#include "datagen/generators.h"

int main() {
  // 1. Get some particle data. Here: a synthetic copper crystal; in a real
  //    application this is your own M x N x {x,y,z} trajectory.
  mdz::datagen::GeneratorOptions gen;
  gen.size_scale = 0.1;
  const mdz::core::Trajectory trajectory = mdz::datagen::MakeCopperB(gen);
  std::printf("dataset: %s, %zu snapshots x %zu atoms (%.1f MB raw)\n",
              trajectory.name.c_str(), trajectory.num_snapshots(),
              trajectory.num_particles(), trajectory.raw_bytes() / 1e6);

  // 2. Configure the compressor. The defaults are the paper's: adaptive
  //    method selection (ADP), value-range-relative error bound, BS=10.
  mdz::core::Options options;
  options.error_bound = 1e-3;  // 0.1% of the value range per axis

  // 3. Compress all three axes.
  auto compressed = mdz::core::CompressTrajectory(trajectory, options);
  if (!compressed.ok()) {
    std::fprintf(stderr, "compression failed: %s\n",
                 compressed.status().ToString().c_str());
    return 1;
  }
  std::printf("compressed: %.3f MB  (ratio %.1fx)\n",
              compressed->total_bytes() / 1e6,
              static_cast<double>(trajectory.raw_bytes()) /
                  compressed->total_bytes());

  // 4. Decompress and verify the error bound.
  auto decoded = mdz::core::DecompressTrajectory(*compressed);
  if (!decoded.ok()) {
    std::fprintf(stderr, "decompression failed: %s\n",
                 decoded.status().ToString().c_str());
    return 1;
  }

  double max_error = 0.0;
  for (size_t s = 0; s < trajectory.num_snapshots(); ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      const auto& orig = trajectory.snapshots[s].axes[axis];
      const auto& dec = decoded->snapshots[s].axes[axis];
      for (size_t i = 0; i < orig.size(); ++i) {
        max_error = std::max(max_error, std::fabs(orig[i] - dec[i]));
      }
    }
  }
  std::printf("max reconstruction error: %.6f (per-axis bound: eps * range)\n",
              max_error);
  std::printf("done.\n");
  return 0;
}
