// How MDZ's adaptive selector (ADP) behaves across data regimes: the same
// Options compress four very different datasets, and the selector picks a
// different prediction strategy for each (paper Section VI-D).

#include <cstdio>

#include "core/mdz.h"
#include "datagen/generators.h"

int main() {
  std::printf("%-10s %-10s %-10s %-12s %-14s\n", "Dataset", "Axis", "CR",
              "Method", "Escapes");

  for (const char* name : {"Copper-B", "Pt", "ADK", "LJ"}) {
    mdz::datagen::GeneratorOptions gen;
    gen.size_scale = 0.1;
    auto traj = mdz::datagen::MakeByName(name, gen);
    if (!traj.ok()) return 1;

    for (int axis = 0; axis < 3; ++axis) {
      mdz::core::Options options;  // method = kAdaptive by default
      auto compressor = mdz::core::FieldCompressor::Create(
          traj->num_particles(), options);
      if (!compressor.ok()) return 1;
      for (const auto& snap : traj->snapshots) {
        if (!(*compressor)->Append(snap.axes[axis]).ok()) return 1;
      }
      if (!(*compressor)->Finish().ok()) return 1;

      const auto& stats = (*compressor)->stats();
      std::printf("%-10s %-10c %-10.1f %-12s %-14zu\n", name, "xyz"[axis],
                  stats.compression_ratio(),
                  std::string(mdz::core::MethodName(stats.current_method))
                      .c_str(),
                  stats.escape_count);
    }
  }
  std::printf(
      "\nNote how the selector lands on VQ for vibrating crystals, MT for\n"
      "temporally frozen systems, and time-based methods for liquids —\n"
      "without any per-dataset configuration.\n");
  return 0;
}
