// Random access into a compressed trajectory: decode single snapshots out of
// the middle of a long stream without decompressing what precedes them.
//
// This is the practical payoff of MDZ's buffer-independent design (paper
// Section VI: VQ snapshots decode independently; MT/VQT buffers depend only
// on the stream's first buffer).

#include <cstdio>

#include "core/mdz.h"
#include "datagen/generators.h"
#include "util/timer.h"

int main() {
  mdz::datagen::GeneratorOptions gen;
  gen.size_scale = 0.25;
  const mdz::core::Trajectory traj = mdz::datagen::MakeHeliumB(gen);
  std::printf("dataset: %s, %zu snapshots x %zu atoms\n", traj.name.c_str(),
              traj.num_snapshots(), traj.num_particles());

  mdz::core::Options options;
  auto compressor = mdz::core::FieldCompressor::Create(traj.num_particles(),
                                                       options);
  if (!compressor.ok()) return 1;
  for (const auto& snap : traj.snapshots) {
    if (!(*compressor)->Append(snap.axes[0]).ok()) return 1;
  }
  if (!(*compressor)->Finish().ok()) return 1;
  const std::vector<uint8_t> stream = (*compressor)->TakeOutput();
  std::printf("compressed x axis: %.2f MB\n\n", stream.size() / 1e6);

  auto decompressor = mdz::core::FieldDecompressor::Open(stream);
  if (!decompressor.ok()) return 1;

  // Full sequential decode (baseline cost).
  mdz::WallTimer timer;
  std::vector<double> snapshot;
  size_t count = 0;
  while (true) {
    auto more = (*decompressor)->Next(&snapshot);
    if (!more.ok() || !*more) break;
    ++count;
  }
  const double sequential = timer.ElapsedSeconds();
  std::printf("sequential decode of %zu snapshots: %.3f s\n", count,
              sequential);

  // Random access: grab 20 snapshots scattered through the stream.
  auto seeker = mdz::core::FieldDecompressor::Open(stream);
  if (!seeker.ok()) return 1;
  timer.Reset();
  double sum = 0.0;
  for (size_t k = 0; k < 20; ++k) {
    const size_t target = (k * 7919) % count;  // pseudo-random order
    if (!(*seeker)->SeekToSnapshot(target).ok()) return 1;
    auto more = (*seeker)->Next(&snapshot);
    if (!more.ok() || !*more) return 1;
    sum += snapshot[0];
  }
  const double seeked = timer.ElapsedSeconds();
  // The naive alternative to seeking is a fresh sequential decode (up to the
  // target) per read; compare against a full pass per read.
  std::printf("20 random-access reads:           %.4f s\n", seeked);
  std::printf("20 naive full decodes would take: %.4f s  (~%.0fx slower)\n",
              20.0 * sequential, 20.0 * sequential / seeked);
  std::printf("(checksum of reads: %.4f)\n", sum);
  std::printf(
      "\nEach read decodes only its own buffer (plus, once, buffer 0 for the\n"
      "MT predictor) — no rollback through the whole trajectory.\n");
  return 0;
}
