// In-situ compression during a molecular dynamics run (paper Section VII-D).
//
// Runs this repository's Lennard-Jones engine and dumps the trajectory twice
// in parallel — raw binary and MDZ-compressed — showing that the streaming
// FieldCompressor keeps up with the simulation and shrinks the dump.

#include <cstdio>

#include "md/dump.h"
#include "md/lj_simulation.h"
#include "util/timer.h"

int main() {
  mdz::md::LjOptions lj;
  lj.cells = 8;  // 2048 atoms
  auto sim = mdz::md::LjSimulation::Create(lj);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return 1;
  }
  std::printf("LJ liquid: %zu atoms, rho*=%.4f, T*=%.3f\n", sim->num_atoms(),
              lj.density, lj.temperature);

  auto raw = mdz::md::RawDumpWriter::Open("/tmp/lj_raw.bin");
  mdz::core::Options mdz_options;  // ADP, eps=1e-3, BS=10
  auto mdz =
      mdz::md::MdzDumpWriter::Open("/tmp/lj_mdz.bin", sim->num_atoms(),
                                   mdz_options);
  if (!raw.ok() || !mdz.ok()) {
    std::fprintf(stderr, "cannot open dump files\n");
    return 1;
  }

  const int snapshots = 100;
  const int steps_between_dumps = 10;
  mdz::WallTimer timer;
  for (int snap = 0; snap < snapshots; ++snap) {
    sim->Run(steps_between_dumps);
    if (!(*raw)->WriteSnapshot(sim->positions()).ok() ||
        !(*mdz)->WriteSnapshot(sim->positions()).ok()) {
      std::fprintf(stderr, "dump failed\n");
      return 1;
    }
  }
  if (!(*raw)->Finish().ok() || !(*mdz)->Finish().ok()) return 1;
  const double total = timer.ElapsedSeconds();

  std::printf("\nran %d steps, dumped %d snapshots in %.2f s\n",
              snapshots * steps_between_dumps, snapshots, total);
  std::printf("  force+integrate time: %.2f s\n",
              sim->force_seconds() + sim->integrate_seconds());
  std::printf("  raw dump:  %8.2f MB in %.3f s\n",
              (*raw)->bytes_written() / 1e6, (*raw)->output_seconds());
  std::printf("  MDZ dump:  %8.2f MB in %.3f s  (%.1fx smaller)\n",
              (*mdz)->bytes_written() / 1e6, (*mdz)->output_seconds(),
              static_cast<double>((*raw)->bytes_written()) /
                  (*mdz)->bytes_written());
  std::remove("/tmp/lj_raw.bin");
  std::remove("/tmp/lj_mdz.bin");
  return 0;
}
