// Post-hoc analysis on compressed trajectories: verify that the physics
// (radial distribution function) survives lossy compression at different
// error bounds, as in paper Fig. 14.

#include <cstdio>

#include "analysis/metrics.h"
#include "analysis/rdf.h"
#include "core/mdz.h"
#include "datagen/generators.h"

int main() {
  mdz::datagen::GeneratorOptions gen;
  gen.size_scale = 0.05;
  const mdz::core::Trajectory trajectory = mdz::datagen::MakeCopperB(gen);

  mdz::analysis::RdfOptions rdf_options;
  rdf_options.r_max = 6.0;
  auto reference = mdz::analysis::ComputeRdf(trajectory, rdf_options);
  if (!reference.ok()) {
    std::fprintf(stderr, "%s\n", reference.status().ToString().c_str());
    return 1;
  }
  double peak = 0.0;
  for (double g : reference->g) peak = std::max(peak, g);
  std::printf("%s: RDF first-shell peak g(r) = %.2f\n\n",
              trajectory.name.c_str(), peak);

  std::printf("%-10s %-10s %-12s %-12s %-12s\n", "eps", "CR", "MaxError",
              "NRMSE", "RDF_dev");
  for (double eb : {1e-2, 1e-3, 1e-4, 1e-5}) {
    mdz::core::Options options;
    options.error_bound = eb;
    auto compressed = mdz::core::CompressTrajectory(trajectory, options);
    if (!compressed.ok()) continue;
    auto decoded = mdz::core::DecompressTrajectory(*compressed);
    if (!decoded.ok()) continue;
    decoded->box = trajectory.box;

    const auto metrics =
        mdz::analysis::ComputeAxisErrorMetrics(trajectory, *decoded, 0);
    auto rdf = mdz::analysis::ComputeRdf(*decoded, rdf_options);
    if (!rdf.ok()) continue;

    std::printf("%-10.0e %-10.1f %-12.5f %-12.2e %-12.4f\n", eb,
                static_cast<double>(trajectory.raw_bytes()) /
                    compressed->total_bytes(),
                metrics.max_error, metrics.nrmse,
                mdz::analysis::RdfMaxDeviation(*reference, *rdf));
  }
  std::printf(
      "\nPick the loosest bound whose RDF deviation your analysis tolerates:\n"
      "that is the storage budget MDZ needs for physics-preserving output.\n");
  return 0;
}
