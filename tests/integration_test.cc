// End-to-end tests: generated datasets -> compression (MDZ + baselines) ->
// decompression -> error-bound and physics checks. These mirror the paper's
// evaluation pipeline in miniature.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "analysis/rdf.h"
#include "baselines/compressor_interface.h"
#include "core/mdz.h"
#include "datagen/generators.h"

namespace mdz {
namespace {

datagen::GeneratorOptions Tiny() {
  datagen::GeneratorOptions opts;
  opts.size_scale = 0.05;
  return opts;
}

TEST(IntegrationTest, MdzRoundTripsEveryDatasetWithinBound) {
  for (const auto& info : datagen::AllMdDatasets()) {
    const core::Trajectory traj = info.make(Tiny());
    core::Options options;
    options.error_bound = 1e-3;

    auto compressed = core::CompressTrajectory(traj, options);
    ASSERT_TRUE(compressed.ok()) << info.name;
    auto decoded = core::DecompressTrajectory(*compressed);
    ASSERT_TRUE(decoded.ok()) << info.name;

    for (int axis = 0; axis < 3; ++axis) {
      const auto metrics =
          analysis::ComputeAxisErrorMetrics(traj, *decoded, axis);
      // Value-range-relative bound resolved on the first buffer can differ
      // slightly from the global range; allow 2x headroom.
      EXPECT_LE(metrics.max_error, 2e-3 * metrics.value_range + 1e-12)
          << info.name << " axis " << axis;
    }

    const double ratio = analysis::CompressionRatio(
        traj.raw_bytes(), compressed->total_bytes());
    EXPECT_GT(ratio, 2.0) << info.name;
  }
}

TEST(IntegrationTest, MdzBeatsRawStorageSubstantially) {
  const core::Trajectory traj = datagen::MakePt(Tiny());
  core::Options options;
  auto compressed = core::CompressTrajectory(traj, options);
  ASSERT_TRUE(compressed.ok());
  const double ratio = analysis::CompressionRatio(traj.raw_bytes(),
                                                  compressed->total_bytes());
  // Pt is the paper's smooth-in-time showcase: CR should be high.
  EXPECT_GT(ratio, 30.0);
}

TEST(IntegrationTest, MdzPreservesRdfOnCrystal) {
  const core::Trajectory traj = datagen::MakeCopperB(Tiny());
  core::Options options;
  // RDF bins are ~0.04 Angstrom wide; pick a bound safely below that so the
  // decompressed pair distances stay in their bins (the Fig. 14 bench does
  // the CR-matched cross-compressor comparison).
  options.error_bound = 1e-4;
  auto compressed = core::CompressTrajectory(traj, options);
  ASSERT_TRUE(compressed.ok());
  auto decoded = core::DecompressTrajectory(*compressed);
  ASSERT_TRUE(decoded.ok());
  decoded->box = traj.box;

  analysis::RdfOptions rdf_options;
  rdf_options.r_max = 6.0;
  auto original_rdf = analysis::ComputeRdf(traj, rdf_options);
  auto decoded_rdf = analysis::ComputeRdf(*decoded, rdf_options);
  ASSERT_TRUE(original_rdf.ok());
  ASSERT_TRUE(decoded_rdf.ok());

  const double peak =
      *std::max_element(original_rdf->g.begin(), original_rdf->g.end());
  EXPECT_LT(analysis::RdfMaxDeviation(*original_rdf, *decoded_rdf),
            0.1 * peak)
      << "decompressed data must preserve local structure (paper Fig. 14)";
}

TEST(IntegrationTest, EveryCompressorHandlesEveryDataset) {
  // Cross-product smoke test at tiny scale: no crashes, shapes preserved,
  // error bounded.
  baselines::CompressorConfig config;
  config.error_bound = 1e-2;
  for (const auto& dataset : datagen::AllMdDatasets()) {
    datagen::GeneratorOptions opts;
    opts.size_scale = 0.02;
    const core::Trajectory traj = dataset.make(opts);
    const auto field = [&] {
      baselines::Field f;
      for (const auto& snap : traj.snapshots) f.push_back(snap.axes[0]);
      return f;
    }();

    for (const auto& compressor : baselines::AllLossyCompressors()) {
      auto compressed = compressor.compress(field, config);
      ASSERT_TRUE(compressed.ok())
          << compressor.name << " on " << dataset.name;
      auto decoded = compressor.decompress(*compressed);
      ASSERT_TRUE(decoded.ok()) << compressor.name << " on " << dataset.name;
      ASSERT_EQ(decoded->size(), field.size())
          << compressor.name << " on " << dataset.name;
    }
  }
}

TEST(IntegrationTest, MdzCompressionRatioBeatsBaselinesOnCrystal) {
  // The headline claim, in miniature: on level-structured MD data MDZ's
  // adaptive compressor produces the smallest output among all compressors.
  const core::Trajectory traj = datagen::MakeCopperB(Tiny());
  baselines::Field field;
  for (const auto& snap : traj.snapshots) field.push_back(snap.axes[0]);

  baselines::CompressorConfig config;
  config.error_bound = 1e-3;
  config.buffer_size = 10;

  size_t mdz_size = 0;
  size_t best_baseline = SIZE_MAX;
  for (const auto& compressor : baselines::AllLossyCompressors()) {
    auto compressed = compressor.compress(field, config);
    ASSERT_TRUE(compressed.ok()) << compressor.name;
    if (compressor.name == "MDZ") {
      mdz_size = compressed->size();
    } else {
      best_baseline = std::min(best_baseline, compressed->size());
    }
  }
  EXPECT_LT(mdz_size, best_baseline)
      << "MDZ must beat the best baseline on Copper-B (paper Fig. 12)";
}

}  // namespace
}  // namespace mdz
