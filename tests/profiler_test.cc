// Sampling CPU profiler + crash flight recorder (obs/profiler.h,
// obs/flight_recorder.h): capture and symbolization from busy threads,
// span attribution, the mdz.profile.v1 report shapes, the /profilez and
// /healthz routes, the crash report content, and the histogram quantile
// estimator behind the new p50/p95/p99 exports.
//
// Fixtures here are deliberately NOT named Obs*: tools/ci.sh's TSan leg
// filters on Obs*.*, and a SIGPROF/setitimer-driven profiler is outside
// TSan's supported model (signal-context reads of instrumented state).
// The address and undefined legs run everything here.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/thread_pool.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "obs/telemetry_server.h"
#include "obs/timeline.h"

namespace mdz {

// External linkage + noinline on purpose: internal-linkage functions are
// absent from the dynamic symbol table even with -rdynamic, and the whole
// point of the capture tests is asserting that dladdr names this frame in
// the folded output.
__attribute__((noinline)) double ProfilerTestBurn(
    double x, std::chrono::steady_clock::time_point deadline) {
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 4096; ++i) x += std::sin(x) * 1e-3;
  }
  return x;
}

namespace {

using namespace mdz::obs;  // NOLINT

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileText(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

double BurnFor(double seconds) {
  return ProfilerTestBurn(
      0.5, std::chrono::steady_clock::now() +
               std::chrono::microseconds(static_cast<int64_t>(seconds * 1e6)));
}

// --- Profiler capture --------------------------------------------------------

TEST(ProfilerTest, CapturesAndSymbolizesABusyLoop) {
  Profiler& profiler = Profiler::Global();
  const uint64_t samples_before = profiler.samples();
  ASSERT_TRUE(profiler.Start(500).ok());
  volatile double sink = BurnFor(0.4);
  (void)sink;
  profiler.Stop();

  const std::vector<ProfileSample> samples = profiler.Snapshot();
  profiler.ClearStore();
  // 0.4 CPU-seconds at 500 Hz is ~200 ticks; ask only for a loose floor so
  // heavily-shared runners cannot flake this.
  EXPECT_GE(profiler.samples() - samples_before, 10u);
  ASSERT_GE(samples.size(), 10u);
  for (const ProfileSample& s : samples) {
    EXPECT_GT(s.frame_count, 0u);
    EXPECT_LE(s.frame_count, ProfileSample::kMaxFrames);
    EXPECT_NE(s.tid, 0u);
  }

  const ProfileReport report = AggregateProfile(samples);
  EXPECT_EQ(report.sample_count, samples.size());
  EXPECT_FALSE(report.functions.empty());
  EXPECT_NE(report.folded.find("ProfilerTestBurn"), std::string::npos);
  // The profiler's own capture frames must have been stripped.
  EXPECT_EQ(report.folded.find("HandleSignal"), std::string::npos);
  EXPECT_EQ(report.folded.find("ProfilerSignalHandler"), std::string::npos);
  uint64_t self_sum = 0;
  for (const ProfileReport::Entry& f : report.functions) {
    EXPECT_LE(f.self, f.total) << f.name;
    self_sum += f.self;
  }
  EXPECT_EQ(self_sum, report.sample_count);
}

TEST(ProfilerTest, AttributesSamplesToOpenSpans) {
  const bool was_enabled = Enabled();
  SetEnabled(true);  // span stacks update only while telemetry is enabled
  Profiler& profiler = Profiler::Global();
  ASSERT_TRUE(profiler.Start(500).ok());
  {
    MDZ_SPAN("profiler_test_span");
    volatile double sink = BurnFor(0.3);
    (void)sink;
  }
  profiler.Stop();
  const ProfileReport report = AggregateProfile(profiler.Snapshot());
  profiler.ClearStore();
  SetEnabled(was_enabled);

  EXPECT_GT(report.span_attributed, 0u);
  bool found = false;
  for (const ProfileReport::Entry& s : report.spans) {
    if (s.name == "profiler_test_span") {
      found = true;
      EXPECT_GT(s.total, 0u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ProfilerTest, SecondProfilerIsRejectedWhileRunning) {
  Profiler& global = Profiler::Global();
  ASSERT_TRUE(global.Start(99).ok());
  Profiler local;
  const Status second = local.Start(99);
  EXPECT_EQ(second.code(), StatusCode::kFailedPrecondition);
  global.Stop();
  global.ClearStore();
  EXPECT_FALSE(global.running());
  global.Stop();  // idempotent
}

// The /profilez race: the telemetry thread's on-demand Start/Stop cycles
// against a concurrent Start racer plus readers walking the ring pool
// (dropped(), Snapshot()). Exactly one Start must win each round, and the
// ASan/UBSan legs verify no ring is rebuilt under a reader or a late
// signal. Burns real CPU so SIGPROF actually fires mid-transition.
TEST(ProfilerTest, ConcurrentStartStopAndReadersAreSafe) {
  Profiler& profiler = Profiler::Global();
  std::atomic<bool> done{false};
  std::thread reader([&] {
    PrepareThreadForProfiling();  // assign a tid: signals here must not
                                  // count overruns (the healthz test later
                                  // asserts they stayed zero)
    while (!done.load(std::memory_order_acquire)) {
      (void)profiler.dropped();
      (void)profiler.Snapshot(0);
      (void)profiler.overruns();
    }
  });
  std::thread racer([&] {
    PrepareThreadForProfiling();
    while (!done.load(std::memory_order_acquire)) {
      if (profiler.Start(500).ok()) {
        volatile double sink = BurnFor(0.002);
        (void)sink;
        profiler.Stop();
      }
    }
  });
  for (int i = 0; i < 25; ++i) {
    if (profiler.Start(500).ok()) {
      volatile double sink = BurnFor(0.002);
      (void)sink;
      profiler.Stop();
    }
  }
  done.store(true, std::memory_order_release);
  racer.join();
  reader.join();
  EXPECT_FALSE(profiler.running());
  profiler.ClearStore();
}

TEST(ProfilerTest, SnapshotSinceFiltersOldSamples) {
  Profiler& profiler = Profiler::Global();
  ASSERT_TRUE(profiler.Start(500).ok());
  volatile double sink = BurnFor(0.2);
  const uint64_t cut_ns = TimelineNowNs();
  sink = BurnFor(0.2);
  (void)sink;
  profiler.Stop();
  const std::vector<ProfileSample> all = profiler.Snapshot();
  const std::vector<ProfileSample> tail = profiler.Snapshot(cut_ns);
  profiler.ClearStore();
  ASSERT_FALSE(all.empty());
  ASSERT_FALSE(tail.empty());
  EXPECT_LT(tail.size(), all.size());
  for (const ProfileSample& s : tail) EXPECT_GE(s.ts_ns, cut_ns);
}

// --- Report formats ----------------------------------------------------------

TEST(ProfilerTest, ProfileJsonCarriesTalliesAndEntries) {
  ProfileReport report;
  report.sample_count = 3;
  report.span_attributed = 1;
  report.functions = {{"encode", 2, 2}, {"main", 1, 3}};
  report.spans = {{"flush", 1, 1}};
  report.folded = "main 1\nmain;encode 2\n";

  const std::string json = ProfileJson(report, 99, 1.5, 4, 2);
  EXPECT_EQ(json.rfind("{\"schema\":\"mdz.profile.v1\",", 0), 0u);
  for (const char* want :
       {"\"build\":{\"git_sha\":\"", "\"hz\":99", "\"duration_seconds\":1.5",
        "\"samples\":3", "\"dropped\":4", "\"signal_overruns\":2",
        "\"span_attributed\":1",
        "\"functions\":[{\"name\":\"encode\",\"self\":2,\"total\":2},"
        "{\"name\":\"main\",\"self\":1,\"total\":3}]",
        "\"spans\":[{\"name\":\"flush\",\"self\":1,\"total\":1}]"}) {
    EXPECT_NE(json.find(want), std::string::npos) << want;
  }
}

TEST(ProfilerTest, WriteProfileFilePicksFormatByExtension) {
  ProfileReport report;
  report.sample_count = 1;
  report.functions = {{"main", 1, 1}};
  report.folded = "main 1\n";

  const std::string json_path = TempPath("profile_fmt.json");
  const std::string folded_path = TempPath("profile_fmt.folded");
  ASSERT_TRUE(WriteProfileFile(report, 99, 0.5, 0, 0, json_path).ok());
  ASSERT_TRUE(WriteProfileFile(report, 99, 0.5, 0, 0, folded_path).ok());
  EXPECT_EQ(ReadFileText(json_path).rfind("{\"schema\":\"mdz.profile.v1\",", 0),
            0u);
  EXPECT_EQ(ReadFileText(folded_path), "main 1\n");
  std::remove(json_path.c_str());
  std::remove(folded_path.c_str());
}

// --- /profilez + /healthz over HTTP ------------------------------------------

// Minimal blocking HTTP GET against 127.0.0.1:<port>.
std::string HttpGet(uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::write(fd, request.data() + off, request.size() - off);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ProfilerTest, ProfilezSamplesABusyPoolOnDemand) {
  MetricsRegistry registry;
  Timeline timeline(/*ring_capacity=*/256, /*store_capacity=*/1 << 12);
  TelemetryServer server(&registry, &timeline, &Profiler::Global());
  ListenAddress address;
  ASSERT_TRUE(ParseListenAddress("127.0.0.1:0", &address).ok());
  ASSERT_TRUE(server.Start(address).ok());

  std::atomic<bool> stop{false};
  std::thread load([&stop] {
    // ParallelFor burns CPU on this driver thread too; without a timeline
    // tid its samples would be skipped as overruns (degrading /healthz in
    // the next test). Pool workers prepare themselves at startup.
    PrepareThreadForProfiling();
    core::ThreadPool pool(2);
    while (!stop.load(std::memory_order_acquire)) {
      pool.ParallelFor(0, 4, [](size_t) {
        volatile double sink = BurnFor(0.01);
        (void)sink;
      });
    }
  });

  // No profiler is running, so the route runs an on-demand 1 s session.
  const std::string folded = HttpGet(server.port(), "/profilez?seconds=1");
  EXPECT_NE(folded.find("200 OK"), std::string::npos);
  EXPECT_NE(folded.find(';'), std::string::npos);  // multi-frame stacks

  const std::string json =
      HttpGet(server.port(), "/profilez?seconds=1&format=json");
  EXPECT_NE(json.find("200 OK"), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"mdz.profile.v1\""), std::string::npos);

  stop.store(true, std::memory_order_release);
  load.join();
  server.Stop();
  EXPECT_FALSE(Profiler::Global().running());
  Profiler::Global().ClearStore();
}

TEST(ProfilerTest, HealthzReportsCountsAndDegrades) {
  MetricsRegistry registry;
  // The smallest ring the Timeline allows (capacities clamp to 8): events
  // past the eighth drop, flipping /healthz from ok to degraded.
  Timeline timeline(/*ring_capacity=*/8, /*store_capacity=*/8);
  TelemetryServer server(&registry, &timeline, &Profiler::Global());
  ListenAddress address;
  ASSERT_TRUE(ParseListenAddress("127.0.0.1:0", &address).ok());
  ASSERT_TRUE(server.Start(address).ok());

  const std::string healthy = HttpGet(server.port(), "/healthz");
  EXPECT_NE(healthy.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(healthy.find("\"timeline_ring_dropped\":0"), std::string::npos);

  timeline.SetRecording(true);
  for (int i = 0; i < 10; ++i) {
    timeline.Record("h", EventPhase::kInstant);  // 9th and 10th drop
  }
  timeline.SetRecording(false);
  ASSERT_GT(timeline.ring_dropped(), 0u);

  const std::string degraded = HttpGet(server.port(), "/healthz");
  EXPECT_NE(degraded.find("\"status\":\"degraded\""), std::string::npos);
  server.Stop();
}

// --- Flight recorder ---------------------------------------------------------

TEST(FlightRecorderTest, WriteReportCarriesAllSections) {
  const bool was_enabled = Enabled();
  SetEnabled(true);
  Timeline& timeline = Timeline::Global();
  timeline.SetRecording(true);
  const std::string report_path = TempPath("flight_install.txt");
  ASSERT_TRUE(FlightRecorder::Install(report_path).ok());
  EXPECT_TRUE(FlightRecorder::installed());

  const std::string out_path = TempPath("flight_report.txt");
  {
    MDZ_SPAN("flight_test_span");
    timeline.Record("flight_test_event", EventPhase::kInstant);
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    ASSERT_NE(out, nullptr);
    FlightRecorder::WriteReport(fileno(out), 0, nullptr);
    std::fclose(out);
  }
  timeline.SetRecording(false);
  SetEnabled(was_enabled);

  const std::string report = ReadFileText(out_path);
  EXPECT_NE(report.find("=== mdz flight recorder ==="), std::string::npos);
  EXPECT_NE(report.find("git_sha"), std::string::npos);
  EXPECT_NE(report.find("backtrace"), std::string::npos);
  EXPECT_NE(report.find("flight_test_span"), std::string::npos);
  EXPECT_NE(report.find("flight_test_event"), std::string::npos);
  EXPECT_NE(report.find("=== end of report ==="), std::string::npos);
  std::remove(out_path.c_str());
  std::remove(report_path.c_str());
}

TEST(FlightRecorderTest, CrashWritesReportAndDiesBySignal) {
  // threadsafe style re-execs the test binary for the child, so the
  // recorder and handlers are installed only in the process that dies.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string report_path = TempPath("flight_crash.txt");
  std::remove(report_path.c_str());

  // SIGABRT rather than SIGSEGV: ASan runs with handle_abort=0 by default,
  // so abort() reaches our handler under every ci.sh sanitizer leg.
  EXPECT_EXIT(
      {
        SetEnabled(true);
        Timeline::Global().SetRecording(true);
        Timeline::Global().Record("crash_imminent", EventPhase::kInstant);
        if (!FlightRecorder::Install(report_path).ok()) std::exit(99);
        std::abort();
      },
      ::testing::KilledBySignal(SIGABRT), "");

  const std::string report = ReadFileText(report_path);
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report.find("SIGABRT"), std::string::npos);
  EXPECT_NE(report.find("git_sha"), std::string::npos);
  EXPECT_NE(report.find("backtrace"), std::string::npos);
  EXPECT_NE(report.find("crash_imminent"), std::string::npos);
  EXPECT_NE(report.find("=== end of report ==="), std::string::npos);
  std::remove(report_path.c_str());
}

// --- Histogram quantiles (the p50/p95/p99 export satellite) ------------------

TEST(HistogramQuantileTest, InterpolatesWithinBuckets) {
  // First bucket interpolates from a lower edge of 0.
  EXPECT_DOUBLE_EQ(HistogramQuantile({8.0}, {4, 0}, 0.5), 4.0);
  // The golden histogram from ObsExportTest.JsonGolden: rank 1.5 lands
  // halfway into the (1, 10] bucket.
  EXPECT_DOUBLE_EQ(HistogramQuantile({1.0, 10.0}, {1, 1, 1}, 0.5), 5.5);
}

TEST(HistogramQuantileTest, InfBucketReportsLargestFiniteBound) {
  EXPECT_DOUBLE_EQ(HistogramQuantile({1.0, 10.0}, {1, 1, 1}, 0.95), 10.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile({1.0, 10.0}, {0, 0, 5}, 0.5), 10.0);
}

TEST(HistogramQuantileTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(HistogramQuantile({}, {}, 0.5), 0.0);       // empty
  EXPECT_DOUBLE_EQ(HistogramQuantile({1.0}, {0, 0}, 0.5), 0.0);
  // q is clamped; all mass in one finite bucket interpolates linearly.
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0}, {2, 0}, 2.0), 10.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0}, {2, 0}, -1.0), 0.0);
}

}  // namespace
}  // namespace mdz
