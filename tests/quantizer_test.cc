#include <cmath>
#include <limits>
#include <tuple>

#include <gtest/gtest.h>

#include "quant/quantizer.h"
#include "util/rng.h"

namespace mdz::quant {
namespace {

TEST(QuantizerTest, PerfectPredictionIsRadiusCode) {
  LinearQuantizer q(0.01, 1024);
  double decoded;
  const uint32_t code = q.Encode(5.0, 5.0, &decoded);
  EXPECT_EQ(code, q.radius());
  EXPECT_DOUBLE_EQ(decoded, 5.0);
}

TEST(QuantizerTest, DecodedWithinBound) {
  LinearQuantizer q(0.01, 1024);
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    const double pred = rng.Uniform(-100.0, 100.0);
    const double value = pred + rng.Uniform(-6.0, 6.0);
    double decoded;
    const uint32_t code = q.Encode(value, pred, &decoded);
    EXPECT_LE(std::fabs(decoded - value), 0.01);
    if (code != 0) {
      EXPECT_DOUBLE_EQ(q.Decode(code, pred), decoded);
      EXPECT_LT(code, q.scale());
    }
  }
}

TEST(QuantizerTest, FarValueEscapes) {
  LinearQuantizer q(0.001, 1024);
  double decoded;
  // 1024 codes * 2*eb reach ~ +-1.02; a diff of 100 is unreachable.
  const uint32_t code = q.Encode(100.0, 0.0, &decoded);
  EXPECT_EQ(code, 0u);
  EXPECT_DOUBLE_EQ(decoded, 100.0);  // exact escape
}

TEST(QuantizerTest, NanAndInfEscape) {
  LinearQuantizer q(0.01, 1024);
  double decoded;
  EXPECT_EQ(q.Encode(std::numeric_limits<double>::quiet_NaN(), 0.0, &decoded),
            0u);
  EXPECT_EQ(q.Encode(std::numeric_limits<double>::infinity(), 0.0, &decoded),
            0u);
  EXPECT_EQ(q.Encode(1.0, std::numeric_limits<double>::quiet_NaN(), &decoded),
            0u);
  EXPECT_DOUBLE_EQ(decoded, 1.0);
}

TEST(QuantizerTest, BoundaryOfScale) {
  LinearQuantizer q(0.5, 16);  // radius 8, max |q| = 6 (radius-1 with margin)
  double decoded;
  // diff = 5.9 -> scaled = 5.9; within radius-1 - 1 = 6? scaled < 7 required.
  const uint32_t in_range = q.Encode(5.9, 0.0, &decoded);
  EXPECT_NE(in_range, 0u);
  EXPECT_LE(std::fabs(decoded - 5.9), 0.5);
  // diff = 7.5 -> scaled = 7.5 >= radius-1 = 7: escape.
  const uint32_t out_of_range = q.Encode(7.5, 0.0, &decoded);
  EXPECT_EQ(out_of_range, 0u);
}

class QuantizerSweepTest
    : public ::testing::TestWithParam<std::tuple<double, uint32_t>> {};

TEST_P(QuantizerSweepTest, ErrorBoundInvariant) {
  const auto [eb, scale] = GetParam();
  LinearQuantizer q(eb, scale);
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    const double pred = rng.Uniform(-10.0, 10.0);
    const double value = pred + rng.Gaussian(0.0, 20.0 * eb);
    double decoded;
    q.Encode(value, pred, &decoded);
    ASSERT_LE(std::fabs(decoded - value), eb)
        << "eb " << eb << " scale " << scale;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BoundsAndScales, QuantizerSweepTest,
    ::testing::Combine(::testing::Values(1e-1, 1e-3, 1e-6, 1e-9),
                       ::testing::Values(16u, 64u, 1024u, 65536u)));

TEST(QuantizerTest, RoundTripAllCodes) {
  LinearQuantizer q(0.25, 64);
  // Codes at the extreme edge of the scale (1 and scale-1) are outside the
  // encoder's safety margin and re-encode as escapes; test the rest.
  for (uint32_t code = 2; code < 63; ++code) {
    const double value = q.Decode(code, 3.0);
    double decoded;
    const uint32_t re = q.Encode(value, 3.0, &decoded);
    EXPECT_EQ(re, code);
    EXPECT_DOUBLE_EQ(decoded, value);
  }
}

}  // namespace
}  // namespace mdz::quant
