#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/mdz.h"
#include "util/rng.h"

namespace mdz::core {
namespace {

// Synthetic fields with the paper's three regimes.
std::vector<std::vector<double>> LevelStructuredField(size_t m, size_t n,
                                                      uint64_t seed) {
  // Values cluster on a lattice-level grid with small vibration and a
  // lattice-ordered dump (spatially regular level indices), as in real
  // crystalline MD output — the VQ regime.
  // Atoms vibrate independently around fixed lattice sites; dumps are far
  // apart in time so the vibrations are uncorrelated between snapshots.
  // Time prediction then pays the sqrt(2) differenced-noise penalty while
  // VQ predicts from the (static) level grid — the Copper-B regime.
  Rng rng(seed);
  std::vector<int> level(n);
  for (size_t i = 0; i < n; ++i) level[i] = static_cast<int>(i % 20);
  std::vector<std::vector<double>> field(m, std::vector<double>(n));
  for (size_t s = 0; s < m; ++s) {
    for (size_t i = 0; i < n; ++i) {
      field[s][i] = 1.5 * level[i] + rng.Gaussian(0.0, 0.08);
    }
  }
  return field;
}

std::vector<std::vector<double>> SmoothTimeField(size_t m, size_t n,
                                                 uint64_t seed) {
  // Values barely move between snapshots (MT regime).
  Rng rng(seed);
  std::vector<std::vector<double>> field(m, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) field[0][i] = rng.Uniform(0.0, 100.0);
  for (size_t s = 1; s < m; ++s) {
    for (size_t i = 0; i < n; ++i) {
      field[s][i] = field[s - 1][i] + rng.Gaussian(0.0, 0.01);
    }
  }
  return field;
}

std::vector<std::vector<double>> RandomField(size_t m, size_t n,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> field(m, std::vector<double>(n));
  for (auto& snapshot : field) {
    for (auto& v : snapshot) v = rng.Uniform(-50.0, 50.0);
  }
  return field;
}

void ExpectRoundTripWithinBound(const std::vector<std::vector<double>>& field,
                                const Options& options) {
  auto compressed = CompressField(field, options);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  auto decompressed = DecompressField(*compressed);
  ASSERT_TRUE(decompressed.ok()) << decompressed.status().ToString();
  ASSERT_EQ(decompressed->size(), field.size());

  // Resolve the bound the same way the compressor does (first buffer range).
  double abs_eb = options.error_bound;
  if (options.error_bound_mode == ErrorBoundMode::kValueRangeRelative) {
    double lo = 1e300, hi = -1e300;
    const size_t first_buffer =
        std::min<size_t>(options.buffer_size, field.size());
    for (size_t s = 0; s < first_buffer; ++s) {
      for (double v : field[s]) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (hi > lo) abs_eb = options.error_bound * (hi - lo);
  }

  for (size_t s = 0; s < field.size(); ++s) {
    ASSERT_EQ((*decompressed)[s].size(), field[s].size());
    for (size_t i = 0; i < field[s].size(); ++i) {
      ASSERT_LE(std::fabs((*decompressed)[s][i] - field[s][i]), abs_eb)
          << "snapshot " << s << " index " << i << " method "
          << MethodName(options.method);
    }
  }
}

// --- Options validation --------------------------------------------------------

TEST(OptionsTest, DefaultsAreValid) {
  EXPECT_TRUE(Options().Validate().ok());
}

TEST(OptionsTest, RejectsBadErrorBound) {
  Options options;
  options.error_bound = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options.error_bound = -1.0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(OptionsTest, RejectsBadBufferSize) {
  Options options;
  options.buffer_size = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(OptionsTest, RejectsNonPowerOfTwoScale) {
  Options options;
  options.quantization_scale = 1000;
  EXPECT_FALSE(options.Validate().ok());
  options.quantization_scale = 2;  // below minimum
  EXPECT_FALSE(options.Validate().ok());
}

TEST(OptionsTest, RejectsZeroAdaptationInterval) {
  Options options;
  options.adaptation_interval = 0;
  EXPECT_FALSE(options.Validate().ok());
}

// --- Method round trips ----------------------------------------------------------

class MethodRoundTripTest
    : public ::testing::TestWithParam<std::tuple<Method, uint32_t, double>> {};

TEST_P(MethodRoundTripTest, LevelStructuredData) {
  const auto [method, buffer_size, eb] = GetParam();
  Options options;
  options.method = method;
  options.buffer_size = buffer_size;
  options.error_bound = eb;
  ExpectRoundTripWithinBound(LevelStructuredField(37, 400, 1), options);
}

TEST_P(MethodRoundTripTest, SmoothTimeData) {
  const auto [method, buffer_size, eb] = GetParam();
  Options options;
  options.method = method;
  options.buffer_size = buffer_size;
  options.error_bound = eb;
  ExpectRoundTripWithinBound(SmoothTimeField(37, 400, 2), options);
}

TEST_P(MethodRoundTripTest, RandomData) {
  const auto [method, buffer_size, eb] = GetParam();
  Options options;
  options.method = method;
  options.buffer_size = buffer_size;
  options.error_bound = eb;
  ExpectRoundTripWithinBound(RandomField(23, 300, 3), options);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsBuffersBounds, MethodRoundTripTest,
    ::testing::Combine(::testing::Values(Method::kVQ, Method::kVQT, Method::kMT,
                                         Method::kAdaptive, Method::kTI),
                       ::testing::Values(1u, 7u, 10u, 100u),
                       ::testing::Values(1e-2, 1e-3, 1e-5)),
    [](const auto& info) {
      const Method method = std::get<0>(info.param);
      const uint32_t bs = std::get<1>(info.param);
      const double eb = std::get<2>(info.param);
      std::string name(MethodName(method));
      name += "_BS" + std::to_string(bs) + "_eb";
      name += (eb == 1e-2) ? "1e2" : (eb == 1e-3) ? "1e3" : "1e5";
      return name;
    });

// --- Absolute error bound mode -----------------------------------------------

TEST(MdzTest, AbsoluteErrorBoundMode) {
  Options options;
  options.error_bound_mode = ErrorBoundMode::kAbsolute;
  options.error_bound = 0.5;
  const auto field = RandomField(11, 200, 4);
  auto compressed = CompressField(field, options);
  ASSERT_TRUE(compressed.ok());
  auto decompressed = DecompressField(*compressed);
  ASSERT_TRUE(decompressed.ok());
  for (size_t s = 0; s < field.size(); ++s) {
    for (size_t i = 0; i < field[s].size(); ++i) {
      EXPECT_LE(std::fabs((*decompressed)[s][i] - field[s][i]), 0.5);
    }
  }
}

// --- Compression ratio expectations -------------------------------------------

TEST(MdzTest, VqWinsOnLevelDataVsMtOnVibratingData) {
  // With weak temporal correlation but strong level structure, VQ must beat
  // MT (paper takeaway 2/3).
  const auto field = LevelStructuredField(100, 1000, 5);
  Options vq;
  vq.method = Method::kVQ;
  Options mt;
  mt.method = Method::kMT;
  auto vq_out = CompressField(field, vq);
  auto mt_out = CompressField(field, mt);
  ASSERT_TRUE(vq_out.ok());
  ASSERT_TRUE(mt_out.ok());
  EXPECT_LT(vq_out->size(), mt_out->size());
}

TEST(MdzTest, MtWinsOnSmoothTimeData) {
  const auto field = SmoothTimeField(100, 1000, 6);
  Options vq;
  vq.method = Method::kVQ;
  Options mt;
  mt.method = Method::kMT;
  auto vq_out = CompressField(field, vq);
  auto mt_out = CompressField(field, mt);
  ASSERT_TRUE(vq_out.ok());
  ASSERT_TRUE(mt_out.ok());
  EXPECT_LT(mt_out->size(), vq_out->size());
}

TEST(MdzTest, AdaptiveMatchesBestSingleMethod) {
  // ADP must be within a small factor of the best of VQ/VQT/MT on both
  // regimes (paper Fig. 11).
  for (uint64_t seed : {7ull, 8ull}) {
    for (const auto& field :
         {LevelStructuredField(60, 500, seed), SmoothTimeField(60, 500, seed)}) {
      size_t best = SIZE_MAX;
      for (Method m : {Method::kVQ, Method::kVQT, Method::kMT}) {
        Options options;
        options.method = m;
        auto out = CompressField(field, options);
        ASSERT_TRUE(out.ok());
        best = std::min(best, out->size());
      }
      Options adp;
      adp.method = Method::kAdaptive;
      // Re-evaluate frequently so the selector converges within this short
      // stream (the paper's default of 50 is tuned for thousands of
      // snapshots).
      adp.adaptation_interval = 2;
      auto adp_out = CompressField(field, adp);
      ASSERT_TRUE(adp_out.ok());
      EXPECT_LE(adp_out->size(), best * 12 / 10 + 256);
    }
  }
}

TEST(MdzTest, SmoothDataCompressesFarBelowRaw) {
  const auto field = SmoothTimeField(100, 2000, 9);
  Options options;
  auto out = CompressField(field, options);
  ASSERT_TRUE(out.ok());
  const size_t raw = 100 * 2000 * sizeof(double);
  EXPECT_LT(out->size() * 20, raw);  // CR > 20 on very smooth data
}

// --- Streaming API --------------------------------------------------------------

TEST(StreamingTest, StreamingMatchesOneShot) {
  const auto field = LevelStructuredField(25, 300, 10);
  Options options;
  options.method = Method::kVQT;

  auto compressor = FieldCompressor::Create(300, options);
  ASSERT_TRUE(compressor.ok());
  for (const auto& snapshot : field) {
    ASSERT_TRUE((*compressor)->Append(snapshot).ok());
  }
  ASSERT_TRUE((*compressor)->Finish().ok());
  const std::vector<uint8_t> streamed = (*compressor)->TakeOutput();

  auto one_shot = CompressField(field, options);
  ASSERT_TRUE(one_shot.ok());
  EXPECT_EQ(streamed, *one_shot);
}

TEST(StreamingTest, DecompressorYieldsSnapshotsInOrder) {
  const auto field = SmoothTimeField(15, 100, 11);
  Options options;
  auto compressed = CompressField(field, options);
  ASSERT_TRUE(compressed.ok());

  auto decompressor = FieldDecompressor::Open(*compressed);
  ASSERT_TRUE(decompressor.ok());
  EXPECT_EQ((*decompressor)->num_particles(), 100u);

  std::vector<double> snapshot;
  size_t count = 0;
  while (true) {
    auto more = (*decompressor)->Next(&snapshot);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ASSERT_EQ(snapshot.size(), 100u);
    ++count;
  }
  EXPECT_EQ(count, 15u);
}

TEST(StreamingTest, AppendAfterFinishFails) {
  auto compressor = FieldCompressor::Create(10, Options());
  ASSERT_TRUE(compressor.ok());
  std::vector<double> snapshot(10, 1.0);
  ASSERT_TRUE((*compressor)->Append(snapshot).ok());
  ASSERT_TRUE((*compressor)->Finish().ok());
  EXPECT_EQ((*compressor)->Append(snapshot).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*compressor)->Finish().code(), StatusCode::kFailedPrecondition);
}

TEST(StreamingTest, WrongSnapshotSizeFails) {
  auto compressor = FieldCompressor::Create(10, Options());
  ASSERT_TRUE(compressor.ok());
  std::vector<double> snapshot(11, 1.0);
  EXPECT_EQ((*compressor)->Append(snapshot).code(),
            StatusCode::kInvalidArgument);
}

TEST(StreamingTest, StatsAreTracked) {
  const auto field = SmoothTimeField(30, 200, 12);
  Options options;
  auto compressor = FieldCompressor::Create(200, options);
  ASSERT_TRUE(compressor.ok());
  for (const auto& snapshot : field) {
    ASSERT_TRUE((*compressor)->Append(snapshot).ok());
  }
  ASSERT_TRUE((*compressor)->Finish().ok());
  const CompressorStats& stats = (*compressor)->stats();
  EXPECT_EQ(stats.snapshots_in, 30u);
  EXPECT_EQ(stats.buffers_out, 3u);  // BS=10
  EXPECT_EQ(stats.raw_bytes, 30u * 200u * sizeof(double));
  EXPECT_GT(stats.compressed_bytes, 0u);
  EXPECT_GT(stats.compression_ratio(), 1.0);
}

// Stats must count only snapshots the compressor actually accepted: a
// rejected Append (wrong size, or after Finish) leaves them untouched.
TEST(StreamingTest, StatsCountOnlyAcceptedSnapshots) {
  auto compressor = FieldCompressor::Create(50, Options());
  ASSERT_TRUE(compressor.ok());
  std::vector<double> snapshot(50, 1.5);
  ASSERT_TRUE((*compressor)->Append(snapshot).ok());

  std::vector<double> wrong_size(51, 1.5);
  EXPECT_FALSE((*compressor)->Append(wrong_size).ok());
  EXPECT_EQ((*compressor)->stats().snapshots_in, 1u);
  EXPECT_EQ((*compressor)->stats().raw_bytes, 50u * sizeof(double));

  ASSERT_TRUE((*compressor)->Finish().ok());
  EXPECT_FALSE((*compressor)->Append(snapshot).ok());
  EXPECT_EQ((*compressor)->stats().snapshots_in, 1u);
  EXPECT_EQ((*compressor)->stats().raw_bytes, 50u * sizeof(double));
}

// --- Edge cases -------------------------------------------------------------------

TEST(MdzTest, SingleSnapshot) {
  Options options;
  ExpectRoundTripWithinBound(RandomField(1, 100, 13), options);
}

TEST(MdzTest, SingleParticle) {
  Options options;
  ExpectRoundTripWithinBound(RandomField(50, 1, 14), options);
}

TEST(MdzTest, PartialFinalBuffer) {
  Options options;
  options.buffer_size = 10;
  ExpectRoundTripWithinBound(RandomField(23, 50, 15), options);  // 23 % 10 != 0
}

TEST(MdzTest, ConstantField) {
  std::vector<std::vector<double>> field(10, std::vector<double>(100, 3.25));
  Options options;
  auto compressed = CompressField(field, options);
  ASSERT_TRUE(compressed.ok());
  auto decompressed = DecompressField(*compressed);
  ASSERT_TRUE(decompressed.ok());
  for (const auto& snapshot : *decompressed) {
    for (double v : snapshot) EXPECT_NEAR(v, 3.25, 1e-3);
  }
}

TEST(MdzTest, EmptyFieldIsError) {
  EXPECT_FALSE(CompressField({}, Options()).ok());
}

TEST(MdzTest, HugeOutliersAreEscapedExactly) {
  auto field = SmoothTimeField(10, 100, 16);
  field[5][50] = 1e12;  // wildly outside the quantizer scale
  Options options;
  options.error_bound_mode = ErrorBoundMode::kAbsolute;
  options.error_bound = 0.01;
  auto compressed = CompressField(field, options);
  ASSERT_TRUE(compressed.ok());
  auto decompressed = DecompressField(*compressed);
  ASSERT_TRUE(decompressed.ok());
  EXPECT_DOUBLE_EQ((*decompressed)[5][50], 1e12);
}

// --- Corruption handling ------------------------------------------------------------

TEST(CorruptionTest, BadMagicRejected) {
  const auto field = RandomField(5, 50, 17);
  auto compressed = CompressField(field, Options());
  ASSERT_TRUE(compressed.ok());
  (*compressed)[0] = 'X';
  EXPECT_FALSE(DecompressField(*compressed).ok());
}

TEST(CorruptionTest, TruncatedStreamRejected) {
  const auto field = RandomField(20, 200, 18);
  auto compressed = CompressField(field, Options());
  ASSERT_TRUE(compressed.ok());
  std::vector<uint8_t> truncated(compressed->begin(),
                                 compressed->begin() + compressed->size() / 2);
  auto result = DecompressField(truncated);
  // Either an error, or fewer snapshots than the original (prefix decode) —
  // never a crash or wrong-size snapshots.
  if (result.ok()) {
    EXPECT_LT(result->size(), field.size());
    for (const auto& s : *result) EXPECT_EQ(s.size(), 200u);
  }
}

TEST(CorruptionTest, FlippedPayloadByteNeverCrashes) {
  const auto field = LevelStructuredField(12, 100, 19);
  auto compressed = CompressField(field, Options());
  ASSERT_TRUE(compressed.ok());
  Rng rng(20);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> mutated = *compressed;
    mutated[rng.UniformInt(mutated.size())] ^=
        static_cast<uint8_t>(1 + rng.UniformInt(255));
    auto result = DecompressField(mutated);  // must not crash
    (void)result;
  }
}

TEST(CorruptionTest, EmptyInputRejected) {
  EXPECT_FALSE(DecompressField({}).ok());
}

// --- Trajectory wrapper --------------------------------------------------------------

TEST(TrajectoryTest, ThreeAxisRoundTrip) {
  Trajectory traj;
  traj.name = "test";
  Rng rng(21);
  for (int s = 0; s < 12; ++s) {
    Snapshot snap;
    for (auto& axis : snap.axes) {
      axis.resize(64);
      for (auto& v : axis) v = rng.Uniform(0.0, 10.0);
    }
    traj.snapshots.push_back(std::move(snap));
  }

  Options options;
  auto compressed = CompressTrajectory(traj, options);
  ASSERT_TRUE(compressed.ok());
  EXPECT_GT(compressed->total_bytes(), 0u);
  auto decompressed = DecompressTrajectory(*compressed);
  ASSERT_TRUE(decompressed.ok());
  EXPECT_EQ(decompressed->num_snapshots(), 12u);
  EXPECT_EQ(decompressed->num_particles(), 64u);
  for (size_t s = 0; s < 12; ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      for (size_t i = 0; i < 64; ++i) {
        EXPECT_LE(std::fabs(decompressed->snapshots[s].axes[axis][i] -
                            traj.snapshots[s].axes[axis][i]),
                  1e-3 * 10.0 * 1.01);
      }
    }
  }
}

TEST(MethodNameTest, AllNamesDistinct) {
  EXPECT_EQ(MethodName(Method::kVQ), "VQ");
  EXPECT_EQ(MethodName(Method::kVQT), "VQT");
  EXPECT_EQ(MethodName(Method::kMT), "MT");
  EXPECT_EQ(MethodName(Method::kAdaptive), "ADP");
}

}  // namespace
}  // namespace mdz::core
