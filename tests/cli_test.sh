#!/bin/sh
# End-to-end smoke test of the mdz command-line tool:
# gen -> compress -> info -> verify -> decompress(xyz) -> re-read.
set -eu

MDZ="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$MDZ" datasets | grep -q "Copper-B"

"$MDZ" gen Copper-B "$WORK/traj.mdtraj" --scale 0.03 --seed 7
test -s "$WORK/traj.mdtraj"

"$MDZ" compress "$WORK/traj.mdtraj" "$WORK/traj.mdza" --eb 1e-3 --bs 10 \
  --method adp | grep -q "ratio"
test -s "$WORK/traj.mdza"

# The archive must be much smaller than the raw trajectory.
raw_size=$(wc -c < "$WORK/traj.mdtraj")
mdz_size=$(wc -c < "$WORK/traj.mdza")
test "$mdz_size" -lt "$((raw_size / 5))"

"$MDZ" info "$WORK/traj.mdza" | grep -q "Copper-B"
"$MDZ" verify "$WORK/traj.mdtraj" "$WORK/traj.mdza" | grep -q "x"

"$MDZ" decompress "$WORK/traj.mdza" "$WORK/out.xyz"
test -s "$WORK/out.xyz"
head -1 "$WORK/out.xyz" | grep -q "3137"

# XYZ round trip back through the compressor.
"$MDZ" compress "$WORK/out.xyz" "$WORK/again.mdza" --method mt --bs 5
"$MDZ" info "$WORK/again.mdza" > /dev/null

# Unknown flags / methods must fail loudly.
if "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/x.mdza" --method bogus \
    2>/dev/null; then
  echo "expected failure for bogus method" >&2
  exit 1
fi

echo "cli_test OK"
