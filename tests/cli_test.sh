#!/bin/sh
# End-to-end smoke test of the mdz command-line tool:
# gen -> compress -> info -> verify -> decompress(xyz) -> re-read.
set -eu

MDZ="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$MDZ" datasets | grep -q "Copper-B"

"$MDZ" gen Copper-B "$WORK/traj.mdtraj" --scale 0.03 --seed 7
test -s "$WORK/traj.mdtraj"

"$MDZ" compress "$WORK/traj.mdtraj" "$WORK/traj.mdza" --eb 1e-3 --bs 10 \
  --method adp | grep -q "ratio"
test -s "$WORK/traj.mdza"

# The archive must be much smaller than the raw trajectory.
raw_size=$(wc -c < "$WORK/traj.mdtraj")
mdz_size=$(wc -c < "$WORK/traj.mdza")
test "$mdz_size" -lt "$((raw_size / 5))"

"$MDZ" info "$WORK/traj.mdza" | grep -q "Copper-B"
"$MDZ" verify "$WORK/traj.mdtraj" "$WORK/traj.mdza" | grep -q "x"

"$MDZ" decompress "$WORK/traj.mdza" "$WORK/out.xyz"
test -s "$WORK/out.xyz"
head -1 "$WORK/out.xyz" | grep -q "3137"

# XYZ round trip back through the compressor.
"$MDZ" compress "$WORK/out.xyz" "$WORK/again.mdza" --method mt --bs 5
"$MDZ" info "$WORK/again.mdza" > /dev/null

# Unknown flags / methods must fail loudly.
if "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/x.mdza" --method bogus \
    2>/dev/null; then
  echo "expected failure for bogus method" >&2
  exit 1
fi

# --- Exit codes (documented at the top of tools/mdz_cli.cc) -----------------
# Helper: run "$@" silenced and echo its exit code.
exit_code() {
  "$@" >/dev/null 2>&1 && echo 0 || echo $?
}

test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/x.mdza" \
  --method bogus)" = 2                                    # bad arguments
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj")" = 2  # missing arg
test "$(exit_code "$MDZ" bogus-command)" = 2              # unknown command
test "$(exit_code "$MDZ" decompress "$WORK/no-such-file.mdza" \
  "$WORK/y.mdtraj")" = 3                                  # unreadable input

# Corrupt archive: truncating a valid archive must yield the corruption code.
head -c "$((mdz_size / 2))" "$WORK/traj.mdza" > "$WORK/trunc.mdza"
test "$(exit_code "$MDZ" decompress "$WORK/trunc.mdza" "$WORK/y.mdtraj")" = 4

# --- Telemetry flags (docs/OBSERVABILITY.md) --------------------------------
"$MDZ" compress "$WORK/traj.mdtraj" "$WORK/tele.mdza" --quiet \
  --metrics-json "$WORK/m.json" --metrics-prom "$WORK/m.prom" \
  --trace "$WORK/trace.jsonl" > "$WORK/compress.out"
test ! -s "$WORK/compress.out"   # --quiet silences informational stdout
grep -q '"schema":"mdz.metrics.v1"' "$WORK/m.json"
grep -q '"compress/blocks":' "$WORK/m.json"
grep -q '"span/flush_buffer' "$WORK/m.json"
grep -q '^# TYPE mdz_compress_blocks counter' "$WORK/m.prom"
grep -q '"method":"' "$WORK/trace.jsonl"
# One trace event per flushed buffer across the three axes.
blocks=$("$MDZ" stats "$WORK/tele.mdza" --json \
  | tr ',' '\n' | grep '"blocks"' | tr -cd '0-9\n' | awk '{n+=$1} END {print n}')
test "$(wc -l < "$WORK/trace.jsonl")" = "$blocks"

"$MDZ" decompress "$WORK/tele.mdza" "$WORK/tele-out.mdtraj" --quiet \
  --metrics-json "$WORK/d.json"
grep -q '"decompress/blocks":' "$WORK/d.json"

# --- stats subcommand -------------------------------------------------------
"$MDZ" stats "$WORK/traj.mdza" | grep -q "^Axis"
"$MDZ" stats "$WORK/traj.mdza" --json | grep -q '"axes":\['
test "$(exit_code "$MDZ" stats "$WORK/trunc.mdza")" = 4

# --- audit subcommand (exit 0 clean / 4 corrupt / 5 bound violation) --------
# A violated original: flip an exponent byte of one payload double. The
# .mdtraj header for this file is 60 bytes (8 magic + 8 n + 8 m + 24 box +
# 4 name_len + 8 for "Copper-B"); doubles follow 8-byte aligned, so byte
# 60 + 8k + 7 is the sign/exponent byte of value k. 0xff there turns a
# coordinate into a huge negative — far beyond any bound.
cp "$WORK/traj.mdtraj" "$WORK/bad.mdtraj"
printf '\377' | dd of="$WORK/bad.mdtraj" bs=1 seek=$((60 + 8 * 100 + 7)) \
  conv=notrunc 2>/dev/null

# The audit verdict must hold for every predictor mode.
for method in vq vqt mt; do
  "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/a-$method.mdza" --quiet \
    --method "$method" --bs 10
  "$MDZ" audit "$WORK/a-$method.mdza" "$WORK/traj.mdtraj" | grep -q "PASS"
  test "$(exit_code "$MDZ" audit "$WORK/a-$method.mdza" \
    "$WORK/bad.mdtraj")" = 5
done

"$MDZ" audit "$WORK/traj.mdza" "$WORK/traj.mdtraj" --json \
  | grep -q '^{"schema":"mdz.quality.v1",.*"ok":true'
test "$(exit_code "$MDZ" audit "$WORK/trunc.mdza" "$WORK/traj.mdtraj")" = 4
test "$(exit_code "$MDZ" audit "$WORK/no-such.mdza" "$WORK/traj.mdtraj")" = 3

# Audit violations are counted per sample in the JSON report.
"$MDZ" audit "$WORK/traj.mdza" "$WORK/bad.mdtraj" --json \
  > "$WORK/bad-audit.json" || test $? = 5
grep -q '"ok":false' "$WORK/bad-audit.json"
grep -q '"violations":1' "$WORK/bad-audit.json"

# Empty archive: malformed input, not a crash.
: > "$WORK/empty.mdza"
test "$(exit_code "$MDZ" stats "$WORK/empty.mdza")" = 4
test "$(exit_code "$MDZ" audit "$WORK/empty.mdza" "$WORK/traj.mdtraj")" = 4

# --- compress --audit + per-block quality trace -----------------------------
"$MDZ" compress "$WORK/traj.mdtraj" "$WORK/audited.mdza" --quiet --audit \
  --quality-trace "$WORK/quality.jsonl"
grep -q '"first_snapshot":' "$WORK/quality.jsonl"
grep -q '"hist":\[' "$WORK/quality.jsonl"
# --audit must not change the archive bytes.
"$MDZ" compress "$WORK/traj.mdtraj" "$WORK/plain.mdza" --quiet
cmp "$WORK/audited.mdza" "$WORK/plain.mdza"

# --- archive v2: extract / index / repack -----------------------------------
# compress writes the v2 container by default; --v1 keeps the legacy one.
"$MDZ" compress "$WORK/traj.mdtraj" "$WORK/v1.mdza" --quiet --v1
"$MDZ" compress "$WORK/traj.mdtraj" "$WORK/v2.mdza" --quiet
"$MDZ" decompress "$WORK/v1.mdza" "$WORK/dec1.mdtraj" --quiet
"$MDZ" decompress "$WORK/v2.mdza" "$WORK/dec2.mdtraj" --quiet
cmp "$WORK/dec1.mdtraj" "$WORK/dec2.mdtraj"   # both containers decode alike

# repack migrates v1 -> v2 without re-encoding: the result matches a direct
# v2 write byte for byte, and the round trip back to v1 is byte-identical.
"$MDZ" repack "$WORK/v1.mdza" "$WORK/repacked.mdza" --quiet
cmp "$WORK/repacked.mdza" "$WORK/v2.mdza"
"$MDZ" repack "$WORK/v2.mdza" "$WORK/back.mdza" --quiet --v1
cmp "$WORK/back.mdza" "$WORK/v1.mdza"
"$MDZ" decompress "$WORK/repacked.mdza" "$WORK/dec3.mdtraj" --quiet
cmp "$WORK/dec3.mdtraj" "$WORK/dec1.mdtraj"

# index prints the footer's frame table without decoding payloads.
"$MDZ" index "$WORK/v2.mdza" | grep -q "^Frame"
"$MDZ" index "$WORK/v2.mdza" --json | grep -q '"frames":\['
test "$(exit_code "$MDZ" index "$WORK/v1.mdza")" = 2       # v1 has no index
# ... and the failure names the migration, not just a generic error.
"$MDZ" index "$WORK/v1.mdza" 2>&1 | grep -q "repack to v2 for random access"
test "$(exit_code "$MDZ" index "$WORK/trunc.mdza")" = 4

# extract decodes only the covering frames: snapshots 10:20 of a bs-10
# archive live in exactly one frame per axis, whatever the predictors.
"$MDZ" extract "$WORK/v2.mdza" "$WORK/slice.mdtraj" --snapshots 10:20 --quiet \
  --metrics-json "$WORK/e.json"
grep -q '"archive/frames_decoded":3' "$WORK/e.json"

# A full-range extract is the same trajectory decompress writes.
snaps=$("$MDZ" info "$WORK/v2.mdza" | grep contents | awk '{print $2}')
"$MDZ" extract "$WORK/v2.mdza" "$WORK/fullex.mdtraj" --snapshots "0:$snaps" \
  --quiet
cmp "$WORK/fullex.mdtraj" "$WORK/dec2.mdtraj"

# Particle sub-ranges and extract error paths.
"$MDZ" extract "$WORK/v2.mdza" "$WORK/psub.mdtraj" --snapshots 0:5 \
  --particles 100:200 --quiet
test -s "$WORK/psub.mdtraj"
test "$(exit_code "$MDZ" extract "$WORK/v2.mdza" "$WORK/z.mdtraj")" = 2
test "$(exit_code "$MDZ" extract "$WORK/v2.mdza" "$WORK/z.mdtraj" \
  --snapshots 20:10)" = 2                                  # empty range
test "$(exit_code "$MDZ" extract "$WORK/v2.mdza" "$WORK/z.mdtraj" \
  --snapshots 0:100000)" = 2                               # beyond the end
test "$(exit_code "$MDZ" extract "$WORK/v1.mdza" "$WORK/z.mdtraj" \
  --snapshots 0:5)" = 2                                    # v1: repack first
"$MDZ" extract "$WORK/v1.mdza" "$WORK/z.mdtraj" --snapshots 0:5 2>&1 \
  | grep -q "repack to v2 for random access"

# Corrupting one frame payload fails only reads that touch it: the footer
# index still opens, and extracting an untouched range still succeeds.
cp "$WORK/v2.mdza" "$WORK/late-corrupt.mdza"
offset=$("$MDZ" index "$WORK/v2.mdza" --json | tr '{' '\n' \
  | grep '"id":9,' | sed 's/.*"offset":\([0-9]*\).*/\1/')
printf '\377' | dd of="$WORK/late-corrupt.mdza" bs=1 seek=$((offset + 10)) \
  conv=notrunc 2>/dev/null
"$MDZ" extract "$WORK/late-corrupt.mdza" "$WORK/ok.mdtraj" --snapshots 0:10 \
  --quiet
test "$(exit_code "$MDZ" extract "$WORK/late-corrupt.mdza" "$WORK/no.mdtraj" \
  --snapshots 30:36)" = 4

# --- streaming pipeline: compress/decompress --stream, append ---------------
# --stream must produce the same bytes as the in-memory path, both ways.
"$MDZ" compress "$WORK/traj.mdtraj" "$WORK/streamed.mdza" --quiet --stream
cmp "$WORK/streamed.mdza" "$WORK/v2.mdza"
"$MDZ" decompress "$WORK/v2.mdza" "$WORK/sdec.mdtraj" --quiet --stream
cmp "$WORK/sdec.mdtraj" "$WORK/dec2.mdtraj"
"$MDZ" decompress "$WORK/v2.mdza" "$WORK/sdec.xyz" --quiet --stream
cmp "$WORK/sdec.xyz" "$WORK/out.xyz"

# --stream is v2-only in both directions.
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --stream --v1)" = 2
test "$(exit_code "$MDZ" decompress "$WORK/v1.mdza" "$WORK/z.mdtraj" \
  --stream)" = 2

# append: grow a sealed archive in place; the result must be byte-identical
# to one-shot compression of the concatenated input. Appending a trajectory
# to an archive of itself lets the concatenation be built with cat (the XYZ
# frame-comment indices differ but carry no coordinate data).
"$MDZ" decompress "$WORK/v2.mdza" "$WORK/first.xyz" --quiet
"$MDZ" compress "$WORK/first.xyz" "$WORK/grow.mdza" --quiet --bs 12
"$MDZ" append "$WORK/grow.mdza" "$WORK/first.xyz" --quiet
cat "$WORK/first.xyz" "$WORK/first.xyz" > "$WORK/double.xyz"
"$MDZ" compress "$WORK/double.xyz" "$WORK/double.mdza" --quiet --bs 12
cmp "$WORK/grow.mdza" "$WORK/double.mdza"
test "$(exit_code "$MDZ" append "$WORK/v1.mdza" "$WORK/first.xyz")" = 2
test "$(exit_code "$MDZ" append "$WORK/trunc.mdza" "$WORK/first.xyz")" = 4

# --- parser hardening (exit 2, not silent nonsense) -------------------------
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --threads -1)" = 2
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --bs 10garbage)" = 2
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --quant-scale "")" = 2
test "$(exit_code "$MDZ" extract "$WORK/v2.mdza" "$WORK/z.mdtraj" \
  --snapshots 5:2)" = 2                                    # reversed
test "$(exit_code "$MDZ" extract "$WORK/v2.mdza" "$WORK/z.mdtraj" \
  --snapshots 3:3)" = 2                                    # empty
test "$(exit_code "$MDZ" extract "$WORK/v2.mdza" "$WORK/z.mdtraj" \
  --snapshots 0:99999999999999999999999999)" = 2           # overflow
test "$(exit_code "$MDZ" extract "$WORK/v2.mdza" "$WORK/z.mdtraj" \
  --cache-frames 2x)" = 2

# Error-bound flags use the same strict parse: atof's silent 0.0 for garbage
# would bake a zero bound into the archive.
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --eb garbage)" = 2
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --eb nan)" = 2
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --eb inf)" = 2
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --eb -1)" = 2
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --eb 1e-3x)" = 2
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --eb "")" = 2
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --eb-split 1.5)" = 2
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --eb-split junk)" = 2
test "$(exit_code "$MDZ" gen Copper-B "$WORK/z.mdtraj" --scale 0.0.3)" = 2
test "$(exit_code "$MDZ" gen Copper-B "$WORK/z.mdtraj" --scale -1)" = 2

# The grown candidate set: compress with the new predictors in the trial
# loop, then verify the bound and the per-method stats columns end to end.
"$MDZ" compress "$WORK/traj.mdtraj" "$WORK/cand.mdza" --quiet \
  --methods vq,vqt,mt,ti,l2d,ba --eb 1e-3
"$MDZ" verify "$WORK/traj.mdtraj" "$WORK/cand.mdza" | grep -q "x"
"$MDZ" audit "$WORK/cand.mdza" "$WORK/traj.mdtraj" > /dev/null
"$MDZ" stats "$WORK/cand.mdza" | grep -q "L2D"
"$MDZ" compress "$WORK/traj.mdtraj" "$WORK/ba.mdza" --quiet \
  --method ba --eb-split 0.5
"$MDZ" audit "$WORK/ba.mdza" "$WORK/traj.mdtraj" > /dev/null
"$MDZ" compress "$WORK/traj.mdtraj" "$WORK/l2d.mdza" --quiet --method l2d
"$MDZ" audit "$WORK/l2d.mdza" "$WORK/traj.mdtraj" > /dev/null
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --methods vq,bogus)" = 2
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --methods vq,vq)" = 2
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --method mt --methods vq)" = 2

# Non-finite coordinates are rejected at parse time, naming the line.
printf '2\nframe 0 box 1 1 1\nAr 0.5 nan 0.25\nAr 1 2 3\n' > "$WORK/bad.xyz"
test "$(exit_code "$MDZ" compress "$WORK/bad.xyz" "$WORK/z.mdza")" = 2
"$MDZ" compress "$WORK/bad.xyz" "$WORK/z.mdza" 2>&1 | grep -q "line 3"
test "$(exit_code "$MDZ" compress "$WORK/bad.xyz" "$WORK/z.mdza" --stream)" = 2

# --- timeline tracing + live telemetry endpoint -----------------------------
# --trace-timeline writes Chrome trace-event JSON with spans and metadata.
"$MDZ" compress "$WORK/traj.mdtraj" "$WORK/tl.mdza" --quiet --stream \
  --threads 2 --trace-timeline "$WORK/tl.json"
grep -q '"traceEvents":\[' "$WORK/tl.json"
grep -q '"ph":"B"' "$WORK/tl.json"
grep -q '"ph":"E"' "$WORK/tl.json"
grep -q '"name":"thread_name"' "$WORK/tl.json"
grep -q '"name":"adp_trial"' "$WORK/tl.json"
grep -q '"displayTimeUnit":"ms"' "$WORK/tl.json"
cmp "$WORK/tl.mdza" "$WORK/streamed.mdza"   # tracing must not change output

# Malformed --listen endpoints are usage errors, before any work happens.
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --listen garbage)" = 2
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --listen 127.0.0.1:99999)" = 2
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --listen :8080)" = 2
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --listen evil.example:80)" = 2

# A SIGINT mid-stream still seals the archive: the interrupted output must
# open cleanly (possibly with fewer snapshots). Repeat the input so the run
# is long enough to catch the signal while pumping.
for i in 1 2 3 4 5 6 7 8; do cat "$WORK/first.xyz"; done > "$WORK/long.xyz"
"$MDZ" compress "$WORK/long.xyz" "$WORK/int.mdza" --quiet --stream &
mdz_pid=$!
sleep 0.2
kill -INT "$mdz_pid" 2>/dev/null || true
int_code=0; wait "$mdz_pid" || int_code=$?
# A caught interrupt reports 130 (partial-but-sealed archive); a run that
# finished before the signal landed reports 0. Anything else is a bug.
test "$int_code" = 0 -o "$int_code" = 130
if [ -s "$WORK/int.mdza" ]; then
  "$MDZ" info "$WORK/int.mdza" > /dev/null   # sealed, readable container
fi

# --- version subcommand -----------------------------------------------------
"$MDZ" version | grep -q "^mdz "
"$MDZ" version --json | grep -q '"build":{"git_sha":"'

# --- histogram quantiles (stats human table + metrics JSON) -----------------
# Any telemetry flag turns the quantile table on; the JSON snapshot carries
# the same derived p50/p95/p99 per histogram.
"$MDZ" stats "$WORK/traj.mdza" --metrics-json "$WORK/stats-m.json" \
  > "$WORK/stats.out"
grep -q "p50_s" "$WORK/stats.out"
grep -q "span/stats_scan" "$WORK/stats.out"
grep -q '"p50":[0-9]' "$WORK/stats-m.json"
grep -q '"p95":[0-9]' "$WORK/stats-m.json"
grep -q '"p99":[0-9]' "$WORK/stats-m.json"

# --- sampling profiler (--profile) ------------------------------------------
# Profiling must not change the archive bytes, and the default output is a
# folded-stack file next to the run.
"$MDZ" compress "$WORK/traj.mdtraj" "$WORK/prof.mdza" --quiet \
  --profile=250 --profile-out "$WORK/prof.folded"
cmp "$WORK/prof.mdza" "$WORK/plain.mdza"
test -e "$WORK/prof.folded"
# A .json profile path switches to the mdz.profile.v1 report.
"$MDZ" compress "$WORK/traj.mdtraj" "$WORK/prof2.mdza" --quiet \
  --profile --profile-out "$WORK/prof.json"
grep -q '^{"schema":"mdz.profile.v1",' "$WORK/prof.json"
# The flamegraph renderer turns any non-empty folded profile into SVG.
printf 'main;compress;encode 3\nmain;compress 1\n' > "$WORK/toy.folded"
sh "$(dirname "$0")/../tools/flamegraph.sh" "$WORK/toy.folded" \
  > "$WORK/toy.svg"
grep -q '<svg' "$WORK/toy.svg"
grep -q 'encode' "$WORK/toy.svg"
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --profile-hz 0garbage)" = 2
test "$(exit_code "$MDZ" compress "$WORK/traj.mdtraj" "$WORK/z.mdza" \
  --profile=99999)" = 2

# --- crash flight recorder ---------------------------------------------------
# The hidden selftest-crash command aborts on purpose; the recorder must
# write a complete report and preserve the signal exit code (128 + 6).
crash_code=0
"$MDZ" selftest-crash abort --flight-recorder "$WORK/crash.txt" \
  > /dev/null 2>&1 || crash_code=$?
test "$crash_code" = 134
grep -q "=== mdz flight recorder ===" "$WORK/crash.txt"
grep -q "SIGABRT" "$WORK/crash.txt"
grep -q "git_sha" "$WORK/crash.txt"
grep -q "backtrace" "$WORK/crash.txt"
grep -q "selftest/crash_imminent" "$WORK/crash.txt"
grep -q "=== end of report ===" "$WORK/crash.txt"
# Non-crash snapshot mode renders the same sections to stdout and exits 0.
"$MDZ" selftest-crash report --flight-recorder "$WORK/report.txt" \
  | grep -q "=== end of report ==="

echo "cli_test OK"
