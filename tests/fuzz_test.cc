// Decoder robustness: every decompressor in the repository must reject (or
// harmlessly decode) arbitrary byte strings — never crash, hang, or read out
// of bounds. Deterministic pseudo-fuzz: random buffers, truncations of valid
// streams, and valid streams with corrupted regions.

#include <vector>

#include <gtest/gtest.h>

#include "baselines/compressor_interface.h"
#include "codec/fpc.h"
#include "codec/fpzip_like.h"
#include "codec/huffman.h"
#include "codec/lz.h"
#include "codec/range_coder.h"
#include "codec/zfp_like.h"
#include "core/mdz.h"
#include "core/pointwise_relative.h"
#include "util/rng.h"

namespace mdz {
namespace {

std::vector<uint8_t> RandomBytes(Rng* rng, size_t max_size) {
  std::vector<uint8_t> bytes(1 + rng->UniformInt(max_size));
  for (auto& b : bytes) b = static_cast<uint8_t>(rng->NextU64());
  return bytes;
}

TEST(FuzzTest, CodecDecodersSurviveRandomBytes) {
  Rng rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    const auto bytes = RandomBytes(&rng, 512);
    {
      std::vector<uint32_t> out;
      (void)codec::HuffmanDecode(bytes, &out);
      (void)codec::RangeDecodeSymbols(bytes, &out);
    }
    {
      std::vector<uint8_t> out;
      (void)codec::LzDecompress(bytes, &out);
    }
    {
      std::vector<double> out;
      (void)codec::FpcDecompress(bytes, &out);
      (void)codec::FpzipLikeDecompress(bytes, &out);
      (void)codec::ZfpLikeDecompressFixedAccuracy(bytes, &out);
      (void)codec::ZfpLikeDecompressReversible(bytes, &out);
    }
  }
}

TEST(FuzzTest, MdzDecoderSurvivesRandomBytes) {
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    const auto bytes = RandomBytes(&rng, 512);
    (void)core::DecompressField(bytes);
    (void)core::DecompressFieldPointwiseRelative(bytes);
  }
}

TEST(FuzzTest, BaselineDecodersSurviveRandomBytes) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const auto bytes = RandomBytes(&rng, 512);
    for (const auto& info : baselines::AllLossyCompressors()) {
      (void)info.decompress(bytes);
    }
  }
}

TEST(FuzzTest, TruncationsOfValidStreamNeverCrash) {
  Rng rng(4);
  std::vector<std::vector<double>> field(15, std::vector<double>(80));
  for (auto& s : field) {
    for (auto& v : s) v = rng.Uniform(0.0, 9.0);
  }
  for (const auto& info : baselines::AllLossyCompressors()) {
    baselines::CompressorConfig config;
    auto compressed = info.compress(field, config);
    ASSERT_TRUE(compressed.ok()) << info.name;
    for (size_t cut = 0; cut < compressed->size();
         cut += 1 + compressed->size() / 23) {
      std::vector<uint8_t> truncated(compressed->begin(),
                                     compressed->begin() + cut);
      (void)info.decompress(truncated);
    }
  }
}

TEST(FuzzTest, CorruptedRegionsNeverCrash) {
  Rng rng(5);
  std::vector<std::vector<double>> field(12, std::vector<double>(60));
  for (auto& s : field) {
    for (auto& v : s) v = rng.Uniform(-3.0, 3.0);
  }
  core::Options options;
  options.enable_interpolation = true;  // exercise TI blocks too
  auto compressed = core::CompressField(field, options);
  ASSERT_TRUE(compressed.ok());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> mutated = *compressed;
    // Corrupt a random 1-8 byte window.
    const size_t start = rng.UniformInt(mutated.size());
    const size_t len = 1 + rng.UniformInt(8);
    for (size_t i = start; i < std::min(start + len, mutated.size()); ++i) {
      mutated[i] = static_cast<uint8_t>(rng.NextU64());
    }
    (void)core::DecompressField(mutated);
  }
}

}  // namespace
}  // namespace mdz
