// Decoder robustness: every decompressor in the repository must reject (or
// harmlessly decode) arbitrary byte strings — never crash, hang, or read out
// of bounds. Deterministic pseudo-fuzz: random buffers, truncations of valid
// streams, and valid streams with corrupted regions.

#include <cstdio>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "archive/format.h"
#include "archive/reader.h"
#include "archive/writer.h"
#include "baselines/compressor_interface.h"
#include "codec/fpc.h"
#include "codec/fpzip_like.h"
#include "codec/huffman.h"
#include "codec/lz.h"
#include "codec/range_coder.h"
#include "codec/zfp_like.h"
#include "core/mdz.h"
#include "core/parallel.h"
#include "core/pointwise_relative.h"
#include "core/thread_pool.h"
#include "util/byte_buffer.h"
#include "util/hash.h"
#include "util/rng.h"

namespace mdz {
namespace {

std::vector<std::vector<double>> RandomField(size_t m, size_t n,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> field(m, std::vector<double>(n));
  for (auto& s : field) {
    for (auto& v : s) v = rng.Uniform(-2.0, 2.0);
  }
  return field;
}

// Parses the fixed MDZ stream header (magic, version, N, eb, scale, layout)
// and returns the byte offset of the first block frame.
size_t HeaderEnd(const std::vector<uint8_t>& stream) {
  ByteReader r(stream);
  char magic[4];
  uint8_t u8 = 0;
  uint64_t var = 0;
  double d = 0.0;
  EXPECT_TRUE(r.GetBytes(magic, 4).ok());
  EXPECT_TRUE(r.Get(&u8).ok());       // version
  EXPECT_TRUE(r.GetVarint(&var).ok());  // particle count
  EXPECT_TRUE(r.Get(&d).ok());        // absolute error bound
  EXPECT_TRUE(r.GetVarint(&var).ok());  // quantization scale
  EXPECT_TRUE(r.Get(&u8).ok());       // layout
  return r.position();
}

bool IsDecodeError(const Status& status) {
  return status.code() == StatusCode::kCorruption ||
         status.code() == StatusCode::kOutOfRange;
}

std::vector<uint8_t> RandomBytes(Rng* rng, size_t max_size) {
  std::vector<uint8_t> bytes(1 + rng->UniformInt(max_size));
  for (auto& b : bytes) b = static_cast<uint8_t>(rng->NextU64());
  return bytes;
}

TEST(FuzzTest, CodecDecodersSurviveRandomBytes) {
  Rng rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    const auto bytes = RandomBytes(&rng, 512);
    {
      std::vector<uint32_t> out;
      (void)codec::HuffmanDecode(bytes, &out);
      (void)codec::RangeDecodeSymbols(bytes, &out);
    }
    {
      std::vector<uint8_t> out;
      (void)codec::LzDecompress(bytes, &out);
    }
    {
      std::vector<double> out;
      (void)codec::FpcDecompress(bytes, &out);
      (void)codec::FpzipLikeDecompress(bytes, &out);
      (void)codec::ZfpLikeDecompressFixedAccuracy(bytes, &out);
      (void)codec::ZfpLikeDecompressReversible(bytes, &out);
    }
  }
}

TEST(FuzzTest, MdzDecoderSurvivesRandomBytes) {
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    const auto bytes = RandomBytes(&rng, 512);
    (void)core::DecompressField(bytes);
    (void)core::DecompressFieldPointwiseRelative(bytes);
  }
}

TEST(FuzzTest, BaselineDecodersSurviveRandomBytes) {
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const auto bytes = RandomBytes(&rng, 512);
    for (const auto& info : baselines::AllLossyCompressors()) {
      (void)info.decompress(bytes);
    }
  }
}

TEST(FuzzTest, TruncationsOfValidStreamNeverCrash) {
  Rng rng(4);
  std::vector<std::vector<double>> field(15, std::vector<double>(80));
  for (auto& s : field) {
    for (auto& v : s) v = rng.Uniform(0.0, 9.0);
  }
  for (const auto& info : baselines::AllLossyCompressors()) {
    baselines::CompressorConfig config;
    auto compressed = info.compress(field, config);
    ASSERT_TRUE(compressed.ok()) << info.name;
    for (size_t cut = 0; cut < compressed->size();
         cut += 1 + compressed->size() / 23) {
      std::vector<uint8_t> truncated(compressed->begin(),
                                     compressed->begin() + cut);
      (void)info.decompress(truncated);
    }
  }
}

TEST(FuzzTest, CorruptedRegionsNeverCrash) {
  Rng rng(5);
  std::vector<std::vector<double>> field(12, std::vector<double>(60));
  for (auto& s : field) {
    for (auto& v : s) v = rng.Uniform(-3.0, 3.0);
  }
  core::Options options;
  options.enable_interpolation = true;  // exercise TI blocks too
  auto compressed = core::CompressField(field, options);
  ASSERT_TRUE(compressed.ok());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> mutated = *compressed;
    // Corrupt a random 1-8 byte window.
    const size_t start = rng.UniformInt(mutated.size());
    const size_t len = 1 + rng.UniformInt(8);
    for (size_t i = start; i < std::min(start + len, mutated.size()); ++i) {
      mutated[i] = static_cast<uint8_t>(rng.NextU64());
    }
    (void)core::DecompressField(mutated);
  }
}

// --- Structured corruptions of the MDZ stream format ------------------------
// Each case targets a specific framing invariant and asserts the decoder
// reports Corruption/OutOfRange through every entry point — sequential Next,
// index-driven CountSnapshots/Seek, and block-parallel DecodeAll — without
// crashing or reading out of bounds.

// A block frame whose header claims zero snapshots must be rejected: Next()
// hands out pending[pending_pos] right after a block decode, so an empty
// decode that slipped through would index past the end of `pending`.
TEST(FuzzTest, ZeroSnapshotBlockFrameIsCorruption) {
  core::Options options;
  options.method = core::Method::kMT;  // block header carries no level model
  auto compressed = core::CompressField(RandomField(10, 50, 6), options);
  ASSERT_TRUE(compressed.ok());
  std::vector<uint8_t> stream = *compressed;

  const size_t frame_start = HeaderEnd(stream);
  ByteReader frame(std::span<const uint8_t>(stream).subspan(frame_start));
  uint64_t frame_len = 0;
  ASSERT_TRUE(frame.GetVarint(&frame_len).ok());
  // Block layout: method byte, then the snapshot-count varint (10 fits in
  // one varint byte, so overwriting it with 0 keeps the framing intact).
  const size_t s_count_pos = frame_start + frame.position() + 1;
  ASSERT_EQ(stream[s_count_pos], 10);
  stream[s_count_pos] = 0;

  auto decoded = core::DecompressField(stream);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(IsDecodeError(decoded.status())) << decoded.status().ToString();

  auto decompressor = core::FieldDecompressor::Open(stream);
  ASSERT_TRUE(decompressor.ok());
  auto count = (*decompressor)->CountSnapshots();
  ASSERT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), StatusCode::kCorruption);

  auto sequential = core::FieldDecompressor::Open(stream);
  ASSERT_TRUE(sequential.ok());
  std::vector<double> snapshot;
  auto next = (*sequential)->Next(&snapshot);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kCorruption);

  core::ThreadPool pool(4);
  auto parallel = core::DecompressFieldParallel(stream, &pool);
  ASSERT_FALSE(parallel.ok());
  EXPECT_TRUE(IsDecodeError(parallel.status()));
}

TEST(FuzzTest, TruncatedFrameVarintIsCorruption) {
  auto compressed = core::CompressField(RandomField(12, 40, 7), core::Options());
  ASSERT_TRUE(compressed.ok());
  // A dangling continuation byte after the last valid frame: the next frame
  // length varint never terminates.
  std::vector<uint8_t> stream = *compressed;
  stream.push_back(0x80);
  stream.push_back(0x80);

  auto decoded = core::DecompressField(stream);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);

  auto decompressor = core::FieldDecompressor::Open(stream);
  ASSERT_TRUE(decompressor.ok());
  EXPECT_FALSE((*decompressor)->CountSnapshots().ok());
}

TEST(FuzzTest, OversizedBlobLengthIsCorruption) {
  auto compressed = core::CompressField(RandomField(10, 30, 8), core::Options());
  ASSERT_TRUE(compressed.ok());
  // Replace the block frames with one whose length claims ~1 TB.
  std::vector<uint8_t> stream(compressed->begin(),
                              compressed->begin() + HeaderEnd(*compressed));
  ByteWriter w;
  w.PutVarint(1ull << 40);
  w.Put<uint8_t>(0x42);
  stream.insert(stream.end(), w.bytes().begin(), w.bytes().end());

  auto decoded = core::DecompressField(stream);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);

  core::ThreadPool pool(2);
  auto parallel = core::DecompressFieldParallel(stream, &pool);
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().code(), StatusCode::kCorruption);
}

// A failed index build (truncated final frame) must leave the decompressor
// in a clean state: retrying must not accumulate partial index entries or
// change the reported error.
TEST(FuzzTest, IndexBuildIsIdempotentAfterTruncation) {
  core::Options options;
  options.buffer_size = 10;
  auto compressed = core::CompressField(RandomField(20, 60, 9), options);
  ASSERT_TRUE(compressed.ok());
  std::vector<uint8_t> truncated(compressed->begin(), compressed->end() - 3);

  auto decompressor = core::FieldDecompressor::Open(truncated);
  ASSERT_TRUE(decompressor.ok());
  auto first = (*decompressor)->CountSnapshots();
  ASSERT_FALSE(first.ok());
  auto second = (*decompressor)->CountSnapshots();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(first.status().ToString(), second.status().ToString());
  EXPECT_FALSE((*decompressor)->SeekToSnapshot(0).ok());
}

TEST(FuzzTest, MdzTruncationsReturnErrorStatusNeverCrash) {
  core::Options options;
  options.buffer_size = 5;
  auto compressed = core::CompressField(RandomField(23, 45, 10), options);
  ASSERT_TRUE(compressed.ok());
  core::ThreadPool pool(2);
  for (size_t cut = 0; cut < compressed->size(); ++cut) {
    const std::vector<uint8_t> truncated(compressed->begin(),
                                         compressed->begin() + cut);
    auto decoded = core::DecompressField(truncated);
    if (!decoded.ok()) {
      EXPECT_TRUE(IsDecodeError(decoded.status()))
          << "cut=" << cut << ": " << decoded.status().ToString();
    }
    auto parallel = core::DecompressFieldParallel(truncated, &pool);
    if (!parallel.ok()) {
      EXPECT_TRUE(IsDecodeError(parallel.status()))
          << "cut=" << cut << ": " << parallel.status().ToString();
    }
  }
}

// --- Structured corruptions of the archive v2 container ----------------------
// The reader verifies the footer index up front and each frame's CRC lazily.
// Every mutation here must surface as Corruption through Open/ReadSnapshots —
// never a crash, hang, or out-of-bounds read (run under MDZ_SANITIZE).

class ArchiveV2FuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(77);
    core::Trajectory traj;
    core::Snapshot current;
    for (auto& axis : current.axes) {
      axis.resize(40);
      for (auto& v : axis) v = rng.Uniform(-5.0, 5.0);
    }
    for (size_t s = 0; s < 30; ++s) {
      traj.snapshots.push_back(current);
      for (auto& axis : current.axes) {
        for (auto& v : axis) v += rng.Uniform(-0.05, 0.05);
      }
    }
    core::Options options;
    options.buffer_size = 10;
    options.enable_interpolation = true;  // exercise TI chain frames too
    auto compressed = core::CompressTrajectory(traj, options);
    ASSERT_TRUE(compressed.ok());
    // Unique per test: ctest runs fixture tests as parallel processes, and a
    // shared path lets one test read another's freshly-written archive.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = ::testing::TempDir() + "/fuzz_v2_" + info->name() + ".mdza";
    ASSERT_TRUE(archive::WriteV2(*compressed, "fuzz", traj.box, path_).ok());
    bytes_ = ReadAll(path_);
    ASSERT_GE(bytes_.size(), archive::kFileTailBytes);
    std::memcpy(&footer_len_, bytes_.data() + bytes_.size() - 12, 8);
    footer_offset_ = bytes_.size() - archive::kFileTailBytes - footer_len_;
  }

  void TearDown() override { std::remove(path_.c_str()); }

  static std::vector<uint8_t> ReadAll(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    return bytes;
  }

  void WriteAll(const std::vector<uint8_t>& bytes) {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }

  // Rewrites the file with a mutated footer, re-sealed with a *valid* CRC so
  // the mutation reaches structural validation instead of the checksum.
  void RewriteFooter(const std::function<void(archive::Footer*)>& mutate) {
    auto footer = archive::ParseFooter(
        std::span<const uint8_t>(bytes_).subspan(footer_offset_, footer_len_));
    ASSERT_TRUE(footer.ok()) << footer.status().ToString();
    mutate(&*footer);
    ByteWriter w;
    archive::SerializeFooter(*footer, &w);
    const uint64_t crc = Fnv1a64(w.bytes());
    const uint64_t len = w.size();
    w.Put<uint64_t>(crc);
    w.Put<uint64_t>(len);
    w.PutBytes(archive::kTrailerMagic, sizeof(archive::kTrailerMagic));
    std::vector<uint8_t> mutated(bytes_.begin(),
                                 bytes_.begin() + footer_offset_);
    mutated.insert(mutated.end(), w.bytes().begin(), w.bytes().end());
    WriteAll(mutated);
  }

  // Open must fail as Corruption; it must never succeed or crash.
  void ExpectOpenCorruption() {
    auto reader = archive::ArchiveReader::Open(path_);
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), StatusCode::kCorruption)
        << reader.status().ToString();
  }

  std::string path_;
  std::vector<uint8_t> bytes_;
  uint64_t footer_len_ = 0;
  size_t footer_offset_ = 0;
};

TEST_F(ArchiveV2FuzzTest, TruncatedFooterIsCorruption) {
  // Every truncation point from mid-frames through the tail.
  for (size_t keep = footer_offset_ / 2; keep < bytes_.size();
       keep += 1 + footer_len_ / 37) {
    WriteAll(std::vector<uint8_t>(bytes_.begin(), bytes_.begin() + keep));
    auto reader = archive::ArchiveReader::Open(path_);
    if (reader.ok()) {
      FAIL() << "truncated archive opened at keep=" << keep;
    }
    EXPECT_EQ(reader.status().code(), StatusCode::kCorruption)
        << "keep=" << keep << ": " << reader.status().ToString();
  }
}

TEST_F(ArchiveV2FuzzTest, OverlappingFrameOffsetsAreCorruption) {
  RewriteFooter([](archive::Footer* footer) {
    ASSERT_GE(footer->frames.size(), 2u);
    footer->frames[1].offset = footer->frames[0].offset;
  });
  ExpectOpenCorruption();
}

TEST_F(ArchiveV2FuzzTest, OutOfRangeFrameOffsetIsCorruption) {
  const size_t footer_offset = footer_offset_;
  RewriteFooter([footer_offset](archive::Footer* footer) {
    // Points past the frame region, into the footer itself.
    footer->frames.back().offset = footer_offset;
  });
  ExpectOpenCorruption();
}

TEST_F(ArchiveV2FuzzTest, UnknownFooterMethodByteIsCorruption) {
  // 3 is kAdaptive (a mode selector, never a frame method), 7 is the first
  // reserved byte past the concrete registry, 255 is garbage. All must fail
  // structural validation at Open — never reach the payload decoder.
  for (uint8_t bad : {uint8_t{3}, uint8_t{7}, uint8_t{255}}) {
    RewriteFooter([bad](archive::Footer* footer) {
      footer->frames[0].method = static_cast<core::Method>(bad);
    });
    ExpectOpenCorruption();
  }
}

TEST_F(ArchiveV2FuzzTest, SnapshotRangeGapIsCorruption) {
  RewriteFooter([](archive::Footer* footer) {
    // Shift one mid-stream frame's range: its axis no longer tiles
    // [0, num_snapshots) contiguously.
    footer->frames[3].first_snapshot += 1;
  });
  ExpectOpenCorruption();
}

TEST_F(ArchiveV2FuzzTest, IndexCrcFlipFailsOnlyTouchingReads) {
  // Flip the recorded CRC of one mid-stream frame in the (re-sealed) footer:
  // the index entry and the on-disk record now disagree.
  RewriteFooter([](archive::Footer* footer) {
    footer->frames[3].crc ^= 1;
  });
  auto reader = archive::ArchiveReader::Open(path_);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const auto& f = (*reader)->footer().frames[3];
  auto bad = (*reader)->ReadSnapshots(f.first_snapshot, 1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
}

TEST_F(ArchiveV2FuzzTest, FrameByteFlipsNeverCrashAndVerifyOnRead) {
  // Flip single bytes across the frame region; a full-range read must either
  // reproduce the archive's contents or report a decode error — never crash.
  Rng rng(78);
  for (int trial = 0; trial < 40; ++trial) {
    auto mutated = bytes_;
    const size_t pos = archive::kFileHeaderBytes +
                       rng.UniformInt(footer_offset_ -
                                      archive::kFileHeaderBytes);
    mutated[pos] ^= static_cast<uint8_t>(1 + rng.UniformInt(255));
    WriteAll(mutated);
    auto reader = archive::ArchiveReader::Open(path_);
    if (!reader.ok()) continue;  // flip landed somewhere Open already checks
    auto got = (*reader)->ReadSnapshots(0, (*reader)->num_snapshots());
    if (!got.ok()) {
      EXPECT_TRUE(IsDecodeError(got.status()))
          << "pos=" << pos << ": " << got.status().ToString();
    }
    (void)(*reader)->Reassemble();
  }
}

TEST_F(ArchiveV2FuzzTest, RandomTailBytesNeverCrashOpen) {
  Rng rng(79);
  for (int trial = 0; trial < 100; ++trial) {
    auto mutated = bytes_;
    // Scramble the 20-byte tail (crc, length, trailer magic).
    for (size_t i = mutated.size() - archive::kFileTailBytes;
         i < mutated.size(); ++i) {
      if (rng.UniformInt(2) == 0) {
        mutated[i] = static_cast<uint8_t>(rng.NextU64());
      }
    }
    WriteAll(mutated);
    (void)archive::ArchiveReader::Open(path_);
  }
}

}  // namespace
}  // namespace mdz
