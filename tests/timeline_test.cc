// Tests for timeline tracing (src/obs/timeline) and the embedded telemetry
// endpoint (src/obs/telemetry_server): ring-buffer concurrency, span
// pairing and cross-thread parentage, the Chrome trace-event export golden,
// listen-address validation, and a live HTTP scrape against an in-process
// server. Fixtures are named Obs* so tools/ci.sh's TSan leg picks them up.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/thread_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/telemetry_server.h"
#include "obs/timeline.h"

namespace mdz::obs {
namespace {

class EnabledGuard {
 public:
  explicit EnabledGuard(bool on) : prev_(Enabled()) { SetEnabled(on); }
  ~EnabledGuard() { SetEnabled(prev_); }

 private:
  bool prev_;
};

// Turns the global timeline's recording on for one test, draining stale
// events first and restoring the previous state after.
class RecordingGuard {
 public:
  explicit RecordingGuard(Timeline& timeline) : timeline_(timeline) {
    timeline_.DrainRings();
    timeline_.Reset();
    prev_ = timeline_.recording();
    timeline_.SetRecording(true);
  }
  ~RecordingGuard() {
    timeline_.SetRecording(prev_);
    timeline_.DrainRings();
    timeline_.Reset();
  }

 private:
  Timeline& timeline_;
  bool prev_;
};

// --- Trace context ----------------------------------------------------------

TEST(ObsTimelineTest, BeginTraceInstallsContextAndScopedRestores) {
  const TraceContext before = CurrentTraceContext();
  const TraceContext trace = BeginTrace();
  EXPECT_NE(trace.trace_id, 0u);
  EXPECT_NE(trace.span_id, 0u);
  EXPECT_EQ(CurrentTraceContext().trace_id, trace.trace_id);
  {
    TraceContext other;
    other.trace_id = trace.trace_id + 1000;
    other.span_id = 99;
    ScopedTraceContext adopted(other);
    EXPECT_EQ(CurrentTraceContext().trace_id, other.trace_id);
    EXPECT_EQ(CurrentTraceContext().span_id, 99u);
  }
  EXPECT_EQ(CurrentTraceContext().trace_id, trace.trace_id);
  EXPECT_EQ(CurrentTraceContext().span_id, trace.span_id);
  ScopedTraceContext restore(before);  // leave no trace for other tests
  EXPECT_EQ(CurrentTraceContext().trace_id, before.trace_id);
}

TEST(ObsTimelineTest, IdsAreUniqueAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::vector<uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ids, t] {
      ids[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) ids[t].push_back(NextSpanId());
    });
  }
  for (auto& thread : threads) thread.join();
  std::vector<uint64_t> all;
  for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

// --- Ring buffers -----------------------------------------------------------

// Many writer threads record into their own rings while a drainer loops;
// every event must end up either in the store or in the dropped count. Run
// under TSan by tools/ci.sh (fixture name matches its Obs* filter).
TEST(ObsTimelineTest, ConcurrentWritersVsDrain) {
  Timeline timeline(/*ring_capacity=*/128, /*store_capacity=*/1 << 20);
  timeline.SetRecording(true);

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::atomic<bool> stop{false};

  std::thread drainer([&] {
    while (!stop.load(std::memory_order_acquire)) timeline.DrainRings();
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&timeline] {
      for (int i = 0; i < kPerWriter; ++i) {
        timeline.Record("evt", EventPhase::kInstant);
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  drainer.join();
  timeline.DrainRings();

  const uint64_t total =
      static_cast<uint64_t>(timeline.store_size()) + timeline.dropped();
  EXPECT_EQ(total, static_cast<uint64_t>(kWriters) * kPerWriter);
}

TEST(ObsTimelineTest, FullRingDropsNewestAndCounts) {
  Timeline timeline(/*ring_capacity=*/8, /*store_capacity=*/1 << 10);
  timeline.SetRecording(true);
  for (int i = 0; i < 20; ++i) timeline.Record("evt", EventPhase::kInstant);
  EXPECT_EQ(timeline.DrainRings(), 8u);
  EXPECT_EQ(timeline.dropped(), 12u);
  // The ring drained; the next events fit again.
  timeline.Record("evt", EventPhase::kInstant);
  EXPECT_EQ(timeline.DrainRings(), 1u);
}

TEST(ObsTimelineTest, StoreEvictsOldestPastCapacity) {
  Timeline timeline(/*ring_capacity=*/64, /*store_capacity=*/16);
  timeline.SetRecording(true);
  for (int i = 0; i < 40; ++i) {
    timeline.Record("evt", EventPhase::kInstant);
    timeline.DrainRings();
  }
  EXPECT_EQ(timeline.store_size(), 16u);
  EXPECT_EQ(timeline.dropped(), 24u);  // evictions count as drops
}

// --- Span pairing and parentage ---------------------------------------------

// Spans opened inside pool tasks must pair begin/end and parent onto the
// submitting scope's span across threads.
TEST(ObsTimelineTest, SpansNestAcrossPoolThreads) {
  EnabledGuard enabled(true);
  Timeline& timeline = Timeline::Global();
  RecordingGuard recording(timeline);
  const TraceContext saved = CurrentTraceContext();
  const TraceContext trace = BeginTrace();

  core::ThreadPool pool(3);
  uint64_t outer_span_id = 0;
  {
    MDZ_SPAN("outer");
    outer_span_id = CurrentTraceContext().span_id;
    EXPECT_NE(outer_span_id, trace.span_id);
    pool.ParallelFor(0, 16, [](size_t) {
      MDZ_SPAN("inner");
      // Yield so other threads claim iterations even on a 1-core box.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  ScopedTraceContext restore(saved);

  const std::vector<TimelineEvent> events = timeline.Snapshot();
  std::map<uint64_t, int> phase_count;  // span_id -> begins - ends
  int inner_begins = 0;
  std::set<uint32_t> inner_tids;
  for (const auto& e : events) {
    if (e.phase == EventPhase::kBegin) {
      ++phase_count[e.span_id];
      if (std::string(e.name) == "inner") {
        ++inner_begins;
        inner_tids.insert(e.tid);
        EXPECT_EQ(e.trace_id, trace.trace_id);
        EXPECT_EQ(e.parent_span_id, outer_span_id);
      }
      if (std::string(e.name) == "outer") {
        EXPECT_EQ(e.parent_span_id, trace.span_id);
      }
    } else if (e.phase == EventPhase::kEnd) {
      --phase_count[e.span_id];
    }
  }
  EXPECT_EQ(inner_begins, 16);
  // Submitter participates in its own batch, workers take the rest; with 3
  // workers plus the caller over 16 iterations at least two threads ran.
  EXPECT_GE(inner_tids.size(), 2u);
  for (const auto& [span_id, balance] : phase_count) {
    EXPECT_EQ(balance, 0) << "unpaired begin/end for span " << span_id;
  }
}

// A span opened with no enclosing trace or span is a root: its begin event
// must carry parent 0, not its own id (by the time the event is recorded
// the thread-local context already points at the new span, so any tls
// fallback in Record would self-parent it).
TEST(ObsTimelineTest, RootSpanHasNoParent) {
  EnabledGuard enabled(true);
  Timeline& timeline = Timeline::Global();
  RecordingGuard recording(timeline);
  ScopedTraceContext clean(TraceContext{});  // no trace, no open span

  uint64_t span_id = 0;
  {
    MDZ_SPAN("root");
    span_id = CurrentTraceContext().span_id;
    EXPECT_NE(span_id, 0u);
  }

  bool saw_begin = false;
  for (const auto& e : timeline.Snapshot()) {
    if (e.phase == EventPhase::kBegin && e.span_id == span_id) {
      saw_begin = true;
      EXPECT_EQ(e.parent_span_id, 0u);
      EXPECT_NE(e.parent_span_id, e.span_id);
    }
  }
  EXPECT_TRUE(saw_begin);
}

// A thread that recorded into a since-destroyed Timeline must not retain
// that ring forever: the entry is pruned when the thread next creates a
// ring, so dead test-scoped Timelines cannot accumulate ~MBs per thread.
TEST(ObsTimelineTest, DeadTimelineRingsArePrunedFromThreads) {
  // Anchor ring creation prunes entries left over from earlier tests, so
  // every entry counted in `base` belongs to a still-live Timeline.
  Timeline anchor(/*ring_capacity=*/64, /*store_capacity=*/256);
  anchor.SetRecording(true);
  anchor.Record("evt", EventPhase::kInstant);
  const size_t base = ThreadRingCountForTest();
  {
    Timeline dead(/*ring_capacity=*/64, /*store_capacity=*/256);
    dead.SetRecording(true);
    dead.Record("evt", EventPhase::kInstant);
    EXPECT_EQ(ThreadRingCountForTest(), base + 1);
  }
  Timeline fresh(/*ring_capacity=*/64, /*store_capacity=*/256);
  fresh.SetRecording(true);
  fresh.Record("evt", EventPhase::kInstant);  // creation prunes the dead ring
  EXPECT_EQ(ThreadRingCountForTest(), base + 1);
  EXPECT_EQ(fresh.store_size() + fresh.DrainRings(), 1u);
}

TEST(ObsTimelineTest, RecentSpansPairsAndOrders) {
  Timeline timeline(/*ring_capacity=*/64, /*store_capacity=*/1 << 10);
  timeline.SetRecording(true);
  TimelineEvent e;
  e.tid = 7;
  e.trace_id = 5;

  e.name = "slow";
  e.phase = EventPhase::kBegin;
  e.span_id = 1;
  e.ts_ns = 100;
  timeline.RecordForTest(e);
  e.name = "fast";
  e.span_id = 2;
  e.parent_span_id = 1;
  e.ts_ns = 200;
  timeline.RecordForTest(e);
  e.phase = EventPhase::kEnd;
  e.ts_ns = 300;
  timeline.RecordForTest(e);
  e.name = "slow";
  e.span_id = 1;
  e.parent_span_id = 0;
  e.ts_ns = 900;
  timeline.RecordForTest(e);
  e.name = "open";  // begin with no end: not summarized
  e.phase = EventPhase::kBegin;
  e.span_id = 3;
  e.ts_ns = 950;
  timeline.RecordForTest(e);

  const std::vector<SpanSummary> spans = RecentSpans(timeline, 10);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "slow");  // completed last
  EXPECT_EQ(spans[0].duration_ns, 800u);
  EXPECT_STREQ(spans[1].name, "fast");
  EXPECT_EQ(spans[1].parent_span_id, 1u);
  EXPECT_EQ(spans[1].duration_ns, 100u);

  const std::vector<SpanSummary> capped = RecentSpans(timeline, 1);
  ASSERT_EQ(capped.size(), 1u);
  EXPECT_STREQ(capped[0].name, "slow");
}

// --- Chrome trace export ----------------------------------------------------

TEST(ObsTimelineTest, ChromeTraceJsonGolden) {
  Timeline timeline(/*ring_capacity=*/64, /*store_capacity=*/1 << 10);
  timeline.SetRecording(true);

  // tids far above any real thread ordinal, so no process-wide thread name
  // ever matches them and the export stays byte-stable.
  TimelineEvent begin;
  begin.name = "work";
  begin.phase = EventPhase::kBegin;
  begin.ts_ns = 1500;
  begin.trace_id = 7;
  begin.span_id = 3;
  begin.parent_span_id = 2;
  begin.tid = 900042;
  begin.arg_count = 1;
  begin.args[0] = {"method", 1};
  timeline.RecordForTest(begin);

  TimelineEvent end = begin;
  end.phase = EventPhase::kEnd;
  end.ts_ns = 3000;
  end.arg_count = 0;
  timeline.RecordForTest(end);

  TimelineEvent counter;
  counter.name = "rss";
  counter.phase = EventPhase::kCounter;
  counter.ts_ns = 2000;
  counter.trace_id = 7;  // suppressed on counters
  counter.tid = 900042;
  counter.arg_count = 1;
  counter.args[0] = {"mb", 128};
  timeline.RecordForTest(counter);

  TimelineEvent instant;
  instant.name = "mark \"x\"";
  instant.phase = EventPhase::kInstant;
  instant.ts_ns = 2500;
  instant.tid = 900043;
  timeline.RecordForTest(instant);

  const std::string json = ToChromeTraceJson(timeline);
  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"work\",\"ph\":\"B\",\"pid\":1,\"tid\":900042,\"ts\":1.500,"
      "\"args\":{\"trace_id\":7,\"span_id\":3,\"parent_span_id\":2,"
      "\"method\":1}},"
      "{\"name\":\"rss\",\"ph\":\"C\",\"pid\":1,\"tid\":900042,\"ts\":2.000,"
      "\"args\":{\"mb\":128}},"
      "{\"name\":\"mark \\\"x\\\"\",\"ph\":\"i\",\"pid\":1,\"tid\":900043,"
      "\"ts\":2.500,\"s\":\"t\",\"args\":{}},"
      "{\"name\":\"work\",\"ph\":\"E\",\"pid\":1,\"tid\":900042,\"ts\":3.000,"
      "\"args\":{\"trace_id\":7,\"span_id\":3,\"parent_span_id\":2}}"
      "],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(json, expected);
}

TEST(ObsTimelineTest, ChromeTraceNamesOnlyPresentThreads) {
  // This thread records (and is named); the export must not list rows for
  // other named threads that never recorded into this timeline.
  Timeline timeline(/*ring_capacity=*/64, /*store_capacity=*/1 << 10);
  timeline.SetRecording(true);
  SetTimelineThreadName("golden-main");
  std::thread other([] { SetTimelineThreadName("golden-other"); });
  other.join();
  timeline.Record("evt", EventPhase::kInstant);
  const std::string json = ToChromeTraceJson(timeline);
  EXPECT_NE(json.find("golden-main"), std::string::npos);
  EXPECT_EQ(json.find("golden-other"), std::string::npos);
}

// --- Listen-address validation ----------------------------------------------

TEST(ObsTelemetryServerTest, ParseListenAddressAcceptsHostPort) {
  ListenAddress address;
  ASSERT_TRUE(ParseListenAddress("127.0.0.1:8080", &address).ok());
  EXPECT_EQ(address.host, "127.0.0.1");
  EXPECT_EQ(address.port, 8080);
  ASSERT_TRUE(ParseListenAddress("localhost:0", &address).ok());
  EXPECT_EQ(address.host, "localhost");
  EXPECT_EQ(address.port, 0);
}

TEST(ObsTelemetryServerTest, ParseListenAddressRejectsGarbage) {
  ListenAddress address;
  for (const char* bad :
       {"", "nope", ":8080", "127.0.0.1:", "127.0.0.1:banana",
        "127.0.0.1:99999", "127.0.0.1:-1", "evil.example:80",
        "127.0.0.1:80 extra"}) {
    const Status s = ParseListenAddress(bad, &address);
    EXPECT_FALSE(s.ok()) << "accepted: \"" << bad << '"';
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << bad;
  }
}

// --- HTTP server ------------------------------------------------------------

// Minimal blocking HTTP GET against 127.0.0.1:<port>.
std::string HttpGet(uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::write(fd, request.data() + off, request.size() - off);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ObsTelemetryServerTest, ServesInjectedRegistryAndTimeline) {
  MetricsRegistry registry;
  registry.GetCounter("served/requests")->Add(41);
  Timeline timeline(/*ring_capacity=*/64, /*store_capacity=*/1 << 10);
  timeline.SetRecording(true);
  TimelineEvent e;
  e.name = "probe";
  e.phase = EventPhase::kBegin;
  e.span_id = 9;
  e.ts_ns = 10;
  timeline.RecordForTest(e);
  e.phase = EventPhase::kEnd;
  e.ts_ns = 40;
  timeline.RecordForTest(e);

  TelemetryServer server(&registry, &timeline);
  ListenAddress address;
  ASSERT_TRUE(ParseListenAddress("127.0.0.1:0", &address).ok());
  ASSERT_TRUE(server.Start(address).ok());
  ASSERT_NE(server.port(), 0);

  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("mdz_served_requests 41"), std::string::npos);
  EXPECT_NE(metrics.find("mdz_build_info"), std::string::npos);

  const std::string buildz = HttpGet(server.port(), "/buildz");
  EXPECT_NE(buildz.find("\"git_sha\""), std::string::npos);

  const std::string tracez = HttpGet(server.port(), "/tracez");
  EXPECT_NE(tracez.find("\"schema\":\"mdz.tracez.v1\""), std::string::npos);
  EXPECT_NE(tracez.find("\"name\":\"probe\""), std::string::npos);
  EXPECT_NE(tracez.find("\"duration_ns\":30"), std::string::npos);

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);

  EXPECT_GE(server.requests_served(), 5u);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(ObsTelemetryServerTest, ScrapeWhilePoolIsBusy) {
  // A scrape must observe a consistent exposition while worker threads
  // hammer the registry (TSan-checked via ci.sh's Obs* filter).
  EnabledGuard enabled(true);
  PreRegisterCoreMetrics();  // pool/tasks must exist before the first scrape
  TelemetryServer server;    // process-global registry + timeline
  ListenAddress address;
  ASSERT_TRUE(ParseListenAddress("localhost:0", &address).ok());
  ASSERT_TRUE(server.Start(address).ok());

  std::atomic<bool> stop{false};
  std::thread load([&stop] {
    core::ThreadPool pool(2);
    while (!stop.load(std::memory_order_acquire)) {
      pool.ParallelFor(0, 8, [](size_t) { MDZ_SPAN("busy"); });
    }
  });
  for (int i = 0; i < 10; ++i) {
    const std::string metrics = HttpGet(server.port(), "/metrics");
    EXPECT_NE(metrics.find("200 OK"), std::string::npos);
    EXPECT_NE(metrics.find("mdz_pool_tasks"), std::string::npos);
  }
  stop.store(true, std::memory_order_release);
  load.join();
  server.Stop();
}

TEST(ObsTelemetryServerTest, RejectsNonGetAndMalformed) {
  MetricsRegistry registry;
  TelemetryServer server(&registry);
  ListenAddress address;
  ASSERT_TRUE(ParseListenAddress("127.0.0.1:0", &address).ok());
  ASSERT_TRUE(server.Start(address).ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char request[] = "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_GT(::write(fd, request, sizeof(request) - 1), 0);
  std::string response;
  char buf[1024];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("405 Method Not Allowed"), std::string::npos);
  server.Stop();
}

// --- Resource sampler -------------------------------------------------------

TEST(ObsTelemetryServerTest, ResourceSamplerEmitsCounterEvents) {
  Timeline timeline(/*ring_capacity=*/1024, /*store_capacity=*/1 << 12);
  timeline.SetRecording(true);
  std::atomic<uint64_t> depth{3};
  ResourceSampler sampler(
      &timeline, [&depth] { return depth.load(); }, [] { return 77ull; });
  sampler.Start(/*interval_ms=*/5);
  while (sampler.samples_taken() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sampler.Stop();

  bool saw_rss = false, saw_depth = false, saw_bytes = false;
  for (const auto& e : timeline.Snapshot()) {
    if (e.phase != EventPhase::kCounter) continue;
    const std::string name = e.name;
    if (name == "resource/rss_mb") saw_rss = true;
    if (name == "stream/queue_depth") {
      saw_depth = true;
      EXPECT_EQ(e.args[0].value, 3u);
    }
    if (name == "stream/bytes_in") {
      saw_bytes = true;
      EXPECT_EQ(e.args[0].value, 77u);
    }
  }
  EXPECT_TRUE(saw_rss);
  EXPECT_TRUE(saw_depth);
  EXPECT_TRUE(saw_bytes);
}

}  // namespace
}  // namespace mdz::obs
