// Tests for the extension features beyond the paper's core system: random-
// access (seek) decompression, the point-wise relative error bound mode, and
// the SZ3-interpolation extension baseline.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/sz3_interp.h"
#include "core/mdz.h"
#include "core/pointwise_relative.h"
#include "util/rng.h"

namespace mdz {
namespace {

std::vector<std::vector<double>> SmoothField(size_t m, size_t n,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> field(m, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) field[0][i] = rng.Uniform(0.0, 40.0);
  for (size_t s = 1; s < m; ++s) {
    for (size_t i = 0; i < n; ++i) {
      field[s][i] = field[s - 1][i] + rng.Gaussian(0.0, 0.02);
    }
  }
  return field;
}

// --- Random access ------------------------------------------------------------

class SeekTest : public ::testing::TestWithParam<core::Method> {};

TEST_P(SeekTest, SeekMatchesSequentialDecode) {
  const auto field = SmoothField(47, 120, 1);
  core::Options options;
  options.method = GetParam();
  options.buffer_size = 10;
  auto compressed = core::CompressField(field, options);
  ASSERT_TRUE(compressed.ok());

  // Sequential reference decode.
  auto reference = core::DecompressField(*compressed);
  ASSERT_TRUE(reference.ok());

  auto decompressor = core::FieldDecompressor::Open(*compressed);
  ASSERT_TRUE(decompressor.ok());
  auto count = (*decompressor)->CountSnapshots();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 47u);

  // Random jumps, forward and backward, including buffer boundaries.
  std::vector<double> snapshot;
  for (size_t target : {size_t{31}, size_t{0}, size_t{46}, size_t{9},
                        size_t{10}, size_t{20}, size_t{5}}) {
    ASSERT_TRUE((*decompressor)->SeekToSnapshot(target).ok()) << target;
    auto more = (*decompressor)->Next(&snapshot);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
    EXPECT_EQ(snapshot, (*reference)[target]) << "snapshot " << target;
  }

  // Sequential reads continue correctly after a seek.
  ASSERT_TRUE((*decompressor)->SeekToSnapshot(18).ok());
  for (size_t s = 18; s < 25; ++s) {
    auto more = (*decompressor)->Next(&snapshot);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
    EXPECT_EQ(snapshot, (*reference)[s]) << "snapshot " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, SeekTest,
                         ::testing::Values(core::Method::kVQ,
                                           core::Method::kVQT,
                                           core::Method::kMT,
                                           core::Method::kAdaptive,
                                           core::Method::kTI),
                         [](const auto& info) {
                           return std::string(core::MethodName(info.param));
                         });

TEST(SeekTest, OutOfRangeIsError) {
  const auto field = SmoothField(12, 30, 2);
  auto compressed = core::CompressField(field, core::Options());
  ASSERT_TRUE(compressed.ok());
  auto decompressor = core::FieldDecompressor::Open(*compressed);
  ASSERT_TRUE(decompressor.ok());
  EXPECT_EQ((*decompressor)->SeekToSnapshot(12).code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE((*decompressor)->SeekToSnapshot(11).ok());
}

TEST(SeekTest, EndOfStreamAfterSeekToLastBuffer) {
  const auto field = SmoothField(23, 30, 3);
  auto compressed = core::CompressField(field, core::Options());
  ASSERT_TRUE(compressed.ok());
  auto decompressor = core::FieldDecompressor::Open(*compressed);
  ASSERT_TRUE(decompressor.ok());
  ASSERT_TRUE((*decompressor)->SeekToSnapshot(22).ok());
  std::vector<double> snapshot;
  auto more = (*decompressor)->Next(&snapshot);
  ASSERT_TRUE(more.ok());
  EXPECT_TRUE(*more);
  more = (*decompressor)->Next(&snapshot);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);  // exhausted
}

// --- Point-wise relative bound ---------------------------------------------------

class PointwiseRelativeTest : public ::testing::TestWithParam<double> {};

TEST_P(PointwiseRelativeTest, BoundHoldsForEveryValue) {
  const double rel = GetParam();
  Rng rng(4);
  // Values spanning many orders of magnitude — exactly where a value-range
  // bound fails and a point-wise relative bound matters.
  std::vector<std::vector<double>> field(20, std::vector<double>(200));
  for (auto& snapshot : field) {
    for (auto& v : snapshot) {
      const double mag = std::pow(10.0, rng.Uniform(-6.0, 6.0));
      v = (rng.NextDouble() < 0.5 ? -1.0 : 1.0) * mag;
    }
  }
  field[3][7] = 0.0;    // exact zero must survive
  field[9][11] = -0.0;

  auto compressed = core::CompressFieldPointwiseRelative(field, rel);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  auto decoded = core::DecompressFieldPointwiseRelative(*compressed);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  for (size_t s = 0; s < field.size(); ++s) {
    for (size_t i = 0; i < field[s].size(); ++i) {
      const double orig = field[s][i];
      const double dec = (*decoded)[s][i];
      ASSERT_LE(std::fabs(dec - orig), rel * std::fabs(orig) * 1.0000001)
          << "s=" << s << " i=" << i << " orig=" << orig;
    }
  }
  EXPECT_EQ((*decoded)[3][7], 0.0);
  EXPECT_EQ((*decoded)[9][11], 0.0);
}

INSTANTIATE_TEST_SUITE_P(Bounds, PointwiseRelativeTest,
                         ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4));

TEST(PointwiseRelativeTest, SignsPreserved) {
  Rng rng(5);
  std::vector<std::vector<double>> field(8, std::vector<double>(64));
  for (auto& snapshot : field) {
    for (auto& v : snapshot) v = rng.Gaussian(0.0, 10.0);
  }
  auto compressed = core::CompressFieldPointwiseRelative(field, 1e-2);
  ASSERT_TRUE(compressed.ok());
  auto decoded = core::DecompressFieldPointwiseRelative(*compressed);
  ASSERT_TRUE(decoded.ok());
  for (size_t s = 0; s < field.size(); ++s) {
    for (size_t i = 0; i < field[s].size(); ++i) {
      EXPECT_EQ(std::signbit(field[s][i]), std::signbit((*decoded)[s][i]));
    }
  }
}

TEST(PointwiseRelativeTest, RejectsBadBound) {
  std::vector<std::vector<double>> field(2, std::vector<double>(4, 1.0));
  EXPECT_FALSE(core::CompressFieldPointwiseRelative(field, 0.0).ok());
  EXPECT_FALSE(core::CompressFieldPointwiseRelative(field, 1.5).ok());
}

TEST(PointwiseRelativeTest, SmallValuesGetTightAbsoluteError) {
  std::vector<std::vector<double>> field(10, std::vector<double>(50));
  Rng rng(6);
  for (auto& snapshot : field) {
    for (auto& v : snapshot) v = rng.Uniform(1e-9, 2e-9);
  }
  auto compressed = core::CompressFieldPointwiseRelative(field, 1e-3);
  ASSERT_TRUE(compressed.ok());
  auto decoded = core::DecompressFieldPointwiseRelative(*compressed);
  ASSERT_TRUE(decoded.ok());
  for (size_t s = 0; s < field.size(); ++s) {
    for (size_t i = 0; i < field[s].size(); ++i) {
      // A value-range-relative bound on mixed data would dwarf these values;
      // the point-wise mode keeps the error at the 1e-12 scale.
      ASSERT_LE(std::fabs((*decoded)[s][i] - field[s][i]),
                1e-3 * 2e-9 * 1.01);
    }
  }
}

// --- SZ3 interpolation baseline ----------------------------------------------------

TEST(Sz3InterpTest, RoundTripWithinBound) {
  const auto field = SmoothField(37, 100, 7);
  baselines::CompressorConfig config;
  config.error_bound = 1e-3;
  double lo = 1e300, hi = -1e300;
  for (const auto& s : field) {
    for (double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  auto compressed = baselines::Sz3InterpCompress(field, config);
  ASSERT_TRUE(compressed.ok());
  auto decoded = baselines::Sz3InterpDecompress(*compressed);
  ASSERT_TRUE(decoded.ok());
  const double abs_eb = 1e-3 * (hi - lo);
  for (size_t s = 0; s < field.size(); ++s) {
    for (size_t i = 0; i < field[s].size(); ++i) {
      ASSERT_LE(std::fabs((*decoded)[s][i] - field[s][i]), abs_eb * 1.000001);
    }
  }
}

TEST(Sz3InterpTest, InterpolationBeatsPlainDeltaOnSmoothData) {
  // Two-sided interpolation should produce smaller residuals than TNG's
  // one-sided deltas on smooth trajectories, hence better ratios.
  const auto field = SmoothField(100, 300, 8);
  baselines::CompressorConfig config;
  config.buffer_size = 32;
  auto sz3 = baselines::Sz3InterpCompress(field, config);
  ASSERT_TRUE(sz3.ok());
  auto info = baselines::LossyCompressorByName("TNG");
  ASSERT_TRUE(info.ok());
  auto tng = info->compress(field, config);
  ASSERT_TRUE(tng.ok());
  EXPECT_LT(sz3->size(), tng->size());
}

// --- TI predictor (interpolation inside MDZ) -------------------------------------

TEST(TiMethodTest, AdaptiveWithInterpolationNeverWorse) {
  // Enabling the TI candidate can only shrink ADP's output (it is selected
  // per buffer only when it wins); on smooth data it should win outright.
  const auto field = SmoothField(60, 500, 10);
  core::Options base;
  auto plain = core::CompressField(field, base);
  ASSERT_TRUE(plain.ok());
  core::Options with_ti = base;
  with_ti.enable_interpolation = true;
  auto ti = core::CompressField(field, with_ti);
  ASSERT_TRUE(ti.ok());
  EXPECT_LE(ti->size(), plain->size() + 64);
  EXPECT_LT(ti->size() * 10, plain->size() * 9)
      << "interpolation should clearly win on smooth data";
}

TEST(TiMethodTest, TiStreamDecodesWithPlainDecompressor) {
  // The TI method byte is part of the stream format: a decoder without any
  // special configuration must handle it.
  const auto field = SmoothField(25, 100, 11);
  core::Options options;
  options.method = core::Method::kTI;
  auto compressed = core::CompressField(field, options);
  ASSERT_TRUE(compressed.ok());
  auto decoded = core::DecompressField(*compressed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 25u);
}

TEST(Sz3InterpTest, BufferOfOneSnapshot) {
  const auto field = SmoothField(5, 20, 9);
  baselines::CompressorConfig config;
  config.buffer_size = 1;
  auto compressed = baselines::Sz3InterpCompress(field, config);
  ASSERT_TRUE(compressed.ok());
  auto decoded = baselines::Sz3InterpDecompress(*compressed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 5u);
}

}  // namespace
}  // namespace mdz
