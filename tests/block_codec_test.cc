// Direct tests of the internal per-buffer block codec (core/block_codec.h):
// state threading, layout handling, entropy-mode selection and corruption
// behaviour below the FieldCompressor level.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/block_codec.h"
#include "util/rng.h"

namespace mdz::core::internal {
namespace {

std::vector<std::vector<double>> MakeBuffer(size_t s, size_t n, uint64_t seed,
                                            double step = 0.5) {
  Rng rng(seed);
  std::vector<std::vector<double>> buffer(s, std::vector<double>(n));
  for (size_t t = 0; t < s; ++t) {
    for (size_t i = 0; i < n; ++i) {
      buffer[t][i] = (t == 0) ? rng.Uniform(0.0, 10.0)
                              : buffer[t - 1][i] + rng.Gaussian(0.0, step);
    }
  }
  return buffer;
}

LevelModel UnitLevels() {
  LevelModel levels;
  levels.mu = 0.0;
  levels.lambda = 1.0;
  levels.valid = true;
  return levels;
}

void ExpectDecodesWithinBound(const BlockCodec& codec, Method method,
                              const std::vector<std::vector<double>>& buffer,
                              const PredictorState& in_state, double abs_eb) {
  const EncodedBlock block =
      codec.Encode(method, buffer, in_state, UnitLevels());
  PredictorState state = in_state;
  std::vector<std::vector<double>> decoded;
  const Status s = codec.Decode(block.bytes, buffer[0].size(), &state,
                                &decoded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(decoded.size(), buffer.size());
  for (size_t t = 0; t < buffer.size(); ++t) {
    for (size_t i = 0; i < buffer[t].size(); ++i) {
      ASSERT_LE(std::fabs(decoded[t][i] - buffer[t][i]), abs_eb)
          << "method " << static_cast<int>(method) << " t=" << t;
    }
  }
  // Decoder must reproduce the encoder's end state exactly.
  ASSERT_EQ(state.initial.size(), block.end_state.initial.size());
  for (size_t i = 0; i < state.initial.size(); ++i) {
    EXPECT_EQ(state.initial[i], block.end_state.initial[i]);
  }
}

TEST(BlockCodecTest, AllMethodsDecodeWithoutPriorState) {
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(10, 128, 1);
  for (Method method :
       {Method::kVQ, Method::kVQT, Method::kMT, Method::kTI}) {
    ExpectDecodesWithinBound(codec, method, buffer, PredictorState(), 0.01);
  }
}

TEST(BlockCodecTest, AllMethodsDecodeWithInitialState) {
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(10, 128, 2);
  PredictorState state;
  state.initial.assign(128, 5.0);
  for (Method method :
       {Method::kVQ, Method::kVQT, Method::kMT, Method::kTI}) {
    ExpectDecodesWithinBound(codec, method, buffer, state, 0.01);
  }
}

TEST(BlockCodecTest, EndStatePreservesExistingInitial) {
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(5, 32, 3);
  PredictorState state;
  state.initial.assign(32, -1.0);
  const EncodedBlock block =
      codec.Encode(Method::kMT, buffer, state, UnitLevels());
  // initial must not be overwritten by later buffers.
  ASSERT_EQ(block.end_state.initial.size(), 32u);
  for (double v : block.end_state.initial) EXPECT_EQ(v, -1.0);
}

TEST(BlockCodecTest, FirstBlockSetsInitialFromDecodedSnapshot) {
  const BlockCodec codec(0.05, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(4, 64, 4);
  const EncodedBlock block =
      codec.Encode(Method::kVQ, buffer, PredictorState(), UnitLevels());
  ASSERT_EQ(block.end_state.initial.size(), 64u);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_LE(std::fabs(block.end_state.initial[i] - buffer[0][i]), 0.05);
  }
}

TEST(BlockCodecTest, BothLayoutsRoundTrip) {
  for (CodeLayout layout :
       {CodeLayout::kSnapshotMajor, CodeLayout::kParticleMajor}) {
    const BlockCodec codec(0.01, 1024, layout);
    const auto buffer = MakeBuffer(8, 100, 5);
    ExpectDecodesWithinBound(codec, Method::kMT, buffer, PredictorState(),
                             0.01);
  }
}

TEST(BlockCodecTest, SingleSnapshotBufferSkipsTransposition) {
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(1, 77, 6);
  for (Method method :
       {Method::kVQ, Method::kVQT, Method::kMT, Method::kTI}) {
    ExpectDecodesWithinBound(codec, method, buffer, PredictorState(), 0.01);
  }
}

TEST(BlockCodecTest, RunDominatedBufferPicksPackedMode) {
  // Constant-in-time data: nearly all codes equal -> the packed candidate
  // competes; whichever wins, the round trip must hold and the output must
  // be tiny.
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  std::vector<std::vector<double>> buffer(20, std::vector<double>(500));
  Rng rng(7);
  for (size_t i = 0; i < 500; ++i) buffer[0][i] = rng.Uniform(0.0, 5.0);
  for (size_t t = 1; t < 20; ++t) buffer[t] = buffer[0];
  const EncodedBlock block =
      codec.Encode(Method::kMT, buffer, PredictorState(), UnitLevels());
  // The first snapshot pays full (Lorenzo) entropy; the 19 constant repeats
  // must be nearly free, so the block compresses > 40x overall.
  EXPECT_LT(block.bytes.size(), 20 * 500 * sizeof(double) / 40);
  ExpectDecodesWithinBound(codec, Method::kMT, buffer, PredictorState(), 0.01);
}

TEST(BlockCodecTest, VqEscapesFarOutliers) {
  const BlockCodec codec(1e-6, 16, CodeLayout::kParticleMajor);  // tiny reach
  auto buffer = MakeBuffer(3, 50, 8, /*step=*/2.0);
  const EncodedBlock block =
      codec.Encode(Method::kMT, buffer, PredictorState(), UnitLevels());
  EXPECT_GT(block.escape_count, 0u);
  ExpectDecodesWithinBound(codec, Method::kMT, buffer, PredictorState(),
                           1e-6);
}

TEST(BlockCodecTest, HugeLevelIndicesUseEscapeChannel) {
  // Values spread over a gigantic range relative to lambda force J escapes
  // (zigzag deltas beyond the inline alphabet).
  const BlockCodec codec(0.5, 1024, CodeLayout::kParticleMajor);
  std::vector<std::vector<double>> buffer(2, std::vector<double>(32));
  Rng rng(9);
  for (auto& snapshot : buffer) {
    for (auto& v : snapshot) v = rng.Uniform(-1e6, 1e6);
  }
  ExpectDecodesWithinBound(codec, Method::kVQ, buffer, PredictorState(), 0.5);
}

TEST(BlockCodecTest, DecodeRejectsBadMethodByte) {
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(4, 16, 10);
  EncodedBlock block =
      codec.Encode(Method::kVQ, buffer, PredictorState(), UnitLevels());
  block.bytes[0] = 9;  // invalid method
  PredictorState state;
  std::vector<std::vector<double>> decoded;
  EXPECT_EQ(codec.Decode(block.bytes, 16, &state, &decoded).code(),
            StatusCode::kCorruption);
}

TEST(BlockCodecTest, DecodeRejectsWrongParticleCount) {
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(4, 16, 11);
  const EncodedBlock block =
      codec.Encode(Method::kMT, buffer, PredictorState(), UnitLevels());
  PredictorState state;
  std::vector<std::vector<double>> decoded;
  EXPECT_FALSE(codec.Decode(block.bytes, 17, &state, &decoded).ok());
}

TEST(BlockCodecTest, DecodeRejectsTruncatedBlock) {
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(6, 64, 12);
  const EncodedBlock block =
      codec.Encode(Method::kVQT, buffer, PredictorState(), UnitLevels());
  for (size_t cut : {size_t{1}, block.bytes.size() / 3,
                     block.bytes.size() - 2}) {
    std::vector<uint8_t> truncated(block.bytes.begin(),
                                   block.bytes.begin() + cut);
    PredictorState state;
    std::vector<std::vector<double>> decoded;
    EXPECT_FALSE(codec.Decode(truncated, 64, &state, &decoded).ok())
        << "cut " << cut;
  }
}

TEST(BlockCodecTest, DeterministicEncoding) {
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(10, 200, 13);
  const EncodedBlock a =
      codec.Encode(Method::kVQ, buffer, PredictorState(), UnitLevels());
  const EncodedBlock b =
      codec.Encode(Method::kVQ, buffer, PredictorState(), UnitLevels());
  EXPECT_EQ(a.bytes, b.bytes);
}

}  // namespace
}  // namespace mdz::core::internal
