// Direct tests of the internal per-buffer block codec (core/block_codec.h):
// state threading, layout handling, entropy-mode selection and corruption
// behaviour below the FieldCompressor level.

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/block_codec.h"
#include "core/block_kernels.h"
#include "core/mdz.h"
#include "core/thread_pool.h"
#include "quant/quantizer.h"
#include "util/cpu.h"
#include "util/rng.h"

namespace mdz::core::internal {
namespace {

std::vector<std::vector<double>> MakeBuffer(size_t s, size_t n, uint64_t seed,
                                            double step = 0.5) {
  Rng rng(seed);
  std::vector<std::vector<double>> buffer(s, std::vector<double>(n));
  for (size_t t = 0; t < s; ++t) {
    for (size_t i = 0; i < n; ++i) {
      buffer[t][i] = (t == 0) ? rng.Uniform(0.0, 10.0)
                              : buffer[t - 1][i] + rng.Gaussian(0.0, step);
    }
  }
  return buffer;
}

LevelModel UnitLevels() {
  LevelModel levels;
  levels.mu = 0.0;
  levels.lambda = 1.0;
  levels.valid = true;
  return levels;
}

void ExpectDecodesWithinBound(const BlockCodec& codec, Method method,
                              const std::vector<std::vector<double>>& buffer,
                              const PredictorState& in_state, double abs_eb) {
  const EncodedBlock block =
      codec.Encode(method, buffer, in_state, UnitLevels());
  PredictorState state = in_state;
  std::vector<std::vector<double>> decoded;
  const Status s = codec.Decode(block.bytes, buffer[0].size(), &state,
                                &decoded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(decoded.size(), buffer.size());
  for (size_t t = 0; t < buffer.size(); ++t) {
    for (size_t i = 0; i < buffer[t].size(); ++i) {
      ASSERT_LE(std::fabs(decoded[t][i] - buffer[t][i]), abs_eb)
          << "method " << static_cast<int>(method) << " t=" << t;
    }
  }
  // Decoder must reproduce the encoder's end state exactly.
  ASSERT_EQ(state.initial.size(), block.end_state.initial.size());
  for (size_t i = 0; i < state.initial.size(); ++i) {
    EXPECT_EQ(state.initial[i], block.end_state.initial[i]);
  }
}

TEST(BlockCodecTest, AllMethodsDecodeWithoutPriorState) {
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(10, 128, 1);
  for (Method method :
       {Method::kVQ, Method::kVQT, Method::kMT, Method::kTI,
        Method::kLorenzo2D, Method::kBitAdaptive}) {
    ExpectDecodesWithinBound(codec, method, buffer, PredictorState(), 0.01);
  }
}

TEST(BlockCodecTest, AllMethodsDecodeWithInitialState) {
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(10, 128, 2);
  PredictorState state;
  state.initial.assign(128, 5.0);
  for (Method method :
       {Method::kVQ, Method::kVQT, Method::kMT, Method::kTI,
        Method::kLorenzo2D, Method::kBitAdaptive}) {
    ExpectDecodesWithinBound(codec, method, buffer, state, 0.01);
  }
}

TEST(BlockCodecTest, EndStatePreservesExistingInitial) {
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(5, 32, 3);
  PredictorState state;
  state.initial.assign(32, -1.0);
  const EncodedBlock block =
      codec.Encode(Method::kMT, buffer, state, UnitLevels());
  // initial must not be overwritten by later buffers.
  ASSERT_EQ(block.end_state.initial.size(), 32u);
  for (double v : block.end_state.initial) EXPECT_EQ(v, -1.0);
}

TEST(BlockCodecTest, FirstBlockSetsInitialFromDecodedSnapshot) {
  const BlockCodec codec(0.05, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(4, 64, 4);
  const EncodedBlock block =
      codec.Encode(Method::kVQ, buffer, PredictorState(), UnitLevels());
  ASSERT_EQ(block.end_state.initial.size(), 64u);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_LE(std::fabs(block.end_state.initial[i] - buffer[0][i]), 0.05);
  }
}

TEST(BlockCodecTest, BothLayoutsRoundTrip) {
  for (CodeLayout layout :
       {CodeLayout::kSnapshotMajor, CodeLayout::kParticleMajor}) {
    const BlockCodec codec(0.01, 1024, layout);
    const auto buffer = MakeBuffer(8, 100, 5);
    ExpectDecodesWithinBound(codec, Method::kMT, buffer, PredictorState(),
                             0.01);
  }
}

TEST(BlockCodecTest, SingleSnapshotBufferSkipsTransposition) {
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(1, 77, 6);
  for (Method method :
       {Method::kVQ, Method::kVQT, Method::kMT, Method::kTI,
        Method::kLorenzo2D, Method::kBitAdaptive}) {
    ExpectDecodesWithinBound(codec, method, buffer, PredictorState(), 0.01);
  }
}

TEST(BlockCodecTest, RunDominatedBufferPicksPackedMode) {
  // Constant-in-time data: nearly all codes equal -> the packed candidate
  // competes; whichever wins, the round trip must hold and the output must
  // be tiny.
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  std::vector<std::vector<double>> buffer(20, std::vector<double>(500));
  Rng rng(7);
  for (size_t i = 0; i < 500; ++i) buffer[0][i] = rng.Uniform(0.0, 5.0);
  for (size_t t = 1; t < 20; ++t) buffer[t] = buffer[0];
  const EncodedBlock block =
      codec.Encode(Method::kMT, buffer, PredictorState(), UnitLevels());
  // The first snapshot pays full (Lorenzo) entropy; the 19 constant repeats
  // must be nearly free, so the block compresses > 40x overall.
  EXPECT_LT(block.bytes.size(), 20 * 500 * sizeof(double) / 40);
  ExpectDecodesWithinBound(codec, Method::kMT, buffer, PredictorState(), 0.01);
}

TEST(BlockCodecTest, VqEscapesFarOutliers) {
  const BlockCodec codec(1e-6, 16, CodeLayout::kParticleMajor);  // tiny reach
  auto buffer = MakeBuffer(3, 50, 8, /*step=*/2.0);
  const EncodedBlock block =
      codec.Encode(Method::kMT, buffer, PredictorState(), UnitLevels());
  EXPECT_GT(block.escape_count, 0u);
  ExpectDecodesWithinBound(codec, Method::kMT, buffer, PredictorState(),
                           1e-6);
}

TEST(BlockCodecTest, HugeLevelIndicesUseEscapeChannel) {
  // Values spread over a gigantic range relative to lambda force J escapes
  // (zigzag deltas beyond the inline alphabet).
  const BlockCodec codec(0.5, 1024, CodeLayout::kParticleMajor);
  std::vector<std::vector<double>> buffer(2, std::vector<double>(32));
  Rng rng(9);
  for (auto& snapshot : buffer) {
    for (auto& v : snapshot) v = rng.Uniform(-1e6, 1e6);
  }
  ExpectDecodesWithinBound(codec, Method::kVQ, buffer, PredictorState(), 0.5);
}

TEST(BlockCodecTest, DecodeRejectsBadMethodByte) {
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(4, 16, 10);
  const EncodedBlock block =
      codec.Encode(Method::kVQ, buffer, PredictorState(), UnitLevels());
  // 3 is kAdaptive (never serialized), 7 is the first reserved byte past the
  // concrete methods, 9 and 255 are garbage.
  for (uint8_t bad : {uint8_t{3}, uint8_t{7}, uint8_t{9}, uint8_t{255}}) {
    std::vector<uint8_t> bytes = block.bytes;
    bytes[0] = bad;
    PredictorState state;
    std::vector<std::vector<double>> decoded;
    EXPECT_EQ(codec.Decode(bytes, 16, &state, &decoded).code(),
              StatusCode::kCorruption)
        << "method byte " << static_cast<int>(bad);
  }
}

TEST(BlockCodecTest, DecodeRejectsWrongParticleCount) {
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(4, 16, 11);
  const EncodedBlock block =
      codec.Encode(Method::kMT, buffer, PredictorState(), UnitLevels());
  PredictorState state;
  std::vector<std::vector<double>> decoded;
  EXPECT_FALSE(codec.Decode(block.bytes, 17, &state, &decoded).ok());
}

TEST(BlockCodecTest, DecodeRejectsTruncatedBlock) {
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(6, 64, 12);
  const EncodedBlock block =
      codec.Encode(Method::kVQT, buffer, PredictorState(), UnitLevels());
  for (size_t cut : {size_t{1}, block.bytes.size() / 3,
                     block.bytes.size() - 2}) {
    std::vector<uint8_t> truncated(block.bytes.begin(),
                                   block.bytes.begin() + cut);
    PredictorState state;
    std::vector<std::vector<double>> decoded;
    EXPECT_FALSE(codec.Decode(truncated, 64, &state, &decoded).ok())
        << "cut " << cut;
  }
}

// --- SIMD kernel property tests --------------------------------------------
// Every registered BlockKernels variant must be bit-identical to the scalar
// reference on both directions, including the adversarial corners: remainder
// lengths 0..2x the widest vector, exact rounding ties, denormals, NaN/inf,
// escape-heavy rows and max-level codes. docs/KERNELS.md documents this
// contract.

// Lengths covering 0..2x the widest vector tile (AVX2 transpose: 8 lanes)
// plus a few bulk sizes with every remainder class.
std::vector<size_t> PropertyLengths() {
  std::vector<size_t> lengths;
  for (size_t n = 0; n <= 16; ++n) lengths.push_back(n);
  lengths.push_back(100);
  lengths.push_back(1001);
  lengths.push_back(4099);
  return lengths;
}

// Values/preds with a mix of regular codes, escapes, boundary magnitudes and
// IEEE specials.
void FillAdversarialRow(size_t n, uint64_t seed, double eb,
                        std::vector<double>* values,
                        std::vector<double>* preds) {
  Rng rng(seed);
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double denorm = std::numeric_limits<double>::denorm_min();
  values->resize(n);
  preds->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*preds)[i] = rng.Uniform(-50.0, 50.0);
    switch (rng.UniformInt(8)) {
      case 0:  // regular small-error code
        (*values)[i] = (*preds)[i] + rng.Gaussian(0.0, eb);
        break;
      case 1:  // escape: far outlier
        (*values)[i] = (*preds)[i] + rng.Uniform(10.0, 100.0);
        break;
      case 2:  // near the out-of-scale boundary (code close to scale-1)
        (*values)[i] =
            (*preds)[i] + 2.0 * eb * (510.0 + rng.Uniform(-2.0, 2.0));
        break;
      case 3:  // denormal operands
        (*preds)[i] = denorm * static_cast<double>(rng.UniformInt(4));
        (*values)[i] = denorm * static_cast<double>(rng.UniformInt(4));
        break;
      case 4:
        (*values)[i] = qnan;
        break;
      case 5:
        (*values)[i] = rng.UniformInt(2) ? inf : -inf;
        break;
      case 6:  // negative zero delta
        (*values)[i] = (*preds)[i];
        if (rng.UniformInt(2)) (*values)[i] = -(*values)[i], (*preds)[i] = (*values)[i];
        break;
      default:  // moderate error, sign mixed
        (*values)[i] = (*preds)[i] + rng.Gaussian(0.0, 50.0 * eb);
        break;
    }
  }
}

TEST(BlockKernelsTest, RegistryListsScalarFirstAndOnlySupportedVariants) {
  const auto kernels = RegisteredBlockKernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.front(), &ScalarBlockKernels());
  for (const BlockKernels* k : kernels) {
    EXPECT_TRUE(util::SimdVariantSupported(k->variant)) << k->name;
    EXPECT_EQ(BlockKernelsForVariant(k->variant), k) << k->name;
  }
}

TEST(BlockKernelsTest, QuantizeRowMatchesScalarBitExact) {
  const auto& scalar = ScalarBlockKernels();
  const quant::LinearQuantizer q(1e-3, 1024);
  for (const BlockKernels* k : RegisteredBlockKernels()) {
    for (size_t n : PropertyLengths()) {
      for (uint64_t seed : {1u, 2u, 3u}) {
        std::vector<double> values, preds;
        FillAdversarialRow(n, seed * 7919 + n, q.error_bound(), &values,
                           &preds);
        const size_t cap = n > 0 ? n : 1;
        std::vector<uint32_t> codes_s(cap, 0xABu), codes_v(cap, 0xCDu);
        std::vector<double> dec_s(cap, 0.0), dec_v(cap, 1.0);
        scalar.quantize_row(q, values.data(), preds.data(), n, codes_s.data(),
                            dec_s.data());
        k->quantize_row(q, values.data(), preds.data(), n, codes_v.data(),
                        dec_v.data());
        if (n == 0) continue;
        EXPECT_EQ(std::memcmp(codes_s.data(), codes_v.data(),
                              n * sizeof(uint32_t)),
                  0)
            << k->name << " n=" << n << " seed=" << seed;
        // Bitwise compare (catches -0.0 and NaN payload divergence).
        EXPECT_EQ(std::memcmp(dec_s.data(), dec_v.data(), n * sizeof(double)),
                  0)
            << k->name << " n=" << n << " seed=" << seed;
      }
    }
  }
}

TEST(BlockKernelsTest, QuantizeRowExactTiesRoundAwayFromZero) {
  // eb = 0.125 makes 2*eb and 1/(2*eb) exact powers of two, so scaled lands
  // exactly on m + 0.5 ties: llround semantics (away from zero) must hold in
  // every variant.
  const quant::LinearQuantizer q(0.125, 1024);
  std::vector<double> values, preds;
  for (int m = -40; m <= 40; ++m) {
    preds.push_back(0.0);
    values.push_back(0.25 * (static_cast<double>(m) + 0.5));
  }
  const size_t n = values.size();
  const auto& scalar = ScalarBlockKernels();
  std::vector<uint32_t> codes_s(n), codes_v(n);
  std::vector<double> dec_s(n), dec_v(n);
  scalar.quantize_row(q, values.data(), preds.data(), n, codes_s.data(),
                      dec_s.data());
  // Spot-check the semantics against llround directly.
  for (size_t i = 0; i < n; ++i) {
    const int64_t expect = std::llround(values[i] / 0.25);
    ASSERT_EQ(codes_s[i],
              static_cast<uint32_t>(expect + static_cast<int64_t>(q.radius())))
        << values[i];
  }
  for (const BlockKernels* k : RegisteredBlockKernels()) {
    k->quantize_row(q, values.data(), preds.data(), n, codes_v.data(),
                    dec_v.data());
    EXPECT_EQ(std::memcmp(codes_s.data(), codes_v.data(),
                          n * sizeof(uint32_t)),
              0)
        << k->name;
    EXPECT_EQ(std::memcmp(dec_s.data(), dec_v.data(), n * sizeof(double)), 0)
        << k->name;
  }
}

TEST(BlockKernelsTest, DequantizeRowMatchesScalar) {
  const quant::LinearQuantizer q(1e-3, 1024);
  const auto& scalar = ScalarBlockKernels();
  for (const BlockKernels* k : RegisteredBlockKernels()) {
    for (size_t n : PropertyLengths()) {
      if (n == 0) {
        // Empty row: trivially regular in both.
        uint32_t code = 0;
        double pred = 0.0, out = 0.0;
        EXPECT_TRUE(k->dequantize_row(q, &code, &pred, 0, &out));
        continue;
      }
      Rng rng(n * 31 + 5);
      std::vector<uint32_t> codes(n);
      std::vector<double> preds(n), dec_s(n), dec_v(n);
      for (size_t i = 0; i < n; ++i) {
        preds[i] = rng.Uniform(-10.0, 10.0);
        codes[i] = 1 + static_cast<uint32_t>(rng.UniformInt(q.scale() - 1));
      }
      // All-regular row (includes max code scale-1): fast path taken, output
      // bit-identical.
      codes[n / 2] = q.scale() - 1;
      ASSERT_TRUE(scalar.dequantize_row(q, codes.data(), preds.data(), n,
                                        dec_s.data()));
      ASSERT_TRUE(k->dequantize_row(q, codes.data(), preds.data(), n,
                                    dec_v.data()))
          << k->name << " n=" << n;
      EXPECT_EQ(std::memcmp(dec_s.data(), dec_v.data(), n * sizeof(double)),
                0)
          << k->name << " n=" << n;
      // Escapes and out-of-scale codes at every alignment class must make
      // every variant bail (partial writes are allowed to differ).
      for (uint32_t bad : {0u, q.scale(), q.scale() + 77u, 1u << 27}) {
        for (size_t pos : {size_t{0}, n / 2, n - 1}) {
          const uint32_t saved = codes[pos];
          codes[pos] = bad;
          EXPECT_FALSE(k->dequantize_row(q, codes.data(), preds.data(), n,
                                         dec_v.data()))
              << k->name << " n=" << n << " bad=" << bad << " pos=" << pos;
          codes[pos] = saved;
        }
      }
    }
  }
}

TEST(BlockKernelsTest, VqPredictMatchesScalarBitExact) {
  const auto& scalar = ScalarBlockKernels();
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const BlockKernels* k : RegisteredBlockKernels()) {
    for (size_t n : PropertyLengths()) {
      if (n == 0) continue;
      Rng rng(n * 131 + 7);
      std::vector<double> values(n);
      for (size_t i = 0; i < n; ++i) {
        switch (rng.UniformInt(6)) {
          case 0:  // huge magnitudes: level clamp at +/-kMaxLevel
            values[i] = rng.UniformInt(2) ? 1e300 : -1e300;
            break;
          case 1:
            values[i] = rng.UniformInt(2) ? inf : -inf;
            break;
          case 2:
            values[i] = qnan;
            break;
          case 3:  // exact half-integer level ties
            values[i] = 0.25 + 1.5 * (static_cast<double>(rng.UniformInt(64)) +
                                      0.5);
            break;
          default:
            values[i] = 0.25 +
                        1.5 * static_cast<double>(rng.UniformInt(64)) +
                        rng.Gaussian(0.0, 0.05);
            break;
        }
      }
      std::vector<double> lv_s(n), pr_s(n), lv_v(n), pr_v(n);
      scalar.vq_predict(values.data(), n, 0.25, 1.5, lv_s.data(), pr_s.data());
      k->vq_predict(values.data(), n, 0.25, 1.5, lv_v.data(), pr_v.data());
      EXPECT_EQ(std::memcmp(lv_s.data(), lv_v.data(), n * sizeof(double)), 0)
          << k->name << " n=" << n;
      EXPECT_EQ(std::memcmp(pr_s.data(), pr_v.data(), n * sizeof(double)), 0)
          << k->name << " n=" << n;
      // Levels must stay integral and clamped so the int64 conversion at the
      // encoder is exact.
      for (size_t i = 0; i < n; ++i) {
        EXPECT_LE(std::fabs(lv_v[i]), kMaxLevel);
        EXPECT_EQ(lv_v[i], std::floor(lv_v[i]));
      }
    }
  }
}

TEST(BlockKernelsTest, TransposeMatchesScalarAndRoundTrips) {
  const auto& scalar = ScalarBlockKernels();
  const size_t shapes[][2] = {{1, 1},  {1, 17}, {17, 1}, {7, 9},   {8, 8},
                              {9, 16}, {16, 9}, {20, 50}, {64, 33}, {5, 4099}};
  for (const BlockKernels* k : RegisteredBlockKernels()) {
    for (const auto& shape : shapes) {
      const size_t rows = shape[0], cols = shape[1];
      Rng rng(rows * 1000 + cols);
      std::vector<uint32_t> in(rows * cols), out_s(rows * cols),
          out_v(rows * cols), back(rows * cols);
      for (auto& v : in) v = static_cast<uint32_t>(rng.NextU64());
      scalar.transpose(in.data(), rows, cols, out_s.data());
      k->transpose(in.data(), rows, cols, out_v.data());
      EXPECT_EQ(std::memcmp(out_s.data(), out_v.data(),
                            in.size() * sizeof(uint32_t)),
                0)
          << k->name << " " << rows << "x" << cols;
      // Transposing back with swapped dims is the identity.
      k->transpose(out_v.data(), cols, rows, back.data());
      EXPECT_EQ(std::memcmp(in.data(), back.data(),
                            in.size() * sizeof(uint32_t)),
                0)
          << k->name << " " << rows << "x" << cols;
    }
  }
}

// Restores the previously active variant even when a test fails mid-loop.
class ScopedSimdVariant {
 public:
  explicit ScopedSimdVariant(util::SimdVariant v)
      : previous_(util::ActiveSimdVariant()) {
    util::SetSimdVariant(v);
  }
  ~ScopedSimdVariant() { util::SetSimdVariant(previous_); }

 private:
  util::SimdVariant previous_;
};

TEST(BlockCodecTest, EncodeDecodeByteIdenticalAcrossVariants) {
  struct Case {
    double eb;
    uint32_t scale;
    size_t s, n;
    double step;
  };
  // n values hit every remainder class of the 4- and 8-lane loops; the
  // tiny-reach case forces an escape-heavy stream.
  const Case cases[] = {
      {0.01, 1024, 10, 131, 0.5},
      {0.01, 1024, 3, 16, 0.5},
      {1e-6, 16, 6, 53, 2.0},
  };
  for (CodeLayout layout :
       {CodeLayout::kSnapshotMajor, CodeLayout::kParticleMajor}) {
    for (const Case& c : cases) {
      const BlockCodec codec(c.eb, c.scale, layout);
      const auto buffer = MakeBuffer(c.s, c.n, c.s * 100 + c.n, c.step);
      for (Method method :
           {Method::kVQ, Method::kVQT, Method::kMT, Method::kTI,
        Method::kLorenzo2D, Method::kBitAdaptive}) {
        EncodedBlock reference;
        std::vector<std::vector<double>> ref_decoded;
        {
          ScopedSimdVariant scoped(util::SimdVariant::kScalar);
          reference = codec.Encode(method, buffer, PredictorState(),
                                   UnitLevels());
          PredictorState state;
          ASSERT_TRUE(codec.Decode(reference.bytes, c.n, &state, &ref_decoded)
                          .ok());
        }
        for (const BlockKernels* k : RegisteredBlockKernels()) {
          ScopedSimdVariant scoped(k->variant);
          const EncodedBlock block =
              codec.Encode(method, buffer, PredictorState(), UnitLevels());
          EXPECT_EQ(block.bytes, reference.bytes)
              << k->name << " method " << static_cast<int>(method)
              << " n=" << c.n;
          PredictorState state;
          std::vector<std::vector<double>> decoded;
          ASSERT_TRUE(codec.Decode(reference.bytes, c.n, &state, &decoded)
                          .ok())
              << k->name;
          ASSERT_EQ(decoded.size(), ref_decoded.size());
          for (size_t t = 0; t < decoded.size(); ++t) {
            ASSERT_EQ(std::memcmp(decoded[t].data(), ref_decoded[t].data(),
                                  c.n * sizeof(double)),
                      0)
                << k->name << " t=" << t;
          }
        }
      }
    }
  }
}

TEST(BlockCodecTest, CompressFieldByteIdenticalAcrossVariantsAndThreads) {
  // Full-pipeline identity: ADP trials, Huffman (multi-symbol decode on the
  // SIMD variants), LZ match finding and the transpose all dispatch on the
  // active variant, and none of them may change the stream or the output.
  const auto field = MakeBuffer(40, 257, 99);
  Options options;
  options.error_bound = 1e-4;
  options.buffer_size = 8;
  options.adaptation_interval = 2;

  std::vector<uint8_t> ref_bytes;
  std::vector<std::vector<double>> ref_values;
  {
    ScopedSimdVariant scoped(util::SimdVariant::kScalar);
    auto compressed = CompressField(field, options);
    ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
    ref_bytes = std::move(compressed).value();
    auto decompressed = DecompressField(ref_bytes);
    ASSERT_TRUE(decompressed.ok());
    ref_values = std::move(decompressed).value();
  }

  for (const BlockKernels* k : RegisteredBlockKernels()) {
    for (size_t threads : {size_t{0}, size_t{2}, size_t{4}}) {
      ScopedSimdVariant scoped(k->variant);
      ThreadPool pool(threads > 0 ? threads : 1);
      Options opt = options;
      opt.pool = threads > 0 ? &pool : nullptr;
      auto compressed = CompressField(field, opt);
      ASSERT_TRUE(compressed.ok()) << k->name;
      EXPECT_EQ(compressed.value(), ref_bytes)
          << k->name << " threads=" << threads;
      auto decompressed = DecompressField(compressed.value());
      ASSERT_TRUE(decompressed.ok()) << k->name;
      ASSERT_EQ(decompressed.value().size(), ref_values.size());
      for (size_t t = 0; t < ref_values.size(); ++t) {
        ASSERT_EQ(std::memcmp(decompressed.value()[t].data(),
                              ref_values[t].data(),
                              ref_values[t].size() * sizeof(double)),
                  0)
            << k->name << " threads=" << threads << " t=" << t;
      }
    }
  }
}

// Adversarial inputs for the error-bound property: exact-zero and constant
// blocks (zero-width bitpack sub-blocks), denormal magnitudes, and a
// melted-lattice LJ trajectory where particles teleport between cells so the
// escape channel and wide bitpack sub-blocks both engage.
std::vector<std::vector<double>> MakeAdversarialBuffer(int kind, size_t s,
                                                       size_t n,
                                                       uint64_t seed) {
  std::vector<std::vector<double>> buffer(s, std::vector<double>(n));
  Rng rng(seed);
  switch (kind) {
    case 0:  // constant block, including snapshot-to-snapshot identity
      for (auto& row : buffer) {
        for (size_t i = 0; i < n; ++i) row[i] = 3.25;
      }
      break;
    case 1:  // denormals and tiny magnitudes straddling zero
      for (auto& row : buffer) {
        for (size_t i = 0; i < n; ++i) {
          row[i] = rng.Uniform(-1.0, 1.0) * 5e-324 * double(1ull << (i % 60));
        }
      }
      break;
    default:  // melted lattice: vibrating sites plus occasional teleports
      for (size_t t = 0; t < s; ++t) {
        for (size_t i = 0; i < n; ++i) {
          const double site = static_cast<double>(i % 13) * 1.7;
          double v = site + rng.Gaussian(0.0, 0.05);
          if (rng.Uniform(0.0, 1.0) < 0.02) v += rng.Uniform(-40.0, 40.0);
          buffer[t][i] = v;
        }
      }
      break;
  }
  return buffer;
}

TEST(BlockCodecTest, CandidatesRespectBoundOnAdversarialBlocks) {
  for (int kind : {0, 1, 2}) {
    const auto buffer = MakeAdversarialBuffer(kind, 9, 130, 77 + kind);
    for (double eb : {1e-2, 1e-6}) {
      const BlockCodec codec(eb, 1024, CodeLayout::kParticleMajor);
      for (Method method :
           {Method::kVQ, Method::kVQT, Method::kMT, Method::kTI,
            Method::kLorenzo2D, Method::kBitAdaptive}) {
        ExpectDecodesWithinBound(codec, method, buffer, PredictorState(), eb);
      }
    }
  }
}

TEST(BlockCodecTest, BitAdaptiveEbSplitStaysWithinFullBound) {
  // eb_split tightens only the quantizer grid; reconstruction error must stay
  // within the advertised (full) bound for any split in (0, 1].
  const auto buffer = MakeAdversarialBuffer(2, 12, 200, 5);
  for (double split : {0.25, 0.5, 1.0}) {
    const BlockCodec codec(1e-3, 1024, CodeLayout::kParticleMajor, split);
    ExpectDecodesWithinBound(codec, Method::kBitAdaptive, buffer,
                             PredictorState(), 1e-3);
  }
}

TEST(BlockCodecTest, AdpWithNewCandidatesByteIdenticalAcrossThreads) {
  // The grown trial set must keep the fixed-order first-smallest tie-break:
  // the stream is a pure function of the data, never of the thread count.
  const auto field = MakeBuffer(40, 257, 123);
  Options options;
  options.error_bound = 1e-4;
  options.error_bound_mode = ErrorBoundMode::kAbsolute;
  options.buffer_size = 8;
  options.adaptation_interval = 2;
  options.adp_methods = {Method::kVQ,  Method::kVQT,      Method::kMT,
                         Method::kTI,  Method::kLorenzo2D, Method::kBitAdaptive};

  std::vector<uint8_t> ref_bytes;
  {
    auto compressed = CompressField(field, options);
    ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
    ref_bytes = std::move(compressed).value();
  }
  auto decompressed = DecompressField(ref_bytes);
  ASSERT_TRUE(decompressed.ok()) << decompressed.status().ToString();
  for (size_t t = 0; t < field.size(); ++t) {
    for (size_t i = 0; i < field[t].size(); ++i) {
      ASSERT_LE(std::fabs(decompressed.value()[t][i] - field[t][i]), 1e-4);
    }
  }

  for (size_t threads : {size_t{2}, size_t{4}}) {
    ThreadPool pool(threads);
    Options opt = options;
    opt.pool = &pool;
    auto compressed = CompressField(field, opt);
    ASSERT_TRUE(compressed.ok());
    EXPECT_EQ(compressed.value(), ref_bytes) << "threads=" << threads;
  }
}

TEST(BlockCodecTest, DeterministicEncoding) {
  const BlockCodec codec(0.01, 1024, CodeLayout::kParticleMajor);
  const auto buffer = MakeBuffer(10, 200, 13);
  const EncodedBlock a =
      codec.Encode(Method::kVQ, buffer, PredictorState(), UnitLevels());
  const EncodedBlock b =
      codec.Encode(Method::kVQ, buffer, PredictorState(), UnitLevels());
  EXPECT_EQ(a.bytes, b.bytes);
}

}  // namespace
}  // namespace mdz::core::internal
