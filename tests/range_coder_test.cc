#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "codec/huffman.h"
#include "codec/range_coder.h"
#include "util/rng.h"

namespace mdz::codec {
namespace {

std::vector<uint32_t> RoundTrip(const std::vector<uint32_t>& symbols,
                                uint32_t alphabet) {
  const std::vector<uint8_t> encoded = RangeEncodeSymbols(symbols, alphabet);
  std::vector<uint32_t> decoded;
  const Status s = RangeDecodeSymbols(encoded, &decoded);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return decoded;
}

TEST(RangeCoderTest, EmptyInput) {
  EXPECT_EQ(RoundTrip({}, 16), std::vector<uint32_t>{});
}

TEST(RangeCoderTest, SingleSymbol) {
  EXPECT_EQ(RoundTrip({5}, 8), std::vector<uint32_t>{5});
}

TEST(RangeCoderTest, ConstantStreamCompressesHard) {
  std::vector<uint32_t> symbols(100000, 3);
  const auto encoded = RangeEncodeSymbols(symbols, 1024);
  // The adaptive model saturates at ~0.023 bits per coded bit (kMoveBits=5
  // floor), i.e. ~0.23 bits/symbol through the 10-level tree — still far
  // below Huffman's 1-bit floor.
  EXPECT_LT(encoded.size(), 3500u);
  EXPECT_EQ(RoundTrip(symbols, 1024), symbols);
}

TEST(RangeCoderTest, RandomStreamsRoundTripVariousAlphabets) {
  Rng rng(1);
  for (uint32_t alphabet : {2u, 3u, 10u, 255u, 256u, 1024u, 4097u}) {
    std::vector<uint32_t> symbols(20000);
    for (auto& s : symbols) s = rng.UniformInt(alphabet);
    EXPECT_EQ(RoundTrip(symbols, alphabet), symbols)
        << "alphabet " << alphabet;
  }
}

TEST(RangeCoderTest, SkewedStreamNearEntropy) {
  Rng rng(2);
  std::vector<uint32_t> symbols;
  std::vector<uint64_t> freqs(64, 0);
  for (int i = 0; i < 200000; ++i) {
    uint32_t s = 0;
    while (s < 63 && rng.NextDouble() < 0.4) ++s;
    symbols.push_back(s);
    ++freqs[s];
  }
  const double entropy = ShannonEntropyBits(freqs);
  const auto encoded = RangeEncodeSymbols(symbols, 64);
  const double bits = 8.0 * encoded.size() / symbols.size();
  EXPECT_LT(bits, entropy * 1.05 + 0.05);
  EXPECT_EQ(RoundTrip(symbols, 64), symbols);
}

TEST(RangeCoderTest, BeatsHuffmanOnSubBitSymbols) {
  // 97% of one symbol: entropy ~0.2 bits, Huffman floor is 1 bit/symbol
  // (before the LZ stage); arithmetic coding goes below it directly.
  Rng rng(3);
  std::vector<uint32_t> symbols(100000);
  for (auto& s : symbols) {
    s = rng.NextDouble() < 0.97 ? 7 : rng.UniformInt(16);
  }
  const auto rc = RangeEncodeSymbols(symbols, 16);
  const auto huff = HuffmanEncode(symbols, 16);
  EXPECT_LT(rc.size() * 3, huff.size());
  EXPECT_EQ(RoundTrip(symbols, 16), symbols);
}

TEST(RangeCoderTest, AdaptsToDriftingStatistics) {
  // First half all 1s, second half all 2s: a static Huffman table treats
  // both as equiprobable; the adaptive coder converges to each phase.
  std::vector<uint32_t> symbols(50000, 1);
  symbols.resize(100000, 2);
  const auto rc = RangeEncodeSymbols(symbols, 4);
  EXPECT_LT(rc.size(), 2500u);  // << 1 bit/symbol
  EXPECT_EQ(RoundTrip(symbols, 4), symbols);
}

TEST(RangeCoderTest, CarryPropagationStress) {
  // Deterministic pseudorandom streams across many seeds exercise the
  // 0xFF-run carry path of the encoder.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    std::vector<uint32_t> symbols(4096);
    for (auto& s : symbols) s = rng.UniformInt(256);
    EXPECT_EQ(RoundTrip(symbols, 256), symbols) << "seed " << seed;
  }
}

TEST(RangeCoderTest, TruncatedStreamDetected) {
  std::vector<uint32_t> symbols(5000);
  Rng rng(4);
  for (auto& s : symbols) s = rng.UniformInt(700);
  auto encoded = RangeEncodeSymbols(symbols, 1024);
  encoded.resize(encoded.size() / 2);
  std::vector<uint32_t> decoded;
  EXPECT_FALSE(RangeDecodeSymbols(encoded, &decoded).ok());
}

TEST(RangeCoderTest, GarbageHeaderRejected) {
  std::vector<uint8_t> garbage = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  std::vector<uint32_t> decoded;
  EXPECT_FALSE(RangeDecodeSymbols(garbage, &decoded).ok());
}

class RangeCoderSweepTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(RangeCoderSweepTest, RoundTrip) {
  const auto [size, skew] = GetParam();
  Rng rng(100 + size);
  std::vector<uint32_t> symbols(size);
  for (auto& s : symbols) {
    uint32_t v = 0;
    while (v < 511 && rng.NextDouble() < skew) ++v;
    s = v;
  }
  EXPECT_EQ(RoundTrip(symbols, 512), symbols);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSkews, RangeCoderSweepTest,
    ::testing::Combine(::testing::Values(1, 17, 1000, 65536),
                       ::testing::Values(0.05, 0.5, 0.95)));

}  // namespace
}  // namespace mdz::codec
