#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "md/box.h"
#include "md/cell_list.h"
#include "md/dump.h"
#include "md/lattice.h"
#include "md/lj_simulation.h"
#include "util/rng.h"

namespace mdz::md {
namespace {

// --- Lattices -----------------------------------------------------------------

TEST(LatticeTest, FccAtomCount) {
  EXPECT_EQ(FccLattice(3, 3, 3, 1.0).size(), 3u * 3u * 3u * 4u);
  EXPECT_EQ(FccLattice(2, 3, 4, 1.0).size(), 2u * 3u * 4u * 4u);
}

TEST(LatticeTest, BccAtomCount) {
  EXPECT_EQ(BccLattice(4, 4, 4, 1.0).size(), 4u * 4u * 4u * 2u);
}

TEST(LatticeTest, CubicAtomCount) {
  EXPECT_EQ(CubicLattice(5, 5, 5, 2.0).size(), 125u);
}

TEST(LatticeTest, SitesAreDistinct) {
  const auto sites = FccLattice(3, 3, 3, 1.0);
  std::set<std::tuple<long, long, long>> unique;
  for (const Vec3& s : sites) {
    unique.insert({std::lround(s.x * 1000), std::lround(s.y * 1000),
                   std::lround(s.z * 1000)});
  }
  EXPECT_EQ(unique.size(), sites.size());
}

TEST(LatticeTest, FccNearestNeighborDistance) {
  // FCC nearest-neighbor distance is a / sqrt(2).
  const double a = 3.6;
  const auto sites = FccLattice(3, 3, 3, a);
  double min_dist = 1e300;
  for (size_t i = 0; i < sites.size(); ++i) {
    for (size_t j = i + 1; j < sites.size(); ++j) {
      min_dist = std::min(min_dist, (sites[i] - sites[j]).norm());
    }
  }
  EXPECT_NEAR(min_dist, a / std::sqrt(2.0), 1e-9);
}

TEST(LatticeTest, CellsForAtoms) {
  EXPECT_EQ(FccCellsForAtoms(4), 1);
  EXPECT_EQ(FccCellsForAtoms(5), 2);
  EXPECT_EQ(FccCellsForAtoms(32), 2);
  EXPECT_EQ(FccCellsForAtoms(33), 3);
  EXPECT_EQ(BccCellsForAtoms(2), 1);
  EXPECT_EQ(BccCellsForAtoms(17), 3);
}

// --- Box ----------------------------------------------------------------------

TEST(BoxTest, WrapIntoBox) {
  Box box(10.0, 10.0, 10.0);
  const Vec3 p = box.Wrap({12.5, -0.5, 9.9});
  EXPECT_NEAR(p.x, 2.5, 1e-12);
  EXPECT_NEAR(p.y, 9.5, 1e-12);
  EXPECT_NEAR(p.z, 9.9, 1e-12);
}

TEST(BoxTest, MinImageShortestVector) {
  Box box(10.0, 10.0, 10.0);
  const Vec3 d = box.MinImage({9.5, 0.0, 0.0}, {0.5, 0.0, 0.0});
  EXPECT_NEAR(d.x, -1.0, 1e-12);  // across the boundary, not +9
}

// --- Cell list ----------------------------------------------------------------

TEST(CellListTest, MatchesBruteForcePairCount) {
  Rng rng(1);
  Box box(12.0, 12.0, 12.0);
  std::vector<Vec3> pos(400);
  for (auto& p : pos) {
    p = {rng.Uniform(0.0, 12.0), rng.Uniform(0.0, 12.0),
         rng.Uniform(0.0, 12.0)};
  }
  const double cutoff = 2.5;

  size_t brute_pairs = 0;
  double brute_sum_r2 = 0.0;
  for (size_t i = 0; i < pos.size(); ++i) {
    for (size_t j = i + 1; j < pos.size(); ++j) {
      const double r2 = box.MinImage(pos[i], pos[j]).norm2();
      if (r2 < cutoff * cutoff) {
        ++brute_pairs;
        brute_sum_r2 += r2;
      }
    }
  }

  CellList cells(box, cutoff);
  cells.Build(pos);
  size_t cell_pairs = 0;
  double cell_sum_r2 = 0.0;
  cells.ForEachPair(pos, [&](size_t, size_t, const Vec3&, double r2) {
    ++cell_pairs;
    cell_sum_r2 += r2;
  });

  EXPECT_EQ(cell_pairs, brute_pairs);
  EXPECT_NEAR(cell_sum_r2, brute_sum_r2, 1e-9 * brute_sum_r2);
}

TEST(CellListTest, EachPairVisitedOnce) {
  Rng rng(2);
  Box box(9.0, 9.0, 9.0);
  std::vector<Vec3> pos(200);
  for (auto& p : pos) {
    p = {rng.Uniform(0.0, 9.0), rng.Uniform(0.0, 9.0), rng.Uniform(0.0, 9.0)};
  }
  CellList cells(box, 3.0);
  cells.Build(pos);
  std::set<std::pair<size_t, size_t>> seen;
  cells.ForEachPair(pos, [&](size_t i, size_t j, const Vec3&, double) {
    const auto key = std::minmax(i, j);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second)
        << "pair " << i << "," << j << " visited twice";
  });
}

TEST(CellListTest, SmallBoxFallsBackToBruteForce) {
  Box box(4.0, 4.0, 4.0);  // < 3 cells of cutoff 2.5 per edge
  CellList cells(box, 2.5);
  std::vector<Vec3> pos = {{0.1, 0.1, 0.1}, {1.0, 1.0, 1.0}, {3.9, 3.9, 3.9}};
  cells.Build(pos);
  size_t pairs = 0;
  cells.ForEachPair(pos, [&](size_t, size_t, const Vec3&, double) { ++pairs; });
  EXPECT_EQ(pairs, 3u);  // all three pairs within min-image cutoff
}

// --- LJ simulation -------------------------------------------------------------

TEST(LjSimulationTest, CreateRejectsBadOptions) {
  LjOptions options;
  options.cells = 0;
  EXPECT_FALSE(LjSimulation::Create(options).ok());
  options = LjOptions();
  options.dt = -1.0;
  EXPECT_FALSE(LjSimulation::Create(options).ok());
}

TEST(LjSimulationTest, AtomCountAndDensity) {
  LjOptions options;
  options.cells = 4;
  auto sim = LjSimulation::Create(options);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim->num_atoms(), 4u * 4u * 4u * 4u);
  const double volume = sim->box().volume();
  EXPECT_NEAR(static_cast<double>(sim->num_atoms()) / volume, options.density,
              1e-9);
}

TEST(LjSimulationTest, InitialTemperatureNearTarget) {
  LjOptions options;
  options.cells = 5;
  auto sim = LjSimulation::Create(options);
  ASSERT_TRUE(sim.ok());
  EXPECT_NEAR(sim->instantaneous_temperature(), options.temperature, 0.05);
}

TEST(LjSimulationTest, NveEnergyConservation) {
  LjOptions options;
  options.cells = 4;
  options.thermostat = LjOptions::Thermostat::kNone;
  options.dt = 0.002;
  auto sim = LjSimulation::Create(options);
  ASSERT_TRUE(sim.ok());
  sim->Run(50);  // settle the lattice melt transient
  const double e0 = sim->total_energy();
  sim->Run(200);
  const double e1 = sim->total_energy();
  const double per_atom_drift =
      std::fabs(e1 - e0) / static_cast<double>(sim->num_atoms());
  EXPECT_LT(per_atom_drift, 0.01);  // reduced units; Verlet drift is tiny
}

TEST(LjSimulationTest, BerendsenDrivesTemperature) {
  LjOptions options;
  options.cells = 4;
  options.temperature = 1.2;
  options.thermostat = LjOptions::Thermostat::kBerendsen;
  auto sim = LjSimulation::Create(options);
  ASSERT_TRUE(sim.ok());
  sim->Run(300);
  EXPECT_NEAR(sim->instantaneous_temperature(), 1.2, 0.25);
}

TEST(LjSimulationTest, LangevinStaysFinite) {
  LjOptions options;
  options.cells = 3;
  options.thermostat = LjOptions::Thermostat::kLangevin;
  options.thermostat_coupling = 1.0;
  auto sim = LjSimulation::Create(options);
  ASSERT_TRUE(sim.ok());
  sim->Run(100);
  for (const Vec3& p : sim->positions()) {
    EXPECT_TRUE(std::isfinite(p.x));
    EXPECT_TRUE(std::isfinite(p.y));
    EXPECT_TRUE(std::isfinite(p.z));
  }
  EXPECT_GT(sim->instantaneous_temperature(), 0.1);
}

TEST(LjSimulationTest, PositionsStayInBox) {
  LjOptions options;
  options.cells = 3;
  auto sim = LjSimulation::Create(options);
  ASSERT_TRUE(sim.ok());
  sim->Run(100);
  const double edge = sim->box().lx();
  for (const Vec3& p : sim->positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, edge);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, edge);
  }
}

TEST(LjSimulationTest, DeterministicForSameSeed) {
  LjOptions options;
  options.cells = 3;
  auto a = LjSimulation::Create(options);
  auto b = LjSimulation::Create(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  a->Run(20);
  b->Run(20);
  for (size_t i = 0; i < a->num_atoms(); ++i) {
    EXPECT_EQ(a->positions()[i].x, b->positions()[i].x);
    EXPECT_EQ(a->positions()[i].z, b->positions()[i].z);
  }
}

// --- Dump writers ----------------------------------------------------------------

TEST(DumpTest, RawDumpWritesExpectedBytes) {
  const std::string path = ::testing::TempDir() + "/raw_dump_test.bin";
  auto writer = RawDumpWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  std::vector<Vec3> snapshot(100, Vec3{1.0, 2.0, 3.0});
  ASSERT_TRUE((*writer)->WriteSnapshot(snapshot).ok());
  ASSERT_TRUE((*writer)->WriteSnapshot(snapshot).ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  EXPECT_EQ((*writer)->bytes_written(), 2u * 100u * 3u * sizeof(double));
  std::remove(path.c_str());
}

TEST(DumpTest, MdzDumpIsSmallerThanRawOnSmoothTrajectory) {
  LjOptions options;
  options.cells = 3;
  auto sim = LjSimulation::Create(options);
  ASSERT_TRUE(sim.ok());

  const std::string raw_path = ::testing::TempDir() + "/dump_raw.bin";
  const std::string mdz_path = ::testing::TempDir() + "/dump_mdz.bin";
  auto raw = RawDumpWriter::Open(raw_path);
  core::Options mdz_options;
  auto mdz = MdzDumpWriter::Open(mdz_path, sim->num_atoms(), mdz_options);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(mdz.ok());

  for (int snap = 0; snap < 20; ++snap) {
    sim->Run(5);
    ASSERT_TRUE((*raw)->WriteSnapshot(sim->positions()).ok());
    ASSERT_TRUE((*mdz)->WriteSnapshot(sim->positions()).ok());
  }
  ASSERT_TRUE((*raw)->Finish().ok());
  ASSERT_TRUE((*mdz)->Finish().ok());

  EXPECT_GT((*mdz)->bytes_written(), 0u);
  EXPECT_LT((*mdz)->bytes_written(), (*raw)->bytes_written() / 4);
  std::remove(raw_path.c_str());
  std::remove(mdz_path.c_str());
}

TEST(DumpTest, MdzDumpRejectsWrongSize) {
  const std::string path = ::testing::TempDir() + "/dump_badsize.bin";
  auto mdz = MdzDumpWriter::Open(path, 10, core::Options());
  ASSERT_TRUE(mdz.ok());
  std::vector<Vec3> snapshot(11);
  EXPECT_FALSE((*mdz)->WriteSnapshot(snapshot).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mdz::md
