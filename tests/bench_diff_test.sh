#!/bin/sh
# Tests for tools/bench_diff: identical runs pass, a 20% throughput drop and
# a ratio drop are flagged, informational units and --ignore-unit are not
# gated, and the usage/parse exit codes hold.
set -eu

BENCH_DIFF="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

exit_code() {
  "$@" >/dev/null 2>&1 && echo 0 || echo $?
}

# Baseline report: one gated throughput, one gated ratio, one informational.
cat > "$WORK/BENCH_synth.json" <<'EOF'
{"schema":"mdz.bench.v1","bench":"synth","scale":1,
 "build":{"git_sha":"aaa","flags":"-O2"},
 "metrics":[
  {"name":"kernel/throughput","value":100.0,"unit":"MB/s","repetitions":3},
  {"name":"dataset/cr","value":20.0,"unit":"x","repetitions":1},
  {"name":"dataset/bias","value":0.5,"unit":"g","repetitions":1}]}
EOF

# Identical comparison passes.
test "$(exit_code "$BENCH_DIFF" "$WORK/BENCH_synth.json" \
  "$WORK/BENCH_synth.json")" = 0

# A 20% throughput regression fails at the default 10% threshold...
sed 's/"value":100.0/"value":80.0/' "$WORK/BENCH_synth.json" \
  > "$WORK/BENCH_slow.json"
test "$(exit_code "$BENCH_DIFF" "$WORK/BENCH_synth.json" \
  "$WORK/BENCH_slow.json")" = 1
# ...passes with a loose threshold...
test "$(exit_code "$BENCH_DIFF" "$WORK/BENCH_synth.json" \
  "$WORK/BENCH_slow.json" --threshold-throughput 25)" = 0
# ...and passes when MB/s is ignored entirely.
test "$(exit_code "$BENCH_DIFF" "$WORK/BENCH_synth.json" \
  "$WORK/BENCH_slow.json" --ignore-unit MB/s)" = 0

# A compression-ratio regression fails at the default 5% threshold.
sed 's/"value":20.0/"value":18.0/' "$WORK/BENCH_synth.json" \
  > "$WORK/BENCH_worse.json"
test "$(exit_code "$BENCH_DIFF" "$WORK/BENCH_synth.json" \
  "$WORK/BENCH_worse.json")" = 1

# An improvement is never a regression.
sed 's/"value":100.0/"value":150.0/' "$WORK/BENCH_synth.json" \
  > "$WORK/BENCH_fast.json"
test "$(exit_code "$BENCH_DIFF" "$WORK/BENCH_synth.json" \
  "$WORK/BENCH_fast.json")" = 0

# An informational unit ("g") never gates, however large the drop.
sed 's/"value":0.5/"value":5.0/' "$WORK/BENCH_synth.json" \
  > "$WORK/BENCH_drift.json"
test "$(exit_code "$BENCH_DIFF" "$WORK/BENCH_synth.json" \
  "$WORK/BENCH_drift.json")" = 0

# Directory mode: reports matched by file name; the regression still fails.
mkdir -p "$WORK/base" "$WORK/cur"
cp "$WORK/BENCH_synth.json" "$WORK/base/BENCH_synth.json"
cp "$WORK/BENCH_slow.json" "$WORK/cur/BENCH_synth.json"
test "$(exit_code "$BENCH_DIFF" "$WORK/base" "$WORK/cur")" = 1

# A missing metric warns but does not fail.
sed '/dataset\/cr/d' "$WORK/BENCH_synth.json" > "$WORK/BENCH_fewer.json"
test "$(exit_code "$BENCH_DIFF" "$WORK/BENCH_synth.json" \
  "$WORK/BENCH_fewer.json")" = 0
"$BENCH_DIFF" "$WORK/BENCH_synth.json" "$WORK/BENCH_fewer.json" 2>&1 \
  | grep -q "missing from current"

# Usage and parse/I-O errors keep their own codes.
test "$(exit_code "$BENCH_DIFF")" = 2
test "$(exit_code "$BENCH_DIFF" --bogus x y)" = 2
test "$(exit_code "$BENCH_DIFF" "$WORK/no-such.json" \
  "$WORK/BENCH_synth.json")" = 3
echo 'not json at all' > "$WORK/BENCH_garbage.json"
test "$(exit_code "$BENCH_DIFF" "$WORK/BENCH_garbage.json" \
  "$WORK/BENCH_garbage.json")" = 3
printf '{"schema":"other.v1","metrics":[]}' > "$WORK/BENCH_alien.json"
test "$(exit_code "$BENCH_DIFF" "$WORK/BENCH_alien.json" \
  "$WORK/BENCH_alien.json")" = 3

# Differing build flags warn (never silently compared).
sed 's/"flags":"-O2"/"flags":"-O0"/' "$WORK/BENCH_synth.json" \
  > "$WORK/BENCH_debug.json"
"$BENCH_DIFF" "$WORK/BENCH_synth.json" "$WORK/BENCH_debug.json" 2>&1 \
  | grep -q "build flags differ"

# A SIMD-variant mismatch is annotated distinctly but never gates: same
# numbers still pass...
sed 's/"scale":1,/"scale":1,"simd":"avx2",/' "$WORK/BENCH_synth.json" \
  > "$WORK/BENCH_avx2.json"
sed 's/"simd":"avx2"/"simd":"scalar"/' "$WORK/BENCH_avx2.json" \
  > "$WORK/BENCH_scalar.json"
test "$(exit_code "$BENCH_DIFF" "$WORK/BENCH_avx2.json" \
  "$WORK/BENCH_scalar.json")" = 0
"$BENCH_DIFF" "$WORK/BENCH_avx2.json" "$WORK/BENCH_scalar.json" 2>&1 \
  | grep -q "SIMD variant differs"
# ...a real regression still fails with the annotation present...
sed 's/"value":100.0/"value":80.0/' "$WORK/BENCH_scalar.json" \
  > "$WORK/BENCH_scalar_slow.json"
test "$(exit_code "$BENCH_DIFF" "$WORK/BENCH_avx2.json" \
  "$WORK/BENCH_scalar_slow.json")" = 1
# ...matching variants and one-sided (legacy baseline) reports stay silent...
if "$BENCH_DIFF" "$WORK/BENCH_avx2.json" "$WORK/BENCH_avx2.json" 2>&1 \
  | grep -q "SIMD variant differs"; then exit 1; fi
if "$BENCH_DIFF" "$WORK/BENCH_synth.json" "$WORK/BENCH_avx2.json" 2>&1 \
  | grep -q "SIMD variant differs"; then exit 1; fi
# ...and directory mode carries the annotation per matched report.
mkdir -p "$WORK/base_simd" "$WORK/cur_simd"
cp "$WORK/BENCH_avx2.json" "$WORK/base_simd/BENCH_synth.json"
cp "$WORK/BENCH_scalar.json" "$WORK/cur_simd/BENCH_synth.json"
test "$(exit_code "$BENCH_DIFF" "$WORK/base_simd" "$WORK/cur_simd")" = 0
"$BENCH_DIFF" "$WORK/base_simd" "$WORK/cur_simd" 2>&1 \
  | grep -q "SIMD variant differs"

echo "bench_diff_test OK"
