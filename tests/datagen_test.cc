#include <algorithm>
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "analysis/characterize.h"
#include "datagen/generators.h"

namespace mdz::datagen {
namespace {

GeneratorOptions Tiny() {
  GeneratorOptions opts;
  opts.size_scale = 0.05;  // keep unit tests fast
  return opts;
}

TEST(RegistryTest, EightMdDatasets) {
  const auto datasets = AllMdDatasets();
  ASSERT_EQ(datasets.size(), 8u);
  EXPECT_EQ(datasets[0].name, "Copper-A");
  EXPECT_EQ(datasets[7].name, "LJ");
}

TEST(RegistryTest, AllDatasetsIncludeHaccAndExtensions) {
  const auto datasets = AllDatasets();
  ASSERT_EQ(datasets.size(), 11u);
  EXPECT_EQ(datasets[8].name, "HACC-1");
  EXPECT_EQ(datasets[9].name, "HACC-2");
  EXPECT_EQ(datasets[10].name, "Copper-MD");
}

TEST(RegistryTest, MakeByNameWorks) {
  auto traj = MakeByName("Helium-B", Tiny());
  ASSERT_TRUE(traj.ok());
  EXPECT_EQ(traj->name, "Helium-B");
  EXPECT_GT(traj->num_snapshots(), 0u);
}

TEST(RegistryTest, MakeByNameUnknownFails) {
  EXPECT_FALSE(MakeByName("Uranium-C", Tiny()).ok());
}

TEST(GeneratorTest, FixedAtomCountsMatchPaper) {
  // Mode-B datasets keep the paper's exact atom counts.
  EXPECT_EQ(MakeCopperB(Tiny()).num_particles(), 3137u);
  EXPECT_EQ(MakeHeliumB(Tiny()).num_particles(), 1037u);
  EXPECT_EQ(MakeAdk(Tiny()).num_particles(), 3341u);
}

TEST(GeneratorTest, EverySnapshotHasThreeEqualAxes) {
  for (const auto& info : AllMdDatasets()) {
    const auto traj = info.make(Tiny());
    ASSERT_GT(traj.num_snapshots(), 0u) << info.name;
    const size_t n = traj.num_particles();
    ASSERT_GT(n, 0u) << info.name;
    for (const auto& snap : traj.snapshots) {
      for (int axis = 0; axis < 3; ++axis) {
        ASSERT_EQ(snap.axes[axis].size(), n) << info.name;
      }
    }
  }
}

TEST(GeneratorTest, AllValuesFinite) {
  for (const auto& info : AllDatasets()) {
    const auto traj = info.make(Tiny());
    for (const auto& snap : traj.snapshots) {
      for (int axis = 0; axis < 3; ++axis) {
        for (double v : snap.axes[axis]) {
          ASSERT_TRUE(std::isfinite(v)) << info.name;
        }
      }
    }
  }
}

TEST(GeneratorTest, DeterministicAcrossCalls) {
  const auto a = MakeCopperB(Tiny());
  const auto b = MakeCopperB(Tiny());
  ASSERT_EQ(a.num_snapshots(), b.num_snapshots());
  for (size_t s = 0; s < a.num_snapshots(); ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      ASSERT_EQ(a.snapshots[s].axes[axis], b.snapshots[s].axes[axis]);
    }
  }
}

TEST(GeneratorTest, SeedChangesData) {
  GeneratorOptions a = Tiny();
  GeneratorOptions b = Tiny();
  b.seed = 987654;
  const auto ta = MakeHeliumB(a);
  const auto tb = MakeHeliumB(b);
  EXPECT_NE(ta.snapshots[0].axes[0], tb.snapshots[0].axes[0]);
}

// --- Characterization properties: the generators must reproduce the paper's
// takeaways (Section V).

TEST(CharacterizationTest, CopperBIsMultiPeak) {
  const auto traj = MakeCopperB(Tiny());
  const auto hist =
      analysis::ComputeHistogram(traj.snapshots[0].axes[0], 100);
  EXPECT_GE(analysis::CountHistogramPeaks(hist), 4)
      << "crystalline data must cluster into discrete levels (Fig. 4a)";
}

TEST(CharacterizationTest, AdkIsNotStronglyMultiPeak) {
  const auto traj = MakeAdk(Tiny());
  const auto hist =
      analysis::ComputeHistogram(traj.snapshots[0].axes[0], 40);
  // Protein data is spread out (Fig. 4b): no dominant empty-bin structure.
  size_t empty = 0;
  for (size_t c : hist.counts) {
    if (c == 0) ++empty;
  }
  EXPECT_LT(empty, hist.counts.size() / 2);
}

TEST(CharacterizationTest, PtIsExtremelySmoothInTime) {
  const auto pt = MakePt(Tiny());
  const auto adk = MakeAdk(Tiny());
  const double pt_rough = analysis::TemporalRoughness(pt, 0);
  const double adk_rough = analysis::TemporalRoughness(adk, 0);
  EXPECT_LT(pt_rough * 10.0, adk_rough)
      << "Pt must be far smoother in time than ADK (takeaway 4)";
}

TEST(CharacterizationTest, LjIsSmoothInTimeAndRoughInSpace) {
  const auto lj = MakeLj(Tiny());
  ASSERT_GT(lj.num_snapshots(), 1u);
  const double temporal = analysis::TemporalRoughness(lj, 0);
  const double spatial =
      analysis::SpatialRoughness(lj.snapshots[0].axes[0]);
  EXPECT_LT(temporal, 0.05);
  EXPECT_GT(spatial, 0.05);
}

TEST(CharacterizationTest, HaccTrajectoriesAreSmooth) {
  const auto hacc = MakeHacc1(Tiny());
  EXPECT_LT(analysis::TemporalRoughness(hacc, 0), 0.05);
}

TEST(GeneratorTest, LjComesFromRealSimulation) {
  const auto lj = MakeLj(Tiny());
  ASSERT_GT(lj.num_snapshots(), 1u);
  // Particles must actually move between dumps (it's a liquid, not a copy).
  const auto& first = lj.snapshots.front().axes[0];
  const auto& last = lj.snapshots.back().axes[0];
  double moved = 0.0;
  for (size_t i = 0; i < first.size(); ++i) {
    moved += std::fabs(last[i] - first[i]);
  }
  EXPECT_GT(moved / static_cast<double>(first.size()), 1e-3);
  // And the box is recorded for RDF analysis.
  EXPECT_GT(lj.box[0], 0.0);
}

TEST(GeneratorTest, SizeScaleGrowsDataset) {
  GeneratorOptions small = Tiny();
  GeneratorOptions large = Tiny();
  large.size_scale = 0.2;
  EXPECT_LT(MakeCopperA(small).num_particles(),
            MakeCopperA(large).num_particles());
  // Mode-B datasets scale snapshots instead.
  EXPECT_LT(MakeHeliumB(small).num_snapshots(),
            MakeHeliumB(large).num_snapshots());
}

}  // namespace
}  // namespace mdz::datagen
