#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/asn.h"
#include "baselines/compressor_interface.h"
#include "baselines/hrtc.h"
#include "baselines/lfzip.h"
#include "baselines/mdb.h"
#include "baselines/sz2.h"
#include "baselines/tng.h"
#include "util/rng.h"

namespace mdz::baselines {
namespace {

Field SmoothField(size_t m, size_t n, uint64_t seed) {
  Rng rng(seed);
  Field field(m, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) field[0][i] = rng.Uniform(0.0, 30.0);
  for (size_t s = 1; s < m; ++s) {
    for (size_t i = 0; i < n; ++i) {
      field[s][i] = field[s - 1][i] + rng.Gaussian(0.0, 0.02);
    }
  }
  return field;
}

Field NoisyField(size_t m, size_t n, uint64_t seed) {
  Rng rng(seed);
  Field field(m, std::vector<double>(n));
  for (auto& snapshot : field) {
    for (auto& v : snapshot) v = rng.Uniform(-5.0, 5.0);
  }
  return field;
}

double GlobalRange(const Field& field) {
  double lo = 1e300, hi = -1e300;
  for (const auto& s : field) {
    for (double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  return hi - lo;
}

void ExpectWithinBound(const Field& original, const Field& decoded,
                       double abs_eb, const std::string& label) {
  ASSERT_EQ(decoded.size(), original.size()) << label;
  for (size_t s = 0; s < original.size(); ++s) {
    ASSERT_EQ(decoded[s].size(), original[s].size()) << label;
    for (size_t i = 0; i < original[s].size(); ++i) {
      ASSERT_LE(std::fabs(decoded[s][i] - original[s][i]), abs_eb * 1.0000001)
          << label << " snapshot " << s << " index " << i;
    }
  }
}

// --- Registry-wide property tests: every lossy compressor round-trips within
// the error bound on every data shape.

struct SweepParam {
  const char* compressor;
  int shape;  // 0 smooth, 1 noisy
  double eb;
  uint32_t bs;
};

class LossySweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(LossySweepTest, RoundTripWithinBound) {
  const SweepParam p = GetParam();
  auto info = LossyCompressorByName(p.compressor);
  ASSERT_TRUE(info.ok());

  const Field field = (p.shape == 0) ? SmoothField(27, 150, 1)
                                     : NoisyField(27, 150, 2);
  CompressorConfig config;
  config.error_bound = p.eb;
  config.buffer_size = p.bs;

  auto compressed = info->compress(field, config);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  auto decoded = info->decompress(*compressed);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  const double abs_eb = p.eb * GlobalRange(field);
  ExpectWithinBound(field, *decoded, abs_eb, p.compressor);
}

std::vector<SweepParam> MakeSweepParams() {
  std::vector<SweepParam> params;
  for (const char* name :
       {"SZ2", "ASN", "TNG", "HRTC", "MDB", "LFZip", "SZ3", "MDZ"}) {
    for (int shape : {0, 1}) {
      for (double eb : {1e-2, 1e-4}) {
        for (uint32_t bs : {5u, 10u}) {
          params.push_back({name, shape, eb, bs});
        }
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllCompressors, LossySweepTest, ::testing::ValuesIn(MakeSweepParams()),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      const SweepParam& p = info.param;
      std::string name = p.compressor;
      name += (p.shape == 0) ? "_smooth" : "_noisy";
      name += (p.eb == 1e-2) ? "_eb1e2" : "_eb1e4";
      name += "_bs" + std::to_string(p.bs);
      return name;
    });

// --- Registry sanity -----------------------------------------------------------

TEST(RegistryTest, AllCompressorsListed) {
  EXPECT_EQ(AllLossyCompressors().size(), 8u);
  EXPECT_EQ(BaselineLossyCompressors().size(), 7u);
  EXPECT_EQ(AllLossyCompressors().back().name, "MDZ");
}

TEST(RegistryTest, UnknownNameIsError) {
  EXPECT_FALSE(LossyCompressorByName("NoSuchThing").ok());
}

// --- SZ2 specifics ---------------------------------------------------------------

TEST(Sz2Test, TwoDModeBeatsOneDOnTimeSmoothData) {
  // Paper Table IV: 2D mode exploits time smoothness that 1D cannot.
  const Field field = SmoothField(50, 400, 3);
  CompressorConfig config;
  auto one_d = Sz2Compress(field, config, Sz2Mode::k1D);
  auto two_d = Sz2Compress(field, config, Sz2Mode::k2D);
  ASSERT_TRUE(one_d.ok());
  ASSERT_TRUE(two_d.ok());
  EXPECT_LT(two_d->size(), one_d->size());
}

TEST(Sz2Test, BothModesDecodeCorrectly) {
  const Field field = NoisyField(15, 80, 4);
  CompressorConfig config;
  const double abs_eb = config.error_bound * GlobalRange(field);
  for (Sz2Mode mode : {Sz2Mode::k1D, Sz2Mode::k2D}) {
    auto compressed = Sz2Compress(field, config, mode);
    ASSERT_TRUE(compressed.ok());
    auto decoded = Sz2Decompress(*compressed);
    ASSERT_TRUE(decoded.ok());
    ExpectWithinBound(field, *decoded, abs_eb, "SZ2");
  }
}

TEST(Sz2Test, EmptyFieldRejected) {
  EXPECT_FALSE(Sz2Compress({}, CompressorConfig(), Sz2Mode::k2D).ok());
}

// --- ASN specifics ---------------------------------------------------------------

TEST(AsnTest, ExtrapolationHelpsLinearMotion) {
  // Constant-velocity drift: ASN's 2x(t-1) - x(t-2) predictor is exact, so it
  // must beat plain previous-snapshot deltas encoded by TNG.
  Field field(40, std::vector<double>(200));
  Rng rng(5);
  std::vector<double> v0(200), vel(200);
  for (size_t i = 0; i < 200; ++i) {
    v0[i] = rng.Uniform(0.0, 10.0);
    vel[i] = rng.Uniform(0.05, 0.2);
  }
  for (size_t s = 0; s < 40; ++s) {
    for (size_t i = 0; i < 200; ++i) {
      field[s][i] = v0[i] + vel[i] * static_cast<double>(s) +
                    rng.Gaussian(0.0, 1e-4);
    }
  }
  CompressorConfig config;
  config.buffer_size = 40;
  auto asn = AsnCompress(field, config);
  auto tng = TngCompress(field, config);
  ASSERT_TRUE(asn.ok());
  ASSERT_TRUE(tng.ok());
  EXPECT_LT(asn->size(), tng->size());
}

// --- TNG specifics ---------------------------------------------------------------

TEST(TngTest, GridQuantizationIsUniform) {
  const Field field = SmoothField(10, 50, 6);
  CompressorConfig config;
  config.error_bound = 1e-3;
  auto compressed = TngCompress(field, config);
  ASSERT_TRUE(compressed.ok());
  auto decoded = TngDecompress(*compressed);
  ASSERT_TRUE(decoded.ok());
  // All decoded values sit on one global grid: multiples of 2*abs_eb.
  const double abs_eb = 1e-3 * GlobalRange(field);
  for (const auto& snapshot : *decoded) {
    for (double v : snapshot) {
      const double q = v / (2.0 * abs_eb);
      EXPECT_NEAR(q, std::round(q), 1e-6);
    }
  }
}

// --- HRTC specifics ---------------------------------------------------------------

TEST(HrtcTest, PiecewiseLinearDataCollapsesToFewSegments) {
  // Exactly linear per-particle trajectories compress to ~2 breakpoints per
  // buffer per particle.
  Field field(60, std::vector<double>(100));
  for (size_t s = 0; s < 60; ++s) {
    for (size_t i = 0; i < 100; ++i) {
      field[s][i] = static_cast<double>(i) +
                    0.05 * static_cast<double>(i % 7) * static_cast<double>(s);
    }
  }
  CompressorConfig config;
  config.buffer_size = 60;
  auto compressed = HrtcCompress(field, config);
  ASSERT_TRUE(compressed.ok());
  // Far below one value per point.
  EXPECT_LT(compressed->size(), 60 * 100 * sizeof(double) / 20);
  auto decoded = HrtcDecompress(*compressed);
  ASSERT_TRUE(decoded.ok());
  const double abs_eb = config.error_bound * GlobalRange(field);
  ExpectWithinBound(field, *decoded, abs_eb, "HRTC");
}

// --- MDB specifics ---------------------------------------------------------------

TEST(MdbTest, ConstantSeriesUsesPmc) {
  Field field(20, std::vector<double>(50, 1.5));
  CompressorConfig config;
  config.buffer_size = 20;
  auto compressed = MdbCompress(field, config);
  ASSERT_TRUE(compressed.ok());
  // One PMC segment per particle: ~(1+1+8) bytes * 50 + header.
  EXPECT_LT(compressed->size(), 50u * 16u + 64u);
  auto decoded = MdbDecompress(*compressed);
  ASSERT_TRUE(decoded.ok());
  for (const auto& snapshot : *decoded) {
    for (double v : snapshot) EXPECT_NEAR(v, 1.5, 1e-12);
  }
}

TEST(MdbTest, NoisySeriesFallsBackToGorillaLossless) {
  const Field field = NoisyField(10, 30, 7);
  CompressorConfig config;
  config.error_bound = 1e-9;  // nothing fits PMC/Swing
  auto compressed = MdbCompress(field, config);
  ASSERT_TRUE(compressed.ok());
  auto decoded = MdbDecompress(*compressed);
  ASSERT_TRUE(decoded.ok());
  // Gorilla fallback is lossless.
  for (size_t s = 0; s < field.size(); ++s) {
    for (size_t i = 0; i < field[s].size(); ++i) {
      EXPECT_EQ((*decoded)[s][i], field[s][i]);
    }
  }
}

// --- LFZip specifics ---------------------------------------------------------------

TEST(LfzipTest, FilterAdaptsToPeriodicSignal) {
  // A pure sinusoid is perfectly predictable by a 32-tap linear filter after
  // adaptation; later buffers must compress much better than a random signal.
  Field sine(100, std::vector<double>(64));
  for (size_t s = 0; s < 100; ++s) {
    for (size_t i = 0; i < 64; ++i) {
      sine[s][i] = std::sin(0.2 * static_cast<double>(s)) + 2.0;
    }
  }
  const Field noisy = NoisyField(100, 64, 8);
  CompressorConfig config;
  auto sine_out = LfzipCompress(sine, config);
  auto noisy_out = LfzipCompress(noisy, config);
  ASSERT_TRUE(sine_out.ok());
  ASSERT_TRUE(noisy_out.ok());
  EXPECT_LT(sine_out->size(), noisy_out->size());
}

// --- Cross-compressor corruption robustness -----------------------------------------

TEST(BaselineCorruptionTest, FlippedBytesNeverCrash) {
  const Field field = SmoothField(12, 60, 9);
  CompressorConfig config;
  Rng rng(10);
  for (const auto& info : AllLossyCompressors()) {
    auto compressed = info.compress(field, config);
    ASSERT_TRUE(compressed.ok()) << info.name;
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<uint8_t> mutated = *compressed;
      mutated[rng.UniformInt(mutated.size())] ^=
          static_cast<uint8_t>(1 + rng.UniformInt(255));
      auto result = info.decompress(mutated);  // must not crash
      (void)result;
    }
  }
}

TEST(BaselineCorruptionTest, EmptyInputRejectedByAll) {
  for (const auto& info : AllLossyCompressors()) {
    EXPECT_FALSE(info.decompress({}).ok()) << info.name;
  }
}

}  // namespace
}  // namespace mdz::baselines
