#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/mdz.h"
#include "io/archive.h"
#include "io/trajectory_io.h"
#include "util/hash.h"
#include "util/rng.h"

namespace mdz::io {
namespace {

core::Trajectory MakeTestTrajectory(size_t m, size_t n, uint64_t seed) {
  core::Trajectory traj;
  traj.name = "io-test";
  traj.box = {12.5, 13.5, 14.5};
  Rng rng(seed);
  for (size_t s = 0; s < m; ++s) {
    core::Snapshot snap;
    for (auto& axis : snap.axes) {
      axis.resize(n);
      for (auto& v : axis) v = rng.Uniform(-100.0, 100.0);
    }
    traj.snapshots.push_back(std::move(snap));
  }
  return traj;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// --- Hash --------------------------------------------------------------------

TEST(HashTest, DeterministicAndSensitive) {
  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  const uint64_t h1 = Fnv1a64(data);
  EXPECT_EQ(h1, Fnv1a64(data));
  data[2] ^= 1;
  EXPECT_NE(h1, Fnv1a64(data));
}

TEST(HashTest, EmptyInputHasSeedValue) {
  EXPECT_EQ(Fnv1a64({}), 0xCBF29CE484222325ull);
}

// --- Binary trajectory I/O ------------------------------------------------------

TEST(BinaryTrajectoryTest, RoundTripBitExact) {
  const core::Trajectory traj = MakeTestTrajectory(7, 50, 1);
  const std::string path = TempPath("traj_roundtrip.mdtraj");
  ASSERT_TRUE(WriteBinaryTrajectory(traj, path).ok());
  auto read = ReadBinaryTrajectory(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();

  EXPECT_EQ(read->name, traj.name);
  EXPECT_EQ(read->box, traj.box);
  ASSERT_EQ(read->num_snapshots(), traj.num_snapshots());
  for (size_t s = 0; s < traj.num_snapshots(); ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_EQ(read->snapshots[s].axes[axis], traj.snapshots[s].axes[axis]);
    }
  }
  std::remove(path.c_str());
}

TEST(BinaryTrajectoryTest, RejectsMissingFile) {
  EXPECT_FALSE(ReadBinaryTrajectory("/nonexistent/file.mdtraj").ok());
}

TEST(BinaryTrajectoryTest, RejectsWrongMagic) {
  const std::string path = TempPath("bad_magic.mdtraj");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("NOTATRAJ__________", 1, 18, f);
  std::fclose(f);
  EXPECT_EQ(ReadBinaryTrajectory(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(BinaryTrajectoryTest, RejectsTruncation) {
  const core::Trajectory traj = MakeTestTrajectory(5, 40, 2);
  const std::string path = TempPath("trunc.mdtraj");
  ASSERT_TRUE(WriteBinaryTrajectory(traj, path).ok());
  // Truncate the file in half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_FALSE(ReadBinaryTrajectory(path).ok());
  std::remove(path.c_str());
}

// --- XYZ I/O --------------------------------------------------------------------

TEST(XyzTrajectoryTest, RoundTripBitExact) {
  const core::Trajectory traj = MakeTestTrajectory(4, 25, 3);
  const std::string path = TempPath("traj.xyz");
  ASSERT_TRUE(WriteXyzTrajectory(traj, path, "Cu").ok());
  auto read = ReadXyzTrajectory(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->num_snapshots(), 4u);
  ASSERT_EQ(read->num_particles(), 25u);
  EXPECT_EQ(read->box, traj.box);  // written in the comment line
  for (size_t s = 0; s < 4; ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      // %.17g preserves doubles exactly.
      EXPECT_EQ(read->snapshots[s].axes[axis], traj.snapshots[s].axes[axis]);
    }
  }
  std::remove(path.c_str());
}

TEST(XyzTrajectoryTest, RejectsGarbage) {
  const std::string path = TempPath("garbage.xyz");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "not an xyz file\n");
  std::fclose(f);
  EXPECT_FALSE(ReadXyzTrajectory(path).ok());
  std::remove(path.c_str());
}

TEST(XyzTrajectoryTest, RejectsInconsistentFrames) {
  const std::string path = TempPath("ragged.xyz");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "2\nframe 0\nAr 0 0 0\nAr 1 1 1\n");
  std::fprintf(f, "3\nframe 1\nAr 0 0 0\nAr 1 1 1\nAr 2 2 2\n");
  std::fclose(f);
  EXPECT_FALSE(ReadXyzTrajectory(path).ok());
  std::remove(path.c_str());
}

// --- Archive --------------------------------------------------------------------

TEST(ArchiveTest, RoundTripWithinBound) {
  const core::Trajectory traj = MakeTestTrajectory(12, 80, 4);
  core::Options options;
  auto compressed = core::CompressTrajectory(traj, options);
  ASSERT_TRUE(compressed.ok());

  Archive archive;
  archive.data = std::move(compressed).value();
  archive.name = traj.name;
  archive.box = traj.box;
  const std::string path = TempPath("archive.mdza");
  ASSERT_TRUE(WriteArchive(archive, path).ok());

  auto read = ReadArchive(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->name, "io-test");
  EXPECT_EQ(read->box, traj.box);

  auto decoded = DecompressArchive(*read);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_snapshots(), 12u);
  EXPECT_EQ(decoded->num_particles(), 80u);
  EXPECT_EQ(decoded->name, "io-test");
  std::remove(path.c_str());
}

TEST(ArchiveTest, ChecksumCatchesBitFlip) {
  const core::Trajectory traj = MakeTestTrajectory(6, 30, 5);
  auto compressed = core::CompressTrajectory(traj, core::Options());
  ASSERT_TRUE(compressed.ok());
  Archive archive;
  archive.data = std::move(compressed).value();
  const std::string path = TempPath("flipped.mdza");
  ASSERT_TRUE(WriteArchive(archive, path).ok());

  // Flip one payload byte in the middle of the file.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, size / 2, SEEK_SET);
  int byte = std::fgetc(f);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(byte ^ 0x40, f);
  std::fclose(f);

  auto read = ReadArchive(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(ArchiveTest, RejectsTinyFile) {
  const std::string path = TempPath("tiny.mdza");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("MD", 1, 2, f);
  std::fclose(f);
  EXPECT_FALSE(ReadArchive(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mdz::io
