// Tests for the observability subsystem (src/obs): metrics registry
// concurrency, span nesting, exporter golden files, and the trace sink.

#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/mdz.h"
#include "core/quality_audit.h"
#include "core/thread_pool.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/quality.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace mdz::obs {
namespace {

// Flips the global telemetry switch for one test and restores it after.
class EnabledGuard {
 public:
  explicit EnabledGuard(bool on) : prev_(Enabled()) { SetEnabled(on); }
  ~EnabledGuard() { SetEnabled(prev_); }

 private:
  bool prev_;
};

uint64_t CounterValueOrZero(const MetricsRegistry::Snapshot& snap,
                            const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

const MetricsRegistry::HistogramValue* FindHistogram(
    const MetricsRegistry::Snapshot& snap, const std::string& name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// --- Registry ---------------------------------------------------------------

TEST(ObsMetricsTest, CounterConcurrentAddsFromThreadPool) {
  MetricsRegistry registry;
  Counter* hammered = registry.GetCounter("hammered");
  Counter* strided = registry.GetCounter("strided");

  // Every pool worker (plus the submitting thread) adds through the same two
  // handles; the sharded cells must not lose any increment.
  core::ThreadPool pool(8);
  constexpr size_t kIters = 20000;
  pool.ParallelFor(0, kIters, [&](size_t i) {
    hammered->Add(1);
    if (i % 2 == 0) strided->Add(3);
  });

  EXPECT_EQ(hammered->Value(), kIters);
  EXPECT_EQ(strided->Value(), 3 * (kIters / 2));
}

TEST(ObsMetricsTest, HandlesSurviveReset) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h", DurationBuckets());
  c->Add(7);
  g->Set(-5);
  h->Observe(0.5);

  registry.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_EQ(h->Sum(), 0.0);

  // The same handles keep working after the reset.
  c->Add(2);
  EXPECT_EQ(c->Value(), 2u);
  EXPECT_EQ(registry.GetCounter("c"), c);
}

TEST(ObsMetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("depth");
  g->Set(4);
  g->Add(-1);
  g->Add(-1);
  EXPECT_EQ(g->Value(), 2);
}

TEST(ObsMetricsTest, HistogramBucketsAndSum) {
  MetricsRegistry registry;
  const std::array<double, 2> bounds = {1.0, 10.0};
  Histogram* h = registry.GetHistogram("latency", bounds);
  h->Observe(0.5);   // <= 1
  h->Observe(5.0);   // <= 10
  h->Observe(50.0);  // +Inf
  EXPECT_EQ(h->Count(), 3u);
  EXPECT_DOUBLE_EQ(h->Sum(), 55.5);
  const std::vector<uint64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(ObsMetricsTest, HistogramConcurrentObserve) {
  MetricsRegistry registry;
  const std::array<double, 3> bounds = {1.0, 2.0, 3.0};
  Histogram* h = registry.GetHistogram("conc", bounds);
  core::ThreadPool pool(8);
  constexpr size_t kIters = 10000;
  pool.ParallelFor(0, kIters, [&](size_t i) {
    h->Observe(static_cast<double>(i % 4) + 0.5);  // buckets 1,2,3,+Inf
  });
  EXPECT_EQ(h->Count(), kIters);
  const std::vector<uint64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  for (uint64_t c : counts) EXPECT_EQ(c, kIters / 4);
}

TEST(ObsMetricsTest, CollectIsNameSorted) {
  MetricsRegistry registry;
  registry.GetCounter("zebra");
  registry.GetCounter("alpha");
  registry.GetCounter("mid");
  const auto snap = registry.Collect();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zebra");
}

TEST(ObsMetricsTest, CounterMacroRespectsEnabledSwitch) {
  {
    EnabledGuard off(false);
    MDZ_COUNTER_ADD("obs_test/macro", 5);  // must not record
  }
  {
    EnabledGuard on(true);
    MDZ_COUNTER_ADD("obs_test/macro", 2);
  }
  const auto snap = MetricsRegistry::Global().Collect();
  EXPECT_EQ(CounterValueOrZero(snap, "obs_test/macro"), 2u);
}

// --- Spans ------------------------------------------------------------------

TEST(ObsSpanTest, NestingBuildsHierarchicalPaths) {
  EnabledGuard on(true);
  MetricsRegistry::Global().Reset();

  EXPECT_EQ(SpanDepthForTest(), 0u);
  {
    MDZ_SPAN("obs_outer");
    EXPECT_EQ(SpanDepthForTest(), 1u);
    {
      MDZ_SPAN("obs_inner");
      EXPECT_EQ(SpanDepthForTest(), 2u);
    }
    {
      MDZ_SPAN("obs_inner");  // second visit accumulates, same path
      EXPECT_EQ(SpanDepthForTest(), 2u);
    }
  }
  EXPECT_EQ(SpanDepthForTest(), 0u);

  const auto snap = MetricsRegistry::Global().Collect();
  const auto* outer = FindHistogram(snap, "span/obs_outer");
  const auto* inner = FindHistogram(snap, "span/obs_outer/obs_inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 2u);
  // The inner spans ran inside the outer one, so the outer time covers them.
  EXPECT_GE(outer->sum, inner->sum);
}

TEST(ObsSpanTest, DisabledSpanRecordsNothing) {
  EnabledGuard off(false);
  {
    MDZ_SPAN("obs_ghost");
    EXPECT_EQ(SpanDepthForTest(), 0u);
  }
  const auto snap = MetricsRegistry::Global().Collect();
  EXPECT_EQ(FindHistogram(snap, "span/obs_ghost"), nullptr);
}

TEST(ObsSpanTest, WorkerSpansStartFreshPaths) {
  EnabledGuard on(true);
  MetricsRegistry::Global().Reset();

  core::ThreadPool pool(4);
  {
    MDZ_SPAN("obs_submitter");
    pool.ParallelFor(0, 64, [&](size_t) { MDZ_SPAN("obs_task"); });
  }
  const auto snap = MetricsRegistry::Global().Collect();
  // Iterations run by the submitting thread nest under its open span; the
  // ones claimed by workers appear as top-level spans. Together they cover
  // all 64 iterations.
  const auto* nested = FindHistogram(snap, "span/obs_submitter/obs_task");
  const auto* top = FindHistogram(snap, "span/obs_task");
  const uint64_t nested_count = nested != nullptr ? nested->count : 0;
  const uint64_t top_count = top != nullptr ? top->count : 0;
  EXPECT_EQ(nested_count + top_count, 64u);
}

// --- Exporters --------------------------------------------------------------

MetricsRegistry* GoldenRegistry() {
  auto* registry = new MetricsRegistry();
  registry->GetCounter("a/count")->Add(3);
  registry->GetGauge("g")->Set(-2);
  const std::array<double, 2> bounds = {1.0, 10.0};
  Histogram* h = registry->GetHistogram("h", bounds);
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);
  return registry;
}

// The constant build-provenance block every exposition starts with.
std::string PromBuildInfoBlock() {
  const BuildInfo& b = GetBuildInfo();
  return "# HELP mdz_build_info Build provenance of the emitting binary "
         "(constant 1; see labels)\n"
         "# TYPE mdz_build_info gauge\n"
         "mdz_build_info{git_sha=\"" + b.git_sha + "\",git_describe=\"" +
         b.git_describe + "\",compiler=\"" + b.compiler + "\",flags=\"" +
         b.flags + "\"} 1\n";
}

TEST(ObsExportTest, JsonGolden) {
  std::unique_ptr<MetricsRegistry> registry(GoldenRegistry());
  EXPECT_EQ(
      ToJson(*registry),
      "{\"schema\":\"mdz.metrics.v1\",\"build\":" + BuildInfoJson() +
          ",\"counters\":{\"a/count\":3},"
          "\"gauges\":{\"g\":-2},"
          "\"histograms\":{\"h\":{\"count\":3,\"sum\":55.5,"
          // p50: rank 1.5 lands halfway into the (1,10] bucket; p95/p99
          // land in +Inf, which reports the largest finite bound.
          "\"p50\":5.5,\"p95\":10,\"p99\":10,\"buckets\":["
          "{\"le\":1,\"count\":1},{\"le\":10,\"count\":1},"
          "{\"le\":\"+Inf\",\"count\":1}]}}}");
}

TEST(ObsExportTest, PrometheusGolden) {
  std::unique_ptr<MetricsRegistry> registry(GoldenRegistry());
  EXPECT_EQ(ToPrometheus(*registry),
            PromBuildInfoBlock() +
                "# HELP mdz_a_count MDZ counter 'a/count'\n"
                "# TYPE mdz_a_count counter\n"
                "mdz_a_count 3\n"
                "# HELP mdz_g MDZ gauge 'g'\n"
                "# TYPE mdz_g gauge\n"
                "mdz_g -2\n"
                "# HELP mdz_h MDZ histogram 'h'\n"
                "# TYPE mdz_h histogram\n"
                "mdz_h_bucket{le=\"1\"} 1\n"
                "mdz_h_bucket{le=\"10\"} 2\n"
                "mdz_h_bucket{le=\"+Inf\"} 3\n"
                "mdz_h_sum 55.5\n"
                "mdz_h_count 3\n");
}

TEST(ObsExportTest, PrometheusEscapesHostileMetricNames) {
  // A name carrying newlines/backslashes/quotes must not be able to forge
  // extra exposition lines or break HELP text (names come from code today,
  // but the exporter must not trust that).
  MetricsRegistry registry;
  registry.GetCounter("evil\nname\\x\"q")->Add(1);
  const std::string prom = ToPrometheus(registry);
  EXPECT_NE(prom.find("# HELP mdz_evil_name_x_q MDZ counter "
                      "'evil\\nname\\\\x\"q'\n"),
            std::string::npos);
  // No exposition line may start mid-HELP: every newline is followed by
  // '#', 'm' (mdz_ sample) or end-of-text.
  for (size_t i = prom.find('\n'); i != std::string::npos && i + 1 < prom.size();
       i = prom.find('\n', i + 1)) {
    const char next = prom[i + 1];
    EXPECT_TRUE(next == '#' || next == 'm') << "stray line at offset " << i;
  }
}

TEST(ObsExportTest, EmptyRegistryExports) {
  MetricsRegistry registry;
  EXPECT_EQ(ToJson(registry),
            "{\"schema\":\"mdz.metrics.v1\",\"build\":" + BuildInfoJson() +
                ",\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  EXPECT_EQ(ToPrometheus(registry), PromBuildInfoBlock());
}

TEST(ObsBuildInfoTest, FieldsAreNonEmptyAndJsonIsWellFormed) {
  const BuildInfo& b = GetBuildInfo();
  EXPECT_FALSE(b.git_sha.empty());
  EXPECT_FALSE(b.compiler.empty());
  EXPECT_FALSE(b.flags.empty());
  const std::string json = BuildInfoJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"git_sha\":\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\":\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_disabled\":"), std::string::npos);
}

TEST(ObsExportTest, WriteFilesRoundTrip) {
  std::unique_ptr<MetricsRegistry> registry(GoldenRegistry());
  const std::string path = testing::TempDir() + "/obs_export_test.json";
  ASSERT_TRUE(WriteJsonFile(*registry, path).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), ToJson(*registry));
  std::remove(path.c_str());
}

TEST(ObsExportTest, WriteFileToBadPathFails) {
  MetricsRegistry registry;
  const Status s = WriteJsonFile(registry, "/nonexistent-dir/x/y.json");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

// --- Trace sink -------------------------------------------------------------

TEST(ObsTraceTest, WritesOneJsonLinePerRecord) {
  const std::string path = testing::TempDir() + "/obs_trace_test.jsonl";
  auto sink = TraceSink::Open(path);
  ASSERT_TRUE(sink.ok());

  BlockTrace t;
  t.axis = 1;
  t.block_index = 4;
  t.method = "VQT";
  t.snapshots = 10;
  t.block_bytes = 1234;
  t.escape_count = 2;
  t.bin_entropy_bits = 3.5;
  t.adapted = true;
  t.trial_bytes = {1300, 1234, 1500, 0};
  (*sink)->Record(t);

  BlockTrace plain;
  plain.method = "MT";
  (*sink)->Record(plain);

  EXPECT_EQ((*sink)->records_written(), 2u);
  ASSERT_TRUE((*sink)->Close().ok());

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "{\"axis\":1,\"block\":4,\"method\":\"VQT\",\"snapshots\":10,"
            "\"bytes\":1234,\"escapes\":2,\"entropy_bits\":3.5,"
            "\"adapted\":true,\"trial_vq\":1300,\"trial_vqt\":1234,"
            "\"trial_mt\":1500,\"trial_ti\":0,\"trial_l2d\":0,"
            "\"trial_ba\":0}");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "{\"axis\":-1,\"block\":0,\"method\":\"MT\",\"snapshots\":0,"
            "\"bytes\":0,\"escapes\":0,\"entropy_bits\":0,"
            "\"adapted\":false,\"trial_vq\":0,\"trial_vqt\":0,"
            "\"trial_mt\":0,\"trial_ti\":0,\"trial_l2d\":0,"
            "\"trial_ba\":0}");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(ObsTraceTest, ConcurrentRecordsAllLand) {
  const std::string path = testing::TempDir() + "/obs_trace_conc.jsonl";
  auto sink = TraceSink::Open(path);
  ASSERT_TRUE(sink.ok());

  core::ThreadPool pool(4);
  constexpr size_t kRecords = 500;
  pool.ParallelFor(0, kRecords, [&](size_t i) {
    BlockTrace t;
    t.axis = static_cast<int>(i % 3);
    t.block_index = i;
    t.method = "VQ";
    (*sink)->Record(t);
  });
  EXPECT_EQ((*sink)->records_written(), kRecords);
  ASSERT_TRUE((*sink)->Close().ok());

  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, kRecords);
  std::remove(path.c_str());
}

TEST(ObsTraceTest, OpenFailsForUnwritablePath) {
  auto sink = TraceSink::Open("/nonexistent-dir/x/trace.jsonl");
  EXPECT_FALSE(sink.ok());
}

// --- Pool instrumentation ---------------------------------------------------

TEST(ObsPoolTest, ParallelForRecordsPoolMetrics) {
  EnabledGuard on(true);
  MetricsRegistry::Global().Reset();

  core::ThreadPool pool(4);
  pool.ParallelFor(0, 32, [](size_t) {});

  const auto snap = MetricsRegistry::Global().Collect();
  EXPECT_EQ(CounterValueOrZero(snap, "pool/batches"), 1u);
  EXPECT_EQ(CounterValueOrZero(snap, "pool/tasks"), 32u);
  const auto* tasks = FindHistogram(snap, "pool/task_seconds");
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->count, 32u);
  // The in-flight gauge pairs its +1/-1, so it reads 0 between batches.
  for (const auto& [name, value] : snap.gauges) {
    if (name == "pool/queue_depth") EXPECT_EQ(value, 0);
  }
}

// --- Pipeline stats (CompressorStats / DecompressorStats extensions) --------

std::vector<std::vector<double>> SmoothField(size_t m, size_t n,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> field(m, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) field[0][i] = rng.Uniform(0.0, 100.0);
  for (size_t s = 1; s < m; ++s) {
    for (size_t i = 0; i < n; ++i) {
      field[s][i] = field[s - 1][i] + rng.Gaussian(0.0, 0.01);
    }
  }
  return field;
}

TEST(PipelineStatsTest, MethodCountersAndStageBytesAddUp) {
  const auto field = SmoothField(25, 200, 11);
  core::Options options;
  options.method = core::Method::kMT;
  options.buffer_size = 10;

  auto compressor = core::FieldCompressor::Create(200, options);
  ASSERT_TRUE(compressor.ok());
  for (const auto& s : field) ASSERT_TRUE((*compressor)->Append(s).ok());
  ASSERT_TRUE((*compressor)->Finish().ok());

  const core::CompressorStats& stats = (*compressor)->stats();
  EXPECT_EQ(stats.buffers_out, 3u);
  EXPECT_EQ(stats.blocks_mt, 3u);
  EXPECT_EQ(stats.blocks_vq + stats.blocks_vqt + stats.blocks_ti, 0u);
  EXPECT_EQ(stats.blocks_vq + stats.blocks_vqt + stats.blocks_mt +
                stats.blocks_ti,
            stats.buffers_out);

  // Stage-byte invariant: the dictionary-coded payloads plus framing account
  // for every compressed byte; the pre-dictionary Huffman size is nonzero.
  EXPECT_GT(stats.huffman_bytes, 0u);
  EXPECT_EQ(stats.main_lz_bytes + stats.side_lz_bytes + stats.framing_bytes,
            stats.compressed_bytes);
  EXPECT_EQ(stats.compressed_bytes, (*compressor)->output().size());
}

TEST(PipelineStatsTest, DecompressorStatsCountBlocksAndBytes) {
  const size_t kSnapshots = 25, kParticles = 150;
  const auto field = SmoothField(kSnapshots, kParticles, 3);
  core::Options options;
  options.buffer_size = 10;
  auto compressed = core::CompressField(field, options);
  ASSERT_TRUE(compressed.ok());

  auto decompressor = core::FieldDecompressor::Open(*compressed);
  ASSERT_TRUE(decompressor.ok());
  auto all = (*decompressor)->DecodeAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), kSnapshots);

  const core::DecompressorStats& stats = (*decompressor)->stats();
  EXPECT_EQ(stats.blocks_decoded, 3u);
  EXPECT_EQ(stats.snapshots_decoded, kSnapshots);
  EXPECT_EQ(stats.bytes_out, kSnapshots * kParticles * sizeof(double));
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_LE(stats.bytes_in, compressed->size());
  EXPECT_EQ(stats.corruption_errors, 0u);
}

TEST(PipelineStatsTest, DecompressorCountsCorruptionErrors) {
  const auto field = SmoothField(12, 100, 5);
  auto compressed = core::CompressField(field, core::Options{});
  ASSERT_TRUE(compressed.ok());
  // Truncate mid-payload: the stream opens fine but decoding fails.
  std::vector<uint8_t> truncated(*compressed);
  truncated.resize(truncated.size() - truncated.size() / 3);

  auto decompressor = core::FieldDecompressor::Open(truncated);
  if (!decompressor.ok()) return;  // header landed in the cut — fine
  std::vector<double> snapshot;
  Status failure = Status::OK();
  while (true) {
    auto more = (*decompressor)->Next(&snapshot);
    if (!more.ok()) {
      failure = more.status();
      break;
    }
    if (!*more) break;
  }
  ASSERT_EQ(failure.code(), StatusCode::kCorruption)
      << failure.ToString();
  EXPECT_EQ((*decompressor)->stats().corruption_errors, 1u);
}

TEST(PipelineStatsTest, ListBlocksCoversTheStream) {
  const size_t kSnapshots = 25;
  const auto field = SmoothField(kSnapshots, 120, 9);
  core::Options options;
  options.buffer_size = 10;
  options.method = core::Method::kVQT;
  auto compressed = core::CompressField(field, options);
  ASSERT_TRUE(compressed.ok());

  auto decompressor = core::FieldDecompressor::Open(*compressed);
  ASSERT_TRUE(decompressor.ok());
  auto blocks = (*decompressor)->ListBlocks();
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 3u);
  size_t covered = 0;
  for (const auto& b : *blocks) {
    EXPECT_EQ(b.first_snapshot, covered);
    EXPECT_EQ(b.method, core::Method::kVQT);
    EXPECT_GT(b.frame_bytes, 0u);
    EXPECT_LT(b.offset, compressed->size());
    covered += b.snapshots;
  }
  EXPECT_EQ(covered, kSnapshots);
}

TEST(PipelineStatsTest, TraceSinkReceivesOneEventPerBuffer) {
  EnabledGuard on(true);
  const std::string path = testing::TempDir() + "/obs_pipeline_trace.jsonl";
  auto sink = TraceSink::Open(path);
  ASSERT_TRUE(sink.ok());

  const auto field = SmoothField(25, 100, 17);
  core::Options options;
  options.buffer_size = 10;
  options.telemetry = true;
  options.trace = sink->get();
  options.trace_axis = 2;
  auto compressed = core::CompressField(field, options);
  ASSERT_TRUE(compressed.ok());
  EXPECT_EQ((*sink)->records_written(), 3u);
  ASSERT_TRUE((*sink)->Close().ok());

  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NE(line.find("\"axis\":2"), std::string::npos);
    EXPECT_NE(line.find("\"method\":\""), std::string::npos);
  }
  EXPECT_EQ(lines, 3u);
  std::remove(path.c_str());
}

// --- Quality accumulators ---------------------------------------------------

TEST(QualityStatsTest, GoldenDerivedMetrics) {
  // Constant error of +0.125 (exactly representable, so orig - dec is exact
  // for these originals) against originals spanning [0, 3]: every derived
  // metric has a closed form.
  QualityStats stats;
  for (double orig : {0.0, 1.0, 2.0, 3.0}) {
    const double ratio = stats.Observe(orig, orig - 0.125, 0.25);
    EXPECT_DOUBLE_EQ(ratio, 0.5);
  }
  EXPECT_EQ(stats.count, 4u);
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_DOUBLE_EQ(stats.max_err, 0.125);
  EXPECT_DOUBLE_EQ(stats.mean_err(), 0.125);
  EXPECT_DOUBLE_EQ(stats.mean_abs_err(), 0.125);
  EXPECT_DOUBLE_EQ(stats.rmse(), 0.125);
  EXPECT_DOUBLE_EQ(stats.value_range(), 3.0);
  EXPECT_DOUBLE_EQ(stats.nrmse(), 0.125 / 3.0);
  EXPECT_NEAR(stats.psnr_db(), 20.0 * std::log10(3.0 / 0.125), 1e-12);
  // ratio 0.5 lands exactly on the 0.5 bucket bound (index 2).
  EXPECT_EQ(stats.histogram[2], 4u);
}

TEST(QualityStatsTest, ExactRoundTripHasInfinitePsnr) {
  QualityStats stats;
  stats.Observe(1.0, 1.0, 0.1);
  stats.Observe(2.0, 2.0, 0.1);
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_DOUBLE_EQ(stats.rmse(), 0.0);
  EXPECT_TRUE(std::isinf(stats.psnr_db()));
  EXPECT_GT(stats.psnr_db(), 0.0);
  EXPECT_EQ(stats.histogram[0], 2u);
}

TEST(QualityStatsTest, OutOfBoundSampleIsAViolation) {
  QualityStats stats;
  EXPECT_GT(stats.Observe(1.0, 1.5, 0.1), 1.0);
  EXPECT_EQ(stats.violations, 1u);
  EXPECT_EQ(stats.histogram[kQualityBucketCount - 1], 1u);
  // A NaN decode is a violation too, without poisoning the aggregates.
  stats.Observe(2.0, std::nan(""), 0.1);
  EXPECT_EQ(stats.violations, 2u);
  EXPECT_TRUE(std::isfinite(stats.rmse()));
}

TEST(QualityStatsTest, MergeFoldsAllFields) {
  QualityStats a, b;
  a.Observe(0.0, 0.05, 0.1);
  a.Observe(10.0, 10.0, 0.1);
  b.Observe(-5.0, -5.2, 0.1);  // violation
  QualityStats merged = a;
  merged.Merge(b);
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.violations, 1u);
  EXPECT_DOUBLE_EQ(merged.value_range(), 15.0);
  uint64_t hist_total = 0;
  for (uint64_t c : merged.histogram) hist_total += c;
  EXPECT_EQ(hist_total, merged.count);
}

TEST(QualityReportTest, JsonSchemaAndVerdict) {
  QualityReport report;
  FieldQuality field;
  field.axis = 0;
  field.bound = 0.1;
  field.stats.Observe(1.0, 1.05, 0.1);
  report.fields.push_back(field);

  const std::string json = QualityReportToJson(report, "a.mdza", "a.mdtraj");
  EXPECT_EQ(json.rfind("{\"schema\":\"mdz.quality.v1\",", 0), 0u);
  EXPECT_NE(json.find("\"archive\":\"a.mdza\""), std::string::npos);
  EXPECT_NE(json.find("\"build\":" + BuildInfoJson()), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"axis\":\"x\""), std::string::npos);
  EXPECT_NE(json.find("\"histogram\":{\"bounds\":[0.1,0.25,0.5,0.75,0.9,1],"),
            std::string::npos);

  report.fields[0].stats.Observe(1.0, 2.0, 0.1);
  EXPECT_FALSE(report.clean());
  const std::string bad = QualityReportToJson(report, "a.mdza", "a.mdtraj");
  EXPECT_NE(bad.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(bad.find("\"violations\":1"), std::string::npos);
}

TEST(QualityTraceTest, WritesOneSchemaLinePerBlock) {
  const std::string path = testing::TempDir() + "/obs_quality_trace.jsonl";
  auto sink = QualityTraceSink::Open(path);
  ASSERT_TRUE(sink.ok());

  BlockQuality block;
  block.block_index = 2;
  block.first_snapshot = 20;
  block.snapshots = 10;
  block.method = "VQT";
  block.stats.Observe(1.0, 1.01, 0.1);
  (*sink)->Record(0, block);
  EXPECT_EQ((*sink)->records_written(), 1u);
  ASSERT_TRUE((*sink)->Close().ok());

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("{\"axis\":0,\"block\":2,\"first_snapshot\":20,"
                       "\"snapshots\":10,\"method\":\"VQT\",\"count\":1,",
                       0),
            0u);
  EXPECT_NE(line.find("\"hist\":[0,1,0,0,0,0,0]}"), std::string::npos);
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

// --- Audit driver (core/quality_audit) --------------------------------------

core::Trajectory SmoothTrajectory(size_t m, size_t n, uint64_t seed) {
  Rng rng(seed);
  core::Trajectory traj;
  traj.name = "audit-test";
  traj.snapshots.resize(m);
  for (int axis = 0; axis < 3; ++axis) {
    traj.snapshots[0].axes[axis].resize(n);
    for (size_t i = 0; i < n; ++i) {
      traj.snapshots[0].axes[axis][i] = rng.Uniform(0.0, 50.0);
    }
  }
  for (size_t s = 1; s < m; ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      traj.snapshots[s].axes[axis].resize(n);
      for (size_t i = 0; i < n; ++i) {
        traj.snapshots[s].axes[axis][i] =
            traj.snapshots[s - 1].axes[axis][i] + rng.Gaussian(0.0, 0.01);
      }
    }
  }
  return traj;
}

TEST(QualityAuditTest, CleanRoundTripOnEveryPredictor) {
  const core::Trajectory traj = SmoothTrajectory(25, 120, 21);
  for (core::Method method :
       {core::Method::kVQ, core::Method::kVQT, core::Method::kMT}) {
    core::Options options;
    options.method = method;
    options.buffer_size = 10;
    auto compressed = core::CompressTrajectory(traj, options);
    ASSERT_TRUE(compressed.ok());

    auto report = core::AuditTrajectory(*compressed, traj);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean());
    ASSERT_EQ(report->fields.size(), 3u);
    EXPECT_EQ(report->total_samples(), traj.num_values());
    for (const auto& field : report->fields) {
      EXPECT_GT(field.bound, 0.0);
      EXPECT_LE(field.stats.max_err, field.bound);
      EXPECT_EQ(field.blocks.size(), 3u);
    }
  }
}

TEST(QualityAuditTest, PerturbedOriginalIsAViolation) {
  core::Trajectory traj = SmoothTrajectory(20, 100, 22);
  core::Options options;
  options.buffer_size = 10;
  auto compressed = core::CompressTrajectory(traj, options);
  ASSERT_TRUE(compressed.ok());

  // Push one original value far outside the bound: the archive no longer
  // certifies this trajectory.
  traj.snapshots[7].axes[1][42] += 1000.0;
  auto report = core::AuditTrajectory(*compressed, traj);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
  EXPECT_EQ(report->total_violations(), 1u);
  EXPECT_TRUE(report->fields[0].clean());
  EXPECT_FALSE(report->fields[1].clean());
  EXPECT_TRUE(report->fields[2].clean());
}

TEST(QualityAuditTest, ShapeMismatchIsInvalidArgument) {
  const core::Trajectory traj = SmoothTrajectory(10, 80, 23);
  auto compressed = core::CompressTrajectory(traj, core::Options{});
  ASSERT_TRUE(compressed.ok());

  core::Trajectory fewer = traj;
  fewer.snapshots.pop_back();
  auto report = core::AuditTrajectory(*compressed, fewer);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(QualityAuditTest, CorruptStreamSurfacesCorruption) {
  const core::Trajectory traj = SmoothTrajectory(12, 90, 24);
  auto compressed = core::CompressTrajectory(traj, core::Options{});
  ASSERT_TRUE(compressed.ok());
  core::CompressedTrajectory broken = *compressed;
  broken.axes[0].resize(broken.axes[0].size() / 2);

  auto report = core::AuditTrajectory(broken, traj);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kCorruption);
}

TEST(QualityAuditTest, TraceAndMetricsHooksFire) {
  EnabledGuard on(true);
  MetricsRegistry::Global().Reset();

  const core::Trajectory traj = SmoothTrajectory(20, 100, 25);
  core::Options options;
  options.buffer_size = 10;
  auto compressed = core::CompressTrajectory(traj, options);
  ASSERT_TRUE(compressed.ok());

  const std::string path = testing::TempDir() + "/obs_audit_trace.jsonl";
  auto sink = QualityTraceSink::Open(path);
  ASSERT_TRUE(sink.ok());
  core::AuditOptions audit_options;
  audit_options.trace = sink->get();
  audit_options.telemetry = true;
  auto report = core::AuditTrajectory(*compressed, traj, audit_options);
  ASSERT_TRUE(report.ok());
  // 2 blocks per axis stream (20 snapshots / buffer_size 10), 3 axes.
  EXPECT_EQ((*sink)->records_written(), 6u);
  ASSERT_TRUE((*sink)->Close().ok());
  std::remove(path.c_str());

  const auto snap = MetricsRegistry::Global().Collect();
  EXPECT_EQ(CounterValueOrZero(snap, "audit/fields"), 3u);
  EXPECT_EQ(CounterValueOrZero(snap, "audit/blocks"), 6u);
  EXPECT_EQ(CounterValueOrZero(snap, "audit/samples"), traj.num_values());
  EXPECT_EQ(CounterValueOrZero(snap, "audit/violations"), 0u);
  const auto* rel = FindHistogram(snap, "audit/rel_error");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->count, traj.num_values());
}

}  // namespace
}  // namespace mdz::obs
