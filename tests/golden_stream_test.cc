// Golden-stream regression tests: the v1 field-stream bytes produced by each
// method are locked to fixtures captured before the predictor/quantizer stage
// refactor. Any encoder change that alters the bytes of an existing method is
// a format break and must fail here first.
//
// Regenerating fixtures (only when a deliberate, documented format change
// lands): MDZ_UPDATE_GOLDENS=1 ./mdz_tests --gtest_filter='GoldenStreamTest.*'

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/mdz.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace mdz::core {
namespace {

#ifndef MDZ_GOLDEN_DIR
#error "MDZ_GOLDEN_DIR must point at the committed tests/golden directory"
#endif

// Deterministic lattice-with-vibration field: particles sit near integer
// lattice sites and jitter over time, so VQ/VQT find real levels, MT finds
// temporal correlation, and a few particles drift to exercise escapes.
std::vector<std::vector<double>> MakeGoldenField(size_t snapshots, size_t n,
                                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<double> pos(n);
  for (size_t i = 0; i < n; ++i) {
    pos[i] = static_cast<double>(i % 17) + rng.Gaussian(0.0, 0.02);
  }
  std::vector<std::vector<double>> field(snapshots);
  for (size_t s = 0; s < snapshots; ++s) {
    field[s].resize(n);
    for (size_t i = 0; i < n; ++i) {
      pos[i] += rng.Gaussian(0.0, (i % 23 == 0) ? 0.2 : 0.004);
      field[s][i] = pos[i];
    }
  }
  return field;
}

std::string GoldenPath(const std::string& name) {
  return std::string(MDZ_GOLDEN_DIR) + "/" + name + ".mdzf";
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->resize(size < 0 ? 0 : static_cast<size_t>(size));
  const size_t got = out->empty() ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  return got == out->size();
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << "cannot write golden fixture " << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

struct GoldenCase {
  const char* name;
  Method method;
  bool enable_interpolation;
};

class GoldenStreamTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenStreamTest, BytesMatchCommittedFixture) {
  const GoldenCase& gc = GetParam();
  Options options;
  options.error_bound = 1e-3;
  options.error_bound_mode = ErrorBoundMode::kAbsolute;
  options.method = gc.method;
  options.buffer_size = 10;
  options.enable_interpolation = gc.enable_interpolation;
  // 34 snapshots: three full buffers plus a 4-snapshot tail block, so framing
  // of both full and short blocks is pinned.
  const auto field = MakeGoldenField(34, 256, 0xC0FFEEu);
  auto compressed = CompressField(field, options);
  ASSERT_TRUE(compressed.ok()) << compressed.status().message();

  const std::string path = GoldenPath(gc.name);
  if (std::getenv("MDZ_UPDATE_GOLDENS") != nullptr) {
    WriteFileBytes(path, *compressed);
    GTEST_SKIP() << "golden fixture updated: " << path;
  }

  std::vector<uint8_t> golden;
  ASSERT_TRUE(ReadFileBytes(path, &golden))
      << "missing golden fixture " << path
      << " (capture with MDZ_UPDATE_GOLDENS=1)";
  ASSERT_EQ(compressed->size(), golden.size())
      << gc.name << ": stream size changed — encoder output is no longer "
      << "byte-identical to the committed format";
  EXPECT_EQ(*compressed, golden)
      << gc.name << ": stream bytes changed — encoder output is no longer "
      << "byte-identical to the committed format";

  // The committed bytes must also still decode within the recorded bound.
  auto decoded = DecompressField(golden);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  ASSERT_EQ(decoded->size(), field.size());
  double max_err = 0.0;
  for (size_t s = 0; s < field.size(); ++s) {
    ASSERT_EQ((*decoded)[s].size(), field[s].size());
    for (size_t i = 0; i < field[s].size(); ++i) {
      const double err = std::abs((*decoded)[s][i] - field[s][i]);
      if (err > max_err) max_err = err;
    }
  }
  EXPECT_LE(max_err, 1e-3 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, GoldenStreamTest,
    ::testing::Values(GoldenCase{"vq", Method::kVQ, false},
                      GoldenCase{"vqt", Method::kVQT, false},
                      GoldenCase{"mt", Method::kMT, false},
                      GoldenCase{"ti", Method::kTI, true},
                      GoldenCase{"adp", Method::kAdaptive, false},
                      GoldenCase{"adp_ti", Method::kAdaptive, true}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace mdz::core
