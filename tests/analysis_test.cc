#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/characterize.h"
#include "analysis/metrics.h"
#include "analysis/rdf.h"
#include "md/lattice.h"
#include "util/rng.h"

namespace mdz::analysis {
namespace {

// --- Error metrics ----------------------------------------------------------

TEST(MetricsTest, IdenticalDataHasZeroError) {
  std::vector<double> data = {1.0, 2.0, 3.0, 4.0};
  const ErrorMetrics m = ComputeErrorMetrics(data, data);
  EXPECT_EQ(m.max_error, 0.0);
  EXPECT_EQ(m.nrmse, 0.0);
  EXPECT_TRUE(std::isinf(m.psnr));
  EXPECT_EQ(m.count, 4u);
}

TEST(MetricsTest, KnownErrors) {
  std::vector<double> orig = {0.0, 10.0};  // range 10
  std::vector<double> dec = {1.0, 10.0};   // errors {1, 0}
  const ErrorMetrics m = ComputeErrorMetrics(orig, dec);
  EXPECT_DOUBLE_EQ(m.max_error, 1.0);
  // RMSE = sqrt(0.5); NRMSE = sqrt(0.5)/10.
  EXPECT_NEAR(m.nrmse, std::sqrt(0.5) / 10.0, 1e-12);
  EXPECT_NEAR(m.psnr, 20.0 * std::log10(10.0 / std::sqrt(0.5)), 1e-9);
}

TEST(MetricsTest, EmptyInput) {
  const ErrorMetrics m = ComputeErrorMetrics({}, {});
  EXPECT_EQ(m.count, 0u);
}

TEST(MetricsTest, BitRateAndRatio) {
  EXPECT_DOUBLE_EQ(BitRate(1000, 1000), 8.0);
  EXPECT_DOUBLE_EQ(BitRate(250, 1000), 2.0);
  EXPECT_DOUBLE_EQ(CompressionRatio(8000, 1000), 8.0);
  EXPECT_EQ(CompressionRatio(100, 0), 0.0);
}

TEST(MetricsTest, SimilarityFormula) {
  std::vector<double> initial = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> same = initial;
  EXPECT_DOUBLE_EQ(SimilarityToInitial(initial, same, 0.01), 1.0);

  std::vector<double> half = {1.0, 2.0, 30.0, 40.0};  // 2 of 4 changed
  EXPECT_DOUBLE_EQ(SimilarityToInitial(initial, half, 0.01), 0.5);
}

TEST(MetricsTest, SimilarityTauMatters) {
  std::vector<double> initial = {100.0};
  std::vector<double> moved = {101.0};  // 1% relative change (vs snapshot)
  EXPECT_DOUBLE_EQ(SimilarityToInitial(initial, moved, 0.02), 1.0);
  EXPECT_DOUBLE_EQ(SimilarityToInitial(initial, moved, 0.001), 0.0);
}

// --- Histogram / characterization -------------------------------------------

TEST(HistogramTest, CountsSumToInput) {
  Rng rng(1);
  std::vector<double> data(10000);
  for (auto& d : data) d = rng.Uniform(0.0, 1.0);
  const Histogram h = ComputeHistogram(data, 50);
  size_t total = 0;
  for (size_t c : h.counts) total += c;
  EXPECT_EQ(total, data.size());
  EXPECT_EQ(h.counts.size(), 50u);
}

TEST(HistogramTest, ConstantDataSingleBin) {
  std::vector<double> data(100, 5.0);
  const Histogram h = ComputeHistogram(data, 10);
  EXPECT_EQ(h.counts[0], 100u);
}

TEST(HistogramTest, BinCenters) {
  std::vector<double> data = {0.0, 10.0};
  const Histogram h = ComputeHistogram(data, 10);
  EXPECT_NEAR(h.BinCenter(0), 0.5, 1e-12);
  EXPECT_NEAR(h.BinCenter(9), 9.5, 1e-12);
}

TEST(PeakCountTest, MultiPeakDetected) {
  Rng rng(2);
  std::vector<double> data;
  for (int level = 0; level < 5; ++level) {
    for (int i = 0; i < 1000; ++i) {
      data.push_back(level * 10.0 + rng.Gaussian(0.0, 0.3));
    }
  }
  const Histogram h = ComputeHistogram(data, 100);
  EXPECT_GE(CountHistogramPeaks(h), 5);
}

TEST(PeakCountTest, UniformDataFewPeaks) {
  Rng rng(3);
  std::vector<double> data(50000);
  for (auto& d : data) d = rng.Uniform(0.0, 1.0);
  const Histogram h = ComputeHistogram(data, 20);
  EXPECT_LE(CountHistogramPeaks(h), 6);
}

TEST(RoughnessTest, SmoothVsRoughSpace) {
  std::vector<double> smooth(1000), rough(1000);
  Rng rng(4);
  for (size_t i = 0; i < 1000; ++i) {
    smooth[i] = static_cast<double>(i);  // monotone ramp
    rough[i] = rng.Uniform(0.0, 1000.0);
  }
  EXPECT_LT(SpatialRoughness(smooth), 0.01);
  EXPECT_GT(SpatialRoughness(rough), 0.1);
}

// --- RDF ----------------------------------------------------------------------

core::Trajectory IdealGas(size_t n, double box, uint64_t seed) {
  core::Trajectory traj;
  traj.box = {box, box, box};
  Rng rng(seed);
  core::Snapshot snap;
  for (auto& axis : snap.axes) {
    axis.resize(n);
    for (auto& v : axis) v = rng.Uniform(0.0, box);
  }
  traj.snapshots.push_back(std::move(snap));
  return traj;
}

TEST(RdfTest, IdealGasIsFlatAtOne) {
  const auto traj = IdealGas(8000, 20.0, 5);
  RdfOptions options;
  options.r_max = 6.0;
  options.bins = 30;
  auto rdf = ComputeRdf(traj, options);
  ASSERT_TRUE(rdf.ok());
  // Skip the first couple of bins (tiny shells, noisy statistics).
  for (size_t b = 4; b < rdf->g.size(); ++b) {
    EXPECT_NEAR(rdf->g[b], 1.0, 0.15) << "bin " << b;
  }
}

TEST(RdfTest, FccLatticeFirstPeakAtNearestNeighbor) {
  const double a = 2.0;
  const auto sites = md::FccLattice(6, 6, 6, a);
  core::Trajectory traj;
  traj.box = {6 * a, 6 * a, 6 * a};
  core::Snapshot snap;
  for (auto& axis : snap.axes) axis.resize(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    snap.axes[0][i] = sites[i].x;
    snap.axes[1][i] = sites[i].y;
    snap.axes[2][i] = sites[i].z;
  }
  traj.snapshots.push_back(std::move(snap));

  RdfOptions options;
  options.r_max = 3.0;
  options.bins = 120;
  auto rdf = ComputeRdf(traj, options);
  ASSERT_TRUE(rdf.ok());

  // The first non-zero g(r) bin must sit at the FCC nearest-neighbor
  // distance a/sqrt(2) ~ 1.414.
  size_t first = 0;
  while (first < rdf->g.size() && rdf->g[first] < 0.5) ++first;
  ASSERT_LT(first, rdf->g.size());
  EXPECT_NEAR(rdf->r[first], a / std::sqrt(2.0), 0.05);
}

TEST(RdfTest, DeviationOfIdenticalTrajectoriesIsZero) {
  const auto traj = IdealGas(1000, 10.0, 6);
  auto a = ComputeRdf(traj);
  auto b = ComputeRdf(traj);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(RdfMaxDeviation(*a, *b), 0.0);
}

TEST(RdfTest, RejectsTinyTrajectories) {
  core::Trajectory traj;
  EXPECT_FALSE(ComputeRdf(traj).ok());
}

TEST(RdfTest, RmaxClampedToHalfBox) {
  const auto traj = IdealGas(500, 8.0, 7);
  RdfOptions options;
  options.r_max = 100.0;  // way beyond half the box
  auto rdf = ComputeRdf(traj, options);
  ASSERT_TRUE(rdf.ok());
  EXPECT_LE(rdf->r.back(), 4.0 + 1e-9);
}

}  // namespace
}  // namespace mdz::analysis
