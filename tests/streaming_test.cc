// Bounded-memory streaming pipeline (core/streaming.h, io/streaming.h) and
// in-situ archive append (ArchiveWriter::Reopen): byte-identity against the
// in-memory paths, the O(N * BS) peak-memory contract, and input validation
// (non-finite coordinates are rejected before they can break the bound).

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "archive/reader.h"
#include "archive/writer.h"
#include "core/mdz.h"
#include "core/streaming.h"
#include "core/thread_pool.h"
#include "core/trajectory.h"
#include "io/streaming.h"
#include "io/trajectory_io.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "util/rng.h"

namespace mdz {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// Random-walk positions: temporally correlated like real MD data, so every
// predictor (MT, TI, VQ/VQT) sees the structure it was designed for.
core::Trajectory MakeWalkTrajectory(size_t m, size_t n, uint64_t seed) {
  core::Trajectory traj;
  traj.name = "streaming-test";
  traj.box = {20.0, 20.0, 20.0};
  Rng rng(seed);
  core::Snapshot current;
  for (auto& axis : current.axes) {
    axis.resize(n);
    for (auto& v : axis) v = rng.Uniform(-10.0, 10.0);
  }
  traj.snapshots.push_back(current);
  for (size_t s = 1; s < m; ++s) {
    for (auto& axis : current.axes) {
      for (auto& v : axis) v += rng.Uniform(-0.05, 0.05);
    }
    traj.snapshots.push_back(current);
  }
  return traj;
}

core::Trajectory Slice(const core::Trajectory& traj, size_t lo, size_t hi) {
  core::Trajectory out;
  out.name = traj.name;
  out.box = traj.box;
  out.snapshots.assign(traj.snapshots.begin() + lo,
                       traj.snapshots.begin() + hi);
  return out;
}

// Streams `input_path` into a fresh archive at `archive_path` with the pump,
// returning the pump stats.
core::StreamStats StreamCompressFile(const std::string& input_path,
                                     const std::string& archive_path,
                                     const core::Options& options,
                                     core::ThreadPool* pool) {
  auto reader = io::TrajectoryReader::Open(input_path);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  auto writer = archive::ArchiveWriter::Create(
      archive_path, (*reader)->num_particles(), options, pool);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();

  io::ArchiveSink sink(std::move(writer).value());
  io::TrajectoryReader* source = reader->get();
  sink.set_before_finish([source](archive::ArchiveWriter& w) {
    w.SetName(source->name());
    w.SetBox(source->box());
  });

  core::StreamOptions stream_options;
  stream_options.queue_capacity = options.buffer_size;
  auto stats = core::StreamingCompressor::Pump(source, &sink, stream_options);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return stats.ok() ? *stats : core::StreamStats{};
}

// One-shot reference: in-memory compression written as a v2 archive.
void OneShotCompress(const core::Trajectory& traj, const core::Options& options,
                     const std::string& path) {
  auto compressed = core::CompressTrajectory(traj, options);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  ASSERT_TRUE(archive::WriteV2(*compressed, traj.name, traj.box, path).ok());
}

// --- Streaming compression == one-shot ---------------------------------------

TEST(Streaming, CompressMatchesOneShotAcrossThreadCounts) {
  const core::Trajectory traj = MakeWalkTrajectory(37, 60, 21);
  core::Options options;
  options.method = core::Method::kAdaptive;
  options.enable_interpolation = true;
  options.buffer_size = 8;

  const std::string input = TempPath("stream_in.mdtraj");
  ASSERT_TRUE(io::WriteBinaryTrajectory(traj, input).ok());
  const std::string oneshot = TempPath("stream_oneshot.mdza");
  OneShotCompress(traj, options, oneshot);
  const std::string expected = ReadFileBytes(oneshot);
  ASSERT_FALSE(expected.empty());

  for (const uint32_t threads : {1u, 3u, 8u}) {
    core::ThreadPool pool(threads);
    const std::string out = TempPath("stream_t" + std::to_string(threads) +
                                     ".mdza");
    const core::StreamStats stats =
        StreamCompressFile(input, out, options, &pool);
    EXPECT_EQ(stats.snapshots, traj.num_snapshots());
    EXPECT_EQ(ReadFileBytes(out), expected) << threads << " threads";
    std::remove(out.c_str());
  }
  std::remove(input.c_str());
  std::remove(oneshot.c_str());
}

TEST(Streaming, CancelSealsArchiveAndReportsCancelled) {
  const core::Trajectory traj = MakeWalkTrajectory(30, 40, 23);
  core::Options options;
  options.buffer_size = 8;

  const std::string input = TempPath("cancel_in.mdtraj");
  ASSERT_TRUE(io::WriteBinaryTrajectory(traj, input).ok());
  const std::string out = TempPath("cancel_out.mdza");

  auto reader = io::TrajectoryReader::Open(input);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  core::ThreadPool pool(2);
  auto writer = archive::ArchiveWriter::Create(
      out, (*reader)->num_particles(), options, &pool);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  io::ArchiveSink sink(std::move(writer).value());
  io::TrajectoryReader* source = reader->get();
  sink.set_before_finish([source](archive::ArchiveWriter& w) {
    w.SetName(source->name());
    w.SetBox(source->box());
  });

  // Cancel mid-stream (after the first buffer's worth of appends, so the
  // archive has content): the pump must stop pulling but still run
  // Finish(), leaving a sealed (openable) archive behind.
  std::atomic<bool> cancel{false};
  class CancellingSink : public core::SnapshotSink {
   public:
    CancellingSink(core::SnapshotSink* inner, std::atomic<bool>* cancel,
                   size_t after)
        : inner_(inner), cancel_(cancel), after_(after) {}
    Status Append(const core::Snapshot& snapshot) override {
      if (++appended_ >= after_) cancel_->store(true);
      return inner_->Append(snapshot);
    }
    Status Finish() override { return inner_->Finish(); }
    size_t buffered_snapshots() const override {
      return inner_->buffered_snapshots();
    }

   private:
    core::SnapshotSink* inner_;
    std::atomic<bool>* cancel_;
    size_t after_;
    size_t appended_ = 0;
  };
  CancellingSink cancelling(&sink, &cancel, options.buffer_size);

  core::StreamOptions stream_options;
  stream_options.queue_capacity = options.buffer_size;
  stream_options.cancel = &cancel;
  auto stats =
      core::StreamingCompressor::Pump(source, &cancelling, stream_options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->cancelled);
  EXPECT_LT(stats->snapshots, traj.num_snapshots());

  auto opened = archive::ArchiveReader::Open(out);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();

  std::remove(input.c_str());
  std::remove(out.c_str());
}

// --- Streaming decompression == one-shot -------------------------------------

TEST(Streaming, DecompressMatchesWholeFileWriter) {
  const core::Trajectory traj = MakeWalkTrajectory(26, 40, 22);
  core::Options options;
  options.buffer_size = 6;

  const std::string archive_path = TempPath("stream_dec.mdza");
  OneShotCompress(traj, options, archive_path);

  // Reference: whole-archive decode written by the in-memory writer.
  auto reader = archive::ArchiveReader::Open(archive_path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  core::Trajectory decoded;
  decoded.name = (*reader)->name();
  decoded.box = (*reader)->box();
  auto snapshots = (*reader)->ReadSnapshots(0, traj.num_snapshots());
  ASSERT_TRUE(snapshots.ok());
  decoded.snapshots = std::move(snapshots).value();
  const std::string whole = TempPath("stream_dec_whole.mdtraj");
  ASSERT_TRUE(io::WriteBinaryTrajectory(decoded, whole).ok());

  // Streaming: archive source -> trajectory writer, one chunk at a time.
  auto source = io::ArchiveSnapshotSource::Open(archive_path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  io::TrajectoryWriter::Options writer_options;
  writer_options.name = (*source)->reader().name();
  writer_options.box = (*source)->reader().box();
  const std::string streamed = TempPath("stream_dec_streamed.mdtraj");
  auto writer = io::TrajectoryWriter::Open(
      streamed, (*source)->num_particles(), writer_options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  auto stats = core::StreamingCompressor::Pump(source->get(), writer->get(),
                                               core::StreamOptions{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->snapshots, traj.num_snapshots());

  EXPECT_EQ(ReadFileBytes(streamed), ReadFileBytes(whole));
  std::remove(archive_path.c_str());
  std::remove(whole.c_str());
  std::remove(streamed.c_str());
}

// --- Reopen + append == one-shot of the concatenation ------------------------

// ADP with a small adaptation interval whose schedule straddles the append
// seam: byte-identity proves Reopen restored the interval counter, the level
// grid, MT's snapshot-0 reference, and TI's chain tail exactly.
TEST(Streaming, ReopenAppendMatchesOneShotAdaptive) {
  const core::Trajectory traj = MakeWalkTrajectory(56, 45, 23);
  core::Options options;
  options.method = core::Method::kAdaptive;
  options.enable_interpolation = true;
  options.adaptation_interval = 4;  // re-evaluates across the seam
  options.buffer_size = 8;

  const std::string oneshot = TempPath("append_oneshot.mdza");
  OneShotCompress(traj, options, oneshot);

  // First 32 snapshots (4 buffers) sealed, then 24 appended in situ.
  const std::string grown = TempPath("append_grown.mdza");
  {
    auto writer =
        archive::ArchiveWriter::Create(grown, traj.num_particles(), options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    (*writer)->SetName(traj.name);
    (*writer)->SetBox(traj.box);
    for (size_t s = 0; s < 32; ++s) {
      ASSERT_TRUE((*writer)->Append(traj.snapshots[s]).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  {
    auto writer = archive::ArchiveWriter::Reopen(grown, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    EXPECT_EQ((*writer)->snapshots_written(), 32u);
    for (size_t s = 32; s < traj.num_snapshots(); ++s) {
      ASSERT_TRUE((*writer)->Append(traj.snapshots[s]).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }

  EXPECT_EQ(ReadFileBytes(grown), ReadFileBytes(oneshot));
  std::remove(oneshot.c_str());
  std::remove(grown.c_str());
}

// Same seam identity with the grown candidate set: Reopen must restore the
// exact trial order (adp_methods travels in Options, not the file) and the
// bit-adaptive quantizer split so appended trial encodes match one-shot.
TEST(Streaming, ReopenAppendMatchesOneShotWithNewCandidates) {
  const core::Trajectory traj = MakeWalkTrajectory(56, 45, 29);
  core::Options options;
  options.method = core::Method::kAdaptive;
  options.adp_methods = {core::Method::kVQ, core::Method::kVQT,
                         core::Method::kMT, core::Method::kTI,
                         core::Method::kLorenzo2D, core::Method::kBitAdaptive};
  options.eb_split = 0.5;
  options.error_bound = 1e-3;
  options.error_bound_mode = core::ErrorBoundMode::kAbsolute;
  options.adaptation_interval = 4;
  options.buffer_size = 8;

  const std::string oneshot = TempPath("append_cand_oneshot.mdza");
  OneShotCompress(traj, options, oneshot);

  const std::string grown = TempPath("append_cand_grown.mdza");
  {
    auto writer =
        archive::ArchiveWriter::Create(grown, traj.num_particles(), options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    (*writer)->SetName(traj.name);
    (*writer)->SetBox(traj.box);
    for (size_t s = 0; s < 32; ++s) {
      ASSERT_TRUE((*writer)->Append(traj.snapshots[s]).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  {
    auto writer = archive::ArchiveWriter::Reopen(grown, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (size_t s = 32; s < traj.num_snapshots(); ++s) {
      ASSERT_TRUE((*writer)->Append(traj.snapshots[s]).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }

  EXPECT_EQ(ReadFileBytes(grown), ReadFileBytes(oneshot));

  // The grown archive must still round-trip within the bound.
  auto reader = archive::ArchiveReader::Open(grown);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto got = (*reader)->ReadSnapshots(0, traj.num_snapshots());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const double abs_eb = options.error_bound;
  for (size_t s = 0; s < traj.num_snapshots(); ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      for (size_t i = 0; i < traj.num_particles(); ++i) {
        ASSERT_LE(std::fabs((*got)[s].axes[axis][i] -
                            traj.snapshots[s].axes[axis][i]),
                  abs_eb)
            << "s=" << s << " axis=" << axis << " i=" << i;
      }
    }
  }
  std::remove(oneshot.c_str());
  std::remove(grown.c_str());
}

// MT mode: every appended buffer predicts against the snapshot-0 reference,
// so identity here proves Reopen recovered it bit-exactly from the file.
TEST(Streaming, ReopenAppendMatchesOneShotMT) {
  const core::Trajectory traj = MakeWalkTrajectory(30, 35, 24);
  core::Options options;
  options.method = core::Method::kMT;
  options.buffer_size = 5;

  const std::string oneshot = TempPath("append_mt_oneshot.mdza");
  OneShotCompress(traj, options, oneshot);

  const std::string grown = TempPath("append_mt_grown.mdza");
  {
    auto writer =
        archive::ArchiveWriter::Create(grown, traj.num_particles(), options);
    ASSERT_TRUE(writer.ok());
    (*writer)->SetName(traj.name);
    (*writer)->SetBox(traj.box);
    for (size_t s = 0; s < 15; ++s) {
      ASSERT_TRUE((*writer)->Append(traj.snapshots[s]).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  {
    core::ThreadPool pool(3);
    auto writer = archive::ArchiveWriter::Reopen(grown, options, &pool);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (size_t s = 15; s < traj.num_snapshots(); ++s) {
      ASSERT_TRUE((*writer)->Append(traj.snapshots[s]).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }

  EXPECT_EQ(ReadFileBytes(grown), ReadFileBytes(oneshot));
  std::remove(oneshot.c_str());
  std::remove(grown.c_str());
}

// Appending through the CLI-equivalent streaming path (Reopen + pump) over a
// trajectory file also reproduces the one-shot bytes.
TEST(Streaming, StreamedAppendMatchesOneShot) {
  const core::Trajectory traj = MakeWalkTrajectory(40, 30, 25);
  core::Options options;
  options.method = core::Method::kAdaptive;
  options.buffer_size = 8;

  const std::string oneshot = TempPath("append_pump_oneshot.mdza");
  OneShotCompress(traj, options, oneshot);

  const std::string grown = TempPath("append_pump_grown.mdza");
  {
    auto writer =
        archive::ArchiveWriter::Create(grown, traj.num_particles(), options);
    ASSERT_TRUE(writer.ok());
    (*writer)->SetName(traj.name);
    (*writer)->SetBox(traj.box);
    for (size_t s = 0; s < 24; ++s) {
      ASSERT_TRUE((*writer)->Append(traj.snapshots[s]).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  const std::string tail_path = TempPath("append_pump_tail.mdtraj");
  ASSERT_TRUE(io::WriteBinaryTrajectory(Slice(traj, 24, 40), tail_path).ok());
  {
    auto reader = io::TrajectoryReader::Open(tail_path);
    ASSERT_TRUE(reader.ok());
    auto writer = archive::ArchiveWriter::Reopen(grown, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    io::ArchiveSink sink(std::move(writer).value());  // keeps archive name/box
    core::StreamOptions stream_options;
    stream_options.queue_capacity = options.buffer_size;
    auto stats =
        core::StreamingCompressor::Pump(reader->get(), &sink, stream_options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->snapshots, 16u);
  }

  EXPECT_EQ(ReadFileBytes(grown), ReadFileBytes(oneshot));
  std::remove(oneshot.c_str());
  std::remove(grown.c_str());
  std::remove(tail_path.c_str());
}

// The append request's trace context must survive both thread hops in the
// Reopen + pump path: the reader thread's stream_read spans and the
// reseal's archive spans all land in the request's span tree, parented on
// the spans that were open where the work was handed off.
TEST(Streaming, ReopenAppendPropagatesTraceContext) {
  const core::Trajectory traj = MakeWalkTrajectory(32, 30, 27);
  core::Options options;
  options.buffer_size = 8;

  const std::string grown = TempPath("append_trace_grown.mdza");
  {
    auto writer =
        archive::ArchiveWriter::Create(grown, traj.num_particles(), options);
    ASSERT_TRUE(writer.ok());
    (*writer)->SetName(traj.name);
    (*writer)->SetBox(traj.box);
    for (size_t s = 0; s < 16; ++s) {
      ASSERT_TRUE((*writer)->Append(traj.snapshots[s]).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  const std::string tail_path = TempPath("append_trace_tail.mdtraj");
  ASSERT_TRUE(io::WriteBinaryTrajectory(Slice(traj, 16, 32), tail_path).ok());

  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(true);
  obs::Timeline& timeline = obs::Timeline::Global();
  timeline.Reset();
  timeline.SetRecording(true);
  const obs::TraceContext trace = obs::BeginTrace();
  {
    auto reader = io::TrajectoryReader::Open(tail_path);
    ASSERT_TRUE(reader.ok());
    auto writer = archive::ArchiveWriter::Reopen(grown, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    io::ArchiveSink sink(std::move(writer).value());
    core::StreamOptions stream_options;
    stream_options.queue_capacity = options.buffer_size;
    auto stats =
        core::StreamingCompressor::Pump(reader->get(), &sink, stream_options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->snapshots, 16u);
  }
  timeline.SetRecording(false);
  const std::vector<obs::TimelineEvent> events = timeline.Snapshot();
  timeline.Reset();
  obs::SetEnabled(was_enabled);

  // The Reopen span itself parents directly on the request's root span.
  uint64_t pump_span = 0;
  uint32_t pump_tid = 0;
  bool saw_reopen = false;
  for (const obs::TimelineEvent& e : events) {
    if (e.phase != obs::EventPhase::kBegin) continue;
    if (std::string(e.name) == "archive_reopen") {
      saw_reopen = true;
      EXPECT_EQ(e.trace_id, trace.trace_id);
      EXPECT_EQ(e.parent_span_id, trace.span_id);
    }
    if (std::string(e.name) == "stream_pump") {
      pump_span = e.span_id;
      pump_tid = e.tid;
    }
  }
  EXPECT_TRUE(saw_reopen);
  ASSERT_NE(pump_span, 0u);

  // stream_read runs on the dedicated reader thread, yet stays inside the
  // request's tree: same trace id, parented on the pump span it was
  // captured under.
  size_t cross_thread_reads = 0;
  for (const obs::TimelineEvent& e : events) {
    if (e.phase != obs::EventPhase::kBegin) continue;
    if (std::string(e.name) != "stream_read") continue;
    EXPECT_EQ(e.trace_id, trace.trace_id);
    EXPECT_EQ(e.parent_span_id, pump_span);
    if (e.tid != pump_tid) ++cross_thread_reads;
  }
  EXPECT_GT(cross_thread_reads, 0u);

  // The reseal's flushes (archive_flush under stream_append/stream_finish)
  // are on the request's trace too — the whole append is one connected tree.
  bool saw_flush = false;
  for (const obs::TimelineEvent& e : events) {
    if (e.phase != obs::EventPhase::kBegin) continue;
    if (std::string(e.name) != "archive_flush") continue;
    saw_flush = true;
    EXPECT_EQ(e.trace_id, trace.trace_id);
    EXPECT_NE(e.parent_span_id, 0u);
  }
  EXPECT_TRUE(saw_flush);

  std::remove(grown.c_str());
  std::remove(tail_path.c_str());
}

// Reopen refuses an archive whose stream ends on a partial buffer: those
// snapshots were already lossy-coded, so re-encoding them could not be
// byte-identical.
TEST(Streaming, ReopenRejectsPartialTrailingBuffer) {
  const core::Trajectory traj = MakeWalkTrajectory(13, 20, 26);
  core::Options options;
  options.buffer_size = 5;  // 13 = 5 + 5 + 3: last frame is partial

  const std::string path = TempPath("append_partial.mdza");
  OneShotCompress(traj, options, path);

  auto writer = archive::ArchiveWriter::Reopen(path, options);
  ASSERT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

// --- Peak-memory contract ----------------------------------------------------

// ~50 buffers of snapshots through the pump: however the reader thread and
// the compressor interleave, at most 2*BS snapshots are ever in flight
// (queue <= BS, one in hand, writer window <= BS - 1).
TEST(Streaming, PeakInFlightStaysWithinTwoBuffers) {
  const size_t kBufferSize = 4;
  const core::Trajectory traj = MakeWalkTrajectory(200, 12, 27);
  core::Options options;
  options.method = core::Method::kMT;
  options.buffer_size = kBufferSize;

  const std::string input = TempPath("stream_peak.mdtraj");
  ASSERT_TRUE(io::WriteBinaryTrajectory(traj, input).ok());
  const std::string out = TempPath("stream_peak.mdza");
  core::ThreadPool pool(2);
  const core::StreamStats stats =
      StreamCompressFile(input, out, options, &pool);
  EXPECT_EQ(stats.snapshots, 200u);
  EXPECT_GT(stats.peak_in_flight, 0u);
  EXPECT_LE(stats.peak_in_flight, 2 * kBufferSize);
  std::remove(input.c_str());
  std::remove(out.c_str());
}

// --- Input validation --------------------------------------------------------

TEST(Streaming, CompressorRejectsNonFiniteSnapshot) {
  core::Options options;
  options.buffer_size = 4;
  auto compressor = core::FieldCompressor::Create(8, options);
  ASSERT_TRUE(compressor.ok());
  std::vector<double> snapshot(8, 1.0);
  snapshot[3] = std::nan("");
  const Status s = (*compressor)->Append(snapshot);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("non-finite"), std::string::npos);
}

TEST(Streaming, XyzReaderRejectsNonFiniteNamingLine) {
  const std::string path = TempPath("nonfinite.xyz");
  {
    std::ofstream out(path);
    out << "2\nframe 0 box 1 1 1\n"
        << "Ar 0.5 0.5 0.5\n"
        << "Ar 1.0 inf 3.0\n";  // line 4
  }
  auto reader = io::TrajectoryReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  core::Snapshot snapshot;
  auto more = (*reader)->Next(&snapshot);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(more.status().ToString().find("line 4"), std::string::npos);
  std::remove(path.c_str());
}

// The streaming binary writer produces files byte-identical to the
// whole-trajectory writer (header back-patched by Finish).
TEST(Streaming, BinaryTrajectoryWriterMatchesWholeFileWriter) {
  const core::Trajectory traj = MakeWalkTrajectory(9, 14, 28);
  const std::string whole = TempPath("writer_whole.mdtraj");
  ASSERT_TRUE(io::WriteBinaryTrajectory(traj, whole).ok());

  const std::string streamed = TempPath("writer_streamed.mdtraj");
  io::TrajectoryWriter::Options writer_options;
  writer_options.name = traj.name;
  writer_options.box = traj.box;
  auto writer = io::TrajectoryWriter::Open(streamed, traj.num_particles(),
                                           writer_options);
  ASSERT_TRUE(writer.ok());
  for (const core::Snapshot& s : traj.snapshots) {
    ASSERT_TRUE((*writer)->Append(s).ok());
  }
  ASSERT_TRUE((*writer)->Finish().ok());

  EXPECT_EQ(ReadFileBytes(streamed), ReadFileBytes(whole));
  std::remove(whole.c_str());
  std::remove(streamed.c_str());
}

}  // namespace
}  // namespace mdz
