#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "codec/huffman.h"
#include "util/cpu.h"
#include "util/rng.h"

namespace mdz::codec {
namespace {

std::vector<uint32_t> RoundTrip(const std::vector<uint32_t>& symbols,
                                uint32_t alphabet) {
  const std::vector<uint8_t> encoded = HuffmanEncode(symbols, alphabet);
  std::vector<uint32_t> decoded;
  const Status s = HuffmanDecode(encoded, &decoded);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return decoded;
}

TEST(HuffmanTest, EmptyInput) {
  EXPECT_EQ(RoundTrip({}, 16), std::vector<uint32_t>{});
}

TEST(HuffmanTest, SingleSymbolRepeated) {
  std::vector<uint32_t> symbols(1000, 5);
  EXPECT_EQ(RoundTrip(symbols, 16), symbols);
}

TEST(HuffmanTest, SingleOccurrence) {
  std::vector<uint32_t> symbols = {3};
  EXPECT_EQ(RoundTrip(symbols, 8), symbols);
}

TEST(HuffmanTest, TwoSymbols) {
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 500; ++i) symbols.push_back(i % 2);
  EXPECT_EQ(RoundTrip(symbols, 2), symbols);
}

TEST(HuffmanTest, UniformAlphabet) {
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 2560; ++i) symbols.push_back(i % 256);
  EXPECT_EQ(RoundTrip(symbols, 256), symbols);
}

TEST(HuffmanTest, SkewedDistributionCompresses) {
  // 95% zeros: entropy ~0.3 bits; encoded size must be far below 4 bytes per
  // symbol.
  Rng rng(1);
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 50000; ++i) {
    symbols.push_back(rng.NextDouble() < 0.95 ? 0
                                              : 1 + rng.UniformInt(100));
  }
  const std::vector<uint8_t> encoded = HuffmanEncode(symbols, 128);
  EXPECT_LT(encoded.size(), symbols.size());  // < 8 bits/symbol
  EXPECT_EQ(RoundTrip(symbols, 128), symbols);
}

TEST(HuffmanTest, NearEntropyOnSkewedData) {
  Rng rng(2);
  std::vector<uint32_t> symbols;
  std::vector<uint64_t> freqs(16, 0);
  for (int i = 0; i < 100000; ++i) {
    // Geometric-ish distribution.
    uint32_t s = 0;
    while (s < 15 && rng.NextDouble() < 0.5) ++s;
    symbols.push_back(s);
    ++freqs[s];
  }
  const double entropy = ShannonEntropyBits(freqs);
  const std::vector<uint8_t> encoded = HuffmanEncode(symbols, 16);
  const double bits_per_symbol =
      8.0 * static_cast<double>(encoded.size()) / symbols.size();
  // Huffman is within 1 bit of entropy; header adds a bit of overhead.
  EXPECT_LT(bits_per_symbol, entropy + 1.2);
  EXPECT_EQ(RoundTrip(symbols, 16), symbols);
}

TEST(HuffmanTest, LargeAlphabetSparseUse) {
  // Alphabet of 65536 but only a handful of distinct symbols: the RLE'd
  // length table must stay small.
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 10000; ++i) symbols.push_back((i % 5) * 10000);
  const std::vector<uint8_t> encoded = HuffmanEncode(symbols, 65536);
  EXPECT_LT(encoded.size(), 5000u);
  EXPECT_EQ(RoundTrip(symbols, 65536), symbols);
}

TEST(HuffmanTest, RandomRoundTripVariousAlphabets) {
  Rng rng(3);
  for (uint32_t alphabet : {2u, 3u, 17u, 256u, 1024u, 4096u}) {
    std::vector<uint32_t> symbols;
    const int count = 1000 + static_cast<int>(rng.UniformInt(5000));
    for (int i = 0; i < count; ++i) {
      symbols.push_back(rng.UniformInt(alphabet));
    }
    EXPECT_EQ(RoundTrip(symbols, alphabet), symbols) << "alphabet " << alphabet;
  }
}

TEST(HuffmanTest, DecodeRejectsTruncatedHeader) {
  std::vector<uint32_t> symbols(100, 1);
  std::vector<uint8_t> encoded = HuffmanEncode(symbols, 4);
  std::vector<uint32_t> decoded;
  for (size_t cut : {size_t{0}, size_t{1}, encoded.size() / 2}) {
    std::vector<uint8_t> truncated(encoded.begin(), encoded.begin() + cut);
    const Status s = HuffmanDecode(truncated, &decoded);
    // Either explicit corruption or detected bitstream overrun.
    EXPECT_FALSE(s.ok()) << "cut=" << cut;
  }
}

TEST(HuffmanTest, DecodeRejectsGarbage) {
  std::vector<uint8_t> garbage(64, 0xFF);
  std::vector<uint32_t> decoded;
  EXPECT_FALSE(HuffmanDecode(garbage, &decoded).ok());
}

TEST(BuildCodeLengthsTest, KraftEquality) {
  Rng rng(4);
  std::vector<uint64_t> freqs(257, 0);
  for (int i = 0; i < 257; ++i) freqs[i] = rng.UniformInt(1000) + 1;
  const std::vector<uint8_t> lengths = BuildCodeLengths(freqs);
  double kraft = 0.0;
  for (uint8_t l : lengths) {
    ASSERT_GT(l, 0);
    ASSERT_LE(l, kMaxCodeLength);
    kraft += std::pow(2.0, -static_cast<double>(l));
  }
  EXPECT_NEAR(kraft, 1.0, 1e-9);
}

TEST(BuildCodeLengthsTest, ZeroFrequencySymbolsGetZeroLength) {
  std::vector<uint64_t> freqs = {10, 0, 5, 0, 0, 1};
  const std::vector<uint8_t> lengths = BuildCodeLengths(freqs);
  EXPECT_GT(lengths[0], 0);
  EXPECT_EQ(lengths[1], 0);
  EXPECT_GT(lengths[2], 0);
  EXPECT_EQ(lengths[3], 0);
  EXPECT_EQ(lengths[4], 0);
  EXPECT_GT(lengths[5], 0);
}

TEST(BuildCodeLengthsTest, ExtremeSkewRespectsLengthLimit) {
  // Fibonacci-like frequencies force maximal tree depth; the builder must
  // damp them below kMaxCodeLength.
  std::vector<uint64_t> freqs;
  uint64_t a = 1, b = 1;
  for (int i = 0; i < 60; ++i) {
    freqs.push_back(a);
    const uint64_t next = a + b;
    a = b;
    b = next;
  }
  const std::vector<uint8_t> lengths = BuildCodeLengths(freqs);
  for (uint8_t l : lengths) {
    EXPECT_LE(l, kMaxCodeLength);
    EXPECT_GT(l, 0);
  }
}

TEST(BuildCodeLengthsTest, MoreFrequentSymbolsGetShorterCodes) {
  std::vector<uint64_t> freqs = {1000, 100, 10, 1};
  const std::vector<uint8_t> lengths = BuildCodeLengths(freqs);
  EXPECT_LE(lengths[0], lengths[1]);
  EXPECT_LE(lengths[1], lengths[2]);
  EXPECT_LE(lengths[2], lengths[3]);
}

TEST(ShannonEntropyTest, KnownValues) {
  std::vector<uint64_t> uniform = {1, 1, 1, 1};
  EXPECT_NEAR(ShannonEntropyBits(uniform), 2.0, 1e-12);
  std::vector<uint64_t> single = {100};
  EXPECT_NEAR(ShannonEntropyBits(single), 0.0, 1e-12);
  std::vector<uint64_t> empty;
  EXPECT_EQ(ShannonEntropyBits(empty), 0.0);
}

// Parameterized sweep: the round trip must hold for every (size, skew) combo.
class HuffmanSweepTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(HuffmanSweepTest, RoundTrip) {
  const auto [size, skew] = GetParam();
  Rng rng(42 + size);
  std::vector<uint32_t> symbols;
  symbols.reserve(size);
  for (int i = 0; i < size; ++i) {
    uint32_t s = 0;
    while (s < 63 && rng.NextDouble() < skew) ++s;
    symbols.push_back(s);
  }
  EXPECT_EQ(RoundTrip(symbols, 64), symbols);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSkews, HuffmanSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 10, 1000, 100000),
                       ::testing::Values(0.1, 0.5, 0.9)));

// The multi-symbol (pair-table) decode path is enabled on the SIMD variants;
// it must consume exactly the same bits as the scalar one-symbol loop on
// every stream shape, including single-symbol streams (0-bit codes), deep
// trees and streams whose tail falls inside the peek window.
TEST(HuffmanTest, MultiSymbolDecodeMatchesScalarVariant) {
  const util::SimdVariant previous = util::ActiveSimdVariant();
  std::vector<std::vector<uint32_t>> streams;
  streams.push_back({});
  streams.push_back({7});
  streams.push_back(std::vector<uint32_t>(999, 5));  // single-symbol: 0 bits
  {
    Rng rng(77);
    std::vector<uint32_t> skewed;  // short codes: pairs fit the peek window
    for (int i = 0; i < 50000; ++i) {
      uint32_t s = 0;
      while (s < 63 && rng.NextDouble() < 0.6) ++s;
      skewed.push_back(s);
    }
    streams.push_back(std::move(skewed));
    std::vector<uint32_t> wide;  // near-uniform wide alphabet: long codes
    for (int i = 0; i < 20000; ++i) {
      wide.push_back(static_cast<uint32_t>(rng.UniformInt(5000)));
    }
    streams.push_back(std::move(wide));
    std::vector<uint32_t> odd;  // odd count: the pair loop ends on a single
    for (int i = 0; i < 12345; ++i) {
      odd.push_back(static_cast<uint32_t>(rng.UniformInt(17)));
    }
    streams.push_back(std::move(odd));
  }
  for (const auto& symbols : streams) {
    const uint32_t alphabet =
        symbols.empty()
            ? 16
            : *std::max_element(symbols.begin(), symbols.end()) + 1;
    const std::vector<uint8_t> encoded = HuffmanEncode(symbols, alphabet);

    util::SetSimdVariant(util::SimdVariant::kScalar);
    std::vector<uint32_t> scalar_out;
    ASSERT_TRUE(HuffmanDecode(encoded, &scalar_out).ok());
    EXPECT_EQ(scalar_out, symbols);

    for (const util::SimdVariant variant :
         {util::SimdVariant::kAvx2, util::SimdVariant::kNeon}) {
      if (!util::SimdVariantSupported(variant)) continue;
      util::SetSimdVariant(variant);
      std::vector<uint32_t> simd_out;
      ASSERT_TRUE(HuffmanDecode(encoded, &simd_out).ok());
      EXPECT_EQ(simd_out, symbols)
          << "variant " << util::SimdVariantName(variant) << " count "
          << symbols.size();
    }
  }
  util::SetSimdVariant(previous);
}

}  // namespace
}  // namespace mdz::codec
