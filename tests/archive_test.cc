// Archive v2 (src/archive/): format round trips, random-access reads against
// full decodes, cache/telemetry accounting, concurrency, and integrity
// isolation (a corrupt frame only fails the reads that touch it).

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "archive/format.h"
#include "archive/reader.h"
#include "archive/writer.h"
#include "core/mdz.h"
#include "core/thread_pool.h"
#include "core/trajectory.h"
#include "io/archive.h"
#include "util/rng.h"

namespace mdz::archive {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Random-walk positions: temporally correlated, so MT/TI behave like they do
// on real MD data while VQ still sees spatial structure.
core::Trajectory MakeWalkTrajectory(size_t m, size_t n, uint64_t seed) {
  core::Trajectory traj;
  traj.name = "archive-test";
  traj.box = {20.0, 20.0, 20.0};
  Rng rng(seed);
  core::Snapshot current;
  for (auto& axis : current.axes) {
    axis.resize(n);
    for (auto& v : axis) v = rng.Uniform(-10.0, 10.0);
  }
  traj.snapshots.push_back(current);
  for (size_t s = 1; s < m; ++s) {
    for (auto& axis : current.axes) {
      for (auto& v : axis) v += rng.Uniform(-0.05, 0.05);
    }
    traj.snapshots.push_back(current);
  }
  return traj;
}

core::CompressedTrajectory Compress(const core::Trajectory& traj,
                                    core::Method method,
                                    uint32_t buffer_size = 10) {
  core::Options options;
  options.method = method;
  options.buffer_size = buffer_size;
  options.enable_interpolation = (method == core::Method::kTI ||
                                  method == core::Method::kAdaptive);
  auto compressed = core::CompressTrajectory(traj, options);
  EXPECT_TRUE(compressed.ok()) << compressed.status().ToString();
  return std::move(compressed).value();
}

core::Trajectory FullDecode(const core::CompressedTrajectory& data) {
  auto decoded = core::DecompressTrajectory(data);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return std::move(decoded).value();
}

void ExpectSnapshotsEqualSlice(const std::vector<core::Snapshot>& got,
                               const core::Trajectory& full, size_t first) {
  for (size_t s = 0; s < got.size(); ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      ASSERT_EQ(got[s].axes[axis], full.snapshots[first + s].axes[axis])
          << "snapshot " << first + s << " axis " << axis;
    }
  }
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void FlipByteAt(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, offset, SEEK_SET);
  const int byte = std::fgetc(f);
  std::fseek(f, offset, SEEK_SET);
  std::fputc(byte ^ 0x40, f);
  std::fclose(f);
}

// --- Round trips, every predictor -------------------------------------------

TEST(ArchiveV2, RangeReadsMatchFullDecodeForEveryMethod) {
  const core::Trajectory traj = MakeWalkTrajectory(37, 60, 11);
  const core::Method methods[] = {
      core::Method::kVQ,       core::Method::kVQT,
      core::Method::kMT,       core::Method::kTI,
      core::Method::kLorenzo2D, core::Method::kBitAdaptive,
      core::Method::kAdaptive};
  for (const core::Method method : methods) {
    const auto data = Compress(traj, method);
    const core::Trajectory full = FullDecode(data);
    const std::string path = TempPath("range_read.mdza");
    ASSERT_TRUE(WriteV2(data, traj.name, traj.box, path).ok());

    auto reader = ArchiveReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ((*reader)->num_snapshots(), 37u);
    EXPECT_EQ((*reader)->num_particles(), 60u);
    EXPECT_EQ((*reader)->name(), "archive-test");

    // Full range, a mid-stream buffer, a buffer-straddling window, the tail.
    const std::pair<size_t, size_t> ranges[] = {
        {0, 37}, {10, 10}, {8, 15}, {30, 7}, {36, 1}};
    for (const auto& [first, count] : ranges) {
      auto got = (*reader)->ReadSnapshots(first, count);
      ASSERT_TRUE(got.ok()) << "method " << core::MethodName(method) << ": "
                            << got.status().ToString();
      ASSERT_EQ(got->size(), count);
      ExpectSnapshotsEqualSlice(*got, full, first);
    }
    std::remove(path.c_str());
  }
}

TEST(ArchiveV2, ParticleRangeReadsMatchFullDecode) {
  const core::Trajectory traj = MakeWalkTrajectory(25, 80, 12);
  const auto data = Compress(traj, core::Method::kAdaptive);
  const core::Trajectory full = FullDecode(data);
  const std::string path = TempPath("particle_read.mdza");
  ASSERT_TRUE(WriteV2(data, traj.name, traj.box, path).ok());

  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto got = (*reader)->ReadParticles(12, 9, 30, 17);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), 9u);
  for (size_t s = 0; s < 9; ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      const auto& whole = full.snapshots[12 + s].axes[axis];
      const std::vector<double> expect(whole.begin() + 30, whole.begin() + 47);
      ASSERT_EQ((*got)[s].axes[axis], expect);
    }
  }

  EXPECT_EQ((*reader)
                ->ReadSnapshots(20, 10)
                .status()
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ((*reader)->ReadParticles(0, 1, 70, 20).status().code(),
            StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

// --- Touch accounting --------------------------------------------------------

TEST(ArchiveV2, DecodesOnlyCoveringFramesAndCountsCacheHits) {
  const core::Trajectory traj = MakeWalkTrajectory(50, 40, 13);
  const auto data = Compress(traj, core::Method::kMT, /*buffer_size=*/10);
  const std::string path = TempPath("touch.mdza");
  ASSERT_TRUE(WriteV2(data, traj.name, traj.box, path).ok());

  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ((*reader)->footer().frames.size(), 15u);  // 5 buffers x 3 axes

  // One mid-stream buffer: exactly one frame per axis, plus one reference
  // decode per axis (MT frames past position 0 seed from the reference).
  ASSERT_TRUE((*reader)->ReadSnapshots(20, 10).ok());
  ReaderStats stats = (*reader)->stats();
  EXPECT_EQ(stats.frames_decoded, 3u);
  EXPECT_EQ(stats.cache_misses, 3u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.reference_decodes, 3u);

  // The same range again: served entirely from the cache.
  ASSERT_TRUE((*reader)->ReadSnapshots(20, 10).ok());
  stats = (*reader)->stats();
  EXPECT_EQ(stats.frames_decoded, 3u);
  EXPECT_EQ(stats.cache_hits, 3u);

  // References load once per axis, ever.
  ASSERT_TRUE((*reader)->ReadSnapshots(30, 10).ok());
  stats = (*reader)->stats();
  EXPECT_EQ(stats.frames_decoded, 6u);
  EXPECT_EQ(stats.reference_decodes, 3u);
  std::remove(path.c_str());
}

TEST(ArchiveV2, TinyCacheStillDecodesTiChains) {
  const core::Trajectory traj = MakeWalkTrajectory(40, 30, 14);
  const auto data = Compress(traj, core::Method::kTI, /*buffer_size=*/8);
  const core::Trajectory full = FullDecode(data);
  const std::string path = TempPath("tiny_cache.mdza");
  ASSERT_TRUE(WriteV2(data, traj.name, traj.box, path).ok());

  ReaderOptions options;
  options.cache_frames = 1;  // clamped to 2; forces constant eviction
  auto reader = ArchiveReader::Open(path, options);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  // Deep into the chain: the reader must replay predecessors it cannot hold.
  auto got = (*reader)->ReadSnapshots(33, 7);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSnapshotsEqualSlice(*got, full, 33);
  std::remove(path.c_str());
}

TEST(ArchiveV2, ZeroCacheFramesMeansDecodeThrough) {
  // Regression: cache_frames = 0 used to be clamped into a live (tiny) cache;
  // it must mean "no cache at all" — every request decodes through, TI chains
  // included, with no eviction churn and no division by the capacity.
  const core::Trajectory traj = MakeWalkTrajectory(40, 30, 19);
  const auto data = Compress(traj, core::Method::kTI, /*buffer_size=*/8);
  const core::Trajectory full = FullDecode(data);
  const std::string path = TempPath("zero_cache.mdza");
  ASSERT_TRUE(WriteV2(data, traj.name, traj.box, path).ok());

  ReaderOptions options;
  options.cache_frames = 0;  // decode-through, not "clamp to smallest cache"
  auto reader = ArchiveReader::Open(path, options);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  // Deep into a TI chain and across buffer boundaries.
  auto got = (*reader)->ReadSnapshots(33, 7);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSnapshotsEqualSlice(*got, full, 33);

  // Re-reading the same range must work (nothing was retained) and never
  // count a cache hit.
  got = (*reader)->ReadSnapshots(33, 7);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSnapshotsEqualSlice(*got, full, 33);
  const ReaderStats stats = (*reader)->stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.frames_decoded, stats.cache_misses);
  std::remove(path.c_str());
}

// --- Concurrency -------------------------------------------------------------

TEST(ArchiveV2, ConcurrentRangeReadsMatchSequentialDecode) {
  const core::Trajectory traj = MakeWalkTrajectory(60, 50, 15);
  const auto data = Compress(traj, core::Method::kAdaptive, /*buffer_size=*/6);
  const core::Trajectory full = FullDecode(data);
  const std::string path = TempPath("concurrent.mdza");
  ASSERT_TRUE(WriteV2(data, traj.name, traj.box, path).ok());

  ReaderOptions options;
  options.cache_frames = 4;  // small enough that readers contend and evict
  auto reader = ArchiveReader::Open(path, options);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  constexpr size_t kQueries = 48;
  std::vector<Status> statuses(kQueries, Status::OK());
  std::vector<std::vector<core::Snapshot>> results(kQueries);
  core::ThreadPool pool(8);
  pool.ParallelFor(0, kQueries, [&](size_t q) {
    const size_t first = (q * 7) % 55;
    const size_t count = 1 + (q % 6);
    auto got = (*reader)->ReadSnapshots(first, count);
    if (!got.ok()) {
      statuses[q] = got.status();
      return;
    }
    results[q] = std::move(got).value();
  });
  for (size_t q = 0; q < kQueries; ++q) {
    ASSERT_TRUE(statuses[q].ok()) << "query " << q << ": "
                                  << statuses[q].ToString();
    ExpectSnapshotsEqualSlice(results[q], full, (q * 7) % 55);
  }
  // Every request either hit the cache or decoded a frame — no request can
  // vanish, whatever the interleaving.
  const ReaderStats stats = (*reader)->stats();
  EXPECT_EQ(stats.frames_decoded, stats.cache_misses);
  EXPECT_GT(stats.cache_hits + stats.cache_misses, 0u);
  std::remove(path.c_str());
}

// --- Streaming writer --------------------------------------------------------

TEST(ArchiveV2, StreamingWriterProducesIdenticalFileToWriteV2) {
  const core::Trajectory traj = MakeWalkTrajectory(32, 45, 16);
  core::Options options;
  options.method = core::Method::kAdaptive;
  options.enable_interpolation = true;
  options.buffer_size = 10;

  const std::string streamed = TempPath("streamed.mdza");
  auto writer = ArchiveWriter::Create(streamed, traj.num_particles(), options,
                                      nullptr);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  (*writer)->SetName(traj.name);
  (*writer)->SetBox(traj.box);
  for (const core::Snapshot& s : traj.snapshots) {
    ASSERT_TRUE((*writer)->Append(s).ok());
  }
  ASSERT_TRUE((*writer)->Finish().ok());

  auto compressed = core::CompressTrajectory(traj, options);
  ASSERT_TRUE(compressed.ok());
  const std::string oneshot = TempPath("oneshot.mdza");
  ASSERT_TRUE(WriteV2(*compressed, traj.name, traj.box, oneshot).ok());

  EXPECT_EQ(ReadFileBytes(streamed), ReadFileBytes(oneshot));
  std::remove(streamed.c_str());
  std::remove(oneshot.c_str());
}

TEST(ArchiveV2, StreamingWriterWithPoolMatchesSerial) {
  const core::Trajectory traj = MakeWalkTrajectory(24, 35, 17);
  core::Options options;
  options.buffer_size = 8;

  const std::string serial = TempPath("writer_serial.mdza");
  {
    auto writer =
        ArchiveWriter::Create(serial, traj.num_particles(), options, nullptr);
    ASSERT_TRUE(writer.ok());
    for (const auto& s : traj.snapshots) ASSERT_TRUE((*writer)->Append(s).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  const std::string pooled = TempPath("writer_pooled.mdza");
  {
    core::ThreadPool pool(4);
    auto writer =
        ArchiveWriter::Create(pooled, traj.num_particles(), options, &pool);
    ASSERT_TRUE(writer.ok());
    for (const auto& s : traj.snapshots) ASSERT_TRUE((*writer)->Append(s).ok());
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  EXPECT_EQ(ReadFileBytes(serial), ReadFileBytes(pooled));
  std::remove(serial.c_str());
  std::remove(pooled.c_str());
}

// --- Container migration -----------------------------------------------------

TEST(ArchiveV2, ReadArchiveReturnsSameDataForBothContainerVersions) {
  const core::Trajectory traj = MakeWalkTrajectory(20, 30, 18);
  const auto data = Compress(traj, core::Method::kAdaptive);

  io::Archive archive;
  archive.data = data;
  archive.name = traj.name;
  archive.box = traj.box;
  const std::string v1 = TempPath("container_v1.mdza");
  const std::string v2 = TempPath("container_v2.mdza");
  ASSERT_TRUE(io::WriteArchive(archive, v1).ok());
  ASSERT_TRUE(io::WriteArchiveV2(archive, v2).ok());

  auto from_v1 = io::ReadArchive(v1);
  auto from_v2 = io::ReadArchive(v2);
  ASSERT_TRUE(from_v1.ok()) << from_v1.status().ToString();
  ASSERT_TRUE(from_v2.ok()) << from_v2.status().ToString();
  EXPECT_EQ(from_v1->name, from_v2->name);
  EXPECT_EQ(from_v1->box, from_v2->box);
  for (int axis = 0; axis < 3; ++axis) {
    // The v2 reassembly must reproduce the v1 stream bytes exactly — this is
    // what makes repacking lossless without re-encoding.
    ASSERT_EQ(from_v1->data.axes[axis], from_v2->data.axes[axis]);
    ASSERT_EQ(from_v1->data.axes[axis], data.axes[axis]);
  }
  std::remove(v1.c_str());
  std::remove(v2.c_str());
}

TEST(ArchiveV2, OpeningV1DirectlySuggestsRepack) {
  const core::Trajectory traj = MakeWalkTrajectory(8, 20, 19);
  io::Archive archive;
  archive.data = Compress(traj, core::Method::kVQ);
  const std::string path = TempPath("v1_direct.mdza");
  ASSERT_TRUE(io::WriteArchive(archive, path).ok());

  uint8_t version = 0;
  ASSERT_TRUE(SniffArchiveVersion(path, &version));
  EXPECT_EQ(version, kVersionV1);
  auto reader = ArchiveReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// --- Integrity isolation -----------------------------------------------------

TEST(ArchiveV2, CorruptUnusedFrameDoesNotFailUnrelatedReads) {
  const core::Trajectory traj = MakeWalkTrajectory(50, 40, 20);
  const auto data = Compress(traj, core::Method::kMT, /*buffer_size=*/10);
  const core::Trajectory full = FullDecode(data);
  const std::string path = TempPath("isolated.mdza");
  ASSERT_TRUE(WriteV2(data, traj.name, traj.box, path).ok());

  // Corrupt the payload of the last axis-0 frame (covers snapshots 40:50).
  size_t corrupt_id = 0;
  {
    auto reader = ArchiveReader::Open(path);
    ASSERT_TRUE(reader.ok());
    const Footer& footer = (*reader)->footer();
    for (size_t i = 0; i < footer.frames.size(); ++i) {
      if (footer.frames[i].axis == 0 &&
          footer.frames[i].first_snapshot == 40) {
        corrupt_id = i;
      }
    }
    FlipByteAt(path,
               static_cast<long>(footer.frames[corrupt_id].offset) + 10);
  }

  auto reader = ArchiveReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();  // footer is intact
  // Reads that never touch the damaged frame still succeed and verify.
  auto got = (*reader)->ReadSnapshots(0, 40);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSnapshotsEqualSlice(*got, full, 0);

  // A read that needs the damaged frame reports Corruption naming it.
  auto bad = (*reader)->ReadSnapshots(45, 5);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
  EXPECT_NE(bad.status().message().find(
                "frame " + std::to_string(corrupt_id)),
            std::string::npos)
      << bad.status().ToString();

  // Reassembly CRC-checks every frame, so it must refuse too.
  EXPECT_EQ((*reader)->Reassemble().status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(ArchiveV2, FooterCorruptionFailsOpen) {
  const core::Trajectory traj = MakeWalkTrajectory(16, 25, 21);
  const auto data = Compress(traj, core::Method::kVQT);
  const std::string path = TempPath("bad_footer.mdza");
  ASSERT_TRUE(WriteV2(data, traj.name, traj.box, path).ok());

  const auto bytes = ReadFileBytes(path);
  // A byte inside the footer region (just before the 20-byte tail).
  FlipByteAt(path, static_cast<long>(bytes.size()) - 25);
  auto reader = ArchiveReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(ArchiveV2, TruncatedTailFailsOpen) {
  const core::Trajectory traj = MakeWalkTrajectory(12, 20, 22);
  const auto data = Compress(traj, core::Method::kVQ);
  const std::string path = TempPath("truncated.mdza");
  ASSERT_TRUE(WriteV2(data, traj.name, traj.box, path).ok());
  const auto bytes = ReadFileBytes(path);
  ASSERT_EQ(truncate(path.c_str(), static_cast<off_t>(bytes.size() - 7)), 0);
  auto reader = ArchiveReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mdz::archive
