#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "codec/lz.h"
#include "util/rng.h"

namespace mdz::codec {
namespace {

std::vector<uint8_t> RoundTrip(const std::vector<uint8_t>& input,
                               const LzOptions& options) {
  const std::vector<uint8_t> encoded = LzCompress(input, options);
  std::vector<uint8_t> decoded;
  const Status s = LzDecompress(encoded, &decoded);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return decoded;
}

TEST(LzTest, EmptyInput) {
  EXPECT_EQ(RoundTrip({}, ZstdLikeOptions()), std::vector<uint8_t>{});
}

TEST(LzTest, SingleByte) {
  std::vector<uint8_t> input = {42};
  EXPECT_EQ(RoundTrip(input, ZstdLikeOptions()), input);
}

TEST(LzTest, ShortInputBelowMinMatch) {
  std::vector<uint8_t> input = {1, 2, 3};
  EXPECT_EQ(RoundTrip(input, ZstdLikeOptions()), input);
}

TEST(LzTest, HighlyRepetitiveCompressesWell) {
  std::vector<uint8_t> input(100000, 'A');
  const std::vector<uint8_t> encoded = LzCompress(input, ZstdLikeOptions());
  EXPECT_LT(encoded.size(), 1000u);
  EXPECT_EQ(RoundTrip(input, ZstdLikeOptions()), input);
}

TEST(LzTest, OverlappingMatchReconstruction) {
  // "abcabcabc..." forces matches with offset < length.
  std::vector<uint8_t> input;
  for (int i = 0; i < 10000; ++i) input.push_back("abc"[i % 3]);
  EXPECT_EQ(RoundTrip(input, ZstdLikeOptions()), input);
}

TEST(LzTest, IncompressibleRandomSurvives) {
  Rng rng(11);
  std::vector<uint8_t> input(65536);
  for (auto& b : input) b = static_cast<uint8_t>(rng.NextU64());
  const std::vector<uint8_t> encoded = LzCompress(input, ZstdLikeOptions());
  // Random bytes must not blow up (small framing overhead only).
  EXPECT_LT(encoded.size(), input.size() + 1024);
  EXPECT_EQ(RoundTrip(input, ZstdLikeOptions()), input);
}

TEST(LzTest, TextLikeData) {
  std::string text;
  for (int i = 0; i < 500; ++i) {
    text += "the quick brown fox jumps over the lazy dog ";
  }
  std::vector<uint8_t> input(text.begin(), text.end());
  const std::vector<uint8_t> encoded = LzCompress(input, ZstdLikeOptions());
  EXPECT_LT(encoded.size(), input.size() / 10);
  EXPECT_EQ(RoundTrip(input, ZstdLikeOptions()), input);
}

TEST(LzTest, AllThreePresetsRoundTrip) {
  Rng rng(12);
  std::vector<uint8_t> input;
  for (int i = 0; i < 30000; ++i) {
    // Mixture of structure and noise.
    input.push_back(static_cast<uint8_t>(
        (i % 64 < 48) ? (i % 251) : rng.UniformInt(256)));
  }
  for (const LzOptions& options :
       {ZstdLikeOptions(), DeflateLikeOptions(), BrotliLikeOptions()}) {
    EXPECT_EQ(RoundTrip(input, options), input);
  }
}

TEST(LzTest, NoEntropyStageRoundTrip) {
  LzOptions options = ZstdLikeOptions();
  options.entropy = false;
  std::vector<uint8_t> input;
  for (int i = 0; i < 5000; ++i) input.push_back(static_cast<uint8_t>(i % 7));
  EXPECT_EQ(RoundTrip(input, options), input);
}

TEST(LzTest, DecompressRejectsGarbage) {
  std::vector<uint8_t> garbage = {0x10, 0xFF, 0xFF, 0xFF, 0xAB, 0xCD};
  std::vector<uint8_t> out;
  EXPECT_FALSE(LzDecompress(garbage, &out).ok());
}

TEST(LzTest, DecompressRejectsTruncation) {
  std::vector<uint8_t> input(10000, 'x');
  for (int i = 0; i < 10000; ++i) input[i] = static_cast<uint8_t>(i * 7 % 256);
  std::vector<uint8_t> encoded = LzCompress(input, ZstdLikeOptions());
  encoded.resize(encoded.size() / 2);
  std::vector<uint8_t> out;
  EXPECT_FALSE(LzDecompress(encoded, &out).ok());
}

TEST(LzTest, DecompressRejectsBadFlag) {
  std::vector<uint8_t> bytes = {0x00, 0x07};  // size 0, flag 7
  std::vector<uint8_t> out;
  EXPECT_EQ(LzDecompress(bytes, &out).code(), StatusCode::kCorruption);
}

// Parameterized sweep over sizes and data shapes.
class LzSweepTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LzSweepTest, RoundTrip) {
  const auto [size, shape] = GetParam();
  Rng rng(100 + size + shape);
  std::vector<uint8_t> input;
  input.reserve(size);
  for (int i = 0; i < size; ++i) {
    switch (shape) {
      case 0:  // constant
        input.push_back(7);
        break;
      case 1:  // short period
        input.push_back(static_cast<uint8_t>(i % 5));
        break;
      case 2:  // long period
        input.push_back(static_cast<uint8_t>(i % 1000));
        break;
      case 3:  // random
        input.push_back(static_cast<uint8_t>(rng.NextU64()));
        break;
    }
  }
  EXPECT_EQ(RoundTrip(input, ZstdLikeOptions()), input);
  EXPECT_EQ(RoundTrip(input, DeflateLikeOptions()), input);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndShapes, LzSweepTest,
    ::testing::Combine(::testing::Values(1, 5, 100, 4096, 200000),
                       ::testing::Values(0, 1, 2, 3)));

}  // namespace
}  // namespace mdz::codec
