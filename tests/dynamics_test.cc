#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/dynamics.h"
#include "core/mdz.h"
#include "datagen/generators.h"
#include "md/harmonic_crystal.h"
#include "util/rng.h"

namespace mdz {
namespace {

// --- HarmonicCrystal (MD substrate) -------------------------------------------

TEST(HarmonicCrystalTest, CreateRejectsBadOptions) {
  md::HarmonicCrystalOptions options;
  options.cells = 1;
  EXPECT_FALSE(md::HarmonicCrystal::Create(options).ok());
  options = md::HarmonicCrystalOptions();
  options.spring_k = -1.0;
  EXPECT_FALSE(md::HarmonicCrystal::Create(options).ok());
}

TEST(HarmonicCrystalTest, AtomAndBondTopology) {
  md::HarmonicCrystalOptions options;
  options.cells = 4;
  auto crystal = md::HarmonicCrystal::Create(options);
  ASSERT_TRUE(crystal.ok());
  EXPECT_EQ(crystal->num_atoms(), 4u * 4u * 4u * 4u);
}

TEST(HarmonicCrystalTest, TemperatureEquilibrates) {
  md::HarmonicCrystalOptions options;
  options.cells = 4;
  options.temperature = 0.05;
  auto crystal = md::HarmonicCrystal::Create(options);
  ASSERT_TRUE(crystal.ok());
  crystal->Run(400);
  // Langevin thermostat: kinetic temperature near target (20% tolerance for
  // finite-size fluctuations).
  EXPECT_NEAR(crystal->instantaneous_temperature(), 0.05, 0.012);
}

TEST(HarmonicCrystalTest, AtomsStayBoundToSites) {
  md::HarmonicCrystalOptions options;
  options.cells = 3;
  auto crystal = md::HarmonicCrystal::Create(options);
  ASSERT_TRUE(crystal.ok());
  crystal->Run(600);
  // Stable crystal: thermal MSD from sites stays far below the
  // nearest-neighbor distance a/sqrt(2) ~ 2.56.
  const double msd = crystal->MeanSquaredDisplacementFromSites();
  EXPECT_GT(msd, 0.0);
  EXPECT_LT(std::sqrt(msd), 0.8);
}

TEST(HarmonicCrystalTest, EquipartitionOfEnergy) {
  // Harmonic system: <PE> ~ <KE> in equilibrium (each quadratic mode gets
  // T/2). Check the ratio loosely over a time average.
  md::HarmonicCrystalOptions options;
  options.cells = 3;
  options.temperature = 0.08;
  auto crystal = md::HarmonicCrystal::Create(options);
  ASSERT_TRUE(crystal.ok());
  crystal->Run(300);
  double ke_sum = 0.0, pe_sum = 0.0;
  for (int i = 0; i < 20; ++i) {
    crystal->Run(25);
    ke_sum += crystal->kinetic_energy();
    pe_sum += crystal->potential_energy();
  }
  EXPECT_NEAR(pe_sum / ke_sum, 1.0, 0.3);
}

TEST(HarmonicCrystalTest, DeterministicForSameSeed) {
  md::HarmonicCrystalOptions options;
  options.cells = 3;
  auto a = md::HarmonicCrystal::Create(options);
  auto b = md::HarmonicCrystal::Create(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  a->Run(50);
  b->Run(50);
  for (size_t i = 0; i < a->num_atoms(); ++i) {
    EXPECT_EQ(a->positions()[i].x, b->positions()[i].x);
  }
}

TEST(CopperMdDatasetTest, GeneratesLevelClusteredData) {
  datagen::GeneratorOptions opts;
  opts.size_scale = 0.1;
  const core::Trajectory traj = datagen::MakeCopperMd(opts);
  ASSERT_GT(traj.num_snapshots(), 10u);
  ASSERT_GT(traj.num_particles(), 100u);
  // MDZ should compress it well and the adaptive selector should not crash.
  core::Options options;
  auto compressed = core::CompressTrajectory(traj, options);
  ASSERT_TRUE(compressed.ok());
  EXPECT_GT(static_cast<double>(traj.raw_bytes()) /
                compressed->total_bytes(),
            5.0);
}

// --- MSD / autocorrelation ------------------------------------------------------

core::Trajectory RandomWalkTrajectory(size_t m, size_t n, double step,
                                      uint64_t seed) {
  core::Trajectory traj;
  Rng rng(seed);
  traj.snapshots.resize(m);
  std::vector<md::Vec3> pos(n);
  for (size_t s = 0; s < m; ++s) {
    auto& snap = traj.snapshots[s];
    for (auto& axis : snap.axes) axis.resize(n);
    for (size_t i = 0; i < n; ++i) {
      if (s > 0) {
        pos[i] += {rng.Gaussian(0.0, step), rng.Gaussian(0.0, step),
                   rng.Gaussian(0.0, step)};
      }
      snap.axes[0][i] = pos[i].x;
      snap.axes[1][i] = pos[i].y;
      snap.axes[2][i] = pos[i].z;
    }
  }
  return traj;
}

TEST(MsdTest, RandomWalkIsLinearInLag) {
  const double step = 0.1;
  const auto traj = RandomWalkTrajectory(200, 400, step, 1);
  auto msd = analysis::MeanSquaredDisplacement(traj, 10);
  ASSERT_TRUE(msd.ok());
  ASSERT_EQ(msd->size(), 10u);
  // Diffusive scaling: MSD(lag) = 3 * step^2 * lag.
  for (size_t lag = 1; lag <= 10; ++lag) {
    const double expected = 3.0 * step * step * static_cast<double>(lag);
    EXPECT_NEAR((*msd)[lag - 1], expected, 0.15 * expected) << "lag " << lag;
  }
}

TEST(MsdTest, StaticTrajectoryIsZero) {
  core::Trajectory traj = RandomWalkTrajectory(10, 50, 0.0, 2);
  auto msd = analysis::MeanSquaredDisplacement(traj, 5);
  ASSERT_TRUE(msd.ok());
  for (double v : *msd) EXPECT_EQ(v, 0.0);
}

TEST(MsdTest, RejectsTinyTrajectory) {
  const auto traj = RandomWalkTrajectory(1, 10, 0.1, 3);
  EXPECT_FALSE(analysis::MeanSquaredDisplacement(traj, 5).ok());
}

TEST(AutocorrelationTest, RandomWalkDecorrelatesImmediately) {
  const auto traj = RandomWalkTrajectory(300, 300, 0.1, 4);
  auto corr = analysis::DisplacementAutocorrelation(traj, 6);
  ASSERT_TRUE(corr.ok());
  EXPECT_DOUBLE_EQ((*corr)[0], 1.0);
  for (size_t lag = 1; lag < corr->size(); ++lag) {
    EXPECT_NEAR((*corr)[lag], 0.0, 0.05) << "lag " << lag;
  }
}

TEST(AutocorrelationTest, BallisticMotionStaysCorrelated) {
  // Constant-velocity drift: displacements identical each frame -> C ~ 1.
  core::Trajectory traj;
  traj.snapshots.resize(30);
  const size_t n = 100;
  Rng rng(5);
  std::vector<double> vel(n);
  for (auto& v : vel) v = rng.Uniform(0.5, 1.5);
  for (size_t s = 0; s < 30; ++s) {
    for (auto& axis : traj.snapshots[s].axes) axis.resize(n);
    for (size_t i = 0; i < n; ++i) {
      traj.snapshots[s].axes[0][i] = vel[i] * static_cast<double>(s);
      traj.snapshots[s].axes[1][i] = 0.0;
      traj.snapshots[s].axes[2][i] = 0.0;
    }
  }
  auto corr = analysis::DisplacementAutocorrelation(traj, 5);
  ASSERT_TRUE(corr.ok());
  for (double c : *corr) EXPECT_NEAR(c, 1.0, 1e-9);
}

TEST(AutocorrelationTest, HarmonicVibrationGoesNegative) {
  // A vibrating crystal rebounds: displacement autocorrelation dips below
  // zero at some lag (phonon oscillation) instead of decaying monotonically.
  md::HarmonicCrystalOptions options;
  options.cells = 3;
  options.gamma = 0.02;  // underdamped
  auto crystal = md::HarmonicCrystal::Create(options);
  ASSERT_TRUE(crystal.ok());
  crystal->Run(200);

  core::Trajectory traj;
  for (int s = 0; s < 60; ++s) {
    crystal->Run(4);
    core::Snapshot snap;
    for (auto& axis : snap.axes) axis.resize(crystal->num_atoms());
    for (size_t i = 0; i < crystal->num_atoms(); ++i) {
      snap.axes[0][i] = crystal->positions()[i].x;
      snap.axes[1][i] = crystal->positions()[i].y;
      snap.axes[2][i] = crystal->positions()[i].z;
    }
    traj.snapshots.push_back(std::move(snap));
  }
  auto corr = analysis::DisplacementAutocorrelation(traj, 20);
  ASSERT_TRUE(corr.ok());
  const double min_c = *std::min_element(corr->begin(), corr->end());
  EXPECT_LT(min_c, -0.05);
}

// --- Dynamics preservation through compression -----------------------------------

TEST(DynamicsPreservationTest, MsdSurvivesCompression) {
  datagen::GeneratorOptions gen;
  gen.size_scale = 0.05;
  const core::Trajectory traj = datagen::MakeLj(gen);
  ASSERT_GT(traj.num_snapshots(), 5u);

  core::Options options;
  options.error_bound = 1e-4;
  auto compressed = core::CompressTrajectory(traj, options);
  ASSERT_TRUE(compressed.ok());
  auto decoded = core::DecompressTrajectory(*compressed);
  ASSERT_TRUE(decoded.ok());

  auto original_msd = analysis::MeanSquaredDisplacement(traj, 8);
  auto decoded_msd = analysis::MeanSquaredDisplacement(*decoded, 8);
  ASSERT_TRUE(original_msd.ok());
  ASSERT_TRUE(decoded_msd.ok());
  EXPECT_LT(analysis::CurveMaxRelativeDeviation(*original_msd, *decoded_msd),
            0.02);
}

TEST(CurveDeviationTest, KnownValues) {
  EXPECT_DOUBLE_EQ(
      analysis::CurveMaxRelativeDeviation({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(
      analysis::CurveMaxRelativeDeviation({1.0, 2.0}, {1.0, 1.0}), 0.5);
  EXPECT_DOUBLE_EQ(analysis::CurveMaxRelativeDeviation({}, {}), 0.0);
}

}  // namespace
}  // namespace mdz
