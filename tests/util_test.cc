#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/bit_stream.h"
#include "util/byte_buffer.h"
#include "util/rng.h"
#include "util/status.h"

namespace mdz {
namespace {

// --- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad bytes");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.message(), "bad bytes");
  EXPECT_EQ(s.ToString(), "Corruption: bad bytes");
}

TEST(StatusTest, FactoryFunctionsProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UseReturnIfError(int x) {
  MDZ_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_EQ(UseReturnIfError(-1).code(), StatusCode::kOutOfRange);
}

// --- ByteWriter / ByteReader -------------------------------------------------

TEST(ByteBufferTest, ScalarRoundTrip) {
  ByteWriter w;
  w.Put<uint8_t>(7);
  w.Put<uint32_t>(0xDEADBEEF);
  w.Put<double>(3.14159);
  w.Put<int64_t>(-12345678901234LL);

  ByteReader r(w.bytes());
  uint8_t a;
  uint32_t b;
  double c;
  int64_t d;
  ASSERT_TRUE(r.Get(&a).ok());
  ASSERT_TRUE(r.Get(&b).ok());
  ASSERT_TRUE(r.Get(&c).ok());
  ASSERT_TRUE(r.Get(&d).ok());
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_DOUBLE_EQ(c, 3.14159);
  EXPECT_EQ(d, -12345678901234LL);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteBufferTest, VarintRoundTripEdgeValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             std::numeric_limits<uint64_t>::max()};
  ByteWriter w;
  for (uint64_t v : values) w.PutVarint(v);
  ByteReader r(w.bytes());
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(r.GetVarint(&got).ok());
    EXPECT_EQ(got, v);
  }
}

TEST(ByteBufferTest, SignedVarintRoundTrip) {
  const int64_t values[] = {0,  -1, 1,  -64, 64, -8191, 8191,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  ByteWriter w;
  for (int64_t v : values) w.PutSignedVarint(v);
  ByteReader r(w.bytes());
  for (int64_t v : values) {
    int64_t got = 0;
    ASSERT_TRUE(r.GetSignedVarint(&got).ok());
    EXPECT_EQ(got, v);
  }
}

TEST(ByteBufferTest, BlobRoundTrip) {
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ByteWriter w;
  w.PutBlob(payload);
  w.PutBlob({});

  ByteReader r(w.bytes());
  std::span<const uint8_t> a, b;
  ASSERT_TRUE(r.GetBlob(&a).ok());
  ASSERT_TRUE(r.GetBlob(&b).ok());
  EXPECT_EQ(std::vector<uint8_t>(a.begin(), a.end()), payload);
  EXPECT_TRUE(b.empty());
}

TEST(ByteBufferTest, TruncatedScalarIsCorruption) {
  ByteWriter w;
  w.Put<uint8_t>(1);
  ByteReader r(w.bytes());
  uint32_t big = 0;
  EXPECT_EQ(r.Get(&big).code(), StatusCode::kCorruption);
}

TEST(ByteBufferTest, TruncatedVarintIsCorruption) {
  std::vector<uint8_t> bytes = {0x80, 0x80};  // continuation never ends
  ByteReader r(bytes);
  uint64_t v = 0;
  EXPECT_EQ(r.GetVarint(&v).code(), StatusCode::kCorruption);
}

TEST(ByteBufferTest, BlobLengthBeyondDataIsCorruption) {
  ByteWriter w;
  w.PutVarint(100);  // declares 100 bytes, provides none
  ByteReader r(w.bytes());
  std::span<const uint8_t> blob;
  EXPECT_EQ(r.GetBlob(&blob).code(), StatusCode::kCorruption);
}

TEST(ByteBufferTest, PatchAt) {
  ByteWriter w;
  w.Put<uint32_t>(0);
  w.Put<uint8_t>(9);
  w.PatchAt<uint32_t>(0, 77);
  ByteReader r(w.bytes());
  uint32_t v = 0;
  ASSERT_TRUE(r.Get(&v).ok());
  EXPECT_EQ(v, 77u);
}

// --- BitWriter / BitReader ----------------------------------------------------

TEST(BitStreamTest, SingleBits) {
  BitWriter w;
  const bool pattern[] = {true, false, true, true, false, false, true, false,
                          true, true};
  for (bool b : pattern) w.WriteBit(b);
  w.Flush();

  BitReader r(w.bytes());
  for (bool b : pattern) EXPECT_EQ(r.ReadBit(), b);
  EXPECT_FALSE(r.overrun());
}

TEST(BitStreamTest, MultiBitValues) {
  BitWriter w;
  w.Write(0x5, 3);
  w.Write(0x1FF, 9);
  w.Write(0x12345, 20);
  w.Write(0x1FFFFFFFFFFFFFull, 53);
  w.Flush();

  BitReader r(w.bytes());
  EXPECT_EQ(r.Read(3), 0x5u);
  EXPECT_EQ(r.Read(9), 0x1FFu);
  EXPECT_EQ(r.Read(20), 0x12345u);
  EXPECT_EQ(r.Read(53), 0x1FFFFFFFFFFFFFull);
  EXPECT_FALSE(r.overrun());
}

TEST(BitStreamTest, PeekDoesNotConsume) {
  BitWriter w;
  w.Write(0xAB, 8);
  w.Flush();
  BitReader r(w.bytes());
  EXPECT_EQ(r.Peek(4), 0xBu);
  EXPECT_EQ(r.Peek(4), 0xBu);
  EXPECT_EQ(r.Read(8), 0xABu);
}

TEST(BitStreamTest, SkipAfterPeek) {
  BitWriter w;
  w.Write(0b110101, 6);
  w.Flush();
  BitReader r(w.bytes());
  EXPECT_EQ(r.Peek(3), 0b101u);
  r.Skip(3);
  EXPECT_EQ(r.Read(3), 0b110u);
}

TEST(BitStreamTest, OverrunDetected) {
  BitWriter w;
  w.Write(0xFF, 8);
  w.Flush();
  BitReader r(w.bytes());
  r.Read(8);
  r.Read(8);  // past the end
  EXPECT_TRUE(r.overrun());
  EXPECT_EQ(r.CheckNoOverrun().code(), StatusCode::kCorruption);
}

TEST(BitStreamTest, BitCountTracksWrites) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  w.Write(1, 5);
  EXPECT_EQ(w.bit_count(), 5u);
  w.Write(1, 11);
  EXPECT_EQ(w.bit_count(), 16u);
}

TEST(BitStreamTest, RandomRoundTrip) {
  Rng rng(7);
  std::vector<std::pair<uint64_t, int>> tokens;
  BitWriter w;
  for (int i = 0; i < 5000; ++i) {
    const int nbits = 1 + static_cast<int>(rng.UniformInt(56));
    const uint64_t mask = (nbits == 64) ? ~0ull : ((1ull << nbits) - 1);
    const uint64_t value = rng.NextU64() & mask;
    tokens.emplace_back(value, nbits);
    w.Write(value, nbits);
  }
  w.Flush();
  BitReader r(w.bytes());
  for (const auto& [value, nbits] : tokens) {
    EXPECT_EQ(r.Read(nbits), value);
  }
  EXPECT_FALSE(r.overrun());
}

// --- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 7.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(8);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) EXPECT_GT(c, 700);
}

}  // namespace
}  // namespace mdz
