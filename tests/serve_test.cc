// mdzd service (src/serve/): shared frame-cache budgets and invalidation,
// deadline/quota scheduling, and the daemon end to end — served extracts must
// be byte-identical to direct ArchiveReader reads, including while appends
// reseal archives under concurrent clients.

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "archive/frame_cache.h"
#include "archive/reader.h"
#include "core/mdz.h"
#include "core/thread_pool.h"
#include "core/trajectory.h"
#include "io/archive.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/fleet.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "util/rng.h"

namespace mdz::serve {
namespace {

using archive::DecodedFrame;
using archive::FrameCache;
using archive::FramePtr;

// --- FrameCache -------------------------------------------------------------

FramePtr MakeFrame(size_t doubles) {
  auto frame = std::make_shared<DecodedFrame>();
  frame->snapshots.emplace_back(doubles, 0.5);
  return frame;
}

TEST(FrameCacheTest, ByteCeilingIsAHardInvariant) {
  obs::MetricsRegistry registry;
  obs::Gauge* gauge = registry.GetGauge("cache/bytes_in_use");
  const size_t frame_bytes = MakeFrame(1024)->byte_size();
  FrameCache::Options options;
  options.byte_budget = 3 * frame_bytes;
  options.bytes_gauge = gauge;
  FrameCache cache(options);
  const uint64_t generation = cache.RegisterGeneration();

  for (size_t id = 0; id < 32; ++id) {
    auto result = cache.GetOrDecode(
        generation, id, [] { return Result<FramePtr>(MakeFrame(1024)); });
    ASSERT_TRUE(result.ok());
    ASSERT_EQ((*result)->snapshots[0].size(), 1024u);
    // Hard ceiling after every single operation, not just eventually.
    ASSERT_LE(cache.bytes_in_use(), options.byte_budget);
    ASSERT_EQ(static_cast<size_t>(gauge->Value()), cache.bytes_in_use());
  }
  const FrameCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_in_use, options.byte_budget);
  EXPECT_LE(stats.frames_in_use, 3u);
}

TEST(FrameCacheTest, OversizedFrameIsServedButNotRetained) {
  FrameCache::Options options;
  options.byte_budget = 1024;  // smaller than any decoded frame below
  FrameCache cache(options);
  const uint64_t generation = cache.RegisterGeneration();
  auto result = cache.GetOrDecode(
      generation, 0, [] { return Result<FramePtr>(MakeFrame(4096)); });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->snapshots[0].size(), 4096u);
  EXPECT_LE(cache.bytes_in_use(), options.byte_budget);
}

TEST(FrameCacheTest, GenerationInvalidationForcesRedecode) {
  FrameCache cache(FrameCache::Options{});
  const uint64_t generation = cache.RegisterGeneration();
  int decodes = 0;
  const auto decode = [&decodes] {
    ++decodes;
    return Result<FramePtr>(MakeFrame(16));
  };
  bool hit = false;
  ASSERT_TRUE(cache.GetOrDecode(generation, 7, decode, &hit).ok());
  EXPECT_FALSE(hit);
  ASSERT_TRUE(cache.GetOrDecode(generation, 7, decode, &hit).ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(decodes, 1);

  cache.InvalidateGeneration(generation);
  EXPECT_EQ(cache.Peek(generation, 7), nullptr);
  ASSERT_TRUE(cache.GetOrDecode(generation, 7, decode, &hit).ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(decodes, 2);
}

TEST(FrameCacheTest, DistinctGenerationsDoNotCollide) {
  FrameCache cache(FrameCache::Options{});
  const uint64_t gen_a = cache.RegisterGeneration();
  const uint64_t gen_b = cache.RegisterGeneration();
  ASSERT_NE(gen_a, gen_b);
  ASSERT_TRUE(cache
                  .GetOrDecode(gen_a, 0,
                               [] { return Result<FramePtr>(MakeFrame(8)); })
                  .ok());
  EXPECT_NE(cache.Peek(gen_a, 0), nullptr);
  EXPECT_EQ(cache.Peek(gen_b, 0), nullptr);
}

TEST(FrameCacheTest, ConcurrentDecodersOfOneFrameDeduplicate) {
  FrameCache cache(FrameCache::Options{});
  const uint64_t generation = cache.RegisterGeneration();
  std::atomic<int> decodes{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      auto result = cache.GetOrDecode(generation, 3, [&] {
        decodes.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return Result<FramePtr>(MakeFrame(64));
      });
      ASSERT_TRUE(result.ok());
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(decodes.load(), 1);
}

// --- RequestScheduler -------------------------------------------------------

TEST(SchedulerTest, QueueFullAndTenantQuotaRejects) {
  core::ThreadPool pool(2);
  obs::MetricsRegistry registry;
  RequestScheduler::Options options;
  options.pool = &pool;
  options.interactive_slots = 1;
  options.background_slots = 1;
  options.max_queue = 1;
  options.registry = &registry;
  options.default_quota.max_inflight = 2;
  TenantQuota tight;
  tight.max_inflight = 1;
  options.tenant_quotas["tight"] = tight;
  RequestScheduler scheduler(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  const auto blocker = [&](bool) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };

  RejectReason reason = RejectReason::kNone;
  // Occupies the single interactive slot.
  ASSERT_TRUE(scheduler.Submit(Lane::kInteractive, "a", 0, 1, blocker,
                               &reason));
  // Queued (slot busy, queue capacity 1).
  ASSERT_TRUE(
      scheduler.Submit(Lane::kInteractive, "a", 0, 1, [](bool) {}, &reason));
  // Queue full -> backpressure.
  EXPECT_FALSE(
      scheduler.Submit(Lane::kInteractive, "b", 0, 1, [](bool) {}, &reason));
  EXPECT_EQ(reason, RejectReason::kQueueFull);

  // The tight tenant saturates at one in-flight request — in the other lane,
  // so the rejection is attributable to the quota, not the queue.
  ASSERT_TRUE(scheduler.Submit(Lane::kBackground, "tight", 0, 1, blocker,
                               &reason));
  EXPECT_FALSE(scheduler.Submit(Lane::kBackground, "tight", 0, 1,
                                [](bool) {}, &reason));
  EXPECT_EQ(reason, RejectReason::kTenantInflight);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  scheduler.Drain();

  const RequestScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.busy_rejects, 1u);
  EXPECT_EQ(stats.quota_rejects, 1u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.queued, 0u);
}

TEST(SchedulerTest, TenantByteQuotaRejects) {
  core::ThreadPool pool(2);
  obs::MetricsRegistry registry;
  RequestScheduler::Options options;
  options.pool = &pool;
  options.registry = &registry;
  options.default_quota.max_bytes = 100;
  RequestScheduler scheduler(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  RejectReason reason = RejectReason::kNone;
  ASSERT_TRUE(scheduler.Submit(
      Lane::kInteractive, "t", 0, 80,
      [&](bool) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
      },
      &reason));
  EXPECT_FALSE(
      scheduler.Submit(Lane::kInteractive, "t", 0, 80, [](bool) {}, &reason));
  EXPECT_EQ(reason, RejectReason::kTenantBytes);
  // A different tenant is unaffected.
  ASSERT_TRUE(
      scheduler.Submit(Lane::kInteractive, "u", 0, 80, [](bool) {}, &reason));

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  scheduler.Drain();
  EXPECT_EQ(scheduler.stats().quota_rejects, 1u);
}

TEST(SchedulerTest, ExpiredDeadlineIsDeliveredFlagged) {
  core::ThreadPool pool(2);
  obs::MetricsRegistry registry;
  RequestScheduler::Options options;
  options.pool = &pool;
  options.interactive_slots = 1;
  options.registry = &registry;
  RequestScheduler scheduler(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(scheduler.Submit(Lane::kInteractive, "t", 1000, 1, [&](bool) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));
  std::atomic<int> expired_seen{-1};
  ASSERT_TRUE(scheduler.Submit(Lane::kInteractive, "t", 1, 1, [&](bool e) {
    expired_seen.store(e ? 1 : 0);
  }));
  // Let the 1 ms deadline lapse while the request waits behind the blocker.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  scheduler.Drain();
  EXPECT_EQ(expired_seen.load(), 1);
  EXPECT_EQ(scheduler.stats().deadline_expired, 1u);
}

TEST(SchedulerTest, EarlierDeadlineRunsFirst) {
  core::ThreadPool pool(2);
  obs::MetricsRegistry registry;
  RequestScheduler::Options options;
  options.pool = &pool;
  options.interactive_slots = 1;
  options.registry = &registry;
  RequestScheduler scheduler(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(scheduler.Submit(Lane::kInteractive, "t", 60000, 1, [&](bool) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));
  std::vector<int> order;
  std::mutex order_mu;
  // Queued while the slot is held: the 1 s deadline must run before the 30 s
  // one even though it was submitted after.
  ASSERT_TRUE(scheduler.Submit(Lane::kInteractive, "t", 30000, 1, [&](bool) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(2);
  }));
  ASSERT_TRUE(scheduler.Submit(Lane::kInteractive, "t", 1000, 1, [&](bool) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(1);
  }));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  scheduler.Drain();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(SchedulerTest, DrainRejectsLateSubmits) {
  core::ThreadPool pool(2);
  obs::MetricsRegistry registry;
  RequestScheduler::Options options;
  options.pool = &pool;
  options.registry = &registry;
  RequestScheduler scheduler(options);
  scheduler.Drain();
  RejectReason reason = RejectReason::kNone;
  EXPECT_FALSE(
      scheduler.Submit(Lane::kInteractive, "t", 0, 1, [](bool) {}, &reason));
  EXPECT_EQ(reason, RejectReason::kShuttingDown);
}

// --- ServerConfig -----------------------------------------------------------

TEST(ServerConfigTest, ParsesKeysAndQuotas) {
  auto config = ParseServerConfig(
      "# mdzd config\n"
      "cache_bytes 1048576\n"
      "max_open_archives 8\n"
      "interactive_slots 3\n"
      "background_slots 2\n"
      "max_queue 17\n"
      "default_deadline_ms 5000\n"
      "max_connections 9\n"
      "quota default max_inflight=5 max_bytes=1000\n"
      "quota greedy max_inflight=1 max_bytes=64\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->cache_bytes, 1048576u);
  EXPECT_EQ(config->max_open_archives, 8u);
  EXPECT_EQ(config->interactive_slots, 3u);
  EXPECT_EQ(config->background_slots, 2u);
  EXPECT_EQ(config->max_queue, 17u);
  EXPECT_EQ(config->default_deadline_ms, 5000u);
  EXPECT_EQ(config->max_connections, 9u);
  EXPECT_EQ(config->default_quota.max_inflight, 5u);
  EXPECT_EQ(config->default_quota.max_bytes, 1000u);
  ASSERT_EQ(config->tenant_quotas.count("greedy"), 1u);
  EXPECT_EQ(config->tenant_quotas.at("greedy").max_inflight, 1u);
  EXPECT_EQ(config->tenant_quotas.at("greedy").max_bytes, 64u);
}

TEST(ServerConfigTest, RejectsGarbage) {
  EXPECT_FALSE(ParseServerConfig("cache_bytes banana\n").ok());
  EXPECT_FALSE(ParseServerConfig("unknown_key 3\n").ok());
  EXPECT_FALSE(ParseServerConfig("cache_bytes 1 trailing\n").ok());
}

// --- End-to-end server ------------------------------------------------------

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

core::Trajectory MakeWalkTrajectory(size_t m, size_t n, uint64_t seed) {
  core::Trajectory traj;
  traj.name = "serve-test";
  traj.box = {20.0, 20.0, 20.0};
  Rng rng(seed);
  core::Snapshot current;
  for (auto& axis : current.axes) {
    axis.resize(n);
    for (auto& v : axis) v = rng.Uniform(-10.0, 10.0);
  }
  traj.snapshots.push_back(current);
  for (size_t s = 1; s < m; ++s) {
    for (auto& axis : current.axes) {
      for (auto& v : axis) v += rng.Uniform(-0.05, 0.05);
    }
    traj.snapshots.push_back(current);
  }
  return traj;
}

// Writes a default-options v2 archive (what `mdz compress` produces, and
// what the fleet's append path reseals) under the fleet root.
void WriteArchive(const std::string& root, const std::string& name,
                  const core::Trajectory& traj) {
  auto compressed = core::CompressTrajectory(traj, core::Options{});
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  io::Archive archive;
  archive.data = std::move(compressed).value();
  archive.name = traj.name;
  archive.box = traj.box;
  ASSERT_TRUE(io::WriteArchiveV2(archive, root + "/" + name).ok());
}

struct TestServer {
  explicit TestServer(const std::string& root,
                      ServerConfig config = ServerConfig()) {
    pool = std::make_unique<core::ThreadPool>(4);
    registry = std::make_unique<obs::MetricsRegistry>();
    ArchiveServer::Options options;
    options.listen.host = "127.0.0.1";
    options.listen.port = 0;
    options.root = root;
    options.config = config;
    options.pool = pool.get();
    options.registry = registry.get();
    server = std::make_unique<ArchiveServer>(options);
    const Status s = server->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  std::unique_ptr<Client> Connect(const std::string& tenant = "test") {
    Client::Options options;
    options.tenant = tenant;
    auto client = Client::Connect("127.0.0.1", server->port(), options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(client).value() : nullptr;
  }

  std::unique_ptr<core::ThreadPool> pool;
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<ArchiveServer> server;
};

std::string FreshRoot(const std::string& tag) {
  const std::string root = TempPath(tag);
  std::remove((root + "/walk.mdza").c_str());
  std::remove((root + "/other.mdza").c_str());
  std::remove((root + "/grow.mdza").c_str());
  ::mkdir(root.c_str(), 0755);
  return root;
}

TEST(ServeTest, ExtractMatchesDirectReaderByteForByte) {
  const std::string root = FreshRoot("serve_extract");
  const core::Trajectory traj = MakeWalkTrajectory(60, 40, 101);
  WriteArchive(root, "walk.mdza", traj);

  TestServer ts(root);
  auto client = ts.Connect();
  ASSERT_NE(client, nullptr);

  auto direct = archive::ArchiveReader::Open(root + "/walk.mdza");
  ASSERT_TRUE(direct.ok());

  for (const auto& [first, count] :
       std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 5}, {13, 20}, {55, 5}, {0, 60}}) {
    auto served = client->Extract("walk.mdza", first, count);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    auto expected = (*direct)->ReadSnapshots(first, count);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(served->size(), expected->size());
    for (size_t s = 0; s < served->size(); ++s) {
      for (int axis = 0; axis < 3; ++axis) {
        ASSERT_EQ((*served)[s].axes[axis], (*expected)[s].axes[axis])
            << "snapshot " << first + s << " axis " << axis;
      }
    }
  }

  // Particle-sliced extract.
  auto sliced = client->Extract("walk.mdza", 10, 4, 5, 12);
  ASSERT_TRUE(sliced.ok());
  auto expected = (*direct)->ReadParticles(10, 4, 5, 12);
  ASSERT_TRUE(expected.ok());
  for (size_t s = 0; s < sliced->size(); ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      ASSERT_EQ((*sliced)[s].axes[axis], (*expected)[s].axes[axis]);
    }
  }
}

TEST(ServeTest, StatIndexAuditAndNotFound) {
  const std::string root = FreshRoot("serve_stat");
  const core::Trajectory traj = MakeWalkTrajectory(30, 24, 7);
  WriteArchive(root, "walk.mdza", traj);

  TestServer ts(root);
  auto client = ts.Connect();
  ASSERT_NE(client, nullptr);

  auto info = client->Stat("walk.mdza");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->num_snapshots, 30u);
  EXPECT_EQ(info->num_particles, 24u);
  EXPECT_GT(info->num_frames, 0u);
  EXPECT_EQ(info->name, "serve-test");
  EXPECT_DOUBLE_EQ(info->box[0], 20.0);

  auto index = client->Index("walk.mdza");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->size(), info->num_frames);

  auto audit = client->Audit("walk.mdza");
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  EXPECT_EQ(audit->frames, info->num_frames);
  EXPECT_GT(audit->payload_bytes, 0u);

  EXPECT_FALSE(client->Stat("missing.mdza").ok());
  EXPECT_EQ(client->last_status(), ReplyStatus::kNotFound);
  EXPECT_FALSE(client->Stat("../escape.mdza").ok());
}

TEST(ServeTest, AppendBumpsGenerationWithoutStaleReads) {
  const std::string root = FreshRoot("serve_append");
  const core::Trajectory base = MakeWalkTrajectory(40, 32, 11);
  WriteArchive(root, "grow.mdza", base);

  TestServer ts(root);
  auto client = ts.Connect();
  ASSERT_NE(client, nullptr);

  auto before = client->Stat("grow.mdza");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->num_snapshots, 40u);

  // Warm the cache on the pre-append incarnation.
  auto old_read = client->Extract("grow.mdza", 0, 40);
  ASSERT_TRUE(old_read.ok());

  const core::Trajectory extra = MakeWalkTrajectory(10, 32, 12);
  auto appended = client->Append("grow.mdza", extra.snapshots);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_EQ(appended->num_snapshots, 50u);
  EXPECT_GT(appended->generation, before->generation);

  // The pre-append range re-reads identically (no stale frames, no torn
  // data), and the appended tail is readable.
  auto re_read = client->Extract("grow.mdza", 0, 40);
  ASSERT_TRUE(re_read.ok());
  for (size_t s = 0; s < 40; ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      ASSERT_EQ((*re_read)[s].axes[axis], (*old_read)[s].axes[axis]);
    }
  }
  auto tail = client->Extract("grow.mdza", 40, 10);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->size(), 10u);

  // And the resealed file on disk agrees with what the server serves.
  auto direct = archive::ArchiveReader::Open(root + "/grow.mdza");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ((*direct)->num_snapshots(), 50u);
  auto disk = (*direct)->ReadSnapshots(40, 10);
  ASSERT_TRUE(disk.ok());
  for (size_t s = 0; s < 10; ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      ASSERT_EQ((*tail)[s].axes[axis], (*disk)[s].axes[axis]);
    }
  }
}

TEST(ServeTest, AppendRejectsNonFiniteCoordinates) {
  const std::string root = FreshRoot("serve_append_nan");
  const core::Trajectory base = MakeWalkTrajectory(20, 16, 13);
  WriteArchive(root, "grow.mdza", base);

  TestServer ts(root);
  auto client = ts.Connect();
  ASSERT_NE(client, nullptr);

  // Malformed data from a remote client must be a protocol-level rejection,
  // never encoded into the archive.
  for (const double poison : {std::nan(""),
                              std::numeric_limits<double>::infinity(),
                              -std::numeric_limits<double>::infinity()}) {
    core::Trajectory extra = MakeWalkTrajectory(3, 16, 14);
    extra.snapshots[1].axes[2][7] = poison;
    auto appended = client->Append("grow.mdza", extra.snapshots);
    ASSERT_FALSE(appended.ok());
    EXPECT_EQ(client->last_status(), ReplyStatus::kInvalid);
  }

  // The archive is untouched: same snapshot count, still fully readable.
  auto info = client->Stat("grow.mdza");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->num_snapshots, 20u);
  auto read = client->Extract("grow.mdza", 0, 20);
  ASSERT_TRUE(read.ok());
}

TEST(ServeTest, TenantQuotaRejectionsAreCountedAndSurfaced) {
  const std::string root = FreshRoot("serve_quota");
  WriteArchive(root, "walk.mdza", MakeWalkTrajectory(40, 32, 21));

  ServerConfig config;
  TenantQuota tight;
  tight.max_inflight = 1;
  tight.max_bytes = 1ull << 30;
  config.tenant_quotas["greedy"] = tight;
  TestServer ts(root, config);

  // Many parallel clients under one single-slot tenant: some must be turned
  // away with BUSY, none may hang, and the server must keep serving others.
  std::atomic<int> rejected{0};
  std::atomic<int> served{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      auto client = ts.Connect("greedy");
      ASSERT_NE(client, nullptr);
      for (int i = 0; i < 10; ++i) {
        auto result = client->Extract("walk.mdza", 0, 40);
        if (result.ok()) {
          served.fetch_add(1);
        } else {
          ASSERT_EQ(client->last_status(), ReplyStatus::kBusy);
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_GT(served.load(), 0);
  EXPECT_GT(rejected.load(), 0);
  EXPECT_EQ(ts.server->scheduler().stats().quota_rejects,
            static_cast<uint64_t>(rejected.load()));
  // The rejections are observable on the metrics surface the ops endpoint
  // scrapes.
  EXPECT_EQ(static_cast<uint64_t>(
                ts.registry->GetCounter("serve/quota_rejects")->Value()),
            static_cast<uint64_t>(rejected.load()));
}

TEST(ServeTest, DrainRefusesNewWorkAndGoesUnready) {
  const std::string root = FreshRoot("serve_drain");
  WriteArchive(root, "walk.mdza", MakeWalkTrajectory(20, 16, 31));

  TestServer ts(root);
  EXPECT_TRUE(ts.server->ready());
  auto client = ts.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Stat("walk.mdza").ok());

  ts.server->Drain();
  EXPECT_FALSE(ts.server->ready());
  // The drained server either refuses the request (SHUTTING_DOWN) or the
  // connection is already gone; both are clean failures, never a hang.
  auto late = client->Stat("walk.mdza");
  EXPECT_FALSE(late.ok());
}

// The torture test: concurrent clients mixing extracts, stats, appends and
// fleet reloads. Extract responses for the immutable archive must stay
// byte-identical to a direct read throughout; the growing archive's original
// range must never change; quota rejections must be the only failures.
TEST(ServeTest, ConcurrentClientTorture) {
  const std::string root = FreshRoot("serve_torture");
  const core::Trajectory fixed = MakeWalkTrajectory(50, 32, 41);
  WriteArchive(root, "walk.mdza", fixed);
  const core::Trajectory grow_base = MakeWalkTrajectory(30, 16, 42);
  WriteArchive(root, "grow.mdza", grow_base);

  // Small cache budget so eviction and admission churn under load; small
  // handle bound so recycling happens while requests are in flight.
  ServerConfig config;
  config.cache_bytes = 256 * 1024;
  config.max_open_archives = 2;
  config.interactive_slots = 4;
  config.background_slots = 1;
  TestServer ts(root, config);

  auto direct = archive::ArchiveReader::Open(root + "/walk.mdza");
  ASSERT_TRUE(direct.ok());
  auto walk_expected = (*direct)->ReadSnapshots(0, 50);
  ASSERT_TRUE(walk_expected.ok());
  auto grow_direct = archive::ArchiveReader::Open(root + "/grow.mdza");
  ASSERT_TRUE(grow_direct.ok());
  auto grow_expected = (*grow_direct)->ReadSnapshots(0, 30);
  ASSERT_TRUE(grow_expected.ok());

  constexpr int kClients = 6;
  constexpr int kIterations = 25;
  std::atomic<bool> failed{false};
  std::atomic<int> busy_rejects{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients + 2);

  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = ts.Connect("torture-" + std::to_string(t % 2));
      if (client == nullptr) {
        failed.store(true);
        return;
      }
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kIterations && !failed.load(); ++i) {
        const int op = static_cast<int>(rng.Uniform(0.0, 3.0));
        if (op == 0) {
          auto info = client->Stat("walk.mdza");
          if (!info.ok() && client->last_status() != ReplyStatus::kBusy) {
            ADD_FAILURE() << "stat failed: " << info.status().ToString();
            failed.store(true);
          }
          continue;
        }
        // Ranges stay inside the initial snapshot count of each archive
        // (grow.mdza is appended to concurrently; only [0, 30) is stable).
        const uint64_t limit = op == 1 ? 50 : 30;
        const uint64_t count =
            1 + static_cast<uint64_t>(rng.Uniform(0.0, 9.0));
        const uint64_t first = static_cast<uint64_t>(
            rng.Uniform(0.0, static_cast<double>(limit - count)));
        const std::string archive = op == 1 ? "walk.mdza" : "grow.mdza";
        auto served = client->Extract(archive, first, count);
        if (!served.ok()) {
          if (client->last_status() == ReplyStatus::kBusy) {
            busy_rejects.fetch_add(1);
            continue;
          }
          ADD_FAILURE() << "extract failed: " << served.status().ToString();
          failed.store(true);
          continue;
        }
        const std::vector<core::Snapshot>& expected =
            op == 1 ? *walk_expected : *grow_expected;
        for (size_t s = 0; s < served->size(); ++s) {
          for (int axis = 0; axis < 3; ++axis) {
            if ((*served)[s].axes[axis] != expected[first + s].axes[axis]) {
              ADD_FAILURE() << "served data diverged from direct read at "
                            << archive << " snapshot " << first + s;
              failed.store(true);
            }
          }
        }
      }
    });
  }

  // One appender thread growing grow.mdza while the readers hammer it.
  threads.emplace_back([&] {
    auto client = ts.Connect("appender");
    if (client == nullptr) {
      failed.store(true);
      return;
    }
    for (int i = 0; i < 4 && !failed.load(); ++i) {
      // Full buffers only: the codec reseals on buffer boundaries, and a
      // partial tail would make the next Reopen fail.
      const core::Trajectory extra =
          MakeWalkTrajectory(10, 16, 500 + static_cast<uint64_t>(i));
      auto result = client->Append("grow.mdza", extra.snapshots);
      if (!result.ok() && client->last_status() != ReplyStatus::kBusy) {
        ADD_FAILURE() << "append failed: " << result.status().ToString();
        failed.store(true);
      }
    }
  });

  // One reload thread dropping fleet handles mid-flight.
  threads.emplace_back([&] {
    for (int i = 0; i < 6; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      ts.server->Reload(config);
    }
  });

  for (auto& thread : threads) thread.join();
  ASSERT_FALSE(failed.load());

  // Post-torture: the grown archive's original range still matches, the
  // cache never blew its budget, and a clean drain completes.
  auto final_read = ts.Connect()->Extract("grow.mdza", 0, 30);
  ASSERT_TRUE(final_read.ok());
  for (size_t s = 0; s < 30; ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      ASSERT_EQ((*final_read)[s].axes[axis],
                (*grow_expected)[s].axes[axis]);
    }
  }
  EXPECT_LE(ts.server->cache().bytes_in_use(), config.cache_bytes);
  ts.server->Drain();
  EXPECT_EQ(ts.server->scheduler().stats().running, 0u);
}

// --- Protocol round trip ----------------------------------------------------

TEST(ProtocolTest, RequestAndReplyRoundTrip) {
  Request request;
  request.op = Op::kExtract;
  request.request_id = 77;
  request.deadline_ms = 1234;
  request.tenant = "tenant-a";
  request.archive = "dir/walk.mdza";
  request.first = 10;
  request.count = 5;
  request.first_particle = 3;
  request.particle_count = 7;
  auto decoded = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->op, Op::kExtract);
  EXPECT_EQ(decoded->request_id, 77u);
  EXPECT_EQ(decoded->deadline_ms, 1234u);
  EXPECT_EQ(decoded->tenant, "tenant-a");
  EXPECT_EQ(decoded->archive, "dir/walk.mdza");
  EXPECT_EQ(decoded->first, 10u);
  EXPECT_EQ(decoded->count, 5u);
  EXPECT_EQ(decoded->first_particle, 3u);
  EXPECT_EQ(decoded->particle_count, 7u);

  Reply reply;
  reply.op = Op::kExtract;
  reply.status = ReplyStatus::kOk;
  reply.request_id = 77;
  reply.num_snapshots = 2;
  reply.num_particles = 3;
  reply.data = {1.0, 2.5, -3.25, 0.0, 1e300, -0.5,
                4.0, 5.0, 6.0,   7.0, 8.0,   9.0,
                1.5, 2.5, 3.5,   4.5, 5.5,   6.5};
  auto reply_decoded = DecodeReply(EncodeReply(reply));
  ASSERT_TRUE(reply_decoded.ok()) << reply_decoded.status().ToString();
  EXPECT_EQ(reply_decoded->status, ReplyStatus::kOk);
  EXPECT_EQ(reply_decoded->num_snapshots, 2u);
  EXPECT_EQ(reply_decoded->data, reply.data);  // exact, bit-for-bit
}

TEST(ProtocolTest, TruncatedFrameIsAnError) {
  Request request;
  request.op = Op::kStat;
  request.archive = "walk.mdza";
  auto bytes = EncodeRequest(request);
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(DecodeRequest(bytes).ok());
}

}  // namespace
}  // namespace mdz::serve
