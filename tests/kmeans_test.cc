#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/kmeans1d.h"
#include "util/rng.h"

namespace mdz::cluster {
namespace {

// Brute-force optimal 1-D k-means by enumerating all contiguous partitions
// (exponential; only for tiny n).
double BruteForceCost(const std::vector<double>& sorted, size_t l, size_t r) {
  double sum = 0.0;
  for (size_t i = l; i <= r; ++i) sum += sorted[i];
  const double mean = sum / static_cast<double>(r - l + 1);
  double cost = 0.0;
  for (size_t i = l; i <= r; ++i) {
    cost += (sorted[i] - mean) * (sorted[i] - mean);
  }
  return cost;
}

double BruteForceKMeans(const std::vector<double>& sorted, size_t start, int k) {
  const size_t n = sorted.size();
  if (k == 1) return BruteForceCost(sorted, start, n - 1);
  double best = std::numeric_limits<double>::infinity();
  // First cluster is [start, split-1]; needs k-1 clusters for the rest.
  for (size_t split = start + 1; split + static_cast<size_t>(k) - 1 <= n;
       ++split) {
    const double cost = BruteForceCost(sorted, start, split - 1) +
                        BruteForceKMeans(sorted, split, k - 1);
    best = std::min(best, cost);
  }
  return best;
}

TEST(KMeans1DTest, RejectsEmptyInput) {
  EXPECT_FALSE(OptimalKMeans1D({}, 1).ok());
}

TEST(KMeans1DTest, RejectsBadK) {
  std::vector<double> data = {1.0, 2.0};
  EXPECT_FALSE(OptimalKMeans1D(data, 0).ok());
  EXPECT_FALSE(OptimalKMeans1D(data, 3).ok());
}

TEST(KMeans1DTest, SingleCluster) {
  std::vector<double> data = {1.0, 2.0, 3.0, 4.0};
  auto result = OptimalKMeans1D(data, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->centroids.size(), 1u);
  EXPECT_DOUBLE_EQ(result->centroids[0], 2.5);
  EXPECT_NEAR(result->cost, 5.0, 1e-12);  // 1.5^2+0.5^2+0.5^2+1.5^2
}

TEST(KMeans1DTest, KEqualsNIsZeroCost) {
  std::vector<double> data = {5.0, 1.0, 3.0};
  auto result = OptimalKMeans1D(data, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->cost, 0.0, 1e-12);
  EXPECT_EQ(result->centroids, (std::vector<double>{1.0, 3.0, 5.0}));
}

TEST(KMeans1DTest, ObviousTwoClusters) {
  std::vector<double> data = {0.0, 0.1, 0.2, 10.0, 10.1, 10.2};
  auto result = OptimalKMeans1D(data, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->centroids.size(), 2u);
  EXPECT_NEAR(result->centroids[0], 0.1, 1e-12);
  EXPECT_NEAR(result->centroids[1], 10.1, 1e-12);
  EXPECT_EQ(result->sizes[0], 3u);
  EXPECT_EQ(result->sizes[1], 3u);
}

TEST(KMeans1DTest, MatchesBruteForceOnRandomSmallInputs) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 4 + static_cast<int>(rng.UniformInt(8));
    std::vector<double> data(n);
    for (auto& d : data) d = rng.Uniform(0.0, 100.0);
    std::vector<double> sorted = data;
    std::sort(sorted.begin(), sorted.end());
    for (int k = 1; k <= std::min(n, 4); ++k) {
      auto result = OptimalKMeans1D(data, k);
      ASSERT_TRUE(result.ok());
      const double brute = BruteForceKMeans(sorted, 0, k);
      EXPECT_NEAR(result->cost, brute, 1e-6 * (1.0 + brute))
          << "trial " << trial << " n " << n << " k " << k;
    }
  }
}

TEST(KMeans1DTest, CostDecreasesWithK) {
  Rng rng(78);
  std::vector<double> data(200);
  for (auto& d : data) d = rng.Uniform(0.0, 50.0);
  double prev = std::numeric_limits<double>::infinity();
  for (int k = 1; k <= 10; ++k) {
    auto result = OptimalKMeans1D(data, k);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->cost, prev + 1e-9);
    prev = result->cost;
  }
}

// --- FitLevels ----------------------------------------------------------------

std::vector<double> LevelData(int levels, double mu, double lambda,
                              double noise, size_t per_level, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> data;
  for (int l = 0; l < levels; ++l) {
    for (size_t i = 0; i < per_level; ++i) {
      data.push_back(mu + lambda * l + rng.Gaussian(0.0, noise));
    }
  }
  // Shuffle so sampling isn't trivially sorted.
  for (size_t i = data.size() - 1; i > 0; --i) {
    std::swap(data[i], data[rng.UniformInt(i + 1)]);
  }
  return data;
}

TEST(FitLevelsTest, RecoversLambdaAndMu) {
  const double mu = 3.0, lambda = 1.8;
  const auto data = LevelData(12, mu, lambda, 0.05, 200, 5);
  auto fit = FitLevels(data);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->lambda, lambda, 0.05 * lambda);
  // mu is recovered modulo lambda (level indices can shift); check distance
  // to the level grid.
  const double offset = std::fabs(
      std::remainder(fit->mu - mu, lambda));
  EXPECT_LT(offset, 0.1 * lambda);
  EXPECT_NEAR(fit->num_levels, 12, 3);
}

TEST(FitLevelsTest, HandlesSparseOccupiedLevels) {
  // Only levels 0, 3, 4, 9 occupied: gaps are multiples of lambda.
  Rng rng(6);
  std::vector<double> data;
  const double lambda = 2.5;
  for (int level : {0, 3, 4, 9}) {
    for (int i = 0; i < 300; ++i) {
      data.push_back(1.0 + lambda * level + rng.Gaussian(0.0, 0.03));
    }
  }
  auto fit = FitLevels(data);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->lambda, lambda, 0.1 * lambda);
}

TEST(FitLevelsTest, ConstantDataSingleLevel) {
  std::vector<double> data(1000, 7.5);
  auto fit = FitLevels(data);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->num_levels, 1);
  EXPECT_DOUBLE_EQ(fit->mu, 7.5);
}

TEST(FitLevelsTest, EmptyInputIsError) {
  EXPECT_FALSE(FitLevels({}).ok());
}

TEST(FitLevelsTest, UniformDataHasHighFitError) {
  Rng rng(7);
  std::vector<double> data(4000);
  for (auto& d : data) d = rng.Uniform(0.0, 100.0);
  auto uniform_fit = FitLevels(data);
  ASSERT_TRUE(uniform_fit.ok());

  const auto level_data = LevelData(10, 0.0, 5.0, 0.05, 400, 8);
  auto level_fit = FitLevels(level_data);
  ASSERT_TRUE(level_fit.ok());

  // Level-structured data fits its grid far better than uniform data fits
  // whatever grid the clustering found.
  EXPECT_LT(level_fit->fit_error, uniform_fit->fit_error);
}

TEST(FitLevelsTest, RespectsMaxLevels) {
  LevelFitOptions options;
  options.max_levels = 5;
  const auto data = LevelData(40, 0.0, 1.0, 0.02, 100, 9);
  auto fit = FitLevels(data, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_LE(fit->num_levels, 5);
}

TEST(FitLevelsTest, DeterministicForFixedSeed) {
  const auto data = LevelData(8, 0.0, 3.0, 0.1, 500, 10);
  auto a = FitLevels(data);
  auto b = FitLevels(data);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->mu, b->mu);
  EXPECT_EQ(a->lambda, b->lambda);
  EXPECT_EQ(a->num_levels, b->num_levels);
}

}  // namespace
}  // namespace mdz::cluster
