#include "core/thread_pool.h"

#include <atomic>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

namespace mdz::core {
namespace {

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_TRUE(pool.serial());
  EXPECT_EQ(pool.num_threads(), 0u);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(0, hits.size(), [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.num_threads(), 8u);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(0, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SubrangeAndEmptyRange) {
  ThreadPool pool(4);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(10, 20, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](size_t) { calls.fetch_add(1); });
  pool.ParallelFor(7, 3, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // An axis task fanning ADP trials onto the same pool is exactly this
  // shape; the submitting thread must drain its own batch.
  ThreadPool pool(2);
  constexpr size_t kOuter = 3, kInner = 5;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(0, kOuter, [&](size_t outer) {
    pool.ParallelFor(0, kInner, [&](size_t inner) {
      hits[outer * kInner + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ManyBatchesReuseTheSameWorkers) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(0, 16, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 16u);
}

TEST(ThreadPoolTest, RunTasksRunsEveryTask) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(7);
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.RunTasks(tasks);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SharedPoolCanBeResized) {
  ThreadPool::SetSharedPoolThreads(2);
  EXPECT_EQ(ThreadPool::Shared().num_threads(), 2u);
  ThreadPool::SetSharedPoolThreads(1);
  EXPECT_TRUE(ThreadPool::Shared().serial());
  // Restore the hardware default for the rest of the test binary.
  ThreadPool::SetSharedPoolThreads(0);
}

}  // namespace
}  // namespace mdz::core
