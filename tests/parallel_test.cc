#include <vector>

#include <gtest/gtest.h>

#include "core/mdz.h"
#include "core/parallel.h"
#include "util/rng.h"

namespace mdz::core {
namespace {

Trajectory MakeTrajectory(size_t m, size_t n, uint64_t seed) {
  Trajectory traj;
  Rng rng(seed);
  for (size_t s = 0; s < m; ++s) {
    Snapshot snap;
    for (auto& axis : snap.axes) {
      axis.resize(n);
      for (auto& v : axis) v = rng.Uniform(0.0, 25.0);
    }
    traj.snapshots.push_back(std::move(snap));
  }
  return traj;
}

TEST(ParallelTest, OutputIdenticalToSerial) {
  const Trajectory traj = MakeTrajectory(25, 200, 1);
  Options options;
  for (Method method : {Method::kVQ, Method::kMT, Method::kAdaptive}) {
    options.method = method;
    auto serial = CompressTrajectory(traj, options);
    auto parallel = CompressTrajectoryParallel(traj, options);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_EQ(serial->axes[axis], parallel->axes[axis])
          << MethodName(method) << " axis " << axis;
    }
  }
}

TEST(ParallelTest, ParallelRoundTrip) {
  const Trajectory traj = MakeTrajectory(17, 150, 2);
  Options options;
  auto compressed = CompressTrajectoryParallel(traj, options);
  ASSERT_TRUE(compressed.ok());
  auto decoded = DecompressTrajectoryParallel(*compressed);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->num_snapshots(), 17u);
  ASSERT_EQ(decoded->num_particles(), 150u);
  // Also cross-check against the serial decompressor.
  auto serial_decoded = DecompressTrajectory(*compressed);
  ASSERT_TRUE(serial_decoded.ok());
  for (size_t s = 0; s < 17; ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_EQ(decoded->snapshots[s].axes[axis],
                serial_decoded->snapshots[s].axes[axis]);
    }
  }
}

TEST(ParallelTest, EmptyTrajectoryIsError) {
  EXPECT_FALSE(CompressTrajectoryParallel(Trajectory(), Options()).ok());
}

TEST(ParallelTest, InvalidOptionsRejected) {
  const Trajectory traj = MakeTrajectory(3, 10, 3);
  Options options;
  options.error_bound = -1.0;
  EXPECT_FALSE(CompressTrajectoryParallel(traj, options).ok());
}

TEST(ParallelTest, MismatchedAxisStreamsRejected) {
  const Trajectory traj = MakeTrajectory(10, 50, 4);
  Options options;
  auto compressed = CompressTrajectoryParallel(traj, options);
  ASSERT_TRUE(compressed.ok());
  // Replace one axis with a stream of a different snapshot count.
  const Trajectory shorter = MakeTrajectory(5, 50, 5);
  auto other = CompressTrajectoryParallel(shorter, options);
  ASSERT_TRUE(other.ok());
  compressed->axes[2] = other->axes[2];
  EXPECT_FALSE(DecompressTrajectoryParallel(*compressed).ok());
}

}  // namespace
}  // namespace mdz::core
