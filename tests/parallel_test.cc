#include <vector>

#include <gtest/gtest.h>

#include "core/mdz.h"
#include "core/parallel.h"
#include "core/thread_pool.h"
#include "util/rng.h"

namespace mdz::core {
namespace {

Trajectory MakeTrajectory(size_t m, size_t n, uint64_t seed) {
  Trajectory traj;
  Rng rng(seed);
  for (size_t s = 0; s < m; ++s) {
    Snapshot snap;
    for (auto& axis : snap.axes) {
      axis.resize(n);
      for (auto& v : axis) v = rng.Uniform(0.0, 25.0);
    }
    traj.snapshots.push_back(std::move(snap));
  }
  return traj;
}

TEST(ParallelTest, OutputIdenticalToSerial) {
  const Trajectory traj = MakeTrajectory(25, 200, 1);
  Options options;
  for (Method method : {Method::kVQ, Method::kMT, Method::kAdaptive}) {
    options.method = method;
    auto serial = CompressTrajectory(traj, options);
    auto parallel = CompressTrajectoryParallel(traj, options);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_EQ(serial->axes[axis], parallel->axes[axis])
          << MethodName(method) << " axis " << axis;
    }
  }
}

TEST(ParallelTest, ParallelRoundTrip) {
  const Trajectory traj = MakeTrajectory(17, 150, 2);
  Options options;
  auto compressed = CompressTrajectoryParallel(traj, options);
  ASSERT_TRUE(compressed.ok());
  auto decoded = DecompressTrajectoryParallel(*compressed);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->num_snapshots(), 17u);
  ASSERT_EQ(decoded->num_particles(), 150u);
  // Also cross-check against the serial decompressor.
  auto serial_decoded = DecompressTrajectory(*compressed);
  ASSERT_TRUE(serial_decoded.ok());
  for (size_t s = 0; s < 17; ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_EQ(decoded->snapshots[s].axes[axis],
                serial_decoded->snapshots[s].axes[axis]);
    }
  }
}

// The pool engine must never change the stream: every method (including the
// adaptive selector with the TI extension in its candidate set, whose trial
// encodes run concurrently) must produce byte-identical output at every
// thread count.
TEST(ParallelTest, ByteIdenticalToSerialAcrossThreadCounts) {
  const Trajectory traj = MakeTrajectory(30, 120, 6);
  struct Config {
    Method method;
    bool interp;
  };
  const Config configs[] = {{Method::kVQ, false},      {Method::kVQT, false},
                            {Method::kMT, false},      {Method::kTI, false},
                            {Method::kAdaptive, false}, {Method::kAdaptive, true}};
  for (const Config& config : configs) {
    Options options;
    options.method = config.method;
    options.enable_interpolation = config.interp;
    options.adaptation_interval = 2;  // several ADP trial rounds per stream
    auto serial = CompressTrajectory(traj, options);
    ASSERT_TRUE(serial.ok());
    auto serial_decoded = DecompressTrajectory(*serial);
    ASSERT_TRUE(serial_decoded.ok());

    for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      ThreadPool pool(threads);
      auto parallel = CompressTrajectoryParallel(traj, options, &pool);
      ASSERT_TRUE(parallel.ok());
      for (int axis = 0; axis < 3; ++axis) {
        EXPECT_EQ(serial->axes[axis], parallel->axes[axis])
            << MethodName(config.method) << (config.interp ? "+interp" : "")
            << " axis " << axis << " threads " << threads;
      }
      auto decoded = DecompressTrajectoryParallel(*parallel, &pool);
      ASSERT_TRUE(decoded.ok());
      ASSERT_EQ(decoded->num_snapshots(), serial_decoded->num_snapshots());
      for (size_t s = 0; s < decoded->num_snapshots(); ++s) {
        for (int axis = 0; axis < 3; ++axis) {
          EXPECT_EQ(decoded->snapshots[s].axes[axis],
                    serial_decoded->snapshots[s].axes[axis]);
        }
      }
    }
  }
}

TEST(ParallelTest, FieldParallelDecodeMatchesSequential) {
  Rng rng(7);
  std::vector<std::vector<double>> field(37, std::vector<double>(90));
  for (auto& s : field) {
    for (auto& v : s) v = rng.Uniform(-5.0, 5.0);
  }
  ThreadPool pool(4);
  for (Method method : {Method::kVQ, Method::kMT, Method::kTI}) {
    Options options;
    options.method = method;
    options.buffer_size = 5;  // several independently decodable blocks
    auto compressed = CompressField(field, options);
    ASSERT_TRUE(compressed.ok()) << MethodName(method);
    auto sequential = DecompressField(*compressed);
    ASSERT_TRUE(sequential.ok());
    // TI chains buffers, so this also covers the sequential fallback.
    auto parallel = DecompressFieldParallel(*compressed, &pool);
    ASSERT_TRUE(parallel.ok()) << MethodName(method);
    EXPECT_EQ(*sequential, *parallel) << MethodName(method);
  }
}

TEST(ParallelTest, DecodeAllRestartsPartialSequentialRead) {
  Rng rng(8);
  std::vector<std::vector<double>> field(20, std::vector<double>(40));
  for (auto& s : field) {
    for (auto& v : s) v = rng.Uniform(0.0, 4.0);
  }
  Options options;
  options.buffer_size = 4;
  auto compressed = CompressField(field, options);
  ASSERT_TRUE(compressed.ok());

  ThreadPool pool(2);
  auto decompressor = FieldDecompressor::Open(*compressed);
  ASSERT_TRUE(decompressor.ok());
  std::vector<double> snapshot;
  for (int i = 0; i < 3; ++i) {
    auto more = (*decompressor)->Next(&snapshot);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
  }
  // DecodeAll yields the whole stream regardless of the reads above, and
  // leaves the decompressor exhausted.
  auto all = (*decompressor)->DecodeAll(&pool);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 20u);
  auto more = (*decompressor)->Next(&snapshot);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(ParallelTest, EmptyTrajectoryIsError) {
  EXPECT_FALSE(CompressTrajectoryParallel(Trajectory(), Options()).ok());
}

TEST(ParallelTest, InvalidOptionsRejected) {
  const Trajectory traj = MakeTrajectory(3, 10, 3);
  Options options;
  options.error_bound = -1.0;
  EXPECT_FALSE(CompressTrajectoryParallel(traj, options).ok());
}

TEST(ParallelTest, MismatchedAxisStreamsRejected) {
  const Trajectory traj = MakeTrajectory(10, 50, 4);
  Options options;
  auto compressed = CompressTrajectoryParallel(traj, options);
  ASSERT_TRUE(compressed.ok());
  // Replace one axis with a stream of a different snapshot count.
  const Trajectory shorter = MakeTrajectory(5, 50, 5);
  auto other = CompressTrajectoryParallel(shorter, options);
  ASSERT_TRUE(other.ok());
  compressed->axes[2] = other->axes[2];
  EXPECT_FALSE(DecompressTrajectoryParallel(*compressed).ok());
}

}  // namespace
}  // namespace mdz::core
