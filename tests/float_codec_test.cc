#include <cctype>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "codec/fpc.h"
#include "codec/fpzip_like.h"
#include "codec/lossless.h"
#include "codec/zfp_like.h"
#include "util/rng.h"

namespace mdz::codec {
namespace {

std::vector<double> SmoothSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 10.0;
  for (size_t i = 0; i < n; ++i) {
    x += 0.01 * rng.Gaussian();
    v[i] = x + 0.3 * std::sin(0.01 * static_cast<double>(i));
  }
  return v;
}

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Uniform(-1e6, 1e6);
  return v;
}

std::vector<double> SpecialValues() {
  return {0.0,
          -0.0,
          1.0,
          -1.0,
          1e-308,          // subnormal territory
          -1e-308,
          1e308,
          -1e308,
          std::numeric_limits<double>::min(),
          std::numeric_limits<double>::denorm_min(),
          std::numeric_limits<double>::max(),
          3.141592653589793,
          -2.718281828459045};
}

// --- FPC ---------------------------------------------------------------------

void ExpectFpcRoundTrip(const std::vector<double>& values) {
  const std::vector<uint8_t> encoded = FpcCompress(values);
  std::vector<double> decoded;
  const Status s = FpcDecompress(encoded, &decoded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::memcmp(&decoded[i], &values[i], 8), 0) << "index " << i;
  }
}

TEST(FpcTest, EmptyInput) { ExpectFpcRoundTrip({}); }

TEST(FpcTest, SmoothSeriesBitExact) { ExpectFpcRoundTrip(SmoothSeries(10000, 1)); }

TEST(FpcTest, RandomSeriesBitExact) { ExpectFpcRoundTrip(RandomSeries(10000, 2)); }

TEST(FpcTest, SpecialValuesBitExact) { ExpectFpcRoundTrip(SpecialValues()); }

TEST(FpcTest, ConstantSeriesCompressesWell) {
  std::vector<double> values(10000, 42.0);
  const std::vector<uint8_t> encoded = FpcCompress(values);
  // FCM predicts repeats exactly: ~0.5-1.5 bytes/value.
  EXPECT_LT(encoded.size(), values.size() * 2);
  ExpectFpcRoundTrip(values);
}

TEST(FpcTest, RejectsBadTableLog) {
  std::vector<uint8_t> bytes = {0x01, 0x63};  // count=1, table_log=99
  std::vector<double> out;
  EXPECT_FALSE(FpcDecompress(bytes, &out).ok());
}

// --- fpzip-like --------------------------------------------------------------

void ExpectFpzipRoundTrip(const std::vector<double>& values) {
  const std::vector<uint8_t> encoded = FpzipLikeCompress(values);
  std::vector<double> decoded;
  const Status s = FpzipLikeDecompress(encoded, &decoded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::memcmp(&decoded[i], &values[i], 8), 0) << "index " << i;
  }
}

TEST(FpzipLikeTest, EmptyInput) { ExpectFpzipRoundTrip({}); }

TEST(FpzipLikeTest, SmoothSeriesBitExact) {
  ExpectFpzipRoundTrip(SmoothSeries(10000, 3));
}

TEST(FpzipLikeTest, RandomSeriesBitExact) {
  ExpectFpzipRoundTrip(RandomSeries(10000, 4));
}

TEST(FpzipLikeTest, SpecialValuesBitExact) {
  ExpectFpzipRoundTrip(SpecialValues());
}

TEST(FpzipLikeTest, NegativePositiveMixBitExact) {
  Rng rng(5);
  std::vector<double> values(5000);
  for (auto& v : values) v = rng.Gaussian() * 100.0;
  ExpectFpzipRoundTrip(values);
}

TEST(FpzipLikeTest, SmoothBeatsRandomInSize) {
  const auto smooth = FpzipLikeCompress(SmoothSeries(20000, 6));
  const auto random = FpzipLikeCompress(RandomSeries(20000, 7));
  EXPECT_LT(smooth.size(), random.size());
}

// --- zfp-like ----------------------------------------------------------------

TEST(ZfpReversibleTest, BitExactRoundTrips) {
  for (uint64_t seed : {10ull, 11ull}) {
    const std::vector<double> values = SmoothSeries(4096, seed);
    const std::vector<uint8_t> encoded = ZfpLikeCompressReversible(values);
    std::vector<double> decoded;
    ASSERT_TRUE(ZfpLikeDecompressReversible(encoded, &decoded).ok());
    ASSERT_EQ(decoded.size(), values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(std::memcmp(&decoded[i], &values[i], 8), 0);
    }
  }
}

TEST(ZfpReversibleTest, SpecialValues) {
  const std::vector<double> values = SpecialValues();
  const std::vector<uint8_t> encoded = ZfpLikeCompressReversible(values);
  std::vector<double> decoded;
  ASSERT_TRUE(ZfpLikeDecompressReversible(encoded, &decoded).ok());
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::memcmp(&decoded[i], &values[i], 8), 0);
  }
}

class ZfpAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(ZfpAccuracyTest, ErrorBoundHolds) {
  const double tolerance = GetParam();
  const std::vector<double> values = SmoothSeries(4099, 20);  // partial block
  const std::vector<uint8_t> encoded =
      ZfpLikeCompressFixedAccuracy(values, tolerance);
  std::vector<double> decoded;
  ASSERT_TRUE(ZfpLikeDecompressFixedAccuracy(encoded, &decoded).ok());
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_LE(std::fabs(decoded[i] - values[i]), tolerance)
        << "index " << i << " tol " << tolerance;
  }
}

INSTANTIATE_TEST_SUITE_P(Tolerances, ZfpAccuracyTest,
                         ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4, 1e-6));

TEST(ZfpAccuracyTest, LooserToleranceSmallerOutput) {
  const std::vector<double> values = SmoothSeries(8192, 21);
  const auto tight = ZfpLikeCompressFixedAccuracy(values, 1e-6);
  const auto loose = ZfpLikeCompressFixedAccuracy(values, 1e-2);
  EXPECT_LT(loose.size(), tight.size());
}

TEST(ZfpAccuracyTest, AllZeroBlocks) {
  std::vector<double> values(1000, 0.0);
  const auto encoded = ZfpLikeCompressFixedAccuracy(values, 1e-3);
  std::vector<double> decoded;
  ASSERT_TRUE(ZfpLikeDecompressFixedAccuracy(encoded, &decoded).ok());
  ASSERT_EQ(decoded.size(), values.size());
  for (double d : decoded) EXPECT_EQ(d, 0.0);
}

// --- Lossless facade ----------------------------------------------------------

class LosslessFacadeTest : public ::testing::TestWithParam<LosslessCodec> {};

TEST_P(LosslessFacadeTest, BitExactRoundTrip) {
  const LosslessCodec codec = GetParam();
  const std::vector<double> values = SmoothSeries(5000, 30);
  const std::vector<uint8_t> encoded = LosslessCompress(values, codec);
  std::vector<double> decoded;
  const Status s = LosslessDecompress(encoded, codec, &decoded);
  ASSERT_TRUE(s.ok()) << LosslessCodecName(codec) << ": " << s.ToString();
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::memcmp(&decoded[i], &values[i], 8), 0)
        << LosslessCodecName(codec) << " index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, LosslessFacadeTest,
    ::testing::ValuesIn(std::vector<LosslessCodec>(
        AllLosslessCodecs().begin(), AllLosslessCodecs().end())),
    [](const ::testing::TestParamInfo<LosslessCodec>& info) {
      std::string name(LosslessCodecName(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(LosslessFacadeTest, NamesAreUnique) {
  const auto codecs = AllLosslessCodecs();
  for (size_t i = 0; i < codecs.size(); ++i) {
    for (size_t j = i + 1; j < codecs.size(); ++j) {
      EXPECT_NE(LosslessCodecName(codecs[i]), LosslessCodecName(codecs[j]));
    }
  }
}

}  // namespace
}  // namespace mdz::codec
