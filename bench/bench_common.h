#ifndef MDZ_BENCH_BENCH_COMMON_H_
#define MDZ_BENCH_BENCH_COMMON_H_

// Shared harness for the paper-reproduction benches (one binary per paper
// table/figure; see DESIGN.md Section 5). Each bench prints the rows/series
// of its exhibit on stdout. Dataset sizes scale with MDZ_BENCH_SCALE
// (default 1.0; smaller = faster).

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/compressor_interface.h"
#include "core/mdz.h"
#include "core/trajectory.h"
#include "datagen/generators.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/cpu.h"
#include "util/timer.h"

namespace mdz::bench {

inline double SizeScale() {
  const char* env = std::getenv("MDZ_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  // Fail loudly on a malformed value: `std::atof` used to turn a typo like
  // "0.0.5" or "o.5" into 0 and silently fall back to full-size datasets —
  // the opposite of what the caller asked for.
  char* end = nullptr;
  errno = 0;
  const double scale = std::strtod(env, &end);
  if (end == env || *end != '\0' || errno == ERANGE || !std::isfinite(scale) ||
      scale <= 0.0) {
    std::fprintf(stderr,
                 "FATAL: MDZ_BENCH_SCALE=\"%s\" is not a positive finite "
                 "number\n",
                 env);
    std::exit(1);
  }
  return scale;
}

inline core::Trajectory LoadDataset(std::string_view name,
                                    double extra_scale = 1.0) {
  datagen::GeneratorOptions opts;
  opts.size_scale = SizeScale() * extra_scale;
  auto traj = datagen::MakeByName(name, opts);
  if (!traj.ok()) {
    std::fprintf(stderr, "FATAL: cannot generate %.*s: %s\n",
                 static_cast<int>(name.size()), name.data(),
                 traj.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(traj).value();
}

// Extracts one axis of a trajectory as the Field the baselines consume.
inline baselines::Field AxisField(const core::Trajectory& traj, int axis) {
  baselines::Field field;
  field.reserve(traj.num_snapshots());
  for (const auto& snap : traj.snapshots) field.push_back(snap.axes[axis]);
  return field;
}

// Simple fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int width = 12)
      : headers_(std::move(headers)), width_(width) {}

  void PrintHeader() const {
    for (const auto& h : headers_) std::printf("%-*s", width_, h.c_str());
    std::printf("\n");
    for (size_t i = 0; i < headers_.size() * static_cast<size_t>(width_); ++i) {
      std::printf("-");
    }
    std::printf("\n");
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%-*s", width_, c.c_str());
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  int width_;
};

inline std::string Fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

struct CompressionRun {
  size_t raw_bytes = 0;
  size_t compressed_bytes = 0;
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;

  double ratio() const {
    return compressed_bytes == 0
               ? 0.0
               : static_cast<double>(raw_bytes) / compressed_bytes;
  }
  double compress_mbps() const {
    return compress_seconds <= 0.0
               ? 0.0
               : static_cast<double>(raw_bytes) / 1e6 / compress_seconds;
  }
  double decompress_mbps() const {
    return decompress_seconds <= 0.0
               ? 0.0
               : static_cast<double>(raw_bytes) / 1e6 / decompress_seconds;
  }
};

// Compresses + decompresses one axis with a registry compressor; *decoded is
// optional.
inline CompressionRun RunCompressor(const baselines::LossyCompressorInfo& info,
                                    const baselines::Field& field,
                                    const baselines::CompressorConfig& config,
                                    baselines::Field* decoded = nullptr) {
  CompressionRun run;
  run.raw_bytes = field.size() * field[0].size() * sizeof(double);

  WallTimer timer;
  auto compressed = info.compress(field, config);
  run.compress_seconds = timer.ElapsedSeconds();
  if (!compressed.ok()) {
    std::fprintf(stderr, "compress failed (%.*s): %s\n",
                 static_cast<int>(info.name.size()), info.name.data(),
                 compressed.status().ToString().c_str());
    return run;
  }
  run.compressed_bytes = compressed->size();

  timer.Reset();
  auto result = info.decompress(*compressed);
  run.decompress_seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "decompress failed (%.*s): %s\n",
                 static_cast<int>(info.name.size()), info.name.data(),
                 result.status().ToString().c_str());
    return run;
  }
  if (decoded != nullptr) *decoded = std::move(result).value();
  return run;
}

// Compression ratio over all three axes.
inline double TrajectoryRatio(const baselines::LossyCompressorInfo& info,
                              const core::Trajectory& traj,
                              const baselines::CompressorConfig& config) {
  size_t raw = 0, compressed = 0;
  for (int axis = 0; axis < 3; ++axis) {
    const baselines::Field field = AxisField(traj, axis);
    auto out = info.compress(field, config);
    if (!out.ok()) return 0.0;
    raw += field.size() * field[0].size() * sizeof(double);
    compressed += out->size();
  }
  return compressed == 0 ? 0.0 : static_cast<double>(raw) / compressed;
}

// Finds a value-range-relative error bound at which `info` reaches the target
// compression ratio on `field` (paper Table VI / Fig. 14 use CR = 10).
// Bisection on log(eb); returns the achieved (eb, decoded field).
struct CrMatched {
  double error_bound = 0.0;
  double achieved_ratio = 0.0;
  baselines::Field decoded;
};

inline CrMatched MatchCompressionRatio(
    const baselines::LossyCompressorInfo& info, const baselines::Field& field,
    double target_ratio, uint32_t buffer_size) {
  const size_t raw = field.size() * field[0].size() * sizeof(double);
  double lo = 1e-8, hi = 1e-1;  // relative error bounds
  CrMatched best;
  for (int iter = 0; iter < 18; ++iter) {
    const double eb = std::sqrt(lo * hi);
    baselines::CompressorConfig config;
    config.error_bound = eb;
    config.buffer_size = buffer_size;
    auto compressed = info.compress(field, config);
    if (!compressed.ok()) break;
    const double ratio = static_cast<double>(raw) / compressed->size();
    if (best.error_bound == 0.0 ||
        std::fabs(ratio - target_ratio) <
            std::fabs(best.achieved_ratio - target_ratio)) {
      best.error_bound = eb;
      best.achieved_ratio = ratio;
      auto decoded = info.decompress(*compressed);
      if (decoded.ok()) best.decoded = std::move(decoded).value();
    }
    if (std::fabs(ratio - target_ratio) / target_ratio < 0.02) break;
    if (ratio < target_ratio) {
      lo = eb;  // need looser bound for more compression
    } else {
      hi = eb;
    }
  }
  return best;
}

// Writes the global metrics registry (the telemetry a bench accumulated
// while running with obs::SetEnabled(true)) as BENCH_<name>_metrics.json in
// the working directory, so bench output is machine-readable alongside the
// printed table. Returns the path; failures warn but don't kill the bench.
inline std::string EmitMetricsJson(const std::string& name) {
  const std::string path = "BENCH_" + name + "_metrics.json";
  const Status s =
      obs::WriteJsonFile(obs::MetricsRegistry::Global(), path);
  if (!s.ok()) {
    std::fprintf(stderr, "warning: cannot write %s: %s\n", path.c_str(),
                 s.ToString().c_str());
  }
  return path;
}

// --- mdz.bench.v1 -----------------------------------------------------------
//
// Every bench binary emits its headline numbers through one BenchReport so
// tools/bench_diff can compare any two runs without per-bench parsers:
//
//   {"schema":"mdz.bench.v1","bench":"fig9","scale":1,"build":{...},
//    "metrics":[{"name":"Copper-B/bs10/MDZ/cr","value":20.7,"unit":"x",
//                "repetitions":1}, ...]}
//
// Units carry the comparison semantics: "x" (compression ratio) and "MB/s"
// (throughput) are higher-is-better and gated by bench_diff; anything else
// ("s", "bytes", "1", ...) is informational. Metric names are stable
// dataset/config/compressor paths — bench_diff matches on them exactly.

struct BenchMetric {
  std::string name;
  double value = 0.0;
  std::string unit;
  int repetitions = 1;
};

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  void Add(const std::string& name, double value, const std::string& unit,
           int repetitions = 1) {
    metrics_.push_back(BenchMetric{name, value, unit, repetitions});
  }

  // Headline numbers of one compress/decompress cycle under `prefix`.
  void AddRun(const std::string& prefix, const CompressionRun& run,
              int repetitions = 1) {
    Add(prefix + "/cr", run.ratio(), "x", repetitions);
    Add(prefix + "/compress_mbps", run.compress_mbps(), "MB/s", repetitions);
    Add(prefix + "/decompress_mbps", run.decompress_mbps(), "MB/s",
        repetitions);
  }

  size_t size() const { return metrics_.size(); }

  std::string ToJson() const {
    std::string out = "{\"schema\":\"mdz.bench.v1\"";
    out += ",\"bench\":\"" + JsonEscape(bench_) + '"';
    out += ",\"scale\":" + JsonNumber(SizeScale());
    out += ",\"build\":" + obs::BuildInfoJson();
    // Runtime property, not build provenance: which SIMD variant the hot
    // kernels dispatched to. bench_diff flags baseline/run mismatches so a
    // throughput regression is not misread when the variants differ.
    out += ",\"simd\":\"";
    out += util::SimdVariantName(util::ActiveSimdVariant());
    out += '"';
    out += ",\"metrics\":[";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      if (i > 0) out += ',';
      const BenchMetric& m = metrics_[i];
      out += "{\"name\":\"" + JsonEscape(m.name) + '"';
      out += ",\"value\":" + JsonNumber(m.value);
      out += ",\"unit\":\"" + JsonEscape(m.unit) + '"';
      out += ",\"repetitions\":" + std::to_string(m.repetitions);
      out += '}';
    }
    out += "]}";
    return out;
  }

  // Writes BENCH_<bench>.json in the working directory (the layout
  // tools/bench_diff and tools/ci.sh expect). Failures warn but don't kill
  // the bench — the printed table is still the primary output.
  std::string Emit() const {
    const std::string path = "BENCH_" + bench_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return path;
    }
    const std::string json = ToJson() + "\n";
    if (std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
      std::fprintf(stderr, "warning: short write to %s\n", path.c_str());
    }
    std::fclose(f);
    return path;
  }

 private:
  // Shortest round-trip double; non-finite renders as null (bench_diff
  // treats null as absent).
  static std::string JsonNumber(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[64];
    for (int precision = 6; precision <= 17; ++precision) {
      std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
      double parsed = 0.0;
      std::sscanf(buf, "%lf", &parsed);
      if (parsed == v) break;
    }
    return buf;
  }

  static std::string JsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out += ' ';
      } else {
        out += c;
      }
    }
    return out;
  }

  std::string bench_;
  std::vector<BenchMetric> metrics_;
};

}  // namespace mdz::bench

#endif  // MDZ_BENCH_BENCH_COMMON_H_
