// Ablation: the VQ level-detection knobs — sample fraction, knee threshold
// and max level count (paper Section VI-A fixes these at 10%, "significant
// decrease" and 150). Reports the fitted level model quality and the VQ
// compression ratio on Copper-B.

#include "bench_common.h"
#include "cluster/kmeans1d.h"

int main() {
  std::printf("=== Ablation: VQ level detection knobs (Copper-B, x axis) ===\n\n");

  const mdz::core::Trajectory traj = mdz::bench::LoadDataset("Copper-B", 0.3);
  const auto field = mdz::bench::AxisField(traj, 0);
  const size_t raw = field.size() * field[0].size() * sizeof(double);

  mdz::bench::TablePrinter table({"Sample", "Knee", "MaxK", "FitK",
                                  "Lambda", "FitErr", "VQ_CR"},
                                 10);
  table.PrintHeader();

  mdz::bench::BenchReport report("ablation_levels");
  for (double sample : {0.01, 0.05, 0.10, 0.5}) {
    for (double knee : {0.5, 0.8, 0.9, 0.99}) {
      for (int max_k : {8, 50, 150}) {
        mdz::cluster::LevelFitOptions fit_options;
        fit_options.sample_fraction = sample;
        fit_options.knee_threshold = knee;
        fit_options.max_levels = max_k;

        auto fit = mdz::cluster::FitLevels(field[0], fit_options);
        if (!fit.ok()) continue;

        mdz::core::Options options;
        options.method = mdz::core::Method::kVQ;
        options.level_fit = fit_options;
        auto out = mdz::core::CompressField(field, options);
        if (!out.ok()) continue;

        table.PrintRow(
            {mdz::bench::Fmt(sample, 2), mdz::bench::Fmt(knee, 2),
             std::to_string(max_k), std::to_string(fit->num_levels),
             mdz::bench::Fmt(fit->lambda, 3),
             mdz::bench::Fmt(fit->fit_error, 4),
             mdz::bench::Fmt(static_cast<double>(raw) / out->size(), 1)});
        char knob_label[64];
        std::snprintf(knob_label, sizeof(knob_label),
                      "sample%g/knee%g/maxk%d", sample, knee, max_k);
        report.Add("Copper-B/" + std::string(knob_label) + "/vq_cr",
                   static_cast<double>(raw) / out->size(), "x");
      }
    }
  }
  report.Emit();
  std::printf(
      "\nExpected shape: the fitted lambda (and hence the VQ ratio) is\n"
      "insensitive to the sample fraction down to ~1%% and to the knee\n"
      "threshold across a wide band — the paper's 10%% / knee rule sits on a\n"
      "plateau. Capping K below the true level count hurts the fit.\n");
  return 0;
}
