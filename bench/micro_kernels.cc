// Micro-benchmarks (google-benchmark) of the hot kernels underlying MDZ:
// Huffman coding, the LZ dictionary coder, 1-D k-means level fitting, the
// linear quantizer and the full block codec.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "cluster/kmeans1d.h"
#include "codec/huffman.h"
#include "codec/lz.h"
#include "core/mdz.h"
#include "quant/quantizer.h"
#include "util/rng.h"

namespace {

std::vector<uint32_t> SkewedSymbols(size_t n, uint64_t seed) {
  mdz::Rng rng(seed);
  std::vector<uint32_t> symbols(n);
  for (auto& s : symbols) {
    uint32_t v = 512;
    while (v < 520 && rng.NextDouble() < 0.5) ++v;
    s = v;
  }
  return symbols;
}

void BM_HuffmanEncode(benchmark::State& state) {
  const auto symbols = SkewedSymbols(1 << 18, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdz::codec::HuffmanEncode(symbols, 1024));
  }
  state.SetItemsProcessed(state.iterations() * symbols.size());
}
BENCHMARK(BM_HuffmanEncode);

void BM_HuffmanDecode(benchmark::State& state) {
  const auto symbols = SkewedSymbols(1 << 18, 2);
  const auto encoded = mdz::codec::HuffmanEncode(symbols, 1024);
  std::vector<uint32_t> decoded;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdz::codec::HuffmanDecode(encoded, &decoded));
  }
  state.SetItemsProcessed(state.iterations() * symbols.size());
}
BENCHMARK(BM_HuffmanDecode);

void BM_LzCompress(benchmark::State& state) {
  mdz::Rng rng(3);
  std::vector<uint8_t> input(1 << 20);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<uint8_t>((i % 512 < 400) ? (i % 251)
                                                    : rng.UniformInt(256));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdz::codec::LzCompress(input));
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_LzCompress);

void BM_LzDecompress(benchmark::State& state) {
  mdz::Rng rng(4);
  std::vector<uint8_t> input(1 << 20);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<uint8_t>(i % 251);
  }
  const auto encoded = mdz::codec::LzCompress(input);
  std::vector<uint8_t> decoded;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdz::codec::LzDecompress(encoded, &decoded));
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_LzDecompress);

void BM_FitLevels(benchmark::State& state) {
  mdz::Rng rng(5);
  std::vector<double> data(100000);
  for (auto& d : data) {
    d = 1.5 * static_cast<double>(rng.UniformInt(40)) +
        rng.Gaussian(0.0, 0.05);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdz::cluster::FitLevels(data));
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_FitLevels);

void BM_Quantizer(benchmark::State& state) {
  mdz::Rng rng(6);
  std::vector<double> values(1 << 16), preds(1 << 16);
  for (size_t i = 0; i < values.size(); ++i) {
    preds[i] = rng.Uniform(0.0, 100.0);
    values[i] = preds[i] + rng.Gaussian(0.0, 0.01);
  }
  const mdz::quant::LinearQuantizer q(1e-3, 1024);
  for (auto _ : state) {
    uint64_t sum = 0;
    double dec;
    for (size_t i = 0; i < values.size(); ++i) {
      sum += q.Encode(values[i], preds[i], &dec);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_Quantizer);

void BM_MdzCompressField(benchmark::State& state) {
  mdz::Rng rng(7);
  const size_t m = 20, n = 50000;
  std::vector<std::vector<double>> field(m, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) field[0][i] = rng.Uniform(0.0, 50.0);
  for (size_t s = 1; s < m; ++s) {
    for (size_t i = 0; i < n; ++i) {
      field[s][i] = field[s - 1][i] + rng.Gaussian(0.0, 0.005);
    }
  }
  mdz::core::Options options;
  options.method = static_cast<mdz::core::Method>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdz::core::CompressField(field, options));
  }
  state.SetBytesProcessed(state.iterations() * m * n * sizeof(double));
}
BENCHMARK(BM_MdzCompressField)
    ->Arg(0)   // VQ
    ->Arg(1)   // VQT
    ->Arg(2)   // MT
    ->Arg(3);  // ADP

// Console output as usual, plus every completed run captured into the shared
// mdz.bench.v1 report so micro-kernel numbers flow through the same
// bench_diff gate as the figure benches.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(mdz::bench::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const std::string name = run.benchmark_name();
      const int reps = static_cast<int>(run.iterations);
      report_->Add(name + "/real_time_ns", run.GetAdjustedRealTime(), "ns",
                   reps);
      auto it = run.counters.find("bytes_per_second");
      if (it != run.counters.end()) {
        report_->Add(name + "/throughput",
                     static_cast<double>(it->second) / 1e6, "MB/s", reps);
      }
      it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        report_->Add(name + "/items_per_second",
                     static_cast<double>(it->second), "items/s", reps);
      }
    }
  }

 private:
  mdz::bench::BenchReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  mdz::bench::BenchReport report("micro_kernels");
  CapturingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.Emit();
  return 0;
}
