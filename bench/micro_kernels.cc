// Micro-benchmarks (google-benchmark) of the hot kernels underlying MDZ:
// Huffman coding, the LZ dictionary coder, 1-D k-means level fitting, the
// linear quantizer and the full block codec.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "cluster/kmeans1d.h"
#include "codec/huffman.h"
#include "codec/lz.h"
#include "core/block_kernels.h"
#include "core/mdz.h"
#include "quant/quantizer.h"
#include "util/cpu.h"
#include "util/rng.h"

namespace {

std::vector<uint32_t> SkewedSymbols(size_t n, uint64_t seed) {
  mdz::Rng rng(seed);
  std::vector<uint32_t> symbols(n);
  for (auto& s : symbols) {
    uint32_t v = 512;
    while (v < 520 && rng.NextDouble() < 0.5) ++v;
    s = v;
  }
  return symbols;
}

void BM_HuffmanEncode(benchmark::State& state) {
  const auto symbols = SkewedSymbols(1 << 18, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdz::codec::HuffmanEncode(symbols, 1024));
  }
  state.SetItemsProcessed(state.iterations() * symbols.size());
}
BENCHMARK(BM_HuffmanEncode);

void BM_HuffmanDecode(benchmark::State& state) {
  const auto symbols = SkewedSymbols(1 << 18, 2);
  const auto encoded = mdz::codec::HuffmanEncode(symbols, 1024);
  std::vector<uint32_t> decoded;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdz::codec::HuffmanDecode(encoded, &decoded));
  }
  state.SetItemsProcessed(state.iterations() * symbols.size());
}
BENCHMARK(BM_HuffmanDecode);

void BM_LzCompress(benchmark::State& state) {
  mdz::Rng rng(3);
  std::vector<uint8_t> input(1 << 20);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<uint8_t>((i % 512 < 400) ? (i % 251)
                                                    : rng.UniformInt(256));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdz::codec::LzCompress(input));
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_LzCompress);

void BM_LzDecompress(benchmark::State& state) {
  mdz::Rng rng(4);
  std::vector<uint8_t> input(1 << 20);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<uint8_t>(i % 251);
  }
  const auto encoded = mdz::codec::LzCompress(input);
  std::vector<uint8_t> decoded;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdz::codec::LzDecompress(encoded, &decoded));
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_LzDecompress);

void BM_FitLevels(benchmark::State& state) {
  mdz::Rng rng(5);
  std::vector<double> data(100000);
  for (auto& d : data) {
    d = 1.5 * static_cast<double>(rng.UniformInt(40)) +
        rng.Gaussian(0.0, 0.05);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdz::cluster::FitLevels(data));
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_FitLevels);

void BM_Quantizer(benchmark::State& state) {
  mdz::Rng rng(6);
  std::vector<double> values(1 << 16), preds(1 << 16);
  for (size_t i = 0; i < values.size(); ++i) {
    preds[i] = rng.Uniform(0.0, 100.0);
    values[i] = preds[i] + rng.Gaussian(0.0, 0.01);
  }
  const mdz::quant::LinearQuantizer q(1e-3, 1024);
  for (auto _ : state) {
    uint64_t sum = 0;
    double dec;
    for (size_t i = 0; i < values.size(); ++i) {
      sum += q.Encode(values[i], preds[i], &dec);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_Quantizer);

void BM_MdzCompressField(benchmark::State& state) {
  mdz::Rng rng(7);
  const size_t m = 20, n = 50000;
  std::vector<std::vector<double>> field(m, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) field[0][i] = rng.Uniform(0.0, 50.0);
  for (size_t s = 1; s < m; ++s) {
    for (size_t i = 0; i < n; ++i) {
      field[s][i] = field[s - 1][i] + rng.Gaussian(0.0, 0.005);
    }
  }
  mdz::core::Options options;
  options.method = static_cast<mdz::core::Method>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdz::core::CompressField(field, options));
  }
  state.SetBytesProcessed(state.iterations() * m * n * sizeof(double));
}
BENCHMARK(BM_MdzCompressField)
    ->Arg(0)   // VQ
    ->Arg(1)   // VQT
    ->Arg(2)   // MT
    ->Arg(3);  // ADP

// --- Per-variant kernel benches --------------------------------------------
// One entry per registered BlockKernels variant (scalar always; avx2/neon
// when the host supports them), named e.g. "BM_QuantizeRow/avx2". Registered
// dynamically in main() since the variant list is a runtime property.

using mdz::core::internal::BlockKernels;

void BM_QuantizeRow(benchmark::State& state, const BlockKernels* kernels) {
  mdz::Rng rng(8);
  const size_t n = 1 << 16;
  std::vector<double> values(n), preds(n), decoded(n);
  std::vector<uint32_t> codes(n);
  for (size_t i = 0; i < n; ++i) {
    preds[i] = rng.Uniform(0.0, 100.0);
    values[i] = preds[i] + rng.Gaussian(0.0, 0.01);
  }
  const mdz::quant::LinearQuantizer q(1e-3, 1024);
  for (auto _ : state) {
    kernels->quantize_row(q, values.data(), preds.data(), n, codes.data(),
                          decoded.data());
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_DequantizeRow(benchmark::State& state, const BlockKernels* kernels) {
  mdz::Rng rng(9);
  const size_t n = 1 << 16;
  std::vector<double> values(n), preds(n), decoded(n);
  std::vector<uint32_t> codes(n);
  for (size_t i = 0; i < n; ++i) {
    preds[i] = rng.Uniform(0.0, 100.0);
    values[i] = preds[i] + rng.Gaussian(0.0, 0.0005);  // escape-free rows
  }
  const mdz::quant::LinearQuantizer q(1e-3, 1024);
  kernels->quantize_row(q, values.data(), preds.data(), n, codes.data(),
                        decoded.data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels->dequantize_row(q, codes.data(), preds.data(), n,
                                decoded.data()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_VqPredict(benchmark::State& state, const BlockKernels* kernels) {
  mdz::Rng rng(10);
  const size_t n = 1 << 16;
  std::vector<double> values(n), levels(n), preds(n);
  for (auto& v : values) {
    v = 1.5 * static_cast<double>(rng.UniformInt(40)) +
        rng.Gaussian(0.0, 0.05);
  }
  for (auto _ : state) {
    kernels->vq_predict(values.data(), n, 0.25, 1.5, levels.data(),
                        preds.data());
    benchmark::DoNotOptimize(preds.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_Transpose(benchmark::State& state, const BlockKernels* kernels) {
  mdz::Rng rng(11);
  const size_t rows = 20, cols = 50000;
  std::vector<uint32_t> in(rows * cols), out(rows * cols);
  for (auto& v : in) v = rng.UniformInt(1024);
  for (auto _ : state) {
    kernels->transpose(in.data(), rows, cols, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * in.size() * sizeof(uint32_t));
}

// Huffman decode and LZ compress dispatch internally on the active variant,
// so these benches pin it for the duration of the run.
void BM_HuffmanDecodeVariant(benchmark::State& state,
                             mdz::util::SimdVariant variant) {
  const auto previous = mdz::util::ActiveSimdVariant();
  mdz::util::SetSimdVariant(variant);
  const auto symbols = SkewedSymbols(1 << 18, 2);
  const auto encoded = mdz::codec::HuffmanEncode(symbols, 1024);
  std::vector<uint32_t> decoded;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdz::codec::HuffmanDecode(encoded, &decoded));
  }
  state.SetItemsProcessed(state.iterations() * symbols.size());
  mdz::util::SetSimdVariant(previous);
}

void BM_LzCompressVariant(benchmark::State& state,
                          mdz::util::SimdVariant variant) {
  const auto previous = mdz::util::ActiveSimdVariant();
  mdz::util::SetSimdVariant(variant);
  mdz::Rng rng(12);
  std::vector<uint8_t> input(1 << 20);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<uint8_t>((i % 512 < 400) ? (i % 251)
                                                    : rng.UniformInt(256));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mdz::codec::LzCompress(input));
  }
  state.SetBytesProcessed(state.iterations() * input.size());
  mdz::util::SetSimdVariant(previous);
}

void RegisterVariantBenches() {
  for (const BlockKernels* kernels :
       mdz::core::internal::RegisteredBlockKernels()) {
    const std::string suffix = "/" + std::string(kernels->name);
    benchmark::RegisterBenchmark(("BM_QuantizeRow" + suffix).c_str(),
                                 BM_QuantizeRow, kernels);
    benchmark::RegisterBenchmark(("BM_DequantizeRow" + suffix).c_str(),
                                 BM_DequantizeRow, kernels);
    benchmark::RegisterBenchmark(("BM_VqPredict" + suffix).c_str(),
                                 BM_VqPredict, kernels);
    benchmark::RegisterBenchmark(("BM_Transpose" + suffix).c_str(),
                                 BM_Transpose, kernels);
    benchmark::RegisterBenchmark(("BM_HuffmanDecodeV" + suffix).c_str(),
                                 BM_HuffmanDecodeVariant, kernels->variant);
    benchmark::RegisterBenchmark(("BM_LzCompressV" + suffix).c_str(),
                                 BM_LzCompressVariant, kernels->variant);
  }
}

// Console output as usual, plus every completed run captured into the shared
// mdz.bench.v1 report so micro-kernel numbers flow through the same
// bench_diff gate as the figure benches.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(mdz::bench::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const std::string name = run.benchmark_name();
      const int reps = static_cast<int>(run.iterations);
      report_->Add(name + "/real_time_ns", run.GetAdjustedRealTime(), "ns",
                   reps);
      auto it = run.counters.find("bytes_per_second");
      if (it != run.counters.end()) {
        report_->Add(name + "/throughput",
                     static_cast<double>(it->second) / 1e6, "MB/s", reps);
      }
      it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        report_->Add(name + "/items_per_second",
                     static_cast<double>(it->second), "items/s", reps);
      }
    }
  }

 private:
  mdz::bench::BenchReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  RegisterVariantBenches();
  mdz::bench::BenchReport report("micro_kernels");
  CapturingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.Emit();
  return 0;
}
