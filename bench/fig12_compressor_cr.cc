// Paper Fig. 12: compression ratio of all lossy compressors (SZ2, ASN, TNG,
// HRTC, MDB, LFZip, MDZ) on all eight MD datasets, at buffer sizes 10 and
// 100, eps = 1e-3. MDZ must be the best on every dataset.

#include "bench_common.h"

int main() {
  std::printf(
      "=== Paper Fig. 12: lossy compressor CR across datasets (eps=1e-3) ===\n\n");

  std::vector<std::string> headers = {"Dataset", "BS"};
  for (const auto& info : mdz::baselines::PaperLossyCompressors()) {
    headers.emplace_back(info.name);
  }
  headers.emplace_back("MDZ_gain%");
  mdz::bench::TablePrinter table(headers, 10);
  table.PrintHeader();

  mdz::bench::BenchReport report("fig12");
  for (const auto& dataset : mdz::datagen::AllMdDatasets()) {
    const mdz::core::Trajectory traj =
        mdz::bench::LoadDataset(dataset.name, 0.5);
    for (uint32_t bs : {10u, 100u}) {
      mdz::baselines::CompressorConfig config;
      config.error_bound = 1e-3;
      config.buffer_size = bs;

      std::vector<std::string> row = {std::string(dataset.name),
                                      std::to_string(bs)};
      double mdz_ratio = 0.0;
      double best_baseline = 0.0;
      for (const auto& info : mdz::baselines::PaperLossyCompressors()) {
        const double ratio = mdz::bench::TrajectoryRatio(info, traj, config);
        row.push_back(mdz::bench::Fmt(ratio, 1));
        report.Add(std::string(dataset.name) + "/bs" + std::to_string(bs) +
                       "/" + std::string(info.name) + "/cr",
                   ratio, "x");
        if (info.name == "MDZ") {
          mdz_ratio = ratio;
        } else {
          best_baseline = std::max(best_baseline, ratio);
        }
      }
      row.push_back(mdz::bench::Fmt(
          best_baseline > 0.0 ? 100.0 * (mdz_ratio / best_baseline - 1.0)
                              : 0.0,
          0));
      table.PrintRow(row);
    }
  }
  report.Emit();
  std::printf(
      "\nExpected shape (paper): MDZ has the highest CR on every dataset and\n"
      "buffer size; MDB stays in the 1-6x range; the MDZ gain over the\n"
      "second-best ranges from a few %% (ADK) to >100%% (Copper-B, LJ).\n");
  return 0;
}
