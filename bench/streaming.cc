// Streaming pipeline guard (not a paper exhibit): trajectory-file ->
// archive-writer streaming compression vs the in-memory path, streaming
// decompression back to a trajectory file, and in-situ append via
// ArchiveWriter::Reopen. The gated "x" metrics are exact invariants — the
// streamed bytes must equal the one-shot bytes, an append must reproduce the
// one-shot compression of the concatenated input, and the pump must never
// hold more than two buffers of snapshots — so any drop below baseline is a
// real regression, not noise.

#include <cstdio>
#include <string>
#include <utility>

#include "archive/writer.h"
#include "bench_common.h"
#include "core/streaming.h"
#include "core/thread_pool.h"
#include "io/streaming.h"
#include "io/trajectory_io.h"

namespace {

using mdz::core::StreamStats;

[[noreturn]] void Fatal(const std::string& what, const mdz::Status& status) {
  std::fprintf(stderr, "FATAL: %s: %s\n", what.c_str(),
               status.ToString().c_str());
  std::exit(1);
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string bytes(size > 0 ? static_cast<size_t>(size) : 0, '\0');
  if (!bytes.empty() && std::fread(bytes.data(), 1, bytes.size(), f) !=
                            bytes.size()) {
    bytes.clear();
  }
  std::fclose(f);
  return bytes;
}

size_t FileSize(const std::string& path) { return ReadFileBytes(path).size(); }

// Pumps `input` into a fresh archive at `out`, returning the pump stats.
StreamStats StreamCompress(const std::string& input, const std::string& out,
                           const mdz::core::Options& options,
                           mdz::core::ThreadPool* pool) {
  auto reader = mdz::io::TrajectoryReader::Open(input);
  if (!reader.ok()) Fatal("open " + input, reader.status());
  auto writer = mdz::archive::ArchiveWriter::Create(
      out, (*reader)->num_particles(), options, pool);
  if (!writer.ok()) Fatal("create " + out, writer.status());
  mdz::io::ArchiveSink sink(std::move(writer).value());
  mdz::io::TrajectoryReader* source = reader->get();
  sink.set_before_finish([source](mdz::archive::ArchiveWriter& w) {
    w.SetName(source->name());
    w.SetBox(source->box());
  });
  mdz::core::StreamOptions stream_options;
  stream_options.queue_capacity = options.buffer_size;
  auto stats = mdz::core::StreamingCompressor::Pump(source, &sink,
                                                    stream_options);
  if (!stats.ok()) Fatal("pump " + input, stats.status());
  return *stats;
}

}  // namespace

int main() {
  std::printf(
      "=== Streaming pipeline: file -> archive pump vs in-memory path "
      "(eps=1e-3, bs=10, ADP) ===\n\n");

  mdz::bench::TablePrinter table({"Dataset", "Oneshot MB/s", "Stream MB/s",
                                  "Append MB/s", "Peak snap", "CR"},
                                 14);
  table.PrintHeader();

  mdz::bench::BenchReport report("streaming");
  const uint32_t kBufferSize = 10;

  for (const char* dataset : {"Copper-B", "LJ"}) {
    const mdz::core::Trajectory traj = mdz::bench::LoadDataset(dataset);
    const size_t raw_bytes = traj.raw_bytes();
    // Trim to whole buffers so the sealed archive is appendable.
    const size_t whole = traj.num_snapshots() / kBufferSize * kBufferSize;

    mdz::core::Options options;
    options.error_bound = 1e-3;
    options.buffer_size = kBufferSize;

    const std::string prefix = "BENCH_streaming_" + std::string(dataset);
    const std::string input = prefix + ".mdtraj";
    const mdz::Status ws = mdz::io::WriteBinaryTrajectory(traj, input);
    if (!ws.ok()) Fatal("write " + input, ws);

    // In-memory reference: whole trajectory resident, then one archive write.
    const std::string oneshot = prefix + ".oneshot.mdza";
    mdz::WallTimer oneshot_timer;
    auto compressed = mdz::core::CompressTrajectory(traj, options);
    if (!compressed.ok()) Fatal("compress", compressed.status());
    const mdz::Status vs =
        mdz::archive::WriteV2(*compressed, traj.name, traj.box, oneshot);
    if (!vs.ok()) Fatal("write " + oneshot, vs);
    const double oneshot_seconds = oneshot_timer.ElapsedSeconds();

    // Streaming path over the same bytes.
    mdz::core::ThreadPool pool(4);
    const std::string streamed = prefix + ".streamed.mdza";
    mdz::WallTimer stream_timer;
    const StreamStats stats = StreamCompress(input, streamed, options, &pool);
    const double stream_seconds = stream_timer.ElapsedSeconds();

    const std::string oneshot_bytes = ReadFileBytes(oneshot);
    const bool identical =
        !oneshot_bytes.empty() && oneshot_bytes == ReadFileBytes(streamed);
    const bool bounded = stats.peak_in_flight <= 2 * kBufferSize;

    // Append: seal the first half (whole buffers), stream the rest in, and
    // require the regrown file to reproduce the streamed/one-shot bytes.
    const std::string head_input = prefix + ".head.mdtraj";
    const std::string tail_input = prefix + ".tail.mdtraj";
    const size_t head = whole / 2 / kBufferSize * kBufferSize;
    mdz::core::Trajectory part;
    part.name = traj.name;
    part.box = traj.box;
    part.snapshots.assign(traj.snapshots.begin(),
                          traj.snapshots.begin() + head);
    if (!mdz::io::WriteBinaryTrajectory(part, head_input).ok()) std::exit(1);
    part.snapshots.assign(traj.snapshots.begin() + head,
                          traj.snapshots.begin() + whole);
    if (!mdz::io::WriteBinaryTrajectory(part, tail_input).ok()) std::exit(1);

    const std::string grown = prefix + ".grown.mdza";
    StreamCompress(head_input, grown, options, &pool);
    mdz::WallTimer append_timer;
    {
      auto writer = mdz::archive::ArchiveWriter::Reopen(grown, options, &pool);
      if (!writer.ok()) Fatal("reopen " + grown, writer.status());
      auto reader = mdz::io::TrajectoryReader::Open(tail_input);
      if (!reader.ok()) Fatal("open " + tail_input, reader.status());
      mdz::io::ArchiveSink sink(std::move(writer).value());
      mdz::core::StreamOptions stream_options;
      stream_options.queue_capacity = options.buffer_size;
      auto astats = mdz::core::StreamingCompressor::Pump(reader->get(), &sink,
                                                         stream_options);
      if (!astats.ok()) Fatal("append pump", astats.status());
    }
    const double append_seconds = append_timer.ElapsedSeconds();
    const size_t tail_bytes = (whole - head) * traj.num_particles() * 3 * 8;

    // The grown archive must equal a one-shot compress of the whole-buffer
    // prefix (== the streamed file when the trajectory divides evenly).
    bool append_identical;
    if (whole == traj.num_snapshots()) {
      append_identical = ReadFileBytes(grown) == oneshot_bytes;
    } else {
      part.snapshots.assign(traj.snapshots.begin(),
                            traj.snapshots.begin() + whole);
      auto ref = mdz::core::CompressTrajectory(part, options);
      if (!ref.ok()) Fatal("compress prefix", ref.status());
      const std::string ref_path = prefix + ".ref.mdza";
      if (!mdz::archive::WriteV2(*ref, part.name, part.box, ref_path).ok()) {
        std::exit(1);
      }
      append_identical = ReadFileBytes(grown) == ReadFileBytes(ref_path);
      std::remove(ref_path.c_str());
    }

    const double cr = static_cast<double>(raw_bytes) / FileSize(streamed);
    const auto mbps = [](size_t bytes, double seconds) {
      return seconds <= 0.0 ? 0.0 : bytes / 1e6 / seconds;
    };

    table.PrintRow({dataset, mdz::bench::Fmt(mbps(raw_bytes, oneshot_seconds), 1),
                    mdz::bench::Fmt(mbps(raw_bytes, stream_seconds), 1),
                    mdz::bench::Fmt(mbps(tail_bytes, append_seconds), 1),
                    std::to_string(stats.peak_in_flight),
                    mdz::bench::Fmt(cr, 2)});

    report.Add(std::string(dataset) + "/oneshot_mbps",
               mbps(raw_bytes, oneshot_seconds), "MB/s");
    report.Add(std::string(dataset) + "/stream_mbps",
               mbps(raw_bytes, stream_seconds), "MB/s");
    report.Add(std::string(dataset) + "/append_mbps",
               mbps(tail_bytes, append_seconds), "MB/s");
    report.Add(std::string(dataset) + "/cr", cr, "x");
    // Exact invariants, gated at unit "x": 1 = holds, 0 = broken.
    report.Add(std::string(dataset) + "/stream_equals_oneshot",
               identical ? 1.0 : 0.0, "x");
    report.Add(std::string(dataset) + "/append_equals_oneshot",
               append_identical ? 1.0 : 0.0, "x");
    report.Add(std::string(dataset) + "/peak_within_two_buffers",
               bounded ? 1.0 : 0.0, "x");

    for (const std::string& path :
         {input, oneshot, streamed, head_input, tail_input, grown}) {
      std::remove(path.c_str());
    }
  }
  report.Emit();
  std::printf(
      "\nExpected shape: the streamed archive is byte-identical to the\n"
      "one-shot path at a comparable throughput, append reproduces one-shot\n"
      "compression of the concatenated input, and the pump never holds more\n"
      "than two buffers of snapshots however the threads interleave.\n");
  return 0;
}
