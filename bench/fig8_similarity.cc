// Paper Fig. 8 (and Eq. 2): similarity of each snapshot to snapshot 0 —
// the fraction of atoms whose relative position change stays below tau.
// High, flat curves motivate MT's initial-snapshot predictor.

#include "analysis/metrics.h"
#include "bench_common.h"

int main() {
  std::printf("=== Paper Fig. 8: snapshot similarity with snapshot 0 ===\n\n");

  const double tau = 0.01;
  std::printf("tau = %.3f; snapshots normalized to 10 sample points\n\n", tau);

  mdz::bench::TablePrinter table({"Dataset", "s=10%", "s=30%", "s=50%",
                                  "s=70%", "s=100%"},
                                 11);
  table.PrintHeader();

  mdz::bench::BenchReport report("fig8");
  for (const char* name :
       {"Copper-A", "Copper-B", "Helium-A", "Helium-B", "ADK", "IFABP", "Pt",
        "LJ"}) {
    const mdz::core::Trajectory traj = mdz::bench::LoadDataset(name, 0.3);
    const auto& s0 = traj.snapshots[0].axes[0];
    std::vector<std::string> row = {traj.name};
    for (double frac : {0.1, 0.3, 0.5, 0.7, 1.0}) {
      const size_t s = std::min(traj.num_snapshots() - 1,
                                static_cast<size_t>(
                                    frac * (traj.num_snapshots() - 1)));
      const double similarity = mdz::analysis::SimilarityToInitial(
          s0, traj.snapshots[s].axes[0], tau);
      row.push_back(mdz::bench::Fmt(similarity, 3));
      char frac_label[32];
      std::snprintf(frac_label, sizeof(frac_label), "s%.0f", 100.0 * frac);
      report.Add(std::string(name) + "/" + frac_label + "/similarity",
                 similarity, "1");
    }
    table.PrintRow(row);
  }
  report.Emit();
  std::printf(
      "\nExpected shape (paper): Copper-A and Pt stay near 1.0 across the\n"
      "whole run (snapshot-0 prediction pays off); protein sets decay fast.\n");
  return 0;
}
