// Paper Table IV: SZ2 in 1D vs 2D mode (BS=10, eps=1e-3) on Pt, LJ and
// Helium-A, per axis. The 2D mode exploits time and space smoothness
// simultaneously and should show up to ~2-3x higher ratios.

#include "baselines/sz2.h"
#include "bench_common.h"

int main() {
  std::printf("=== Paper Table IV: SZ2 1D vs 2D mode (BS=10, eps=1e-3) ===\n\n");

  mdz::bench::TablePrinter table({"Dataset", "Axis", "1D_CR", "2D_CR"}, 12);
  table.PrintHeader();

  mdz::bench::BenchReport report("table4");
  for (const char* name : {"Pt", "LJ", "Helium-A"}) {
    const mdz::core::Trajectory traj = mdz::bench::LoadDataset(name);
    for (int axis = 0; axis < 3; ++axis) {
      const auto field = mdz::bench::AxisField(traj, axis);
      const size_t raw = field.size() * field[0].size() * sizeof(double);
      mdz::baselines::CompressorConfig config;
      config.error_bound = 1e-3;
      config.buffer_size = 10;

      double ratios[2] = {0.0, 0.0};
      const mdz::baselines::Sz2Mode modes[2] = {mdz::baselines::Sz2Mode::k1D,
                                                mdz::baselines::Sz2Mode::k2D};
      for (int m = 0; m < 2; ++m) {
        auto compressed = mdz::baselines::Sz2Compress(field, config, modes[m]);
        if (compressed.ok()) {
          ratios[m] = static_cast<double>(raw) / compressed->size();
        }
      }
      table.PrintRow({traj.name, std::string(1, "xyz"[axis]),
                      mdz::bench::Fmt(ratios[0], 2),
                      mdz::bench::Fmt(ratios[1], 2)});
      const std::string prefix =
          std::string(name) + "/" + std::string(1, "xyz"[axis]) + "/SZ2";
      report.Add(prefix + "/1d/cr", ratios[0], "x");
      report.Add(prefix + "/2d/cr", ratios[1], "x");
    }
  }
  report.Emit();
  std::printf(
      "\nExpected shape (paper): 2D mode reaches up to ~2-3x the 1D ratio on\n"
      "temporally smooth data (Pt), smaller gains elsewhere.\n");
  return 0;
}
