// Paper Fig. 3: spatial patterns of atom position data. Prints a short
// window of the x-axis of snapshot 0 for six datasets (the series the paper
// plots) plus a spatial-roughness summary.

#include "analysis/characterize.h"
#include "bench_common.h"

int main() {
  std::printf("=== Paper Fig. 3: spatial correlations in atom position data ===\n\n");

  mdz::bench::BenchReport report("fig3");
  for (const char* name :
       {"Copper-B", "ADK", "Helium-A", "Helium-B", "Pt", "LJ"}) {
    const mdz::core::Trajectory traj = mdz::bench::LoadDataset(name, 0.3);
    const auto& x = traj.snapshots[0].axes[0];
    std::printf("--- %s (N=%zu) ---\n", traj.name.c_str(),
                traj.num_particles());
    std::printf("x[0..39]: ");
    for (size_t i = 0; i < 40 && i < x.size(); ++i) {
      std::printf("%.2f ", x[i]);
    }
    const double roughness = mdz::analysis::SpatialRoughness(x);
    std::printf("\nspatial roughness (mean |dx| / range): %.4f\n\n", roughness);
    report.Add(std::string(name) + "/spatial_roughness", roughness, "1");
  }
  report.Emit();
  std::printf(
      "Expected shape (paper): crystalline sets (Copper-B, Helium-B) show\n"
      "stable zigzag level patterns; Pt shows stair-wise plateaus; ADK looks\n"
      "random; LJ is erratic within the box.\n");
  return 0;
}
