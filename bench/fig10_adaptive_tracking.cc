// Paper Fig. 10: per-buffer compression ratio of VQ / VQT / MT / ADP over a
// long simulation whose best method changes mid-run. ADP re-evaluates
// periodically and must track the winner across the regime switch.

#include "bench_common.h"
#include "core/mdz.h"
#include "util/rng.h"

namespace {

// A regime-switching field: the first half is extremely smooth in time (MT
// territory); in the second half the atoms vibrate independently around
// their lattice levels (VQ/VQT territory). This mirrors the paper's Copper-B
// axis where the winner flips around snapshot 400.
std::vector<std::vector<double>> RegimeSwitchField(size_t m, size_t n) {
  mdz::Rng rng(42);
  std::vector<int> level(n);
  for (size_t i = 0; i < n; ++i) level[i] = static_cast<int>(i % 24);
  std::vector<std::vector<double>> field(m, std::vector<double>(n));
  std::vector<double> vib(n, 0.0);
  for (size_t i = 0; i < n; ++i) vib[i] = rng.Gaussian(0.0, 0.05);
  for (size_t s = 0; s < m; ++s) {
    const bool smooth = s < m / 2;
    for (size_t i = 0; i < n; ++i) {
      if (s > 0) {
        if (smooth) {
          vib[i] += rng.Gaussian(0.0, 0.004);  // slow drift
        } else {
          vib[i] = rng.Gaussian(0.0, 0.05);  // uncorrelated vibration
        }
      }
      field[s][i] = 1.5 * level[i] + vib[i];
    }
  }
  return field;
}

}  // namespace

int main() {
  std::printf(
      "=== Paper Fig. 10: per-buffer CR; ADP tracks the best method across a\n"
      "    regime switch at the midpoint (BS=10) ===\n\n");

  const size_t m = static_cast<size_t>(600 * mdz::bench::SizeScale());
  const size_t n = 2000;
  const auto field = RegimeSwitchField(std::max<size_t>(m, 100), n);

  mdz::bench::TablePrinter table(
      {"Buffer", "VQ_CR", "VQT_CR", "MT_CR", "ADP_CR", "ADP_method"}, 12);
  table.PrintHeader();

  struct Tracker {
    std::unique_ptr<mdz::core::FieldCompressor> compressor;
    size_t last_output = 0;
  };
  std::vector<std::pair<std::string, Tracker>> trackers;
  for (auto method : {mdz::core::Method::kVQ, mdz::core::Method::kVQT,
                      mdz::core::Method::kMT, mdz::core::Method::kAdaptive}) {
    mdz::core::Options options;
    options.method = method;
    options.buffer_size = 10;
    options.adaptation_interval = 5;  // re-evaluate every 5 buffers
    auto compressor = mdz::core::FieldCompressor::Create(n, options);
    if (!compressor.ok()) return 1;
    trackers.emplace_back(std::string(mdz::core::MethodName(method)),
                          Tracker{std::move(compressor).value(), 0});
  }

  const size_t buffer_bytes = 10 * n * sizeof(double);
  size_t buffer_index = 0;
  for (size_t s = 0; s < field.size(); ++s) {
    for (auto& [name, tracker] : trackers) {
      if (!tracker.compressor->Append(field[s]).ok()) return 1;
    }
    if ((s + 1) % 10 != 0) continue;
    ++buffer_index;
    std::vector<std::string> row = {std::to_string(buffer_index)};
    std::string adp_method;
    for (auto& [name, tracker] : trackers) {
      const size_t out = tracker.compressor->output().size();
      const size_t block = out - tracker.last_output;
      tracker.last_output = out;
      row.push_back(mdz::bench::Fmt(
          static_cast<double>(buffer_bytes) / block, 1));
      if (name == "ADP") {
        adp_method = mdz::core::MethodName(
            tracker.compressor->last_block_method());
      }
    }
    row.push_back(adp_method);
    if (buffer_index % 4 == 1) table.PrintRow(row);  // subsample the series
  }
  mdz::bench::BenchReport report("fig10");
  const size_t total_raw = field.size() * n * sizeof(double);
  for (auto& [name, tracker] : trackers) {
    (void)tracker.compressor->Finish();
    report.Add("regime_switch/" + name + "/cr",
               static_cast<double>(total_raw) /
                   tracker.compressor->output().size(),
               "x");
  }
  report.Emit();
  std::printf(
      "\nExpected shape (paper): one method dominates before the switch and\n"
      "another after; ADP's column follows the per-regime winner within one\n"
      "re-evaluation interval.\n");
  return 0;
}
