// Sampling-profiler overhead guard (not a paper exhibit): the same
// compression work is timed with the profiler off (the default for every
// paper bench) and with SIGPROF sampling live at 99 Hz. The gated "x"
// metrics are the invariants: profiling must not change the output bytes,
// and the off/on wall-time ratio must stay within 2% — the handler is a
// backtrace(3) into a preclaimed per-thread ring, ~microseconds per tick,
// 99 of them per CPU-second.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/mdz.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace {

// Best-of-N wall time for one full compression of `traj`; returns the
// compressed size through `out_bytes` for the byte-identity check.
double BestCompressSeconds(const mdz::core::Trajectory& traj,
                          const mdz::core::Options& options, int reps,
                          std::string* out_bytes) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    mdz::WallTimer timer;
    auto compressed = mdz::core::CompressTrajectory(traj, options);
    const double seconds = timer.ElapsedSeconds();
    if (!compressed.ok()) {
      std::fprintf(stderr, "FATAL: compress: %s\n",
                   compressed.status().ToString().c_str());
      std::exit(1);
    }
    if (r == 0) {
      out_bytes->clear();
      for (const auto& axis : compressed->axes) {
        out_bytes->append(reinterpret_cast<const char*>(axis.data()),
                          axis.size());
      }
    }
    if (best == 0.0 || seconds < best) best = seconds;
  }
  return best;
}

}  // namespace

int main() {
  std::printf(
      "=== Profiler overhead: sampling off vs SIGPROF at 99 Hz "
      "(eps=1e-3, ADP) ===\n\n");

  mdz::bench::TablePrinter table({"Dataset", "Off MB/s", "On MB/s", "On/Off",
                                  "Samples"},
                                 14);
  table.PrintHeader();

  mdz::bench::BenchReport report("profiler_overhead");
  const int kReps = 3;

  for (const char* dataset : {"Copper-B", "LJ"}) {
    const mdz::core::Trajectory traj = mdz::bench::LoadDataset(dataset);
    const size_t raw_bytes = traj.raw_bytes();

    mdz::core::Options options;
    options.error_bound = 1e-3;

    // Profiler off: the production default every other bench runs under.
    std::string off_bytes;
    const double off_seconds =
        BestCompressSeconds(traj, options, kReps, &off_bytes);

    // Profiler on: metrics enabled (the profiler syncs its tallies into
    // counter families) and SIGPROF arming the whole process at 99 Hz.
    mdz::obs::SetEnabled(true);
    mdz::obs::Profiler& profiler = mdz::obs::Profiler::Global();
    if (!profiler.Start(99).ok()) {
      std::fprintf(stderr, "FATAL: profiler failed to start\n");
      return 1;
    }
    std::string on_bytes;
    const double on_seconds =
        BestCompressSeconds(traj, options, kReps, &on_bytes);
    profiler.Stop();
    const unsigned long long samples =
        static_cast<unsigned long long>(profiler.samples());
    profiler.ClearStore();
    mdz::obs::SetEnabled(false);

    const auto mbps = [raw_bytes](double seconds) {
      return seconds <= 0.0 ? 0.0 : raw_bytes / 1e6 / seconds;
    };
    const double ratio =
        on_seconds <= 0.0 ? 0.0 : off_seconds > 0.0 ? on_seconds / off_seconds
                                                    : 0.0;
    const bool identical = !off_bytes.empty() && off_bytes == on_bytes;
    // 2% is the headline budget from the design: 99 stacks/second against a
    // compressor that moves tens of MB/s leaves the handler in the noise.
    // Best-of-3 absorbs most shared-runner jitter; the floor term keeps a
    // sub-millisecond smoke run (MDZ_BENCH_SCALE near zero) from failing on
    // scheduler quantum noise alone.
    const bool within_budget =
        off_seconds > 0.0 &&
        on_seconds <= off_seconds * 1.02 + 0.005;

    table.PrintRow({dataset, mdz::bench::Fmt(mbps(off_seconds), 1),
                    mdz::bench::Fmt(mbps(on_seconds), 1),
                    mdz::bench::Fmt(ratio, 3),
                    mdz::bench::Fmt(static_cast<double>(samples), 0)});

    report.Add(std::string(dataset) + "/off_mbps", mbps(off_seconds), "MB/s");
    report.Add(std::string(dataset) + "/on_mbps", mbps(on_seconds), "MB/s");
    // Informational only ("ratio" is not a gated unit): on/off wall time.
    report.Add(std::string(dataset) + "/on_over_off_time", ratio, "ratio");
    // Exact invariants, gated at unit "x": 1 = holds, 0 = broken.
    report.Add(std::string(dataset) + "/bytes_identical",
               identical ? 1.0 : 0.0, "x");
    report.Add(std::string(dataset) + "/on_within_budget",
               within_budget ? 1.0 : 0.0, "x");
  }

  report.Emit();
  std::printf(
      "\nExpected shape: identical output bytes in both modes, and an\n"
      "on/off time ratio within 1.02 — each SIGPROF tick costs a\n"
      "backtrace(3) and a ring push, so the compressor dominates.\n");
  return 0;
}
