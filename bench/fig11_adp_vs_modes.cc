// Paper Fig. 11: compression ratio of ADP vs the fixed VQ / VQT / MT methods
// on all eight MD datasets for buffer sizes 10 and 100. ADP must match the
// best fixed method everywhere. Extended with the grown candidates (L2D, BA)
// and ADP+ (ADP trialing the full set): every variant reports CR and
// compress/decompress throughput, and an explicit ADP+/ADP ratio metric
// gates the grown trial set against the paper configuration.

#include "bench_common.h"
#include "mdz_variants.h"

namespace {

// One compress/decompress cycle per axis, aggregated: total bytes and total
// seconds, so ratio() and the throughputs describe the whole trajectory.
mdz::bench::CompressionRun TrajectoryRun(
    const mdz::baselines::LossyCompressorInfo& info,
    const mdz::core::Trajectory& traj,
    const mdz::baselines::CompressorConfig& config) {
  mdz::bench::CompressionRun total;
  for (int axis = 0; axis < 3; ++axis) {
    const mdz::baselines::Field field = mdz::bench::AxisField(traj, axis);
    const mdz::bench::CompressionRun run =
        mdz::bench::RunCompressor(info, field, config);
    total.raw_bytes += run.raw_bytes;
    total.compressed_bytes += run.compressed_bytes;
    total.compress_seconds += run.compress_seconds;
    total.decompress_seconds += run.decompress_seconds;
  }
  return total;
}

}  // namespace

int main() {
  std::printf(
      "=== Paper Fig. 11: ADP vs VQ/VQT/MT (+ L2D/BA candidates, ADP+) "
      "across datasets and buffer sizes (eps=1e-3) ===\n\n");

  const auto variants = mdz::bench::MdzCandidateVariants();
  mdz::bench::TablePrinter table(
      {"Dataset", "BS", "VQ", "VQT", "MT", "ADP", "L2D", "BA", "ADP+"}, 11);
  table.PrintHeader();

  mdz::bench::BenchReport report("fig11");
  for (const auto& dataset : mdz::datagen::AllMdDatasets()) {
    const mdz::core::Trajectory traj =
        mdz::bench::LoadDataset(dataset.name, 0.5);
    for (uint32_t bs : {10u, 100u}) {
      mdz::baselines::CompressorConfig config;
      config.error_bound = 1e-3;
      config.buffer_size = bs;
      std::vector<std::string> row = {std::string(dataset.name),
                                      std::to_string(bs)};
      double adp_cr = 0.0, adp_plus_cr = 0.0;
      for (const auto& variant : variants) {
        const mdz::bench::CompressionRun run =
            TrajectoryRun(variant, traj, config);
        const double cr = run.ratio();
        if (variant.name == "ADP") adp_cr = cr;
        if (variant.name == "ADP+") adp_plus_cr = cr;
        row.push_back(mdz::bench::Fmt(cr, 1));
        report.AddRun(std::string(dataset.name) + "/bs" + std::to_string(bs) +
                          "/" + std::string(variant.name),
                      run);
      }
      // The headline gate: the grown trial set must never compress worse
      // than the paper candidates (first-smallest tie-break guarantees >= 1
      // up to per-block header overhead).
      report.Add(std::string(dataset.name) + "/bs" + std::to_string(bs) +
                     "/adp_plus_vs_adp",
                 adp_cr > 0.0 ? adp_plus_cr / adp_cr : 0.0, "x");
      table.PrintRow(row);
    }
  }
  report.Emit();
  std::printf(
      "\nExpected shape (paper): ADP's column equals (or slightly exceeds,\n"
      "per-axis mixing) the best of the three fixed methods on every row,\n"
      "and ADP+ >= ADP everywhere (adp_plus_vs_adp >= 1).\n");
  return 0;
}
