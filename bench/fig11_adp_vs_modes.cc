// Paper Fig. 11: compression ratio of ADP vs the fixed VQ / VQT / MT methods
// on all eight MD datasets for buffer sizes 10 and 100. ADP must match the
// best fixed method everywhere.

#include "bench_common.h"
#include "mdz_variants.h"

int main() {
  std::printf(
      "=== Paper Fig. 11: ADP vs VQ/VQT/MT across datasets and buffer sizes "
      "(eps=1e-3) ===\n\n");

  const auto variants = mdz::bench::MdzVariants();
  mdz::bench::TablePrinter table(
      {"Dataset", "BS", "VQ", "VQT", "MT", "ADP"}, 11);
  table.PrintHeader();

  mdz::bench::BenchReport report("fig11");
  for (const auto& dataset : mdz::datagen::AllMdDatasets()) {
    const mdz::core::Trajectory traj =
        mdz::bench::LoadDataset(dataset.name, 0.5);
    for (uint32_t bs : {10u, 100u}) {
      mdz::baselines::CompressorConfig config;
      config.error_bound = 1e-3;
      config.buffer_size = bs;
      std::vector<std::string> row = {std::string(dataset.name),
                                      std::to_string(bs)};
      for (const auto& variant : variants) {
        const double cr = mdz::bench::TrajectoryRatio(variant, traj, config);
        row.push_back(mdz::bench::Fmt(cr, 1));
        report.Add(std::string(dataset.name) + "/bs" + std::to_string(bs) +
                       "/" + std::string(variant.name) + "/cr",
                   cr, "x");
      }
      table.PrintRow(row);
    }
  }
  report.Emit();
  std::printf(
      "\nExpected shape (paper): ADP's column equals (or slightly exceeds,\n"
      "per-axis mixing) the best of the three fixed methods on every row.\n");
  return 0;
}
