// Ablation: the entropy/dictionary backend. MDZ (like SZ) runs
// Huffman -> dictionary coder; this repo's block codec additionally picks
// per block between bit-packed Huffman (mode 0) and u16-packed codes fed
// straight to the dictionary coder (mode 1, which preserves byte-aligned
// runs). This bench isolates the stages on representative code streams.

#include <string>
#include <vector>

#include "bench_common.h"
#include "codec/huffman.h"
#include "codec/lz.h"
#include "codec/range_coder.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

// Synthetic quantization-code streams of the two regimes.
std::vector<uint32_t> NoisyCodes(size_t count) {
  mdz::Rng rng(1);
  std::vector<uint32_t> codes(count);
  for (auto& c : codes) {
    c = 512 + static_cast<uint32_t>(std::lround(rng.Gaussian(0.0, 3.0)));
  }
  return codes;
}

std::vector<uint32_t> RunnyCodes(size_t count) {
  // 95% "unchanged" (code 512) in long per-particle runs + sparse deviations.
  mdz::Rng rng(2);
  std::vector<uint32_t> codes(count, 512);
  size_t i = 0;
  while (i < count) {
    if (rng.NextDouble() < 0.05) {
      const size_t burst = 1 + rng.UniformInt(6);
      for (size_t k = 0; k < burst && i < count; ++k, ++i) {
        codes[i] = 512 + 1 + static_cast<uint32_t>(rng.UniformInt(6));
      }
    } else {
      i += 1 + rng.UniformInt(32);
    }
  }
  return codes;
}

size_t HuffmanThenLz(const std::vector<uint32_t>& codes,
                     const mdz::codec::LzOptions& lz) {
  const auto huff = mdz::codec::HuffmanEncode(codes, 1024);
  return mdz::codec::LzCompress(huff, lz).size();
}

size_t PackedThenLz(const std::vector<uint32_t>& codes,
                    const mdz::codec::LzOptions& lz) {
  std::vector<uint8_t> raw(codes.size() * 2);
  for (size_t i = 0; i < codes.size(); ++i) {
    raw[2 * i] = static_cast<uint8_t>(codes[i]);
    raw[2 * i + 1] = static_cast<uint8_t>(codes[i] >> 8);
  }
  return mdz::codec::LzCompress(raw, lz).size();
}

size_t HuffmanOnly(const std::vector<uint32_t>& codes) {
  return mdz::codec::HuffmanEncode(codes, 1024).size();
}

}  // namespace

int main() {
  std::printf("=== Ablation: entropy/dictionary backend on quant-code streams ===\n\n");

  const size_t count =
      static_cast<size_t>(2000000 * mdz::bench::SizeScale());

  mdz::bench::TablePrinter table(
      {"Stream", "Backend", "Bits/code", "Enc_Msym/s"}, 24);
  table.PrintHeader();

  struct NamedCodes {
    const char* name;
    std::vector<uint32_t> codes;
  };
  std::vector<NamedCodes> streams;
  streams.push_back({"gaussian (high entropy)", NoisyCodes(count)});
  streams.push_back({"run-dominated (stable)", RunnyCodes(count)});

  mdz::bench::BenchReport report("ablation_backend");
  for (const auto& [name, codes] : streams) {
    const double denom = static_cast<double>(codes.size());
    const std::string stream_key =
        std::string(name).substr(0, std::string(name).find(' '));
    auto timed = [&](auto&& fn) {
      mdz::WallTimer timer;
      const size_t bytes = fn();
      const double seconds = timer.ElapsedSeconds();
      return std::pair<double, double>(8.0 * bytes / denom,
                                       denom / 1e6 / seconds);
    };
    auto record = [&](const std::string& backend, double bits, double speed) {
      report.Add(stream_key + "/" + backend + "/bits_per_code", bits, "bits");
      report.Add(stream_key + "/" + backend + "/encode_msyms", speed,
                 "Msym/s");
    };

    auto [huff_bits, huff_speed] = timed([&] { return HuffmanOnly(codes); });
    table.PrintRow({name, "Huffman only", mdz::bench::Fmt(huff_bits, 3),
                    mdz::bench::Fmt(huff_speed, 1)});
    record("huffman", huff_bits, huff_speed);
    for (const auto& [lz_name, lz] :
         std::vector<std::pair<std::string, mdz::codec::LzOptions>>{
             {"Huffman+LZ(zstd-like)", mdz::codec::ZstdLikeOptions()},
             {"Huffman+LZ(deflate)", mdz::codec::DeflateLikeOptions()}}) {
      auto [bits, speed] = timed([&] { return HuffmanThenLz(codes, lz); });
      table.PrintRow({name, lz_name, mdz::bench::Fmt(bits, 3),
                      mdz::bench::Fmt(speed, 1)});
      record(lz_name == "Huffman+LZ(zstd-like)" ? "huffman_lz_zstd"
                                                : "huffman_lz_deflate",
             bits, speed);
    }
    {
      auto [bits, speed] = timed(
          [&] { return PackedThenLz(codes, mdz::codec::ZstdLikeOptions()); });
      table.PrintRow({name, "u16+LZ(zstd-like)", mdz::bench::Fmt(bits, 3),
                      mdz::bench::Fmt(speed, 1)});
      record("u16_lz_zstd", bits, speed);
    }
    {
      auto [bits, speed] = timed([&] {
        return mdz::codec::RangeEncodeSymbols(codes, 1024).size();
      });
      table.PrintRow({name, "adaptive range coder", mdz::bench::Fmt(bits, 3),
                      mdz::bench::Fmt(speed, 1)});
      record("range_coder", bits, speed);
    }
  }
  report.Emit();
  std::printf(
      "\nExpected shape: on high-entropy codes, Huffman dominates and the\n"
      "dictionary stage adds nothing (packed+LZ is ~2x worse). On\n"
      "run-dominated codes the dictionary stage does nearly all the work\n"
      "(8-30x on top of Huffman) and the two candidate encodings come out\n"
      "close — which one wins depends on the run/deviation mix, so MDZ's\n"
      "block codec measures both and keeps the smaller (see Table III).\n"
      "The adaptive range coder shaves a few %% off Huffman (and goes below\n"
      "the 1-bit floor on near-constant streams) at several times the CPU\n"
      "cost — the Huffman+LZ default trades that ratio for throughput.\n");
  return 0;
}
