// Paper Table II: prediction error of the snapshot-0-based (initial-time)
// predictor vs the classic spatial Lorenzo predictor, on temporally smooth
// datasets. Reports mean absolute prediction error per dataset per axis,
// plus previous-snapshot prediction for reference.

#include <cmath>

#include "bench_common.h"

namespace {

using mdz::core::Trajectory;

double MeanAbs(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

struct Errors {
  double snapshot0 = 0.0;  // initial-snapshot predictor (MT's first-snapshot)
  double lorenzo = 0.0;    // spatial order-1 Lorenzo
  double previous = 0.0;   // previous-snapshot (time) predictor
};

Errors ComputeErrors(const Trajectory& traj, int axis) {
  Errors e;
  const auto& s0 = traj.snapshots[0].axes[axis];
  size_t count = 0;
  for (size_t s = 1; s < traj.num_snapshots(); ++s) {
    const auto& cur = traj.snapshots[s].axes[axis];
    const auto& prev = traj.snapshots[s - 1].axes[axis];
    e.snapshot0 += MeanAbs(cur, s0);
    e.previous += MeanAbs(cur, prev);
    double lorenzo = 0.0;
    for (size_t i = 1; i < cur.size(); ++i) {
      lorenzo += std::fabs(cur[i] - cur[i - 1]);
    }
    e.lorenzo += lorenzo / static_cast<double>(cur.size() - 1);
    ++count;
  }
  e.snapshot0 /= count;
  e.previous /= count;
  e.lorenzo /= count;
  return e;
}

}  // namespace

int main() {
  std::printf("=== Paper Table II: snapshot-0 prediction error vs Lorenzo ===\n");
  std::printf("(mean |prediction - value|; lower is better)\n\n");

  mdz::bench::TablePrinter table(
      {"Dataset", "Axis", "Snapshot0", "Lorenzo", "PrevSnap"}, 12);
  table.PrintHeader();

  mdz::bench::BenchReport report("table2");
  for (const char* name : {"Copper-A", "Helium-A", "Pt", "LJ"}) {
    const Trajectory traj = mdz::bench::LoadDataset(name);
    for (int axis = 0; axis < 3; ++axis) {
      const Errors e = ComputeErrors(traj, axis);
      table.PrintRow({traj.name, std::string(1, "xyz"[axis]),
                      mdz::bench::Fmt(e.snapshot0, 4),
                      mdz::bench::Fmt(e.lorenzo, 4),
                      mdz::bench::Fmt(e.previous, 4)});
      const std::string prefix =
          std::string(name) + "/" + std::string(1, "xyz"[axis]);
      report.Add(prefix + "/snapshot0_mae", e.snapshot0, "1");
      report.Add(prefix + "/lorenzo_mae", e.lorenzo, "1");
      report.Add(prefix + "/prev_snapshot_mae", e.previous, "1");
    }
  }
  report.Emit();
  std::printf(
      "\nExpected shape (paper): snapshot-0 prediction error is far below\n"
      "the spatial Lorenzo error on temporally smooth datasets.\n");
  return 0;
}
