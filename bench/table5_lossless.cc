// Paper Table V: compression ratios of six lossless compressors on four MD
// datasets. All land in the 1-2x range, motivating error-bounded lossy
// compression.

#include "codec/lossless.h"

#include "bench_common.h"

int main() {
  std::printf("=== Paper Table V: lossless compressor ratios ===\n\n");

  std::vector<std::string> headers = {"Dataset"};
  for (auto codec : mdz::codec::AllLosslessCodecs()) {
    headers.emplace_back(mdz::codec::LosslessCodecName(codec));
  }
  mdz::bench::TablePrinter table(headers, 12);
  table.PrintHeader();

  mdz::bench::BenchReport report("table5");
  for (const char* name : {"Copper-A", "Helium-B", "ADK", "LJ"}) {
    const mdz::core::Trajectory traj = mdz::bench::LoadDataset(name, 0.25);
    std::vector<std::string> row = {traj.name};
    for (auto codec : mdz::codec::AllLosslessCodecs()) {
      size_t raw = 0, compressed = 0;
      for (int axis = 0; axis < 3; ++axis) {
        const std::vector<double> values = traj.FlattenAxis(axis);
        raw += values.size() * sizeof(double);
        compressed += mdz::codec::LosslessCompress(values, codec).size();
      }
      const double cr = static_cast<double>(raw) / compressed;
      row.push_back(mdz::bench::Fmt(cr, 2));
      report.Add(std::string(name) + "/" +
                     std::string(mdz::codec::LosslessCodecName(codec)) + "/cr",
                 cr, "x");
    }
    table.PrintRow(row);
  }
  report.Emit();
  std::printf(
      "\nExpected shape (paper): every lossless compressor stays in the\n"
      "~1-2x range on MD data (random mantissa bits defeat dictionaries).\n");
  return 0;
}
