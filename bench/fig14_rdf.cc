// Paper Fig. 14: radial distribution function of the decompressed Copper-B
// data at a matched compression ratio of 10 (BS = 10). Only MDZ should keep
// g(r) on top of the original.

#include "analysis/rdf.h"
#include "bench_common.h"

namespace {

mdz::core::Trajectory FieldsToTrajectory(
    const std::array<mdz::baselines::Field, 3>& fields,
    const mdz::core::Trajectory& like) {
  mdz::core::Trajectory traj;
  traj.box = like.box;
  traj.snapshots.resize(fields[0].size());
  for (size_t s = 0; s < fields[0].size(); ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      traj.snapshots[s].axes[axis] = fields[axis][s];
    }
  }
  return traj;
}

}  // namespace

int main() {
  std::printf(
      "=== Paper Fig. 14: RDF of decompressed Copper-B at CR=10 (BS=10) ===\n\n");

  const mdz::core::Trajectory traj = mdz::bench::LoadDataset("Copper-B", 0.2);

  mdz::analysis::RdfOptions rdf_options;
  rdf_options.r_max = 6.0;
  rdf_options.bins = 120;
  auto original_rdf = mdz::analysis::ComputeRdf(traj, rdf_options);
  if (!original_rdf.ok()) return 1;
  double peak_g = 0.0;
  double peak_r = 0.0;
  for (size_t b = 0; b < original_rdf->g.size(); ++b) {
    if (original_rdf->g[b] > peak_g) {
      peak_g = original_rdf->g[b];
      peak_r = original_rdf->r[b];
    }
  }
  std::printf("original RDF: first peak g=%.2f at r=%.2f\n\n", peak_g, peak_r);

  mdz::bench::TablePrinter table(
      {"Compressor", "CR", "MaxRDFDev", "PeakG", "Verdict"}, 12);
  table.PrintHeader();

  mdz::bench::BenchReport report("fig14");
  for (const auto& info : mdz::baselines::PaperLossyCompressors()) {
    if (info.name == "MDB") continue;  // cannot reach CR=10
    std::array<mdz::baselines::Field, 3> decoded;
    double achieved = 0.0;
    bool ok = true;
    for (int axis = 0; axis < 3; ++axis) {
      const auto field = mdz::bench::AxisField(traj, axis);
      auto matched = mdz::bench::MatchCompressionRatio(info, field, 10.0, 10);
      if (matched.decoded.empty()) {
        ok = false;
        break;
      }
      achieved += matched.achieved_ratio / 3.0;
      decoded[axis] = std::move(matched.decoded);
    }
    if (!ok) {
      table.PrintRow({std::string(info.name), "n/a", "n/a", "n/a", "fail"});
      continue;
    }
    const mdz::core::Trajectory decoded_traj = FieldsToTrajectory(decoded, traj);
    auto rdf = mdz::analysis::ComputeRdf(decoded_traj, rdf_options);
    if (!rdf.ok()) continue;
    const double dev = mdz::analysis::RdfMaxDeviation(*original_rdf, *rdf);
    double dec_peak = 0.0;
    for (double g : rdf->g) dec_peak = std::max(dec_peak, g);
    table.PrintRow({std::string(info.name), mdz::bench::Fmt(achieved, 1),
                    mdz::bench::Fmt(dev, 3), mdz::bench::Fmt(dec_peak, 2),
                    dev < 0.25 * peak_g ? "preserved" : "distorted"});
    const std::string prefix = "Copper-B/cr10/" + std::string(info.name);
    report.Add(prefix + "/achieved_cr", achieved, "x");
    report.Add(prefix + "/rdf_max_dev", dev, "g");
  }
  report.Emit();
  std::printf(
      "\nExpected shape (paper): at CR=10 only MDZ keeps the RDF on top of\n"
      "the original (smallest deviation, crystalline peaks intact); the\n"
      "baselines smear the local density.\n");
  return 0;
}
