// Pipeline-stage breakdown (not a paper exhibit): where the compressed bytes
// and the compression wall time go, per dataset. Runs the full compressor
// with telemetry on, prints the per-stage byte split from CompressorStats
// plus the hottest timing spans, and emits both the mdz.bench.v1 report
// (BENCH_pipeline.json, gated by tools/bench_diff in ci.sh) and the whole
// metrics snapshot (BENCH_pipeline_metrics.json, same mdz.metrics.v1 schema
// tools/check_telemetry.sh validates).

#include <string>
#include <vector>

#include "bench_common.h"

namespace mdz::bench {
namespace {

struct DatasetRow {
  std::string name;
  core::CompressorStats totals;
  size_t raw_bytes = 0;
};

DatasetRow RunDataset(const std::string& name) {
  DatasetRow row;
  row.name = name;
  const core::Trajectory traj = LoadDataset(name);
  row.raw_bytes = traj.raw_bytes();

  core::Options options;
  options.telemetry = true;
  for (int axis = 0; axis < 3; ++axis) {
    auto compressor =
        core::FieldCompressor::Create(traj.num_particles(), options);
    if (!compressor.ok()) {
      std::fprintf(stderr, "FATAL: %s\n",
                   compressor.status().ToString().c_str());
      std::exit(1);
    }
    for (const auto& snap : traj.snapshots) {
      (void)(*compressor)->Append(snap.axes[axis]);
    }
    (void)(*compressor)->Finish();
    const core::CompressorStats& s = (*compressor)->stats();
    row.totals.compressed_bytes += s.compressed_bytes;
    row.totals.huffman_bytes += s.huffman_bytes;
    row.totals.main_lz_bytes += s.main_lz_bytes;
    row.totals.side_lz_bytes += s.side_lz_bytes;
    row.totals.framing_bytes += s.framing_bytes;
    row.totals.escape_count += s.escape_count;
    row.totals.blocks_vq += s.blocks_vq;
    row.totals.blocks_vqt += s.blocks_vqt;
    row.totals.blocks_mt += s.blocks_mt;
    row.totals.blocks_ti += s.blocks_ti;
  }
  return row;
}

std::string Pct(size_t part, size_t whole) {
  return whole == 0 ? "0.0" : Fmt(100.0 * part / whole, 1);
}

int Main() {
  obs::SetEnabled(true);

  const std::vector<std::string> datasets = {"Copper-B", "Helium-A", "LJ"};
  TablePrinter table({"Dataset", "Ratio", "MainLZ%", "SideLZ%", "Frame%",
                      "Huff/LZ", "VQ", "VQT", "MT"},
                     10);
  table.PrintHeader();
  BenchReport report("pipeline");
  for (const auto& name : datasets) {
    const DatasetRow row = RunDataset(name);
    const core::CompressorStats& t = row.totals;
    table.PrintRow({
        row.name,
        Fmt(static_cast<double>(row.raw_bytes) / t.compressed_bytes, 1),
        Pct(t.main_lz_bytes, t.compressed_bytes),
        Pct(t.side_lz_bytes, t.compressed_bytes),
        Pct(t.framing_bytes, t.compressed_bytes),
        // Dictionary-stage gain over the entropy stage alone.
        Fmt(t.main_lz_bytes == 0
                ? 0.0
                : static_cast<double>(t.huffman_bytes) / t.main_lz_bytes,
            2),
        std::to_string(t.blocks_vq),
        std::to_string(t.blocks_vqt),
        std::to_string(t.blocks_mt),
    });
    report.Add(row.name + "/cr",
               static_cast<double>(row.raw_bytes) / t.compressed_bytes, "x");
    report.Add(row.name + "/main_lz_pct",
               t.compressed_bytes == 0
                   ? 0.0
                   : 100.0 * t.main_lz_bytes / t.compressed_bytes,
               "%");
    report.Add(row.name + "/side_lz_pct",
               t.compressed_bytes == 0
                   ? 0.0
                   : 100.0 * t.side_lz_bytes / t.compressed_bytes,
               "%");
  }
  report.Emit();

  std::printf("\nTiming spans (seconds, across all datasets):\n");
  std::printf("%-64s %8s %10s\n", "Span", "Count", "Total_s");
  const auto snapshot = obs::MetricsRegistry::Global().Collect();
  for (const auto& h : snapshot.histograms) {
    if (h.name.rfind("span/", 0) != 0 || h.count == 0) continue;
    std::printf("%-64s %8llu %10s\n", h.name.substr(5).c_str(),
                static_cast<unsigned long long>(h.count),
                Fmt(h.sum, 4).c_str());
  }

  const std::string json = EmitMetricsJson("pipeline");
  std::printf("\nmetrics snapshot: %s\n", json.c_str());
  return 0;
}

}  // namespace
}  // namespace mdz::bench

int main() { return mdz::bench::Main(); }
