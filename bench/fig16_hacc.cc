// Paper Fig. 16: generalizability beyond MD — compression ratios on two
// HACC-style cosmology particle datasets (eps = 1e-3).

#include "bench_common.h"

int main() {
  std::printf("=== Paper Fig. 16: compression ratios on HACC datasets ===\n\n");

  std::vector<std::string> headers = {"Dataset", "BS"};
  for (const auto& info : mdz::baselines::PaperLossyCompressors()) {
    headers.emplace_back(info.name);
  }
  mdz::bench::TablePrinter table(headers, 10);
  table.PrintHeader();

  mdz::bench::BenchReport report("fig16");
  for (const char* name : {"HACC-1", "HACC-2"}) {
    const mdz::core::Trajectory traj = mdz::bench::LoadDataset(name, 0.5);
    for (uint32_t bs : {10u}) {
      mdz::baselines::CompressorConfig config;
      config.error_bound = 1e-3;
      config.buffer_size = bs;
      std::vector<std::string> row = {std::string(name), std::to_string(bs)};
      for (const auto& info : mdz::baselines::PaperLossyCompressors()) {
        const double cr = mdz::bench::TrajectoryRatio(info, traj, config);
        row.push_back(mdz::bench::Fmt(cr, 1));
        report.Add(std::string(name) + "/bs" + std::to_string(bs) + "/" +
                       std::string(info.name) + "/cr",
                   cr, "x");
      }
      table.PrintRow(row);
    }
  }
  report.Emit();
  std::printf(
      "\nExpected shape (paper): MDZ is the best on both datasets, ~30-55%%\n"
      "above the second-best compressor — the spatial+temporal design\n"
      "carries over to non-MD particle data.\n");
  return 0;
}
