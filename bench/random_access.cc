// Random-access reads through the v2 archive index (docs/FORMAT.md): full
// decode vs a cold one-snapshot extract vs a 1% particle slice, plus the
// v1/v2 container size ratio. Not a paper exhibit; guards the seekable
// archive subsystem (src/archive/) against throughput and size regressions.
//
// The one-snapshot extract opens a fresh reader per repetition so every
// timing is cold-cache, and reports the frames it actually decoded — the
// whole point of the index is that this number stays O(covering frames)
// instead of O(archive).

#include <cstdio>
#include <string>

#include "archive/reader.h"
#include "bench_common.h"
#include "io/archive.h"

namespace {

using mdz::archive::ArchiveReader;
using mdz::archive::ReaderOptions;

struct Extract {
  double seconds = 0.0;       // best-of-reps wall time of the read itself
  uint64_t frames = 0;        // frames decoded by one cold read
  uint64_t references = 0;    // reference snapshots decoded by one cold read
  size_t delivered_bytes = 0; // doubles handed back to the caller
};

// Times `count` snapshots x `particle_count` particles from a cold reader,
// best of `reps`. particle_count == 0 means all particles (ReadSnapshots).
Extract TimeExtract(const std::string& path, size_t first, size_t count,
                    size_t particle_count, int reps) {
  Extract e;
  for (int rep = 0; rep < reps; ++rep) {
    auto reader = ArchiveReader::Open(path, ReaderOptions{});
    if (!reader.ok()) {
      std::fprintf(stderr, "FATAL: open %s: %s\n", path.c_str(),
                   reader.status().ToString().c_str());
      std::exit(1);
    }
    mdz::WallTimer timer;
    auto snapshots =
        particle_count == 0
            ? (*reader)->ReadSnapshots(first, count)
            : (*reader)->ReadParticles(first, count, 0, particle_count);
    const double seconds = timer.ElapsedSeconds();
    if (!snapshots.ok()) {
      std::fprintf(stderr, "FATAL: read %s: %s\n", path.c_str(),
                   snapshots.status().ToString().c_str());
      std::exit(1);
    }
    const mdz::archive::ReaderStats stats = (*reader)->stats();
    if (rep == 0 || seconds < e.seconds) e.seconds = seconds;
    e.frames = stats.frames_decoded;
    e.references = stats.reference_decodes;
    e.delivered_bytes = 0;
    for (const auto& snap : snapshots->front().axes) {
      e.delivered_bytes += count * snap.size() * sizeof(double);
    }
  }
  return e;
}

double Mbps(size_t bytes, double seconds) {
  return seconds <= 0.0 ? 0.0 : static_cast<double>(bytes) / 1e6 / seconds;
}

}  // namespace

int main() {
  std::printf(
      "=== Random access: v2 archive reader vs full decode "
      "(eps=1e-3, bs=10, ADP) ===\n\n");

  mdz::bench::TablePrinter table({"Dataset", "Full MB/s", "Snap ms", "Frames",
                                  "Slice MB/s", "v1/v2 size"},
                                 12);
  table.PrintHeader();

  mdz::bench::BenchReport report("random_access");
  const int kReps = 3;

  for (const char* dataset : {"Copper-B", "LJ"}) {
    const mdz::core::Trajectory traj = mdz::bench::LoadDataset(dataset);
    const size_t snapshots = traj.num_snapshots();
    const size_t particles = traj.snapshots[0].axes[0].size();
    const size_t raw_bytes = snapshots * particles * 3 * sizeof(double);

    mdz::core::Options options;
    options.error_bound = 1e-3;
    options.buffer_size = 10;
    auto compressed = mdz::core::CompressTrajectory(traj, options);
    if (!compressed.ok()) {
      std::fprintf(stderr, "FATAL: compress %s: %s\n", dataset,
                   compressed.status().ToString().c_str());
      return 1;
    }

    mdz::io::Archive archive;
    archive.data = std::move(compressed).value();
    archive.name = traj.name;
    archive.box = traj.box;

    const std::string v1_path =
        "BENCH_random_access_" + std::string(dataset) + ".v1.mdza";
    const std::string v2_path =
        "BENCH_random_access_" + std::string(dataset) + ".v2.mdza";
    for (const auto& [path, writer] :
         {std::pair{v1_path, &mdz::io::WriteArchive},
          std::pair{v2_path, &mdz::io::WriteArchiveV2}}) {
      const mdz::Status s = writer(archive, path);
      if (!s.ok()) {
        std::fprintf(stderr, "FATAL: write %s: %s\n", path.c_str(),
                     s.ToString().c_str());
        return 1;
      }
    }
    const auto file_size = [](const std::string& path) -> size_t {
      std::FILE* f = std::fopen(path.c_str(), "rb");
      if (f == nullptr) return 0;
      std::fseek(f, 0, SEEK_END);
      const long size = std::ftell(f);
      std::fclose(f);
      return size < 0 ? 0 : static_cast<size_t>(size);
    };
    const size_t v1_size = file_size(v1_path);
    const size_t v2_size = file_size(v2_path);
    // Gated as "x": if the per-frame overhead ever balloons, this ratio
    // drops below the baseline and bench_diff flags it.
    const double size_ratio =
        v2_size == 0 ? 0.0 : static_cast<double>(v1_size) / v2_size;

    // Full decode through the index: every frame, all particles.
    const Extract full = TimeExtract(v2_path, 0, snapshots, 0, kReps);
    // One snapshot out of the middle: only its covering frames (+references).
    const Extract snap = TimeExtract(v2_path, snapshots / 2, 1, 0, kReps);
    // All snapshots, 1% of the particles: frames are still all touched, but
    // the delivered slice is ~1% of the data.
    const size_t slice = particles / 100 > 0 ? particles / 100 : 1;
    const Extract part = TimeExtract(v2_path, 0, snapshots, slice, kReps);

    table.PrintRow({dataset, mdz::bench::Fmt(Mbps(raw_bytes, full.seconds), 1),
                    mdz::bench::Fmt(snap.seconds * 1e3, 2),
                    std::to_string(snap.frames) + "/" +
                        std::to_string(full.frames),
                    mdz::bench::Fmt(Mbps(part.delivered_bytes, part.seconds), 1),
                    mdz::bench::Fmt(size_ratio, 4)});

    const std::string prefix = dataset;
    report.Add(prefix + "/full_decode_mbps", Mbps(raw_bytes, full.seconds),
               "MB/s", kReps);
    report.Add(prefix + "/one_snapshot_ms", snap.seconds * 1e3, "ms", kReps);
    report.Add(prefix + "/one_snapshot_frames",
               static_cast<double>(snap.frames), "frames");
    report.Add(prefix + "/one_snapshot_reference_decodes",
               static_cast<double>(snap.references), "frames");
    report.Add(prefix + "/full_frames", static_cast<double>(full.frames),
               "frames");
    report.Add(prefix + "/particle_slice_mbps",
               Mbps(part.delivered_bytes, part.seconds), "MB/s", kReps);
    report.Add(prefix + "/size_v1_over_v2", size_ratio, "x");

    std::remove(v1_path.c_str());
    std::remove(v2_path.c_str());
  }
  report.Emit();
  std::printf(
      "\nExpected shape: the one-snapshot extract touches a small constant\n"
      "number of frames (its covering frame per axis plus any reference or\n"
      "TI-chain decodes), and the v1/v2 size ratio stays above 0.99 — the\n"
      "frame index costs less than 1%% of the container.\n");
  return 0;
}
