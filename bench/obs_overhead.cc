// Observability overhead guard (not a paper exhibit): the same compression
// work is timed with telemetry fully off (the default for every paper
// bench) and with the whole PR-7 stack live — metrics, timeline recording,
// the HTTP telemetry endpoint, and the resource sampler. The gated "x"
// metrics are the invariants: telemetry must not change the output bytes,
// and the off/on throughput ratio must stay near 1 (spans and counters are
// a relaxed load and a branch when off, and cheap enough when on that the
// compressor — not the bookkeeping — dominates).

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/mdz.h"
#include "obs/metrics.h"
#include "obs/telemetry_server.h"
#include "obs/timeline.h"

namespace {

// Best-of-N wall time for one full compression of `traj`; returns the
// compressed size through `out_bytes` for the byte-identity check.
double BestCompressSeconds(const mdz::core::Trajectory& traj,
                          const mdz::core::Options& options, int reps,
                          std::string* out_bytes) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    mdz::WallTimer timer;
    auto compressed = mdz::core::CompressTrajectory(traj, options);
    const double seconds = timer.ElapsedSeconds();
    if (!compressed.ok()) {
      std::fprintf(stderr, "FATAL: compress: %s\n",
                   compressed.status().ToString().c_str());
      std::exit(1);
    }
    if (r == 0) {
      out_bytes->clear();
      for (const auto& axis : compressed->axes) {
        out_bytes->append(reinterpret_cast<const char*>(axis.data()),
                          axis.size());
      }
    }
    if (best == 0.0 || seconds < best) best = seconds;
  }
  return best;
}

}  // namespace

int main() {
  std::printf(
      "=== Observability overhead: telemetry off vs metrics+timeline+HTTP "
      "endpoint live (eps=1e-3, ADP) ===\n\n");

  mdz::bench::TablePrinter table({"Dataset", "Off MB/s", "On MB/s", "Off/On"},
                                 14);
  table.PrintHeader();

  mdz::bench::BenchReport report("obs_overhead");
  const int kReps = 3;

  for (const char* dataset : {"Copper-B", "LJ"}) {
    const mdz::core::Trajectory traj = mdz::bench::LoadDataset(dataset);
    const size_t raw_bytes = traj.raw_bytes();

    mdz::core::Options options;
    options.error_bound = 1e-3;

    // Telemetry off: the production default every other bench runs under.
    mdz::obs::SetEnabled(false);
    mdz::obs::Timeline::Global().SetRecording(false);
    std::string off_bytes;
    const double off_seconds =
        BestCompressSeconds(traj, options, kReps, &off_bytes);

    // Full stack on: metrics + timeline recording + live endpoint + sampler.
    mdz::obs::SetEnabled(true);
    mdz::obs::PreRegisterCoreMetrics();
    mdz::obs::Timeline::Global().SetRecording(true);
    mdz::obs::BeginTrace();
    mdz::obs::TelemetryServer server;
    mdz::obs::ListenAddress address;
    if (mdz::obs::ParseListenAddress("127.0.0.1:0", &address).ok()) {
      const mdz::Status started = server.Start(address);
      if (!started.ok()) {
        std::fprintf(stderr, "warning: no live endpoint: %s\n",
                     started.ToString().c_str());
      }
    }
    mdz::obs::ResourceSampler sampler;
    sampler.Start(/*interval_ms=*/50);
    std::string on_bytes;
    const double on_seconds =
        BestCompressSeconds(traj, options, kReps, &on_bytes);
    sampler.Stop();
    server.Stop();
    mdz::obs::Timeline::Global().SetRecording(false);
    mdz::obs::Timeline::Global().Reset();
    mdz::obs::SetEnabled(false);

    const auto mbps = [raw_bytes](double seconds) {
      return seconds <= 0.0 ? 0.0 : raw_bytes / 1e6 / seconds;
    };
    const double ratio =
        on_seconds <= 0.0 ? 0.0 : off_seconds > 0.0 ? on_seconds / off_seconds
                                                    : 0.0;
    const bool identical = !off_bytes.empty() && off_bytes == on_bytes;
    // 15% budget for the live stack: the real cost is a couple percent, the
    // headroom absorbs shared-runner timing noise without hiding a
    // pathological regression (a hot-path lock would blow far past it).
    const bool within_budget =
        off_seconds > 0.0 && on_seconds <= off_seconds * 1.15;

    table.PrintRow({dataset, mdz::bench::Fmt(mbps(off_seconds), 1),
                    mdz::bench::Fmt(mbps(on_seconds), 1),
                    mdz::bench::Fmt(ratio, 3)});

    report.Add(std::string(dataset) + "/off_mbps", mbps(off_seconds), "MB/s");
    report.Add(std::string(dataset) + "/on_mbps", mbps(on_seconds), "MB/s");
    // Informational only ("ratio" is not a gated unit): on/off wall time.
    report.Add(std::string(dataset) + "/on_over_off_time", ratio, "ratio");
    // Exact invariants, gated at unit "x": 1 = holds, 0 = broken.
    report.Add(std::string(dataset) + "/bytes_identical",
               identical ? 1.0 : 0.0, "x");
    report.Add(std::string(dataset) + "/on_within_budget",
               within_budget ? 1.0 : 0.0, "x");
  }

  report.Emit();
  std::printf(
      "\nExpected shape: identical output bytes in both modes, and an\n"
      "on/off time ratio near 1.0 — the compressor dominates, telemetry\n"
      "bookkeeping (relaxed atomics, per-thread rings, a poll loop on its\n"
      "own thread) stays in the noise.\n");
  return 0;
}
