// mdzd service load generator (docs/SERVICE.md; not a paper exhibit): an
// in-process ArchiveServer under a mixed extract+append workload from
// concurrent clients, against the direct single-reader cold extract as the
// no-service baseline. Guards the serving path's latency overhead (protocol
// + scheduler + shared cache must stay within a small multiple of a direct
// read), response byte-identity while appends reseal the archive, and
// quota backpressure.
//
// Gate invariants (unit "x", value 1 when holding — bench_diff flags any
// drop against the committed baseline):
//   mixed8/extract_identical   every served extract matched the direct read
//   serial/p99_within_budget   served single-client extract p99 <= 5x the
//                              direct cold p99 (protocol + scheduler + cache
//                              overhead; the mixed-load p99 additionally
//                              contains queueing and is informational)
//   quota/rejects_observed     a tight-quota tenant saw BUSY under a burst
// Latency quantiles (p50/p95/p99 via HistogramQuantile) and QPS are
// informational ("ms", "1/s") — wall-clock numbers are machine-dependent.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>

#include "archive/reader.h"
#include "bench_common.h"
#include "core/thread_pool.h"
#include "io/archive.h"
#include "obs/export.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/rng.h"

namespace {

using mdz::Rng;
using mdz::archive::ArchiveReader;
using mdz::serve::ArchiveServer;
using mdz::serve::Client;
using mdz::serve::ReplyStatus;
using mdz::serve::ServerConfig;
using mdz::serve::TenantQuota;

// Log-spaced latency buckets, 10 us .. ~50 s, 16 per decade: fine enough
// that interpolated p99 is meaningful at sub-millisecond latencies (the
// obs DurationBuckets decades are far too coarse for this).
std::vector<double> LatencyBounds() {
  std::vector<double> bounds;
  double edge = 10e-6;
  const double step = std::pow(10.0, 1.0 / 16.0);
  while (edge < 50.0) {
    bounds.push_back(edge);
    edge *= step;
  }
  return bounds;
}

struct LatencyHistogram {
  std::vector<double> bounds = LatencyBounds();
  std::vector<uint64_t> counts;
  uint64_t total = 0;

  LatencyHistogram() : counts(bounds.size() + 1, 0) {}

  void Observe(double seconds) {
    size_t bucket = bounds.size();
    for (size_t i = 0; i < bounds.size(); ++i) {
      if (seconds <= bounds[i]) {
        bucket = i;
        break;
      }
    }
    ++counts[bucket];
    ++total;
  }

  void Merge(const LatencyHistogram& other) {
    for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
    total += other.total;
  }

  double Quantile(double q) const {
    return mdz::obs::HistogramQuantile(bounds, counts, q);
  }
};

[[noreturn]] void Fatal(const std::string& what, const mdz::Status& status) {
  std::fprintf(stderr, "FATAL: %s: %s\n", what.c_str(),
               status.ToString().c_str());
  std::exit(1);
}

void WriteBenchArchive(const mdz::core::Trajectory& traj,
                       const std::string& path) {
  auto compressed = mdz::core::CompressTrajectory(traj, mdz::core::Options{});
  if (!compressed.ok()) Fatal("compress", compressed.status());
  mdz::io::Archive archive;
  archive.data = std::move(compressed).value();
  archive.name = traj.name;
  archive.box = traj.box;
  const mdz::Status s = mdz::io::WriteArchiveV2(archive, path);
  if (!s.ok()) Fatal("write " + path, s);
}

bool SnapshotsEqual(const std::vector<mdz::core::Snapshot>& a,
                    const std::vector<mdz::core::Snapshot>& b, size_t offset) {
  for (size_t s = 0; s < a.size(); ++s) {
    for (int axis = 0; axis < 3; ++axis) {
      if (a[s].axes[axis] != b[offset + s].axes[axis]) return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  std::printf("=== mdzd service: mixed-load latency vs direct reads ===\n\n");

  const std::string root = "BENCH_serve_root";
  ::mkdir(root.c_str(), 0755);
  const mdz::core::Trajectory traj = mdz::bench::LoadDataset("Copper-B");
  const size_t snapshots = traj.num_snapshots();
  WriteBenchArchive(traj, root + "/static.mdza");
  WriteBenchArchive(traj, root + "/grow.mdza");

  // --- Direct baseline: cold one-snapshot extract, fresh reader each rep.
  const int kDirectReps = 60;
  LatencyHistogram direct_hist;
  for (int rep = 0; rep < kDirectReps; ++rep) {
    auto reader = ArchiveReader::Open(root + "/static.mdza");
    if (!reader.ok()) Fatal("open static", reader.status());
    mdz::WallTimer timer;
    auto read = (*reader)->ReadSnapshots((snapshots / 2 + rep) % snapshots, 1);
    if (!read.ok()) Fatal("direct read", read.status());
    direct_hist.Observe(timer.ElapsedSeconds());
  }
  const double direct_p99 = direct_hist.Quantile(0.99);

  // Reference data every served extract is checked against, decoded once.
  auto expected_reader = ArchiveReader::Open(root + "/static.mdza");
  if (!expected_reader.ok()) Fatal("open static", expected_reader.status());
  auto expected = (*expected_reader)->ReadSnapshots(0, snapshots);
  if (!expected.ok()) Fatal("decode static", expected.status());
  auto grow_reader = ArchiveReader::Open(root + "/grow.mdza");
  if (!grow_reader.ok()) Fatal("open grow", grow_reader.status());
  auto grow_expected = (*grow_reader)->ReadSnapshots(0, snapshots);
  if (!grow_expected.ok()) Fatal("decode grow", grow_expected.status());

  // --- The server under test: hermetic registry + pool, tight tenant for
  // the quota burst.
  mdz::core::ThreadPool pool(0);
  mdz::obs::MetricsRegistry registry;
  ServerConfig config;
  TenantQuota tight;
  tight.max_inflight = 1;
  config.tenant_quotas["tight"] = tight;
  ArchiveServer::Options options;
  options.listen.host = "127.0.0.1";
  options.listen.port = 0;
  options.root = root;
  options.config = config;
  options.pool = &pool;
  options.registry = &registry;
  ArchiveServer server(options);
  {
    const mdz::Status s = server.Start();
    if (!s.ok()) Fatal("server start", s);
  }

  std::atomic<bool> identical{true};

  // --- Serial served extracts: one client, same one-snapshot pattern as
  // the direct baseline. This isolates the serving path's overhead (frame +
  // dispatch + shared-cache lookup) from load-dependent queueing.
  LatencyHistogram serial_hist;
  {
    auto client = Client::Connect("127.0.0.1", server.port());
    if (!client.ok()) Fatal("connect serial", client.status());
    for (int rep = 0; rep < kDirectReps; ++rep) {
      // Stride by the codec buffer size so successive requests hit
      // different frames rather than re-reading one warm frame.
      const uint64_t first =
          (snapshots / 2 + static_cast<uint64_t>(rep) * 10) % snapshots;
      mdz::WallTimer timer;
      auto served = (*client)->Extract("static.mdza", first, 1);
      if (!served.ok()) Fatal("serial extract", served.status());
      serial_hist.Observe(timer.ElapsedSeconds());
      if (!SnapshotsEqual(*served, *expected, first)) identical.store(false);
    }
  }
  const double serial_p99 = serial_hist.Quantile(0.99);

  // --- Mixed workload: 8 clients extracting (and one of them appending),
  // every extract response compared against the direct decode.
  constexpr int kClients = 8;
  const int iterations =
      std::max(20, static_cast<int>(120 * mdz::bench::SizeScale() * 10));
  std::atomic<uint64_t> extracts{0};
  std::atomic<uint64_t> busy{0};
  std::vector<LatencyHistogram> client_hist(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  mdz::WallTimer wall;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client::Options copts;
      copts.tenant = "bench-" + std::to_string(c % 2);
      auto client = Client::Connect("127.0.0.1", server.port(), copts);
      if (!client.ok()) Fatal("connect", client.status());
      Rng rng(9000 + static_cast<uint64_t>(c));
      for (int i = 0; i < iterations; ++i) {
        // Client 0 interleaves appends: the reseal churns generations and
        // the shared cache while the other clients read.
        if (c == 0 && i % 16 == 8) {
          mdz::core::Trajectory extra;
          const size_t bs = 10;  // default codec buffer size
          extra.snapshots.assign(traj.snapshots.begin(),
                                 traj.snapshots.begin() + bs);
          auto appended = (*client)->Append("grow.mdza", extra.snapshots);
          if (!appended.ok() &&
              (*client)->last_status() != ReplyStatus::kBusy) {
            Fatal("append", appended.status());
          }
          continue;
        }
        const bool on_grow = i % 4 == 3;
        const std::string archive = on_grow ? "grow.mdza" : "static.mdza";
        const uint64_t count = 1 + static_cast<uint64_t>(rng.Uniform(0, 3));
        const uint64_t first = static_cast<uint64_t>(
            rng.Uniform(0.0, static_cast<double>(snapshots - count)));
        mdz::WallTimer timer;
        auto served = (*client)->Extract(archive, first, count);
        const double seconds = timer.ElapsedSeconds();
        if (!served.ok()) {
          if ((*client)->last_status() == ReplyStatus::kBusy) {
            busy.fetch_add(1);
            continue;
          }
          Fatal("extract", served.status());
        }
        client_hist[c].Observe(seconds);
        extracts.fetch_add(1);
        // Byte-identity against the pre-append decode: appends only ever
        // add snapshots past `snapshots`, so [0, snapshots) is immutable.
        const auto& want = on_grow ? *grow_expected : *expected;
        if (!SnapshotsEqual(*served, want, first)) identical.store(false);
      }
    });
  }
  for (auto& client : clients) client.join();
  const double mixed_seconds = wall.ElapsedSeconds();

  LatencyHistogram served_hist;
  for (const auto& h : client_hist) served_hist.Merge(h);
  const double served_p50 = served_hist.Quantile(0.50);
  const double served_p95 = served_hist.Quantile(0.95);
  const double served_p99 = served_hist.Quantile(0.99);
  const double qps = mixed_seconds <= 0.0
                         ? 0.0
                         : static_cast<double>(extracts.load()) / mixed_seconds;

  // --- Quota burst: a max_inflight=1 tenant firing from many connections
  // must observe backpressure, and the scheduler must count it.
  std::atomic<uint64_t> quota_rejects{0};
  std::vector<std::thread> burst;
  burst.reserve(6);
  for (int c = 0; c < 6; ++c) {
    burst.emplace_back([&] {
      Client::Options copts;
      copts.tenant = "tight";
      auto client = Client::Connect("127.0.0.1", server.port(), copts);
      if (!client.ok()) Fatal("connect burst", client.status());
      for (int i = 0; i < 20; ++i) {
        auto served = (*client)->Extract("static.mdza", 0, snapshots);
        if (!served.ok()) {
          if ((*client)->last_status() != ReplyStatus::kBusy) {
            Fatal("burst extract", served.status());
          }
          quota_rejects.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : burst) thread.join();
  const uint64_t scheduler_quota_rejects =
      server.scheduler().stats().quota_rejects;

  server.Drain();
  std::remove((root + "/static.mdza").c_str());
  std::remove((root + "/grow.mdza").c_str());
  ::rmdir(root.c_str());

  const bool p99_ok = serial_p99 <= 5.0 * direct_p99;
  const bool quota_ok =
      quota_rejects.load() > 0 && scheduler_quota_rejects >= quota_rejects;

  mdz::bench::TablePrinter table(
      {"Metric", "Direct", "Serial", "Mixed(8c)", "Budget"}, 14);
  table.PrintHeader();
  table.PrintRow({"p50 ms", mdz::bench::Fmt(direct_hist.Quantile(0.5) * 1e3, 3),
                  mdz::bench::Fmt(serial_hist.Quantile(0.5) * 1e3, 3),
                  mdz::bench::Fmt(served_p50 * 1e3, 3), "-"});
  table.PrintRow({"p95 ms",
                  mdz::bench::Fmt(direct_hist.Quantile(0.95) * 1e3, 3),
                  mdz::bench::Fmt(serial_hist.Quantile(0.95) * 1e3, 3),
                  mdz::bench::Fmt(served_p95 * 1e3, 3), "-"});
  table.PrintRow({"p99 ms", mdz::bench::Fmt(direct_p99 * 1e3, 3),
                  mdz::bench::Fmt(serial_p99 * 1e3, 3),
                  mdz::bench::Fmt(served_p99 * 1e3, 3),
                  mdz::bench::Fmt(direct_p99 * 5e3, 3)});
  table.PrintRow({"extract qps", "-", "-", mdz::bench::Fmt(qps, 1), "-"});
  std::printf(
      "\nextracts %llu, busy %llu, quota rejects %llu, identical %s, "
      "serial p99 within 5x: %s\n",
      static_cast<unsigned long long>(extracts.load()),
      static_cast<unsigned long long>(busy.load()),
      static_cast<unsigned long long>(quota_rejects.load()),
      identical.load() ? "yes" : "NO",
      p99_ok ? "yes" : "NO");

  mdz::bench::BenchReport report("serve");
  report.Add("mixed8/extract_identical", identical.load() ? 1.0 : 0.0, "x");
  report.Add("serial/p99_within_budget", p99_ok ? 1.0 : 0.0, "x");
  report.Add("quota/rejects_observed", quota_ok ? 1.0 : 0.0, "x");
  report.Add("direct/cold_extract_p99_ms", direct_p99 * 1e3, "ms",
             kDirectReps);
  report.Add("serial/extract_p99_ms", serial_p99 * 1e3, "ms", kDirectReps);
  report.Add("mixed8/extract_p50_ms", served_p50 * 1e3, "ms");
  report.Add("mixed8/extract_p95_ms", served_p95 * 1e3, "ms");
  report.Add("mixed8/extract_p99_ms", served_p99 * 1e3, "ms");
  report.Add("mixed8/extract_qps", qps, "1/s");
  report.Add("quota/rejects", static_cast<double>(quota_rejects.load()), "1");
  report.Emit();

  if (!identical.load()) return 1;
  return 0;
}
