// Paper Fig. 5: temporal correlations of atom position data. Prints three
// particles' x(t) series (time normalized to 50 samples) per dataset plus
// the temporal-roughness summary that separates the two correlation classes.

#include "analysis/characterize.h"
#include "bench_common.h"

int main() {
  std::printf("=== Paper Fig. 5: temporal correlations (time normalized to 0-50) ===\n\n");

  mdz::bench::BenchReport report("fig5");
  for (const char* name :
       {"Copper-B", "ADK", "Helium-B", "Helium-A", "Pt", "LJ"}) {
    const mdz::core::Trajectory traj = mdz::bench::LoadDataset(name, 0.3);
    const size_t m = traj.num_snapshots();
    const size_t stride = std::max<size_t>(1, m / 50);
    std::printf("--- %s (M=%zu) ---\n", traj.name.c_str(), m);
    for (size_t p : {size_t{0}, traj.num_particles() / 2,
                     traj.num_particles() - 1}) {
      std::printf("atom %-6zu: ", p);
      for (size_t s = 0; s < m; s += stride) {
        std::printf("%.2f ", traj.snapshots[s].axes[0][p]);
      }
      std::printf("\n");
    }
    const double roughness = mdz::analysis::TemporalRoughness(traj, 0);
    std::printf("temporal roughness (mean |dx/dt| / range): %.5f\n\n",
                roughness);
    report.Add(std::string(name) + "/temporal_roughness", roughness, "1");
  }
  report.Emit();
  std::printf(
      "Expected shape (paper): Copper-B / ADK / Helium-B change largely and\n"
      "frequently; Helium-A / Pt / LJ change only slightly between dumps.\n");
  return 0;
}
