// Paper Fig. 15: compression and decompression throughput (MB/s) of all
// lossy compressors across the MD datasets (eps = 1e-3, BS = 10).

#include "bench_common.h"

int main() {
  std::printf(
      "=== Paper Fig. 15: compression/decompression throughput, MB/s "
      "(eps=1e-3, BS=10) ===\n\n");

  mdz::bench::TablePrinter table(
      {"Dataset", "Compressor", "Comp_MB/s", "Dec_MB/s", "CR"}, 12);
  table.PrintHeader();

  for (const auto& dataset : mdz::datagen::AllMdDatasets()) {
    const mdz::core::Trajectory traj =
        mdz::bench::LoadDataset(dataset.name, 0.4);
    const auto field = mdz::bench::AxisField(traj, 0);
    mdz::baselines::CompressorConfig config;
    config.error_bound = 1e-3;
    config.buffer_size = 10;

    for (const auto& info : mdz::baselines::PaperLossyCompressors()) {
      const auto run = mdz::bench::RunCompressor(info, field, config);
      table.PrintRow({std::string(dataset.name), std::string(info.name),
                      mdz::bench::Fmt(run.compress_mbps(), 1),
                      mdz::bench::Fmt(run.decompress_mbps(), 1),
                      mdz::bench::Fmt(run.ratio(), 1)});
    }
  }
  std::printf(
      "\nExpected shape (paper): MDZ is consistently among the fastest;\n"
      "HRTC/MDB vary by dataset; LFZip is the slowest by a wide margin (its\n"
      "NLMS filter touches every value 32 times).\n");
  return 0;
}
