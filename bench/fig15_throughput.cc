// Paper Fig. 15: compression and decompression throughput (MB/s) of all
// lossy compressors across the MD datasets (eps = 1e-3, BS = 10).

#include "bench_common.h"

#include "core/parallel.h"
#include "core/thread_pool.h"

int main() {
  std::printf(
      "=== Paper Fig. 15: compression/decompression throughput, MB/s "
      "(eps=1e-3, BS=10) ===\n\n");

  mdz::bench::TablePrinter table(
      {"Dataset", "Compressor", "Comp_MB/s", "Dec_MB/s", "CR"}, 12);
  table.PrintHeader();

  mdz::bench::BenchReport report("fig15");
  for (const auto& dataset : mdz::datagen::AllMdDatasets()) {
    const mdz::core::Trajectory traj =
        mdz::bench::LoadDataset(dataset.name, 0.4);
    const auto field = mdz::bench::AxisField(traj, 0);
    mdz::baselines::CompressorConfig config;
    config.error_bound = 1e-3;
    config.buffer_size = 10;

    for (const auto& info : mdz::baselines::PaperLossyCompressors()) {
      const auto run = mdz::bench::RunCompressor(info, field, config);
      table.PrintRow({std::string(dataset.name), std::string(info.name),
                      mdz::bench::Fmt(run.compress_mbps(), 1),
                      mdz::bench::Fmt(run.decompress_mbps(), 1),
                      mdz::bench::Fmt(run.ratio(), 1)});
      report.AddRun(std::string(dataset.name) + "/bs10/" +
                        std::string(info.name),
                    run);
    }
  }
  std::printf(
      "\nExpected shape (paper): MDZ is consistently among the fastest;\n"
      "HRTC/MDB vary by dataset; LFZip is the slowest by a wide margin (its\n"
      "NLMS filter touches every value 32 times).\n");

  // --- Extension: MDZ thread-pool scaling ---------------------------------
  // Full-trajectory (3-axis) compression/decompression on the shared pool:
  // axis streams, ADP trial encodes, and block decodes all fan out onto the
  // same workers. Output bytes are identical at every thread count.
  std::printf(
      "\n=== Extension: MDZ threads sweep (shared thread-pool engine, "
      "3-axis trajectory) ===\n\n");
  mdz::bench::TablePrinter sweep(
      {"Dataset", "Threads", "Comp_MB/s", "Dec_MB/s", "Comp_spdup", "Dec_spdup"},
      12);
  sweep.PrintHeader();

  for (const char* name : {"Copper-B", "Helium-B"}) {
    const mdz::core::Trajectory traj = mdz::bench::LoadDataset(name, 0.4);
    const double raw_mb = traj.raw_bytes() / 1e6;
    mdz::core::Options options;
    options.error_bound = 1e-3;
    options.buffer_size = 10;

    double serial_comp = 0.0, serial_dec = 0.0;
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      mdz::core::ThreadPool pool(threads);
      mdz::WallTimer timer;
      auto compressed =
          mdz::core::CompressTrajectoryParallel(traj, options, &pool);
      const double comp_s = timer.ElapsedSeconds();
      if (!compressed.ok()) {
        std::fprintf(stderr, "compress failed: %s\n",
                     compressed.status().ToString().c_str());
        return 1;
      }
      timer.Reset();
      auto decoded =
          mdz::core::DecompressTrajectoryParallel(*compressed, &pool);
      const double dec_s = timer.ElapsedSeconds();
      if (!decoded.ok()) {
        std::fprintf(stderr, "decompress failed: %s\n",
                     decoded.status().ToString().c_str());
        return 1;
      }
      if (threads == 1) {
        serial_comp = comp_s;
        serial_dec = dec_s;
      }
      sweep.PrintRow({name, std::to_string(threads),
                      mdz::bench::Fmt(raw_mb / comp_s, 1),
                      mdz::bench::Fmt(raw_mb / dec_s, 1),
                      mdz::bench::Fmt(comp_s > 0 ? serial_comp / comp_s : 0.0, 2),
                      mdz::bench::Fmt(dec_s > 0 ? serial_dec / dec_s : 0.0, 2)});
      const std::string prefix = std::string(name) + "/threads" +
                                 std::to_string(threads) + "/MDZ";
      report.Add(prefix + "/compress_mbps", raw_mb / comp_s, "MB/s");
      report.Add(prefix + "/decompress_mbps", raw_mb / dec_s, "MB/s");
    }
  }
  report.Emit();
  std::printf(
      "\nExpected shape: compression scales past 3x (axis tasks + concurrent\n"
      "ADP trial encodes); decompression scales with the number of\n"
      "independently decodable blocks per stream.\n");
  return 0;
}
