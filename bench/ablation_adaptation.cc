// Ablation: ADP's re-evaluation interval (paper Section VI-D fixes it at 50
// compression operations, claiming <6% overhead and timely method updates).
// Sweeps the interval and reports compression ratio + throughput on a
// regime-switching stream, plus the fixed methods as anchors.

#include "bench_common.h"
#include "mdz_variants.h"
#include "util/rng.h"

namespace {

// Same regime-switching construction as fig10: smooth first half, vibrating
// second half.
std::vector<std::vector<double>> RegimeSwitchField(size_t m, size_t n) {
  mdz::Rng rng(77);
  std::vector<int> level(n);
  for (size_t i = 0; i < n; ++i) level[i] = static_cast<int>(i % 24);
  std::vector<std::vector<double>> field(m, std::vector<double>(n));
  std::vector<double> vib(n);
  for (size_t i = 0; i < n; ++i) vib[i] = rng.Gaussian(0.0, 0.05);
  for (size_t s = 0; s < m; ++s) {
    const bool smooth = s < m / 2;
    for (size_t i = 0; i < n; ++i) {
      if (s > 0) {
        vib[i] = smooth ? vib[i] + rng.Gaussian(0.0, 0.004)
                        : rng.Gaussian(0.0, 0.05);
      }
      field[s][i] = 1.5 * level[i] + vib[i];
    }
  }
  return field;
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation: ADP adaptation interval (regime-switching stream, "
      "BS=10) ===\n\n");

  const size_t m = std::max<size_t>(
      100, static_cast<size_t>(600 * mdz::bench::SizeScale()));
  const auto field = RegimeSwitchField(m, 2000);
  const size_t raw = field.size() * field[0].size() * sizeof(double);

  mdz::bench::TablePrinter table(
      {"Config", "CR", "Comp_MB/s", "AdaptRuns"}, 14);
  table.PrintHeader();

  mdz::bench::BenchReport report("ablation_adaptation");
  for (auto method : {mdz::core::Method::kVQ, mdz::core::Method::kVQT,
                      mdz::core::Method::kMT}) {
    mdz::core::Options options;
    options.method = method;
    mdz::WallTimer timer;
    auto out = mdz::core::CompressField(field, options);
    const double seconds = timer.ElapsedSeconds();
    if (!out.ok()) return 1;
    table.PrintRow({std::string(mdz::core::MethodName(method)),
                    mdz::bench::Fmt(static_cast<double>(raw) / out->size(), 1),
                    mdz::bench::Fmt(raw / 1e6 / seconds, 1), "-"});
    const std::string prefix =
        "regime_switch/" + std::string(mdz::core::MethodName(method));
    report.Add(prefix + "/cr", static_cast<double>(raw) / out->size(), "x");
    report.Add(prefix + "/compress_mbps", raw / 1e6 / seconds, "MB/s");
  }

  for (uint32_t interval : {1u, 2u, 5u, 10u, 25u, 50u, 1000u}) {
    mdz::core::Options options;
    options.method = mdz::core::Method::kAdaptive;
    options.adaptation_interval = interval;
    auto compressor = mdz::core::FieldCompressor::Create(field[0].size(),
                                                         options);
    if (!compressor.ok()) return 1;
    mdz::WallTimer timer;
    for (const auto& snapshot : field) {
      if (!(*compressor)->Append(snapshot).ok()) return 1;
    }
    if (!(*compressor)->Finish().ok()) return 1;
    const double seconds = timer.ElapsedSeconds();
    const auto& stats = (*compressor)->stats();
    table.PrintRow({"ADP@" + std::to_string(interval),
                    mdz::bench::Fmt(stats.compression_ratio(), 1),
                    mdz::bench::Fmt(raw / 1e6 / seconds, 1),
                    std::to_string(stats.adaptation_runs)});
    const std::string prefix =
        "regime_switch/ADP" + std::to_string(interval);
    report.Add(prefix + "/cr", stats.compression_ratio(), "x");
    report.Add(prefix + "/compress_mbps", raw / 1e6 / seconds, "MB/s");
  }
  report.Emit();
  std::printf(
      "\nExpected shape: tiny intervals track regime changes perfectly but\n"
      "pay ~3x trial-compression cost; interval 50 (the paper's default)\n"
      "loses little ratio while keeping the overhead under a few percent;\n"
      "interval 1000 never re-evaluates and misses the switch.\n");
  return 0;
}
