// Paper Fig. 9: compression/decompression speed (and ratio) of VQ, VQT and
// MT as a function of the quantization scale, on Helium-B with eps = 1e-3 and
// BS = 10. Motivates the default scale of 1024.

#include "bench_common.h"
#include "core/mdz.h"
#include "util/timer.h"

int main() {
  std::printf(
      "=== Paper Fig. 9: performance vs quantization scale (Helium-B, "
      "eps=1e-3, BS=10) ===\n\n");

  const mdz::core::Trajectory traj = mdz::bench::LoadDataset("Helium-B");
  const auto field = mdz::bench::AxisField(traj, 0);
  const size_t raw = field.size() * field[0].size() * sizeof(double);

  mdz::bench::TablePrinter table({"Scale", "Method", "Comp_MB/s", "Dec_MB/s",
                                  "CR"},
                                 12);
  table.PrintHeader();
  mdz::bench::BenchReport report("fig9");

  for (uint32_t scale : {64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
    for (auto method : {mdz::core::Method::kVQ, mdz::core::Method::kVQT,
                        mdz::core::Method::kMT}) {
      mdz::core::Options options;
      options.method = method;
      options.error_bound = 1e-3;
      options.buffer_size = 10;
      options.quantization_scale = scale;

      mdz::WallTimer timer;
      auto compressed = mdz::core::CompressField(field, options);
      const double comp_s = timer.ElapsedSeconds();
      if (!compressed.ok()) continue;

      timer.Reset();
      auto decoded = mdz::core::DecompressField(*compressed);
      const double dec_s = timer.ElapsedSeconds();
      if (!decoded.ok()) continue;

      table.PrintRow({std::to_string(scale),
                      std::string(mdz::core::MethodName(method)),
                      mdz::bench::Fmt(raw / 1e6 / comp_s, 1),
                      mdz::bench::Fmt(raw / 1e6 / dec_s, 1),
                      mdz::bench::Fmt(static_cast<double>(raw) /
                                          compressed->size(),
                                      1)});
      const std::string prefix = "Helium-B/scale" + std::to_string(scale) +
                                 "/" +
                                 std::string(mdz::core::MethodName(method));
      report.Add(prefix + "/compress_mbps", raw / 1e6 / comp_s, "MB/s");
      report.Add(prefix + "/decompress_mbps", raw / 1e6 / dec_s, "MB/s");
      report.Add(prefix + "/cr",
                 static_cast<double>(raw) / compressed->size(), "x");
    }
  }
  report.Emit();
  std::printf(
      "\nExpected shape (paper): throughput drops several-fold as the scale\n"
      "grows from 64 to 65536 (bigger Huffman tables); 1024 keeps speed high\n"
      "with no ratio loss — hence the default.\n");
  return 0;
}
