// Extension study (beyond the paper): MDZ vs SZ3-style temporal spline
// interpolation (the paper's related-work "SZ-Interp", which the authors
// later developed into SZ3 — the post-2022 state of the art). Interpolation
// predicts each snapshot from *both* temporal neighbors, halving the
// residual on smooth trajectories, at the cost of losing streaming/random-
// access decode (a buffer can only be decoded in interpolation order).

#include "baselines/sz3_interp.h"
#include "bench_common.h"

int main() {
  std::printf(
      "=== Extension: MDZ vs SZ3 temporal interpolation (eps=1e-3) ===\n\n");

  auto sz3 = mdz::baselines::LossyCompressorByName("SZ3");
  auto mdz_info = mdz::baselines::LossyCompressorByName("MDZ");
  if (!sz3.ok() || !mdz_info.ok()) return 1;

  // MDZ with the TI (temporal interpolation) predictor added to ADP's
  // candidate set — the upgrade suggested by this comparison.
  auto mdz_ti_compress = [](const mdz::baselines::Field& field,
                            const mdz::baselines::CompressorConfig& config)
      -> mdz::Result<std::vector<uint8_t>> {
    mdz::core::Options options;
    options.error_bound = config.error_bound;
    options.buffer_size = config.buffer_size;
    options.enable_interpolation = true;
    return mdz::core::CompressField(field, options);
  };
  const mdz::baselines::LossyCompressorInfo mdz_ti{
      "MDZ+TI", mdz_ti_compress,
      [](std::span<const uint8_t> data) -> mdz::Result<mdz::baselines::Field> {
        return mdz::core::DecompressField(data);
      }};

  mdz::bench::TablePrinter table(
      {"Dataset", "BS", "MDZ_CR", "SZ3_CR", "MDZ+TI_CR", "Winner"}, 11);
  table.PrintHeader();

  mdz::bench::BenchReport report("ext_sz3");
  for (const auto& dataset : mdz::datagen::AllMdDatasets()) {
    const mdz::core::Trajectory traj =
        mdz::bench::LoadDataset(dataset.name, 0.4);
    for (uint32_t bs : {10u, 100u}) {
      mdz::baselines::CompressorConfig config;
      config.error_bound = 1e-3;
      config.buffer_size = bs;
      const double mdz_cr =
          mdz::bench::TrajectoryRatio(*mdz_info, traj, config);
      const double sz3_cr = mdz::bench::TrajectoryRatio(*sz3, traj, config);
      const double ti_cr = mdz::bench::TrajectoryRatio(mdz_ti, traj, config);
      const char* winner = (ti_cr >= sz3_cr && ti_cr >= mdz_cr) ? "MDZ+TI"
                           : (sz3_cr >= mdz_cr)                 ? "SZ3"
                                                                : "MDZ";
      table.PrintRow({std::string(dataset.name), std::to_string(bs),
                      mdz::bench::Fmt(mdz_cr, 1), mdz::bench::Fmt(sz3_cr, 1),
                      mdz::bench::Fmt(ti_cr, 1), winner});
      const std::string prefix =
          std::string(dataset.name) + "/bs" + std::to_string(bs);
      report.Add(prefix + "/MDZ/cr", mdz_cr, "x");
      report.Add(prefix + "/SZ3/cr", sz3_cr, "x");
      report.Add(prefix + "/MDZ+TI/cr", ti_cr, "x");
    }
  }
  report.Emit();
  std::printf(
      "\nReading: two-sided interpolation overtakes MDZ's one-sided time\n"
      "prediction on temporally smooth data, especially at small buffers —\n"
      "consistent with the field's post-2022 move to interpolation-based\n"
      "prediction. MDZ keeps the edge where spatial level structure\n"
      "dominates (strong VQ regime) and retains per-snapshot random access,\n"
      "which interpolation gives up. MDZ+TI — this repo's extension adding\n"
      "interpolation as a fourth ADP candidate (Options::enable_interpolation)\n"
      "— matches SZ3 in its strongholds and keeps MDZ's wins elsewhere,\n"
      "leading or tying on nearly every row (the residual SZ3 wins are\n"
      "selection hysteresis: ADP re-evaluates only every 50 buffers).\n");
  return 0;
}
