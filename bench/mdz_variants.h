#ifndef MDZ_BENCH_MDZ_VARIANTS_H_
#define MDZ_BENCH_MDZ_VARIANTS_H_

// Registry-style adapters for MDZ's individual prediction strategies (VQ /
// VQT / MT / ADP), used by the benches that compare them (Table VI, Fig.
// 9/10/11).

#include "baselines/compressor_interface.h"
#include "core/mdz.h"

namespace mdz::bench {

template <core::Method kMethod>
Result<std::vector<uint8_t>> MdzVariantCompress(
    const baselines::Field& field, const baselines::CompressorConfig& config) {
  core::Options options;
  options.method = kMethod;
  options.error_bound = config.error_bound;
  options.buffer_size = config.buffer_size;
  return core::CompressField(field, options);
}

inline Result<baselines::Field> MdzVariantDecompress(
    std::span<const uint8_t> data) {
  return core::DecompressField(data);
}

inline std::vector<baselines::LossyCompressorInfo> MdzVariants() {
  return {
      {"VQ", &MdzVariantCompress<core::Method::kVQ>, &MdzVariantDecompress},
      {"VQT", &MdzVariantCompress<core::Method::kVQT>, &MdzVariantDecompress},
      {"MT", &MdzVariantCompress<core::Method::kMT>, &MdzVariantDecompress},
      {"ADP", &MdzVariantCompress<core::Method::kAdaptive>,
       &MdzVariantDecompress},
  };
}

}  // namespace mdz::bench

#endif  // MDZ_BENCH_MDZ_VARIANTS_H_
