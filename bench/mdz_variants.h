#ifndef MDZ_BENCH_MDZ_VARIANTS_H_
#define MDZ_BENCH_MDZ_VARIANTS_H_

// Registry-style adapters for MDZ's individual prediction strategies (VQ /
// VQT / MT / ADP, plus the grown L2D / BA candidates and ADP+ — ADP trialing
// the full candidate set), used by the benches that compare them (Table VI,
// Fig. 9/10/11).

#include "baselines/compressor_interface.h"
#include "core/mdz.h"

namespace mdz::bench {

template <core::Method kMethod>
Result<std::vector<uint8_t>> MdzVariantCompress(
    const baselines::Field& field, const baselines::CompressorConfig& config) {
  core::Options options;
  options.method = kMethod;
  options.error_bound = config.error_bound;
  options.buffer_size = config.buffer_size;
  return core::CompressField(field, options);
}

inline Result<baselines::Field> MdzVariantDecompress(
    std::span<const uint8_t> data) {
  return core::DecompressField(data);
}

// ADP with the grown trial set: the paper candidates plus TI, the 2-D
// Lorenzo predictor and the bit-adaptive quantizer. The stream stays
// self-describing, so MdzVariantDecompress reads it unchanged.
inline Result<std::vector<uint8_t>> MdzAdpPlusCompress(
    const baselines::Field& field, const baselines::CompressorConfig& config) {
  core::Options options;
  options.method = core::Method::kAdaptive;
  options.adp_methods = {core::Method::kVQ, core::Method::kVQT,
                         core::Method::kMT, core::Method::kTI,
                         core::Method::kLorenzo2D,
                         core::Method::kBitAdaptive};
  options.error_bound = config.error_bound;
  options.buffer_size = config.buffer_size;
  return core::CompressField(field, options);
}

inline std::vector<baselines::LossyCompressorInfo> MdzVariants() {
  return {
      {"VQ", &MdzVariantCompress<core::Method::kVQ>, &MdzVariantDecompress},
      {"VQT", &MdzVariantCompress<core::Method::kVQT>, &MdzVariantDecompress},
      {"MT", &MdzVariantCompress<core::Method::kMT>, &MdzVariantDecompress},
      {"ADP", &MdzVariantCompress<core::Method::kAdaptive>,
       &MdzVariantDecompress},
  };
}

// The Fig. 11 superset: the paper columns plus the new fixed candidates and
// the ADP+ trial set.
inline std::vector<baselines::LossyCompressorInfo> MdzCandidateVariants() {
  auto variants = MdzVariants();
  variants.push_back({"L2D", &MdzVariantCompress<core::Method::kLorenzo2D>,
                      &MdzVariantDecompress});
  variants.push_back({"BA", &MdzVariantCompress<core::Method::kBitAdaptive>,
                      &MdzVariantDecompress});
  variants.push_back({"ADP+", &MdzAdpPlusCompress, &MdzVariantDecompress});
  return variants;
}

}  // namespace mdz::bench

#endif  // MDZ_BENCH_MDZ_VARIANTS_H_
