// Paper Table III: compression ratio of the Seq-1 (snapshot-major) vs Seq-2
// (particle-major) quantization-code layouts on Helium-B with the MT
// compressor, BS = 10, per axis, for three error bounds.

#include "bench_common.h"

int main() {
  std::printf("=== Paper Table III: Seq-1 vs Seq-2 layout, Helium-B, MT, BS=10 ===\n\n");

  const mdz::core::Trajectory traj = mdz::bench::LoadDataset("Helium-B");
  const double bounds[] = {1e-1, 5e-2, 1e-2};

  mdz::bench::TablePrinter table(
      {"Axis", "eps", "Seq-1_CR", "Seq-2_CR", "Gain%"}, 12);
  table.PrintHeader();

  mdz::bench::BenchReport report("table3");
  for (int axis = 0; axis < 3; ++axis) {
    for (double eb : bounds) {
      double ratios[2];
      for (int layout = 0; layout < 2; ++layout) {
        mdz::core::Options options;
        options.method = mdz::core::Method::kMT;
        options.buffer_size = 10;
        options.error_bound = eb;
        options.layout = (layout == 0)
                             ? mdz::core::CodeLayout::kSnapshotMajor
                             : mdz::core::CodeLayout::kParticleMajor;
        const auto field = mdz::bench::AxisField(traj, axis);
        auto compressed = mdz::core::CompressField(field, options);
        if (!compressed.ok()) {
          std::fprintf(stderr, "compress failed: %s\n",
                       compressed.status().ToString().c_str());
          return 1;
        }
        const size_t raw = field.size() * field[0].size() * sizeof(double);
        ratios[layout] = static_cast<double>(raw) / compressed->size();
      }
      table.PrintRow({std::string(1, "xyz"[axis]), mdz::bench::Fmt(eb, 3),
                      mdz::bench::Fmt(ratios[0], 1),
                      mdz::bench::Fmt(ratios[1], 1),
                      mdz::bench::Fmt(100.0 * (ratios[1] / ratios[0] - 1.0), 1)});
      char eb_label[32];
      std::snprintf(eb_label, sizeof(eb_label), "eb%g", eb);
      const std::string prefix = "Helium-B/" + std::string(1, "xyz"[axis]) +
                                 "/" + eb_label;
      report.Add(prefix + "/seq1/cr", ratios[0], "x");
      report.Add(prefix + "/seq2/cr", ratios[1], "x");
    }
  }
  report.Emit();
  std::printf(
      "\nExpected shape (paper): Seq-2 improves CR by roughly 35-40%% at\n"
      "loose bounds on this temporally stable dataset.\n");
  return 0;
}
