// Paper Fig. 13: rate-distortion curves — bit rate (bits/value) vs PSNR (dB)
// for every lossy compressor, swept over error bounds, on four
// representative datasets. MDZ should sit up-and-left of every baseline.

#include "analysis/metrics.h"
#include "bench_common.h"

int main() {
  std::printf("=== Paper Fig. 13: rate-distortion (bit rate vs PSNR) ===\n\n");

  mdz::bench::TablePrinter table(
      {"Dataset", "Compressor", "eps", "BitRate", "PSNR_dB"}, 12);
  table.PrintHeader();

  const double bounds[] = {1e-2, 1e-3, 1e-4, 1e-5};

  mdz::bench::BenchReport report("fig13");
  for (const char* name : {"Copper-B", "Helium-B", "ADK", "Pt"}) {
    const mdz::core::Trajectory traj = mdz::bench::LoadDataset(name, 0.3);
    const auto field = mdz::bench::AxisField(traj, 0);
    std::vector<double> orig;
    for (const auto& s : field) orig.insert(orig.end(), s.begin(), s.end());

    for (const auto& info : mdz::baselines::PaperLossyCompressors()) {
      for (double eb : bounds) {
        mdz::baselines::CompressorConfig config;
        config.error_bound = eb;
        config.buffer_size = 10;
        mdz::baselines::Field decoded;
        const auto run = mdz::bench::RunCompressor(info, field, config,
                                                   &decoded);
        if (decoded.empty()) continue;
        std::vector<double> dec;
        for (const auto& s : decoded) dec.insert(dec.end(), s.begin(), s.end());
        const auto metrics = mdz::analysis::ComputeErrorMetrics(orig, dec);
        const double bitrate =
            mdz::analysis::BitRate(run.compressed_bytes, orig.size());
        table.PrintRow({traj.name, std::string(info.name),
                        mdz::bench::Fmt(eb, 5), mdz::bench::Fmt(bitrate, 3),
                        mdz::bench::Fmt(metrics.psnr, 1)});
        char eb_label[32];
        std::snprintf(eb_label, sizeof(eb_label), "eb%g", eb);
        const std::string prefix = traj.name + "/" + eb_label + "/" +
                                   std::string(info.name);
        report.Add(prefix + "/bitrate", bitrate, "bits");
        report.Add(prefix + "/psnr", metrics.psnr, "dB");
      }
    }
  }
  report.Emit();
  std::printf(
      "\nExpected shape (paper): at matched PSNR, MDZ's bit rate is the\n"
      "lowest (roughly half of the baselines'); at matched bit rate its PSNR\n"
      "is ~20 dB higher in most settings.\n");
  return 0;
}
