// Paper Table VI: MaxError and NRMSE of the decompressed Copper-B dataset at
// a matched compression ratio of 10 (BS = 10), for every lossy baseline and
// for MDZ's VQ / VQT / MT / ADP variants. MDB is excluded (it cannot reach
// CR = 10), as in the paper.

#include "analysis/metrics.h"
#include "bench_common.h"
#include "mdz_variants.h"

int main() {
  std::printf(
      "=== Paper Table VI: MaxError / NRMSE at CR=10, Copper-B, BS=10 ===\n\n");

  const mdz::core::Trajectory traj = mdz::bench::LoadDataset("Copper-B", 0.4);

  std::vector<mdz::baselines::LossyCompressorInfo> compressors;
  for (const auto& info : mdz::baselines::PaperLossyCompressors()) {
    if (info.name == "MDB") continue;  // cannot reach CR=10 (paper Sec VII-C3)
    if (info.name == "MDZ") continue;  // covered by the VQ/VQT/MT/ADP variants
    compressors.push_back(info);
  }
  for (const auto& info : mdz::bench::MdzVariants()) compressors.push_back(info);

  mdz::bench::TablePrinter table(
      {"Compressor", "Axis", "CR", "MaxError", "NRMSE_1e-4"}, 13);
  table.PrintHeader();

  mdz::bench::BenchReport report("table6");
  for (const auto& info : compressors) {
    for (int axis = 0; axis < 3; ++axis) {
      const auto field = mdz::bench::AxisField(traj, axis);
      const auto matched =
          mdz::bench::MatchCompressionRatio(info, field, 10.0, 10);
      if (matched.decoded.empty()) {
        table.PrintRow({std::string(info.name), std::string(1, "xyz"[axis]),
                        "n/a", "n/a", "n/a"});
        continue;
      }
      // Flatten both for metric computation.
      std::vector<double> orig, dec;
      for (size_t s = 0; s < field.size(); ++s) {
        orig.insert(orig.end(), field[s].begin(), field[s].end());
        dec.insert(dec.end(), matched.decoded[s].begin(),
                   matched.decoded[s].end());
      }
      const auto metrics = mdz::analysis::ComputeErrorMetrics(orig, dec);
      table.PrintRow({std::string(info.name), std::string(1, "xyz"[axis]),
                      mdz::bench::Fmt(matched.achieved_ratio, 1),
                      mdz::bench::Fmt(metrics.max_error, 4),
                      mdz::bench::Fmt(metrics.nrmse * 1e4, 2)});
      const std::string prefix = "Copper-B/cr10/" + std::string(info.name) +
                                 "/" + std::string(1, "xyz"[axis]);
      report.Add(prefix + "/max_error", metrics.max_error, "1");
      report.Add(prefix + "/nrmse", metrics.nrmse, "1");
    }
  }
  report.Emit();
  std::printf(
      "\nExpected shape (paper): at the same CR, MDZ variants (VQ on x/y, MT\n"
      "on z, ADP matching the per-axis best) show the lowest MaxError and\n"
      "NRMSE; ADP equals the best variant on every axis.\n");
  return 0;
}
