// Paper Table VII: runtime breakdown of the Lennard-Jones benchmark with and
// without in-situ MDZ compression of the dump stream. The paper runs LAMMPS
// on a cluster; here the substrate is this repository's own MD engine on one
// core (so the paper's Comm column is absent), but the experiment is the
// same: computation vs output share of the runtime, at two dump frequencies
// and several system sizes.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "md/dump.h"
#include "md/lj_simulation.h"
#include "util/timer.h"

namespace {

struct RunResult {
  double total_seconds = 0.0;
  double comp_pct = 0.0;    // force + integration
  double output_pct = 0.0;  // dump serialization + compression + I/O
  size_t dump_bytes = 0;
};

RunResult RunSimulation(int cells, int steps, int dump_every, bool use_mdz) {
  mdz::md::LjOptions options;
  options.cells = cells;
  auto sim = mdz::md::LjSimulation::Create(options);
  if (!sim.ok()) {
    std::fprintf(stderr, "sim create failed\n");
    std::exit(1);
  }

  const std::string path = std::string("/tmp/mdz_table7_dump_") +
                           (use_mdz ? "mdz" : "raw") + ".bin";
  std::unique_ptr<mdz::md::DumpWriter> writer;
  if (use_mdz) {
    mdz::core::Options mdz_options;
    auto w = mdz::md::MdzDumpWriter::Open(path, sim->num_atoms(), mdz_options);
    if (!w.ok()) std::exit(1);
    writer = std::move(w).value();
  } else {
    auto w = mdz::md::RawDumpWriter::Open(path);
    if (!w.ok()) std::exit(1);
    writer = std::move(w).value();
  }

  mdz::WallTimer timer;
  for (int step = 0; step < steps; step += dump_every) {
    sim->Run(dump_every);
    if (!writer->WriteSnapshot(sim->positions()).ok()) std::exit(1);
  }
  if (!writer->Finish().ok()) std::exit(1);

  RunResult result;
  result.total_seconds = timer.ElapsedSeconds();
  const double comp = sim->force_seconds() + sim->integrate_seconds();
  result.comp_pct = 100.0 * comp / result.total_seconds;
  result.output_pct = 100.0 * writer->output_seconds() / result.total_seconds;
  result.dump_bytes = writer->bytes_written();
  std::remove(path.c_str());
  return result;
}

}  // namespace

int main() {
  std::printf(
      "=== Paper Table VII: LJ simulation runtime breakdown w/ and w/o MDZ ===\n"
      "(single-node mini-MD engine: Comp = force+integrate, Output = dump;\n"
      " the paper's multi-node Comm column does not apply here)\n\n");

  const double scale = mdz::bench::SizeScale();
  const int steps = static_cast<int>(2000 * scale) / 10 * 10 + 10;

  mdz::bench::TablePrinter table({"Freq", "Atoms", "Option", "Seconds",
                                  "Comp%", "Output%", "DumpMB"},
                                 10);
  table.PrintHeader();

  mdz::bench::BenchReport report("table7");
  for (int dump_every : {10, 100}) {
    for (int cells : {8, 12}) {  // 2048 and 6912 atoms
      const size_t atoms = static_cast<size_t>(cells) * cells * cells * 4;
      for (bool use_mdz : {false, true}) {
        const RunResult r = RunSimulation(cells, steps, dump_every, use_mdz);
        table.PrintRow({std::to_string(dump_every), std::to_string(atoms),
                        use_mdz ? "w MDZ" : "w/o MDZ",
                        mdz::bench::Fmt(r.total_seconds, 1),
                        mdz::bench::Fmt(r.comp_pct, 1),
                        mdz::bench::Fmt(r.output_pct, 1),
                        mdz::bench::Fmt(r.dump_bytes / 1e6, 2)});
        const std::string prefix = "lj/freq" + std::to_string(dump_every) +
                                   "/atoms" + std::to_string(atoms) +
                                   (use_mdz ? "/mdz" : "/raw");
        report.Add(prefix + "/total_seconds", r.total_seconds, "s");
        report.Add(prefix + "/output_pct", r.output_pct, "%");
        report.Add(prefix + "/dump_bytes",
                   static_cast<double>(r.dump_bytes), "bytes");
      }
    }
  }
  report.Emit();
  std::printf(
      "\nExpected shape (paper): enabling MDZ leaves total runtime within\n"
      "noise, shrinks the dump by >10x, and at high dump frequency reduces\n"
      "the output share of the runtime.\n");
  return 0;
}
