// Paper Fig. 4: value distribution of atom position data. Prints a 24-bin
// histogram of the x-axis per dataset plus the detected peak count —
// multi-peak distributions are the signature of level clustering.

#include "analysis/characterize.h"
#include "bench_common.h"

int main() {
  std::printf("=== Paper Fig. 4: frequencies of atom position data ===\n\n");

  mdz::bench::BenchReport report("fig4");
  for (const char* name :
       {"Copper-B", "ADK", "Helium-A", "Helium-B", "Pt", "LJ"}) {
    const mdz::core::Trajectory traj = mdz::bench::LoadDataset(name, 0.3);
    const auto& x = traj.snapshots[0].axes[0];
    const auto hist = mdz::analysis::ComputeHistogram(x, 24);
    size_t tallest = 1;
    for (size_t c : hist.counts) tallest = std::max(tallest, c);

    std::printf("--- %s ---\n", traj.name.c_str());
    for (size_t b = 0; b < hist.counts.size(); ++b) {
      const int bar = static_cast<int>(50.0 * hist.counts[b] / tallest);
      std::printf("%8.2f |", hist.BinCenter(b));
      for (int i = 0; i < bar; ++i) std::printf("#");
      std::printf(" %zu\n", hist.counts[b]);
    }
    const auto fine = mdz::analysis::ComputeHistogram(x, 120);
    const int peaks = mdz::analysis::CountHistogramPeaks(fine);
    std::printf("peaks (120-bin): %d\n\n", peaks);
    report.Add(std::string(name) + "/histogram_peaks", peaks, "1");
  }
  report.Emit();
  std::printf(
      "Expected shape (paper): Copper-B / Helium-A / Helium-B are multi-peak\n"
      "(level clustering); ADK / Pt / LJ are near-uniform across the box.\n");
  return 0;
}
