#ifndef MDZ_CODEC_HUFFMAN_H_
#define MDZ_CODEC_HUFFMAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace mdz::codec {

// Canonical Huffman coder over a dense alphabet of uint32 symbols.
//
// This is the entropy stage of the SZ-style pipeline (paper Fig. 2/6): the
// quantization bins and VQ level-index deltas are Huffman-coded before the
// dictionary (LZ) stage. The encoded stream is self-describing: it embeds the
// alphabet size, the canonical code lengths (run-length compressed) and the
// symbol count, so decoding needs no side channel.
//
// Code lengths are limited to kMaxCodeLength bits; if the optimal tree is
// deeper (extremely skewed distributions), frequencies are damped and the
// tree rebuilt, which costs a negligible fraction of a bit per symbol.
inline constexpr int kMaxCodeLength = 32;

// Encodes `symbols`; every symbol must be < alphabet_size.
// Returns the encoded bytes.
std::vector<uint8_t> HuffmanEncode(std::span<const uint32_t> symbols,
                                   uint32_t alphabet_size);

// Decodes a stream produced by HuffmanEncode into *out (overwritten).
Status HuffmanDecode(std::span<const uint8_t> data,
                     std::vector<uint32_t>* out);

// Exposed for testing: computes canonical code lengths for the given symbol
// frequencies (zero-frequency symbols get length 0). The returned lengths
// satisfy Kraft equality over the used symbols and are <= kMaxCodeLength.
std::vector<uint8_t> BuildCodeLengths(std::span<const uint64_t> freqs);

// Exposed for benches: entropy (bits/symbol) of a frequency histogram.
double ShannonEntropyBits(std::span<const uint64_t> freqs);

}  // namespace mdz::codec

#endif  // MDZ_CODEC_HUFFMAN_H_
