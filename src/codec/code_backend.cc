#include "codec/code_backend.h"

#include <algorithm>
#include <cmath>

#include "codec/bitpack.h"
#include "codec/huffman.h"
#include "codec/lz.h"
#include "obs/span.h"
#include "util/byte_buffer.h"

namespace mdz::codec {

namespace {

// One histogram pass serves two purposes: the dominant-code count decides
// whether the raw-u16 candidate is worth trying, and the Shannon entropy of
// the laid-out codes feeds telemetry.
void CodeHistogram(std::span<const uint32_t> laid, uint32_t code_limit,
                   size_t* dominant, double* entropy_bits) {
  *dominant = 0;
  *entropy_bits = 0.0;
  if (laid.empty()) return;
  std::vector<uint32_t> histogram(code_limit, 0);
  for (uint32_t code : laid) ++histogram[code];
  const double total = static_cast<double>(laid.size());
  for (uint32_t count : histogram) {
    *dominant = std::max<size_t>(*dominant, count);
    if (count > 0) {
      const double p = count / total;
      *entropy_bits -= p * std::log2(p);
    }
  }
}

}  // namespace

MainPayload HuffmanLzCodeBackend::EncodeMain(
    std::span<const uint32_t> aux_codes, std::span<const uint32_t> laid) const {
  std::vector<uint8_t> jhuff;
  std::vector<uint8_t> bhuff;
  {
    MDZ_SPAN("huffman_encode");
    if (!aux_codes.empty()) jhuff = HuffmanEncode(aux_codes, aux_limit_);
    bhuff = HuffmanEncode(laid, code_limit_);
  }

  MainPayload result;
  size_t dominant = 0;
  CodeHistogram(laid, code_limit_, &dominant, &result.entropy_bits);
  result.huffman_bytes = jhuff.size() + bhuff.size();

  MDZ_SPAN("lossless_backend");
  ByteWriter main0;
  main0.PutBlob(jhuff);
  main0.PutBytes(bhuff.data(), bhuff.size());
  result.main_lz = LzCompress(main0.bytes());
  result.mode = 0;

  // Run structure only pays off when one code dominates; skip the second
  // candidate otherwise to keep compression throughput high.
  const bool try_packed =
      !laid.empty() && dominant * 2 > laid.size() && code_limit_ <= (1u << 16);
  if (try_packed) {
    ByteWriter main1;
    main1.PutBlob(jhuff);
    for (uint32_t code : laid) {
      main1.Put<uint16_t>(static_cast<uint16_t>(code));
    }
    std::vector<uint8_t> packed_lz = LzCompress(main1.bytes());
    if (packed_lz.size() < result.main_lz.size()) {
      result.main_lz = std::move(packed_lz);
      result.mode = 1;
    }
  }
  return result;
}

Status HuffmanLzCodeBackend::DecodeMain(uint8_t mode,
                                        std::span<const uint8_t> main_blob,
                                        size_t count,
                                        std::vector<uint32_t>* aux_codes,
                                        std::vector<uint32_t>* laid) const {
  std::vector<uint8_t> main_bytes;
  MDZ_RETURN_IF_ERROR(LzDecompress(main_blob, &main_bytes));
  ByteReader main(main_bytes);
  std::span<const uint8_t> jhuff_blob;
  MDZ_RETURN_IF_ERROR(main.GetBlob(&jhuff_blob));
  aux_codes->clear();
  if (!jhuff_blob.empty()) {
    MDZ_RETURN_IF_ERROR(HuffmanDecode(jhuff_blob, aux_codes));
  }
  laid->clear();
  if (mode == 0) {
    const std::span<const uint8_t> bhuff(main_bytes.data() + main.position(),
                                         main_bytes.size() - main.position());
    MDZ_RETURN_IF_ERROR(HuffmanDecode(bhuff, laid));
  } else {
    if (main.remaining() != count * sizeof(uint16_t)) {
      return Status::Corruption("packed quant code size mismatch");
    }
    laid->resize(count);
    for (size_t i = 0; i < count; ++i) {
      uint16_t code = 0;
      MDZ_RETURN_IF_ERROR(main.Get(&code));
      (*laid)[i] = code;
    }
  }
  if (laid->size() != count) {
    return Status::Corruption("quantization code count mismatch");
  }
  return Status::OK();
}

MainPayload BitpackCodeBackend::EncodeMain(
    std::span<const uint32_t> aux_codes, std::span<const uint32_t> laid) const {
  std::vector<uint8_t> jhuff;
  std::vector<uint8_t> packed;
  {
    MDZ_SPAN("bitpack_encode");
    if (!aux_codes.empty()) jhuff = HuffmanEncode(aux_codes, aux_limit_);
    packed = BitpackEncode(laid);
  }
  MainPayload result;
  size_t dominant = 0;
  CodeHistogram(laid, code_limit_, &dominant, &result.entropy_bits);
  result.huffman_bytes = jhuff.size() + packed.size();
  result.mode = 2;

  MDZ_SPAN("lossless_backend");
  ByteWriter main2;
  main2.PutBlob(jhuff);
  main2.PutBytes(packed.data(), packed.size());
  result.main_lz = LzCompress(main2.bytes());
  return result;
}

Status BitpackCodeBackend::DecodeMain(uint8_t mode,
                                      std::span<const uint8_t> main_blob,
                                      size_t count,
                                      std::vector<uint32_t>* aux_codes,
                                      std::vector<uint32_t>* laid) const {
  if (mode != 2) return Status::Corruption("bad quant-code mode byte");
  std::vector<uint8_t> main_bytes;
  MDZ_RETURN_IF_ERROR(LzDecompress(main_blob, &main_bytes));
  ByteReader main(main_bytes);
  std::span<const uint8_t> jhuff_blob;
  MDZ_RETURN_IF_ERROR(main.GetBlob(&jhuff_blob));
  aux_codes->clear();
  if (!jhuff_blob.empty()) {
    MDZ_RETURN_IF_ERROR(HuffmanDecode(jhuff_blob, aux_codes));
  }
  const std::span<const uint8_t> packed(main_bytes.data() + main.position(),
                                        main_bytes.size() - main.position());
  return BitpackDecode(packed, count, code_limit_, laid);
}

}  // namespace mdz::codec
