#include "codec/zfp_like.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "codec/lz.h"
#include "util/bit_stream.h"
#include "util/byte_buffer.h"
#include "util/unaligned.h"

namespace mdz::codec {

namespace {

constexpr uint64_t kNegabinaryMask = 0xAAAAAAAAAAAAAAAAull;
constexpr int kBlock = 4;
constexpr int kIntBits = 62;     // fixed-point magnitude bits (2 guard bits)
constexpr int kPlanes = 63;      // negabinary planes encoded (MSB..LSB)

inline uint64_t ToNegabinary(int64_t x) {
  return (static_cast<uint64_t>(x) + kNegabinaryMask) ^ kNegabinaryMask;
}

inline int64_t FromNegabinary(uint64_t u) {
  return static_cast<int64_t>((u ^ kNegabinaryMask) - kNegabinaryMask);
}

// ZFP's 1-D forward decorrelating lifting transform on a block of 4.
void ForwardLift(int64_t* p) {
  int64_t x = p[0], y = p[1], z = p[2], w = p[3];
  x += w; x >>= 1; w -= x;
  z += y; z >>= 1; y -= z;
  x += z; x >>= 1; z -= x;
  w += y; w >>= 1; y -= w;
  w += y >> 1; y -= w >> 1;
  p[0] = x; p[1] = y; p[2] = z; p[3] = w;
}

// Inverse of ForwardLift (ZFP inv_lift).
void InverseLift(int64_t* p) {
  int64_t x = p[0], y = p[1], z = p[2], w = p[3];
  y += w >> 1; w -= y >> 1;
  y += w; w <<= 1; w -= y;
  z += x; x <<= 1; x -= z;
  y += z; z <<= 1; z -= y;
  w += x; x <<= 1; x -= w;
  p[0] = x; p[1] = y; p[2] = z; p[3] = w;
}

// Common exponent e such that |v| < 2^e for every block value.
int BlockExponent(const double* v, int n) {
  double max_abs = 0.0;
  for (int i = 0; i < n; ++i) max_abs = std::max(max_abs, std::fabs(v[i]));
  if (max_abs == 0.0) return INT32_MIN / 2;
  int e;
  std::frexp(max_abs, &e);  // max_abs = f * 2^e with f in [0.5, 1)
  return e;
}

// --- Reversible mode helpers (ordered-integer domain) ---

inline uint64_t ToOrdered(double d) {
  const uint64_t u = BitCast<uint64_t>(d);
  return (u & 0x8000000000000000ull) ? ~u : (u | 0x8000000000000000ull);
}

inline double FromOrdered(uint64_t u) {
  u = (u & 0x8000000000000000ull) ? (u & 0x7FFFFFFFFFFFFFFFull) : ~u;
  return BitCast<double>(u);
}

inline uint64_t Zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t Unzigzag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace

std::vector<uint8_t> ZfpLikeCompressFixedAccuracy(std::span<const double> values,
                                                  double tolerance) {
  ByteWriter header;
  header.PutVarint(values.size());
  // Tolerance is needed at decode time only for sanity checks; store it.
  header.Put<double>(tolerance);

  BitWriter bw;
  const size_t nblocks = (values.size() + kBlock - 1) / kBlock;
  std::vector<int32_t> exponents;
  exponents.reserve(nblocks);
  std::vector<uint8_t> plane_counts;
  plane_counts.reserve(nblocks);

  for (size_t blk = 0; blk < nblocks; ++blk) {
    double v[kBlock];
    const size_t start = blk * kBlock;
    const int n = static_cast<int>(std::min<size_t>(kBlock, values.size() - start));
    for (int i = 0; i < n; ++i) v[i] = values[start + i];
    for (int i = n; i < kBlock; ++i) v[i] = v[n - 1];  // pad partial block

    const int e = BlockExponent(v, kBlock);
    if (e == INT32_MIN / 2) {  // all-zero block
      exponents.push_back(INT32_MIN / 2);
      plane_counts.push_back(0);
      continue;
    }

    // Fixed-point conversion: |q| < 2^kIntBits guaranteed by construction.
    int64_t q[kBlock];
    const double scale = std::ldexp(1.0, kIntBits - 1 - e);
    for (int i = 0; i < kBlock; ++i) {
      q[i] = static_cast<int64_t>(v[i] * scale);
    }
    ForwardLift(q);

    uint64_t u[kBlock];
    for (int i = 0; i < kBlock; ++i) u[i] = ToNegabinary(q[i]);

    // Cutoff plane: dropping planes below p gives a fixed-point error of at
    // most 2^(p+1) per coefficient, i.e. 2^(p + 1 + e - (kIntBits-1)) in
    // value units; the inverse transform can roughly double it. Use an 8x
    // safety margin so the bound always holds.
    int cutoff = 0;
    if (tolerance > 0.0) {
      const double lim = tolerance / 8.0;
      const int p =
          static_cast<int>(std::floor(std::log2(lim))) + (kIntBits - 1) - e - 1;
      cutoff = std::clamp(p, 0, kPlanes);
    }

    // Skip leading all-zero planes.
    uint64_t any = u[0] | u[1] | u[2] | u[3];
    int top = kPlanes;
    while (top > cutoff && ((any >> (top - 1)) & 1) == 0) --top;

    exponents.push_back(e);
    plane_counts.push_back(static_cast<uint8_t>(top - cutoff));
    for (int p = top - 1; p >= cutoff; --p) {
      uint64_t plane = 0;
      for (int i = 0; i < kBlock; ++i) plane |= ((u[i] >> p) & 1) << i;
      bw.Write(plane, kBlock);
    }
    // Cutoff is recomputed at decode time from e + tolerance, so it is not
    // stored per block.
  }
  bw.Flush();

  // Exponents and plane counts compress well; run them through LZ.
  ByteWriter meta;
  for (size_t i = 0; i < exponents.size(); ++i) {
    meta.PutSignedVarint(exponents[i]);
    meta.Put<uint8_t>(plane_counts[i]);
  }
  const std::vector<uint8_t> meta_lz = LzCompress(meta.bytes());

  ByteWriter out;
  out.PutBytes(header.bytes().data(), header.size());
  out.PutBlob(meta_lz);
  out.PutBlob(bw.bytes());
  return out.TakeBytes();
}

Status ZfpLikeDecompressFixedAccuracy(std::span<const uint8_t> data,
                                      std::vector<double>* out) {
  ByteReader r(data);
  uint64_t count = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&count));
  double tolerance = 0.0;
  MDZ_RETURN_IF_ERROR(r.Get(&tolerance));
  std::span<const uint8_t> meta_blob, plane_blob;
  MDZ_RETURN_IF_ERROR(r.GetBlob(&meta_blob));
  MDZ_RETURN_IF_ERROR(r.GetBlob(&plane_blob));

  std::vector<uint8_t> meta;
  MDZ_RETURN_IF_ERROR(LzDecompress(meta_blob, &meta));
  ByteReader meta_reader(meta);

  // Every block contributes at least 2 metadata bytes, which bounds a
  // hostile `count` before the output allocation.
  const size_t nblocks = (count + kBlock - 1) / kBlock;
  if (nblocks > meta.size()) {
    return Status::Corruption("zfp block count exceeds metadata");
  }

  BitReader br(plane_blob);
  out->clear();
  out->reserve(count);

  for (size_t blk = 0; blk < nblocks; ++blk) {
    int64_t e64 = 0;
    MDZ_RETURN_IF_ERROR(meta_reader.GetSignedVarint(&e64));
    uint8_t nplanes = 0;
    MDZ_RETURN_IF_ERROR(meta_reader.Get(&nplanes));
    const int e = static_cast<int>(e64);

    const size_t start = blk * kBlock;
    const int n = static_cast<int>(std::min<size_t>(kBlock, count - start));

    if (e == INT32_MIN / 2) {
      for (int i = 0; i < n; ++i) out->push_back(0.0);
      continue;
    }

    int cutoff = 0;
    if (tolerance > 0.0) {
      const double lim = tolerance / 8.0;
      const int p =
          static_cast<int>(std::floor(std::log2(lim))) + (kIntBits - 1) - e - 1;
      cutoff = std::clamp(p, 0, kPlanes);
    }
    const int top = cutoff + nplanes;
    if (top > kPlanes + 1) {
      return Status::Corruption("zfp block has too many planes");
    }

    uint64_t u[kBlock] = {0, 0, 0, 0};
    for (int p = top - 1; p >= cutoff; --p) {
      const uint64_t plane = br.Read(kBlock);
      for (int i = 0; i < kBlock; ++i) {
        u[i] |= ((plane >> i) & 1) << p;
      }
    }

    int64_t q[kBlock];
    for (int i = 0; i < kBlock; ++i) q[i] = FromNegabinary(u[i]);
    InverseLift(q);

    const double inv_scale = std::ldexp(1.0, e - (kIntBits - 1));
    for (int i = 0; i < n; ++i) {
      out->push_back(static_cast<double>(q[i]) * inv_scale);
    }
  }
  return br.CheckNoOverrun();
}

std::vector<uint8_t> ZfpLikeCompressReversible(std::span<const double> values) {
  // Block-local delta in the ordered-integer domain: value 0 of each block is
  // delta-coded against the previous block's value 0, values 1..3 against
  // their left neighbour inside the block.
  std::vector<uint8_t> classes;
  classes.reserve(values.size());
  std::vector<uint8_t> payload;
  payload.reserve(values.size() * 4);

  uint64_t prev = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    const uint64_t ordered = ToOrdered(values[i]);
    // Delta in uint64: wraparound is defined and bit-identical to the
    // two's-complement difference, even at int64 extremes.
    const uint64_t zz = Zigzag(static_cast<int64_t>(ordered - prev));
    prev = ordered;
    int nbytes = 0;
    uint64_t tmp = zz;
    while (tmp != 0) {
      ++nbytes;
      tmp >>= 8;
    }
    classes.push_back(static_cast<uint8_t>(nbytes));
    for (int b = nbytes - 1; b >= 0; --b) {
      payload.push_back(static_cast<uint8_t>(zz >> (8 * b)));
    }
  }

  const std::vector<uint8_t> class_lz = LzCompress(classes);
  const std::vector<uint8_t> payload_lz = LzCompress(payload);

  ByteWriter out;
  out.PutVarint(values.size());
  out.PutBlob(class_lz);
  out.PutBlob(payload_lz);
  return out.TakeBytes();
}

Status ZfpLikeDecompressReversible(std::span<const uint8_t> data,
                                   std::vector<double>* out) {
  ByteReader r(data);
  uint64_t count = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&count));
  std::span<const uint8_t> class_blob, payload_blob;
  MDZ_RETURN_IF_ERROR(r.GetBlob(&class_blob));
  MDZ_RETURN_IF_ERROR(r.GetBlob(&payload_blob));

  std::vector<uint8_t> classes, payload;
  MDZ_RETURN_IF_ERROR(LzDecompress(class_blob, &classes));
  MDZ_RETURN_IF_ERROR(LzDecompress(payload_blob, &payload));
  if (classes.size() != count) {
    return Status::Corruption("zfp reversible class count mismatch");
  }

  out->clear();
  out->reserve(count);
  uint64_t prev = 0;
  size_t pos = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const int nbytes = classes[i];
    if (nbytes > 8 || pos + nbytes > payload.size()) {
      return Status::Corruption("zfp reversible payload truncated");
    }
    uint64_t zz = 0;
    for (int b = 0; b < nbytes; ++b) zz = (zz << 8) | payload[pos++];
    const uint64_t ordered = prev + static_cast<uint64_t>(Unzigzag(zz));
    prev = ordered;
    out->push_back(FromOrdered(ordered));
  }
  return Status::OK();
}

}  // namespace mdz::codec
