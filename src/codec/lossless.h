#ifndef MDZ_CODEC_LOSSLESS_H_
#define MDZ_CODEC_LOSSLESS_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mdz::codec {

// Uniform facade over the six lossless compressors evaluated in paper
// Table V. The general-purpose byte compressors (Zstd/Zlib/Brotli) operate on
// the raw little-endian bytes of the double array; the float-specialized ones
// (Fpzip/FPC/ZFP) consume the doubles directly.
enum class LosslessCodec {
  kZstdLike,
  kZlibLike,
  kBrotliLike,
  kFpzipLike,
  kFpc,
  kZfpReversible,
};

// All six codecs, in the column order of paper Table V.
std::span<const LosslessCodec> AllLosslessCodecs();

std::string_view LosslessCodecName(LosslessCodec codec);

std::vector<uint8_t> LosslessCompress(std::span<const double> values,
                                      LosslessCodec codec);

Status LosslessDecompress(std::span<const uint8_t> data, LosslessCodec codec,
                          std::vector<double>* out);

}  // namespace mdz::codec

#endif  // MDZ_CODEC_LOSSLESS_H_
