#include "codec/huffman.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <queue>

#include "obs/metrics.h"
#include "obs/span.h"
#include "util/bit_stream.h"
#include "util/byte_buffer.h"
#include "util/cpu.h"

namespace mdz::codec {

namespace {

// Builds unlimited-depth Huffman code lengths via the classic two-queue
// method (frequencies are processed in sorted order, so merges pop from the
// front of either the leaf queue or the internal-node queue). O(n log n)
// overall, dominated by the initial sort.
std::vector<uint8_t> BuildLengthsOnce(const std::vector<uint64_t>& freqs) {
  const size_t n = freqs.size();
  std::vector<uint32_t> used;
  used.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    if (freqs[s] > 0) used.push_back(s);
  }
  std::vector<uint8_t> lengths(n, 0);
  if (used.empty()) return lengths;
  if (used.size() == 1) {
    lengths[used[0]] = 1;  // a single symbol still needs one bit per token
    return lengths;
  }

  std::sort(used.begin(), used.end(), [&](uint32_t a, uint32_t b) {
    return freqs[a] < freqs[b];
  });

  // Node arena: first used.size() entries are leaves, the rest are merges.
  struct Node {
    uint64_t freq;
    int left;   // -1 for leaf
    int right;
    uint32_t symbol;
  };
  std::vector<Node> nodes;
  nodes.reserve(2 * used.size());
  for (uint32_t s : used) nodes.push_back({freqs[s], -1, -1, s});

  size_t leaf_pos = 0;                 // next unconsumed leaf
  std::vector<int> internal;           // FIFO of internal node indices
  size_t internal_pos = 0;

  auto pop_min = [&]() -> int {
    const bool leaf_ok = leaf_pos < used.size();
    const bool int_ok = internal_pos < internal.size();
    if (leaf_ok &&
        (!int_ok || nodes[leaf_pos].freq <= nodes[internal[internal_pos]].freq)) {
      return static_cast<int>(leaf_pos++);
    }
    return internal[internal_pos++];
  };

  while (used.size() - leaf_pos + internal.size() - internal_pos >= 2) {
    const int a = pop_min();
    const int b = pop_min();
    nodes.push_back({nodes[a].freq + nodes[b].freq, a, b, 0});
    internal.push_back(static_cast<int>(nodes.size()) - 1);
  }

  // Depth-first traversal to assign lengths (iterative; trees can be deep).
  std::vector<std::pair<int, uint8_t>> stack;
  stack.emplace_back(static_cast<int>(nodes.size()) - 1, 0);
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[idx];
    if (node.left < 0) {
      lengths[node.symbol] = depth;
    } else {
      stack.emplace_back(node.left, static_cast<uint8_t>(depth + 1));
      stack.emplace_back(node.right, static_cast<uint8_t>(depth + 1));
    }
  }
  return lengths;
}

struct CanonicalTable {
  // For encoding: code + length per symbol.
  std::vector<uint32_t> codes;
  std::vector<uint8_t> lengths;
};

// Assigns canonical codes (numerically increasing with (length, symbol)).
// Codes are stored bit-reversed so the LSB-first BitWriter emits them in the
// canonical MSB-first order expected by the decoder's arithmetic.
CanonicalTable BuildCanonical(const std::vector<uint8_t>& lengths) {
  CanonicalTable table;
  table.lengths = lengths;
  table.codes.assign(lengths.size(), 0);

  int max_len = 0;
  for (uint8_t l : lengths) max_len = std::max<int>(max_len, l);
  if (max_len == 0) return table;

  std::vector<uint32_t> count(max_len + 1, 0);
  for (uint8_t l : lengths) {
    if (l > 0) ++count[l];
  }
  std::vector<uint32_t> next(max_len + 1, 0);
  uint32_t code = 0;
  for (int len = 1; len <= max_len; ++len) {
    code = (code + count[len - 1]) << 1;
    next[len] = code;
  }
  for (uint32_t s = 0; s < lengths.size(); ++s) {
    const uint8_t l = lengths[s];
    if (l == 0) continue;
    uint32_t c = next[l]++;
    // Bit-reverse c over l bits for the LSB-first writer.
    uint32_t r = 0;
    for (int i = 0; i < l; ++i) {
      r = (r << 1) | (c & 1);
      c >>= 1;
    }
    table.codes[s] = r;
  }
  return table;
}

// Serializes code lengths with a tiny RLE: (zero-run) pairs are common since
// quantization-code alphabets are mostly unused.
void WriteLengths(const std::vector<uint8_t>& lengths, ByteWriter* w) {
  w->PutVarint(lengths.size());
  size_t i = 0;
  while (i < lengths.size()) {
    if (lengths[i] == 0) {
      size_t run = 1;
      while (i + run < lengths.size() && lengths[i + run] == 0) ++run;
      w->Put<uint8_t>(0);
      w->PutVarint(run);
      i += run;
    } else {
      w->Put<uint8_t>(lengths[i]);
      ++i;
    }
  }
}

Status ReadLengths(ByteReader* r, std::vector<uint8_t>* lengths) {
  uint64_t n = 0;
  MDZ_RETURN_IF_ERROR(r->GetVarint(&n));
  if (n > (1ull << 28)) {
    return Status::Corruption("huffman alphabet unreasonably large");
  }
  lengths->assign(n, 0);
  size_t i = 0;
  while (i < n) {
    uint8_t l = 0;
    MDZ_RETURN_IF_ERROR(r->Get(&l));
    if (l == 0) {
      uint64_t run = 0;
      MDZ_RETURN_IF_ERROR(r->GetVarint(&run));
      if (run == 0 || i + run > n) {
        return Status::Corruption("huffman length RLE overflows alphabet");
      }
      i += run;
    } else {
      if (l > kMaxCodeLength) {
        return Status::Corruption("huffman code length exceeds limit");
      }
      (*lengths)[i++] = l;
    }
  }
  return Status::OK();
}

// Decoder: canonical decoding by length using first-code/offset arrays, with
// a direct lookup table for codes of <= kFastBits bits.
constexpr int kFastBits = 11;

// Symbols must fit the pair-table packing (26 bits each); larger alphabets
// fall back to one-symbol-at-a-time decoding.
constexpr size_t kMaxPairAlphabet = 1u << 26;

struct Decoder {
  std::vector<uint32_t> symbols_by_code;          // symbols sorted canonically
  uint32_t first_code[kMaxCodeLength + 2] = {};   // first canonical code/len
  uint32_t first_index[kMaxCodeLength + 2] = {};  // index into symbols_by_code
  int max_len = 0;
  // fast_table[bits] = (symbol << 6) | length, or 0xFFFFFFFF if too long.
  std::vector<uint32_t> fast_table;
  // Multi-symbol table over the same kFastBits window: up to two complete
  // code words per lookup. Layout: bits 0..5 total bit length, bits 6..7
  // symbol count (0 = no complete symbol, take the slow path), bits 8..33
  // first symbol, bits 34..59 second symbol. Derived from fast_table, so a
  // pair entry exists exactly when both code words are fully determined by
  // the peeked bits — decoded symbols and bit consumption are identical to
  // two DecodeOne calls by construction.
  std::vector<uint64_t> pair_table;

  Status Init(const std::vector<uint8_t>& lengths) {
    std::vector<uint32_t> count(kMaxCodeLength + 1, 0);
    for (uint8_t l : lengths) {
      if (l > kMaxCodeLength) {
        return Status::Corruption("huffman code length exceeds limit");
      }
      if (l > 0) {
        ++count[l];
        max_len = std::max<int>(max_len, l);
      }
    }
    if (max_len == 0) return Status::OK();

    // Kraft check: sum 2^(max-l) must not exceed 2^max (over-subscribed
    // trees would make decoding ambiguous / out of bounds).
    uint64_t kraft = 0;
    for (int l = 1; l <= max_len; ++l) {
      kraft += static_cast<uint64_t>(count[l]) << (max_len - l);
    }
    if (kraft > (1ull << max_len)) {
      return Status::Corruption("huffman code lengths over-subscribed");
    }

    uint32_t code = 0;
    uint32_t index = 0;
    for (int len = 1; len <= max_len; ++len) {
      code = (code + count[len - 1]) << 1;
      first_code[len] = code;
      first_index[len] = index;
      index += count[len];
    }
    first_code[max_len + 1] = (first_code[max_len] + count[max_len]) << 1;

    symbols_by_code.resize(index);
    std::vector<uint32_t> next(max_len + 1);
    for (int len = 1; len <= max_len; ++len) next[len] = first_index[len];
    for (uint32_t s = 0; s < lengths.size(); ++s) {
      if (lengths[s] > 0) symbols_by_code[next[lengths[s]]++] = s;
    }

    // Fast table over kFastBits LSB-first bits.
    fast_table.assign(1u << kFastBits, 0xFFFFFFFFu);
    std::vector<uint32_t> codes_by_len(max_len + 1);
    for (int len = 1; len <= max_len && len <= kFastBits; ++len) {
      uint32_t c = first_code[len];
      for (uint32_t k = 0; k < count[len]; ++k, ++c) {
        const uint32_t sym = symbols_by_code[first_index[len] + k];
        // Bit-reverse the canonical code, then fill all suffixes.
        uint32_t r = 0;
        uint32_t tmp = c;
        for (int i = 0; i < len; ++i) {
          r = (r << 1) | (tmp & 1);
          tmp >>= 1;
        }
        for (uint32_t hi = 0; hi < (1u << (kFastBits - len)); ++hi) {
          fast_table[(hi << len) | r] = (sym << 6) | static_cast<uint32_t>(len);
        }
      }
    }
    (void)codes_by_len;
    return Status::OK();
  }

  void BuildPairTable(size_t alphabet_size) {
    if (alphabet_size > kMaxPairAlphabet) return;
    pair_table.assign(size_t{1} << kFastBits, 0);
    for (uint32_t peek = 0; peek < (1u << kFastBits); ++peek) {
      const uint32_t e1 = fast_table[peek];
      if (e1 == 0xFFFFFFFFu) continue;
      const uint64_t len1 = e1 & 63;
      const uint64_t sym1 = e1 >> 6;
      uint64_t entry = len1 | (uint64_t{1} << 6) | (sym1 << 8);
      const uint64_t rem = kFastBits - len1;
      const uint32_t e2 = fast_table[peek >> len1];
      // The second entry is only trustworthy when its code word lies fully
      // inside the peeked bits; beyond them the table index holds zero
      // padding, not stream bits.
      if (e2 != 0xFFFFFFFFu && (e2 & 63) <= rem) {
        const uint64_t len2 = e2 & 63;
        const uint64_t sym2 = e2 >> 6;
        entry = (len1 + len2) | (uint64_t{2} << 6) | (sym1 << 8) |
                (sym2 << 34);
      }
      pair_table[peek] = entry;
    }
  }

  // Decodes one symbol; returns false on malformed code.
  bool DecodeOne(BitReader* br, uint32_t* out) const {
    const uint32_t peek = br->Peek(kFastBits);
    const uint32_t entry = fast_table[peek];
    if (entry != 0xFFFFFFFFu) {
      br->Skip(static_cast<int>(entry & 63));
      *out = entry >> 6;
      return true;
    }
    // Slow path: read bit by bit, tracking the canonical code MSB-first.
    uint32_t code = 0;
    for (int len = 1; len <= max_len; ++len) {
      code = (code << 1) | (br->ReadBit() ? 1u : 0u);
      const uint32_t fc = first_code[len];
      const uint32_t cnt = first_index[len + 1 <= max_len ? len + 1 : len] -
                           first_index[len];
      // first_index difference is only valid when len < max_len; recompute:
      (void)cnt;
      const uint32_t n_at_len =
          (len < max_len) ? (first_index[len + 1] - first_index[len])
                          : (static_cast<uint32_t>(symbols_by_code.size()) -
                             first_index[len]);
      if (code >= fc && code < fc + n_at_len) {
        *out = symbols_by_code[first_index[len] + (code - fc)];
        return true;
      }
    }
    return false;
  }
};

}  // namespace

std::vector<uint8_t> BuildCodeLengths(std::span<const uint64_t> freqs) {
  std::vector<uint64_t> damped(freqs.begin(), freqs.end());
  while (true) {
    std::vector<uint8_t> lengths = BuildLengthsOnce(damped);
    const int max_len =
        lengths.empty() ? 0 : *std::max_element(lengths.begin(), lengths.end());
    if (max_len <= kMaxCodeLength) return lengths;
    // Damp the distribution toward uniform and retry; converges quickly.
    for (auto& f : damped) {
      if (f > 0) f = (f + 1) / 2;
    }
  }
}

double ShannonEntropyBits(std::span<const uint64_t> freqs) {
  uint64_t total = std::accumulate(freqs.begin(), freqs.end(), uint64_t{0});
  if (total == 0) return 0.0;
  double bits = 0.0;
  for (uint64_t f : freqs) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / static_cast<double>(total);
    bits -= p * std::log2(p);
  }
  return bits;
}

std::vector<uint8_t> HuffmanEncode(std::span<const uint32_t> symbols,
                                   uint32_t alphabet_size) {
  MDZ_SPAN("huffman");
  std::vector<uint64_t> freqs(alphabet_size, 0);
  for (uint32_t s : symbols) ++freqs[s];

  const std::vector<uint8_t> lengths = BuildCodeLengths(freqs);
  const CanonicalTable table = BuildCanonical(lengths);

  ByteWriter header;
  header.PutVarint(symbols.size());
  WriteLengths(lengths, &header);

  BitWriter bw;
  for (uint32_t s : symbols) {
    bw.Write(table.codes[s], table.lengths[s]);
  }
  bw.Flush();

  ByteWriter out;
  out.PutVarint(header.size());
  out.PutBytes(header.bytes().data(), header.size());
  out.PutBytes(bw.bytes().data(), bw.bytes().size());
  return out.TakeBytes();
}

Status HuffmanDecode(std::span<const uint8_t> data,
                     std::vector<uint32_t>* out) {
  MDZ_SPAN("huffman");
  ByteReader top(data);
  std::span<const uint8_t> header_bytes;
  MDZ_RETURN_IF_ERROR(top.GetBlob(&header_bytes));

  ByteReader header(header_bytes);
  uint64_t count = 0;
  MDZ_RETURN_IF_ERROR(header.GetVarint(&count));
  // Every Huffman symbol costs at least one bit, so a valid stream cannot
  // declare more symbols than it has payload bits (guards the allocation and
  // the decode loop against hostile counts).
  if (count > 8 * data.size()) {
    return Status::Corruption("huffman symbol count exceeds payload bits");
  }
  std::vector<uint8_t> lengths;
  MDZ_RETURN_IF_ERROR(ReadLengths(&header, &lengths));

  out->clear();
  out->reserve(count);
  if (count == 0) return Status::OK();

  Decoder dec;
  MDZ_RETURN_IF_ERROR(dec.Init(lengths));
  if (dec.max_len == 0) {
    return Status::Corruption("huffman stream has symbols but empty code set");
  }

  // Multi-symbol decoding is a speed-only optimization gated to the SIMD
  // variants so MDZ_SIMD=scalar pins the exact reference code path; the
  // output symbols and final bit position are identical either way.
  const util::SimdVariant variant = util::ActiveSimdVariant();
  const bool multi = variant != util::SimdVariant::kScalar &&
                     lengths.size() <= kMaxPairAlphabet;
  if (multi) dec.BuildPairTable(lengths.size());
  if (obs::Enabled()) {
    static obs::Gauge* gauge =
        obs::MetricsRegistry::Global().GetGauge("simd/kernel/huffman_decode");
    gauge->Set(multi ? static_cast<int64_t>(variant) : 0);
  }

  BitReader br(std::span<const uint8_t>(data.data() + top.position(),
                                        data.size() - top.position()));
  if (multi && !dec.pair_table.empty()) {
    uint64_t i = 0;
    while (i < count) {
      const uint64_t entry = dec.pair_table[br.Peek(kFastBits)];
      if ((entry >> 6 & 3) == 2 && i + 2 <= count) {
        br.Skip(static_cast<int>(entry & 63));
        out->push_back(static_cast<uint32_t>(entry >> 8 & 0x3FFFFFF));
        out->push_back(static_cast<uint32_t>(entry >> 34 & 0x3FFFFFF));
        i += 2;
        continue;
      }
      uint32_t sym = 0;
      if (!dec.DecodeOne(&br, &sym)) {
        return Status::Corruption("invalid huffman code word");
      }
      out->push_back(sym);
      ++i;
    }
    return br.CheckNoOverrun();
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t sym = 0;
    if (!dec.DecodeOne(&br, &sym)) {
      return Status::Corruption("invalid huffman code word");
    }
    out->push_back(sym);
  }
  return br.CheckNoOverrun();
}

}  // namespace mdz::codec
