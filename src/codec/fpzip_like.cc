#include "codec/fpzip_like.h"

#include <cstring>

#include "codec/huffman.h"
#include "codec/lz.h"
#include "util/byte_buffer.h"
#include "util/unaligned.h"

namespace mdz::codec {

namespace {

// Maps a double to an unsigned integer whose natural ordering matches the
// ordering of the doubles (standard total-order trick: flip all bits of
// negatives, flip only the sign bit of non-negatives).
inline uint64_t ToOrdered(double d) {
  const uint64_t u = BitCast<uint64_t>(d);
  return (u & 0x8000000000000000ull) ? ~u : (u | 0x8000000000000000ull);
}

inline double FromOrdered(uint64_t u) {
  u = (u & 0x8000000000000000ull) ? (u & 0x7FFFFFFFFFFFFFFFull)
                                  // non-negative double: clear sign marker
                                  : ~u;
  return BitCast<double>(u);
}

inline uint64_t Zigzag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t Unzigzag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline int SignificantBytes(uint64_t x) {
  if (x == 0) return 0;
  return 8 - (__builtin_clzll(x) >> 3);
}

}  // namespace

std::vector<uint8_t> FpzipLikeCompress(std::span<const double> values) {
  std::vector<uint32_t> classes;  // significant-byte count per residual
  classes.reserve(values.size());
  std::vector<uint8_t> payload;   // remainder bytes, MSB first
  payload.reserve(values.size() * 3);

  uint64_t prev = 0;
  for (double d : values) {
    const uint64_t ordered = ToOrdered(d);
    // Delta in uint64: wraparound is defined and bit-identical to the
    // two's-complement difference, even at int64 extremes.
    const uint64_t zz = Zigzag(static_cast<int64_t>(ordered - prev));
    prev = ordered;
    const int nbytes = SignificantBytes(zz);
    classes.push_back(static_cast<uint32_t>(nbytes));
    for (int b = nbytes - 1; b >= 0; --b) {
      payload.push_back(static_cast<uint8_t>(zz >> (8 * b)));
    }
  }

  const std::vector<uint8_t> class_stream = HuffmanEncode(classes, 9);
  const std::vector<uint8_t> payload_stream = LzCompress(payload);

  ByteWriter out;
  out.PutVarint(values.size());
  out.PutBlob(class_stream);
  out.PutBlob(payload_stream);
  return out.TakeBytes();
}

Status FpzipLikeDecompress(std::span<const uint8_t> data,
                           std::vector<double>* out) {
  ByteReader r(data);
  uint64_t count = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&count));
  std::span<const uint8_t> class_blob, payload_blob;
  MDZ_RETURN_IF_ERROR(r.GetBlob(&class_blob));
  MDZ_RETURN_IF_ERROR(r.GetBlob(&payload_blob));

  std::vector<uint32_t> classes;
  MDZ_RETURN_IF_ERROR(HuffmanDecode(class_blob, &classes));
  if (classes.size() != count) {
    return Status::Corruption("fpzip class stream count mismatch");
  }
  std::vector<uint8_t> payload;
  MDZ_RETURN_IF_ERROR(LzDecompress(payload_blob, &payload));

  out->clear();
  out->reserve(count);
  uint64_t prev = 0;
  size_t pos = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t nbytes = classes[i];
    if (nbytes > 8 || pos + nbytes > payload.size()) {
      return Status::Corruption("fpzip payload truncated");
    }
    uint64_t zz = 0;
    for (uint32_t b = 0; b < nbytes; ++b) {
      zz = (zz << 8) | payload[pos++];
    }
    const uint64_t ordered = prev + static_cast<uint64_t>(Unzigzag(zz));
    prev = ordered;
    out->push_back(FromOrdered(ordered));
  }
  return Status::OK();
}

}  // namespace mdz::codec
