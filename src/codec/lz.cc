#include "codec/lz.h"

#include <algorithm>
#include <cstring>

#include "codec/huffman.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/byte_buffer.h"
#include "util/cpu.h"
#include "util/unaligned.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace mdz::codec {

namespace {

constexpr int kHashLog = 16;
constexpr uint32_t kNoPos = 0xFFFFFFFFu;
constexpr size_t kMaxMatch = 1 << 16;

inline uint32_t Hash4(const uint8_t* p) {
  return (LoadU<uint32_t>(p) * 2654435761u) >> (32 - kHashLog);
}

// Token stream layout (before the optional byte-Huffman squeeze):
//   varint literal_run_len, <literals>, varint match_len, varint offset
// repeated; match_len == 0 terminates (final literal run flushes the tail).
struct Token {
  size_t literal_start;
  size_t literal_len;
  size_t match_len;  // 0 for the terminal token
  size_t offset;
};

// Match-length kernel: all variants return the exact common-prefix length,
// so the emitted token stream is byte-identical regardless of dispatch.
size_t MatchLengthScalar(const uint8_t* a, const uint8_t* b,
                         const uint8_t* end) {
  const uint8_t* start = a;
  while (a + 8 <= end) {
    const uint64_t diff = LoadU<uint64_t>(a) ^ LoadU<uint64_t>(b);
    if (diff != 0) {
      return static_cast<size_t>(a - start) +
             static_cast<size_t>(__builtin_ctzll(diff) >> 3);
    }
    a += 8;
    b += 8;
  }
  while (a < end && *a == *b) {
    ++a;
    ++b;
  }
  return static_cast<size_t>(a - start);
}

#if defined(__x86_64__) || defined(_M_X64)
__attribute__((target("avx2"))) size_t MatchLengthAvx2(const uint8_t* a,
                                                       const uint8_t* b,
                                                       const uint8_t* end) {
  const uint8_t* start = a;
  while (a + 32 <= end) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    const __m256i y = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    const uint32_t eq = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, y)));
    if (eq != 0xFFFFFFFFu) {
      return static_cast<size_t>(a - start) +
             static_cast<size_t>(__builtin_ctz(~eq));
    }
    a += 32;
    b += 32;
  }
  return static_cast<size_t>(a - start) + MatchLengthScalar(a, b, end);
}
#endif

#if defined(__aarch64__)
size_t MatchLengthNeon(const uint8_t* a, const uint8_t* b,
                       const uint8_t* end) {
  const uint8_t* start = a;
  while (a + 16 <= end) {
    const uint64x2_t diff = vreinterpretq_u64_u8(
        veorq_u8(vld1q_u8(a), vld1q_u8(b)));
    const uint64_t lo = vgetq_lane_u64(diff, 0);
    if (lo != 0) {
      return static_cast<size_t>(a - start) +
             static_cast<size_t>(__builtin_ctzll(lo) >> 3);
    }
    const uint64_t hi = vgetq_lane_u64(diff, 1);
    if (hi != 0) {
      return static_cast<size_t>(a - start) + 8 +
             static_cast<size_t>(__builtin_ctzll(hi) >> 3);
    }
    a += 16;
    b += 16;
  }
  return static_cast<size_t>(a - start) + MatchLengthScalar(a, b, end);
}
#endif

using MatchLengthFn = size_t (*)(const uint8_t*, const uint8_t*,
                                 const uint8_t*);

MatchLengthFn ActiveMatchLength() {
  const util::SimdVariant variant = util::ActiveSimdVariant();
  if (obs::Enabled()) {
    static obs::Gauge* gauge =
        obs::MetricsRegistry::Global().GetGauge("simd/kernel/lz_match");
    gauge->Set(static_cast<int64_t>(variant));
  }
#if defined(__x86_64__) || defined(_M_X64)
  if (variant == util::SimdVariant::kAvx2) return &MatchLengthAvx2;
#endif
#if defined(__aarch64__)
  if (variant == util::SimdVariant::kNeon) return &MatchLengthNeon;
#endif
  return &MatchLengthScalar;
}

}  // namespace

LzOptions ZstdLikeOptions() {
  return LzOptions{.window_log = 20, .max_chain = 32, .min_match = 4,
                   .lazy = true, .entropy = true};
}

LzOptions DeflateLikeOptions() {
  return LzOptions{.window_log = 15, .max_chain = 128, .min_match = 4,
                   .lazy = true, .entropy = true};
}

LzOptions BrotliLikeOptions() {
  return LzOptions{.window_log = 22, .max_chain = 256, .min_match = 4,
                   .lazy = true, .entropy = true};
}

std::vector<uint8_t> LzCompress(std::span<const uint8_t> input,
                                const LzOptions& options) {
  MDZ_SPAN("lz_compress");
  const size_t n = input.size();
  const uint8_t* base = input.data();
  const size_t window = size_t{1} << options.window_log;

  std::vector<uint32_t> head(size_t{1} << kHashLog, kNoPos);
  std::vector<uint32_t> chain(n, kNoPos);
  const MatchLengthFn match_length = ActiveMatchLength();

  ByteWriter tokens;
  size_t literal_start = 0;
  size_t pos = 0;

  auto find_match = [&](size_t at, size_t* best_off) -> size_t {
    if (at + options.min_match > n || at + 4 > n) return 0;
    size_t best_len = 0;
    uint32_t cand = head[Hash4(base + at)];
    int probes = options.max_chain;
    const size_t min_pos = (at > window) ? at - window : 0;
    while (cand != kNoPos && cand >= min_pos && probes-- > 0) {
      if (cand < at) {
        const size_t len = match_length(base + at, base + cand, base + n);
        if (len > best_len) {
          best_len = len;
          *best_off = at - cand;
          if (len >= kMaxMatch) break;
        }
      }
      cand = chain[cand];
    }
    return best_len >= static_cast<size_t>(options.min_match)
               ? std::min(best_len, kMaxMatch)
               : 0;
  };

  auto insert = [&](size_t at) {
    if (at + 4 > n) return;
    const uint32_t h = Hash4(base + at);
    chain[at] = head[h];
    head[h] = static_cast<uint32_t>(at);
  };

  auto emit = [&](size_t lit_end, size_t match_len, size_t offset) {
    tokens.PutVarint(lit_end - literal_start);
    tokens.PutBytes(base + literal_start, lit_end - literal_start);
    tokens.PutVarint(match_len);
    if (match_len > 0) tokens.PutVarint(offset);
  };

  // LZ4-style acceleration: after many consecutive literal misses the input
  // is likely incompressible, so advance faster (the skipped positions are
  // still inserted into the hash chains).
  size_t miss_streak = 0;
  while (pos < n) {
    size_t offset = 0;
    size_t len = find_match(pos, &offset);
    if (len == 0) {
      const size_t step = 1 + (miss_streak >> 6);
      ++miss_streak;
      for (size_t i = pos; i < std::min(pos + step, n); ++i) insert(i);
      pos += step;
      continue;
    }
    miss_streak = 0;
    insert(pos);
    if (options.lazy && pos + 1 < n) {
      // One-step lazy evaluation: prefer a strictly better match at pos+1.
      size_t next_offset = 0;
      const size_t next_len = find_match(pos + 1, &next_offset);
      if (next_len > len + 1) {
        insert(pos + 1);
        ++pos;
        len = next_len;
        offset = next_offset;
      }
    }
    emit(pos, len, offset);
    const size_t match_end = pos + len;
    for (size_t i = pos + 1; i < match_end; ++i) insert(i);
    pos = match_end;
    literal_start = pos;
  }
  emit(n, 0, 0);  // terminal token flushes remaining literals

  const std::vector<uint8_t> raw = tokens.TakeBytes();

  ByteWriter out;
  out.PutVarint(n);
  if (options.entropy) {
    std::vector<uint32_t> symbols(raw.begin(), raw.end());
    std::vector<uint8_t> packed = HuffmanEncode(symbols, 256);
    if (packed.size() < raw.size()) {
      out.Put<uint8_t>(1);
      out.PutBytes(packed.data(), packed.size());
      return out.TakeBytes();
    }
  }
  out.Put<uint8_t>(0);
  out.PutBytes(raw.data(), raw.size());
  return out.TakeBytes();
}

Status LzDecompress(std::span<const uint8_t> data, std::vector<uint8_t>* out) {
  MDZ_SPAN("lz_decompress");
  ByteReader top(data);
  uint64_t n = 0;
  MDZ_RETURN_IF_ERROR(top.GetVarint(&n));
  // Sanity cap on the declared decoded size (2 GiB): orders of magnitude
  // above any legitimate block in this library, and it keeps hostile
  // headers from driving giant allocations.
  if (n > (1ull << 31)) {
    return Status::Corruption("LZ declared size implausible");
  }
  uint8_t entropy_flag = 0;
  MDZ_RETURN_IF_ERROR(top.Get(&entropy_flag));

  std::vector<uint8_t> raw_storage;
  std::span<const uint8_t> raw;
  if (entropy_flag == 1) {
    std::vector<uint32_t> symbols;
    MDZ_RETURN_IF_ERROR(HuffmanDecode(
        std::span<const uint8_t>(data.data() + top.position(),
                                 data.size() - top.position()),
        &symbols));
    raw_storage.assign(symbols.begin(), symbols.end());
    raw = raw_storage;
  } else if (entropy_flag == 0) {
    raw = std::span<const uint8_t>(data.data() + top.position(),
                                   data.size() - top.position());
  } else {
    return Status::Corruption("bad LZ entropy flag");
  }

  out->clear();
  // Do not trust the declared size for the allocation; grow naturally.
  out->reserve(std::min<uint64_t>(n, 1u << 20));
  ByteReader r(raw);
  while (true) {
    uint64_t lit_len = 0;
    MDZ_RETURN_IF_ERROR(r.GetVarint(&lit_len));
    if (out->size() + lit_len > n || lit_len > r.remaining()) {
      return Status::Corruption("LZ literal run overflows declared size");
    }
    const size_t old = out->size();
    out->resize(old + lit_len);
    MDZ_RETURN_IF_ERROR(r.GetBytes(out->data() + old, lit_len));

    uint64_t match_len = 0;
    MDZ_RETURN_IF_ERROR(r.GetVarint(&match_len));
    if (match_len == 0) break;
    if (match_len > kMaxMatch) {
      // The encoder never emits longer matches; this also bounds the decode
      // work per token against hostile streams.
      return Status::Corruption("LZ match length exceeds format maximum");
    }
    uint64_t offset = 0;
    MDZ_RETURN_IF_ERROR(r.GetVarint(&offset));
    if (offset == 0 || offset > out->size()) {
      return Status::Corruption("LZ match offset out of range");
    }
    if (out->size() + match_len > n) {
      return Status::Corruption("LZ match overflows declared size");
    }
    // Byte-by-byte copy: overlapping matches (offset < len) are legal.
    size_t src = out->size() - offset;
    for (uint64_t i = 0; i < match_len; ++i) {
      out->push_back((*out)[src++]);
    }
  }
  if (out->size() != n) {
    return Status::Corruption("LZ stream ended before declared size");
  }
  return Status::OK();
}

}  // namespace mdz::codec
