#ifndef MDZ_CODEC_RANGE_CODER_H_
#define MDZ_CODEC_RANGE_CODER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace mdz::codec {

// Adaptive binary range coder (LZMA-style carry-handling) with bit-tree
// symbol models. This is the arithmetic-coding alternative to the canonical
// Huffman stage: ~0.02-0.1 bits/symbol closer to entropy (no whole-bit
// rounding, adapts to drifting statistics within a stream) at several times
// the CPU cost. The MDZ block codec uses Huffman for throughput (paper
// Fig. 9/15); this coder is provided for ratio-oriented deployments and is
// compared head-to-head in bench/ablation_backend.

// Adaptive probability of a single binary decision (11-bit precision).
class BitModel {
 public:
  uint32_t probability() const { return p_; }

  void Update(bool bit) {
    if (bit) {
      p_ -= p_ >> kMoveBits;
    } else {
      p_ += (kOne - p_) >> kMoveBits;
    }
  }

  static constexpr uint32_t kBits = 11;
  static constexpr uint32_t kOne = 1u << kBits;
  static constexpr uint32_t kMoveBits = 5;

 private:
  uint32_t p_ = kOne / 2;
};

class RangeEncoder {
 public:
  void EncodeBit(BitModel* model, bool bit);
  void Flush();

  const std::vector<uint8_t>& bytes() const { return out_; }
  std::vector<uint8_t> TakeBytes() { return std::move(out_); }

 private:
  void ShiftLow();

  std::vector<uint8_t> out_;
  uint64_t low_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
  uint8_t cache_ = 0;
  uint64_t cache_size_ = 1;  // the first ShiftLow emits the dummy cache byte
};

class RangeDecoder {
 public:
  explicit RangeDecoder(std::span<const uint8_t> data);

  bool DecodeBit(BitModel* model);
  bool overran() const { return pos_ > data_.size() + 4; }

 private:
  uint8_t NextByte() {
    return pos_ < data_.size() ? data_[pos_++] : (++pos_, 0);
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  uint32_t range_ = 0xFFFFFFFFu;
  uint32_t code_ = 0;
};

// Symbol layer: each symbol < alphabet_size is coded MSB-first through a
// bit tree of adaptive models (context = path through the tree), i.e. an
// order-0 adaptive arithmetic coder. Returns a self-describing stream.
std::vector<uint8_t> RangeEncodeSymbols(std::span<const uint32_t> symbols,
                                        uint32_t alphabet_size);

Status RangeDecodeSymbols(std::span<const uint8_t> data,
                          std::vector<uint32_t>* out);

}  // namespace mdz::codec

#endif  // MDZ_CODEC_RANGE_CODER_H_
