#ifndef MDZ_CODEC_LZ_H_
#define MDZ_CODEC_LZ_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace mdz::codec {

// LZ77 dictionary coder with hash-chain match finding, followed by a byte-
// level Huffman squeeze of the token stream. This is the final lossless
// stage of the MDZ pipeline (the paper uses Zstd there) and also serves as
// the from-scratch stand-in for the general-purpose lossless baselines in
// paper Table V (Zstd / Zlib / Brotli).
struct LzOptions {
  int window_log = 20;   // dictionary window = 1 << window_log bytes
  int max_chain = 32;    // hash-chain probes per position
  int min_match = 4;     // minimum match length
  bool lazy = true;      // one-step lazy matching
  bool entropy = true;   // apply byte Huffman to the token stream
};

// Three presets approximating the behaviour envelope of the corresponding
// external tools (speed/ratio trade-off, not bit-exact formats).
LzOptions ZstdLikeOptions();    // fast, large window
LzOptions DeflateLikeOptions(); // 32 KiB window, deeper chains (zlib stand-in)
LzOptions BrotliLikeOptions();  // largest window, deepest chains (slowest)

std::vector<uint8_t> LzCompress(std::span<const uint8_t> input,
                                const LzOptions& options = ZstdLikeOptions());

Status LzDecompress(std::span<const uint8_t> data, std::vector<uint8_t>* out);

}  // namespace mdz::codec

#endif  // MDZ_CODEC_LZ_H_
