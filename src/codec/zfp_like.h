#ifndef MDZ_CODEC_ZFP_LIKE_H_
#define MDZ_CODEC_ZFP_LIKE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace mdz::codec {

// ZFP-style transform codec for 1-D double streams, reimplemented from the
// published algorithm (Lindstrom, TVCG'14): blocks of 4 values share a
// block-floating-point exponent, are decorrelated with ZFP's integer lifting
// transform, mapped to negabinary, and emitted as bit planes from the most
// significant plane down.
//
// Two modes:
//  * Fixed-accuracy (error-bounded lossy): bit planes below the tolerance-
//    derived cutoff are dropped. |decoded - original| <= tolerance.
//  * Reversible (lossless stand-in for the "ZFP" row of paper Table V):
//    block-wise delta coding in the totally-ordered integer domain followed
//    by byte-class + LZ coding. (True ZFP uses a different reversible
//    transform; this preserves the block-local decorrelation behaviour.)
std::vector<uint8_t> ZfpLikeCompressFixedAccuracy(std::span<const double> values,
                                                  double tolerance);

Status ZfpLikeDecompressFixedAccuracy(std::span<const uint8_t> data,
                                      std::vector<double>* out);

std::vector<uint8_t> ZfpLikeCompressReversible(std::span<const double> values);

Status ZfpLikeDecompressReversible(std::span<const uint8_t> data,
                                   std::vector<double>* out);

}  // namespace mdz::codec

#endif  // MDZ_CODEC_ZFP_LIKE_H_
