#ifndef MDZ_CODEC_CODE_BACKEND_H_
#define MDZ_CODEC_CODE_BACKEND_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace mdz::codec {

// Encoder + lossless stage seam of the block codec (SZ3-style pipeline,
// DESIGN.md "Stage boundary"): turns the laid-out quantization-code
// array — plus the predictor's auxiliary symbol stream (the VQ family's
// level deltas), which rides at the head of the main payload as a Huffman
// blob in every backend — into the dictionary-coded main blob, and back.
//
// The `mode` in the result is the block's b_mode byte; each backend owns a
// disjoint range of mode values, so the byte self-describes which backend
// decodes the payload (docs/FORMAT.md):
//   0  Huffman(codes) -> LZ          (HuffmanLzCodeBackend)
//   1  raw u16 codes  -> LZ          (HuffmanLzCodeBackend, run-heavy data)
//   2  bit-adaptive sub-block packing -> LZ (BitpackCodeBackend)
struct MainPayload {
  std::vector<uint8_t> main_lz;  // dictionary-coded main payload blob
  uint8_t mode = 0;
  size_t huffman_bytes = 0;  // entropy-stage output, pre-dictionary
  double entropy_bits = 0.0;  // Shannon entropy of the codes, bits/symbol
};

class CodeBackend {
 public:
  // `code_limit` bounds the quantization codes (the scale); `aux_limit`
  // bounds the auxiliary symbols.
  CodeBackend(uint32_t code_limit, uint32_t aux_limit)
      : code_limit_(code_limit), aux_limit_(aux_limit) {}
  virtual ~CodeBackend() = default;

  virtual MainPayload EncodeMain(std::span<const uint32_t> aux_codes,
                                 std::span<const uint32_t> laid) const = 0;

  // Decodes a payload produced by EncodeMain under `mode`. Exactly `count`
  // codes must come back; anything else is Corruption. The caller validates
  // that `mode` belongs to this backend before dispatching.
  virtual Status DecodeMain(uint8_t mode, std::span<const uint8_t> main_blob,
                            size_t count, std::vector<uint32_t>* aux_codes,
                            std::vector<uint32_t>* laid) const = 0;

 protected:
  uint32_t code_limit_;
  uint32_t aux_limit_;
};

// The paper's pipeline: Huffman(codes) behind the dictionary coder, with a
// second raw-u16 candidate when one code dominates (run-heavy Seq-2 data
// that bit-packed Huffman would hide from the dictionary stage).
class HuffmanLzCodeBackend final : public CodeBackend {
 public:
  using CodeBackend::CodeBackend;
  MainPayload EncodeMain(std::span<const uint32_t> aux_codes,
                         std::span<const uint32_t> laid) const override;
  Status DecodeMain(uint8_t mode, std::span<const uint8_t> main_blob,
                    size_t count, std::vector<uint32_t>* aux_codes,
                    std::vector<uint32_t>* laid) const override;
};

// Per-sub-block bit-adaptive packing (codec/bitpack.h) behind the
// dictionary coder; the bit-adaptive candidate's backend.
class BitpackCodeBackend final : public CodeBackend {
 public:
  using CodeBackend::CodeBackend;
  MainPayload EncodeMain(std::span<const uint32_t> aux_codes,
                         std::span<const uint32_t> laid) const override;
  Status DecodeMain(uint8_t mode, std::span<const uint8_t> main_blob,
                    size_t count, std::vector<uint32_t>* aux_codes,
                    std::vector<uint32_t>* laid) const override;
};

}  // namespace mdz::codec

#endif  // MDZ_CODEC_CODE_BACKEND_H_
