#ifndef MDZ_CODEC_FPC_H_
#define MDZ_CODEC_FPC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace mdz::codec {

// FPC lossless double-precision compressor (Burtscher & Ratanaworabhan,
// DCC'07): each value is predicted by both an FCM and a DFCM hash-table
// predictor; the better prediction is XORed with the true value and the
// residual is stored as a 4-bit header (predictor selector + leading-zero-
// byte count) plus the nonzero remainder bytes.
//
// Used as the from-scratch stand-in for the "FPC" row of paper Table V.
struct FpcOptions {
  int table_log = 16;  // 2^table_log entries per predictor table
};

std::vector<uint8_t> FpcCompress(std::span<const double> values,
                                 const FpcOptions& options = FpcOptions());

Status FpcDecompress(std::span<const uint8_t> data, std::vector<double>* out);

}  // namespace mdz::codec

#endif  // MDZ_CODEC_FPC_H_
