#include "codec/lossless.h"

#include <cstring>

#include "codec/fpc.h"
#include "codec/fpzip_like.h"
#include "codec/lz.h"
#include "codec/zfp_like.h"

namespace mdz::codec {

namespace {

std::vector<uint8_t> DoublesToBytes(std::span<const double> values) {
  std::vector<uint8_t> bytes(values.size() * sizeof(double));
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

Status BytesToDoubles(const std::vector<uint8_t>& bytes,
                      std::vector<double>* out) {
  if (bytes.size() % sizeof(double) != 0) {
    return Status::Corruption("byte stream is not a whole number of doubles");
  }
  out->resize(bytes.size() / sizeof(double));
  std::memcpy(out->data(), bytes.data(), bytes.size());
  return Status::OK();
}

constexpr LosslessCodec kAll[] = {
    LosslessCodec::kZstdLike,   LosslessCodec::kZlibLike,
    LosslessCodec::kBrotliLike, LosslessCodec::kFpzipLike,
    LosslessCodec::kFpc,        LosslessCodec::kZfpReversible,
};

}  // namespace

std::span<const LosslessCodec> AllLosslessCodecs() { return kAll; }

std::string_view LosslessCodecName(LosslessCodec codec) {
  switch (codec) {
    case LosslessCodec::kZstdLike:
      return "Zstd-like";
    case LosslessCodec::kZlibLike:
      return "Zlib-like";
    case LosslessCodec::kBrotliLike:
      return "Brotli-like";
    case LosslessCodec::kFpzipLike:
      return "Fpzip-like";
    case LosslessCodec::kFpc:
      return "FPC";
    case LosslessCodec::kZfpReversible:
      return "ZFP-like";
  }
  return "Unknown";
}

std::vector<uint8_t> LosslessCompress(std::span<const double> values,
                                      LosslessCodec codec) {
  switch (codec) {
    case LosslessCodec::kZstdLike:
      return LzCompress(DoublesToBytes(values), ZstdLikeOptions());
    case LosslessCodec::kZlibLike:
      return LzCompress(DoublesToBytes(values), DeflateLikeOptions());
    case LosslessCodec::kBrotliLike:
      return LzCompress(DoublesToBytes(values), BrotliLikeOptions());
    case LosslessCodec::kFpzipLike:
      return FpzipLikeCompress(values);
    case LosslessCodec::kFpc:
      return FpcCompress(values);
    case LosslessCodec::kZfpReversible:
      return ZfpLikeCompressReversible(values);
  }
  return {};
}

Status LosslessDecompress(std::span<const uint8_t> data, LosslessCodec codec,
                          std::vector<double>* out) {
  switch (codec) {
    case LosslessCodec::kZstdLike:
    case LosslessCodec::kZlibLike:
    case LosslessCodec::kBrotliLike: {
      std::vector<uint8_t> bytes;
      MDZ_RETURN_IF_ERROR(LzDecompress(data, &bytes));
      return BytesToDoubles(bytes, out);
    }
    case LosslessCodec::kFpzipLike:
      return FpzipLikeDecompress(data, out);
    case LosslessCodec::kFpc:
      return FpcDecompress(data, out);
    case LosslessCodec::kZfpReversible:
      return ZfpLikeDecompressReversible(data, out);
  }
  return Status::InvalidArgument("unknown lossless codec");
}

}  // namespace mdz::codec
