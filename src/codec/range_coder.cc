#include "codec/range_coder.h"

#include <algorithm>

#include "util/byte_buffer.h"

namespace mdz::codec {

namespace {

constexpr uint32_t kTopValue = 1u << 24;

// Smallest power-of-two bit width covering [0, alphabet_size).
int TreeBits(uint32_t alphabet_size) {
  int bits = 1;
  while ((1u << bits) < alphabet_size) ++bits;
  return bits;
}

}  // namespace

void RangeEncoder::ShiftLow() {
  if (low_ < 0xFF000000ull || low_ > 0xFFFFFFFFull) {
    // The carry (bit 32 of low_) is resolved: emit the cached byte plus any
    // pending 0xFF run, propagating the carry into them.
    const uint8_t carry = static_cast<uint8_t>(low_ >> 32);
    out_.push_back(static_cast<uint8_t>(cache_ + carry));
    for (; cache_size_ > 1; --cache_size_) {
      out_.push_back(static_cast<uint8_t>(0xFF + carry));
    }
    cache_ = static_cast<uint8_t>(low_ >> 24);
    cache_size_ = 0;
  }
  ++cache_size_;
  low_ = (low_ << 8) & 0xFFFFFFFFull;
}

void RangeEncoder::EncodeBit(BitModel* model, bool bit) {
  const uint32_t bound =
      (range_ >> BitModel::kBits) * model->probability();
  if (!bit) {
    range_ = bound;
  } else {
    low_ += bound;
    range_ -= bound;
  }
  model->Update(bit);
  while (range_ < kTopValue) {
    range_ <<= 8;
    ShiftLow();
  }
}

void RangeEncoder::Flush() {
  for (int i = 0; i < 5; ++i) ShiftLow();
  // Drop the dummy first byte emitted by the initial cache.
  if (!out_.empty()) out_.erase(out_.begin());
}

RangeDecoder::RangeDecoder(std::span<const uint8_t> data) : data_(data) {
  for (int i = 0; i < 4; ++i) {
    code_ = (code_ << 8) | NextByte();
  }
}

bool RangeDecoder::DecodeBit(BitModel* model) {
  const uint32_t bound =
      (range_ >> BitModel::kBits) * model->probability();
  bool bit;
  if (code_ < bound) {
    range_ = bound;
    bit = false;
  } else {
    code_ -= bound;
    range_ -= bound;
    bit = true;
  }
  model->Update(bit);
  while (range_ < kTopValue) {
    range_ <<= 8;
    code_ = (code_ << 8) | NextByte();
  }
  return bit;
}

std::vector<uint8_t> RangeEncodeSymbols(std::span<const uint32_t> symbols,
                                        uint32_t alphabet_size) {
  const int bits = TreeBits(alphabet_size);
  // Bit-tree contexts: node index in [1, 2^bits), as in LZMA literals.
  std::vector<BitModel> models(size_t{1} << bits);

  RangeEncoder encoder;
  for (uint32_t symbol : symbols) {
    uint32_t node = 1;
    for (int b = bits - 1; b >= 0; --b) {
      const bool bit = (symbol >> b) & 1;
      encoder.EncodeBit(&models[node], bit);
      node = (node << 1) | (bit ? 1 : 0);
    }
  }
  encoder.Flush();

  ByteWriter out;
  out.PutVarint(symbols.size());
  out.PutVarint(alphabet_size);
  out.PutBytes(encoder.bytes().data(), encoder.bytes().size());
  return out.TakeBytes();
}

Status RangeDecodeSymbols(std::span<const uint8_t> data,
                          std::vector<uint32_t>* out) {
  ByteReader r(data);
  uint64_t count = 0, alphabet = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&count));
  MDZ_RETURN_IF_ERROR(r.GetVarint(&alphabet));
  if (alphabet == 0 || alphabet > (1u << 20)) {
    return Status::Corruption("range coder alphabet out of bounds");
  }
  // The adaptive model's probability floor bounds the best case at ~0.0007
  // bits per coded bit, i.e. < 16000 symbols per payload byte; anything
  // above is hostile (guards allocation and loop length).
  if (count > 16000 * (data.size() + 1)) {
    return Status::Corruption("range coder symbol count implausible");
  }
  const int bits = TreeBits(static_cast<uint32_t>(alphabet));
  std::vector<BitModel> models(size_t{1} << bits);

  RangeDecoder decoder(data.subspan(r.position()));
  out->clear();
  out->reserve(std::min<uint64_t>(count, 1u << 20));
  for (uint64_t i = 0; i < count; ++i) {
    // Bail out early on truncated/hostile streams instead of decoding
    // megabytes of zero padding.
    if ((i & 4095) == 0 && decoder.overran()) {
      return Status::Corruption("range coder stream truncated");
    }
    uint32_t node = 1;
    for (int b = 0; b < bits; ++b) {
      const bool bit = decoder.DecodeBit(&models[node]);
      node = (node << 1) | (bit ? 1 : 0);
    }
    const uint32_t symbol = node - (1u << bits);
    if (symbol >= alphabet) {
      return Status::Corruption("range coder produced out-of-alphabet symbol");
    }
    out->push_back(symbol);
  }
  if (decoder.overran()) {
    return Status::Corruption("range coder stream truncated");
  }
  return Status::OK();
}

}  // namespace mdz::codec
