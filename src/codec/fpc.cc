#include "codec/fpc.h"

#include <cstring>

#include "util/byte_buffer.h"
#include "util/unaligned.h"

namespace mdz::codec {

namespace {

inline uint64_t ToBits(double d) { return BitCast<uint64_t>(d); }

inline double FromBits(uint64_t u) { return BitCast<double>(u); }

inline int LeadingZeroBytes(uint64_t x) {
  if (x == 0) return 8;
  return __builtin_clzll(x) >> 3;
}

// Shared FCM/DFCM predictor state, advanced identically by the encoder and
// the decoder.
class Predictors {
 public:
  explicit Predictors(int table_log)
      : mask_((size_t{1} << table_log) - 1),
        fcm_(mask_ + 1, 0),
        dfcm_(mask_ + 1, 0) {}

  uint64_t PredictFcm() const { return fcm_[fcm_hash_]; }
  uint64_t PredictDfcm() const { return dfcm_[dfcm_hash_] + last_; }

  void Update(uint64_t actual) {
    fcm_[fcm_hash_] = actual;
    fcm_hash_ = ((fcm_hash_ << 6) ^ (actual >> 48)) & mask_;
    const uint64_t delta = actual - last_;
    dfcm_[dfcm_hash_] = delta;
    dfcm_hash_ = ((dfcm_hash_ << 2) ^ (delta >> 40)) & mask_;
    last_ = actual;
  }

 private:
  size_t mask_;
  std::vector<uint64_t> fcm_;
  std::vector<uint64_t> dfcm_;
  size_t fcm_hash_ = 0;
  size_t dfcm_hash_ = 0;
  uint64_t last_ = 0;
};

}  // namespace

std::vector<uint8_t> FpcCompress(std::span<const double> values,
                                 const FpcOptions& options) {
  Predictors pred(options.table_log);

  // Header nibbles (2 per byte) followed by residual bytes.
  std::vector<uint8_t> headers((values.size() + 1) / 2, 0);
  std::vector<uint8_t> residuals;
  residuals.reserve(values.size() * 4);

  for (size_t i = 0; i < values.size(); ++i) {
    const uint64_t bits = ToBits(values[i]);
    const uint64_t xor_fcm = bits ^ pred.PredictFcm();
    const uint64_t xor_dfcm = bits ^ pred.PredictDfcm();
    const bool use_dfcm = LeadingZeroBytes(xor_dfcm) > LeadingZeroBytes(xor_fcm);
    const uint64_t residual = use_dfcm ? xor_dfcm : xor_fcm;
    pred.Update(bits);

    int lzb = LeadingZeroBytes(residual);
    // 3 bits encode 0..7 leading-zero bytes; lzb==8 (exact hit) is stored as
    // 7 with zero remainder bytes being 1 byte — following the original FPC,
    // codes map {0,1,2,3,4,5,6,8} and lzb==7 is rounded down to 6.
    if (lzb == 7) lzb = 6;
    const int code = (lzb == 8) ? 7 : lzb;
    const uint8_t nibble =
        static_cast<uint8_t>((use_dfcm ? 8 : 0) | code);
    if (i % 2 == 0) {
      headers[i / 2] = nibble;
    } else {
      headers[i / 2] |= static_cast<uint8_t>(nibble << 4);
    }

    const int nbytes = 8 - ((code == 7) ? 8 : code);
    // Emit the low `nbytes` bytes of the residual, most significant first.
    for (int b = nbytes - 1; b >= 0; --b) {
      residuals.push_back(static_cast<uint8_t>(residual >> (8 * b)));
    }
  }

  ByteWriter out;
  out.PutVarint(values.size());
  out.Put<uint8_t>(static_cast<uint8_t>(options.table_log));
  out.PutBytes(headers.data(), headers.size());
  out.PutBytes(residuals.data(), residuals.size());
  return out.TakeBytes();
}

Status FpcDecompress(std::span<const uint8_t> data, std::vector<double>* out) {
  ByteReader r(data);
  uint64_t count = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&count));
  uint8_t table_log = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&table_log));
  if (table_log < 4 || table_log > 24) {
    return Status::Corruption("FPC table_log out of range");
  }
  if ((count + 1) / 2 > r.remaining()) {
    return Status::Corruption("FPC header nibbles exceed payload");
  }

  std::vector<uint8_t> headers((count + 1) / 2);
  MDZ_RETURN_IF_ERROR(r.GetBytes(headers.data(), headers.size()));

  Predictors pred(table_log);
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint8_t nibble = (i % 2 == 0) ? (headers[i / 2] & 0x0F)
                                        : (headers[i / 2] >> 4);
    const bool use_dfcm = (nibble & 8) != 0;
    const int code = nibble & 7;
    const int nbytes = 8 - ((code == 7) ? 8 : code);
    uint64_t residual = 0;
    for (int b = 0; b < nbytes; ++b) {
      uint8_t byte = 0;
      MDZ_RETURN_IF_ERROR(r.Get(&byte));
      residual = (residual << 8) | byte;
    }
    const uint64_t prediction =
        use_dfcm ? pred.PredictDfcm() : pred.PredictFcm();
    const uint64_t bits = prediction ^ residual;
    pred.Update(bits);
    out->push_back(FromBits(bits));
  }
  return Status::OK();
}

}  // namespace mdz::codec
