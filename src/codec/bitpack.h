#ifndef MDZ_CODEC_BITPACK_H_
#define MDZ_CODEC_BITPACK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace mdz::codec {

// Bit-adaptive packing of quantization codes (the per-block bit-budget idea
// of arXiv 2404.02826): the code array is split into fixed-size sub-blocks,
// and each sub-block stores its minimum code (varint) plus the bit width of
// (max - min) (one byte), then every code packed at exactly that width.
// Sub-blocks of a well-predicted region — codes clustered around the
// quantizer's zero point — collapse to a few bits per element with no table
// overhead, which is where this beats Huffman; escape-heavy or noisy
// sub-blocks just pay the local width. The stream is
// blob(per-sub-block meta) + blob(packed bits).
inline constexpr size_t kBitpackSubBlock = 64;

std::vector<uint8_t> BitpackEncode(std::span<const uint32_t> codes);

// Decodes exactly `count` codes. Every decoded code must be < `code_limit`
// (the quantization scale); anything malformed — truncated streams, widths
// past 32 bits, out-of-range codes, trailing bytes — is Corruption.
Status BitpackDecode(std::span<const uint8_t> bytes, size_t count,
                     uint32_t code_limit, std::vector<uint32_t>* out);

}  // namespace mdz::codec

#endif  // MDZ_CODEC_BITPACK_H_
