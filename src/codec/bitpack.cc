#include "codec/bitpack.h"

#include <algorithm>
#include <bit>

#include "util/bit_stream.h"
#include "util/byte_buffer.h"

namespace mdz::codec {

std::vector<uint8_t> BitpackEncode(std::span<const uint32_t> codes) {
  ByteWriter meta;
  BitWriter bits;
  for (size_t start = 0; start < codes.size(); start += kBitpackSubBlock) {
    const size_t end = std::min(start + kBitpackSubBlock, codes.size());
    uint32_t lo = codes[start];
    uint32_t hi = codes[start];
    for (size_t i = start + 1; i < end; ++i) {
      lo = std::min(lo, codes[i]);
      hi = std::max(hi, codes[i]);
    }
    const int width = std::bit_width(hi - lo);
    meta.PutVarint(lo);
    meta.Put<uint8_t>(static_cast<uint8_t>(width));
    for (size_t i = start; i < end; ++i) {
      bits.Write(codes[i] - lo, width);
    }
  }
  bits.Flush();
  ByteWriter out;
  out.PutBlob(meta.bytes());
  out.PutBlob(bits.bytes());
  return out.TakeBytes();
}

Status BitpackDecode(std::span<const uint8_t> bytes, size_t count,
                     uint32_t code_limit, std::vector<uint32_t>* out) {
  ByteReader r(bytes);
  std::span<const uint8_t> meta_blob, bits_blob;
  MDZ_RETURN_IF_ERROR(r.GetBlob(&meta_blob));
  MDZ_RETURN_IF_ERROR(r.GetBlob(&bits_blob));
  if (r.remaining() != 0) {
    return Status::Corruption("trailing bytes in bitpack stream");
  }
  ByteReader meta(meta_blob);
  BitReader bits(bits_blob);
  out->clear();
  out->reserve(count);
  size_t total_bits = 0;
  for (size_t start = 0; start < count; start += kBitpackSubBlock) {
    const size_t end = std::min(start + kBitpackSubBlock, count);
    uint64_t base = 0;
    uint8_t width = 0;
    MDZ_RETURN_IF_ERROR(meta.GetVarint(&base));
    MDZ_RETURN_IF_ERROR(meta.Get(&width));
    if (width > 32 || base >= code_limit) {
      return Status::Corruption("bad bitpack sub-block header");
    }
    total_bits += width * (end - start);
    for (size_t i = start; i < end; ++i) {
      const uint64_t code = base + bits.Read(width);
      if (code >= code_limit) {
        return Status::Corruption("bitpacked code out of scale");
      }
      out->push_back(static_cast<uint32_t>(code));
    }
  }
  MDZ_RETURN_IF_ERROR(bits.CheckNoOverrun());
  if (meta.remaining() != 0 || bits_blob.size() != (total_bits + 7) / 8) {
    return Status::Corruption("bitpack stream size mismatch");
  }
  return Status::OK();
}

}  // namespace mdz::codec
