#ifndef MDZ_CODEC_FPZIP_LIKE_H_
#define MDZ_CODEC_FPZIP_LIKE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace mdz::codec {

// Fpzip-style lossless double compressor: each value is mapped to a
// sign-magnitude-ordered 64-bit integer, predicted by the previous value
// (order-1 Lorenzo along the flattened array), and the zigzagged residual is
// split into a leading-zero-byte class (Huffman-coded) plus raw remainder
// bytes (LZ-coded). Stand-in for the "Fpzip" row of paper Table V.
std::vector<uint8_t> FpzipLikeCompress(std::span<const double> values);

Status FpzipLikeDecompress(std::span<const uint8_t> data,
                           std::vector<double>* out);

}  // namespace mdz::codec

#endif  // MDZ_CODEC_FPZIP_LIKE_H_
