#include "cluster/kmeans1d.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "obs/span.h"
#include "util/rng.h"

namespace mdz::cluster {

namespace {

// Prefix-sum helper: O(1) cost of clustering sorted x[l..r] (inclusive,
// 0-based) into a single group.
class CostTable {
 public:
  explicit CostTable(std::span<const double> sorted) {
    const size_t n = sorted.size();
    prefix_.resize(n + 1, 0.0);
    prefix_sq_.resize(n + 1, 0.0);
    for (size_t i = 0; i < n; ++i) {
      prefix_[i + 1] = prefix_[i] + sorted[i];
      prefix_sq_[i + 1] = prefix_sq_[i] + sorted[i] * sorted[i];
    }
  }

  double Cost(size_t l, size_t r) const {
    const double s = prefix_[r + 1] - prefix_[l];
    const double sq = prefix_sq_[r + 1] - prefix_sq_[l];
    const double len = static_cast<double>(r - l + 1);
    const double c = sq - s * s / len;
    return c > 0.0 ? c : 0.0;  // clamp negative rounding noise
  }

  double Mean(size_t l, size_t r) const {
    return (prefix_[r + 1] - prefix_[l]) / static_cast<double>(r - l + 1);
  }

 private:
  std::vector<double> prefix_;
  std::vector<double> prefix_sq_;
};

// Divide-and-conquer DP row solver. Computes, for all i in [ilo, ihi],
//   cur[i]  = min_{j in [jlo(i), jhi(i)]} prev[j-1] + Cost(j-1, i-1)
//   arg[i]  = argmin j
// exploiting that the optimal split j is non-decreasing in i.
// Indices: i = number of points considered (1-based), j = first point of the
// last cluster (1-based). Valid j range: [k, i].
void SolveRow(const CostTable& cost, const std::vector<double>& prev,
              std::vector<double>* cur, std::vector<int32_t>* arg, int k,
              size_t ilo, size_t ihi, size_t jlo, size_t jhi) {
  if (ilo > ihi) return;
  const size_t mid = (ilo + ihi) / 2;
  double best = std::numeric_limits<double>::infinity();
  size_t best_j = jlo;
  const size_t j_max = std::min(jhi, mid);
  for (size_t j = std::max<size_t>(jlo, k); j <= j_max; ++j) {
    const double c = prev[j - 1] + cost.Cost(j - 1, mid - 1);
    if (c < best) {
      best = c;
      best_j = j;
    }
  }
  (*cur)[mid] = best;
  (*arg)[mid] = static_cast<int32_t>(best_j);
  if (mid > ilo) SolveRow(cost, prev, cur, arg, k, ilo, mid - 1, jlo, best_j);
  if (mid < ihi) SolveRow(cost, prev, cur, arg, k, mid + 1, ihi, best_j, jhi);
}

struct DpState {
  std::vector<double> sorted;
  CostTable cost;
  std::vector<double> prev;                   // F(., k-1)
  std::vector<double> cur;                    // F(., k)
  std::vector<std::vector<int32_t>> argmins;  // H rows for backtracking
  int k = 0;                                  // rows computed so far

  // Sorts the data before building the prefix-sum cost table (contiguous
  // DP ranges must correspond to value-sorted clusters).
  explicit DpState(std::vector<double> data)
      : sorted(Sorted(std::move(data))), cost(sorted) {}

  static std::vector<double> Sorted(std::vector<double> data) {
    std::sort(data.begin(), data.end());
    return data;
  }

  // Advances to row k+1; returns F(N, k+1).
  double NextRow() {
    const size_t n = sorted.size();
    if (k == 0) {
      prev.assign(n + 1, 0.0);
      for (size_t i = 1; i <= n; ++i) prev[i] = cost.Cost(0, i - 1);
      argmins.emplace_back(n + 1, 1);  // row 1: single cluster starts at 1
      k = 1;
      return prev[n];
    }
    cur.assign(n + 1, std::numeric_limits<double>::infinity());
    std::vector<int32_t> arg(n + 1, 0);
    SolveRow(cost, prev, &cur, &arg, k + 1, static_cast<size_t>(k + 1), n,
             static_cast<size_t>(k + 1), n);
    argmins.push_back(std::move(arg));
    prev.swap(cur);
    ++k;
    return prev[n];
  }

  // Recovers cluster boundaries for `k_sel` clusters (k_sel <= rows
  // computed): returns start indices (0-based) of each cluster, ascending.
  std::vector<size_t> Backtrack(int k_sel) const {
    std::vector<size_t> starts(k_sel);
    size_t i = sorted.size();
    for (int kk = k_sel; kk >= 1; --kk) {
      const size_t j = (kk == 1) ? 1 : static_cast<size_t>(argmins[kk - 1][i]);
      starts[kk - 1] = j - 1;
      i = j - 1;
    }
    return starts;
  }
};

KMeansResult ExtractResult(const DpState& dp, int k_sel) {
  KMeansResult result;
  const std::vector<size_t> starts = dp.Backtrack(k_sel);
  const size_t n = dp.sorted.size();
  for (size_t c = 0; c < starts.size(); ++c) {
    const size_t l = starts[c];
    const size_t r = (c + 1 < starts.size()) ? starts[c + 1] - 1 : n - 1;
    if (l > r) continue;  // degenerate empty cluster (shouldn't happen)
    result.centroids.push_back(dp.cost.Mean(l, r));
    result.sizes.push_back(r - l + 1);
    result.cost += dp.cost.Cost(l, r);
  }
  return result;
}

}  // namespace

Result<KMeansResult> OptimalKMeans1D(std::span<const double> data, int k) {
  if (data.empty()) {
    return Status::InvalidArgument("k-means input is empty");
  }
  if (k < 1 || static_cast<size_t>(k) > data.size()) {
    return Status::InvalidArgument("k out of range [1, n]");
  }
  DpState dp(std::vector<double>(data.begin(), data.end()));
  for (int i = 0; i < k; ++i) dp.NextRow();
  return ExtractResult(dp, k);
}

Result<LevelFit> FitLevels(std::span<const double> data,
                           const LevelFitOptions& options) {
  MDZ_SPAN("kmeans_fit");
  if (data.empty()) {
    return Status::InvalidArgument("level fit input is empty");
  }

  // --- Sampling (paper: 10% of the first snapshot, computed once) ---
  size_t target = static_cast<size_t>(
      static_cast<double>(data.size()) * options.sample_fraction);
  target = std::clamp(target, std::min(options.min_sample, data.size()),
                      options.max_sample);
  std::vector<double> sample;
  sample.reserve(target);
  if (target >= data.size()) {
    sample.assign(data.begin(), data.end());
  } else {
    Rng rng(options.seed);
    const double stride =
        static_cast<double>(data.size()) / static_cast<double>(target);
    for (size_t i = 0; i < target; ++i) {
      // Jittered stride sampling: deterministic coverage + no aliasing with
      // lattice-ordered dumps.
      const double base = static_cast<double>(i) * stride;
      const size_t idx = std::min(
          data.size() - 1,
          static_cast<size_t>(base + rng.NextDouble() * stride));
      sample.push_back(data[idx]);
    }
  }

  DpState dp(std::move(sample));
  const size_t n = dp.sorted.size();
  const int max_k =
      std::min<int>(options.max_levels, static_cast<int>(n));

  // --- Sweep k with the G(k) knee rule ---
  double f_prev = dp.NextRow();  // F(N, 1)
  LevelFit fit;
  if (f_prev <= 0.0 || max_k == 1) {
    // All samples identical (or forced single level).
    fit.mu = dp.sorted.front();
    fit.lambda = 1.0;
    fit.num_levels = 1;
    return fit;
  }
  int chosen_k = 1;
  for (int k = 2; k <= max_k; ++k) {
    const double f = dp.NextRow();
    const double g = (f_prev > 0.0) ? f / f_prev : 1.0;
    fit.knee_g = g;
    if (g > options.knee_threshold) {
      // Improvement flattened: the previous k captured the level structure.
      break;
    }
    chosen_k = k;
    f_prev = f;
    if (f <= 0.0) break;  // perfect clustering reached
  }

  const KMeansResult clusters = ExtractResult(dp, chosen_k);

  // --- Fit arithmetic progression mu + lambda * j to the centroids ---
  const auto& c = clusters.centroids;
  if (c.size() == 1) {
    fit.mu = c[0];
    fit.lambda = std::max(1e-30, dp.sorted.back() - dp.sorted.front());
    fit.num_levels = 1;
    return fit;
  }

  // Gaps between adjacent occupied clusters are (possibly zero) integer
  // multiples of lambda: sparse level occupation gives multi-lambda gaps,
  // and an overshooting knee can split one level into two clusters with a
  // near-zero gap. Try every gap as a lambda candidate (largest first) and
  // keep the largest one under which all gaps are near-integer multiples.
  std::vector<double> gaps;
  gaps.reserve(c.size() - 1);
  for (size_t i = 0; i + 1 < c.size(); ++i) gaps.push_back(c[i + 1] - c[i]);
  std::vector<double> candidates = gaps;
  std::sort(candidates.begin(), candidates.end(), std::greater<double>());

  double lambda = 0.0;
  for (double cand : candidates) {
    if (cand <= 0.0) break;
    bool fits = false;   // at least one gap is a >=1 multiple
    bool all_ok = true;
    double num = 0.0, den = 0.0;
    for (double g : gaps) {
      const double mult = std::round(g / cand);
      if (std::fabs(g - mult * cand) > 0.25 * cand) {
        all_ok = false;
        break;
      }
      if (mult >= 1.0) {
        fits = true;
        num += g;  // refine lambda over the explained gaps
        den += mult;
      }
      // mult == 0: split-level artifact; ignored.
    }
    if (all_ok && fits) {
      lambda = num / den;
      break;
    }
  }
  if (lambda <= 0.0) {
    // No consistent grid (e.g. uniform data): fall back to the median gap.
    std::vector<double> sorted_gaps = gaps;
    std::sort(sorted_gaps.begin(), sorted_gaps.end());
    lambda = std::max(1e-30, sorted_gaps[sorted_gaps.size() / 2]);
  }

  // Weighted least squares of centroid_j = mu + lambda * n_j over occupied
  // level indices n_j (weights = cluster populations), refined once after
  // lambda settles.
  double mu = c[0];
  for (int pass = 0; pass < 2; ++pass) {
    double sw = 0.0, swn = 0.0, swc = 0.0, swnn = 0.0, swnc = 0.0;
    for (size_t j = 0; j < c.size(); ++j) {
      const double w = static_cast<double>(clusters.sizes[j]);
      const double idx = std::round((c[j] - c[0]) / lambda);
      sw += w;
      swn += w * idx;
      swc += w * c[j];
      swnn += w * idx * idx;
      swnc += w * idx * c[j];
    }
    const double det = sw * swnn - swn * swn;
    if (std::fabs(det) < 1e-30) break;
    const double new_mu = (swnn * swc - swn * swnc) / det;
    const double new_lambda = (sw * swnc - swn * swc) / det;
    mu = new_mu;
    if (new_lambda > 0.0) lambda = new_lambda;
  }
  fit.mu = mu;
  fit.lambda = lambda;
  fit.num_levels = static_cast<int>(c.size());

  // Fit quality: mean squared residual of sample points to the level grid,
  // normalized by lambda^2.
  double mse = 0.0;
  for (double x : dp.sorted) {
    const double idx = std::round((x - fit.mu) / fit.lambda);
    const double r = x - (fit.mu + fit.lambda * idx);
    mse += r * r;
  }
  mse /= static_cast<double>(n);
  fit.fit_error = mse / (fit.lambda * fit.lambda);
  return fit;
}

}  // namespace mdz::cluster
