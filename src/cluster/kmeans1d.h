#ifndef MDZ_CLUSTER_KMEANS1D_H_
#define MDZ_CLUSTER_KMEANS1D_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace mdz::cluster {

// Exact 1-D k-means (paper Section VI-A, Formula 1). Unlike the NP-hard
// multi-dimensional problem, optimally partitioning sorted 1-D points into k
// contiguous clusters is polynomial; we implement the dynamic program
//   F(n,k) = min_i F(i-1,k-1) + Cost(i,n)
// with divide-and-conquer over the monotone argmin rows, O(k n log n) time.
struct KMeansResult {
  std::vector<double> centroids;  // ascending, one per non-empty cluster
  std::vector<size_t> sizes;      // cluster populations (same order)
  double cost = 0.0;              // sum of squared deviations
};

// Clusters `data` (sorted internally) into exactly `k` groups. k must be in
// [1, data.size()].
Result<KMeansResult> OptimalKMeans1D(std::span<const double> data, int k);

// Level-structure model fitted from the k-means clustering: the centroids of
// crystalline MD data fall on an arithmetic progression `mu + lambda * j`
// (paper takeaway 2). `FitLevels` samples the data, sweeps k with the paper's
// G(k)=F(N,k)/F(N,k-1) knee rule (capped at max_levels=150), and fits
// (mu, lambda) to the resulting centroids.
struct LevelFit {
  double mu = 0.0;       // value of level 0
  double lambda = 1.0;   // distance between adjacent levels
  int num_levels = 1;    // chosen k
  double knee_g = 0.0;   // G at the stopping point (diagnostic)
  // Mean squared distance from data to the fitted level grid, relative to
  // lambda^2; small values indicate strong level structure.
  double fit_error = 0.0;
};

struct LevelFitOptions {
  double sample_fraction = 0.1;  // paper: 10% of the first snapshot
  size_t min_sample = 256;
  size_t max_sample = 8192;
  int max_levels = 150;          // paper: cap K at 150
  // Stop at k when G(k) exceeds this (improvement has flattened out).
  double knee_threshold = 0.9;
  uint64_t seed = 42;
};

Result<LevelFit> FitLevels(std::span<const double> data,
                           const LevelFitOptions& options = LevelFitOptions());

}  // namespace mdz::cluster

#endif  // MDZ_CLUSTER_KMEANS1D_H_
