#include "obs/span.h"

#include <vector>

namespace mdz::obs {

namespace {

// Per-thread stack of open span names; the join of the stack is the path of
// the innermost span.
thread_local std::vector<const char*> tls_span_stack;

// Fixed pool of async-readable span stacks. 64 slots covers the CLI's
// thread population (main + pool workers + reader + sampler + server) with
// room to spare; a thread past the pool simply isn't attributable from
// signal context. Static storage: signal-context readers index it without
// locks or allocation.
constexpr size_t kAsyncSpanStackSlots = 64;
AsyncSpanStack g_span_stacks[kAsyncSpanStackSlots];
std::atomic<size_t> g_span_stacks_used{0};

// POD thread-local (zero-initialized, no guard) so the first touch from a
// SIGPROF handler cannot run a dynamic initializer.
thread_local AsyncSpanStack* tls_async_stack = nullptr;
thread_local bool tls_async_stack_claimed = false;

}  // namespace

AsyncSpanStack* ThisThreadSpanStack() {
  if (!tls_async_stack_claimed) {
    tls_async_stack_claimed = true;
    const size_t index =
        g_span_stacks_used.fetch_add(1, std::memory_order_relaxed);
    if (index < kAsyncSpanStackSlots) {
      tls_async_stack = &g_span_stacks[index];
      tls_async_stack->tid.store(TimelineThreadId(),
                                 std::memory_order_relaxed);
    }
  }
  return tls_async_stack;
}

size_t AsyncSpanStackCount() {
  const size_t used = g_span_stacks_used.load(std::memory_order_relaxed);
  return used < kAsyncSpanStackSlots ? used : kAsyncSpanStackSlots;
}

const AsyncSpanStack* AsyncSpanStackAt(size_t index) {
  return index < kAsyncSpanStackSlots ? &g_span_stacks[index] : nullptr;
}

SpanTimer::SpanTimer(const char* name) {
  if (!Enabled()) return;
  Begin(name, nullptr, 0, nullptr, 0);
}

SpanTimer::SpanTimer(const char* name, const char* k0, uint64_t v0,
                     const char* k1, uint64_t v1) {
  if (!Enabled()) return;
  Begin(name, k0, v0, k1, v1);
}

void SpanTimer::Begin(const char* name, const char* k0, uint64_t v0,
                      const char* k1, uint64_t v1) {
  active_ = true;
  name_ = name;
  tls_span_stack.push_back(name);
  if (AsyncSpanStack* async = ThisThreadSpanStack()) {
    const uint32_t depth = async->depth.load(std::memory_order_relaxed);
    if (depth < AsyncSpanStack::kMaxDepth) {
      async->names[depth].store(name, std::memory_order_relaxed);
    }
    // Release-publish the new depth so a cross-thread reader that observes
    // it also sees the name store above. The same-thread SIGPROF reader is
    // ordered by program order regardless.
    async->depth.store(depth + 1, std::memory_order_release);
  }
  path_.reserve(64);
  path_ = "span";
  for (const char* part : tls_span_stack) {
    path_ += '/';
    path_ += part;
  }
  Timeline& timeline = Timeline::Global();
  if (timeline.recording()) {
    // Become the thread's innermost span: children (and pool tasks
    // submitted from this scope) parent onto span_id_.
    span_id_ = NextSpanId();
    saved_span_id_ = ExchangeCurrentSpanId(span_id_);
    if (k0 != nullptr) {
      timeline.Record(name, EventPhase::kBegin, span_id_, saved_span_id_, k0,
                      v0, k1, v1);
    } else {
      timeline.Record(name, EventPhase::kBegin, span_id_, saved_span_id_);
    }
  }
  start_ = std::chrono::steady_clock::now();
}

SpanTimer::~SpanTimer() {
  if (!active_) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  tls_span_stack.pop_back();
  if (AsyncSpanStack* async = ThisThreadSpanStack()) {
    const uint32_t depth = async->depth.load(std::memory_order_relaxed);
    if (depth > 0) {
      async->depth.store(depth - 1, std::memory_order_release);
    }
  }
  if (span_id_ != 0) {
    // Restore parentage even if recording flipped off mid-span; the end
    // event itself is dropped in that case (RecentSpans tolerates it).
    Timeline& timeline = Timeline::Global();
    if (timeline.recording()) {
      timeline.Record(name_, EventPhase::kEnd, span_id_, saved_span_id_);
    }
    ExchangeCurrentSpanId(saved_span_id_);
  }
  // Telemetry may have been flipped off mid-span; still record, the registry
  // write is harmless and the pop above must happen regardless.
  MetricsRegistry::Global()
      .GetHistogram(path_, DurationBuckets())
      ->Observe(seconds);
}

size_t SpanDepthForTest() { return tls_span_stack.size(); }

}  // namespace mdz::obs
