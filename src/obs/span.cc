#include "obs/span.h"

#include <vector>

namespace mdz::obs {

namespace {

// Per-thread stack of open span names; the join of the stack is the path of
// the innermost span.
thread_local std::vector<const char*> tls_span_stack;

}  // namespace

SpanTimer::SpanTimer(const char* name) {
  if (!Enabled()) return;
  active_ = true;
  tls_span_stack.push_back(name);
  path_.reserve(64);
  path_ = "span";
  for (const char* part : tls_span_stack) {
    path_ += '/';
    path_ += part;
  }
  start_ = std::chrono::steady_clock::now();
}

SpanTimer::~SpanTimer() {
  if (!active_) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  tls_span_stack.pop_back();
  // Telemetry may have been flipped off mid-span; still record, the registry
  // write is harmless and the pop above must happen regardless.
  MetricsRegistry::Global()
      .GetHistogram(path_, DurationBuckets())
      ->Observe(seconds);
}

size_t SpanDepthForTest() { return tls_span_stack.size(); }

}  // namespace mdz::obs
