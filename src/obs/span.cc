#include "obs/span.h"

#include <vector>

namespace mdz::obs {

namespace {

// Per-thread stack of open span names; the join of the stack is the path of
// the innermost span.
thread_local std::vector<const char*> tls_span_stack;

}  // namespace

SpanTimer::SpanTimer(const char* name) {
  if (!Enabled()) return;
  Begin(name, nullptr, 0, nullptr, 0);
}

SpanTimer::SpanTimer(const char* name, const char* k0, uint64_t v0,
                     const char* k1, uint64_t v1) {
  if (!Enabled()) return;
  Begin(name, k0, v0, k1, v1);
}

void SpanTimer::Begin(const char* name, const char* k0, uint64_t v0,
                      const char* k1, uint64_t v1) {
  active_ = true;
  name_ = name;
  tls_span_stack.push_back(name);
  path_.reserve(64);
  path_ = "span";
  for (const char* part : tls_span_stack) {
    path_ += '/';
    path_ += part;
  }
  Timeline& timeline = Timeline::Global();
  if (timeline.recording()) {
    // Become the thread's innermost span: children (and pool tasks
    // submitted from this scope) parent onto span_id_.
    span_id_ = NextSpanId();
    saved_span_id_ = ExchangeCurrentSpanId(span_id_);
    if (k0 != nullptr) {
      timeline.Record(name, EventPhase::kBegin, span_id_, saved_span_id_, k0,
                      v0, k1, v1);
    } else {
      timeline.Record(name, EventPhase::kBegin, span_id_, saved_span_id_);
    }
  }
  start_ = std::chrono::steady_clock::now();
}

SpanTimer::~SpanTimer() {
  if (!active_) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  tls_span_stack.pop_back();
  if (span_id_ != 0) {
    // Restore parentage even if recording flipped off mid-span; the end
    // event itself is dropped in that case (RecentSpans tolerates it).
    Timeline& timeline = Timeline::Global();
    if (timeline.recording()) {
      timeline.Record(name_, EventPhase::kEnd, span_id_, saved_span_id_);
    }
    ExchangeCurrentSpanId(saved_span_id_);
  }
  // Telemetry may have been flipped off mid-span; still record, the registry
  // write is harmless and the pop above must happen regardless.
  MetricsRegistry::Global()
      .GetHistogram(path_, DurationBuckets())
      ->Observe(seconds);
}

size_t SpanDepthForTest() { return tls_span_stack.size(); }

}  // namespace mdz::obs
