#include "obs/telemetry_server.h"

#include <cstdio>
#include <cstdlib>

#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timeline.h"

#ifndef MDZ_OBS_DISABLED
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#endif

namespace mdz::obs {

// ParseListenAddress stays available under MDZ_OBS_DISABLED so --listen
// validation behaves identically in every build (the server Start() is
// what reports "compiled out").
Status ParseListenAddress(const std::string& text, ListenAddress* out) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == text.size()) {
    return Status::InvalidArgument("--listen expects host:port, got '" +
                                   text + "'");
  }
  const std::string host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  // Host: "localhost" or IPv4 dotted-quad (digits and dots only; the
  // socket layer validates quad ranges at bind time via inet_pton).
  if (host != "localhost") {
    for (char c : host) {
      if ((c < '0' || c > '9') && c != '.') {
        return Status::InvalidArgument("--listen host must be IPv4 or "
                                       "'localhost', got '" +
                                       host + "'");
      }
    }
  }
  uint64_t port = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("--listen port must be numeric, got '" +
                                     port_text + "'");
    }
    port = port * 10 + static_cast<uint64_t>(c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("--listen port out of range (0-65535): " +
                                     port_text);
    }
  }
  out->host = host;
  out->port = static_cast<uint16_t>(port);
  return Status::OK();
}

#ifndef MDZ_OBS_DISABLED

namespace {

// Current resident set in bytes (Linux /proc; falls back to the peak from
// getrusage elsewhere).
uint64_t CurrentRssBytes() {
  uint64_t rss_pages = 0;
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    unsigned long long total = 0, resident = 0;
    if (std::fscanf(f, "%llu %llu", &total, &resident) == 2) {
      rss_pages = resident;
    }
    std::fclose(f);
  }
  if (rss_pages == 0) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return rss_pages * static_cast<uint64_t>(page > 0 ? page : 4096);
}

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string TracezJson(Timeline& timeline) {
  const std::vector<SpanSummary> spans = RecentSpans(timeline, 64);
  std::string out = "{\"schema\":\"mdz.tracez.v1\",\"dropped\":" +
                    std::to_string(timeline.dropped()) + ",\"spans\":[";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    // Span names are compile-time literals (no escaping needed beyond
    // sanity), but escape quotes/backslashes defensively.
    for (const char* p = s.name; *p != '\0'; ++p) {
      if (*p == '"' || *p == '\\') out += '\\';
      out += *p;
    }
    out += "\",\"trace_id\":" + std::to_string(s.trace_id) +
           ",\"span_id\":" + std::to_string(s.span_id) +
           ",\"parent_span_id\":" + std::to_string(s.parent_span_id) +
           ",\"tid\":" + std::to_string(s.tid) +
           ",\"start_ns\":" + std::to_string(s.start_ns) +
           ",\"duration_ns\":" + std::to_string(s.duration_ns) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace

// --- TelemetryServer --------------------------------------------------------

TelemetryServer::TelemetryServer(const MetricsRegistry* registry,
                                 Timeline* timeline, Profiler* profiler)
    : registry_(registry != nullptr ? registry : &MetricsRegistry::Global()),
      timeline_(timeline != nullptr ? timeline : &Timeline::Global()),
      profiler_(profiler != nullptr ? profiler : &Profiler::Global()) {}

TelemetryServer::~TelemetryServer() { Stop(); }

Status TelemetryServer::Start(const ListenAddress& address) {
  if (running()) return Status::FailedPrecondition("server already running");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(address.port);
  const std::string host =
      address.host == "localhost" ? "127.0.0.1" : address.host;
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("--listen host is not a valid IPv4 "
                                   "address: " +
                                   address.host);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal("bind failed for " + address.host + ":" +
                            std::to_string(address.port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::Internal("listen failed for " + address.host + ":" +
                            std::to_string(address.port));
  }
  // Resolve the bound port (meaningful when the caller asked for port 0).
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = address.port;
  }

  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void TelemetryServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = 0;
  running_.store(false, std::memory_order_release);
}

void TelemetryServer::Serve() {
  SetTimelineThreadName("telemetry-server");
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout (recheck stopping_) or EINTR
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    HandleConnection(client);
    ::close(client);
  }
}

void TelemetryServer::HandleConnection(int client_fd) {
  // Read until the end of the request head (or 2 s of silence); GET
  // requests have no body worth waiting for.
  std::string request;
  char buf[2048];
  for (int rounds = 0; rounds < 20; ++rounds) {
    if (request.find("\r\n\r\n") != std::string::npos) break;
    pollfd pfd{client_fd, POLLIN, 0};
    if (::poll(&pfd, 1, /*timeout_ms=*/100) <= 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;
    }
    const ssize_t n = ::read(client_fd, buf, sizeof(buf));
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
    if (request.size() > 16 * 1024) break;  // oversized head: reject below
  }

  std::string response;
  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  // Request line: METHOD SP target SP version.
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response = HttpResponse(400, "Bad Request", "text/plain",
                            "malformed request line\n");
  } else if (line.substr(0, sp1) != "GET") {
    response = HttpResponse(405, "Method Not Allowed", "text/plain",
                            "only GET is supported\n");
  } else {
    response = RouteRequest(line.substr(sp1 + 1, sp2 - sp1 - 1), request);
  }
  // Response write mirrors the read side's bounded patience. MSG_NOSIGNAL
  // turns a client that closed early (health probe, curl timeout) into an
  // EPIPE error instead of a process-killing SIGPIPE, and the send timeout
  // plus wall-clock deadline keep a reader that stalls mid-response from
  // wedging the single serve thread (and Stop()'s join) forever.
  const timeval send_timeout{/*tv_sec=*/2, /*tv_usec=*/0};
  ::setsockopt(client_fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
               sizeof(send_timeout));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  size_t off = 0;
  while (off < response.size() &&
         std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::send(client_fd, response.data() + off,
                             response.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // peer gone (EPIPE/ECONNRESET) or send timed out (EAGAIN)
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

std::string TelemetryServer::RouteRequest(const std::string& target,
                                          const std::string& head) {
  const size_t q = target.find('?');
  const std::string path = target.substr(0, q);
  const std::string query =
      q == std::string::npos ? std::string() : target.substr(q + 1);
  if (path == "/metrics") {
    return HttpResponse(200, "OK", "text/plain; version=0.0.4",
                        ToPrometheus(*registry_));
  }
  if (path == "/healthz") {
    return HttpResponse(200, "OK", "application/json", HealthzJson() + "\n");
  }
  if (path == "/buildz") {
    return HttpResponse(200, "OK", "application/json", BuildInfoJson() + "\n");
  }
  if (path == "/tracez") {
    return HttpResponse(200, "OK", "application/json",
                        TracezJson(*timeline_) + "\n");
  }
  if (path == "/profilez") {
    return HandleProfilez(query, head);
  }
  if (path == "/flightz") {
    return HttpResponse(200, "OK", "application/json",
                        FlightzJson(*registry_, *timeline_) + "\n");
  }
  return HttpResponse(404, "Not Found", "text/plain",
                      "unknown path (try /metrics, /healthz, /buildz, "
                      "/tracez, /profilez, /flightz)\n");
}

std::string TelemetryServer::HealthzJson() const {
  const uint64_t ring_dropped = timeline_->ring_dropped();
  const uint64_t store_evicted = timeline_->store_evicted();
  const uint64_t overruns = profiler_->overruns();
  // "degraded" means the observability plane itself lost data — the
  // pipeline may be perfectly healthy, but traces/profiles have holes.
  const bool degraded =
      ring_dropped != 0 || store_evicted != 0 || overruns != 0;
  std::string ready;
  if (ready_probe_) {
    ready = std::string(",\"ready\":") + (ready_probe_() ? "true" : "false");
  }
  return std::string("{\"status\":\"") + (degraded ? "degraded" : "ok") +
         "\"" + ready +
         ",\"timeline_ring_dropped\":" + std::to_string(ring_dropped) +
         ",\"timeline_store_evicted\":" + std::to_string(store_evicted) +
         ",\"profiler_signal_overruns\":" + std::to_string(overruns) +
         ",\"profiler_samples\":" + std::to_string(profiler_->samples()) +
         ",\"requests_served\":" +
         std::to_string(requests_served_.load(std::memory_order_relaxed)) +
         "}";
}

namespace {

// First "key=<digits>" value in an (unescaped) query string, or `fallback`.
uint64_t QueryUint(const std::string& query, const std::string& key,
                   uint64_t fallback) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      uint64_t value = 0;
      bool any = false;
      for (size_t i = eq + 1; i < pair.size(); ++i) {
        const char c = pair[i];
        if (c < '0' || c > '9') return fallback;
        value = value * 10 + static_cast<uint64_t>(c - '0');
        any = true;
      }
      if (any) return value;
    }
    pos = amp + 1;
  }
  return fallback;
}

bool QueryHas(const std::string& query, const std::string& pair) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    if (query.substr(pos, amp - pos) == pair) return true;
    pos = amp + 1;
  }
  return false;
}

}  // namespace

std::string TelemetryServer::HandleProfilez(const std::string& query,
                                            const std::string& head) {
  // ?seconds=N: window length, clamped to [1, 30] (the serve thread blocks
  // while an on-demand profile runs — keep it curl-friendly).
  uint64_t seconds = QueryUint(query, "seconds", 1);
  if (seconds < 1) seconds = 1;
  if (seconds > 30) seconds = 30;
  const bool want_json = QueryHas(query, "format=json") ||
                         head.find("Accept: application/json") !=
                             std::string::npos;

  std::vector<ProfileSample> samples;
  uint32_t hz = 0;
  double duration = 0.0;
  if (profiler_->running()) {
    // Window mode: the CLI's --profile session is live; report the last
    // N seconds of its stored samples without disturbing it.
    const uint64_t now = TimelineNowNs();
    const uint64_t window_ns = seconds * 1000000000ull;
    samples = profiler_->Snapshot(now > window_ns ? now - window_ns : 0);
    hz = profiler_->hz();
    duration = static_cast<double>(seconds);
  } else {
    // On-demand mode: profile this process for N seconds at the default
    // rate, then stop. Start fails if someone raced us into Start() — in
    // that case fall back to a plain snapshot of their session.
    const Status started = profiler_->Start(99);
    if (started.ok()) {
      std::this_thread::sleep_for(std::chrono::seconds(seconds));
      profiler_->Stop();
      hz = profiler_->hz();
      duration = profiler_->duration_seconds();
      samples = profiler_->Snapshot();
      profiler_->ClearStore();
    } else {
      samples = profiler_->Snapshot();
      hz = profiler_->hz();
      duration = profiler_->duration_seconds();
    }
  }

  const ProfileReport report = AggregateProfile(samples);
  if (want_json) {
    return HttpResponse(200, "OK", "application/json",
                        ProfileJson(report, hz, duration,
                                    profiler_->dropped(),
                                    profiler_->overruns()) +
                            "\n");
  }
  return HttpResponse(200, "OK", "text/plain", report.folded);
}

// --- ResourceSampler --------------------------------------------------------

ResourceSampler::ResourceSampler(Timeline* timeline,
                                 std::function<uint64_t()> queue_depth_fn,
                                 std::function<uint64_t()> bytes_fn)
    : timeline_(timeline != nullptr ? timeline : &Timeline::Global()),
      queue_depth_fn_(std::move(queue_depth_fn)),
      bytes_fn_(std::move(bytes_fn)) {}

ResourceSampler::~ResourceSampler() { Stop(); }

void ResourceSampler::Start(uint64_t interval_ms) {
  if (started_) return;
  started_ = true;
  stopping_.store(false, std::memory_order_release);
  SampleOnce();
  thread_ = std::thread([this, interval_ms] { Loop(interval_ms); });
}

void ResourceSampler::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  started_ = false;
  // Final sample so short runs still carry at least two points per track.
  SampleOnce();
}

void ResourceSampler::Loop(uint64_t interval_ms) {
  SetTimelineThreadName("resource-sampler");
  const auto interval = std::chrono::milliseconds(
      interval_ms == 0 ? 1 : interval_ms);
  auto next = std::chrono::steady_clock::now() + interval;
  while (!stopping_.load(std::memory_order_acquire)) {
    // Sleep in short slices so Stop() is prompt even at long intervals.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (std::chrono::steady_clock::now() < next) continue;
    next += interval;
    SampleOnce();
  }
}

void ResourceSampler::SampleOnce() {
  samples_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t rss = CurrentRssBytes();
  if (Enabled()) {
    MetricsRegistry::Global().GetGauge("resource/rss_bytes")->Set(
        static_cast<int64_t>(rss));
  }
  if (timeline_->recording()) {
    timeline_->RecordCounter("resource/rss_mb", "mb", rss >> 20);
    if (queue_depth_fn_) {
      timeline_->RecordCounter("stream/queue_depth", "depth",
                               queue_depth_fn_());
    }
    if (bytes_fn_) {
      timeline_->RecordCounter("stream/bytes_in", "bytes", bytes_fn_());
    }
  }
}

#endif  // MDZ_OBS_DISABLED

}  // namespace mdz::obs
