#ifndef MDZ_OBS_TRACE_H_
#define MDZ_OBS_TRACE_H_

// Per-block trace sink: one JSON line per flushed buffer, recording what the
// compressor actually did — chosen method, ADP trial sizes, block bytes,
// escape count, quantization-bin entropy. A single traced run is enough to
// reproduce the paper's Fig. 10 (method over time) and Fig. 11 (ADP vs the
// fixed modes); docs/OBSERVABILITY.md documents the schema.

#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "util/status.h"

namespace mdz::obs {

// One flushed buffer. `trial_bytes` uses fixed per-method slots
// (VQ, VQT, MT, TI, L2D, BA); entries stay 0 for flushes that ran no
// trials and for methods outside the candidate set.
struct BlockTrace {
  int axis = -1;               // axis label (-1 when the caller sets none)
  uint64_t block_index = 0;    // per-stream flush ordinal, 0-based
  const char* method = "";     // MethodName() of the chosen method
  uint64_t snapshots = 0;      // snapshots in the buffer
  uint64_t block_bytes = 0;    // framed bytes appended to the stream
  uint64_t escape_count = 0;   // values stored verbatim
  double bin_entropy_bits = 0.0;  // Shannon entropy of the quant codes
  bool adapted = false;        // this flush ran ADP trial encodes
  std::array<uint64_t, 6> trial_bytes{};
};

// Thread-safe JSONL writer (one mutex-guarded line per Record call; per-axis
// compressors on the pool share one sink).
class TraceSink {
 public:
  static Result<std::unique_ptr<TraceSink>> Open(const std::string& path);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void Record(const BlockTrace& trace);

  uint64_t records_written() const;

  // Flushes and closes the file; further Records are dropped. Idempotent
  // (the destructor closes too); returns the first write/flush error.
  Status Close();

 private:
  TraceSink() = default;

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  uint64_t records_ = 0;
  bool write_error_ = false;
};

}  // namespace mdz::obs

#endif  // MDZ_OBS_TRACE_H_
