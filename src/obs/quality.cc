#include "obs/quality.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/build_info.h"
#include "obs/metrics.h"

namespace mdz::obs {

namespace {

// Shortest round-trip formatting (same approach as the metrics exporter);
// non-finite values render as JSON null.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) break;
  }
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

size_t BucketIndex(double ratio) {
  for (size_t i = 0; i < kQualityBucketBounds.size(); ++i) {
    if (ratio <= kQualityBucketBounds[i]) return i;
  }
  return kQualityBucketBounds.size();  // overflow: bound violation
}

std::string StatsJsonFields(const QualityStats& s) {
  std::string out;
  out += "\"count\":" + std::to_string(s.count);
  out += ",\"max_err\":" + JsonNumber(s.max_err);
  out += ",\"mean_err\":" + JsonNumber(s.mean_err());
  out += ",\"mean_abs_err\":" + JsonNumber(s.mean_abs_err());
  out += ",\"rmse\":" + JsonNumber(s.rmse());
  out += ",\"nrmse\":" + JsonNumber(s.nrmse());
  out += ",\"psnr_db\":" + JsonNumber(s.psnr_db());
  out += ",\"value_range\":" + JsonNumber(s.value_range());
  out += ",\"violations\":" + std::to_string(s.violations);
  return out;
}

}  // namespace

double QualityStats::Observe(double original, double decoded, double bound) {
  const double err = original - decoded;
  const double abs_err = std::fabs(err);
  if (count == 0) {
    min_orig = max_orig = original;
  } else {
    min_orig = std::min(min_orig, original);
    max_orig = std::max(max_orig, original);
  }
  ++count;
  if (!std::isfinite(abs_err)) {
    // A NaN/Inf decode can never certify the bound — count it as a
    // violation without poisoning the running aggregates.
    ++violations;
    ++histogram[kQualityBucketCount - 1];
    return 1.5;
  }
  max_err = std::max(max_err, abs_err);
  sum_err += err;
  sum_abs_err += abs_err;
  sum_sq_err += err * err;
  const double ratio = bound > 0.0
                           ? abs_err / bound
                           : (abs_err > 0.0 ? 1.5 : 0.0);
  ++histogram[BucketIndex(ratio)];
  if (ratio > 1.0) ++violations;
  return ratio;
}

void QualityStats::Merge(const QualityStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min_orig = other.min_orig;
    max_orig = other.max_orig;
  } else {
    min_orig = std::min(min_orig, other.min_orig);
    max_orig = std::max(max_orig, other.max_orig);
  }
  count += other.count;
  violations += other.violations;
  max_err = std::max(max_err, other.max_err);
  sum_err += other.sum_err;
  sum_abs_err += other.sum_abs_err;
  sum_sq_err += other.sum_sq_err;
  for (size_t i = 0; i < histogram.size(); ++i) histogram[i] += other.histogram[i];
}

double QualityStats::mean_err() const {
  return count == 0 ? 0.0 : sum_err / static_cast<double>(count);
}

double QualityStats::mean_abs_err() const {
  return count == 0 ? 0.0 : sum_abs_err / static_cast<double>(count);
}

double QualityStats::rmse() const {
  return count == 0 ? 0.0 : std::sqrt(sum_sq_err / static_cast<double>(count));
}

double QualityStats::nrmse() const {
  const double range = value_range();
  return range > 0.0 ? rmse() / range : 0.0;
}

double QualityStats::psnr_db() const {
  const double range = value_range();
  const double r = rmse();
  if (range <= 0.0) return 0.0;
  if (r <= 0.0) return std::numeric_limits<double>::infinity();
  return 20.0 * std::log10(range / r);
}

uint64_t QualityReport::total_samples() const {
  uint64_t total = 0;
  for (const auto& f : fields) total += f.stats.count;
  return total;
}

uint64_t QualityReport::total_violations() const {
  uint64_t total = 0;
  for (const auto& f : fields) total += f.stats.violations;
  return total;
}

std::string QualityReportToJson(const QualityReport& report,
                                const std::string& archive_label,
                                const std::string& original_label) {
  std::string out = "{\"schema\":\"mdz.quality.v1\"";
  out += ",\"archive\":\"" + JsonEscape(archive_label) + '"';
  out += ",\"original\":\"" + JsonEscape(original_label) + '"';
  out += ",\"build\":" + BuildInfoJson();
  out += ",\"ok\":";
  out += report.clean() ? "true" : "false";
  out += ",\"violations\":" + std::to_string(report.total_violations());
  out += ",\"fields\":[";
  bool first = true;
  for (const auto& f : report.fields) {
    if (!first) out += ',';
    first = false;
    out += "{\"axis\":\"";
    out += (f.axis >= 0 && f.axis < 3) ? "xyz"[f.axis] : '?';
    out += '"';
    out += ",\"bound\":" + JsonNumber(f.bound);
    out += ',' + StatsJsonFields(f.stats);
    out += ",\"blocks\":" + std::to_string(f.blocks.size());
    out += ",\"histogram\":{\"bounds\":[";
    for (size_t i = 0; i < kQualityBucketBounds.size(); ++i) {
      if (i > 0) out += ',';
      out += JsonNumber(kQualityBucketBounds[i]);
    }
    out += "],\"counts\":[";
    for (size_t i = 0; i < f.stats.histogram.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(f.stats.histogram[i]);
    }
    out += "]}}";
  }
  out += "]}";
  return out;
}

void RecordQualityMetrics(const FieldQuality& field) {
  if (!Enabled()) return;
  MDZ_COUNTER_ADD("audit/fields", 1);
  MDZ_COUNTER_ADD("audit/blocks", field.blocks.size());
  MDZ_COUNTER_ADD("audit/samples", field.stats.count);
  MDZ_COUNTER_ADD("audit/violations", field.stats.violations);
}

// --- QualityTraceSink -------------------------------------------------------

Result<std::unique_ptr<QualityTraceSink>> QualityTraceSink::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open quality trace for writing: " + path);
  }
  std::unique_ptr<QualityTraceSink> sink(new QualityTraceSink());
  sink->file_ = file;
  return sink;
}

QualityTraceSink::~QualityTraceSink() { (void)Close(); }

void QualityTraceSink::Record(int axis, const BlockQuality& block) {
  std::string line = "{\"axis\":" + std::to_string(axis);
  line += ",\"block\":" + std::to_string(block.block_index);
  line += ",\"first_snapshot\":" + std::to_string(block.first_snapshot);
  line += ",\"snapshots\":" + std::to_string(block.snapshots);
  line += ",\"method\":\"" + JsonEscape(block.method) + '"';
  line += ',' + StatsJsonFields(block.stats);
  line += ",\"hist\":[";
  for (size_t i = 0; i < block.stats.histogram.size(); ++i) {
    if (i > 0) line += ',';
    line += std::to_string(block.stats.histogram[i]);
  }
  line += "]}\n";

  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr || write_error_) return;
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    write_error_ = true;
    return;
  }
  ++records_;
}

uint64_t QualityTraceSink::records_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

Status QualityTraceSink::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return write_error_ ? Status::Internal("quality trace write failed")
                        : Status::OK();
  }
  const bool flush_failed = std::fflush(file_) != 0;
  std::fclose(file_);
  file_ = nullptr;
  if (write_error_ || flush_failed) {
    write_error_ = true;
    return Status::Internal("quality trace write failed");
  }
  return Status::OK();
}

}  // namespace mdz::obs
