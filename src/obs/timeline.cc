#include "obs/timeline.h"

#ifndef MDZ_OBS_DISABLED

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace mdz::obs {

namespace {

// Thread-local trace context (see ScopedTraceContext / SpanTimer).
thread_local TraceContext tls_context;

// Origin of the event clock: first call wins; every ring shares it.
std::chrono::steady_clock::time_point ClockOrigin() {
  static const auto origin = std::chrono::steady_clock::now();
  return origin;
}

}  // namespace

TraceContext CurrentTraceContext() { return tls_context; }

uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

TraceContext BeginTrace() {
  tls_context.trace_id = NextTraceId();
  tls_context.span_id = NextSpanId();
  return tls_context;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& context)
    : saved_(tls_context) {
  tls_context = context;
}

ScopedTraceContext::~ScopedTraceContext() { tls_context = saved_; }

uint64_t ExchangeCurrentSpanId(uint64_t span_id) {
  const uint64_t previous = tls_context.span_id;
  tls_context.span_id = span_id;
  return previous;
}

uint64_t TimelineNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - ClockOrigin())
          .count());
}

// --- Per-thread ring --------------------------------------------------------

// Classic bounded SPSC ring: the owning thread is the only producer, the
// (mutex-serialized) drainer the only consumer. The producer never
// overwrites unread slots — a full ring drops the new event and counts it —
// so slot reads and writes are always separated by the head/tail
// acquire/release pair and the whole structure is data-race-free (TSan-
// verified in ObsTimelineTest.ConcurrentWritersVsDrain).
struct Timeline::Ring {
  explicit Ring(size_t capacity)
      : capacity(capacity), slots(capacity), tid(0) {}

  const size_t capacity;
  std::vector<TimelineEvent> slots;
  std::atomic<uint64_t> head{0};  // next slot the producer writes
  std::atomic<uint64_t> tail{0};  // next slot the drainer reads
  std::atomic<uint64_t> dropped{0};
  uint32_t tid;

  // Producer side (owning thread only).
  void Push(const TimelineEvent& event) {
    const uint64_t h = head.load(std::memory_order_relaxed);
    const uint64_t t = tail.load(std::memory_order_acquire);
    if (h - t >= capacity) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots[h % capacity] = event;
    head.store(h + 1, std::memory_order_release);
  }

  // Consumer side (Timeline::DrainRings, under rings_mu_).
  size_t DrainInto(std::vector<TimelineEvent>* out) {
    const uint64_t h = head.load(std::memory_order_acquire);
    uint64_t t = tail.load(std::memory_order_relaxed);
    const size_t n = static_cast<size_t>(h - t);
    for (; t < h; ++t) out->push_back(slots[t % capacity]);
    tail.store(h, std::memory_order_release);
    return n;
  }
};

namespace {

// The calling thread's ring within one specific Timeline. Each thread keeps
// one ring per Timeline instance it records into (the Global() one in
// production; test instances have their own map entries). shared_ptr keeps
// a ring alive for late drains after its thread exited.
struct ThreadRings {
  std::unordered_map<uint64_t, std::shared_ptr<Timeline::Ring>> map;
};

thread_local ThreadRings tls_rings;

uint64_t NextTimelineId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Ids of Timeline instances currently alive. Threads consult this to shed
// tls_rings entries for destroyed instances — otherwise a long-lived thread
// would permanently retain one ring (~2.6 MB at default capacity) per dead
// test-scoped Timeline it ever recorded into. Leaked on purpose: threads
// may outlive static destruction.
std::mutex& LiveTimelineIdsMutex() {
  static std::mutex mu;
  return mu;
}

std::unordered_set<uint64_t>& LiveTimelineIdsLocked() {
  static auto* ids = new std::unordered_set<uint64_t>();
  return *ids;
}

std::atomic<uint32_t> g_next_tid{1};

// POD zero-initialized TLS (no guard variable, no dynamic initializer):
// 0 means "not yet assigned". Assignment happens on the thread's first
// normal-context call; the profiler's signal path only ever *reads* the
// slot (TimelineThreadIdIfAssigned) and treats 0 as "skip this thread".
thread_local uint32_t tls_tid;

uint32_t ThisThreadTid() {
  if (tls_tid == 0) {
    tls_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_tid;
}

// Thread names are process-wide (a tid means the same OS thread in every
// Timeline instance) and tiny, so they live outside the rings — naming a
// thread must not allocate an event buffer for it.
std::mutex& ThreadNamesMutex() {
  static std::mutex mu;
  return mu;
}

std::vector<Timeline::ThreadName>& ThreadNamesLocked() {
  static std::vector<Timeline::ThreadName>* names =
      new std::vector<Timeline::ThreadName>();
  return *names;
}

}  // namespace

uint32_t TimelineThreadId() { return ThisThreadTid(); }

uint32_t TimelineThreadIdIfAssigned() { return tls_tid; }

size_t ThreadRingCountForTest() { return tls_rings.map.size(); }

void SetTimelineThreadName(const char* name) {
  const uint32_t tid = ThisThreadTid();
  std::lock_guard<std::mutex> lock(ThreadNamesMutex());
  auto& names = ThreadNamesLocked();
  for (auto& entry : names) {
    if (entry.tid == tid) {
      entry.name = name;
      return;
    }
  }
  names.push_back({tid, name});
}

// --- Timeline ---------------------------------------------------------------

Timeline::Timeline(size_t ring_capacity, size_t store_capacity)
    : id_(NextTimelineId()),
      ring_capacity_(std::max<size_t>(ring_capacity, 8)),
      store_capacity_(std::max<size_t>(store_capacity, 8)) {
  std::lock_guard<std::mutex> lock(LiveTimelineIdsMutex());
  LiveTimelineIdsLocked().insert(id_);
}

Timeline::~Timeline() {
  std::lock_guard<std::mutex> lock(LiveTimelineIdsMutex());
  LiveTimelineIdsLocked().erase(id_);
}

Timeline& Timeline::Global() {
  static Timeline* timeline = new Timeline();  // never destroyed
  return *timeline;
}

void Timeline::SetRecording(bool on) {
  recording_.store(on, std::memory_order_relaxed);
}

Timeline::Ring* Timeline::RingForThisThread() {
  auto& map = tls_rings.map;
  auto it = map.find(id_);
  if (it == map.end()) {
    // Slow path (first event into this Timeline from this thread): before
    // allocating, drop this thread's rings for Timelines that no longer
    // exist, so dead entries never outlive the next ring creation.
    {
      std::lock_guard<std::mutex> lock(LiveTimelineIdsMutex());
      const auto& live = LiveTimelineIdsLocked();
      for (auto dead = map.begin(); dead != map.end();) {
        dead = live.count(dead->first) == 0 ? map.erase(dead)
                                            : std::next(dead);
      }
    }
    auto ring = std::make_shared<Ring>(ring_capacity_);
    ring->tid = ThisThreadTid();
    {
      std::lock_guard<std::mutex> lock(rings_mu_);
      rings_.push_back(ring);
    }
    it = map.emplace(id_, std::move(ring)).first;
  }
  return it->second.get();
}

void Timeline::Record(const char* name, EventPhase phase) {
  // No explicit parent: attribute the event to the thread's innermost open
  // span (0 when outside any span).
  Record(name, phase, 0, tls_context.span_id);
}

void Timeline::Record(const char* name, EventPhase phase, uint64_t span_id,
                      uint64_t parent_span_id) {
  // The caller's parent is authoritative — no thread-local fallback. By the
  // time SpanTimer::Begin records, tls_context.span_id is already the new
  // span itself; falling back here would make every root span its own
  // parent.
  TimelineEvent event;
  event.name = name;
  event.ts_ns = TimelineNowNs();
  event.trace_id = tls_context.trace_id;
  event.span_id = span_id;
  event.parent_span_id = parent_span_id;
  event.tid = ThisThreadTid();
  event.phase = phase;
  RingForThisThread()->Push(event);
}

void Timeline::Record(const char* name, EventPhase phase, uint64_t span_id,
                      uint64_t parent_span_id, const char* k0, uint64_t v0,
                      const char* k1, uint64_t v1) {
  TimelineEvent event;
  event.name = name;
  event.ts_ns = TimelineNowNs();
  event.trace_id = tls_context.trace_id;
  event.span_id = span_id;
  event.parent_span_id = parent_span_id;
  event.tid = ThisThreadTid();
  event.phase = phase;
  event.args[event.arg_count++] = {k0, v0};
  if (k1 != nullptr) event.args[event.arg_count++] = {k1, v1};
  RingForThisThread()->Push(event);
}

void Timeline::RecordCounter(const char* name, const char* key,
                             uint64_t value) {
  TimelineEvent event;
  event.name = name;
  event.ts_ns = TimelineNowNs();
  event.trace_id = tls_context.trace_id;
  event.tid = ThisThreadTid();
  event.phase = EventPhase::kCounter;
  event.args[event.arg_count++] = {key, value};
  RingForThisThread()->Push(event);
}

void Timeline::RecordForTest(const TimelineEvent& event) {
  TimelineEvent copy = event;
  if (copy.tid == 0) copy.tid = ThisThreadTid();
  RingForThisThread()->Push(copy);
}

size_t Timeline::DrainRings() {
  // rings_mu_ serializes concurrent drainers (server thread vs exporter):
  // each ring's consumer side must be single-threaded at a time.
  std::vector<TimelineEvent> drained;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    for (const auto& ring : rings_) ring->DrainInto(&drained);
  }
  if (drained.empty()) return 0;
  std::lock_guard<std::mutex> lock(store_mu_);
  store_.insert(store_.end(), drained.begin(), drained.end());
  if (store_.size() > store_capacity_) {
    const size_t excess = store_.size() - store_capacity_;
    store_.erase(store_.begin(),
                 store_.begin() + static_cast<ptrdiff_t>(excess));
    store_evicted_ += excess;
  }
  return drained.size();
}

std::vector<TimelineEvent> Timeline::Snapshot() {
  DrainRings();
  std::vector<TimelineEvent> out;
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    out = store_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TimelineEvent& a, const TimelineEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

uint64_t Timeline::dropped() const {
  return ring_dropped() + store_evicted();
}

uint64_t Timeline::ring_dropped() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& ring : rings_) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Timeline::store_evicted() const {
  std::lock_guard<std::mutex> lock(store_mu_);
  return store_evicted_;
}

size_t Timeline::PeekRecentForCrash(TimelineEvent* out, size_t max) {
  if (out == nullptr || max == 0) return 0;
  size_t count = 0;
  // Insert keeping the newest `max` events; n is tiny (≤ a few dozen), so
  // the quadratic replace-the-oldest scan is fine for crash context.
  const auto consider = [&](const TimelineEvent& event) {
    if (count < max) {
      out[count++] = event;
      return;
    }
    size_t oldest = 0;
    for (size_t i = 1; i < count; ++i) {
      if (out[i].ts_ns < out[oldest].ts_ns) oldest = i;
    }
    if (event.ts_ns > out[oldest].ts_ns) out[oldest] = event;
  };
  // Undrained ring contents: the producer never overwrites slots in
  // [tail, head), so reading them racily against live producers yields at
  // worst a stale-but-complete event. try_lock guards the ring *list*
  // (concurrent registration reallocates the vector).
  if (rings_mu_.try_lock()) {
    for (const auto& ring : rings_) {
      const uint64_t h = ring->head.load(std::memory_order_acquire);
      uint64_t t = ring->tail.load(std::memory_order_relaxed);
      if (h - t > max) t = h - max;
      for (; t < h; ++t) consider(ring->slots[t % ring->capacity]);
    }
    rings_mu_.unlock();
  }
  if (store_mu_.try_lock()) {
    const size_t n = store_.size();
    const size_t first = n > max ? n - max : 0;
    for (size_t i = first; i < n; ++i) consider(store_[i]);
    store_mu_.unlock();
  }
  // Oldest-first for the report (selection sort: max is small, no
  // allocation in crash context).
  for (size_t i = 0; i + 1 < count; ++i) {
    size_t min_index = i;
    for (size_t j = i + 1; j < count; ++j) {
      if (out[j].ts_ns < out[min_index].ts_ns) min_index = j;
    }
    if (min_index != i) std::swap(out[i], out[min_index]);
  }
  return count;
}

size_t Timeline::store_size() const {
  std::lock_guard<std::mutex> lock(store_mu_);
  return store_.size();
}

void Timeline::Reset() {
  std::lock_guard<std::mutex> rings_lock(rings_mu_);
  std::lock_guard<std::mutex> store_lock(store_mu_);
  store_.clear();
  store_evicted_ = 0;
  for (const auto& ring : rings_) {
    ring->dropped.store(0, std::memory_order_relaxed);
  }
}

std::vector<Timeline::ThreadName> Timeline::thread_names() {
  std::lock_guard<std::mutex> lock(ThreadNamesMutex());
  return ThreadNamesLocked();
}

// --- Export -----------------------------------------------------------------

namespace {

std::string JsonEscape(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

const char* PhaseLetter(EventPhase phase) {
  switch (phase) {
    case EventPhase::kBegin: return "B";
    case EventPhase::kEnd: return "E";
    case EventPhase::kInstant: return "i";
    case EventPhase::kCounter: return "C";
  }
  return "i";
}

// Chrome's "ts" field is microseconds; keep nanosecond precision as a
// fraction (Perfetto parses fractional us).
void AppendTsUs(std::string* out, uint64_t ts_ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ts_ns / 1000,
                static_cast<unsigned>(ts_ns % 1000));
  *out += buf;
}

void AppendEventJson(std::string* out, const TimelineEvent& e) {
  *out += "{\"name\":\"";
  *out += JsonEscape(e.name);
  *out += "\",\"ph\":\"";
  *out += PhaseLetter(e.phase);
  *out += "\",\"pid\":1,\"tid\":";
  *out += std::to_string(e.tid);
  *out += ",\"ts\":";
  AppendTsUs(out, e.ts_ns);
  if (e.phase == EventPhase::kInstant) *out += ",\"s\":\"t\"";
  *out += ",\"args\":{";
  bool first = true;
  // Counter events carry only their sampled values: Chrome plots every
  // args key of a "C" event as a series, so ids would pollute the plot.
  if (e.phase != EventPhase::kCounter) {
    if (e.trace_id != 0) {
      *out += "\"trace_id\":" + std::to_string(e.trace_id);
      first = false;
    }
    if (e.span_id != 0) {
      *out += std::string(first ? "" : ",") +
              "\"span_id\":" + std::to_string(e.span_id);
      first = false;
    }
    if (e.parent_span_id != 0) {
      *out += std::string(first ? "" : ",") +
              "\"parent_span_id\":" + std::to_string(e.parent_span_id);
      first = false;
    }
  }
  for (uint8_t i = 0; i < e.arg_count; ++i) {
    *out += std::string(first ? "" : ",") + "\"" + JsonEscape(e.args[i].key) +
            "\":" + std::to_string(e.args[i].value);
    first = false;
  }
  *out += "}}";
}

}  // namespace

std::string ToChromeTraceJson(Timeline& timeline) {
  const std::vector<TimelineEvent> events = timeline.Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Name only the rows that exist in this capture: thread names are
  // process-wide, and a test timeline must not inherit rows from threads
  // that never recorded into it.
  std::unordered_set<uint32_t> tids;
  for (const auto& event : events) tids.insert(event.tid);
  for (const auto& name : timeline.thread_names()) {
    if (name.name == nullptr || name.name[0] == '\0') continue;
    if (tids.find(name.tid) == tids.end()) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(name.tid) + ",\"args\":{\"name\":\"" +
           JsonEscape(name.name) + "\"}}";
  }
  for (const auto& event : events) {
    if (!first) out += ',';
    first = false;
    AppendEventJson(&out, event);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status WriteChromeTraceFile(Timeline& timeline, const std::string& path) {
  const std::string json = ToChromeTraceJson(timeline);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool flush_failed = std::fflush(file) != 0;
  std::fclose(file);
  if (written != json.size() || flush_failed) {
    return Status::Internal("short write: " + path);
  }
  return Status::OK();
}

std::vector<SpanSummary> RecentSpans(Timeline& timeline, size_t limit) {
  const std::vector<TimelineEvent> events = timeline.Snapshot();
  // Pair begin/end by span_id; a span with no end yet is still open and
  // not summarized.
  std::unordered_map<uint64_t, const TimelineEvent*> begins;
  std::vector<SpanSummary> spans;
  for (const auto& event : events) {
    if (event.phase == EventPhase::kBegin && event.span_id != 0) {
      begins[event.span_id] = &event;
    } else if (event.phase == EventPhase::kEnd && event.span_id != 0) {
      auto it = begins.find(event.span_id);
      if (it == begins.end()) continue;
      SpanSummary s;
      s.name = it->second->name;
      s.trace_id = it->second->trace_id;
      s.span_id = event.span_id;
      s.parent_span_id = it->second->parent_span_id;
      s.tid = it->second->tid;
      s.start_ns = it->second->ts_ns;
      s.duration_ns = event.ts_ns - it->second->ts_ns;
      spans.push_back(s);
      begins.erase(it);
    }
  }
  // Newest first (by completion order ≈ start + duration).
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanSummary& a, const SpanSummary& b) {
                     return a.start_ns + a.duration_ns >
                            b.start_ns + b.duration_ns;
                   });
  if (spans.size() > limit) spans.resize(limit);
  return spans;
}

}  // namespace mdz::obs

#endif  // MDZ_OBS_DISABLED
