#ifndef MDZ_OBS_EXPORT_H_
#define MDZ_OBS_EXPORT_H_

// Machine-readable views of a MetricsRegistry: a JSON snapshot
// (schema "mdz.metrics.v1", validated by tools/check_telemetry.sh) and
// Prometheus text exposition format. Both render a point-in-time
// Collect() — neither mutates the registry.

#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace mdz::obs {

// {"schema":"mdz.metrics.v1","counters":{...},"gauges":{...},
//  "histograms":{name:{"count":..,"sum":..,"buckets":[{"le":..,"count":..}]}}}
// Keys are name-sorted, so equal registry states export byte-identically.
std::string ToJson(const MetricsRegistry& registry);

// Prometheus text format. Metric names are prefixed "mdz_" and sanitized
// ([^a-zA-Z0-9_] -> "_"); histograms expand to _bucket/_sum/_count families
// with cumulative le labels.
std::string ToPrometheus(const MetricsRegistry& registry);

// Renders `registry` with the given exporter and writes it to `path`.
Status WriteJsonFile(const MetricsRegistry& registry, const std::string& path);
Status WritePrometheusFile(const MetricsRegistry& registry,
                           const std::string& path);

}  // namespace mdz::obs

#endif  // MDZ_OBS_EXPORT_H_
