#ifndef MDZ_OBS_EXPORT_H_
#define MDZ_OBS_EXPORT_H_

// Machine-readable views of a MetricsRegistry: a JSON snapshot
// (schema "mdz.metrics.v1", validated by tools/check_telemetry.sh) and
// Prometheus text exposition format. Both render a point-in-time
// Collect() — neither mutates the registry.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace mdz::obs {

// Quantile estimate from fixed histogram buckets, linearly interpolated
// within the bucket the target rank falls in (the standard Prometheus
// histogram_quantile estimator). Buckets are assumed to cover non-negative
// observations (durations): the first bucket's lower edge is 0. The +Inf
// bucket cannot be interpolated, so a rank landing there reports the
// largest finite bound. Returns 0 for an empty histogram; `q` is clamped
// to [0, 1]. `bucket_counts` is non-cumulative, size bounds.size()+1.
double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<uint64_t>& bucket_counts,
                         double q);

// {"schema":"mdz.metrics.v1","counters":{...},"gauges":{...},
//  "histograms":{name:{"count":..,"sum":..,"buckets":[{"le":..,"count":..}]}}}
// Keys are name-sorted, so equal registry states export byte-identically.
std::string ToJson(const MetricsRegistry& registry);

// Prometheus text format. Metric names are prefixed "mdz_" and sanitized
// ([^a-zA-Z0-9_] -> "_"); histograms expand to _bucket/_sum/_count families
// with cumulative le labels.
std::string ToPrometheus(const MetricsRegistry& registry);

// Renders `registry` with the given exporter and writes it to `path`.
Status WriteJsonFile(const MetricsRegistry& registry, const std::string& path);
Status WritePrometheusFile(const MetricsRegistry& registry,
                           const std::string& path);

}  // namespace mdz::obs

#endif  // MDZ_OBS_EXPORT_H_
