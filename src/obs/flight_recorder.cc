#include "obs/flight_recorder.h"

#ifndef MDZ_OBS_DISABLED

#include <execinfo.h>
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeline.h"

namespace mdz::obs {

namespace {

// Everything the handler reads is plain static state, fully initialized by
// Install() before any hooked signal can care about it.

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGABRT, SIGFPE};
constexpr size_t kReportBacktraceDepth = 64;
constexpr size_t kReportTimelineEvents = 24;

std::atomic<int> g_report_fd{-1};
std::atomic<bool> g_installed{false};
// First crasher wins; a second fatal signal (including one raised *by* the
// dump, e.g. a SEGV while peeking rings) skips straight to the re-raise.
std::atomic<int> g_crash_in_progress{0};

// Build-info header, rendered once at Install (std::string is off-limits
// in the handler).
char g_build_header[1024];

// Metric snapshot table: names + Counter pointers resolved at Install.
// Counter::Value() is relaxed atomic loads over preallocated shards —
// signal-safe through a pre-resolved pointer.
struct MetricEntry {
  const char* name;
  const Counter* counter;
};
constexpr const char* kSnapshotCounters[] = {
    "compress/snapshots_in", "compress/blocks",   "compress/bytes_raw",
    "compress/bytes_out",    "decompress/blocks", "decompress/snapshots",
    "pool/batches",          "pool/tasks",        "stream/snapshots",
    "archive/frames_written", "archive/frames_decoded",
    "profiler/samples",      "profiler/drops",    "profiler/signal_overruns",
};
constexpr size_t kSnapshotCounterCount =
    sizeof(kSnapshotCounters) / sizeof(kSnapshotCounters[0]);
MetricEntry g_metric_table[kSnapshotCounterCount];
size_t g_metric_count = 0;

// sigaltstack storage (static: no allocation at install either). Fixed
// 64 KiB rather than SIGSTKSZ, which stopped being a compile-time constant
// in glibc 2.34; backtrace_symbols_fd needs the headroom anyway.
char g_alt_stack[64 * 1024];

// --- write(2)-only formatting ----------------------------------------------

void WriteRaw(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
}

void WriteStr(int fd, const char* s) { WriteRaw(fd, s, std::strlen(s)); }

void WriteDec(int fd, uint64_t value) {
  char buf[24];
  size_t i = sizeof(buf);
  do {
    buf[--i] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  WriteRaw(fd, buf + i, sizeof(buf) - i);
}

void WriteHex(int fd, uint64_t value) {
  char buf[20];
  size_t i = sizeof(buf);
  do {
    const unsigned digit = static_cast<unsigned>(value & 0xF);
    buf[--i] = static_cast<char>(digit < 10 ? '0' + digit : 'a' + digit - 10);
    value >>= 4;
  } while (value != 0);
  buf[--i] = 'x';
  buf[--i] = '0';
  WriteRaw(fd, buf + i, sizeof(buf) - i);
}

const char* SignalName(int signal_number) {
  switch (signal_number) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGABRT: return "SIGABRT";
    case SIGFPE: return "SIGFPE";
    case 0: return "none (snapshot)";
    default: return "unknown";
  }
}

void CrashHandler(int signal_number, siginfo_t* info, void*) {
  if (g_crash_in_progress.exchange(1, std::memory_order_acq_rel) == 0) {
    const int fd = g_report_fd.load(std::memory_order_acquire);
    if (fd >= 0) {
      const void* fault_addr = nullptr;
      if (info != nullptr && (signal_number == SIGSEGV ||
                              signal_number == SIGBUS ||
                              signal_number == SIGFPE)) {
        fault_addr = info->si_addr;
      }
      FlightRecorder::WriteReport(fd, signal_number, fault_addr);
      ::fsync(fd);
    }
  }
  // Restore default disposition, unblock, and re-raise so the process dies
  // with the original signal (core dumps and 128+N exit codes intact).
  signal(signal_number, SIG_DFL);
  sigset_t unblock;
  sigemptyset(&unblock);
  sigaddset(&unblock, signal_number);
  sigprocmask(SIG_UNBLOCK, &unblock, nullptr);
  raise(signal_number);
}

}  // namespace

Status FlightRecorder::Install(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("flight recorder: cannot open " + path);
  }

  // Pre-render the build header.
  const BuildInfo& build = GetBuildInfo();
  std::snprintf(g_build_header, sizeof(g_build_header),
                "build: git_sha=%s git_describe=%s\n"
                "build: compiler=%s\n"
                "build: flags=%s\n",
                build.git_sha.c_str(), build.git_describe.c_str(),
                build.compiler.c_str(), build.flags.c_str());

  // Resolve the metric table (registration takes a mutex: Install only).
  auto& registry = MetricsRegistry::Global();
  g_metric_count = 0;
  for (const char* name : kSnapshotCounters) {
    g_metric_table[g_metric_count++] = {name, registry.GetCounter(name)};
  }

  // Prime backtrace's lazy loading, as the profiler does.
  void* prime[4];
  ::backtrace(prime, 4);

  const int previous_fd = g_report_fd.exchange(fd, std::memory_order_acq_rel);
  if (previous_fd >= 0) ::close(previous_fd);

  if (!g_installed.exchange(true, std::memory_order_acq_rel)) {
    stack_t alt{};
    alt.ss_sp = g_alt_stack;
    alt.ss_size = sizeof(g_alt_stack);
    alt.ss_flags = 0;
    sigaltstack(&alt, nullptr);

    struct sigaction action {};
    action.sa_sigaction = CrashHandler;
    action.sa_flags = SA_SIGINFO | SA_ONSTACK;
    sigemptyset(&action.sa_mask);
    for (const int sig : kFatalSignals) {
      sigaction(sig, &action, nullptr);
    }
  }
  return Status::OK();
}

bool FlightRecorder::installed() {
  return g_installed.load(std::memory_order_acquire);
}

void FlightRecorder::WriteReport(int fd, int signal_number,
                                 const void* fault_addr) {
  WriteStr(fd, "=== mdz flight recorder ===\n");
  WriteStr(fd, "signal: ");
  WriteStr(fd, SignalName(signal_number));
  WriteStr(fd, " (");
  WriteDec(fd, static_cast<uint64_t>(signal_number));
  WriteStr(fd, ")");
  if (fault_addr != nullptr) {
    WriteStr(fd, " fault_addr: ");
    WriteHex(fd, reinterpret_cast<uint64_t>(fault_addr));
  }
  WriteStr(fd, "\n");
  WriteStr(fd, g_build_header);

  WriteStr(fd, "backtrace:\n");
  void* frames[kReportBacktraceDepth];
  const int depth = ::backtrace(frames, kReportBacktraceDepth);
  if (depth > 0) {
    ::backtrace_symbols_fd(frames, depth, fd);
  } else {
    WriteStr(fd, "  (unavailable)\n");
  }

  WriteStr(fd, "active spans:\n");
  bool any_spans = false;
  const size_t stacks = AsyncSpanStackCount();
  for (size_t i = 0; i < stacks; ++i) {
    const AsyncSpanStack* stack = AsyncSpanStackAt(i);
    if (stack == nullptr) continue;
    const uint32_t tid = stack->tid.load(std::memory_order_relaxed);
    uint32_t depth_now = stack->depth.load(std::memory_order_acquire);
    if (tid == 0 || depth_now == 0) continue;
    if (depth_now > AsyncSpanStack::kMaxDepth) {
      depth_now = AsyncSpanStack::kMaxDepth;
    }
    any_spans = true;
    WriteStr(fd, "  tid ");
    WriteDec(fd, tid);
    WriteStr(fd, ":");
    for (uint32_t d = 0; d < depth_now; ++d) {
      const char* name = stack->names[d].load(std::memory_order_relaxed);
      WriteStr(fd, d == 0 ? " " : " > ");
      WriteStr(fd, name != nullptr ? name : "?");
    }
    WriteStr(fd, "\n");
  }
  if (!any_spans) WriteStr(fd, "  (none open)\n");

  WriteStr(fd, "recent timeline events (oldest first):\n");
  TimelineEvent events[kReportTimelineEvents];
  const size_t n_events =
      Timeline::Global().PeekRecentForCrash(events, kReportTimelineEvents);
  if (n_events == 0) {
    WriteStr(fd, "  (none, or timeline busy)\n");
  }
  for (size_t i = 0; i < n_events; ++i) {
    const TimelineEvent& e = events[i];
    WriteStr(fd, "  ts_ns=");
    WriteDec(fd, e.ts_ns);
    WriteStr(fd, " tid=");
    WriteDec(fd, e.tid);
    WriteStr(fd, " ph=");
    switch (e.phase) {
      case EventPhase::kBegin: WriteStr(fd, "B"); break;
      case EventPhase::kEnd: WriteStr(fd, "E"); break;
      case EventPhase::kInstant: WriteStr(fd, "i"); break;
      case EventPhase::kCounter: WriteStr(fd, "C"); break;
    }
    WriteStr(fd, " ");
    WriteStr(fd, e.name != nullptr ? e.name : "?");
    if (e.span_id != 0) {
      WriteStr(fd, " span=");
      WriteDec(fd, e.span_id);
    }
    WriteStr(fd, "\n");
  }

  WriteStr(fd, "metrics:\n");
  for (size_t i = 0; i < g_metric_count; ++i) {
    WriteStr(fd, "  ");
    WriteStr(fd, g_metric_table[i].name);
    WriteStr(fd, ": ");
    WriteDec(fd, g_metric_table[i].counter->Value());
    WriteStr(fd, "\n");
  }
  WriteStr(fd, "=== end of report ===\n");
}

// --- /flightz ---------------------------------------------------------------

namespace {

std::string JsonEscapeText(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out += '\\';
    if (static_cast<unsigned char>(*p) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", *p);
      out += buf;
      continue;
    }
    out += *p;
  }
  return out;
}

}  // namespace

std::string FlightzJson(const MetricsRegistry& registry, Timeline& timeline) {
  std::string out = "{\"schema\":\"mdz.flightz.v1\",\"installed\":";
  out += FlightRecorder::installed() ? "true" : "false";
  out += ",\"build\":" + BuildInfoJson();

  out += ",\"active_spans\":[";
  bool first = true;
  const size_t stacks = AsyncSpanStackCount();
  for (size_t i = 0; i < stacks; ++i) {
    const AsyncSpanStack* stack = AsyncSpanStackAt(i);
    if (stack == nullptr) continue;
    const uint32_t tid = stack->tid.load(std::memory_order_relaxed);
    uint32_t depth = stack->depth.load(std::memory_order_acquire);
    if (tid == 0 || depth == 0) continue;
    if (depth > AsyncSpanStack::kMaxDepth) depth = AsyncSpanStack::kMaxDepth;
    if (!first) out += ',';
    first = false;
    out += "{\"tid\":" + std::to_string(tid) + ",\"spans\":[";
    for (uint32_t d = 0; d < depth; ++d) {
      const char* name = stack->names[d].load(std::memory_order_relaxed);
      if (d > 0) out += ',';
      out += '"' + JsonEscapeText(name != nullptr ? name : "?") + '"';
    }
    out += "]}";
  }
  out += "]";

  out += ",\"recent_events\":[";
  TimelineEvent events[kReportTimelineEvents];
  const size_t n_events =
      timeline.PeekRecentForCrash(events, kReportTimelineEvents);
  for (size_t i = 0; i < n_events; ++i) {
    const TimelineEvent& e = events[i];
    if (i > 0) out += ',';
    const char* phase = "i";
    switch (e.phase) {
      case EventPhase::kBegin: phase = "B"; break;
      case EventPhase::kEnd: phase = "E"; break;
      case EventPhase::kInstant: phase = "i"; break;
      case EventPhase::kCounter: phase = "C"; break;
    }
    out += "{\"name\":\"" + JsonEscapeText(e.name != nullptr ? e.name : "?") +
           "\",\"ph\":\"" + phase + "\",\"ts_ns\":" + std::to_string(e.ts_ns) +
           ",\"tid\":" + std::to_string(e.tid) + "}";
  }
  out += "]";

  out += ",\"counters\":{";
  first = true;
  const MetricsRegistry::Snapshot snap = registry.Collect();
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("profiler/", 0) != 0 && name.rfind("compress/", 0) != 0 &&
        name.rfind("stream/", 0) != 0) {
      continue;
    }
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscapeText(name.c_str()) +
           "\":" + std::to_string(value);
  }
  out += "},\"timeline_ring_dropped\":" +
         std::to_string(timeline.ring_dropped()) +
         ",\"timeline_store_evicted\":" +
         std::to_string(timeline.store_evicted()) + "}";
  return out;
}

}  // namespace mdz::obs

#endif  // MDZ_OBS_DISABLED
