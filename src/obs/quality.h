#ifndef MDZ_OBS_QUALITY_H_
#define MDZ_OBS_QUALITY_H_

// Quality-audit telemetry: the error-bound contract, machine-checked.
//
// PR 2 made the pipeline observable on the performance axis (spans, counters,
// block traces); this layer observes *what* we compress. A QualityStats
// accumulates pointwise original-vs-decoded error — max absolute error
// against the configured bound, signed mean error (bias), RMSE-derived
// PSNR/NRMSE, and a fixed-bucket histogram of |err|/bound — per block and per
// field. Any sample with |err| > bound (or a non-finite decode) is a counted
// *violation*, not a log line: `mdz audit` turns a nonzero violation count
// into exit code 5, and tools/check_telemetry.sh asserts max_err <= bound on
// clean round-trips.
//
// The streaming decompress-and-verify driver lives in core/quality_audit.h
// (it needs the decoder); this header is pure math + serialization so the
// obs layer stays free of core dependencies.

#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace mdz::obs {

// Upper bounds of the |err|/bound histogram buckets; one implicit overflow
// bucket (ratio > 1, i.e. bound violation) follows. Bucket counts always sum
// to the observation count.
inline constexpr std::array<double, 6> kQualityBucketBounds = {
    0.1, 0.25, 0.5, 0.75, 0.9, 1.0};
inline constexpr size_t kQualityBucketCount = kQualityBucketBounds.size() + 1;

// Pointwise error accumulator. Single-threaded by design (the audit pass
// streams snapshots in order); Merge() folds per-block stats into the field
// total.
struct QualityStats {
  uint64_t count = 0;
  uint64_t violations = 0;   // |err| > bound, or non-finite error
  double max_err = 0.0;      // max |orig - dec| over finite errors
  double sum_err = 0.0;      // signed sum (bias numerator)
  double sum_abs_err = 0.0;
  double sum_sq_err = 0.0;
  double min_orig = 0.0;     // original-value range (for NRMSE/PSNR)
  double max_orig = 0.0;
  std::array<uint64_t, kQualityBucketCount> histogram{};

  // Records one (original, decoded) pair against the absolute bound.
  // Returns the |err|/bound ratio observed (used by the caller to feed the
  // global audit/rel_error histogram); non-finite errors count as
  // violations and report a ratio just above 1.
  double Observe(double original, double decoded, double bound);

  void Merge(const QualityStats& other);

  // Derived metrics. NRMSE/PSNR are relative to the original value range;
  // psnr() is +inf for an exact match and NaN-free throughout.
  double mean_err() const;      // signed bias
  double mean_abs_err() const;
  double rmse() const;
  double value_range() const { return count == 0 ? 0.0 : max_orig - min_orig; }
  double nrmse() const;
  double psnr_db() const;
};

// One decoded block (the unit the compressor chose a predictor for).
struct BlockQuality {
  uint64_t block_index = 0;
  uint64_t first_snapshot = 0;
  uint64_t snapshots = 0;
  std::string method;  // core::MethodName of the block's predictor
  QualityStats stats;
};

// One field (one axis stream of a trajectory archive).
struct FieldQuality {
  int axis = -1;       // 0/1/2 = x/y/z; -1 for standalone fields
  double bound = 0.0;  // the stream's absolute error bound
  QualityStats stats;
  std::vector<BlockQuality> blocks;

  bool clean() const { return stats.violations == 0; }
};

// Whole-archive audit result.
struct QualityReport {
  std::vector<FieldQuality> fields;

  uint64_t total_samples() const;
  uint64_t total_violations() const;
  bool clean() const { return total_violations() == 0; }
};

// Renders the report under the versioned "mdz.quality.v1" schema:
//   {"schema":"mdz.quality.v1","archive":...,"original":...,"build":{...},
//    "ok":true,"violations":0,"fields":[{"axis":"x","bound":...,"count":...,
//      "max_err":...,"mean_err":...,"mean_abs_err":...,"rmse":...,
//      "nrmse":...,"psnr_db":...,"value_range":...,"violations":0,"blocks":N,
//      "histogram":{"bounds":[...],"counts":[...]}}]}
// Non-finite metric values (e.g. PSNR of an exact round-trip) render as
// null. Per-block detail goes to the QualityTraceSink JSONL, not here.
std::string QualityReportToJson(const QualityReport& report,
                                const std::string& archive_label,
                                const std::string& original_label);

// Folds a completed field audit into the global metrics registry:
// counters audit/fields, audit/blocks, audit/samples, audit/violations.
// (The per-sample audit/rel_error histogram is fed by the audit driver so
// its sum reflects real ratios.) No-op when telemetry is disabled.
void RecordQualityMetrics(const FieldQuality& field);

// JSONL sink for per-block quality traces (one line per decoded block):
//   {"axis":0,"block":3,"first_snapshot":30,"snapshots":10,"method":"MT",
//    "count":20000,"max_err":...,"mean_err":...,"mean_abs_err":...,
//    "rmse":...,"violations":0,"hist":[c0,...,c6]}
// Thread-safe like TraceSink (one mutex-guarded line per Record).
class QualityTraceSink {
 public:
  static Result<std::unique_ptr<QualityTraceSink>> Open(
      const std::string& path);
  ~QualityTraceSink();

  QualityTraceSink(const QualityTraceSink&) = delete;
  QualityTraceSink& operator=(const QualityTraceSink&) = delete;

  void Record(int axis, const BlockQuality& block);

  uint64_t records_written() const;

  // Flushes and closes; idempotent; returns the first write error.
  Status Close();

 private:
  QualityTraceSink() = default;

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  uint64_t records_ = 0;
  bool write_error_ = false;
};

}  // namespace mdz::obs

#endif  // MDZ_OBS_QUALITY_H_
