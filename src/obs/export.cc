#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "obs/build_info.h"

namespace mdz::obs {

namespace {

// Shortest round-trip formatting for doubles ("%.17g" is exact but noisy;
// try increasing precision until the value survives a parse round trip).
std::string FormatDouble(double v) {
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) break;
  }
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string PromName(const std::string& name) {
  std::string out = "mdz_";
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

}  // namespace

double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<uint64_t>& bucket_counts,
                         double q) {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t total = 0;
  for (const uint64_t c : bucket_counts) total += c;
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    const uint64_t in_bucket = bucket_counts[i];
    if (static_cast<double>(cumulative + in_bucket) < rank ||
        in_bucket == 0) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds.size()) {
      // +Inf bucket: no upper edge to interpolate toward.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    const double within =
        (rank - static_cast<double>(cumulative)) /
        static_cast<double>(in_bucket);
    return lo + (hi - lo) * (within < 0.0 ? 0.0 : within);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::string ToJson(const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snap = registry.Collect();
  std::string out =
      "{\"schema\":\"mdz.metrics.v1\",\"build\":" + BuildInfoJson() +
      ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(h.name) + "\":{\"count\":" +
           std::to_string(h.count) + ",\"sum\":" + FormatDouble(h.sum) +
           // Derived latency quantiles (interpolated; see HistogramQuantile).
           // Prometheus consumers keep computing their own from the raw
           // buckets below — these are for humans and jq one-liners.
           ",\"p50\":" +
           FormatDouble(HistogramQuantile(h.bounds, h.bucket_counts, 0.50)) +
           ",\"p95\":" +
           FormatDouble(HistogramQuantile(h.bounds, h.bucket_counts, 0.95)) +
           ",\"p99\":" +
           FormatDouble(HistogramQuantile(h.bounds, h.bucket_counts, 0.99)) +
           ",\"buckets\":[";
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out += ',';
      const std::string le =
          (i < h.bounds.size()) ? FormatDouble(h.bounds[i]) : "\"+Inf\"";
      out += "{\"le\":" + le +
             ",\"count\":" + std::to_string(h.bucket_counts[i]) + '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

namespace {

// Prometheus label values escape backslash, double quote and newline.
std::string PromLabelEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// HELP text escapes backslash and newline (quotes are legal there, but the
// registry's raw metric name is interpolated into the line, so a name
// containing a newline must not be able to forge extra exposition lines).
std::string PromHelpEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string ToPrometheus(const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snap = registry.Collect();
  const BuildInfo& build = GetBuildInfo();
  std::string out;
  out += "# HELP mdz_build_info Build provenance of the emitting binary "
         "(constant 1; see labels)\n";
  out += "# TYPE mdz_build_info gauge\n";
  out += "mdz_build_info{git_sha=\"" + PromLabelEscape(build.git_sha) +
         "\",git_describe=\"" + PromLabelEscape(build.git_describe) +
         "\",compiler=\"" + PromLabelEscape(build.compiler) + "\",flags=\"" +
         PromLabelEscape(build.flags) + "\"} 1\n";
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = PromName(name);
    out += "# HELP " + prom + " MDZ counter '" + PromHelpEscape(name) + "'\n";
    out += "# TYPE " + prom + " counter\n";
    out += prom + ' ' + std::to_string(value) + '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = PromName(name);
    out += "# HELP " + prom + " MDZ gauge '" + PromHelpEscape(name) + "'\n";
    out += "# TYPE " + prom + " gauge\n";
    out += prom + ' ' + std::to_string(value) + '\n';
  }
  for (const auto& h : snap.histograms) {
    const std::string prom = PromName(h.name);
    out += "# HELP " + prom + " MDZ histogram '" + PromHelpEscape(h.name) + "'\n";
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      cumulative += h.bucket_counts[i];
      const std::string le =
          (i < h.bounds.size()) ? FormatDouble(h.bounds[i]) : "+Inf";
      out += prom + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + '\n';
    }
    out += prom + "_sum " + FormatDouble(h.sum) + '\n';
    out += prom + "_count " + std::to_string(h.count) + '\n';
  }
  return out;
}

namespace {

Status WriteStringToFile(const std::string& content, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const bool flush_failed = std::fflush(file) != 0;
  std::fclose(file);
  if (written != content.size() || flush_failed) {
    return Status::Internal("short write: " + path);
  }
  return Status::OK();
}

}  // namespace

Status WriteJsonFile(const MetricsRegistry& registry, const std::string& path) {
  return WriteStringToFile(ToJson(registry), path);
}

Status WritePrometheusFile(const MetricsRegistry& registry,
                           const std::string& path) {
  return WriteStringToFile(ToPrometheus(registry), path);
}

}  // namespace mdz::obs
