#include "obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include <algorithm>
#include <array>

namespace mdz::obs {

namespace {

std::atomic<bool> g_enabled{false};

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

size_t Counter::ShardIndex() {
  // Threads are striped round-robin across shards; a thread keeps its shard
  // for its lifetime, so a given thread's adds never bounce between lines.
  static std::atomic<size_t> next{0};
  thread_local const size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_.reserve(bounds_.size() + 1);
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    counts_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
}

void Histogram::Observe(double value) {
  size_t bucket = bounds_.size();  // +Inf
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket]->fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out;
  out.reserve(counts_.size());
  for (const auto& c : counts_) {
    out.push_back(c->load(std::memory_order_relaxed));
  }
  return out;
}

uint64_t Histogram::Count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

void Histogram::Reset() {
  for (auto& c : counts_) c->store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::span<const double> DurationBuckets() {
  static const std::array<double, 8> kBuckets = {1e-6, 1e-5, 1e-4, 1e-3,
                                                 1e-2, 1e-1, 1.0,  10.0};
  return kBuckets;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

int64_t RecordPeakRss() {
  if (!Enabled()) return 0;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux, bytes on macOS.
#if defined(__APPLE__)
  const int64_t bytes = static_cast<int64_t>(usage.ru_maxrss);
#else
  const int64_t bytes = static_cast<int64_t>(usage.ru_maxrss) * 1024;
#endif
  MetricsRegistry::Global().GetGauge("process/peak_rss_bytes")->Set(bytes);
  return bytes;
#else
  return 0;
#endif
}

void PreRegisterCoreMetrics() {
  auto& registry = MetricsRegistry::Global();
  // Counter/gauge names used anywhere in the library (grep MDZ_COUNTER_ADD /
  // GetCounter / GetGauge; the catalog lives in docs/OBSERVABILITY.md).
  static constexpr const char* kCounters[] = {
      "compress/blocks",       "compress/blocks_vq",
      "compress/blocks_vqt",   "compress/blocks_mt",
      "compress/blocks_ti",    "compress/bytes_out",
      "compress/bytes_raw",    "compress/escapes",
      "compress/adaptations",  "compress/snapshots_in",
      "compress/streams",      "decompress/blocks",
      "decompress/snapshots",  "decompress/bytes_in",
      "decompress/bytes_out",  "decompress/corruption_errors",
      "pool/batches",          "pool/tasks",
      "pool/busy_ns",          "stream/snapshots",
      "stream/source_stalls",  "stream/sink_stalls",
      "archive/frames_written", "archive/frames_decoded",
      "archive/cache_hit",     "archive/cache_miss",
      "archive/reference_decodes", "audit/nonfinite_inputs",
      "profiler/samples",      "profiler/drops",
      "profiler/signal_overruns",
  };
  static constexpr const char* kGauges[] = {
      "pool/queue_depth",      "stream/peak_in_flight",
      "process/peak_rss_bytes", "resource/rss_bytes",
  };
  for (const char* name : kCounters) registry.GetCounter(name);
  for (const char* name : kGauges) registry.GetGauge(name);
}

MetricsRegistry::Snapshot MetricsRegistry::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramValue value;
    value.name = name;
    value.bounds = histogram->bounds();
    value.bucket_counts = histogram->BucketCounts();
    value.count = histogram->Count();
    value.sum = histogram->Sum();
    snapshot.histograms.push_back(std::move(value));
  }
  return snapshot;
}

}  // namespace mdz::obs
