#ifndef MDZ_OBS_SPAN_H_
#define MDZ_OBS_SPAN_H_

// Hierarchical timing spans. MDZ_SPAN("huffman_encode") times the enclosing
// scope and records the duration into the global metrics registry as a
// histogram named "span/<path>", where <path> joins every span currently
// open *on this thread* ("compress_block/huffman_encode"). Span stacks are
// thread-local: a span opened inside a pool task starts a fresh path on the
// worker, so pool-offloaded stages (ADP trials, block decodes) show up as
// top-level spans rather than under their submitter.
//
// When telemetry is disabled (obs::Enabled() == false) the constructor is a
// relaxed load and a branch — no clock read, no allocation. Compiling with
// MDZ_OBS_DISABLED removes the spans entirely.

#include <chrono>
#include <string>

#include "obs/metrics.h"

namespace mdz::obs {

// RAII scope timer; prefer the MDZ_SPAN macro. `name` must outlive the span
// (string literals only).
class SpanTimer {
 public:
  explicit SpanTimer(const char* name);
  ~SpanTimer();

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  bool active_ = false;
  std::string path_;  // "span/<joined hierarchy>"
  std::chrono::steady_clock::time_point start_;
};

// Current thread's span depth (0 outside any span); exposed for tests.
size_t SpanDepthForTest();

#define MDZ_OBS_CONCAT_INNER_(a, b) a##b
#define MDZ_OBS_CONCAT_(a, b) MDZ_OBS_CONCAT_INNER_(a, b)

#ifndef MDZ_OBS_DISABLED
#define MDZ_SPAN(name) \
  ::mdz::obs::SpanTimer MDZ_OBS_CONCAT_(_mdz_span_, __LINE__)(name)
#else
#define MDZ_SPAN(name) \
  do {                 \
  } while (false)
#endif

}  // namespace mdz::obs

#endif  // MDZ_OBS_SPAN_H_
