#ifndef MDZ_OBS_SPAN_H_
#define MDZ_OBS_SPAN_H_

// Hierarchical timing spans. MDZ_SPAN("huffman_encode") times the enclosing
// scope and records the duration into the global metrics registry as a
// histogram named "span/<path>", where <path> joins every span currently
// open *on this thread* ("compress_block/huffman_encode"). Span stacks are
// thread-local: a span opened inside a pool task starts a fresh path on the
// worker, so pool-offloaded stages (ADP trials, block decodes) show up as
// top-level spans rather than under their submitter.
//
// When the global Timeline is recording, every span additionally emits
// begin/end timeline events carrying the thread's TraceContext (trace-id +
// parent span-id) — the aggregate histogram becomes a full per-thread
// timeline, and cross-thread hand-offs stay connected because the pool and
// the streaming pump propagate the context (obs/timeline.h).
// MDZ_SPAN_ARGS attaches up to two integer args (block index, method byte)
// to the begin event.
//
// When telemetry is disabled (obs::Enabled() == false) the constructor is a
// relaxed load and a branch — no clock read, no allocation. Compiling with
// MDZ_OBS_DISABLED removes the spans entirely.

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/timeline.h"

namespace mdz::obs {

// RAII scope timer; prefer the MDZ_SPAN / MDZ_SPAN_ARGS macros. `name` and
// arg keys must outlive the span (string literals only).
class SpanTimer {
 public:
  explicit SpanTimer(const char* name);
  SpanTimer(const char* name, const char* k0, uint64_t v0,
            const char* k1 = nullptr, uint64_t v1 = 0);
  ~SpanTimer();

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  void Begin(const char* name, const char* k0, uint64_t v0, const char* k1,
             uint64_t v1);

  bool active_ = false;
  const char* name_ = "";
  std::string path_;  // "span/<joined hierarchy>"
  // Timeline identity: 0 when the timeline was not recording at entry.
  uint64_t span_id_ = 0;
  uint64_t saved_span_id_ = 0;
  std::chrono::steady_clock::time_point start_;
};

// Current thread's span depth (0 outside any span); exposed for tests.
size_t SpanDepthForTest();

#define MDZ_OBS_CONCAT_INNER_(a, b) a##b
#define MDZ_OBS_CONCAT_(a, b) MDZ_OBS_CONCAT_INNER_(a, b)

#ifndef MDZ_OBS_DISABLED
#define MDZ_SPAN(name) \
  ::mdz::obs::SpanTimer MDZ_OBS_CONCAT_(_mdz_span_, __LINE__)(name)
// Span with up to two integer args on its timeline begin event, e.g.
// MDZ_SPAN_ARGS("flush_buffer", "block", index, "method", method_byte).
#define MDZ_SPAN_ARGS(name, ...) \
  ::mdz::obs::SpanTimer MDZ_OBS_CONCAT_(_mdz_span_, __LINE__)(name, __VA_ARGS__)
#else
#define MDZ_SPAN(name) \
  do {                 \
  } while (false)
#define MDZ_SPAN_ARGS(name, ...) \
  do {                           \
  } while (false)
#endif

}  // namespace mdz::obs

#endif  // MDZ_OBS_SPAN_H_
