#ifndef MDZ_OBS_SPAN_H_
#define MDZ_OBS_SPAN_H_

// Hierarchical timing spans. MDZ_SPAN("huffman_encode") times the enclosing
// scope and records the duration into the global metrics registry as a
// histogram named "span/<path>", where <path> joins every span currently
// open *on this thread* ("compress_block/huffman_encode"). Span stacks are
// thread-local: a span opened inside a pool task starts a fresh path on the
// worker, so pool-offloaded stages (ADP trials, block decodes) show up as
// top-level spans rather than under their submitter.
//
// When the global Timeline is recording, every span additionally emits
// begin/end timeline events carrying the thread's TraceContext (trace-id +
// parent span-id) — the aggregate histogram becomes a full per-thread
// timeline, and cross-thread hand-offs stay connected because the pool and
// the streaming pump propagate the context (obs/timeline.h).
// MDZ_SPAN_ARGS attaches up to two integer args (block index, method byte)
// to the begin event.
//
// When telemetry is disabled (obs::Enabled() == false) the constructor is a
// relaxed load and a branch — no clock read, no allocation. Compiling with
// MDZ_OBS_DISABLED removes the spans entirely.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/timeline.h"

namespace mdz::obs {

// --- Async-signal-readable span stacks --------------------------------------
//
// A fixed pool of per-thread span-name stacks maintained alongside the
// thread-local path vector. Unlike the vector, these are plain atomics over
// preallocated storage, so the sampling profiler's SIGPROF handler (same
// thread, program order) and the crash flight recorder (other threads, best
// effort) can read "which spans are open right now" from signal context
// without touching allocator or library state. Updated only while telemetry
// is enabled — two relaxed stores per span open/close.

struct AsyncSpanStack {
  static constexpr size_t kMaxDepth = 16;

  // Timeline thread ordinal of the owning thread; 0 = slot never claimed.
  std::atomic<uint32_t> tid{0};
  // Open-span count. May exceed kMaxDepth (deeper frames are not recorded);
  // readers clamp. Published with release so names[] writes are visible.
  std::atomic<uint32_t> depth{0};
  // names[0] is the outermost open span. Entries are string literals.
  std::atomic<const char*> names[kMaxDepth];
};

#ifndef MDZ_OBS_DISABLED

// The calling thread's slot, claiming one from the fixed pool on first use.
// Returns nullptr when the pool is exhausted (spans still work; the thread
// is just invisible to signal-context readers). Safe to call early from a
// thread's setup code (thread pool workers, the streaming reader) so the
// claim never happens in signal context.
AsyncSpanStack* ThisThreadSpanStack();

// Iteration for signal-context readers: the pool is a static array, so
// indexing needs no lock. Slots with tid == 0 were never claimed.
size_t AsyncSpanStackCount();
const AsyncSpanStack* AsyncSpanStackAt(size_t index);

#else

inline AsyncSpanStack* ThisThreadSpanStack() { return nullptr; }
inline size_t AsyncSpanStackCount() { return 0; }
inline const AsyncSpanStack* AsyncSpanStackAt(size_t) { return nullptr; }

#endif  // MDZ_OBS_DISABLED

// RAII scope timer; prefer the MDZ_SPAN / MDZ_SPAN_ARGS macros. `name` and
// arg keys must outlive the span (string literals only).
class SpanTimer {
 public:
  explicit SpanTimer(const char* name);
  SpanTimer(const char* name, const char* k0, uint64_t v0,
            const char* k1 = nullptr, uint64_t v1 = 0);
  ~SpanTimer();

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  void Begin(const char* name, const char* k0, uint64_t v0, const char* k1,
             uint64_t v1);

  bool active_ = false;
  const char* name_ = "";
  std::string path_;  // "span/<joined hierarchy>"
  // Timeline identity: 0 when the timeline was not recording at entry.
  uint64_t span_id_ = 0;
  uint64_t saved_span_id_ = 0;
  std::chrono::steady_clock::time_point start_;
};

// Current thread's span depth (0 outside any span); exposed for tests.
size_t SpanDepthForTest();

#define MDZ_OBS_CONCAT_INNER_(a, b) a##b
#define MDZ_OBS_CONCAT_(a, b) MDZ_OBS_CONCAT_INNER_(a, b)

#ifndef MDZ_OBS_DISABLED
#define MDZ_SPAN(name) \
  ::mdz::obs::SpanTimer MDZ_OBS_CONCAT_(_mdz_span_, __LINE__)(name)
// Span with up to two integer args on its timeline begin event, e.g.
// MDZ_SPAN_ARGS("flush_buffer", "block", index, "method", method_byte).
#define MDZ_SPAN_ARGS(name, ...) \
  ::mdz::obs::SpanTimer MDZ_OBS_CONCAT_(_mdz_span_, __LINE__)(name, __VA_ARGS__)
#else
#define MDZ_SPAN(name) \
  do {                 \
  } while (false)
#define MDZ_SPAN_ARGS(name, ...) \
  do {                           \
  } while (false)
#endif

}  // namespace mdz::obs

#endif  // MDZ_OBS_SPAN_H_
