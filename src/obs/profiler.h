#ifndef MDZ_OBS_PROFILER_H_
#define MDZ_OBS_PROFILER_H_

// Signal-driven sampling CPU profiler: the *where are the cycles going*
// companion to the span histograms' *how long did the scope take*. A
// setitimer(ITIMER_PROF) timer delivers SIGPROF to whichever thread is
// burning CPU; the handler captures a raw stack with backtrace(3) plus the
// thread's currently-open span names (obs/span.h's async-readable stacks)
// into a per-thread lock-free SPSC sample ring — the same bounded
// drop-newest discipline as the timeline's event rings. Everything
// expensive (symbolization via dladdr, demangling, aggregation) happens
// offline, outside signal context.
//
// Async-signal-safety contract for the handler, in order of importance:
//
//  * No allocation, no locks, no library state. Sample rings are
//    preallocated into a fixed pool on the first Start() and reused (never
//    freed) by every later session; a thread claims its ring with one
//    atomic fetch_add cached in a POD thread-local. backtrace(3) is primed
//    with one call at Start() so its lazy libgcc load never happens under
//    a signal. The handler never first-touches guarded TLS either: a
//    thread is sampled only once its timeline tid was assigned in normal
//    context (any span/timeline call, or PrepareThreadForProfiling —
//    worker pools and the stream reader call it at thread startup; until
//    then its signals count as overruns).
//  * Bounded everything. A full ring drops the sample and counts it
//    (profiler/drops); a thread past the ring pool, or a signal landing
//    while the thread is already mid-capture, counts as an overrun
//    (profiler/signal_overruns). samples/drops/overruns are plain relaxed
//    atomics, synced into the metrics registry from normal context.
//  * errno is saved and restored.
//
// Outputs: folded-stack text ("main;Compress;Encode 42" — one line per
// unique stack, count last; tools/flamegraph.sh renders it) and an
// mdz.profile.v1 JSON report with per-function and per-span self/total
// sample counts. Served live on /profilez (obs/telemetry_server.h) and
// written by the CLI's --profile/--profile-out flags.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace mdz::obs {

// One captured sample: a raw stack (innermost first, as backtrace(3)
// returns it) plus the open-span names at capture time (outermost first).
struct ProfileSample {
  static constexpr size_t kMaxFrames = 32;
  static constexpr size_t kMaxSpans = 8;

  uint64_t ts_ns = 0;  // TimelineNowNs() clock, comparable across threads
  uint32_t tid = 0;    // timeline thread ordinal
  uint16_t frame_count = 0;
  uint16_t span_count = 0;
  void* frames[kMaxFrames];
  const char* spans[kMaxSpans];
};

#ifndef MDZ_OBS_DISABLED

class Profiler {
 public:
  // `ring_capacity` samples per thread ring, `max_threads` rings in the
  // pool, `store_capacity` bounds the drained central store.
  explicit Profiler(size_t ring_capacity = 256, size_t max_threads = 64,
                    size_t store_capacity = 1 << 15);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  static Profiler& Global();

  // Installs the SIGPROF handler and arms the process profiling timer at
  // `hz` samples/second (clamped to [1, 1000]), and starts a background
  // drain thread so long runs never overflow the rings. Only one Profiler
  // may run at a time process-wide (the signal handler and setitimer are
  // process state): FailedPrecondition if another is running. Exclusivity
  // is claimed (atomically, first) before the ring pool is touched, so
  // concurrent Start() racers — e.g. the CLI's --profile and a telemetry
  // thread's on-demand /profilez — serialize safely; the loser gets
  // FailedPrecondition. Thread-safe against Stop().
  Status Start(uint32_t hz);

  // Disarms the timer, quiesces any in-flight SIGPROF handler, joins the
  // drain thread, and does a final drain. The handler itself deliberately
  // stays installed (inert while no profiler is active): uninstalling
  // could not outrace an already-pending SIGPROF, and a stray signal
  // hitting a restored SIG_DFL would kill the process. Idempotent and
  // thread-safe against Start().
  void Stop();

  bool running() const;
  uint32_t hz() const { return hz_; }

  // Wall-clock seconds the profiler has been running (or ran, after Stop).
  double duration_seconds() const;

  // Moves captured samples from the thread rings into the central store
  // (any thread; serialized internally). Returns samples moved.
  size_t DrainSamples();

  // Drains, then copies every stored sample with ts_ns >= since_ns,
  // time-sorted. since_ns is on the TimelineNowNs() clock; 0 = everything.
  std::vector<ProfileSample> Snapshot(uint64_t since_ns = 0);

  // Lifetime tallies (monotonic across Reset of the registry; relaxed).
  uint64_t samples() const;   // captured into a ring
  uint64_t dropped() const;   // lost to a full ring or a full store
  uint64_t overruns() const;  // signal landed but capture couldn't run

  // Clears the store (not the tallies).
  void ClearStore();

  // Signal-context capture path; public only for the handler trampoline.
  void HandleSignal();

 private:
  friend void PrepareThreadForProfiling();

  struct Ring;

  // `from_signal` claims never first-touch guarded TLS: a thread whose
  // timeline tid is still unassigned is skipped (counted as an overrun by
  // the caller) until it runs any normal-context span/timeline code or
  // PrepareThreadForProfiling.
  Ring* RingForThisThread(bool from_signal);
  void SyncMetrics();  // publish tallies into profiler/* registry counters
  void DrainLoop();

  struct Impl;
  Impl* impl_;
  uint32_t hz_ = 0;
};

// Eagerly claims the calling thread's profiler ring (when a profiler is
// running) and async span-stack slot, so neither claim happens in signal
// context. Worker threads (thread pool, streaming reader) call this at
// startup; a no-op when nothing is active.
void PrepareThreadForProfiling();

// --- Offline aggregation / symbolization ------------------------------------

// Aggregated view of a sample set; the input to both text formats.
struct ProfileReport {
  struct Entry {
    std::string name;
    uint64_t self = 0;   // samples with this name innermost
    uint64_t total = 0;  // samples with this name anywhere in the stack
  };
  uint64_t sample_count = 0;  // samples aggregated (== sum of function self)
  std::vector<Entry> functions;  // name-sorted
  std::vector<Entry> spans;      // name-sorted; span-attributed subset
  uint64_t span_attributed = 0;  // samples carrying at least one open span
  // One line per unique symbolized stack: "outer;…;inner <count>\n",
  // line-sorted for deterministic output.
  std::string folded;
};

// Symbolizes (dladdr + demangle, cached) and aggregates `samples`. Frames
// above and including the profiler's own signal handler are stripped.
ProfileReport AggregateProfile(const std::vector<ProfileSample>& samples);

// mdz.profile.v1: {"schema","build","hz","duration_seconds","samples",
// "dropped","signal_overruns","span_attributed","functions":[{"name",
// "self","total"}…],"spans":[…]} — validated by tools/check_telemetry.sh.
std::string ProfileJson(const ProfileReport& report, uint32_t hz,
                        double duration_seconds, uint64_t dropped,
                        uint64_t overruns);

// Writes folded text (path not ending in .json) or the mdz.profile.v1
// report (path ending in .json) for `report`.
Status WriteProfileFile(const ProfileReport& report, uint32_t hz,
                        double duration_seconds, uint64_t dropped,
                        uint64_t overruns, const std::string& path);

#else  // MDZ_OBS_DISABLED

class Profiler {
 public:
  explicit Profiler(size_t = 0, size_t = 0, size_t = 0) {}
  static Profiler& Global() {
    static Profiler profiler;
    return profiler;
  }
  Status Start(uint32_t) {
    return Status::FailedPrecondition("profiler compiled out");
  }
  void Stop() {}
  bool running() const { return false; }
  uint32_t hz() const { return 0; }
  double duration_seconds() const { return 0.0; }
  size_t DrainSamples() { return 0; }
  std::vector<ProfileSample> Snapshot(uint64_t = 0) { return {}; }
  uint64_t samples() const { return 0; }
  uint64_t dropped() const { return 0; }
  uint64_t overruns() const { return 0; }
  void ClearStore() {}
  void HandleSignal() {}
};

inline void PrepareThreadForProfiling() {}

struct ProfileReport {
  struct Entry {
    std::string name;
    uint64_t self = 0;
    uint64_t total = 0;
  };
  uint64_t sample_count = 0;
  std::vector<Entry> functions;
  std::vector<Entry> spans;
  uint64_t span_attributed = 0;
  std::string folded;
};

inline ProfileReport AggregateProfile(const std::vector<ProfileSample>&) {
  return {};
}
inline std::string ProfileJson(const ProfileReport&, uint32_t, double,
                               uint64_t, uint64_t) {
  return "{}";
}
inline Status WriteProfileFile(const ProfileReport&, uint32_t, double,
                               uint64_t, uint64_t, const std::string&) {
  return Status::FailedPrecondition("profiler compiled out");
}

#endif  // MDZ_OBS_DISABLED

}  // namespace mdz::obs

#endif  // MDZ_OBS_PROFILER_H_
