#ifndef MDZ_OBS_TIMELINE_H_
#define MDZ_OBS_TIMELINE_H_

// Timeline tracing: the *when/where* companion to the metrics registry's
// aggregate *how much*. Every instrumented scope (MDZ_SPAN and friends)
// additionally records begin/end events — name, trace-id, span-id, parent
// span-id, thread, nanosecond timestamps, optional integer args — into a
// per-thread lock-free ring buffer, and a drain pass collects them into one
// process-wide store that exports as Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing). That turns "span/flush_buffer spent 1.2 s
// total" into "this is the gap where the ADP trial on worker 3 stalled the
// pump".
//
// Concurrency model, in order of importance:
//
//  * Recording is wait-free for the owning thread. Each thread writes only
//    its own fixed-capacity SPSC ring; the slot is written, then the head
//    index published with a release store. No locks, no allocation after
//    the ring exists.
//  * Draining never blocks recorders. The drainer (telemetry server thread,
//    resource sampler, or the end-of-run exporter) is the single consumer
//    of every ring: it acquires the head, copies [tail, head), then
//    publishes the new tail. A full ring drops the *newest* event and
//    counts it (timeline/dropped) — bounded memory beats completeness.
//  * Trace contexts are explicit. A TraceContext (trace-id + innermost open
//    span-id) lives in a thread-local; cross-thread hand-offs (thread-pool
//    batches, the streaming pump's reader thread) capture it at submit time
//    and adopt it on the far side with ScopedTraceContext, so one request
//    is a single connected span tree no matter how many threads it crossed.
//
// Everything here compiles to nothing under MDZ_OBS_DISABLED, and costs one
// relaxed atomic load per site when compiled in but not recording.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace mdz::obs {

// --- Trace context ----------------------------------------------------------

// Identity of "the request this thread is currently working for". trace_id
// 0 means no trace is active; span_id is the innermost open span (the
// parent for any span/event recorded next).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool active() const { return trace_id != 0; }
};

#ifndef MDZ_OBS_DISABLED

// The calling thread's current context (copy; cheap).
TraceContext CurrentTraceContext();

// Process-unique non-zero ids (relaxed atomic counters).
uint64_t NextTraceId();
uint64_t NextSpanId();

// Installs a fresh trace (new trace-id, root span-id) on the calling
// thread and returns it. The CLI opens one per command; a future server
// opens one per request.
TraceContext BeginTrace();

// Sets the calling thread's innermost-span id, returning the previous one.
// SpanTimer uses this to maintain parentage as spans open and close; not
// meant for general use.
uint64_t ExchangeCurrentSpanId(uint64_t span_id);

// RAII adoption of a captured context on another thread: sets the calling
// thread's context, restores the previous one on destruction. Used by the
// thread pool around claimed iterations and by the streaming pump's reader
// thread — the two places work crosses threads.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

#else  // MDZ_OBS_DISABLED

inline TraceContext CurrentTraceContext() { return {}; }
inline uint64_t NextTraceId() { return 0; }
inline uint64_t NextSpanId() { return 0; }
inline TraceContext BeginTrace() { return {}; }
inline uint64_t ExchangeCurrentSpanId(uint64_t) { return 0; }
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext&) {}
};

#endif  // MDZ_OBS_DISABLED

// --- Events -----------------------------------------------------------------

enum class EventPhase : uint8_t {
  kBegin,    // span opened               (Chrome "B")
  kEnd,      // span closed               (Chrome "E")
  kInstant,  // point event               (Chrome "i")
  kCounter,  // sampled value over time   (Chrome "C")
};

// One timeline event. `name` and arg keys must be string literals (or
// otherwise outlive the process) — events store the pointers, never copies.
struct TimelineEvent {
  static constexpr size_t kMaxArgs = 2;

  const char* name = "";
  uint64_t ts_ns = 0;           // steady-clock nanoseconds (TimelineNowNs)
  uint64_t trace_id = 0;
  uint64_t span_id = 0;         // id of this span (begin/end) or 0
  uint64_t parent_span_id = 0;  // enclosing span at record time, or 0
  uint32_t tid = 0;             // small per-process thread ordinal (from 1)
  EventPhase phase = EventPhase::kInstant;
  uint8_t arg_count = 0;
  struct Arg {
    const char* key = "";
    uint64_t value = 0;
  };
  Arg args[kMaxArgs];
};

#ifndef MDZ_OBS_DISABLED

// Monotonic event clock, nanoseconds since an arbitrary process-local
// origin (shared by every ring, so cross-thread ordering is meaningful).
uint64_t TimelineNowNs();

// Small stable ordinal for the calling thread (1, 2, 3, … in first-use
// order) — what Chrome trace rows key on. Also the tid stamped on events.
uint32_t TimelineThreadId();

// Async-signal-safe variant: returns the ordinal already assigned by a
// normal-context TimelineThreadId() call, or 0 when this thread has never
// made one. Never assigns (a plain POD TLS read, no guard, no allocation),
// so the profiler's SIGPROF handler can call it on any thread.
uint32_t TimelineThreadIdIfAssigned();

// Names the calling thread's row in the exported trace ("pool-worker",
// "stream-reader", …). Literal lifetime; last call wins.
void SetTimelineThreadName(const char* name);

// How many per-Timeline rings the calling thread currently holds (tests:
// rings of destroyed Timelines must be pruned, not retained forever).
size_t ThreadRingCountForTest();

// --- Timeline ---------------------------------------------------------------

// Per-thread ring registry + central drained store. Global() is what every
// recording site uses; separate instances exist for tests and, later, for
// per-server injection (a Timeline owns no threads and no global state).
class Timeline {
 public:
  // `ring_capacity` events per thread ring; `store_capacity` caps the
  // central drained store (oldest events are evicted past it).
  explicit Timeline(size_t ring_capacity = 1 << 15,
                    size_t store_capacity = 1 << 21);
  ~Timeline();

  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  static Timeline& Global();

  // Recording switch: one relaxed load on the hot path. Off by default.
  bool recording() const {
    return recording_.load(std::memory_order_relaxed);
  }
  void SetRecording(bool on);

  // Records one event from the calling thread (wait-free; drops + counts
  // when the thread's ring is full). ts/tid/trace-id are filled in here;
  // callers set name/phase/args. Overloads taking span ids record
  // `parent_span_id` verbatim (0 = root); the two-argument form parents
  // onto the thread's innermost open span.
  void Record(const char* name, EventPhase phase);
  void Record(const char* name, EventPhase phase, uint64_t span_id,
              uint64_t parent_span_id);
  void Record(const char* name, EventPhase phase, uint64_t span_id,
              uint64_t parent_span_id, const char* k0, uint64_t v0,
              const char* k1 = nullptr, uint64_t v1 = 0);
  // Counter sample: value goes into args[0] under `key`.
  void RecordCounter(const char* name, const char* key, uint64_t value);

  // Test hook: records `event` verbatim (fixed timestamps make the Chrome
  // export golden-testable).
  void RecordForTest(const TimelineEvent& event);

  // Moves everything recorded so far from the thread rings into the
  // central store (called by the server, the sampler, and the exporter;
  // safe from any thread, serialized internally). Returns how many events
  // moved this call.
  size_t DrainRings();

  // Drains, then returns a copy of the store, time-sorted.
  std::vector<TimelineEvent> Snapshot();

  // Events dropped on full rings + events evicted from a full store.
  uint64_t dropped() const;

  // The two components of dropped(), separately: /healthz tells "recording
  // outpaced the rings" apart from "the bounded store rolled over".
  uint64_t ring_dropped() const;
  uint64_t store_evicted() const;

  // Best-effort, crash-context read of the newest events (rings first,
  // then the store tail), into a caller-provided fixed buffer, oldest
  // first. Never blocks and never allocates: a mutex already held
  // elsewhere makes that source silently unavailable. Does not consume
  // events. Returns how many events were written to `out`. Only the crash
  // flight recorder should call this; everything else uses Snapshot().
  size_t PeekRecentForCrash(TimelineEvent* out, size_t max);

  // Events currently in the central store (post-drain; tests).
  size_t store_size() const;

  // Clears the store and drop counters (not the rings' unread tails).
  void Reset();

  struct ThreadName {
    uint32_t tid = 0;
    const char* name = "";
  };
  // Every thread named via SetTimelineThreadName (process-wide; thread
  // names are not per-Timeline).
  std::vector<ThreadName> thread_names();

  // Opaque per-thread buffer; public only so the thread-local ring map in
  // timeline.cc can name it.
  struct Ring;

 private:
  Ring* RingForThisThread();

  std::atomic<bool> recording_{false};
  // Process-unique instance id: the per-thread ring map keys on this, not
  // on `this` — a new Timeline at a recycled address must not inherit the
  // dead instance's (unregistered) rings.
  const uint64_t id_;
  const size_t ring_capacity_;
  const size_t store_capacity_;

  mutable std::mutex rings_mu_;  // ring list registration + drain serialization
  std::vector<std::shared_ptr<Ring>> rings_;

  mutable std::mutex store_mu_;
  std::vector<TimelineEvent> store_;
  uint64_t store_evicted_ = 0;
};

// --- Export -----------------------------------------------------------------

// Serializes Snapshot() as Chrome trace-event JSON ("JSON Object Format":
// {"traceEvents":[…],"displayTimeUnit":"ms"}), with one thread_name
// metadata record per thread. Loadable in Perfetto and chrome://tracing.
std::string ToChromeTraceJson(Timeline& timeline);

// Drains `timeline` and writes the Chrome trace JSON to `path`.
Status WriteChromeTraceFile(Timeline& timeline, const std::string& path);

// Summaries of the most recent completed spans (matched begin/end pairs in
// the store), newest first, capped at `limit` — the /tracez payload.
struct SpanSummary {
  const char* name = "";
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  uint32_t tid = 0;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
};
std::vector<SpanSummary> RecentSpans(Timeline& timeline, size_t limit);

#else  // MDZ_OBS_DISABLED

// Inert stand-ins so instrumentation sites compile unchanged; recording()
// is constant false, which lets the compiler delete every guarded path.
inline uint64_t TimelineNowNs() { return 0; }
inline uint32_t TimelineThreadId() { return 0; }
inline uint32_t TimelineThreadIdIfAssigned() { return 0; }
inline void SetTimelineThreadName(const char*) {}
inline size_t ThreadRingCountForTest() { return 0; }

class Timeline {
 public:
  static Timeline& Global() {
    static Timeline timeline;
    return timeline;
  }
  bool recording() const { return false; }
  void SetRecording(bool) {}
  void Record(const char*, EventPhase) {}
  void Record(const char*, EventPhase, uint64_t, uint64_t) {}
  void Record(const char*, EventPhase, uint64_t, uint64_t, const char*,
              uint64_t, const char* = nullptr, uint64_t = 0) {}
  void RecordCounter(const char*, const char*, uint64_t) {}
  void RecordForTest(const TimelineEvent&) {}
  size_t DrainRings() { return 0; }
  std::vector<TimelineEvent> Snapshot() { return {}; }
  uint64_t dropped() const { return 0; }
  uint64_t ring_dropped() const { return 0; }
  uint64_t store_evicted() const { return 0; }
  size_t PeekRecentForCrash(TimelineEvent*, size_t) { return 0; }
  size_t store_size() const { return 0; }
  void Reset() {}
  struct ThreadName {
    uint32_t tid = 0;
    const char* name = "";
  };
  std::vector<ThreadName> thread_names() { return {}; }
  struct Ring;
};

inline std::string ToChromeTraceJson(Timeline&) {
  return "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}";
}
inline Status WriteChromeTraceFile(Timeline&, const std::string&) {
  return Status::FailedPrecondition("timeline tracing compiled out");
}

struct SpanSummary {
  const char* name = "";
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  uint32_t tid = 0;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
};
inline std::vector<SpanSummary> RecentSpans(Timeline&, size_t) { return {}; }

#endif  // MDZ_OBS_DISABLED

}  // namespace mdz::obs

#endif  // MDZ_OBS_TIMELINE_H_
