#ifndef MDZ_OBS_BUILD_INFO_H_
#define MDZ_OBS_BUILD_INFO_H_

// Build provenance, stamped once per binary: which commit, compiler and
// flags produced it, and whether telemetry was compiled out. Every
// machine-readable artifact the tree emits (mdz.metrics.v1, mdz.bench.v1,
// mdz.quality.v1, the Prometheus exposition, `mdz version --json`) embeds
// this block, so a metrics file or a BENCH_*.json found on disk can always
// be traced back to the build that produced it (tools/bench_diff refuses to
// silently compare numbers from different flag sets).
//
// The git fields are resolved at CMake configure time and injected as
// compile definitions on this translation unit only; re-run cmake (or any
// build after a commit, since CMake reconfigures on CMakeLists changes) to
// refresh them. Outside a git checkout they read "unknown".

#include <string>

namespace mdz::obs {

struct BuildInfo {
  std::string git_sha;       // full commit hash, or "unknown"
  std::string git_describe;  // `git describe --always --dirty`, or "unknown"
  std::string compiler;      // e.g. "gcc 13.2.0" / "clang 17.0.6"
  std::string flags;         // build type + CXX flags (+ sanitizer if any)
  bool obs_disabled = false; // true when compiled with MDZ_OBS_DISABLED
};

// The process-wide instance (immutable after first use).
const BuildInfo& GetBuildInfo();

// The instance as a JSON object, e.g.
//   {"git_sha":"abc...","git_describe":"abc1234-dirty",
//    "compiler":"gcc 13.2.0","flags":"RelWithDebInfo -Wall -Wextra",
//    "obs_disabled":false}
// Embedded under the "build" key of every versioned schema in this tree.
std::string BuildInfoJson();

}  // namespace mdz::obs

#endif  // MDZ_OBS_BUILD_INFO_H_
