#include "obs/build_info.h"

namespace mdz::obs {

namespace {

#ifndef MDZ_GIT_SHA
#define MDZ_GIT_SHA "unknown"
#endif
#ifndef MDZ_GIT_DESCRIBE
#define MDZ_GIT_DESCRIBE "unknown"
#endif
#ifndef MDZ_BUILD_FLAGS
#define MDZ_BUILD_FLAGS "unknown"
#endif

std::string CompilerString() {
#if defined(__clang__)
  return std::string("clang ") + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';  // flags/describe never legitimately contain control chars
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo* info = [] {
    auto* b = new BuildInfo();
    b->git_sha = MDZ_GIT_SHA;
    b->git_describe = MDZ_GIT_DESCRIBE;
    b->compiler = CompilerString();
    b->flags = MDZ_BUILD_FLAGS;
#ifdef MDZ_OBS_DISABLED
    b->obs_disabled = true;
#else
    b->obs_disabled = false;
#endif
    return b;
  }();
  return *info;
}

std::string BuildInfoJson() {
  const BuildInfo& b = GetBuildInfo();
  std::string out = "{\"git_sha\":\"" + JsonEscape(b.git_sha) +
                    "\",\"git_describe\":\"" + JsonEscape(b.git_describe) +
                    "\",\"compiler\":\"" + JsonEscape(b.compiler) +
                    "\",\"flags\":\"" + JsonEscape(b.flags) +
                    "\",\"obs_disabled\":";
  out += b.obs_disabled ? "true" : "false";
  out += '}';
  return out;
}

}  // namespace mdz::obs
