#ifndef MDZ_OBS_TELEMETRY_SERVER_H_
#define MDZ_OBS_TELEMETRY_SERVER_H_

// Embedded telemetry endpoint: a tiny HTTP/1.1 server on a dedicated
// thread, serving live views of the process's observability state while a
// long-running command (compress --stream, append) is in flight:
//
//   GET /metrics   Prometheus text exposition — the same families, rendered
//                  by the same exporter, as the end-of-run --metrics-prom
//                  dump, so a scrape mid-run and the final file agree.
//   GET /healthz   liveness JSON: {"status":"ok"|"degraded",…} — degraded
//                  when the observability plane itself is losing data
//                  (timeline ring drops, store evictions, profiler signal
//                  overruns).
//   GET /buildz    build_info JSON (obs/build_info.h).
//   GET /tracez    recent completed spans from the timeline, JSON.
//   GET /profilez  CPU profile (obs/profiler.h): if a profiler is already
//                  running (--profile), aggregates the last ?seconds=N of
//                  stored samples; otherwise profiles on demand for N
//                  seconds (default 1, capped) before responding. Folded
//                  flamegraph text by default; mdz.profile.v1 JSON via
//                  ?format=json or Accept: application/json.
//   GET /flightz   flight-recorder live snapshot (mdz.flightz.v1 JSON):
//                  active span stacks, recent timeline events, counters.
//
// Scope is deliberately minimal — plain POSIX sockets, blocking I/O with
// poll() timeouts, one request served at a time, GET only — because the
// consumer is `curl` or one Prometheus scraper, not the internet. The
// server owns no registry or timeline: both are injected at construction
// (defaulting to the process-wide instances), which keeps tests hermetic
// and pushes the obs stack toward injectable plumbing.
//
// ResourceSampler rides along: a background thread that periodically
// folds process resource usage (RSS) and pipeline state (queue depth,
// bytes processed) into the registry and — when the timeline is recording
// — emits them as counter-track events, so the exported trace shows
// memory/throughput curves under the span rows.
//
// Both compile to inert stubs under MDZ_OBS_DISABLED (Start returns
// FailedPrecondition; the CLI surfaces that as a usage error).

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "util/status.h"

namespace mdz::obs {

class MetricsRegistry;
class Timeline;
class Profiler;

// --- Listen-address parsing -------------------------------------------------

// Parsed --listen endpoint. Host is IPv4 dotted-quad or "localhost";
// port 0 asks the kernel for an ephemeral port (ListenAddress/port() after
// Start() reports the bound one).
struct ListenAddress {
  std::string host;
  uint16_t port = 0;
};

// Strict "host:port" parser: rejects empty host, non-numeric or
// out-of-range port, trailing garbage. Does not resolve DNS — host must be
// dotted-quad or "localhost". Returns InvalidArgument on malformed input
// (the CLI maps that to exit 2).
Status ParseListenAddress(const std::string& text, ListenAddress* out);

#ifndef MDZ_OBS_DISABLED

// --- TelemetryServer --------------------------------------------------------

class TelemetryServer {
 public:
  // Serves `registry`, `timeline` and `profiler`; pass nullptr for the
  // process-global instances. Does not listen yet.
  explicit TelemetryServer(const MetricsRegistry* registry = nullptr,
                           Timeline* timeline = nullptr,
                           Profiler* profiler = nullptr);
  ~TelemetryServer();  // implies Stop()

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  // Optional readiness probe, surfaced in /healthz as "ready":true|false.
  // Long-running daemons (mdz serve) report not-ready while starting or
  // draining so load balancers stop routing before shutdown. Must be set
  // before Start(); the probe is called from the serving thread and must be
  // thread-safe. Unset probes omit the field (one-shot CLI runs).
  void SetReadyProbe(std::function<bool()> probe) {
    ready_probe_ = std::move(probe);
  }

  // Binds, listens, and starts the serving thread. InvalidArgument on an
  // unresolvable host, Internal on bind/listen failure (port in use).
  Status Start(const ListenAddress& address);

  // Shuts the socket, joins the thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Port actually bound (resolves port 0); 0 when not running.
  uint16_t port() const { return port_; }

  // Requests served so far (tests).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int client_fd);
  // `target` is the request target (path + optional query string);
  // `head` is the full request head, for content negotiation (Accept).
  std::string RouteRequest(const std::string& target, const std::string& head);
  std::string HandleProfilez(const std::string& query,
                             const std::string& head);
  std::string HealthzJson() const;

  const MetricsRegistry* registry_;  // never null after ctor
  Timeline* timeline_;               // never null after ctor
  Profiler* profiler_;               // never null after ctor
  std::function<bool()> ready_probe_;  // optional; fixed before Start()

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::thread thread_;
};

// --- ResourceSampler --------------------------------------------------------

class ResourceSampler {
 public:
  // `queue_depth_fn` / `bytes_fn` are optional live probes into the
  // pipeline (e.g. streaming snapshot-queue depth, bytes compressed so
  // far); pass nullptr-like (default) to sample process RSS only.
  explicit ResourceSampler(Timeline* timeline = nullptr,
                           std::function<uint64_t()> queue_depth_fn = {},
                           std::function<uint64_t()> bytes_fn = {});
  ~ResourceSampler();  // implies Stop()

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  // Starts sampling every `interval_ms` milliseconds on a background
  // thread. Also takes one sample immediately.
  void Start(uint64_t interval_ms);

  // Joins the sampler thread. Idempotent.
  void Stop();

  uint64_t samples_taken() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void Loop(uint64_t interval_ms);
  void SampleOnce();

  Timeline* timeline_;  // never null after ctor
  std::function<uint64_t()> queue_depth_fn_;
  std::function<uint64_t()> bytes_fn_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> samples_{0};
  std::thread thread_;
  bool started_ = false;
};

#else  // MDZ_OBS_DISABLED

class TelemetryServer {
 public:
  explicit TelemetryServer(const MetricsRegistry* = nullptr,
                           Timeline* = nullptr, Profiler* = nullptr) {}
  void SetReadyProbe(std::function<bool()>) {}
  Status Start(const ListenAddress&) {
    return Status::FailedPrecondition("telemetry compiled out");
  }
  void Stop() {}
  bool running() const { return false; }
  uint16_t port() const { return 0; }
  uint64_t requests_served() const { return 0; }
};

class ResourceSampler {
 public:
  explicit ResourceSampler(Timeline* = nullptr,
                           std::function<uint64_t()> = {},
                           std::function<uint64_t()> = {}) {}
  void Start(uint64_t) {}
  void Stop() {}
  uint64_t samples_taken() const { return 0; }
};

#endif  // MDZ_OBS_DISABLED

}  // namespace mdz::obs

#endif  // MDZ_OBS_TELEMETRY_SERVER_H_
