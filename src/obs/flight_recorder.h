#ifndef MDZ_OBS_FLIGHT_RECORDER_H_
#define MDZ_OBS_FLIGHT_RECORDER_H_

// Crash flight recorder: a post-mortem dump of "what was the process doing
// when it died", written from a fatal-signal handler with nothing but
// write(2). Install() opens the report file up front (no open() in the
// handler), pre-renders everything renderable ahead of time (the build-info
// header, the metric name/pointer table), sets up an alternate signal stack
// (a report on stack overflow needs somewhere to run), and hooks
// SIGSEGV/SIGBUS/SIGABRT/SIGFPE. The handler dumps, restores the default
// disposition, and re-raises — exit codes and core dumps behave exactly as
// without the recorder.
//
// Report contents, best effort in decreasing order of reliability:
//   * signal name + number (+ fault address for SEGV/BUS/FPE)
//   * build info (git sha/describe, compiler, flags) — pre-rendered text
//   * backtrace of the crashing thread (backtrace_symbols_fd; primed at
//     Install so the lazy libgcc load never happens in the handler)
//   * active span stack per thread (obs/span.h's async-readable stacks)
//   * the last N timeline events still in the PR-7 rings/store
//     (Timeline::PeekRecentForCrash — try_lock, never blocks)
//   * a metric snapshot through counter pointers resolved at Install
//
// The same live state (minus the backtrace) is served as JSON on the
// telemetry endpoint's /flightz route via FlightzJson().

#include <string>

#include "util/status.h"

namespace mdz::obs {

class MetricsRegistry;
class Timeline;

#ifndef MDZ_OBS_DISABLED

class FlightRecorder {
 public:
  // Opens (truncates) `path`, installs the fatal-signal handlers and the
  // alternate stack. Install is process-wide and sticky: calling it again
  // re-points the report at a new file. Internal if the file can't be
  // opened.
  static Status Install(const std::string& path);

  static bool installed();

  // Renders the report to `fd` as the handler would (minus the re-raise).
  // `signal_number` 0 reads as a non-crash snapshot. Exposed so tests can
  // validate report content without dying.
  static void WriteReport(int fd, int signal_number, const void* fault_addr);
};

// JSON snapshot of the flight-recorder state for GET /flightz:
// {"schema":"mdz.flightz.v1","installed":…,"build":{…},
//  "active_spans":[{"tid":…,"spans":[…]}],"recent_events":[…],
//  "counters":{…}} — normal context, allocation allowed.
std::string FlightzJson(const MetricsRegistry& registry, Timeline& timeline);

#else  // MDZ_OBS_DISABLED

class FlightRecorder {
 public:
  static Status Install(const std::string&) {
    return Status::FailedPrecondition("flight recorder compiled out");
  }
  static bool installed() { return false; }
  static void WriteReport(int, int, const void*) {}
};

inline std::string FlightzJson(const MetricsRegistry&, Timeline&) {
  return "{\"schema\":\"mdz.flightz.v1\",\"installed\":false}";
}

#endif  // MDZ_OBS_DISABLED

}  // namespace mdz::obs

#endif  // MDZ_OBS_FLIGHT_RECORDER_H_
