#include "obs/trace.h"

namespace mdz::obs {

Result<std::unique_ptr<TraceSink>> TraceSink::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open trace file for writing: " + path);
  }
  auto sink = std::unique_ptr<TraceSink>(new TraceSink());
  sink->file_ = file;
  return sink;
}

TraceSink::~TraceSink() { (void)Close(); }

void TraceSink::Record(const BlockTrace& t) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  const int written = std::fprintf(
      file_,
      "{\"axis\":%d,\"block\":%llu,\"method\":\"%s\",\"snapshots\":%llu,"
      "\"bytes\":%llu,\"escapes\":%llu,\"entropy_bits\":%.6g,"
      "\"adapted\":%s,\"trial_vq\":%llu,\"trial_vqt\":%llu,"
      "\"trial_mt\":%llu,\"trial_ti\":%llu,\"trial_l2d\":%llu,"
      "\"trial_ba\":%llu}\n",
      t.axis, static_cast<unsigned long long>(t.block_index), t.method,
      static_cast<unsigned long long>(t.snapshots),
      static_cast<unsigned long long>(t.block_bytes),
      static_cast<unsigned long long>(t.escape_count), t.bin_entropy_bits,
      t.adapted ? "true" : "false",
      static_cast<unsigned long long>(t.trial_bytes[0]),
      static_cast<unsigned long long>(t.trial_bytes[1]),
      static_cast<unsigned long long>(t.trial_bytes[2]),
      static_cast<unsigned long long>(t.trial_bytes[3]),
      static_cast<unsigned long long>(t.trial_bytes[4]),
      static_cast<unsigned long long>(t.trial_bytes[5]));
  if (written < 0) {
    write_error_ = true;
  } else {
    ++records_;
  }
}

uint64_t TraceSink::records_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

Status TraceSink::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  const bool flush_failed = std::fflush(file_) != 0;
  std::fclose(file_);
  file_ = nullptr;
  if (write_error_ || flush_failed) {
    return Status::Internal("trace file write failed");
  }
  return Status::OK();
}

}  // namespace mdz::obs
