#ifndef MDZ_OBS_METRICS_H_
#define MDZ_OBS_METRICS_H_

// Process-wide telemetry registry: counters, gauges and fixed-bucket
// histograms (docs/OBSERVABILITY.md has the metric catalog).
//
// Design constraints, in order:
//
//  * Near-zero cost when off. Every recording site first checks the global
//    Enabled() flag — one relaxed atomic load and a predictable branch.
//    Defining MDZ_OBS_DISABLED at compile time turns the MDZ_SPAN /
//    MDZ_COUNTER_ADD macros into nothing at all.
//  * Lock-free hot path when on. Counters shard their cell across cache
//    lines and add with relaxed atomics, so pool workers hammering the same
//    counter never contend; histograms are one relaxed add per observation.
//  * Stable handles. GetCounter/GetGauge/GetHistogram return pointers that
//    stay valid for the registry's lifetime, so instrumentation sites look
//    a metric up once (function-local static) and record through the cached
//    pointer afterwards.
//
// Registration (name -> metric) takes a mutex; it happens once per site.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace mdz::obs {

// Global runtime switch for all telemetry (spans, pool gauges, compressor
// metrics). Off by default; Options::telemetry and the CLI's --metrics-json/
// --trace flags turn it on for the process.
bool Enabled();
void SetEnabled(bool on);

// Monotonic counter. Add() is a relaxed atomic add on a per-thread shard;
// Value() sums the shards (reads may race with writers and see a slightly
// stale total, which is fine for telemetry).
class Counter {
 public:
  void Add(uint64_t delta) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t Value() const;
  void Reset();

 private:
  static constexpr size_t kShards = 16;
  static size_t ShardIndex();

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kShards];
};

// Last-writer-wins instantaneous value (e.g. pool queue depth).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram: N finite upper bounds plus an implicit +Inf
// bucket. Observe() is a linear scan over the (small) bound array and one
// relaxed add; sum is maintained with a CAS loop.
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void Observe(double value);

  // Cumulative count of observations <= bounds()[i]; the last entry of
  // BucketCounts() is the +Inf bucket (== Count()).
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<uint64_t> BucketCounts() const;  // non-cumulative, size N+1
  uint64_t Count() const;
  double Sum() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> counts_;  // N+1 buckets
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Default bucket bounds for durations in seconds: 1us .. 10s, decades.
std::span<const double> DurationBuckets();

// Samples the process's peak resident set size (getrusage ru_maxrss) into
// the process/peak_rss_bytes gauge and returns it in bytes. Lets streaming
// runs prove their bounded-memory claim in the exported metrics; returns 0
// (and records nothing) when the platform has no usable counter or
// telemetry is disabled.
int64_t RecordPeakRss();

// Registers (at value 0) every statically-known counter and gauge family in
// the tree. Called before serving live /metrics so a scrape early in a run
// exposes the same families the end-of-run dump will — Prometheus treats a
// family that appears mid-run as a new series, which breaks rate() over the
// transition. Span histograms are path-dependent and stay lazy.
void PreRegisterCoreMetrics();

// Name-keyed registry. Global() is the process-wide instance every
// instrumentation site records into; separate instances can be built for
// tests. Reset() zeroes values but keeps registrations, so cached pointers
// stay valid.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  // Finds or creates the named metric. A histogram's bounds are fixed by
  // the first registration; later calls ignore `bounds`.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::span<const double> bounds);

  void Reset();

  // Stable-ordered (name-sorted) copy of the current values, the input to
  // the exporters in obs/export.h.
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> bucket_counts;  // size bounds.size()+1 (+Inf last)
    uint64_t count = 0;
    double sum = 0.0;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<HistogramValue> histograms;
  };
  Snapshot Collect() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

#ifndef MDZ_OBS_DISABLED
// Adds `delta` to the named global counter when telemetry is enabled. The
// registry lookup runs once per call site.
#define MDZ_COUNTER_ADD(name, delta)                                        \
  do {                                                                      \
    if (::mdz::obs::Enabled()) {                                            \
      static ::mdz::obs::Counter* _mdz_counter =                            \
          ::mdz::obs::MetricsRegistry::Global().GetCounter(name);           \
      _mdz_counter->Add(delta);                                             \
    }                                                                       \
  } while (false)
#else
#define MDZ_COUNTER_ADD(name, delta) \
  do {                               \
  } while (false)
#endif

}  // namespace mdz::obs

#endif  // MDZ_OBS_METRICS_H_
