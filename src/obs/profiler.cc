#include "obs/profiler.h"

#ifndef MDZ_OBS_DISABLED

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <cerrno>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeline.h"

namespace mdz::obs {

namespace {

// The profiler whose handler is live. SIGPROF and setitimer are process
// state, so at most one Profiler runs at a time; the handler ignores
// signals that land while none is. Winning the CAS on this pointer is what
// licenses a Start() to touch its ring pool — the claim happens before any
// pool mutation.
std::atomic<Profiler*> g_active_profiler{nullptr};

// Count of SIGPROF handlers currently between their g_active_profiler load
// and handler exit. Stop() stores null into g_active_profiler and then
// spins until this drains, so a handler that loaded a non-null pointer is
// never concurrent with ring reuse or Profiler teardown. Both sides use
// seq_cst: the handler's increment must be ordered before its pointer
// load, and Stop's null store before its count read (Dekker pattern).
std::atomic<int> g_handlers_in_flight{0};

void QuiesceHandlers() {
  while (g_handlers_in_flight.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
}

// Start() sessions, so a thread's cached ring pointer from a previous run
// is never reused against a new ring pool.
std::atomic<uint64_t> g_profiler_session{0};

// POD thread-locals (zero-initialized, no guards): safe to touch on a
// thread's very first signal.
struct TlsRingCache {
  uint64_t session;
  void* ring;  // Profiler::Ring*, or nullptr when the pool was exhausted
};
thread_local TlsRingCache tls_ring_cache;
thread_local volatile sig_atomic_t tls_in_capture;

}  // namespace

// External linkage + noinline on purpose: these two frames sit at the top
// of every captured stack, and AggregateProfile strips them *by name* — so
// they must stay distinct functions that dladdr can see in the dynamic
// symbol table (-rdynamic / CMAKE_ENABLE_EXPORTS).
__attribute__((noinline)) void ProfilerSignalHandler(int, siginfo_t*, void*) {
  const int saved_errno = errno;
  g_handlers_in_flight.fetch_add(1, std::memory_order_seq_cst);
  if (Profiler* profiler =
          g_active_profiler.load(std::memory_order_seq_cst)) {
    profiler->HandleSignal();
  }
  g_handlers_in_flight.fetch_sub(1, std::memory_order_seq_cst);
  errno = saved_errno;
}

// --- Sample ring -------------------------------------------------------------

// Same SPSC discipline as Timeline::Ring: the owning thread is the only
// producer (from signal context), the mutex-serialized drainer the only
// consumer, and a full ring drops the newest sample.
struct Profiler::Ring {
  explicit Ring(size_t capacity) : capacity(capacity), slots(capacity) {}

  const size_t capacity;
  std::vector<ProfileSample> slots;
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t> tail{0};
  std::atomic<uint64_t> dropped{0};
  uint32_t tid = 0;

  size_t DrainInto(std::vector<ProfileSample>* out) {
    const uint64_t h = head.load(std::memory_order_acquire);
    uint64_t t = tail.load(std::memory_order_relaxed);
    const size_t n = static_cast<size_t>(h - t);
    for (; t < h; ++t) out->push_back(slots[t % capacity]);
    tail.store(h, std::memory_order_release);
    return n;
  }
};

struct Profiler::Impl {
  const size_t ring_capacity;
  const size_t max_threads;
  const size_t store_capacity;

  // Fixed ring pool, allocated once under drain_mu on the first Start()
  // and reused (never freed, never shrunk) by every later session: a late
  // handler from a previous session can index a stale ring but never a
  // freed one. Drop counts accumulate across sessions, which keeps
  // dropped() monotonic with no reset bookkeeping.
  std::vector<std::unique_ptr<Ring>> rings;
  std::atomic<size_t> rings_used{0};
  std::atomic<uint64_t> session{0};

  std::atomic<bool> running{false};
  std::atomic<uint64_t> samples{0};
  std::atomic<uint64_t> overruns{0};
  uint64_t store_evicted = 0;  // under store_mu

  uint64_t start_ns = 0;
  uint64_t stop_ns = 0;

  std::mutex state_mu;  // serializes Start()/Stop() against each other
  std::mutex drain_mu;  // guards the rings vector and serializes consumers
  std::mutex store_mu;
  std::vector<ProfileSample> store;

  // Registry sync state (normal context only).
  std::mutex sync_mu;
  uint64_t synced_samples = 0;
  uint64_t synced_dropped = 0;
  uint64_t synced_overruns = 0;

  std::atomic<bool> drain_stop{false};
  std::thread drain_thread;

  bool handler_installed = false;

  Impl(size_t ring_capacity, size_t max_threads, size_t store_capacity)
      : ring_capacity(std::max<size_t>(ring_capacity, 8)),
        max_threads(std::max<size_t>(max_threads, 1)),
        store_capacity(std::max<size_t>(store_capacity, 8)) {}
};

Profiler::Profiler(size_t ring_capacity, size_t max_threads,
                   size_t store_capacity)
    : impl_(new Impl(ring_capacity, max_threads, store_capacity)) {}

Profiler::~Profiler() {
  Stop();
  delete impl_;
}

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();  // never destroyed
  return *profiler;
}

bool Profiler::running() const {
  return impl_->running.load(std::memory_order_acquire);
}

Status Profiler::Start(uint32_t hz) {
  if (hz == 0) hz = 99;
  hz = std::min<uint32_t>(hz, 1000);
  std::lock_guard<std::mutex> state(impl_->state_mu);
  if (impl_->running.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("profiler already running");
  }

  // Claim process-wide exclusivity before touching anything the handler
  // can see: losing this CAS means another Profiler owns SIGPROF right
  // now. The installed handler may observe the new pointer before the
  // timer is armed (a stray delivery from a previous session), but it
  // bails while running is still false.
  Profiler* expected = nullptr;
  if (!g_active_profiler.compare_exchange_strong(
          expected, this, std::memory_order_seq_cst)) {
    return Status::FailedPrecondition(
        "another profiler is already running (SIGPROF is process state)");
  }

  // Everything the handler touches exists before running flips true. The
  // pool is allocated once and reused by later sessions — rings are never
  // freed while the process can still take a SIGPROF, so a late handler
  // can never use freed memory. Ring drop counts simply accumulate, which
  // keeps dropped() monotonic across restarts. rings_used resets before
  // the release-store of session: a claimer that observes the new session
  // value therefore also observes the reset counter.
  {
    std::lock_guard<std::mutex> lock(impl_->drain_mu);
    if (impl_->rings.empty()) {
      impl_->rings.reserve(impl_->max_threads);
      for (size_t i = 0; i < impl_->max_threads; ++i) {
        impl_->rings.push_back(std::make_unique<Ring>(impl_->ring_capacity));
      }
    }
    impl_->rings_used.store(0, std::memory_order_relaxed);
    impl_->session.store(
        g_profiler_session.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_release);
  }

  // Prime the lazy pieces outside signal context: backtrace(3)'s first call
  // may load libgcc, and the timeline clock origin is a guarded static.
  void* prime[4];
  ::backtrace(prime, 4);
  impl_->start_ns = TimelineNowNs();
  impl_->stop_ns = 0;

  // Install the handler. It is deliberately never uninstalled: disarming
  // the timer in Stop() cannot outrace an already-pending SIGPROF, and a
  // stray signal hitting a restored SIG_DFL would kill the process. The
  // installed handler is inert while g_active_profiler is null.
  if (!impl_->handler_installed) {
    struct sigaction action {};
    action.sa_sigaction = ProfilerSignalHandler;
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&action.sa_mask);
    if (sigaction(SIGPROF, &action, nullptr) != 0) {
      g_active_profiler.store(nullptr, std::memory_order_seq_cst);
      return Status::Internal("sigaction(SIGPROF) failed");
    }
    impl_->handler_installed = true;
  }

  hz_ = hz;
  // Release-publish the session prepared above; the handler's acquire load
  // of running is what licenses it to touch the pool.
  impl_->running.store(true, std::memory_order_release);

  itimerval timer{};
  timer.it_interval.tv_sec = 0;
  timer.it_interval.tv_usec = static_cast<suseconds_t>(1000000 / hz);
  if (timer.it_interval.tv_usec == 0) timer.it_interval.tv_usec = 1000;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    impl_->running.store(false, std::memory_order_release);
    g_active_profiler.store(nullptr, std::memory_order_seq_cst);
    QuiesceHandlers();
    return Status::Internal("setitimer(ITIMER_PROF) failed");
  }

  impl_->drain_stop.store(false, std::memory_order_release);
  impl_->drain_thread = std::thread([this] { DrainLoop(); });
  // The starting thread is often the one about to burn CPU (the CLI's
  // --profile path): claim its ring and span-stack slot eagerly so its
  // very first sample needs no normal-context prerequisites.
  PrepareThreadForProfiling();
  // Register the profiler/* counter families now, not on the first drain
  // tick: a sub-100 ms profiled run still exports them (at zero).
  SyncMetrics();
  return Status::OK();
}

void Profiler::Stop() {
  std::lock_guard<std::mutex> state(impl_->state_mu);
  if (!impl_->running.load(std::memory_order_acquire)) return;

  itimerval disarm{};
  setitimer(ITIMER_PROF, &disarm, nullptr);
  // Disarm in two steps, then quiesce. New deliveries bail on the null
  // pointer (or on !running); a handler already past those checks holds a
  // slot in g_handlers_in_flight, and the spin below waits it out — so by
  // the time we return, no signal context is still writing into a ring,
  // and a later Start() (or ~Profiler) can safely reuse the pool. The
  // handler itself stays installed (see Start) so late deliveries are
  // harmless.
  impl_->running.store(false, std::memory_order_release);
  g_active_profiler.store(nullptr, std::memory_order_seq_cst);
  QuiesceHandlers();

  impl_->drain_stop.store(true, std::memory_order_release);
  if (impl_->drain_thread.joinable()) impl_->drain_thread.join();
  impl_->stop_ns = TimelineNowNs();
  DrainSamples();
  SyncMetrics();
}

double Profiler::duration_seconds() const {
  const uint64_t start = impl_->start_ns;
  if (start == 0) return 0.0;
  const uint64_t end =
      impl_->stop_ns != 0 ? impl_->stop_ns : TimelineNowNs();
  return end > start ? static_cast<double>(end - start) * 1e-9 : 0.0;
}

void Profiler::DrainLoop() {
  SetTimelineThreadName("profiler-drain");
  while (!impl_->drain_stop.load(std::memory_order_acquire)) {
    // Short slices keep Stop() prompt; a drain every ~100 ms keeps the
    // rings far from full at any supported Hz.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    DrainSamples();
    SyncMetrics();
  }
}

Profiler::Ring* Profiler::RingForThisThread(bool from_signal) {
  TlsRingCache& cache = tls_ring_cache;
  const uint64_t session = impl_->session.load(std::memory_order_acquire);
  if (cache.session != session) {
    // First sample of this session on this thread: claim a pool slot. From
    // signal context the claim must not first-touch guarded TLS, so a
    // thread whose timeline tid was never assigned in normal context is
    // skipped (the caller counts an overrun); it becomes claimable the
    // moment it runs any span/timeline code or PrepareThreadForProfiling.
    const uint32_t tid =
        from_signal ? TimelineThreadIdIfAssigned() : TimelineThreadId();
    if (tid == 0) return nullptr;
    cache.session = session;
    cache.ring = nullptr;
    const size_t index =
        impl_->rings_used.fetch_add(1, std::memory_order_relaxed);
    if (index < impl_->max_threads) {
      Ring* ring = impl_->rings[index].get();
      ring->tid = tid;
      cache.ring = ring;
    }
  }
  return static_cast<Ring*>(cache.ring);
}

__attribute__((noinline)) void Profiler::HandleSignal() {
  // Not armed yet (Start() won the exclusivity CAS but is still building
  // the session) or already disarming: ignore the stray delivery. The
  // acquire load pairs with Start()'s release store, so a handler that
  // sees running==true also sees the fully-built ring pool and session.
  if (!impl_->running.load(std::memory_order_acquire)) return;
  if (tls_in_capture) {
    impl_->overruns.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  tls_in_capture = 1;
  Ring* ring = RingForThisThread(/*from_signal=*/true);
  if (ring == nullptr) {
    // Thread past the fixed ring pool: the signal fired but no sample can
    // land anywhere.
    impl_->overruns.fetch_add(1, std::memory_order_relaxed);
    tls_in_capture = 0;
    return;
  }
  const uint64_t h = ring->head.load(std::memory_order_relaxed);
  const uint64_t t = ring->tail.load(std::memory_order_acquire);
  if (h - t >= ring->capacity) {
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    tls_in_capture = 0;
    return;
  }
  ProfileSample& sample = ring->slots[h % ring->capacity];
  sample.ts_ns = TimelineNowNs();
  sample.tid = ring->tid;
  const int n = ::backtrace(sample.frames, ProfileSample::kMaxFrames);
  sample.frame_count = static_cast<uint16_t>(n > 0 ? n : 0);
  sample.span_count = 0;
  if (AsyncSpanStack* stack = ThisThreadSpanStack()) {
    uint32_t depth = stack->depth.load(std::memory_order_relaxed);
    if (depth > AsyncSpanStack::kMaxDepth) depth = AsyncSpanStack::kMaxDepth;
    // Keep the innermost kMaxSpans when deeper: attribution favors leaves.
    const uint32_t take =
        std::min<uint32_t>(depth, ProfileSample::kMaxSpans);
    for (uint32_t i = 0; i < take; ++i) {
      sample.spans[i] =
          stack->names[depth - take + i].load(std::memory_order_relaxed);
    }
    sample.span_count = static_cast<uint16_t>(take);
  }
  ring->head.store(h + 1, std::memory_order_release);
  impl_->samples.fetch_add(1, std::memory_order_relaxed);
  tls_in_capture = 0;
}

size_t Profiler::DrainSamples() {
  std::vector<ProfileSample> drained;
  {
    std::lock_guard<std::mutex> lock(impl_->drain_mu);
    const size_t used = std::min(
        impl_->rings_used.load(std::memory_order_acquire),
        impl_->max_threads);
    for (size_t i = 0; i < used; ++i) {
      impl_->rings[i]->DrainInto(&drained);
    }
  }
  if (drained.empty()) return 0;
  std::lock_guard<std::mutex> lock(impl_->store_mu);
  impl_->store.insert(impl_->store.end(), drained.begin(), drained.end());
  if (impl_->store.size() > impl_->store_capacity) {
    const size_t excess = impl_->store.size() - impl_->store_capacity;
    impl_->store.erase(impl_->store.begin(),
                       impl_->store.begin() + static_cast<ptrdiff_t>(excess));
    impl_->store_evicted += excess;
  }
  return drained.size();
}

std::vector<ProfileSample> Profiler::Snapshot(uint64_t since_ns) {
  DrainSamples();
  std::vector<ProfileSample> out;
  {
    std::lock_guard<std::mutex> lock(impl_->store_mu);
    for (const ProfileSample& s : impl_->store) {
      if (s.ts_ns >= since_ns) out.push_back(s);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ProfileSample& a, const ProfileSample& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

uint64_t Profiler::samples() const {
  return impl_->samples.load(std::memory_order_relaxed);
}

uint64_t Profiler::dropped() const {
  // drain_mu guards the rings vector itself (first-Start allocation can
  // run concurrently with a telemetry-thread read). Ring drop counts are
  // cumulative across sessions, so no carry bookkeeping is needed.
  uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(impl_->drain_mu);
    for (const auto& ring : impl_->rings) {
      total += ring->dropped.load(std::memory_order_relaxed);
    }
  }
  std::lock_guard<std::mutex> lock(impl_->store_mu);
  return total + impl_->store_evicted;
}

uint64_t Profiler::overruns() const {
  return impl_->overruns.load(std::memory_order_relaxed);
}

void Profiler::ClearStore() {
  std::lock_guard<std::mutex> lock(impl_->store_mu);
  impl_->store.clear();
}

void Profiler::SyncMetrics() {
  if (!Enabled()) return;
  std::lock_guard<std::mutex> lock(impl_->sync_mu);
  static Counter* samples_counter =
      MetricsRegistry::Global().GetCounter("profiler/samples");
  static Counter* drops_counter =
      MetricsRegistry::Global().GetCounter("profiler/drops");
  static Counter* overruns_counter =
      MetricsRegistry::Global().GetCounter("profiler/signal_overruns");
  const uint64_t samples_now = samples();
  const uint64_t dropped_now = dropped();
  const uint64_t overruns_now = overruns();
  if (samples_now > impl_->synced_samples) {
    samples_counter->Add(samples_now - impl_->synced_samples);
    impl_->synced_samples = samples_now;
  }
  if (dropped_now > impl_->synced_dropped) {
    drops_counter->Add(dropped_now - impl_->synced_dropped);
    impl_->synced_dropped = dropped_now;
  }
  if (overruns_now > impl_->synced_overruns) {
    overruns_counter->Add(overruns_now - impl_->synced_overruns);
    impl_->synced_overruns = overruns_now;
  }
}

void PrepareThreadForProfiling() {
  ThisThreadSpanStack();
  // Assign the POD timeline-tid TLS in normal context: the SIGPROF claim
  // path refuses to first-assign it (see RingForThisThread), so a thread
  // is only sampled after this ran (or after any span/timeline call).
  TimelineThreadId();
  if (Profiler* profiler =
          g_active_profiler.load(std::memory_order_acquire)) {
    if (profiler->running()) profiler->RingForThisThread(false);
  }
}

// --- Offline aggregation / symbolization ------------------------------------

namespace {

std::string Demangle(const char* mangled) {
  int status = 0;
  char* demangled = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  if (status == 0 && demangled != nullptr) {
    std::string out(demangled);
    std::free(demangled);
    return out;
  }
  if (demangled != nullptr) std::free(demangled);
  return mangled;
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

std::string SymbolizePc(void* pc) {
  Dl_info info{};
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    return Demangle(info.dli_sname);
  }
  char buf[64];
  if (info.dli_fname != nullptr) {
    const uint64_t offset = reinterpret_cast<uint64_t>(pc) -
                            reinterpret_cast<uint64_t>(info.dli_fbase);
    std::snprintf(buf, sizeof(buf), "%s+0x%llx", Basename(info.dli_fname),
                  static_cast<unsigned long long>(offset));
  } else {
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  reinterpret_cast<unsigned long long>(pc));
  }
  return buf;
}

// Frames that belong to the capture machinery itself, not the profiled
// program: everything up to and including the deepest such frame is
// stripped from the sample's stack, plus one more for the kernel signal
// trampoline (__restore_rt) that delivered the handler — it sits directly
// above the handler frames but rarely symbolizes, so it is stripped by
// position, not by name.
bool IsCaptureFrame(const std::string& name) {
  return name.find("Profiler::HandleSignal") != std::string::npos ||
         name.find("ProfilerSignalHandler") != std::string::npos;
}

std::string JsonEscapeName(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

ProfileReport AggregateProfile(const std::vector<ProfileSample>& samples) {
  ProfileReport report;
  std::unordered_map<void*, std::string> symbol_cache;
  const auto symbolize = [&symbol_cache](void* pc) -> const std::string& {
    auto it = symbol_cache.find(pc);
    if (it == symbol_cache.end()) {
      it = symbol_cache.emplace(pc, SymbolizePc(pc)).first;
    }
    return it->second;
  };

  struct Tally {
    uint64_t self = 0;
    uint64_t total = 0;
  };
  std::map<std::string, Tally> functions;
  std::map<std::string, Tally> spans;
  std::map<std::string, uint64_t> folded;

  std::vector<const std::string*> stack;  // outermost first
  for (const ProfileSample& sample : samples) {
    if (sample.frame_count == 0) continue;
    // Innermost-first walk to find the capture-machinery cutoff.
    size_t strip = 0;
    const size_t n = std::min<size_t>(sample.frame_count,
                                      ProfileSample::kMaxFrames);
    for (size_t i = 0; i < n; ++i) {
      if (IsCaptureFrame(symbolize(sample.frames[i]))) strip = i + 1;
      // The machinery sits at the top of the stack; stop scanning once
      // we're a few frames past anything that matched.
      if (i >= strip + 3) break;
    }
    // The frame directly above the handler is always the kernel's signal
    // trampoline (the handler's pushed return address); drop it too.
    if (strip > 0) ++strip;
    if (strip >= n) continue;

    stack.clear();
    for (size_t i = n; i > strip; --i) {
      stack.push_back(&symbolize(sample.frames[i - 1]));
    }

    ++report.sample_count;
    functions[*stack.back()].self++;
    // `total` counts each distinct name once per sample (recursion must
    // not double-count).
    for (size_t i = 0; i < stack.size(); ++i) {
      bool seen = false;
      for (size_t j = 0; j < i; ++j) {
        if (*stack[j] == *stack[i]) {
          seen = true;
          break;
        }
      }
      if (!seen) functions[*stack[i]].total++;
    }

    std::string key;
    for (size_t i = 0; i < stack.size(); ++i) {
      if (i > 0) key += ';';
      key += *stack[i];
    }
    folded[key]++;

    if (sample.span_count > 0) {
      ++report.span_attributed;
      const size_t span_n =
          std::min<size_t>(sample.span_count, ProfileSample::kMaxSpans);
      spans[sample.spans[span_n - 1]].self++;
      for (size_t i = 0; i < span_n; ++i) {
        bool seen = false;
        for (size_t j = 0; j < i; ++j) {
          if (std::strcmp(sample.spans[j], sample.spans[i]) == 0) {
            seen = true;
            break;
          }
        }
        if (!seen) spans[sample.spans[i]].total++;
      }
    }
  }

  for (const auto& [name, tally] : functions) {
    report.functions.push_back({name, tally.self, tally.total});
  }
  for (const auto& [name, tally] : spans) {
    report.spans.push_back({name, tally.self, tally.total});
  }
  for (const auto& [key, count] : folded) {
    report.folded += key;
    report.folded += ' ';
    report.folded += std::to_string(count);
    report.folded += '\n';
  }
  return report;
}

std::string ProfileJson(const ProfileReport& report, uint32_t hz,
                        double duration_seconds, uint64_t dropped,
                        uint64_t overruns) {
  char duration[32];
  std::snprintf(duration, sizeof(duration), "%.6f", duration_seconds);
  std::string out =
      "{\"schema\":\"mdz.profile.v1\",\"build\":" + BuildInfoJson() +
      ",\"hz\":" + std::to_string(hz) +
      ",\"duration_seconds\":" + duration +
      ",\"samples\":" + std::to_string(report.sample_count) +
      ",\"dropped\":" + std::to_string(dropped) +
      ",\"signal_overruns\":" + std::to_string(overruns) +
      ",\"span_attributed\":" + std::to_string(report.span_attributed) +
      ",\"functions\":[";
  bool first = true;
  for (const auto& entry : report.functions) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscapeName(entry.name) +
           "\",\"self\":" + std::to_string(entry.self) +
           ",\"total\":" + std::to_string(entry.total) + "}";
  }
  out += "],\"spans\":[";
  first = true;
  for (const auto& entry : report.spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscapeName(entry.name) +
           "\",\"self\":" + std::to_string(entry.self) +
           ",\"total\":" + std::to_string(entry.total) + "}";
  }
  out += "]}";
  return out;
}

Status WriteProfileFile(const ProfileReport& report, uint32_t hz,
                        double duration_seconds, uint64_t dropped,
                        uint64_t overruns, const std::string& path) {
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string content =
      json ? ProfileJson(report, hz, duration_seconds, dropped, overruns) + "\n"
           : report.folded;
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const bool flush_failed = std::fflush(file) != 0;
  std::fclose(file);
  if (written != content.size() || flush_failed) {
    return Status::Internal("short write: " + path);
  }
  return Status::OK();
}

}  // namespace mdz::obs

#endif  // MDZ_OBS_DISABLED
