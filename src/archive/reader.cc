#include "archive/reader.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "core/block_codec.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/byte_buffer.h"
#include "util/hash.h"
#include "util/unaligned.h"

namespace mdz::archive {

namespace {

using core::internal::BlockCodec;
using core::internal::PredictorState;

}  // namespace

struct ArchiveReader::Impl {
  int fd = -1;
  uint64_t file_size = 0;
  uint64_t footer_offset = 0;
  Footer footer;
  std::array<core::FieldStreamHeader, 3> headers;
  std::array<std::vector<size_t>, 3> axis_frames;  // frame ids, snapshot order
  std::vector<size_t> axis_pos;  // frame id -> position within its axis

  // Decoded frames live in `cache` (shared cross-archive, or the reader's
  // private `owned_cache`) under `generation`. Null cache = decode-through.
  FrameCache* cache = nullptr;
  std::unique_ptr<FrameCache> owned_cache;
  uint64_t generation = 0;

  std::mutex reference_mu;
  std::array<std::vector<double>, 3> reference;
  std::array<bool, 3> reference_loaded = {false, false, false};

  std::atomic<uint64_t> frames_decoded{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> reference_decodes{0};

  ~Impl() {
    if (fd >= 0) ::close(fd);
  }

  Status ReadAt(uint64_t offset, std::span<uint8_t> out) const {
    size_t done = 0;
    while (done < out.size()) {
      const ssize_t got = ::pread(fd, out.data() + done, out.size() - done,
                                  static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::Internal("archive read failed");
      }
      if (got == 0) return Status::Corruption("archive file truncated");
      done += static_cast<size_t>(got);
    }
    return Status::OK();
  }

  // Decodes (or copies) the axis's embedded reference snapshot once.
  Status EnsureReference(int axis) {
    std::lock_guard<std::mutex> lock(reference_mu);
    if (reference_loaded[axis]) return Status::OK();
    const AxisStreamInfo& info = footer.axes[axis];
    const core::FieldStreamHeader& header = headers[axis];
    switch (info.ref_kind) {
      case ReferenceKind::kRaw:
        reference[axis].resize(header.num_particles);
        std::memcpy(reference[axis].data(), info.reference.data(),
                    info.reference.size());
        break;
      case ReferenceKind::kEncoded: {
        const BlockCodec codec(header.abs_eb, header.quantization_scale,
                               header.layout);
        PredictorState state;
        std::vector<std::vector<double>> decoded;
        const Status s = codec.Decode(info.reference, header.num_particles,
                                      &state, &decoded);
        if (!s.ok() || decoded.size() != 1) {
          return Status::Corruption("damaged reference frame for axis " +
                                    std::to_string(axis));
        }
        reference[axis] = std::move(decoded[0]);
        break;
      }
      case ReferenceKind::kFirstFrame: {
        // No embedded bytes: the reference is snapshot 0 of the axis's first
        // frame, decoded once from an empty state (exactly how block 0 of
        // the v1 stream defines it). Counted as a reference decode, not a
        // frame decode — random-access reads stay O(covering frames).
        if (axis_frames[axis].empty()) {
          return Status::Corruption("axis " + std::to_string(axis) +
                                    " has no frame to derive a reference");
        }
        const size_t id = axis_frames[axis][0];
        const FrameInfo& f = footer.frames[id];
        std::vector<uint8_t> bytes(f.frame_size);
        MDZ_RETURN_IF_ERROR(ReadAt(f.offset, bytes));
        std::span<const uint8_t> payload;
        MDZ_RETURN_IF_ERROR(ParseFrameRecord(bytes, f, id, &payload));
        const BlockCodec codec(header.abs_eb, header.quantization_scale,
                               header.layout);
        PredictorState state;
        std::vector<std::vector<double>> decoded;
        const Status s =
            codec.Decode(payload, header.num_particles, &state, &decoded);
        if (!s.ok()) {
          return Status::Corruption("frame " + std::to_string(id) + ": " +
                                    s.message());
        }
        if (!state.has_initial()) {
          return Status::Corruption("frame " + std::to_string(id) +
                                    " decoded no reference snapshot");
        }
        reference[axis] = std::move(state.initial);
        break;
      }
      case ReferenceKind::kNone:
        return Status::Corruption("axis " + std::to_string(axis) +
                                  " has no reference frame");
    }
    reference_loaded[axis] = true;
    reference_decodes.fetch_add(1, std::memory_order_relaxed);
    MDZ_COUNTER_ADD("archive/reference_decodes", 1);
    return Status::OK();
  }

  // Reads, CRC-checks and decodes one frame payload. `prev` is the decoded
  // predecessor frame (required for TI frames past axis position 0).
  Result<FramePtr> DecodeFrame(size_t id, const FramePtr& prev) {
    const FrameInfo& f = footer.frames[id];
    std::vector<uint8_t> bytes(f.frame_size);
    MDZ_RETURN_IF_ERROR(ReadAt(f.offset, bytes));
    std::span<const uint8_t> payload;
    MDZ_RETURN_IF_ERROR(ParseFrameRecord(bytes, f, id, &payload));

    // Frame 0 of an axis decodes from an empty state, exactly like block 0
    // of the v1 stream; later frames seed only what their method consumes.
    PredictorState state;
    if (axis_pos[id] > 0) {
      if (f.method == core::Method::kMT ||
          f.method == core::Method::kLorenzo2D ||
          f.method == core::Method::kBitAdaptive) {
        MDZ_RETURN_IF_ERROR(EnsureReference(f.axis));
        {
          std::lock_guard<std::mutex> lock(reference_mu);
          state.initial = reference[f.axis];
        }
      } else if (f.method == core::Method::kTI) {
        if (prev == nullptr || prev->snapshots.empty()) {
          return Status::Internal("TI frame decoded without predecessor");
        }
        state.prev_last = prev->snapshots.back();
      }
    }

    const core::FieldStreamHeader& header = headers[f.axis];
    const BlockCodec codec(header.abs_eb, header.quantization_scale,
                           header.layout);
    auto decoded = std::make_shared<DecodedFrame>();
    const Status s =
        codec.Decode(payload, header.num_particles, &state, &decoded->snapshots);
    if (!s.ok()) {
      return Status::Corruption("frame " + std::to_string(id) + ": " +
                                s.message());
    }
    if (decoded->snapshots.size() != f.s_count) {
      return Status::Corruption("frame " + std::to_string(id) +
                                " decoded to unexpected snapshot count");
    }
    frames_decoded.fetch_add(1, std::memory_order_relaxed);
    MDZ_COUNTER_ADD("archive/frames_decoded", 1);
    return FramePtr(std::move(decoded));
  }

  // Returns the cached decoded frame, or null. Internal dependency lookup;
  // does not count toward hit/miss stats.
  FramePtr CachePeek(size_t id) {
    if (cache == nullptr) return nullptr;
    return cache->Peek(generation, id);
  }

  // Cache lookup-or-decode for one frame. A null cache disables caching
  // entirely (decode-through): every request decodes and nothing is
  // retained.
  Result<FramePtr> AcquireFrame(size_t id, const FramePtr& prev) {
    if (cache == nullptr) {
      cache_misses.fetch_add(1, std::memory_order_relaxed);
      MDZ_COUNTER_ADD("archive/cache_miss", 1);
      return DecodeFrame(id, prev);
    }
    bool hit = false;
    auto result = cache->GetOrDecode(
        generation, id, [&] { return DecodeFrame(id, prev); }, &hit);
    if (!result.ok()) return result;
    if (hit) {
      cache_hits.fetch_add(1, std::memory_order_relaxed);
      MDZ_COUNTER_ADD("archive/cache_hit", 1);
    } else {
      cache_misses.fetch_add(1, std::memory_order_relaxed);
      MDZ_COUNTER_ADD("archive/cache_miss", 1);
    }
    return result;
  }

  // Decoded frame `target`, resolving TI predecessor chains through the
  // cache: walk back until a frame that decodes standalone (non-TI or axis
  // position 0) or a cached predecessor, then decode forward. The chain's
  // shared_ptrs are held locally, so eviction mid-walk cannot strand a TI
  // decode without its predecessor.
  Result<FramePtr> GetFrame(size_t target) {
    std::vector<size_t> chain = {target};
    FramePtr prev;  // decoded predecessor of chain.back(), when cached
    while (true) {
      const size_t id = chain.back();
      const FrameInfo& f = footer.frames[id];
      if (f.method != core::Method::kTI || axis_pos[id] == 0) break;
      const size_t prev_id = axis_frames[f.axis][axis_pos[id] - 1];
      prev = CachePeek(prev_id);
      if (prev != nullptr) break;
      chain.push_back(prev_id);
    }
    FramePtr result;
    for (size_t i = chain.size(); i-- > 0;) {
      MDZ_ASSIGN_OR_RETURN(result, AcquireFrame(chain[i], prev));
      prev = result;
    }
    return result;
  }

  Result<std::vector<core::Snapshot>> ReadRange(size_t first, size_t count,
                                                size_t first_particle,
                                                size_t particle_count) {
    MDZ_SPAN_ARGS("archive_extract", "first", first, "count", count);
    const size_t total = footer.num_snapshots;
    const size_t n = footer.num_particles;
    if (first > total || count > total - first) {
      return Status::OutOfRange("snapshot range beyond end of archive");
    }
    if (first_particle > n || particle_count > n - first_particle) {
      return Status::OutOfRange("particle range beyond particle count");
    }
    std::vector<core::Snapshot> out(count);
    for (int axis = 0; axis < 3; ++axis) {
      const std::vector<size_t>& ids = axis_frames[axis];
      // First frame whose range reaches past `first`.
      size_t lo = 0, hi = ids.size();
      while (lo < hi) {
        const size_t mid = (lo + hi) / 2;
        const FrameInfo& f = footer.frames[ids[mid]];
        if (f.first_snapshot + f.s_count <= first) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      for (size_t k = lo; k < ids.size(); ++k) {
        const FrameInfo& f = footer.frames[ids[k]];
        if (f.first_snapshot >= first + count) break;
        MDZ_ASSIGN_OR_RETURN(const FramePtr frame, GetFrame(ids[k]));
        const size_t begin = std::max<size_t>(first, f.first_snapshot);
        const size_t end =
            std::min<size_t>(first + count, f.first_snapshot + f.s_count);
        for (size_t g = begin; g < end; ++g) {
          const std::vector<double>& src =
              frame->snapshots[g - f.first_snapshot];
          out[g - first].axes[axis].assign(
              src.begin() + first_particle,
              src.begin() + first_particle + particle_count);
        }
      }
    }
    return out;
  }
};

ArchiveReader::ArchiveReader() : impl_(new Impl()) {}
ArchiveReader::~ArchiveReader() = default;

Result<std::unique_ptr<ArchiveReader>> ArchiveReader::Open(
    const std::string& path, const ReaderOptions& options) {
  auto reader = std::unique_ptr<ArchiveReader>(new ArchiveReader());
  Impl& impl = *reader->impl_;
  if (options.cache != nullptr) {
    impl.cache = options.cache;
    impl.generation = options.generation;
  } else if (options.cache_frames != 0) {
    FrameCache::Options cache_options;
    cache_options.frame_budget = std::max<size_t>(options.cache_frames, 2);
    impl.owned_cache = std::make_unique<FrameCache>(cache_options);
    impl.cache = impl.owned_cache.get();
    impl.generation = impl.cache->RegisterGeneration();
  }

  impl.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (impl.fd < 0) {
    return Status::Internal("cannot open for reading: " + path);
  }
  struct stat st;
  if (::fstat(impl.fd, &st) != 0 || st.st_size < 0) {
    return Status::Internal("cannot stat: " + path);
  }
  impl.file_size = static_cast<uint64_t>(st.st_size);
  if (impl.file_size < kFileHeaderBytes + kFileTailBytes) {
    return Status::Corruption("archive too small: " + path);
  }

  uint8_t head[kFileHeaderBytes];
  MDZ_RETURN_IF_ERROR(impl.ReadAt(0, head));
  if (std::memcmp(head, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not an MDZ archive: " + path);
  }
  if (head[sizeof(kMagic)] == kVersionV1) {
    return Status::InvalidArgument(
        "v1 archive has no frame index; open via io::ReadArchive or migrate "
        "with `mdz repack`: " +
        path);
  }
  if (head[sizeof(kMagic)] != kVersionV2) {
    return Status::Corruption("unsupported archive version");
  }

  // Locate and verify the footer before trusting any of it.
  uint8_t tail[kFileTailBytes];
  MDZ_RETURN_IF_ERROR(impl.ReadAt(impl.file_size - kFileTailBytes, tail));
  if (std::memcmp(tail + 16, kTrailerMagic, sizeof(kTrailerMagic)) != 0) {
    return Status::Corruption("archive trailer missing or damaged");
  }
  const uint64_t footer_crc = LoadU<uint64_t>(tail);
  const uint64_t footer_len = LoadU<uint64_t>(tail + 8);
  if (footer_len > impl.file_size - kFileHeaderBytes - kFileTailBytes) {
    return Status::Corruption("footer length out of bounds");
  }
  impl.footer_offset = impl.file_size - kFileTailBytes - footer_len;
  std::vector<uint8_t> footer_bytes(footer_len);
  MDZ_RETURN_IF_ERROR(impl.ReadAt(impl.footer_offset, footer_bytes));
  if (Fnv1a64(footer_bytes) != footer_crc) {
    return Status::Corruption("archive footer checksum mismatch");
  }
  MDZ_ASSIGN_OR_RETURN(impl.footer, ParseFooter(footer_bytes));
  MDZ_RETURN_IF_ERROR(ValidateFooter(impl.footer, impl.footer_offset));

  for (int axis = 0; axis < 3; ++axis) {
    MDZ_ASSIGN_OR_RETURN(
        impl.headers[axis],
        core::ParseFieldStreamHeader(impl.footer.axes[axis].stream_header));
  }
  impl.axis_pos.resize(impl.footer.frames.size());
  for (size_t i = 0; i < impl.footer.frames.size(); ++i) {
    const uint8_t axis = impl.footer.frames[i].axis;
    impl.axis_pos[i] = impl.axis_frames[axis].size();
    impl.axis_frames[axis].push_back(i);
  }
  return reader;
}

const Footer& ArchiveReader::footer() const { return impl_->footer; }
const std::string& ArchiveReader::name() const { return impl_->footer.name; }
const std::array<double, 3>& ArchiveReader::box() const {
  return impl_->footer.box;
}
size_t ArchiveReader::num_snapshots() const {
  return impl_->footer.num_snapshots;
}
size_t ArchiveReader::num_particles() const {
  return impl_->footer.num_particles;
}

Result<std::vector<core::Snapshot>> ArchiveReader::ReadSnapshots(
    size_t first, size_t count) {
  return impl_->ReadRange(first, count, 0, impl_->footer.num_particles);
}

Result<std::vector<core::Snapshot>> ArchiveReader::ReadParticles(
    size_t first, size_t count, size_t first_particle, size_t particle_count) {
  return impl_->ReadRange(first, count, first_particle, particle_count);
}

Result<core::CompressedTrajectory> ArchiveReader::Reassemble() {
  MDZ_SPAN("archive_reassemble");
  Impl& impl = *impl_;
  core::CompressedTrajectory out;
  for (int axis = 0; axis < 3; ++axis) {
    ByteWriter w;
    w.PutBytes(impl.footer.axes[axis].stream_header);
    for (const size_t id : impl.axis_frames[axis]) {
      const FrameInfo& f = impl.footer.frames[id];
      std::vector<uint8_t> bytes(f.frame_size);
      MDZ_RETURN_IF_ERROR(impl.ReadAt(f.offset, bytes));
      std::span<const uint8_t> payload;
      MDZ_RETURN_IF_ERROR(ParseFrameRecord(bytes, f, id, &payload));
      w.PutBlob(payload);
    }
    out.axes[axis] = w.TakeBytes();
  }
  return out;
}

ReaderStats ArchiveReader::stats() const {
  ReaderStats s;
  s.frames_decoded = impl_->frames_decoded.load(std::memory_order_relaxed);
  s.cache_hits = impl_->cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = impl_->cache_misses.load(std::memory_order_relaxed);
  s.reference_decodes =
      impl_->reference_decodes.load(std::memory_order_relaxed);
  return s;
}

bool SniffArchiveVersion(const std::string& path, uint8_t* version) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  uint8_t head[kFileHeaderBytes];
  const bool ok = std::fread(head, 1, sizeof(head), f) == sizeof(head) &&
                  std::memcmp(head, kMagic, sizeof(kMagic)) == 0;
  std::fclose(f);
  if (!ok) return false;
  *version = head[sizeof(kMagic)];
  return true;
}

}  // namespace mdz::archive
