#ifndef MDZ_ARCHIVE_READER_H_
#define MDZ_ARCHIVE_READER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "archive/format.h"
#include "archive/frame_cache.h"
#include "core/mdz.h"
#include "core/trajectory.h"

namespace mdz::archive {

struct ReaderOptions {
  // Decoded-frame LRU cache capacity, in frames, for the reader's private
  // cache (used only when `cache` is null). 0 disables caching: every
  // request decodes through (TI chains still replay correctly — the chain
  // holds its decoded predecessors locally). Nonzero values are clamped to
  // >= 2 so a TI frame and its predecessor can coexist while a chain
  // replays.
  size_t cache_frames = 32;

  // Shared cross-archive frame cache (not owned; must outlive the reader).
  // When set, decoded frames live in this cache under `generation` and
  // `cache_frames` is ignored — the shared cache's own budgets apply, so
  // many concurrent readers share one global memory ceiling instead of each
  // holding a private unbounded-in-aggregate LRU.
  FrameCache* cache = nullptr;

  // Key space within the shared cache. Callers sharing a cache MUST pass a
  // unique id from FrameCache::RegisterGeneration() per opened archive
  // incarnation, and bump it (plus InvalidateGeneration) when the file is
  // resealed, so stale frames are never served across an append.
  uint64_t generation = 0;
};

// Per-reader access accounting (always maintained; the archive/* counters in
// obs::MetricsRegistry mirror these when telemetry is enabled).
struct ReaderStats {
  uint64_t frames_decoded = 0;    // frame payloads actually decoded
  uint64_t cache_hits = 0;        // frame requests served from the cache
  uint64_t cache_misses = 0;      // frame requests that had to decode
  uint64_t reference_decodes = 0; // embedded reference snapshots decoded
};

// Random-access reader over a v2 archive. Open() verifies the footer index
// (trailer, checksum, structural invariants) up front; frame payloads are
// CRC-checked lazily, only when a read actually touches them — a corrupt
// frame fails only the reads that need it, as Corruption naming the frame.
//
// All read methods are safe to call concurrently from multiple threads: file
// access uses positioned reads and the decoded-frame cache hands out shared
// immutable frames.
class ArchiveReader {
 public:
  static Result<std::unique_ptr<ArchiveReader>> Open(
      const std::string& path, const ReaderOptions& options = {});
  ~ArchiveReader();

  ArchiveReader(const ArchiveReader&) = delete;
  ArchiveReader& operator=(const ArchiveReader&) = delete;

  const Footer& footer() const;
  const std::string& name() const;
  const std::array<double, 3>& box() const;
  size_t num_snapshots() const;
  size_t num_particles() const;

  // Decodes snapshots [first, first + count), touching only the frames whose
  // snapshot ranges overlap it (plus, per axis, the embedded reference for
  // MT frames and the predecessor chain for TI frames).
  Result<std::vector<core::Snapshot>> ReadSnapshots(size_t first,
                                                    size_t count);

  // Same snapshot range, but each returned axis holds only particles
  // [first_particle, first_particle + particle_count).
  Result<std::vector<core::Snapshot>> ReadParticles(size_t first, size_t count,
                                                    size_t first_particle,
                                                    size_t particle_count);

  // Reconstructs the per-axis v1 field streams byte-identical to the streams
  // the archive was built from (CRC-checks every frame; no payload decoding).
  // This is how v2 archives open through io::ReadArchive and how `mdz
  // repack` migrates without re-encoding.
  Result<core::CompressedTrajectory> Reassemble();

  ReaderStats stats() const;

 private:
  ArchiveReader();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// True when the file at `path` starts with the archive magic and the given
// version byte. I/O errors read as false.
bool SniffArchiveVersion(const std::string& path, uint8_t* version);

}  // namespace mdz::archive

#endif  // MDZ_ARCHIVE_READER_H_
