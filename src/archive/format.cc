#include "archive/format.h"

#include <algorithm>
#include <cstring>

#include "util/hash.h"
#include "util/unaligned.h"

namespace mdz::archive {

namespace {

bool ValidConcreteMethod(uint8_t byte) {
  switch (static_cast<core::Method>(byte)) {
    case core::Method::kVQ:
    case core::Method::kVQT:
    case core::Method::kMT:
    case core::Method::kTI:
    case core::Method::kLorenzo2D:
    case core::Method::kBitAdaptive:
      return true;
    case core::Method::kAdaptive:
      return false;
  }
  return false;
}

std::string FrameLabel(size_t frame_id) {
  return "frame " + std::to_string(frame_id);
}

}  // namespace

void SerializeFooter(const Footer& footer, ByteWriter* w) {
  w->PutVarint(footer.name.size());
  w->PutBytes(footer.name.data(), footer.name.size());
  for (double b : footer.box) w->Put<double>(b);
  w->PutVarint(footer.num_snapshots);
  w->PutVarint(footer.num_particles);
  for (const AxisStreamInfo& axis : footer.axes) {
    w->PutBlob(axis.stream_header);
    w->Put<uint8_t>(axis.chained ? 1 : 0);
    w->Put<uint8_t>(static_cast<uint8_t>(axis.ref_kind));
    w->PutBlob(axis.reference);
  }
  w->PutVarint(footer.frames.size());
  for (const FrameInfo& f : footer.frames) {
    w->Put<uint8_t>(f.axis);
    w->Put<uint8_t>(static_cast<uint8_t>(f.method));
    w->PutVarint(f.offset);
    w->PutVarint(f.frame_size);
    w->PutVarint(f.payload_size);
    w->PutVarint(f.first_snapshot);
    w->PutVarint(f.s_count);
    w->Put<uint64_t>(f.crc);
  }
  w->PutVarint(footer.build_info_json.size());
  w->PutBytes(footer.build_info_json.data(), footer.build_info_json.size());
}

Result<Footer> ParseFooter(std::span<const uint8_t> bytes) {
  ByteReader r(bytes);
  Footer footer;
  uint64_t name_len = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&name_len));
  if (name_len > 4096) return Status::Corruption("footer name too long");
  footer.name.resize(name_len);
  MDZ_RETURN_IF_ERROR(r.GetBytes(footer.name.data(), name_len));
  for (double& b : footer.box) MDZ_RETURN_IF_ERROR(r.Get(&b));
  MDZ_RETURN_IF_ERROR(r.GetVarint(&footer.num_snapshots));
  MDZ_RETURN_IF_ERROR(r.GetVarint(&footer.num_particles));
  for (AxisStreamInfo& axis : footer.axes) {
    std::span<const uint8_t> blob;
    MDZ_RETURN_IF_ERROR(r.GetBlob(&blob));
    axis.stream_header.assign(blob.begin(), blob.end());
    uint8_t chained = 0;
    MDZ_RETURN_IF_ERROR(r.Get(&chained));
    if (chained > 1) return Status::Corruption("bad chained flag in footer");
    axis.chained = chained != 0;
    uint8_t kind = 0;
    MDZ_RETURN_IF_ERROR(r.Get(&kind));
    if (kind > static_cast<uint8_t>(ReferenceKind::kFirstFrame)) {
      return Status::Corruption("bad reference kind in footer");
    }
    axis.ref_kind = static_cast<ReferenceKind>(kind);
    MDZ_RETURN_IF_ERROR(r.GetBlob(&blob));
    axis.reference.assign(blob.begin(), blob.end());
  }
  uint64_t frame_count = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&frame_count));
  // A frame index entry is at least 15 bytes; anything claiming more frames
  // than the footer could hold is corrupt (and must not drive a giant
  // reserve()).
  if (frame_count > bytes.size() / 15) {
    return Status::Corruption("footer frame count exceeds footer size");
  }
  footer.frames.reserve(frame_count);
  for (uint64_t i = 0; i < frame_count; ++i) {
    FrameInfo f;
    MDZ_RETURN_IF_ERROR(r.Get(&f.axis));
    uint8_t method = 0;
    MDZ_RETURN_IF_ERROR(r.Get(&method));
    if (!ValidConcreteMethod(method)) {
      return Status::Corruption("bad method byte in footer " + FrameLabel(i));
    }
    f.method = static_cast<core::Method>(method);
    MDZ_RETURN_IF_ERROR(r.GetVarint(&f.offset));
    MDZ_RETURN_IF_ERROR(r.GetVarint(&f.frame_size));
    MDZ_RETURN_IF_ERROR(r.GetVarint(&f.payload_size));
    MDZ_RETURN_IF_ERROR(r.GetVarint(&f.first_snapshot));
    MDZ_RETURN_IF_ERROR(r.GetVarint(&f.s_count));
    MDZ_RETURN_IF_ERROR(r.Get(&f.crc));
    footer.frames.push_back(f);
  }
  uint64_t build_len = 0;
  MDZ_RETURN_IF_ERROR(r.GetVarint(&build_len));
  if (build_len > 64 * 1024) {
    return Status::Corruption("footer build info too long");
  }
  footer.build_info_json.resize(build_len);
  MDZ_RETURN_IF_ERROR(r.GetBytes(footer.build_info_json.data(), build_len));
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after footer");
  return footer;
}

Status ValidateFooter(const Footer& footer, uint64_t footer_offset) {
  // Axis stream headers must parse and agree on the particle count.
  bool has_ti[3] = {false, false, false};
  for (int axis = 0; axis < 3; ++axis) {
    const AxisStreamInfo& info = footer.axes[axis];
    MDZ_ASSIGN_OR_RETURN(const core::FieldStreamHeader header,
                         core::ParseFieldStreamHeader(info.stream_header));
    if (header.header_bytes != info.stream_header.size()) {
      return Status::Corruption("axis stream header has trailing bytes");
    }
    if (header.num_particles != footer.num_particles) {
      return Status::Corruption("axis particle count disagrees with footer");
    }
  }

  // Per-axis snapshot coverage: frames must appear in snapshot order and
  // tile [0, num_snapshots) without gaps or overlaps.
  uint64_t next_snapshot[3] = {0, 0, 0};
  for (size_t i = 0; i < footer.frames.size(); ++i) {
    const FrameInfo& f = footer.frames[i];
    if (f.axis > 2) {
      return Status::Corruption("bad axis in footer " + FrameLabel(i));
    }
    if (f.s_count == 0) {
      return Status::Corruption("zero-snapshot " + FrameLabel(i));
    }
    if (f.first_snapshot != next_snapshot[f.axis]) {
      return Status::Corruption("snapshot range gap at " + FrameLabel(i));
    }
    next_snapshot[f.axis] = f.first_snapshot + f.s_count;
    if (f.method == core::Method::kTI) has_ti[f.axis] = true;
    // Byte range: inside the frame region, big enough for its own payload
    // (axis + method + two 1-byte varints + payload blob + crc at minimum).
    if (f.offset < kFileHeaderBytes || f.frame_size < f.payload_size ||
        f.frame_size > footer_offset ||
        f.offset > footer_offset - f.frame_size) {
      return Status::Corruption("byte range out of bounds for " +
                                FrameLabel(i));
    }
  }
  for (int axis = 0; axis < 3; ++axis) {
    if (next_snapshot[axis] != footer.num_snapshots) {
      return Status::Corruption("axis " + std::to_string(axis) +
                                " does not cover all snapshots");
    }
    const AxisStreamInfo& info = footer.axes[axis];
    if (has_ti[axis] && !info.chained) {
      return Status::Corruption("TI frames on an unchained axis");
    }
    const bool has_frames = footer.num_snapshots > 0;
    if (has_frames && info.ref_kind == ReferenceKind::kNone) {
      return Status::Corruption("missing reference for axis " +
                                std::to_string(axis));
    }
    if (info.ref_kind == ReferenceKind::kRaw &&
        info.reference.size() != footer.num_particles * sizeof(double)) {
      return Status::Corruption("raw reference size mismatch for axis " +
                                std::to_string(axis));
    }
    if (info.ref_kind == ReferenceKind::kEncoded && info.reference.empty()) {
      return Status::Corruption("empty encoded reference for axis " +
                                std::to_string(axis));
    }
    if (info.ref_kind == ReferenceKind::kFirstFrame &&
        !info.reference.empty()) {
      return Status::Corruption("first-frame reference carries bytes, axis " +
                                std::to_string(axis));
    }
  }

  // Frames must not overlap each other.
  std::vector<const FrameInfo*> by_offset;
  by_offset.reserve(footer.frames.size());
  for (const FrameInfo& f : footer.frames) by_offset.push_back(&f);
  std::sort(by_offset.begin(), by_offset.end(),
            [](const FrameInfo* a, const FrameInfo* b) {
              return a->offset < b->offset;
            });
  for (size_t i = 1; i < by_offset.size(); ++i) {
    if (by_offset[i - 1]->offset + by_offset[i - 1]->frame_size >
        by_offset[i]->offset) {
      return Status::Corruption("overlapping frame byte ranges");
    }
  }
  return Status::OK();
}

FrameInfo BuildFrameRecord(uint8_t axis, core::Method method,
                           uint64_t first_snapshot, uint64_t s_count,
                           std::span<const uint8_t> payload, uint64_t offset,
                           ByteWriter* w) {
  const size_t start = w->size();
  w->Put<uint8_t>(axis);
  w->Put<uint8_t>(static_cast<uint8_t>(method));
  w->PutVarint(first_snapshot);
  w->PutVarint(s_count);
  w->PutBlob(payload);
  const uint64_t crc = Fnv1a64(std::span<const uint8_t>(
      w->bytes().data() + start, w->size() - start));
  w->Put<uint64_t>(crc);

  FrameInfo info;
  info.axis = axis;
  info.method = method;
  info.offset = offset;
  info.frame_size = w->size() - start;
  info.payload_size = payload.size();
  info.first_snapshot = first_snapshot;
  info.s_count = s_count;
  info.crc = crc;
  return info;
}

Status ParseFrameRecord(std::span<const uint8_t> bytes, const FrameInfo& info,
                        size_t frame_id, std::span<const uint8_t>* payload) {
  if (bytes.size() != info.frame_size || bytes.size() < 8) {
    return Status::Corruption("short read of " + FrameLabel(frame_id));
  }
  const size_t body_size = bytes.size() - 8;
  const uint64_t stored_crc = LoadU<uint64_t>(bytes.data() + body_size);
  if (stored_crc != info.crc ||
      Fnv1a64(bytes.subspan(0, body_size)) != info.crc) {
    return Status::Corruption("CRC mismatch in " + FrameLabel(frame_id));
  }
  ByteReader r(bytes.subspan(0, body_size));
  uint8_t axis = 0, method = 0;
  uint64_t first_snapshot = 0, s_count = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&axis));
  MDZ_RETURN_IF_ERROR(r.Get(&method));
  MDZ_RETURN_IF_ERROR(r.GetVarint(&first_snapshot));
  MDZ_RETURN_IF_ERROR(r.GetVarint(&s_count));
  std::span<const uint8_t> blob;
  MDZ_RETURN_IF_ERROR(r.GetBlob(&blob));
  if (axis != info.axis || method != static_cast<uint8_t>(info.method) ||
      first_snapshot != info.first_snapshot || s_count != info.s_count ||
      blob.size() != info.payload_size || !r.AtEnd()) {
    return Status::Corruption(FrameLabel(frame_id) +
                              " disagrees with footer index");
  }
  *payload = blob;
  return Status::OK();
}

}  // namespace mdz::archive
