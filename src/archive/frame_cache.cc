#include "archive/frame_cache.h"

#include <algorithm>

#include "obs/metrics.h"

namespace mdz::archive {

namespace {

constexpr size_t kSketchSlots = 4096;  // power of two
constexpr uint8_t kSketchMax = 15;     // 4-bit saturating counters
constexpr int kSketchHashes = 4;

// splitmix64 finalizer: cheap, well-distributed mix for sketch indexing.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

size_t FrameCache::KeyHash::operator()(const Key& k) const {
  return static_cast<size_t>(Mix64(k.generation * 0x100000001b3ULL ^ k.frame_id));
}

FrameCache::FrameCache(const Options& options)
    : byte_budget_(options.byte_budget),
      frame_budget_(options.frame_budget),
      admission_(options.admission),
      bytes_gauge_(options.bytes_gauge),
      sketch_(admission_ ? kSketchSlots : 0, 0) {}

FrameCache::~FrameCache() = default;

uint64_t FrameCache::RegisterGeneration() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_generation_++;
}

void FrameCache::InvalidateGeneration(uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.generation == generation) {
      bytes_in_use_ -= it->second.bytes;
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
      ++evictions_;
    } else {
      ++it;
    }
  }
  UpdateGaugeLocked();
}

void FrameCache::RecordAccessLocked(const Key& key) {
  if (sketch_.empty()) return;
  // Age the sketch by halving once enough accesses accumulate, so stale
  // popularity decays instead of pinning long-gone keys as "hot".
  if (++sketch_ops_ >= sketch_.size() * 8) {
    sketch_ops_ = 0;
    for (uint8_t& c : sketch_) c >>= 1;
  }
  const uint64_t base = Mix64(key.generation ^ (key.frame_id << 17));
  for (int i = 0; i < kSketchHashes; ++i) {
    const size_t idx = Mix64(base + i) & (sketch_.size() - 1);
    if (sketch_[idx] < kSketchMax) ++sketch_[idx];
  }
}

uint32_t FrameCache::EstimateLocked(const Key& key) const {
  if (sketch_.empty()) return 0;
  const uint64_t base = Mix64(key.generation ^ (key.frame_id << 17));
  uint32_t est = kSketchMax;
  for (int i = 0; i < kSketchHashes; ++i) {
    const size_t idx = Mix64(base + i) & (sketch_.size() - 1);
    est = std::min<uint32_t>(est, sketch_[idx]);
  }
  return est;
}

void FrameCache::EraseLocked(const Key& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  bytes_in_use_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void FrameCache::EvictOverBudgetLocked() {
  while (!lru_.empty() &&
         ((byte_budget_ != 0 && bytes_in_use_ > byte_budget_) ||
          (frame_budget_ != 0 && entries_.size() > frame_budget_))) {
    // In-flight decoders keep the victim's Slot (and frame) alive via their
    // shared_ptr; only the cache's reference goes away.
    EraseLocked(lru_.back());
    ++evictions_;
  }
}

void FrameCache::PublishLocked(const Key& key,
                               const std::shared_ptr<Slot>& slot,
                               size_t frame_bytes) {
  auto it = entries_.find(key);
  // The entry may have been evicted (or its generation invalidated) while we
  // decoded, or replaced by a successor slot; in either case the result is
  // returned to the caller but not retained.
  if (it == entries_.end() || it->second.slot != slot) return;
  if (admission_ && byte_budget_ != 0 &&
      bytes_in_use_ + frame_bytes > byte_budget_ && !lru_.empty()) {
    // Admission check: would inserting evict a frame hotter than this one?
    // Compare against the coldest resident entry other than the candidate.
    auto victim = std::prev(lru_.end());
    if (*victim == key && victim != lru_.begin()) --victim;
    if (!(*victim == key) &&
        EstimateLocked(key) < EstimateLocked(*victim)) {
      EraseLocked(key);
      ++admission_rejects_;
      UpdateGaugeLocked();
      return;
    }
  }
  it->second.bytes = frame_bytes;
  bytes_in_use_ += frame_bytes;
  EvictOverBudgetLocked();
  // A frame larger than the whole budget never fits: the loop above already
  // dropped it (and possibly everything else), keeping the ceiling hard.
  UpdateGaugeLocked();
}

void FrameCache::UpdateGaugeLocked() {
  if (bytes_gauge_ != nullptr) {
    bytes_gauge_->Set(static_cast<int64_t>(bytes_in_use_));
  }
}

Result<FramePtr> FrameCache::GetOrDecode(
    uint64_t generation, size_t frame_id,
    const std::function<Result<FramePtr>()>& decode, bool* hit) {
  const Key key{generation, frame_id};
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    RecordAccessLocked(key);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      slot = it->second.slot;
    } else {
      slot = std::make_shared<Slot>();
      lru_.push_front(key);
      entries_[key] = Entry{slot, lru_.begin(), 0};
      // Frame-count budget is enforced at insert (entries are equal-weight);
      // the byte budget waits for the decode to learn the frame's size.
      if (frame_budget_ != 0) EvictOverBudgetLocked();
    }
  }
  std::unique_lock<std::mutex> slot_lock(slot->mu);
  if (slot->data != nullptr) {
    if (hit != nullptr) *hit = true;
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_;
    return slot->data;
  }
  if (hit != nullptr) *hit = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
  }
  auto decoded = decode();
  if (!decoded.ok()) {
    // Leave the slot empty; a later request retries the decode.
    return decoded.status();
  }
  slot->data = decoded.value();
  {
    std::lock_guard<std::mutex> lock(mu_);
    PublishLocked(key, slot, slot->data->byte_size());
  }
  return decoded;
}

FramePtr FrameCache::Peek(uint64_t generation, size_t frame_id) {
  const Key key{generation, frame_id};
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    slot = it->second.slot;
  }
  std::lock_guard<std::mutex> lock(slot->mu);
  return slot->data;
}

FrameCache::Stats FrameCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.admission_rejects = admission_rejects_;
  s.bytes_in_use = bytes_in_use_;
  s.frames_in_use = entries_.size();
  return s;
}

size_t FrameCache::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_in_use_;
}

}  // namespace mdz::archive
