#include "archive/writer.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "archive/reader.h"
#include "core/block_codec.h"
#include "core/thread_pool.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "util/byte_buffer.h"
#include "util/hash.h"

namespace mdz::archive {

namespace {

using core::internal::BlockCodec;
using core::internal::EncodedBlock;
using core::internal::LevelModel;
using core::internal::PredictorState;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// Sequentially builds a v2 file: header, then frames as they arrive, then
// the footer + tail on Seal(). Frame index entries accumulate in footer().
class V2FileBuilder {
 public:
  static Result<V2FileBuilder> Create(const std::string& path) {
    V2FileBuilder b;
    b.file_.reset(std::fopen(path.c_str(), "wb"));
    if (b.file_ == nullptr) {
      return Status::Internal("cannot open for writing: " + path);
    }
    uint8_t header[kFileHeaderBytes];
    std::memcpy(header, kMagic, sizeof(kMagic));
    header[sizeof(kMagic)] = kVersionV2;
    MDZ_RETURN_IF_ERROR(b.WriteBytes(header, sizeof(header)));
    b.offset_ = kFileHeaderBytes;
    return b;
  }

  // Reopens a sealed file for in-situ append: the sealed footer + tail are
  // truncated away, the frame records stay in place, and new frames continue
  // exactly where the footer began. `footer` is the parsed (validated) footer
  // whose frame index carries over into the resealed file.
  static Result<V2FileBuilder> ReopenAt(const std::string& path, Footer footer,
                                        uint64_t footer_offset) {
    V2FileBuilder b;
    b.file_.reset(std::fopen(path.c_str(), "r+b"));
    if (b.file_ == nullptr) {
      return Status::Internal("cannot open for appending: " + path);
    }
    if (ftruncate(fileno(b.file_.get()), static_cast<off_t>(footer_offset)) !=
        0) {
      return Status::Internal("cannot truncate archive footer: " + path);
    }
    if (std::fseek(b.file_.get(), static_cast<long>(footer_offset),
                   SEEK_SET) != 0) {
      return Status::Internal("cannot seek in archive: " + path);
    }
    b.offset_ = footer_offset;
    b.footer_ = std::move(footer);
    return b;
  }

  Status AddFrame(uint8_t axis, core::Method method, uint64_t first_snapshot,
                  uint64_t s_count, std::span<const uint8_t> payload) {
    ByteWriter w;
    const FrameInfo info = BuildFrameRecord(axis, method, first_snapshot,
                                            s_count, payload, offset_, &w);
    MDZ_RETURN_IF_ERROR(WriteBytes(w.bytes().data(), w.size()));
    offset_ += w.size();
    footer_.frames.push_back(info);
    MDZ_COUNTER_ADD("archive/frames_written", 1);
    return Status::OK();
  }

  Footer& footer() { return footer_; }

  Status Seal() {
    footer_.build_info_json = obs::BuildInfoJson();
    ByteWriter w;
    SerializeFooter(footer_, &w);
    const uint64_t crc = Fnv1a64(w.bytes());
    const uint64_t len = w.size();
    w.Put<uint64_t>(crc);
    w.Put<uint64_t>(len);
    w.PutBytes(kTrailerMagic, sizeof(kTrailerMagic));
    MDZ_RETURN_IF_ERROR(WriteBytes(w.bytes().data(), w.size()));
    if (std::fflush(file_.get()) != 0) {
      return Status::Internal("flush failed");
    }
    return Status::OK();
  }

 private:
  V2FileBuilder() = default;

  Status WriteBytes(const void* data, size_t n) {
    if (std::fwrite(data, 1, n, file_.get()) != n) {
      return Status::Internal("short write to archive");
    }
    return Status::OK();
  }

  FilePtr file_;
  uint64_t offset_ = 0;
  Footer footer_;
};

// Builds the footer's per-axis entry. The reference must reproduce the
// stream's decoded snapshot 0 bit-exactly (MT frames were encoded against
// it). A 1-snapshot re-encode is embedded when its round trip verifies
// bit-exactly — but the quantizer's grid is relative to each prediction, so
// that is rare; the usual outcome is kFirstFrame, which carries no bytes and
// has the reader decode the axis's first frame once instead. Either way the
// reader never depends on re-quantization being idempotent.
AxisStreamInfo BuildAxisInfo(const core::FieldStreamHeader& header,
                             std::vector<uint8_t> stream_header,
                             const std::vector<double>& initial,
                             bool chained) {
  AxisStreamInfo info;
  info.stream_header = std::move(stream_header);
  info.chained = chained;
  if (initial.empty()) return info;  // ReferenceKind::kNone

  const BlockCodec codec(header.abs_eb, header.quantization_scale,
                         header.layout);
  const std::vector<std::vector<double>> buffer(1, initial);
  EncodedBlock encoded =
      codec.Encode(core::Method::kMT, buffer, PredictorState(), LevelModel());

  PredictorState state;
  std::vector<std::vector<double>> decoded;
  const bool exact =
      codec.Decode(encoded.bytes, header.num_particles, &state, &decoded)
          .ok() &&
      decoded.size() == 1 && decoded[0].size() == initial.size() &&
      std::memcmp(decoded[0].data(), initial.data(),
                  initial.size() * sizeof(double)) == 0;
  if (exact) {
    info.ref_kind = ReferenceKind::kEncoded;
    info.reference = std::move(encoded.bytes);
  } else {
    info.ref_kind = ReferenceKind::kFirstFrame;
  }
  return info;
}

// Decodes a block payload from an empty predictor state and returns the
// stream's initial snapshot (what block 0 seeds for the MT predictor).
Result<std::vector<double>> DecodeInitialSnapshot(
    const core::FieldStreamHeader& header, std::span<const uint8_t> payload) {
  const BlockCodec codec(header.abs_eb, header.quantization_scale,
                         header.layout);
  PredictorState state;
  std::vector<std::vector<double>> decoded;
  MDZ_RETURN_IF_ERROR(
      codec.Decode(payload, header.num_particles, &state, &decoded));
  if (!state.has_initial()) {
    return Status::Corruption("first block decoded no snapshots");
  }
  return std::move(state.initial);
}

// Locates the sealed footer from the file tail (the reader has already
// verified the trailer magic, CRC and length bounds by the time this runs).
Result<uint64_t> ReadFooterOffset(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::Internal("cannot open: " + path);
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    return Status::Internal("cannot seek: " + path);
  }
  const long end = std::ftell(f.get());
  if (end < 0 ||
      static_cast<uint64_t>(end) < kFileHeaderBytes + kFileTailBytes) {
    return Status::Corruption("archive too small for a footer");
  }
  uint8_t tail[kFileTailBytes];
  if (std::fseek(f.get(), end - static_cast<long>(kFileTailBytes), SEEK_SET) !=
          0 ||
      std::fread(tail, 1, sizeof(tail), f.get()) != sizeof(tail)) {
    return Status::Internal("cannot read archive tail: " + path);
  }
  ByteReader r(std::span<const uint8_t>(tail, sizeof(tail)));
  uint64_t crc = 0;
  uint64_t len = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&crc));
  MDZ_RETURN_IF_ERROR(r.Get(&len));
  const uint64_t file_size = static_cast<uint64_t>(end);
  if (len > file_size - kFileHeaderBytes - kFileTailBytes) {
    return Status::Corruption("footer length out of range");
  }
  return file_size - kFileTailBytes - len;
}

}  // namespace

// ---------------------------------------------------------------------------
// ArchiveWriter
// ---------------------------------------------------------------------------

struct ArchiveWriter::Impl {
  // Per-axis compression state; frames are cut from the compressor's drained
  // output so payload bytes are identical to the v1 stream's blocks.
  struct AxisState {
    std::unique_ptr<core::FieldCompressor> compressor;
    bool header_parsed = false;
    core::FieldStreamHeader header;
    std::vector<uint8_t> stream_header;
    std::vector<double> initial;  // decoded snapshot 0 (reference source)
    bool chained = false;         // stream contains TI frames
    uint64_t next_snapshot = 0;
  };

  size_t n = 0;
  core::ThreadPool* pool = nullptr;
  std::unique_ptr<V2FileBuilder> builder;
  std::array<AxisState, 3> axes;
  std::vector<core::Snapshot> window;  // pending snapshots, <= buffer_size
  size_t window_capacity = 1;
  uint64_t snapshots_in = 0;
  std::string name;
  std::array<double, 3> box = {0, 0, 0};
  bool finished = false;

  // Moves the drained compressor output of one axis into frames on disk.
  Status DrainAxis(int axis) {
    AxisState& ax = axes[axis];
    const std::vector<uint8_t> bytes = ax.compressor->TakeOutput();
    if (bytes.empty()) return Status::OK();
    const std::span<const uint8_t> data(bytes);
    size_t pos = 0;
    if (!ax.header_parsed) {
      MDZ_ASSIGN_OR_RETURN(ax.header, core::ParseFieldStreamHeader(data));
      ax.stream_header.assign(bytes.begin(),
                              bytes.begin() + ax.header.header_bytes);
      ax.header_parsed = true;
      pos = ax.header.header_bytes;
    }
    while (pos < data.size()) {
      ByteReader r(data.subspan(pos));
      std::span<const uint8_t> payload;
      MDZ_RETURN_IF_ERROR(r.GetBlob(&payload));
      MDZ_ASSIGN_OR_RETURN(const core::internal::BlockHeader block,
                           core::internal::PeekBlockHeader(payload));
      if (ax.initial.empty()) {
        MDZ_ASSIGN_OR_RETURN(ax.initial,
                             DecodeInitialSnapshot(ax.header, payload));
      }
      if (block.method == core::Method::kTI) ax.chained = true;
      MDZ_RETURN_IF_ERROR(builder->AddFrame(static_cast<uint8_t>(axis),
                                            block.method, ax.next_snapshot,
                                            block.s_count, payload));
      ax.next_snapshot += block.s_count;
      pos += r.position();
    }
    return Status::OK();
  }

  // Feeds the buffered window to the three axis compressors (concurrently on
  // the pool) and flushes the frames they produced.
  Status FlushWindow() {
    if (window.empty()) return Status::OK();
    MDZ_SPAN_ARGS("archive_flush", "snapshots", window.size());
    std::array<Status, 3> statuses;
    const auto feed = [&](size_t axis) {
      for (const core::Snapshot& s : window) {
        statuses[axis] = axes[axis].compressor->Append(s.axes[axis]);
        if (!statuses[axis].ok()) return;
      }
    };
    if (pool != nullptr && !pool->serial()) {
      pool->ParallelFor(0, 3, feed);
    } else {
      for (size_t axis = 0; axis < 3; ++axis) feed(axis);
    }
    for (const Status& s : statuses) MDZ_RETURN_IF_ERROR(s);
    window.clear();
    for (int axis = 0; axis < 3; ++axis) {
      MDZ_RETURN_IF_ERROR(DrainAxis(axis));
    }
    return Status::OK();
  }
};

ArchiveWriter::ArchiveWriter() : impl_(new Impl()) {}
ArchiveWriter::~ArchiveWriter() = default;

Result<std::unique_ptr<ArchiveWriter>> ArchiveWriter::Create(
    const std::string& path, size_t num_particles, const core::Options& options,
    core::ThreadPool* pool) {
  auto writer = std::unique_ptr<ArchiveWriter>(new ArchiveWriter());
  Impl& impl = *writer->impl_;
  impl.n = num_particles;
  impl.pool = pool;
  impl.window_capacity = options.buffer_size;
  core::Options axis_options = options;
  axis_options.pool = pool;
  for (int axis = 0; axis < 3; ++axis) {
    MDZ_ASSIGN_OR_RETURN(
        impl.axes[axis].compressor,
        core::FieldCompressor::Create(num_particles, axis_options));
  }
  MDZ_ASSIGN_OR_RETURN(V2FileBuilder builder, V2FileBuilder::Create(path));
  impl.builder = std::make_unique<V2FileBuilder>(std::move(builder));
  return writer;
}

Result<std::unique_ptr<ArchiveWriter>> ArchiveWriter::Reopen(
    const std::string& path, const core::Options& options,
    core::ThreadPool* pool) {
  MDZ_SPAN("archive_reopen");
  // Open through the reader first: footer CRC, structural invariants and the
  // per-frame tiling are all verified before we touch the file for writing.
  MDZ_ASSIGN_OR_RETURN(auto reader, ArchiveReader::Open(path));
  Footer footer = reader->footer();
  const uint64_t m = footer.num_snapshots;
  const size_t n = footer.num_particles;

  // Every frame must cover one full buffer: a short final frame means the
  // trailing snapshots were already lossy-coded, and re-encoding them into a
  // full buffer could not reproduce the one-shot bytes.
  uint64_t bs = 0;
  for (const FrameInfo& f : footer.frames) {
    if (bs == 0) bs = f.s_count;
    if (f.s_count != bs) {
      return Status::FailedPrecondition(
          "archive ends on a partial buffer; append requires num_snapshots "
          "to be a multiple of the buffer size");
    }
  }
  if (bs == 0 || m % bs != 0) {
    return Status::FailedPrecondition(
        "archive frames do not tile full buffers");
  }

  // The append is byte-identical to one-shot compression only when the codec
  // is configured the way the original run was. Parameters recorded in the
  // file (bound, scale, layout, buffer size) are restored below; the ones
  // that are not recorded (method, interval, TI toggle) we can at least
  // cross-check against the frames.
  if (options.method != core::Method::kAdaptive) {
    for (const FrameInfo& f : footer.frames) {
      if (f.method != options.method) {
        return Status::InvalidArgument(
            "archive frames disagree with the requested fixed method; reopen "
            "with the options the archive was created with");
      }
    }
  } else if ((footer.axes[0].chained || footer.axes[1].chained ||
              footer.axes[2].chained) &&
             !options.enable_interpolation &&
             std::find(options.adp_methods.begin(), options.adp_methods.end(),
                       core::Method::kTI) == options.adp_methods.end()) {
    return Status::InvalidArgument(
        "archive contains TI frames but interpolation is disabled; reopen "
        "with the options the archive was created with");
  }

  // Decoded boundary snapshots: snapshot 0 seeds the MT reference, snapshot
  // M-1 is the TI chain tail the resumed predictor state needs.
  MDZ_ASSIGN_OR_RETURN(auto first_snap, reader->ReadSnapshots(0, 1));
  MDZ_ASSIGN_OR_RETURN(auto last_snap, reader->ReadSnapshots(m - 1, 1));

  auto writer = std::unique_ptr<ArchiveWriter>(new ArchiveWriter());
  Impl& impl = *writer->impl_;
  impl.n = n;
  impl.pool = pool;
  impl.window_capacity = bs;
  impl.snapshots_in = m;
  impl.name = footer.name;
  impl.box = footer.box;

  FilePtr probe(std::fopen(path.c_str(), "rb"));
  if (probe == nullptr) return Status::Internal("cannot open: " + path);

  for (int axis = 0; axis < 3; ++axis) {
    Impl::AxisState& ax = impl.axes[axis];
    const AxisStreamInfo& info = footer.axes[axis];
    MDZ_ASSIGN_OR_RETURN(
        ax.header,
        core::ParseFieldStreamHeader(std::span<const uint8_t>(
            info.stream_header.data(), info.stream_header.size())));
    ax.stream_header = info.stream_header;
    ax.header_parsed = true;
    ax.chained = info.chained;
    ax.next_snapshot = m;
    ax.initial = first_snap[0].axes[axis];

    core::Options axis_options = options;
    axis_options.pool = pool;
    axis_options.buffer_size = static_cast<uint32_t>(bs);
    axis_options.quantization_scale = ax.header.quantization_scale;
    axis_options.layout = ax.header.layout;
    axis_options.error_bound = ax.header.abs_eb;
    axis_options.error_bound_mode = core::ErrorBoundMode::kAbsolute;

    core::FieldCompressor::ResumeState state;
    state.abs_eb = ax.header.abs_eb;
    state.initial = ax.initial;
    state.prev_last = std::move(last_snap[0].axes[axis]);
    state.snapshots_in = m;
    size_t axis_frames = 0;
    for (size_t i = 0; i < footer.frames.size(); ++i) {
      const FrameInfo& f = footer.frames[i];
      if (f.axis != axis) continue;
      ++axis_frames;
      state.current_method = f.method;
      if (!state.has_levels && (f.method == core::Method::kVQ ||
                                f.method == core::Method::kVQT)) {
        // The level grid is fit once per stream and serialized verbatim in
        // every VQ-family block, so any one of them recovers it bit-exactly.
        std::vector<uint8_t> record(f.frame_size);
        if (std::fseek(probe.get(), static_cast<long>(f.offset), SEEK_SET) !=
                0 ||
            std::fread(record.data(), 1, record.size(), probe.get()) !=
                record.size()) {
          return Status::Internal("cannot read frame record: " + path);
        }
        std::span<const uint8_t> payload;
        MDZ_RETURN_IF_ERROR(ParseFrameRecord(record, f, i, &payload));
        MDZ_ASSIGN_OR_RETURN(const LevelModel levels,
                             core::internal::PeekBlockLevels(payload));
        if (levels.valid) {
          state.has_levels = true;
          state.level_mu = levels.mu;
          state.level_lambda = levels.lambda;
        }
      }
    }
    state.buffers_out = axis_frames;
    if (!state.has_levels && options.method == core::Method::kAdaptive) {
      // ADP fit a grid at its first trial round even if no VQ/VQT block ever
      // won; the raw snapshot it fit from is gone, so refit from the decoded
      // one — the only reopen ingredient that is not recovered verbatim.
      const LevelModel refit =
          core::internal::FitLevelModel(ax.initial, options.level_fit);
      state.has_levels = refit.valid;
      state.level_mu = refit.mu;
      state.level_lambda = refit.lambda;
    }
    MDZ_ASSIGN_OR_RETURN(
        ax.compressor,
        core::FieldCompressor::Resume(n, axis_options, state));
  }
  probe.reset();
  reader.reset();  // closes the read fd before the file is truncated

  MDZ_ASSIGN_OR_RETURN(const uint64_t footer_offset, ReadFooterOffset(path));
  MDZ_ASSIGN_OR_RETURN(
      V2FileBuilder builder,
      V2FileBuilder::ReopenAt(path, std::move(footer), footer_offset));
  impl.builder = std::make_unique<V2FileBuilder>(std::move(builder));
  return writer;
}

void ArchiveWriter::SetName(const std::string& name) { impl_->name = name; }

void ArchiveWriter::SetBox(const std::array<double, 3>& box) {
  impl_->box = box;
}

Status ArchiveWriter::Append(const core::Snapshot& snapshot) {
  Impl& impl = *impl_;
  if (impl.finished) {
    return Status::FailedPrecondition("Append after Finish");
  }
  for (int axis = 0; axis < 3; ++axis) {
    if (snapshot.axes[axis].size() != impl.n) {
      return Status::InvalidArgument("snapshot size != num_particles");
    }
  }
  impl.window.push_back(snapshot);
  ++impl.snapshots_in;
  if (impl.window.size() >= impl.window_capacity) {
    MDZ_RETURN_IF_ERROR(impl.FlushWindow());
  }
  return Status::OK();
}

Status ArchiveWriter::Finish() {
  Impl& impl = *impl_;
  if (impl.finished) {
    return Status::FailedPrecondition("Finish called twice");
  }
  if (impl.snapshots_in == 0) {
    return Status::InvalidArgument("archive needs at least one snapshot");
  }
  MDZ_RETURN_IF_ERROR(impl.FlushWindow());
  for (int axis = 0; axis < 3; ++axis) {
    MDZ_RETURN_IF_ERROR(impl.axes[axis].compressor->Finish());
    MDZ_RETURN_IF_ERROR(impl.DrainAxis(axis));
  }
  Footer& footer = impl.builder->footer();
  footer.name = impl.name;
  footer.box = impl.box;
  footer.num_snapshots = impl.snapshots_in;
  footer.num_particles = impl.n;
  for (int axis = 0; axis < 3; ++axis) {
    Impl::AxisState& ax = impl.axes[axis];
    footer.axes[axis] = BuildAxisInfo(ax.header, std::move(ax.stream_header),
                                      ax.initial, ax.chained);
  }
  MDZ_RETURN_IF_ERROR(impl.builder->Seal());
  impl.finished = true;
  return Status::OK();
}

const core::CompressorStats& ArchiveWriter::axis_stats(int axis) const {
  return impl_->axes[axis].compressor->stats();
}

size_t ArchiveWriter::buffered_snapshots() const {
  return impl_->window.size();
}

size_t ArchiveWriter::num_particles() const { return impl_->n; }

uint64_t ArchiveWriter::snapshots_written() const {
  return impl_->snapshots_in;
}

// ---------------------------------------------------------------------------
// WriteV2: split existing v1 field streams into a v2 file (no re-encoding)
// ---------------------------------------------------------------------------

Status WriteV2(const core::CompressedTrajectory& data, const std::string& name,
               const std::array<double, 3>& box, const std::string& path) {
  MDZ_SPAN("archive_write_v2");
  struct AxisSource {
    core::FieldStreamHeader header;
    std::vector<core::FieldDecompressor::BlockInfo> blocks;
    std::vector<double> initial;
    bool chained = false;
  };
  std::array<AxisSource, 3> src;
  uint64_t num_snapshots = 0;
  for (int axis = 0; axis < 3; ++axis) {
    const std::span<const uint8_t> bytes(data.axes[axis]);
    MDZ_ASSIGN_OR_RETURN(src[axis].header,
                         core::ParseFieldStreamHeader(bytes));
    if (src[axis].header.num_particles != src[0].header.num_particles) {
      return Status::InvalidArgument("axis particle counts disagree");
    }
    MDZ_ASSIGN_OR_RETURN(auto decompressor,
                         core::FieldDecompressor::Open(bytes));
    MDZ_ASSIGN_OR_RETURN(src[axis].blocks, decompressor->ListBlocks());
    if (src[axis].blocks.empty()) {
      return Status::InvalidArgument("cannot archive an empty stream");
    }
    const auto& last = src[axis].blocks.back();
    const uint64_t total = last.first_snapshot + last.snapshots;
    if (axis == 0) {
      num_snapshots = total;
    } else if (total != num_snapshots) {
      return Status::InvalidArgument("axis snapshot counts disagree");
    }
    for (const auto& block : src[axis].blocks) {
      if (block.method == core::Method::kTI) src[axis].chained = true;
    }
    ByteReader r(bytes.subspan(src[axis].blocks[0].offset));
    std::span<const uint8_t> payload;
    MDZ_RETURN_IF_ERROR(r.GetBlob(&payload));
    MDZ_ASSIGN_OR_RETURN(src[axis].initial,
                         DecodeInitialSnapshot(src[axis].header, payload));
  }

  MDZ_ASSIGN_OR_RETURN(V2FileBuilder builder, V2FileBuilder::Create(path));
  // Interleave x,y,z per buffer — the same frame order the streaming writer
  // produces, so both paths generate identical files for identical streams.
  size_t max_blocks = 0;
  for (const AxisSource& s : src) {
    max_blocks = std::max(max_blocks, s.blocks.size());
  }
  for (size_t b = 0; b < max_blocks; ++b) {
    for (int axis = 0; axis < 3; ++axis) {
      if (b >= src[axis].blocks.size()) continue;
      const auto& block = src[axis].blocks[b];
      ByteReader r(
          std::span<const uint8_t>(data.axes[axis]).subspan(block.offset));
      std::span<const uint8_t> payload;
      MDZ_RETURN_IF_ERROR(r.GetBlob(&payload));
      MDZ_RETURN_IF_ERROR(builder.AddFrame(static_cast<uint8_t>(axis),
                                           block.method, block.first_snapshot,
                                           block.snapshots, payload));
    }
  }
  Footer& footer = builder.footer();
  footer.name = name;
  footer.box = box;
  footer.num_snapshots = num_snapshots;
  footer.num_particles = src[0].header.num_particles;
  for (int axis = 0; axis < 3; ++axis) {
    const std::span<const uint8_t> bytes(data.axes[axis]);
    std::vector<uint8_t> stream_header(
        bytes.begin(), bytes.begin() + src[axis].header.header_bytes);
    footer.axes[axis] =
        BuildAxisInfo(src[axis].header, std::move(stream_header),
                      src[axis].initial, src[axis].chained);
  }
  return builder.Seal();
}

}  // namespace mdz::archive
