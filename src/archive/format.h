#ifndef MDZ_ARCHIVE_FORMAT_H_
#define MDZ_ARCHIVE_FORMAT_H_

// Archive v2 on-disk format (docs/FORMAT.md Section 2): a framed, indexed,
// seekable container for a compressed trajectory. Where the v1 ".mdza" file
// is a monolithic blob sealed by one whole-file checksum, v2 stores each
// compressed buffer of each axis as a self-contained *frame* with its own
// CRC, followed by a footer index (frame offsets/sizes, snapshot ranges,
// per-frame checksums, build-info stamp) that a reader verifies first and
// then uses to touch only the frames a query needs.
//
// Layout (all integers little-endian, varint = unsigned LEB128,
// blob = varint length + bytes):
//
//   magic      "MDZA" (4 bytes)          shared with v1; the version byte
//   version    u8 (= 2)                  distinguishes the two
//   frames     frame records, back to back (interleaved x,y,z per buffer)
//   footer     see Footer below
//   footer_crc u64                       FNV-1a of the footer bytes
//   footer_len u64                       length of the footer bytes
//   trailer    "2ZDM" (4 bytes)          locates the footer from EOF
//
// Frame record:
//
//   axis           u8                    0 = x, 1 = y, 2 = z
//   method         u8                    predictor that encoded the payload
//   first_snapshot varint
//   s_count        varint
//   payload        blob                  one core block payload, verbatim
//   crc            u64                   FNV-1a of the record up to here
//
// A frame payload is byte-identical to the corresponding block payload of
// the v1 field stream, so concatenating an axis's stream header with
// `PutBlob(payload)` for each of its frames reproduces the v1 stream
// exactly — repacking between container versions never re-encodes.
//
// The footer records, per axis, the field-stream header and how to obtain
// the *reference snapshot*: the stream's decoded snapshot 0, which MT frames
// at any position predict their first snapshot from. The quantizer's
// reconstruction grid is relative to each value's prediction, so a lossy
// re-encode of the decoded snapshot is rarely bit-exact; the reference is
// therefore usually kFirstFrame — derived by decoding the axis's first frame
// once (O(1) per axis, however deep into the stream a read lands) — with
// kEncoded/kRaw as embedded alternatives when exactness or frame-0
// independence is worth the bytes.

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/mdz.h"
#include "util/byte_buffer.h"
#include "util/status.h"

namespace mdz::archive {

inline constexpr char kMagic[4] = {'M', 'D', 'Z', 'A'};
inline constexpr uint8_t kVersionV1 = 1;
inline constexpr uint8_t kVersionV2 = 2;
inline constexpr char kTrailerMagic[4] = {'2', 'Z', 'D', 'M'};
// magic + version byte: where the first frame record starts.
inline constexpr size_t kFileHeaderBytes = sizeof(kMagic) + 1;
// footer_crc u64 + footer_len u64 + trailer magic.
inline constexpr size_t kFileTailBytes = 8 + 8 + sizeof(kTrailerMagic);

// How the reader obtains an axis's reference (decoded initial) snapshot.
enum class ReferenceKind : uint8_t {
  kNone = 0,        // axis has no frames (empty stream)
  kEncoded = 1,     // embedded 1-snapshot block payload (must decode exactly)
  kRaw = 2,         // embedded verbatim f64 values
  kFirstFrame = 3,  // no bytes: decode the axis's first frame, take snapshot 0
};

// One footer index entry. `offset`/`frame_size` delimit the whole frame
// record (including its trailing CRC); `payload_size` is the blob length, so
// readers can size buffers without parsing the record first.
struct FrameInfo {
  uint8_t axis = 0;
  core::Method method = core::Method::kVQ;
  uint64_t offset = 0;
  uint64_t frame_size = 0;
  uint64_t payload_size = 0;
  uint64_t first_snapshot = 0;
  uint64_t s_count = 0;
  uint64_t crc = 0;
};

struct AxisStreamInfo {
  std::vector<uint8_t> stream_header;  // v1 field-stream header, verbatim
  bool chained = false;                // axis contains TI frames
  ReferenceKind ref_kind = ReferenceKind::kNone;
  std::vector<uint8_t> reference;      // per ref_kind
};

struct Footer {
  std::string name;
  std::array<double, 3> box = {0, 0, 0};
  uint64_t num_snapshots = 0;
  uint64_t num_particles = 0;
  std::array<AxisStreamInfo, 3> axes;
  std::vector<FrameInfo> frames;       // file order
  std::string build_info_json;
};

// Serializes the footer bytes (no CRC/length/trailer — the writer appends
// those).
void SerializeFooter(const Footer& footer, ByteWriter* w);

// Parses footer bytes produced by SerializeFooter. Purely structural; use
// ValidateFooter for cross-field invariants.
Result<Footer> ParseFooter(std::span<const uint8_t> bytes);

// Cross-field validation of a parsed footer against the file size:
//  * axis stream headers parse and agree with num_particles;
//  * every frame lies inside [kFileHeaderBytes, footer_offset), frames do
//    not overlap, and per-axis snapshot ranges tile [0, num_snapshots)
//    without gaps;
//  * methods are concrete (never the ADP selector), TI only on chained axes;
//  * reference kinds are consistent with the axis having frames.
// Any violation is Corruption naming the offending frame.
Status ValidateFooter(const Footer& footer, uint64_t footer_offset);

// Serializes one frame record (everything incl. the trailing CRC) and
// returns the index entry describing it. `offset` is where the record will
// be written.
FrameInfo BuildFrameRecord(uint8_t axis, core::Method method,
                           uint64_t first_snapshot, uint64_t s_count,
                           std::span<const uint8_t> payload, uint64_t offset,
                           ByteWriter* w);

// Parses + CRC-checks a frame record read back from disk and verifies it
// matches its index entry `info` (frame id `frame_id` is used in error
// messages only). On success *payload points into `bytes`.
Status ParseFrameRecord(std::span<const uint8_t> bytes, const FrameInfo& info,
                        size_t frame_id, std::span<const uint8_t>* payload);

}  // namespace mdz::archive

#endif  // MDZ_ARCHIVE_FORMAT_H_
