#ifndef MDZ_ARCHIVE_WRITER_H_
#define MDZ_ARCHIVE_WRITER_H_

#include <array>
#include <memory>
#include <string>

#include "archive/format.h"
#include "core/mdz.h"

namespace mdz::core {
class ThreadPool;
}

namespace mdz::archive {

// Streaming v2 archive writer: snapshots go in one at a time, and every time
// a buffer of Options::buffer_size snapshots accumulates, the three axis
// compressors run concurrently on `pool` (nested ADP trials fan out onto the
// same pool) and the finished frames are flushed straight to disk. Memory
// stays bounded by one buffer of snapshots plus one buffer's compressed
// output, independent of trajectory length.
class ArchiveWriter {
 public:
  // Creates `path` (truncating) and writes the file header. `options` is the
  // per-axis compressor configuration; its `pool` field is overridden with
  // `pool`. A null pool compresses the axes sequentially.
  static Result<std::unique_ptr<ArchiveWriter>> Create(
      const std::string& path, size_t num_particles,
      const core::Options& options, core::ThreadPool* pool = nullptr);

  // Reopens a sealed v2 archive for in-situ append (the growing-simulation
  // workflow): validates the file, truncates the footer, and resumes the
  // three axis compressors exactly where the sealed stream left them (bound
  // and level grid recovered verbatim from the stream, MT's snapshot-0
  // reference and TI's chain tail decoded from the frames, ADP's interval
  // counter replayed from the block count) — so Append + Finish produces a
  // file byte-identical to one-shot compression of the concatenated input.
  //
  // Codec parameters that live in the file (buffer size, quantization scale,
  // layout, resolved error bound) override whatever `options` says; method,
  // adaptation interval and the TI toggle must be passed the same as the
  // original run for the identity to hold. Fails with FailedPrecondition
  // when the archive ends on a partial buffer (its snapshots were already
  // lossy-coded; re-encoding them could not be byte-identical), and with
  // the reader's Corruption errors for damaged files. Name and box carry
  // over; SetName/SetBox still override. If the stream used ADP but never
  // committed a VQ/VQT block, the level grid is refit from the decoded
  // reference snapshot — identical to the original fit in every case except
  // a grid that was fit on raw data no block ever recorded.
  static Result<std::unique_ptr<ArchiveWriter>> Reopen(
      const std::string& path, const core::Options& options,
      core::ThreadPool* pool = nullptr);

  ~ArchiveWriter();

  ArchiveWriter(const ArchiveWriter&) = delete;
  ArchiveWriter& operator=(const ArchiveWriter&) = delete;

  // Metadata stamped into the footer; may be set any time before Finish.
  void SetName(const std::string& name);
  void SetBox(const std::array<double, 3>& box);

  // Appends one snapshot (each axis sized num_particles).
  Status Append(const core::Snapshot& snapshot);

  // Flushes the final partial buffer, builds the per-axis reference frames,
  // and seals the file with the footer. Must be called exactly once, after
  // at least one Append.
  Status Finish();

  // Per-axis compressor statistics (valid after Finish).
  const core::CompressorStats& axis_stats(int axis) const;

  // Snapshots buffered in the current window, not yet compressed to frames
  // (always < buffer size). Feeds the streaming pump's peak-memory account.
  size_t buffered_snapshots() const;

  size_t num_particles() const;

  // Snapshots accepted so far, including (after Reopen) the ones already in
  // the sealed file.
  uint64_t snapshots_written() const;

 private:
  ArchiveWriter();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// One-shot: writes already-compressed v1 field streams as a v2 archive by
// splitting each stream into frames. Never re-encodes — every frame payload
// is the verbatim block payload of the source stream, so a repacked archive
// decodes byte-identically to the original.
Status WriteV2(const core::CompressedTrajectory& data, const std::string& name,
               const std::array<double, 3>& box, const std::string& path);

}  // namespace mdz::archive

#endif  // MDZ_ARCHIVE_WRITER_H_
