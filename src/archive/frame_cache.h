#ifndef MDZ_ARCHIVE_FRAME_CACHE_H_
#define MDZ_ARCHIVE_FRAME_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace mdz::obs {
class Gauge;
}  // namespace mdz::obs

namespace mdz::archive {

// One decoded frame, immutable once published; the cache hands out shared
// ownership so eviction never invalidates a frame a reader is copying from.
struct DecodedFrame {
  std::vector<std::vector<double>> snapshots;

  // Approximate heap footprint, used for byte-budget accounting.
  size_t byte_size() const {
    size_t total = sizeof(DecodedFrame) +
                   snapshots.capacity() * sizeof(std::vector<double>);
    for (const std::vector<double>& s : snapshots) {
      total += s.capacity() * sizeof(double);
    }
    return total;
  }
};
using FramePtr = std::shared_ptr<const DecodedFrame>;

// FrameCache is a decoded-frame cache shared across archives and readers.
// Entries are keyed by (generation, frame id): a generation names one sealed
// incarnation of one archive (frame ids already encode the axis), and is
// bumped — never reused — when an archive is resealed by an append, so stale
// frames from the previous incarnation can never be served again.
//
// Budgets: `byte_budget` caps the decoded bytes resident (the cross-archive
// server mode), `frame_budget` caps the entry count (the classic per-reader
// mode); either may be 0 = unlimited. The byte ceiling is a hard invariant:
// bytes_in_use() never exceeds byte_budget after a call returns, even if
// honoring it means the frame just decoded is not retained.
//
// Admission control (optional, TinyLFU-flavored): every access feeds a small
// count-min sketch of 4-bit frequencies with periodic halving. When inserting
// under byte pressure would evict the LRU victim, the candidate is admitted
// only if its estimated frequency is at least the victim's — one-shot scans
// then decode through instead of flushing the hot set.
//
// All methods are thread-safe. Concurrent decoders of the same frame are
// serialized per-slot: the loser waits and reuses the winner's result.
class FrameCache {
 public:
  struct Options {
    size_t byte_budget = 0;     // decoded bytes ceiling; 0 = unlimited
    size_t frame_budget = 0;    // entry-count ceiling; 0 = unlimited
    bool admission = false;     // frequency-sketch admission under pressure
    obs::Gauge* bytes_gauge = nullptr;  // mirrors bytes_in_use when set
  };

  explicit FrameCache(const Options& options);
  ~FrameCache();

  FrameCache(const FrameCache&) = delete;
  FrameCache& operator=(const FrameCache&) = delete;

  // Returns a fresh generation id, unique for the cache's lifetime.
  uint64_t RegisterGeneration();

  // Drops every cached frame of `generation`. In-flight readers holding
  // FramePtrs keep their (now orphaned) frames alive; nothing new is served.
  void InvalidateGeneration(uint64_t generation);

  // Lookup-or-decode. On miss, `decode` runs under the per-frame slot mutex
  // (deduplicating concurrent decoders) and the result is retained subject to
  // budgets and admission. `*hit` (optional) reports whether the frame was
  // served without invoking `decode`.
  Result<FramePtr> GetOrDecode(uint64_t generation, size_t frame_id,
                               const std::function<Result<FramePtr>()>& decode,
                               bool* hit = nullptr);

  // Returns the cached frame or null; touches LRU but not hit/miss-relevant
  // state (used for TI predecessor chain lookups).
  FramePtr Peek(uint64_t generation, size_t frame_id);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t admission_rejects = 0;  // decoded but not retained
    size_t bytes_in_use = 0;
    size_t frames_in_use = 0;
  };
  Stats stats() const;
  size_t bytes_in_use() const;
  size_t byte_budget() const { return byte_budget_; }

 private:
  struct Key {
    uint64_t generation;
    uint64_t frame_id;
    bool operator==(const Key& o) const {
      return generation == o.generation && frame_id == o.frame_id;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  // The per-frame mutex serializes concurrent decoders of the same frame.
  // `data` stays null until a decode succeeds.
  struct Slot {
    std::mutex mu;
    FramePtr data;
  };
  struct Entry {
    std::shared_ptr<Slot> slot;
    std::list<Key>::iterator lru_it;
    size_t bytes = 0;  // 0 until published and charged
  };

  void RecordAccessLocked(const Key& key);
  uint32_t EstimateLocked(const Key& key) const;
  void EraseLocked(const Key& key);
  void EvictOverBudgetLocked();
  void PublishLocked(const Key& key, const std::shared_ptr<Slot>& slot,
                     size_t frame_bytes);
  void UpdateGaugeLocked();

  const size_t byte_budget_;
  const size_t frame_budget_;
  const bool admission_;
  obs::Gauge* const bytes_gauge_;

  mutable std::mutex mu_;
  std::list<Key> lru_;  // most recently used first
  std::unordered_map<Key, Entry, KeyHash> entries_;
  size_t bytes_in_use_ = 0;
  uint64_t next_generation_ = 1;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t admission_rejects_ = 0;

  // Count-min sketch of 4-bit access frequencies, halved periodically so
  // long-gone hot keys decay. Sized at construction, power-of-two slots.
  std::vector<uint8_t> sketch_;
  uint64_t sketch_ops_ = 0;
};

}  // namespace mdz::archive

#endif  // MDZ_ARCHIVE_FRAME_CACHE_H_
