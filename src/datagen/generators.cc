#include "datagen/generators.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "md/harmonic_crystal.h"
#include "md/lattice.h"
#include "md/lj_simulation.h"
#include "util/rng.h"

namespace mdz::datagen {

namespace {

using core::Snapshot;
using core::Trajectory;
using md::Vec3;

size_t ScaledAtoms(size_t base, double scale) {
  return std::max<size_t>(64, static_cast<size_t>(base * scale));
}

size_t ScaledSnapshots(size_t base, double scale) {
  return std::max<size_t>(4, static_cast<size_t>(base * scale));
}

Snapshot MakeSnapshot(size_t n) {
  Snapshot s;
  for (auto& axis : s.axes) axis.resize(n);
  return s;
}

// --- Crystalline generator (Copper-*, Helium-*, Pt) -------------------------
//
// Atoms vibrate around lattice sites with an Ornstein-Uhlenbeck displacement
// per axis (stationary stddev = amp, snapshot-to-snapshot correlation = rho),
// a "mobile" subset occasionally hops by half a lattice constant (site
// changes, paper takeaway 3), and an optional coherent drift models slow
// structures like growing helium bubbles or diffusing adatoms.
struct CrystalParams {
  enum class LatticeKind { kFcc, kBcc };
  LatticeKind lattice = LatticeKind::kFcc;
  size_t num_atoms = 1000;
  size_t num_snapshots = 100;
  double a = 3.615;  // lattice constant (Angstrom)
  // Per-axis vibration amplitude and temporal correlation.
  double amp[3] = {0.1, 0.1, 0.1};
  double rho[3] = {0.8, 0.8, 0.8};
  double hop_prob = 0.0;         // per mobile atom per snapshot
  double mobile_fraction = 0.0;  // fraction of atoms that may hop/drift
  double drift_per_snapshot = 0.0;  // coherent drift speed of mobile atoms
  // Vibration amplitude multiplier for the mobile subpopulation (defects
  // rattle harder than the matrix).
  double mobile_amp_mult = 1.0;
  // Fraction of atoms whose position decorrelates completely between dumps
  // (long-timescale methods like ParSplice write snapshots so far apart that
  // fast defects effectively teleport within the cell).
  double teleport_fraction = 0.0;
  uint64_t seed = 1;
};

Trajectory MakeCrystal(const std::string& name, const CrystalParams& p) {
  Trajectory traj;
  traj.name = name;

  int cells;
  std::vector<Vec3> sites;
  if (p.lattice == CrystalParams::LatticeKind::kFcc) {
    cells = md::FccCellsForAtoms(p.num_atoms);
    sites = md::FccLattice(cells, cells, cells, p.a);
  } else {
    cells = md::BccCellsForAtoms(p.num_atoms);
    sites = md::BccLattice(cells, cells, cells, p.a);
  }
  sites.resize(p.num_atoms);  // truncate to the requested atom count
  const double edge = cells * p.a;
  traj.box = {edge, edge, edge};

  Rng rng(p.seed);
  const size_t n = p.num_atoms;

  // Per-atom state.
  std::vector<Vec3> site(sites.begin(), sites.end());
  std::vector<Vec3> displacement(n);   // OU state
  std::vector<Vec3> drift_direction(n);
  std::vector<uint8_t> mobile(n, 0);
  std::vector<uint8_t> teleport(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < p.teleport_fraction) teleport[i] = 1;
  }
  for (size_t i = 0; i < n; ++i) {
    displacement[i] = {rng.Gaussian(0.0, p.amp[0]),
                       rng.Gaussian(0.0, p.amp[1]),
                       rng.Gaussian(0.0, p.amp[2])};
    if (rng.NextDouble() < p.mobile_fraction) {
      mobile[i] = 1;
      const double theta = rng.Uniform(0.0, 6.283185307179586);
      const double cphi = rng.Uniform(-1.0, 1.0);
      const double sphi = std::sqrt(std::max(0.0, 1.0 - cphi * cphi));
      drift_direction[i] = {sphi * std::cos(theta), sphi * std::sin(theta),
                            cphi};
    }
  }

  const double half_a = 0.5 * p.a;
  double ou_noise[3];
  for (int axis = 0; axis < 3; ++axis) {
    ou_noise[axis] = p.amp[axis] * std::sqrt(1.0 - p.rho[axis] * p.rho[axis]);
  }

  traj.snapshots.reserve(p.num_snapshots);
  for (size_t t = 0; t < p.num_snapshots; ++t) {
    Snapshot snap = MakeSnapshot(n);
    for (size_t i = 0; i < n; ++i) {
      if (teleport[i]) {
        snap.axes[0][i] = rng.Uniform(0.0, edge);
        snap.axes[1][i] = rng.Uniform(0.0, edge);
        snap.axes[2][i] = rng.Uniform(0.0, edge);
        continue;
      }
      const double amp_mult = mobile[i] ? p.mobile_amp_mult : 1.0;
      if (t > 0) {
        displacement[i].x = p.rho[0] * displacement[i].x +
                            rng.Gaussian(0.0, amp_mult * ou_noise[0]);
        displacement[i].y = p.rho[1] * displacement[i].y +
                            rng.Gaussian(0.0, amp_mult * ou_noise[1]);
        displacement[i].z = p.rho[2] * displacement[i].z +
                            rng.Gaussian(0.0, amp_mult * ou_noise[2]);
        if (mobile[i]) {
          if (p.hop_prob > 0.0 && rng.NextDouble() < p.hop_prob) {
            // Hop to a neighboring site: half lattice constant along one
            // random axis (keeps the level grid intact).
            const int axis = static_cast<int>(rng.UniformInt(3));
            const double dir = (rng.NextDouble() < 0.5) ? -half_a : half_a;
            if (axis == 0) site[i].x += dir;
            if (axis == 1) site[i].y += dir;
            if (axis == 2) site[i].z += dir;
          }
          if (p.drift_per_snapshot > 0.0) {
            site[i] += p.drift_per_snapshot * drift_direction[i];
          }
        }
      }
      snap.axes[0][i] = site[i].x + displacement[i].x;
      snap.axes[1][i] = site[i].y + displacement[i].y;
      snap.axes[2][i] = site[i].z + displacement[i].z;
    }
    traj.snapshots.push_back(std::move(snap));
  }
  return traj;
}

// --- Protein generator (ADK, IFABP) ------------------------------------------
//
// A bonded chain folded into a sphere of radius R, with every atom performing
// a confined random walk (weak harmonic pull to the centre keeps the density
// bounded). Produces the near-uniform value distributions (Fig. 4b) and the
// large, frequent temporal changes (Fig. 5b) the paper reports for protein
// trajectories.
struct ProteinParams {
  size_t num_atoms = 3341;
  size_t num_snapshots = 500;
  double radius = 20.0;   // confinement sphere (Angstrom)
  double bond = 1.5;      // initial chain bond length
  double step = 0.6;      // per-snapshot random displacement stddev
  double pull = 0.01;     // harmonic confinement strength
  uint64_t seed = 7;
};

Trajectory MakeProtein(const std::string& name, const ProteinParams& p) {
  Trajectory traj;
  traj.name = name;
  traj.box = {0.0, 0.0, 0.0};  // non-periodic

  Rng rng(p.seed);
  const size_t n = p.num_atoms;
  std::vector<Vec3> pos(n);

  // Initial configuration: random-direction chain, folded back into the
  // sphere whenever it strays outside.
  Vec3 cur{0.0, 0.0, 0.0};
  for (size_t i = 0; i < n; ++i) {
    const double theta = rng.Uniform(0.0, 6.283185307179586);
    const double cphi = rng.Uniform(-1.0, 1.0);
    const double sphi = std::sqrt(std::max(0.0, 1.0 - cphi * cphi));
    Vec3 step{p.bond * sphi * std::cos(theta), p.bond * sphi * std::sin(theta),
              p.bond * cphi};
    Vec3 next = cur + step;
    if (next.norm() > p.radius) next = cur - step;  // reflect inward
    pos[i] = next;
    cur = next;
  }

  traj.snapshots.reserve(p.num_snapshots);
  for (size_t t = 0; t < p.num_snapshots; ++t) {
    Snapshot snap = MakeSnapshot(n);
    for (size_t i = 0; i < n; ++i) {
      if (t > 0) {
        pos[i] += Vec3{rng.Gaussian(0.0, p.step), rng.Gaussian(0.0, p.step),
                       rng.Gaussian(0.0, p.step)};
        pos[i] -= p.pull * pos[i];  // soft confinement toward the origin
      }
      snap.axes[0][i] = pos[i].x;
      snap.axes[1][i] = pos[i].y;
      snap.axes[2][i] = pos[i].z;
    }
    traj.snapshots.push_back(std::move(snap));
  }
  return traj;
}

// --- Cosmology generator (HACC) ----------------------------------------------
//
// Particles drifting through a large box with velocities drawn from a smooth
// low-mode Fourier field plus a small random dispersion: smooth trajectories,
// spatially uniform positions.
struct CosmoParams {
  size_t num_particles = 100000;
  size_t num_snapshots = 30;
  double box = 256.0;      // Mpc/h
  double dt = 1.0;
  double flow_speed = 0.15;    // persistent coherent flow amplitude
  double dispersion = 0.4;     // per-snapshot velocity dispersion
  double velocity_rho = 0.3;   // snapshot-to-snapshot velocity correlation
  int modes = 6;
  uint64_t seed = 99;
};

Trajectory MakeCosmo(const std::string& name, const CosmoParams& p) {
  Trajectory traj;
  traj.name = name;
  traj.box = {p.box, p.box, p.box};

  Rng rng(p.seed);
  const size_t n = p.num_particles;

  struct Mode {
    Vec3 k;
    Vec3 amp;
    double phase;
  };
  std::vector<Mode> modes(p.modes);
  for (Mode& m : modes) {
    const double two_pi = 6.283185307179586;
    m.k = {two_pi / p.box * std::round(rng.Uniform(1.0, 4.0)),
           two_pi / p.box * std::round(rng.Uniform(1.0, 4.0)),
           two_pi / p.box * std::round(rng.Uniform(1.0, 4.0))};
    m.amp = {rng.Gaussian(0.0, p.flow_speed), rng.Gaussian(0.0, p.flow_speed),
             rng.Gaussian(0.0, p.flow_speed)};
    m.phase = rng.Uniform(0.0, two_pi);
  }

  // Velocity = persistent coherent flow (low-mode field at the initial
  // position) + a weakly correlated stochastic component. Snapshots in
  // cosmology runs are separated by large expansion intervals, so velocities
  // decorrelate substantially between outputs — which is what defeats
  // linear-extrapolation and piecewise-linear compressors on this data.
  std::vector<Vec3> pos(n);
  std::vector<Vec3> flow(n);
  std::vector<Vec3> jitter(n);
  const double jitter_noise =
      p.dispersion * std::sqrt(1.0 - p.velocity_rho * p.velocity_rho);
  for (size_t i = 0; i < n; ++i) {
    pos[i] = {rng.Uniform(0.0, p.box), rng.Uniform(0.0, p.box),
              rng.Uniform(0.0, p.box)};
    Vec3 v{0.0, 0.0, 0.0};
    for (const Mode& m : modes) {
      const double arg = Dot(m.k, pos[i]) + m.phase;
      v += std::sin(arg) * m.amp;
    }
    flow[i] = v;
    jitter[i] = {rng.Gaussian(0.0, p.dispersion),
                 rng.Gaussian(0.0, p.dispersion),
                 rng.Gaussian(0.0, p.dispersion)};
  }

  traj.snapshots.reserve(p.num_snapshots);
  for (size_t t = 0; t < p.num_snapshots; ++t) {
    Snapshot snap = MakeSnapshot(n);
    for (size_t i = 0; i < n; ++i) {
      if (t > 0) {
        jitter[i] = p.velocity_rho * jitter[i] +
                    Vec3{rng.Gaussian(0.0, jitter_noise),
                         rng.Gaussian(0.0, jitter_noise),
                         rng.Gaussian(0.0, jitter_noise)};
        pos[i] += p.dt * (flow[i] + jitter[i]);  // unwrapped drift
      }
      snap.axes[0][i] = pos[i].x;
      snap.axes[1][i] = pos[i].y;
      snap.axes[2][i] = pos[i].z;
    }
    traj.snapshots.push_back(std::move(snap));
  }
  return traj;
}

uint64_t SeedOr(const GeneratorOptions& opts, uint64_t fallback) {
  return opts.seed != 0 ? opts.seed : fallback;
}

}  // namespace

Trajectory MakeCopperA(const GeneratorOptions& opts) {
  CrystalParams p;
  p.lattice = CrystalParams::LatticeKind::kFcc;
  p.num_atoms = ScaledAtoms(20000, opts.size_scale);
  p.num_snapshots = 83;
  p.a = 3.615;
  for (int i = 0; i < 3; ++i) {
    p.amp[i] = 0.12;
    p.rho[i] = 0.85;
  }
  p.hop_prob = 2e-4;
  p.mobile_fraction = 0.05;
  p.seed = SeedOr(opts, 101);
  return MakeCrystal("Copper-A", p);
}

Trajectory MakeCopperB(const GeneratorOptions& opts) {
  CrystalParams p;
  p.lattice = CrystalParams::LatticeKind::kFcc;
  p.num_atoms = 3137;
  p.num_snapshots = ScaledSnapshots(1200, opts.size_scale);
  p.a = 3.615;
  // Anisotropic dynamics: x/y vibrate hard with little temporal memory (VQ
  // territory), z is calmer and temporally smoother (MT wins there) — this
  // reproduces the per-axis winner split of paper Table VI.
  p.amp[0] = p.amp[1] = 0.16;
  p.amp[2] = 0.07;
  p.rho[0] = p.rho[1] = 0.15;
  p.rho[2] = 0.75;
  p.hop_prob = 3e-3;
  p.mobile_fraction = 0.30;
  p.seed = SeedOr(opts, 102);
  return MakeCrystal("Copper-B", p);
}

Trajectory MakeHeliumA(const GeneratorOptions& opts) {
  CrystalParams p;
  p.lattice = CrystalParams::LatticeKind::kBcc;
  p.num_atoms = ScaledAtoms(16000, opts.size_scale);
  p.num_snapshots = 250;
  p.a = 3.165;  // tungsten
  for (int i = 0; i < 3; ++i) {
    p.amp[i] = 0.05;
    p.rho[i] = 0.95;
  }
  // Growing helium bubble: a mobile subset drifts slowly and coherently.
  p.mobile_fraction = 0.06;
  p.drift_per_snapshot = 0.02;
  p.hop_prob = 5e-4;
  p.seed = SeedOr(opts, 103);
  return MakeCrystal("Helium-A", p);
}

Trajectory MakeHeliumB(const GeneratorOptions& opts) {
  CrystalParams p;
  p.lattice = CrystalParams::LatticeKind::kBcc;
  p.num_atoms = 1037;
  p.num_snapshots = ScaledSnapshots(2000, opts.size_scale);
  p.a = 3.165;
  // Near-static tungsten matrix + a rattling, hopping helium/vacancy defect
  // population: most values are unchanged between dumps (which is what makes
  // the Seq-2 layout pay off, paper Table III), a minority moves a lot.
  for (int i = 0; i < 3; ++i) {
    p.amp[i] = 0.012;
    p.rho[i] = 0.9;
  }
  p.hop_prob = 2e-2;  // frequent vacancy/defect transitions
  p.mobile_fraction = 0.10;
  p.mobile_amp_mult = 12.0;
  p.teleport_fraction = 0.08;  // fast He defects decorrelate between dumps
  p.seed = SeedOr(opts, 104);
  return MakeCrystal("Helium-B", p);
}

Trajectory MakeAdk(const GeneratorOptions& opts) {
  ProteinParams p;
  p.num_atoms = 3341;
  p.num_snapshots = ScaledSnapshots(1000, opts.size_scale);
  p.radius = 22.0;
  p.step = 0.7;  // snapshots are 240 ps apart: big jumps
  p.pull = 0.012;
  p.seed = SeedOr(opts, 105);
  return MakeProtein("ADK", p);
}

Trajectory MakeIfabp(const GeneratorOptions& opts) {
  ProteinParams p;
  p.num_atoms = ScaledAtoms(12445, opts.size_scale);
  p.num_snapshots = 200;
  p.radius = 30.0;
  p.step = 0.45;  // 1 ps between snapshots: smaller jumps than ADK
  p.pull = 0.008;
  p.seed = SeedOr(opts, 106);
  return MakeProtein("IFABP", p);
}

Trajectory MakePt(const GeneratorOptions& opts) {
  CrystalParams p;
  p.lattice = CrystalParams::LatticeKind::kFcc;
  p.num_atoms = ScaledAtoms(40000, opts.size_scale);
  p.num_snapshots = 100;
  p.a = 3.92;  // platinum
  for (int i = 0; i < 3; ++i) {
    p.amp[i] = 0.02;   // local hyperdynamics: almost frozen between dumps
    p.rho[i] = 0.995;
  }
  p.hop_prob = 2e-3;        // a handful of diffusing adatoms
  p.mobile_fraction = 0.005;
  p.seed = SeedOr(opts, 107);
  return MakeCrystal("Pt", p);
}

Trajectory MakeLj(const GeneratorOptions& opts) {
  md::LjOptions lj;
  // N = 4 * cells^3; default 6912 atoms (the paper's LJ set has 6912000 —
  // the same LAMMPS benchmark geometry scaled down 1000x).
  const size_t target = ScaledAtoms(6912, opts.size_scale);
  lj.cells = md::FccCellsForAtoms(target);
  lj.seed = SeedOr(opts, 108);
  lj.thermostat = md::LjOptions::Thermostat::kBerendsen;

  Trajectory traj;
  traj.name = "LJ";
  auto sim_or = md::LjSimulation::Create(lj);
  if (!sim_or.ok()) return traj;  // options are internally consistent
  md::LjSimulation& sim = *sim_or;
  const double edge = sim.box().lx();
  traj.box = {edge, edge, edge};

  sim.Run(150);  // equilibrate the melt
  // Dump interval of 50 steps: comparable to the velocity decorrelation time
  // of the liquid, as in production runs where snapshots are written every
  // hundreds of timesteps (paper Section IV).
  const size_t snapshots = 50;
  const int dump_every = 50;
  traj.snapshots.reserve(snapshots);
  for (size_t t = 0; t < snapshots; ++t) {
    if (t > 0) sim.Run(dump_every);
    Snapshot snap = MakeSnapshot(sim.num_atoms());
    const auto& pos = sim.positions();
    for (size_t i = 0; i < pos.size(); ++i) {
      snap.axes[0][i] = pos[i].x;
      snap.axes[1][i] = pos[i].y;
      snap.axes[2][i] = pos[i].z;
    }
    traj.snapshots.push_back(std::move(snap));
  }
  return traj;
}

Trajectory MakeHacc1(const GeneratorOptions& opts) {
  CosmoParams p;
  p.num_particles = ScaledAtoms(120000, opts.size_scale);
  p.num_snapshots = 30;
  p.seed = SeedOr(opts, 109);
  return MakeCosmo("HACC-1", p);
}

Trajectory MakeHacc2(const GeneratorOptions& opts) {
  CosmoParams p;
  p.num_particles = ScaledAtoms(80000, opts.size_scale);
  p.num_snapshots = 60;
  p.seed = SeedOr(opts, 110);
  return MakeCosmo("HACC-2", p);
}

Trajectory MakeCopperMd(const GeneratorOptions& opts) {
  md::HarmonicCrystalOptions hc;
  const size_t target = ScaledAtoms(3000, opts.size_scale);
  hc.cells = md::FccCellsForAtoms(target);
  hc.seed = SeedOr(opts, 111);

  Trajectory traj;
  traj.name = "Copper-MD";
  auto crystal_or = md::HarmonicCrystal::Create(hc);
  if (!crystal_or.ok()) return traj;  // options are internally consistent
  md::HarmonicCrystal& crystal = *crystal_or;
  const double edge = crystal.box().lx();
  traj.box = {edge, edge, edge};

  crystal.Run(200);  // equilibrate the phonon bath
  const size_t snapshots = 120;
  const int dump_every = 20;  // several vibration periods between dumps
  traj.snapshots.reserve(snapshots);
  for (size_t t = 0; t < snapshots; ++t) {
    if (t > 0) crystal.Run(dump_every);
    Snapshot snap = MakeSnapshot(crystal.num_atoms());
    const auto& pos = crystal.positions();
    for (size_t i = 0; i < pos.size(); ++i) {
      snap.axes[0][i] = pos[i].x;
      snap.axes[1][i] = pos[i].y;
      snap.axes[2][i] = pos[i].z;
    }
    traj.snapshots.push_back(std::move(snap));
  }
  return traj;
}

namespace {

constexpr DatasetInfo kMdDatasets[] = {
    {"Copper-A", &MakeCopperA, "Solid"},
    {"Copper-B", &MakeCopperB, "Solid"},
    {"Helium-A", &MakeHeliumA, "Plasma"},
    {"Helium-B", &MakeHeliumB, "Plasma"},
    {"ADK", &MakeAdk, "Protein"},
    {"IFABP", &MakeIfabp, "Protein"},
    {"Pt", &MakePt, "Solid"},
    {"LJ", &MakeLj, "Liquid"},
};

constexpr DatasetInfo kAllDatasets[] = {
    {"Copper-A", &MakeCopperA, "Solid"},
    {"Copper-B", &MakeCopperB, "Solid"},
    {"Helium-A", &MakeHeliumA, "Plasma"},
    {"Helium-B", &MakeHeliumB, "Plasma"},
    {"ADK", &MakeAdk, "Protein"},
    {"IFABP", &MakeIfabp, "Protein"},
    {"Pt", &MakePt, "Solid"},
    {"LJ", &MakeLj, "Liquid"},
    {"HACC-1", &MakeHacc1, "Cosmology"},
    {"HACC-2", &MakeHacc2, "Cosmology"},
    {"Copper-MD", &MakeCopperMd, "Solid"},
};

}  // namespace

std::span<const DatasetInfo> AllMdDatasets() { return kMdDatasets; }

std::span<const DatasetInfo> AllDatasets() { return kAllDatasets; }

Result<core::Trajectory> MakeByName(std::string_view name,
                                    const GeneratorOptions& opts) {
  for (const DatasetInfo& info : kAllDatasets) {
    if (info.name == name) return info.make(opts);
  }
  return Status::InvalidArgument("unknown dataset: " + std::string(name));
}

}  // namespace mdz::datagen
