#ifndef MDZ_DATAGEN_GENERATORS_H_
#define MDZ_DATAGEN_GENERATORS_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "core/trajectory.h"
#include "util/status.h"

namespace mdz::datagen {

// Synthetic stand-ins for the paper's datasets (Table I). The originals are
// proprietary LANL/Anton simulation outputs; these generators reproduce the
// characterization in paper Section V — lattice-level clustering (takeaway
// 2/3), zigzag/stair spatial patterns (Fig. 3), the value distributions
// (Fig. 4), temporal smoothness classes (Fig. 5), and snapshot-0 similarity
// (Fig. 8) — at laptop scale. The LJ dataset is produced by an actual
// Lennard-Jones MD run using this repository's `md` engine.
struct GeneratorOptions {
  // Scales the number of atoms (mode-A datasets) or snapshots (mode-B
  // datasets) relative to the defaults below. Clamped to keep N >= 64, M >= 4.
  double size_scale = 1.0;
  uint64_t seed = 0;  // 0 = dataset-specific default
};

core::Trajectory MakeCopperA(const GeneratorOptions& opts = {});  // solid, A
core::Trajectory MakeCopperB(const GeneratorOptions& opts = {});  // solid, B
core::Trajectory MakeHeliumA(const GeneratorOptions& opts = {});  // plasma, A
core::Trajectory MakeHeliumB(const GeneratorOptions& opts = {});  // plasma, B
core::Trajectory MakeAdk(const GeneratorOptions& opts = {});      // protein
core::Trajectory MakeIfabp(const GeneratorOptions& opts = {});    // protein
core::Trajectory MakePt(const GeneratorOptions& opts = {});       // solid, A
core::Trajectory MakeLj(const GeneratorOptions& opts = {});       // liquid (MD)
core::Trajectory MakeHacc1(const GeneratorOptions& opts = {});    // cosmology
core::Trajectory MakeHacc2(const GeneratorOptions& opts = {});    // cosmology
// Extension: copper-like crystal produced by an actual harmonic-lattice MD
// run (src/md/harmonic_crystal.h) instead of the stochastic model — same
// level-clustered structure, physically correct vibration spectrum.
core::Trajectory MakeCopperMd(const GeneratorOptions& opts = {});

struct DatasetInfo {
  std::string_view name;
  core::Trajectory (*make)(const GeneratorOptions&);
  std::string_view state;  // Solid / Plasma / Protein / Liquid / Cosmology
};

// The eight MD datasets of paper Table I, in table order.
std::span<const DatasetInfo> AllMdDatasets();

// MD datasets + the two HACC datasets (paper Section VII-E).
std::span<const DatasetInfo> AllDatasets();

Result<core::Trajectory> MakeByName(std::string_view name,
                                    const GeneratorOptions& opts = {});

}  // namespace mdz::datagen

#endif  // MDZ_DATAGEN_GENERATORS_H_
