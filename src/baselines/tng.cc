#include "baselines/tng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/common.h"
#include "codec/lz.h"
#include "util/byte_buffer.h"

namespace mdz::baselines {

namespace {

using internal::FieldHeader;

// Fixed-point grid: value ~= 2 * eb * q reproduces the value within eb.
inline int64_t ToGrid(double value, double abs_eb) {
  return static_cast<int64_t>(std::llround(value / (2.0 * abs_eb)));
}

inline double FromGrid(int64_t q, double abs_eb) {
  return 2.0 * abs_eb * static_cast<double>(q);
}

}  // namespace

Result<std::vector<uint8_t>> TngCompress(const Field& field,
                                         const CompressorConfig& config) {
  if (field.empty() || field[0].empty()) {
    return Status::InvalidArgument("empty field");
  }
  const size_t n = field[0].size();
  const double abs_eb =
      internal::ResolveAbsoluteErrorBound(field, config.error_bound, config.buffer_size);

  ByteWriter out;
  internal::WriteFieldHeader(field, abs_eb, config.buffer_size, &out);

  std::vector<int64_t> prev_grid(n, 0);
  for (size_t first = 0; first < field.size(); first += config.buffer_size) {
    const size_t s_count =
        std::min<size_t>(config.buffer_size, field.size() - first);
    ByteWriter deltas;
    for (size_t s = 0; s < s_count; ++s) {
      const auto& snapshot = field[first + s];
      if (s == 0) {
        // Intra-frame delta against the previous particle.
        int64_t prev = 0;
        for (size_t i = 0; i < n; ++i) {
          const int64_t q = ToGrid(snapshot[i], abs_eb);
          deltas.PutSignedVarint(q - prev);
          prev = q;
          prev_grid[i] = q;
        }
      } else {
        // Inter-frame delta against the same particle one frame earlier.
        for (size_t i = 0; i < n; ++i) {
          const int64_t q = ToGrid(snapshot[i], abs_eb);
          deltas.PutSignedVarint(q - prev_grid[i]);
          prev_grid[i] = q;
        }
      }
    }
    out.PutBlob(codec::LzCompress(deltas.bytes()));
  }
  return out.TakeBytes();
}

Result<Field> TngDecompress(std::span<const uint8_t> data) {
  ByteReader r(data);
  FieldHeader header;
  MDZ_RETURN_IF_ERROR(internal::ReadFieldHeader(&r, &header));

  Field field;
  field.reserve(header.m);
  std::vector<int64_t> prev_grid(header.n, 0);
  for (size_t first = 0; first < header.m; first += header.buffer_size) {
    const size_t s_count =
        std::min<size_t>(header.buffer_size, header.m - first);
    std::span<const uint8_t> blob;
    MDZ_RETURN_IF_ERROR(r.GetBlob(&blob));
    std::vector<uint8_t> delta_bytes;
    MDZ_RETURN_IF_ERROR(codec::LzDecompress(blob, &delta_bytes));
    ByteReader deltas(delta_bytes);

    for (size_t s = 0; s < s_count; ++s) {
      std::vector<double> snapshot(header.n);
      if (s == 0) {
        int64_t prev = 0;
        for (size_t i = 0; i < header.n; ++i) {
          int64_t d = 0;
          MDZ_RETURN_IF_ERROR(deltas.GetSignedVarint(&d));
          const int64_t q = prev + d;
          snapshot[i] = FromGrid(q, header.abs_eb);
          prev = q;
          prev_grid[i] = q;
        }
      } else {
        for (size_t i = 0; i < header.n; ++i) {
          int64_t d = 0;
          MDZ_RETURN_IF_ERROR(deltas.GetSignedVarint(&d));
          const int64_t q = prev_grid[i] + d;
          snapshot[i] = FromGrid(q, header.abs_eb);
          prev_grid[i] = q;
        }
      }
      field.push_back(std::move(snapshot));
    }
  }
  return field;
}

}  // namespace mdz::baselines
