#ifndef MDZ_BASELINES_MDB_H_
#define MDZ_BASELINES_MDB_H_

#include "baselines/compressor_interface.h"

namespace mdz::baselines {

// MDB: C++ reimplementation of ModelarDB's model-based compression (Jensen
// et al., VLDB'18), as the paper does for its "MDB" baseline. Each particle's
// time series is greedily segmented; every segment is represented by the
// first of three models that fits:
//  * PMC-mean — constant value within +-eb,
//  * Swing    — linear function within +-eb (slope cone filter),
//  * Gorilla  — XOR-based lossless fallback for single values.
// Model parameters are stored as raw doubles, as in ModelarDB; there is no
// quantization/entropy stage, which is why MDB shows low ratios on MD data
// (paper Section VII-C1).
Result<std::vector<uint8_t>> MdbCompress(const Field& field,
                                         const CompressorConfig& config);

Result<Field> MdbDecompress(std::span<const uint8_t> data);

}  // namespace mdz::baselines

#endif  // MDZ_BASELINES_MDB_H_
