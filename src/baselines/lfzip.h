#ifndef MDZ_BASELINES_LFZIP_H_
#define MDZ_BASELINES_LFZIP_H_

#include "baselines/compressor_interface.h"

namespace mdz::baselines {

// LFZip-like compressor (Chandak et al., DCC'20): a normalized least-mean-
// squares (NLMS) adaptive linear predictor over the reconstructed stream,
// followed by uniform quantization of the prediction error and the entropy +
// dictionary backend. As in the paper's evaluation we use the NLMS predictor
// only (the neural predictor is orders of magnitude slower). Each buffer is
// traversed particle-major so the filter sees per-particle time series.
Result<std::vector<uint8_t>> LfzipCompress(const Field& field,
                                           const CompressorConfig& config);

Result<Field> LfzipDecompress(std::span<const uint8_t> data);

}  // namespace mdz::baselines

#endif  // MDZ_BASELINES_LFZIP_H_
