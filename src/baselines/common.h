#ifndef MDZ_BASELINES_COMMON_H_
#define MDZ_BASELINES_COMMON_H_

#include <cstdint>
#include <span>
#include <vector>

#include "baselines/compressor_interface.h"
#include "util/byte_buffer.h"
#include "util/status.h"

namespace mdz::baselines::internal {

// Helpers shared by the prediction-based baselines (SZ2 / ASN / LFZip):
// the SZ-style backend of quantization codes + escape channel, packaged as
// Huffman + LZ, and the common stream header.

// Resolves the value-range-relative bound against the range of the first
// buffer (the paper's streaming model: only BS snapshots are in memory when
// compression starts). MDZ's FieldCompressor resolves identically, so all
// compressors in the evaluation work to the same absolute bound.
double ResolveAbsoluteErrorBound(const Field& field, double relative_bound,
                                 uint32_t buffer_size);

// Writes the common header: N, M, abs_eb, buffer_size.
void WriteFieldHeader(const Field& field, double abs_eb, uint32_t buffer_size,
                      ByteWriter* w);

struct FieldHeader {
  size_t n = 0;
  size_t m = 0;
  double abs_eb = 0.0;
  uint32_t buffer_size = 0;
};

Status ReadFieldHeader(ByteReader* r, FieldHeader* header);

// Packs one buffer's quantization codes + escaped doubles:
// LZ( Huffman(codes) ) + LZ( escapes ). `scale` is the quantizer scale.
std::vector<uint8_t> PackQuantBlock(std::span<const uint32_t> codes,
                                    std::span<const double> escapes,
                                    uint32_t scale);

Status UnpackQuantBlock(std::span<const uint8_t> data,
                        std::vector<uint32_t>* codes,
                        std::vector<double>* escapes);

}  // namespace mdz::baselines::internal

#endif  // MDZ_BASELINES_COMMON_H_
