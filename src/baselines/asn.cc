#include "baselines/asn.h"

#include <algorithm>
#include <vector>

#include "baselines/common.h"
#include "quant/quantizer.h"
#include "util/byte_buffer.h"

namespace mdz::baselines {

namespace {

using internal::FieldHeader;

constexpr uint32_t kScale = 1024;

// Prediction given the two previous decompressed snapshots (either may be
// null at buffer starts).
inline double Predict(const std::vector<double>* prev1,
                      const std::vector<double>* prev2,
                      const std::vector<double>& current_decoded, size_t i) {
  if (prev1 != nullptr && prev2 != nullptr) {
    // Linear extrapolation: x(t) ~ 2 x(t-1) - x(t-2) (constant velocity).
    return 2.0 * (*prev1)[i] - (*prev2)[i];
  }
  if (prev1 != nullptr) return (*prev1)[i];
  return (i > 0) ? current_decoded[i - 1] : 0.0;  // spatial Lorenzo
}

}  // namespace

Result<std::vector<uint8_t>> AsnCompress(const Field& field,
                                         const CompressorConfig& config) {
  if (field.empty() || field[0].empty()) {
    return Status::InvalidArgument("empty field");
  }
  const size_t n = field[0].size();
  const double abs_eb =
      internal::ResolveAbsoluteErrorBound(field, config.error_bound, config.buffer_size);
  const quant::LinearQuantizer quantizer(abs_eb, kScale);

  ByteWriter out;
  internal::WriteFieldHeader(field, abs_eb, config.buffer_size, &out);

  for (size_t first = 0; first < field.size(); first += config.buffer_size) {
    const size_t s_count =
        std::min<size_t>(config.buffer_size, field.size() - first);
    std::vector<uint32_t> codes;
    codes.reserve(s_count * n);
    std::vector<double> escapes;
    std::vector<std::vector<double>> decoded(s_count, std::vector<double>(n));

    for (size_t s = 0; s < s_count; ++s) {
      const std::vector<double>* prev1 = (s >= 1) ? &decoded[s - 1] : nullptr;
      const std::vector<double>* prev2 = (s >= 2) ? &decoded[s - 2] : nullptr;
      for (size_t i = 0; i < n; ++i) {
        const double pred = Predict(prev1, prev2, decoded[s], i);
        double dec;
        const uint32_t code = quantizer.Encode(field[first + s][i], pred, &dec);
        if (code == 0) escapes.push_back(field[first + s][i]);
        decoded[s][i] = dec;
        codes.push_back(code);
      }
    }
    out.PutBlob(internal::PackQuantBlock(codes, escapes, kScale));
  }
  return out.TakeBytes();
}

Result<Field> AsnDecompress(std::span<const uint8_t> data) {
  ByteReader r(data);
  FieldHeader header;
  MDZ_RETURN_IF_ERROR(internal::ReadFieldHeader(&r, &header));
  const quant::LinearQuantizer quantizer(header.abs_eb, kScale);

  Field field;
  field.reserve(header.m);
  for (size_t first = 0; first < header.m; first += header.buffer_size) {
    const size_t s_count =
        std::min<size_t>(header.buffer_size, header.m - first);
    std::span<const uint8_t> blob;
    MDZ_RETURN_IF_ERROR(r.GetBlob(&blob));
    std::vector<uint32_t> codes;
    std::vector<double> escapes;
    MDZ_RETURN_IF_ERROR(internal::UnpackQuantBlock(blob, &codes, &escapes));
    if (codes.size() != s_count * header.n) {
      return Status::Corruption("ASN code count mismatch");
    }

    std::vector<std::vector<double>> decoded(s_count,
                                             std::vector<double>(header.n));
    size_t escape_pos = 0;
    size_t pos = 0;
    for (size_t s = 0; s < s_count; ++s) {
      const std::vector<double>* prev1 = (s >= 1) ? &decoded[s - 1] : nullptr;
      const std::vector<double>* prev2 = (s >= 2) ? &decoded[s - 2] : nullptr;
      for (size_t i = 0; i < header.n; ++i) {
        const uint32_t code = codes[pos++];
        if (code == 0) {
          if (escape_pos >= escapes.size()) {
            return Status::Corruption("ASN escape channel exhausted");
          }
          decoded[s][i] = escapes[escape_pos++];
          continue;
        }
        if (code >= kScale) {
          return Status::Corruption("ASN quant code out of scale");
        }
        const double pred = Predict(prev1, prev2, decoded[s], i);
        decoded[s][i] = quantizer.Decode(code, pred);
      }
    }
    for (auto& snapshot : decoded) field.push_back(std::move(snapshot));
  }
  return field;
}

}  // namespace mdz::baselines
