#include "baselines/common.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "codec/huffman.h"
#include "codec/lz.h"

namespace mdz::baselines::internal {

double ResolveAbsoluteErrorBound(const Field& field, double relative_bound,
                                 uint32_t buffer_size) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  const size_t first_buffer =
      std::min<size_t>(buffer_size, field.size());
  for (size_t s = 0; s < first_buffer; ++s) {
    for (double v : field[s]) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const double range = (hi > lo) ? hi - lo : 0.0;
  return range > 0.0 ? relative_bound * range : relative_bound;
}

void WriteFieldHeader(const Field& field, double abs_eb, uint32_t buffer_size,
                      ByteWriter* w) {
  w->PutVarint(field.empty() ? 0 : field[0].size());
  w->PutVarint(field.size());
  w->Put<double>(abs_eb);
  w->PutVarint(buffer_size);
}

Status ReadFieldHeader(ByteReader* r, FieldHeader* header) {
  uint64_t n = 0, m = 0, bs = 0;
  MDZ_RETURN_IF_ERROR(r->GetVarint(&n));
  MDZ_RETURN_IF_ERROR(r->GetVarint(&m));
  MDZ_RETURN_IF_ERROR(r->Get(&header->abs_eb));
  MDZ_RETURN_IF_ERROR(r->GetVarint(&bs));
  if (n == 0 || m == 0 || bs == 0 || n > (1ull << 31) || m > (1ull << 31) ||
      m * n > (1ull << 31)) {
    return Status::Corruption("bad baseline field header");
  }
  // No baseline format represents a value in less than ~1/1000 byte (the
  // best paper ratios are ~1400x on doubles = 175 values/byte); this bounds
  // the decoder's upfront allocation against hostile headers.
  if (m * n > 1024 * (r->remaining() + 1)) {
    return Status::Corruption("baseline header dimensions exceed payload");
  }
  header->n = n;
  header->m = m;
  header->buffer_size = static_cast<uint32_t>(bs);
  return Status::OK();
}

std::vector<uint8_t> PackQuantBlock(std::span<const uint32_t> codes,
                                    std::span<const double> escapes,
                                    uint32_t scale) {
  const std::vector<uint8_t> huff = codec::HuffmanEncode(codes, scale);
  const std::vector<uint8_t> main_lz = codec::LzCompress(huff);

  ByteWriter escapes_raw;
  for (double v : escapes) escapes_raw.Put<double>(v);
  const std::vector<uint8_t> escapes_lz = codec::LzCompress(escapes_raw.bytes());

  ByteWriter out;
  out.PutBlob(main_lz);
  out.PutBlob(escapes_lz);
  return out.TakeBytes();
}

Status UnpackQuantBlock(std::span<const uint8_t> data,
                        std::vector<uint32_t>* codes,
                        std::vector<double>* escapes) {
  ByteReader r(data);
  std::span<const uint8_t> main_blob, escapes_blob;
  MDZ_RETURN_IF_ERROR(r.GetBlob(&main_blob));
  MDZ_RETURN_IF_ERROR(r.GetBlob(&escapes_blob));

  std::vector<uint8_t> huff;
  MDZ_RETURN_IF_ERROR(codec::LzDecompress(main_blob, &huff));
  MDZ_RETURN_IF_ERROR(codec::HuffmanDecode(huff, codes));

  std::vector<uint8_t> escape_bytes;
  MDZ_RETURN_IF_ERROR(codec::LzDecompress(escapes_blob, &escape_bytes));
  if (escape_bytes.size() % sizeof(double) != 0) {
    return Status::Corruption("escape channel not a whole number of doubles");
  }
  escapes->resize(escape_bytes.size() / sizeof(double));
  if (!escape_bytes.empty()) {
    std::memcpy(escapes->data(), escape_bytes.data(), escape_bytes.size());
  }
  return Status::OK();
}

}  // namespace mdz::baselines::internal
