#ifndef MDZ_BASELINES_SZ3_INTERP_H_
#define MDZ_BASELINES_SZ3_INTERP_H_

#include "baselines/compressor_interface.h"

namespace mdz::baselines {

// SZ3-Interp-like compressor (Zhao et al., ICDE'21: "Optimizing error-bounded
// lossy compression for scientific data by dynamic spline interpolation" —
// cited by the MDZ paper as SZ-Interp). Within each buffer, values are
// predicted along the time axis by multi-level interpolation: anchor
// snapshots decode first, midpoints are predicted by cubic spline
// interpolation of decoded anchors (falling back to linear/extrapolation at
// the borders), with strides halving per level. Residuals go through the
// shared quantization + entropy backend.
//
// This is an EXTENSION baseline: the MDZ paper discusses SZ-Interp in
// related work but does not include it in the evaluation.
Result<std::vector<uint8_t>> Sz3InterpCompress(const Field& field,
                                               const CompressorConfig& config);

Result<Field> Sz3InterpDecompress(std::span<const uint8_t> data);

}  // namespace mdz::baselines

#endif  // MDZ_BASELINES_SZ3_INTERP_H_
