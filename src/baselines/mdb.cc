#include "baselines/mdb.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "baselines/common.h"
#include "util/byte_buffer.h"
#include "util/unaligned.h"

namespace mdz::baselines {

namespace {

using internal::FieldHeader;

enum ModelId : uint8_t { kPmcMean = 0, kSwing = 1, kGorilla = 2 };

inline uint64_t ToBits(double d) { return BitCast<uint64_t>(d); }

inline double FromBits(uint64_t u) { return BitCast<double>(u); }

// Longest PMC-mean segment starting at t: all values within a 2*eb window.
size_t PmcLength(const std::vector<double>& v, size_t t, double eb,
                 double* value) {
  double lo = v[t], hi = v[t];
  size_t end = t + 1;
  while (end < v.size()) {
    const double nlo = std::min(lo, v[end]);
    const double nhi = std::max(hi, v[end]);
    if (nhi - nlo > 2.0 * eb) break;
    lo = nlo;
    hi = nhi;
    ++end;
  }
  *value = 0.5 * (lo + hi);
  return end - t;
}

// Longest Swing segment starting at t: linear function anchored at v[t]
// whose slope cone stays non-empty (Elmeleegy et al., VLDB'09).
size_t SwingLength(const std::vector<double>& v, size_t t, double eb,
                   double* slope) {
  if (t + 1 >= v.size()) return 1;
  double lo_slope = -std::numeric_limits<double>::infinity();
  double hi_slope = std::numeric_limits<double>::infinity();
  size_t end = t + 1;
  while (end < v.size()) {
    const double dt = static_cast<double>(end - t);
    const double nlo = std::max(lo_slope, (v[end] - eb - v[t]) / dt);
    const double nhi = std::min(hi_slope, (v[end] + eb - v[t]) / dt);
    if (nlo > nhi) break;
    lo_slope = nlo;
    hi_slope = nhi;
    ++end;
  }
  *slope = 0.5 * (lo_slope + hi_slope);
  return end - t;
}

}  // namespace

Result<std::vector<uint8_t>> MdbCompress(const Field& field,
                                         const CompressorConfig& config) {
  if (field.empty() || field[0].empty()) {
    return Status::InvalidArgument("empty field");
  }
  const size_t n = field[0].size();
  const double abs_eb =
      internal::ResolveAbsoluteErrorBound(field, config.error_bound, config.buffer_size);

  ByteWriter out;
  internal::WriteFieldHeader(field, abs_eb, config.buffer_size, &out);

  std::vector<double> series;
  for (size_t first = 0; first < field.size(); first += config.buffer_size) {
    const size_t s_count =
        std::min<size_t>(config.buffer_size, field.size() - first);
    for (size_t i = 0; i < n; ++i) {
      series.resize(s_count);
      for (size_t s = 0; s < s_count; ++s) series[s] = field[first + s][i];

      uint64_t gorilla_prev = 0;
      size_t t = 0;
      while (t < s_count) {
        double pmc_value, swing_slope;
        const size_t pmc_len = PmcLength(series, t, abs_eb, &pmc_value);
        const size_t swing_len = SwingLength(series, t, abs_eb, &swing_slope);
        if (pmc_len >= 2 && pmc_len + 1 >= swing_len) {
          out.Put<uint8_t>(kPmcMean);
          out.PutVarint(pmc_len);
          out.Put<double>(pmc_value);
          t += pmc_len;
        } else if (swing_len >= 3) {
          out.Put<uint8_t>(kSwing);
          out.PutVarint(swing_len);
          out.Put<double>(series[t]);
          out.Put<double>(swing_slope);
          t += swing_len;
        } else {
          // Gorilla: XOR against the previous Gorilla value, leading-zero-
          // byte header + remainder bytes.
          const uint64_t bits = ToBits(series[t]);
          const uint64_t x = bits ^ gorilla_prev;
          gorilla_prev = bits;
          int lzb = (x == 0) ? 8 : (__builtin_clzll(x) >> 3);
          out.Put<uint8_t>(static_cast<uint8_t>(kGorilla | (lzb << 4)));
          const int nbytes = 8 - lzb;
          for (int b = nbytes - 1; b >= 0; --b) {
            out.Put<uint8_t>(static_cast<uint8_t>(x >> (8 * b)));
          }
          ++t;
        }
      }
    }
  }
  return out.TakeBytes();
}

Result<Field> MdbDecompress(std::span<const uint8_t> data) {
  ByteReader r(data);
  FieldHeader header;
  MDZ_RETURN_IF_ERROR(internal::ReadFieldHeader(&r, &header));

  Field field(header.m, std::vector<double>(header.n));
  for (size_t first = 0; first < header.m; first += header.buffer_size) {
    const size_t s_count =
        std::min<size_t>(header.buffer_size, header.m - first);
    for (size_t i = 0; i < header.n; ++i) {
      uint64_t gorilla_prev = 0;
      size_t t = 0;
      while (t < s_count) {
        uint8_t tag = 0;
        MDZ_RETURN_IF_ERROR(r.Get(&tag));
        const uint8_t model = tag & 0x0F;
        if (model == kPmcMean) {
          uint64_t len = 0;
          MDZ_RETURN_IF_ERROR(r.GetVarint(&len));
          double value = 0.0;
          MDZ_RETURN_IF_ERROR(r.Get(&value));
          if (t + len > s_count) {
            return Status::Corruption("MDB PMC segment overruns buffer");
          }
          for (uint64_t k = 0; k < len; ++k) field[first + t + k][i] = value;
          t += len;
        } else if (model == kSwing) {
          uint64_t len = 0;
          MDZ_RETURN_IF_ERROR(r.GetVarint(&len));
          double base = 0.0, slope = 0.0;
          MDZ_RETURN_IF_ERROR(r.Get(&base));
          MDZ_RETURN_IF_ERROR(r.Get(&slope));
          if (t + len > s_count) {
            return Status::Corruption("MDB Swing segment overruns buffer");
          }
          for (uint64_t k = 0; k < len; ++k) {
            field[first + t + k][i] = base + slope * static_cast<double>(k);
          }
          t += len;
        } else if (model == kGorilla) {
          const int lzb = tag >> 4;
          if (lzb > 8) return Status::Corruption("MDB bad Gorilla header");
          uint64_t x = 0;
          for (int b = 0; b < 8 - lzb; ++b) {
            uint8_t byte = 0;
            MDZ_RETURN_IF_ERROR(r.Get(&byte));
            x = (x << 8) | byte;
          }
          gorilla_prev ^= x;
          field[first + t][i] = FromBits(gorilla_prev);
          ++t;
        } else {
          return Status::Corruption("MDB unknown model id");
        }
      }
    }
  }
  return field;
}

}  // namespace mdz::baselines
