#ifndef MDZ_BASELINES_COMPRESSOR_INTERFACE_H_
#define MDZ_BASELINES_COMPRESSOR_INTERFACE_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mdz::baselines {

// Shared configuration for all lossy trajectory compressors in the
// evaluation harness. The error bound is value-range-relative (the paper's
// epsilon); each compressor resolves it to an absolute bound against the
// range of the data it is given.
struct CompressorConfig {
  double error_bound = 1e-3;
  uint32_t buffer_size = 10;  // BS: snapshots processed per batch
};

// A field is one axis of a trajectory: M snapshots x N values.
using Field = std::vector<std::vector<double>>;

using CompressFn = Result<std::vector<uint8_t>> (*)(const Field&,
                                                    const CompressorConfig&);
using DecompressFn = Result<Field> (*)(std::span<const uint8_t>);

struct LossyCompressorInfo {
  std::string_view name;
  CompressFn compress;
  DecompressFn decompress;
};

// The compressors of the paper's evaluation, in Fig. 12 order:
// SZ2, ASN, TNG, HRTC, MDB, LFZip, and MDZ ("OurSol") last. The paper
// benches (Table VI, Figs. 12-16) sweep exactly this set.
std::span<const LossyCompressorInfo> PaperLossyCompressors();

// Paper set plus the SZ3-interpolation extension baseline (related-work
// SZ-Interp; post-paper state of the art — see bench/ext_sz3_comparison).
std::span<const LossyCompressorInfo> AllLossyCompressors();

// All baselines (everything except MDZ).
std::span<const LossyCompressorInfo> BaselineLossyCompressors();

Result<LossyCompressorInfo> LossyCompressorByName(std::string_view name);

}  // namespace mdz::baselines

#endif  // MDZ_BASELINES_COMPRESSOR_INTERFACE_H_
