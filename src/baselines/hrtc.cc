#include "baselines/hrtc.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/common.h"
#include "codec/lz.h"
#include "util/byte_buffer.h"

namespace mdz::baselines {

namespace {

using internal::FieldHeader;

// Breakpoint values live on an eb/2 grid so a stored endpoint is within eb/2
// of the true value; interior points are validated against the reconstructed
// line with the full bound.
inline int64_t ToGrid(double value, double abs_eb) {
  return static_cast<int64_t>(std::llround(value / abs_eb));
}

inline double FromGrid(int64_t q, double abs_eb) {
  return abs_eb * static_cast<double>(q);
}

}  // namespace

Result<std::vector<uint8_t>> HrtcCompress(const Field& field,
                                          const CompressorConfig& config) {
  if (field.empty() || field[0].empty()) {
    return Status::InvalidArgument("empty field");
  }
  const size_t n = field[0].size();
  const double abs_eb =
      internal::ResolveAbsoluteErrorBound(field, config.error_bound, config.buffer_size);

  ByteWriter out;
  internal::WriteFieldHeader(field, abs_eb, config.buffer_size, &out);

  for (size_t first = 0; first < field.size(); first += config.buffer_size) {
    const size_t s_count =
        std::min<size_t>(config.buffer_size, field.size() - first);
    ByteWriter segments;
    int64_t prev_particle_start = 0;

    for (size_t i = 0; i < n; ++i) {
      // Per-particle time series v[0..s_count).
      const int64_t start_q = ToGrid(field[first][i], abs_eb);
      segments.PutSignedVarint(start_q - prev_particle_start);
      prev_particle_start = start_q;

      size_t t0 = 0;
      int64_t q0 = start_q;
      while (t0 + 1 < s_count) {
        // Greedy: longest te such that every interior point stays within eb
        // of the line through the reconstructed endpoints.
        size_t best_te = t0 + 1;
        int64_t best_qe = ToGrid(field[first + best_te][i], abs_eb);
        for (size_t te = t0 + 2; te < s_count; ++te) {
          const int64_t qe = ToGrid(field[first + te][i], abs_eb);
          const double y0 = FromGrid(q0, abs_eb);
          const double ye = FromGrid(qe, abs_eb);
          bool ok = true;
          for (size_t t = t0 + 1; t < te; ++t) {
            const double frac = static_cast<double>(t - t0) /
                                static_cast<double>(te - t0);
            const double line = y0 + frac * (ye - y0);
            if (std::fabs(field[first + t][i] - line) > abs_eb) {
              ok = false;
              break;
            }
          }
          if (!ok) break;
          best_te = te;
          best_qe = qe;
        }
        segments.PutVarint(best_te - t0);
        segments.PutSignedVarint(best_qe - q0);
        t0 = best_te;
        q0 = best_qe;
      }
    }
    out.PutBlob(codec::LzCompress(segments.bytes()));
  }
  return out.TakeBytes();
}

Result<Field> HrtcDecompress(std::span<const uint8_t> data) {
  ByteReader r(data);
  FieldHeader header;
  MDZ_RETURN_IF_ERROR(internal::ReadFieldHeader(&r, &header));

  Field field;
  field.reserve(header.m);
  for (size_t first = 0; first < header.m; first += header.buffer_size) {
    const size_t s_count =
        std::min<size_t>(header.buffer_size, header.m - first);
    std::span<const uint8_t> blob;
    MDZ_RETURN_IF_ERROR(r.GetBlob(&blob));
    std::vector<uint8_t> seg_bytes;
    MDZ_RETURN_IF_ERROR(codec::LzDecompress(blob, &seg_bytes));
    ByteReader segments(seg_bytes);

    std::vector<std::vector<double>> decoded(s_count,
                                             std::vector<double>(header.n));
    int64_t prev_particle_start = 0;
    for (size_t i = 0; i < header.n; ++i) {
      int64_t delta = 0;
      MDZ_RETURN_IF_ERROR(segments.GetSignedVarint(&delta));
      int64_t q0 = prev_particle_start + delta;
      prev_particle_start = q0;
      decoded[0][i] = FromGrid(q0, header.abs_eb);

      size_t t0 = 0;
      while (t0 + 1 < s_count) {
        uint64_t len = 0;
        MDZ_RETURN_IF_ERROR(segments.GetVarint(&len));
        int64_t dq = 0;
        MDZ_RETURN_IF_ERROR(segments.GetSignedVarint(&dq));
        const size_t te = t0 + len;
        if (len == 0 || te >= s_count + 1 || te <= t0) {
          return Status::Corruption("HRTC segment overruns buffer");
        }
        if (te > s_count - 1) {
          return Status::Corruption("HRTC segment end out of range");
        }
        const int64_t qe = q0 + dq;
        const double y0 = FromGrid(q0, header.abs_eb);
        const double ye = FromGrid(qe, header.abs_eb);
        for (size_t t = t0 + 1; t <= te; ++t) {
          const double frac =
              static_cast<double>(t - t0) / static_cast<double>(te - t0);
          decoded[t][i] = y0 + frac * (ye - y0);
        }
        t0 = te;
        q0 = qe;
      }
    }
    for (auto& snapshot : decoded) field.push_back(std::move(snapshot));
  }
  return field;
}

}  // namespace mdz::baselines
