#include "baselines/compressor_interface.h"

#include <string>

#include "baselines/asn.h"
#include "baselines/hrtc.h"
#include "baselines/lfzip.h"
#include "baselines/mdb.h"
#include "baselines/sz2.h"
#include "baselines/sz3_interp.h"
#include "baselines/tng.h"
#include "core/mdz.h"

namespace mdz::baselines {

namespace {

// MDZ (ADP) adapted to the registry interface.
Result<std::vector<uint8_t>> MdzCompress(const Field& field,
                                         const CompressorConfig& config) {
  core::Options options;
  options.error_bound = config.error_bound;
  options.buffer_size = config.buffer_size;
  options.method = core::Method::kAdaptive;
  return core::CompressField(field, options);
}

Result<Field> MdzDecompress(std::span<const uint8_t> data) {
  return core::DecompressField(data);
}

// Order follows paper Fig. 12; SZ3 is an extension baseline (cited as
// SZ-Interp in the paper's related work but not evaluated there).
constexpr LossyCompressorInfo kBaselines[] = {
    {"SZ2", &Sz2CompressDefault, &Sz2Decompress},
    {"ASN", &AsnCompress, &AsnDecompress},
    {"TNG", &TngCompress, &TngDecompress},
    {"HRTC", &HrtcCompress, &HrtcDecompress},
    {"MDB", &MdbCompress, &MdbDecompress},
    {"LFZip", &LfzipCompress, &LfzipDecompress},
    {"SZ3", &Sz3InterpCompress, &Sz3InterpDecompress},
};

constexpr LossyCompressorInfo kPaper[] = {
    {"SZ2", &Sz2CompressDefault, &Sz2Decompress},
    {"ASN", &AsnCompress, &AsnDecompress},
    {"TNG", &TngCompress, &TngDecompress},
    {"HRTC", &HrtcCompress, &HrtcDecompress},
    {"MDB", &MdbCompress, &MdbDecompress},
    {"LFZip", &LfzipCompress, &LfzipDecompress},
    {"MDZ", &MdzCompress, &MdzDecompress},
};

constexpr LossyCompressorInfo kAll[] = {
    {"SZ2", &Sz2CompressDefault, &Sz2Decompress},
    {"ASN", &AsnCompress, &AsnDecompress},
    {"TNG", &TngCompress, &TngDecompress},
    {"HRTC", &HrtcCompress, &HrtcDecompress},
    {"MDB", &MdbCompress, &MdbDecompress},
    {"LFZip", &LfzipCompress, &LfzipDecompress},
    {"SZ3", &Sz3InterpCompress, &Sz3InterpDecompress},
    {"MDZ", &MdzCompress, &MdzDecompress},
};

}  // namespace

std::span<const LossyCompressorInfo> PaperLossyCompressors() { return kPaper; }

std::span<const LossyCompressorInfo> AllLossyCompressors() { return kAll; }

std::span<const LossyCompressorInfo> BaselineLossyCompressors() {
  return kBaselines;
}

Result<LossyCompressorInfo> LossyCompressorByName(std::string_view name) {
  for (const LossyCompressorInfo& info : kAll) {
    if (info.name == name) return info;
  }
  return Status::InvalidArgument("unknown compressor: " + std::string(name));
}

}  // namespace mdz::baselines
