#ifndef MDZ_BASELINES_ASN_H_
#define MDZ_BASELINES_ASN_H_

#include "baselines/compressor_interface.h"

namespace mdz::baselines {

// ASN-like compressor (Li et al., Big Data'18: "Optimizing lossy compression
// with adjacent snapshots for N-body simulation data"): each value is
// predicted by linear motion extrapolation from the two preceding snapshots
// (an implicit velocity estimate), falling back to previous-snapshot and
// spatial Lorenzo prediction at the stream start, followed by the SZ-style
// quantization + entropy backend.
Result<std::vector<uint8_t>> AsnCompress(const Field& field,
                                         const CompressorConfig& config);

Result<Field> AsnDecompress(std::span<const uint8_t> data);

}  // namespace mdz::baselines

#endif  // MDZ_BASELINES_ASN_H_
