#include "baselines/lfzip.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/common.h"
#include "quant/quantizer.h"
#include "util/byte_buffer.h"

namespace mdz::baselines {

namespace {

using internal::FieldHeader;

constexpr uint32_t kScale = 4096;  // LFZip quantizes errors to a wide table
constexpr int kTaps = 32;
constexpr double kMu = 0.5;
constexpr double kEps = 1e-6;

// NLMS filter advanced identically by encoder and decoder (operates on
// reconstructed values only).
class Nlms {
 public:
  Nlms() : w_(kTaps, 0.0), h_(kTaps, 0.0) {}

  double Predict() const {
    double p = 0.0;
    for (int k = 0; k < kTaps; ++k) p += w_[k] * h_[k];
    return p;
  }

  void Update(double reconstructed, double prediction) {
    const double e = reconstructed - prediction;
    double norm = kEps;
    for (int k = 0; k < kTaps; ++k) norm += h_[k] * h_[k];
    const double g = kMu * e / norm;
    for (int k = 0; k < kTaps; ++k) w_[k] += g * h_[k];
    // Shift history (most recent first).
    for (int k = kTaps - 1; k > 0; --k) h_[k] = h_[k - 1];
    h_[0] = reconstructed;
  }

 private:
  std::vector<double> w_;
  std::vector<double> h_;
};

}  // namespace

Result<std::vector<uint8_t>> LfzipCompress(const Field& field,
                                           const CompressorConfig& config) {
  if (field.empty() || field[0].empty()) {
    return Status::InvalidArgument("empty field");
  }
  const size_t n = field[0].size();
  const double abs_eb =
      internal::ResolveAbsoluteErrorBound(field, config.error_bound, config.buffer_size);
  const quant::LinearQuantizer quantizer(abs_eb, kScale);

  ByteWriter out;
  internal::WriteFieldHeader(field, abs_eb, config.buffer_size, &out);

  Nlms filter;
  for (size_t first = 0; first < field.size(); first += config.buffer_size) {
    const size_t s_count =
        std::min<size_t>(config.buffer_size, field.size() - first);
    std::vector<uint32_t> codes;
    codes.reserve(s_count * n);
    std::vector<double> escapes;

    // Particle-major traversal: the filter adapts to per-particle series.
    for (size_t i = 0; i < n; ++i) {
      for (size_t s = 0; s < s_count; ++s) {
        const double value = field[first + s][i];
        const double pred = filter.Predict();
        double dec;
        const uint32_t code = quantizer.Encode(value, pred, &dec);
        if (code == 0) escapes.push_back(value);
        codes.push_back(code);
        filter.Update(dec, pred);
      }
    }
    out.PutBlob(internal::PackQuantBlock(codes, escapes, kScale));
  }
  return out.TakeBytes();
}

Result<Field> LfzipDecompress(std::span<const uint8_t> data) {
  ByteReader r(data);
  FieldHeader header;
  MDZ_RETURN_IF_ERROR(internal::ReadFieldHeader(&r, &header));
  const quant::LinearQuantizer quantizer(header.abs_eb, kScale);

  Field field(header.m, std::vector<double>(header.n));
  Nlms filter;
  for (size_t first = 0; first < header.m; first += header.buffer_size) {
    const size_t s_count =
        std::min<size_t>(header.buffer_size, header.m - first);
    std::span<const uint8_t> blob;
    MDZ_RETURN_IF_ERROR(r.GetBlob(&blob));
    std::vector<uint32_t> codes;
    std::vector<double> escapes;
    MDZ_RETURN_IF_ERROR(internal::UnpackQuantBlock(blob, &codes, &escapes));
    if (codes.size() != s_count * header.n) {
      return Status::Corruption("LFZip code count mismatch");
    }

    size_t pos = 0;
    size_t escape_pos = 0;
    for (size_t i = 0; i < header.n; ++i) {
      for (size_t s = 0; s < s_count; ++s) {
        const uint32_t code = codes[pos++];
        const double pred = filter.Predict();
        double dec;
        if (code == 0) {
          if (escape_pos >= escapes.size()) {
            return Status::Corruption("LFZip escape channel exhausted");
          }
          dec = escapes[escape_pos++];
        } else {
          if (code >= kScale) {
            return Status::Corruption("LFZip quant code out of scale");
          }
          dec = quantizer.Decode(code, pred);
        }
        field[first + s][i] = dec;
        filter.Update(dec, pred);
      }
    }
  }
  return field;
}

}  // namespace mdz::baselines
