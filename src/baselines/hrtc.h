#ifndef MDZ_BASELINES_HRTC_H_
#define MDZ_BASELINES_HRTC_H_

#include "baselines/compressor_interface.h"

namespace mdz::baselines {

// HRTC-like compressor (Huwald et al., JCC'16: "Compressing molecular
// dynamics trajectories: breaking the one-bit-per-sample barrier"): each
// particle's trajectory inside a buffer is approximated by a greedy piecewise
// linear function whose breakpoint values are quantized to an eb/2 grid;
// interior points are guaranteed within eb of the reconstructed line.
// Breakpoints are stored as (run length, value delta) varints + dictionary
// coding.
Result<std::vector<uint8_t>> HrtcCompress(const Field& field,
                                          const CompressorConfig& config);

Result<Field> HrtcDecompress(std::span<const uint8_t> data);

}  // namespace mdz::baselines

#endif  // MDZ_BASELINES_HRTC_H_
