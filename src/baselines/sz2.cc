#include "baselines/sz2.h"

#include <algorithm>
#include <vector>

#include "baselines/common.h"
#include "quant/quantizer.h"
#include "util/byte_buffer.h"

namespace mdz::baselines {

namespace {

using internal::FieldHeader;

constexpr uint32_t kScale = 1024;

// Encodes one buffer (S x N) with Lorenzo prediction on decompressed values.
std::vector<uint8_t> EncodeBuffer(const Field& field, size_t first, size_t s_count,
                                  double abs_eb, Sz2Mode mode) {
  const size_t n = field[first].size();
  const quant::LinearQuantizer quantizer(abs_eb, kScale);

  std::vector<uint32_t> codes;
  codes.reserve(s_count * n);
  std::vector<double> escapes;
  std::vector<std::vector<double>> decoded(s_count, std::vector<double>(n));

  for (size_t s = 0; s < s_count; ++s) {
    const auto& snapshot = field[first + s];
    for (size_t i = 0; i < n; ++i) {
      double pred;
      if (mode == Sz2Mode::k1D) {
        // Order-1 Lorenzo along the flattened buffer.
        if (i > 0) {
          pred = decoded[s][i - 1];
        } else if (s > 0) {
          pred = decoded[s - 1][n - 1];
        } else {
          pred = 0.0;
        }
      } else {
        // 2-D Lorenzo over the (time, particle) grid.
        const double left = (i > 0) ? decoded[s][i - 1] : 0.0;
        const double up = (s > 0) ? decoded[s - 1][i] : 0.0;
        const double diag = (i > 0 && s > 0) ? decoded[s - 1][i - 1] : 0.0;
        if (i > 0 && s > 0) {
          pred = left + up - diag;
        } else if (i > 0) {
          pred = left;
        } else if (s > 0) {
          pred = up;
        } else {
          pred = 0.0;
        }
      }
      double dec;
      const uint32_t code = quantizer.Encode(snapshot[i], pred, &dec);
      if (code == 0) escapes.push_back(snapshot[i]);
      decoded[s][i] = dec;
      codes.push_back(code);
    }
  }
  return internal::PackQuantBlock(codes, escapes, kScale);
}

}  // namespace

Result<std::vector<uint8_t>> Sz2Compress(const Field& field,
                                         const CompressorConfig& config,
                                         Sz2Mode mode) {
  if (field.empty() || field[0].empty()) {
    return Status::InvalidArgument("empty field");
  }
  const double abs_eb =
      internal::ResolveAbsoluteErrorBound(field, config.error_bound, config.buffer_size);

  ByteWriter out;
  internal::WriteFieldHeader(field, abs_eb, config.buffer_size, &out);
  out.Put<uint8_t>(static_cast<uint8_t>(mode));

  for (size_t first = 0; first < field.size(); first += config.buffer_size) {
    const size_t s_count =
        std::min<size_t>(config.buffer_size, field.size() - first);
    out.PutBlob(EncodeBuffer(field, first, s_count, abs_eb, mode));
  }
  return out.TakeBytes();
}

Result<Field> Sz2Decompress(std::span<const uint8_t> data) {
  ByteReader r(data);
  FieldHeader header;
  MDZ_RETURN_IF_ERROR(internal::ReadFieldHeader(&r, &header));
  uint8_t mode_byte = 0;
  MDZ_RETURN_IF_ERROR(r.Get(&mode_byte));
  if (mode_byte != 1 && mode_byte != 2) {
    return Status::Corruption("bad SZ2 mode byte");
  }
  const Sz2Mode mode = static_cast<Sz2Mode>(mode_byte);
  const quant::LinearQuantizer quantizer(header.abs_eb, kScale);

  Field field;
  field.reserve(header.m);
  for (size_t first = 0; first < header.m; first += header.buffer_size) {
    const size_t s_count =
        std::min<size_t>(header.buffer_size, header.m - first);
    std::span<const uint8_t> blob;
    MDZ_RETURN_IF_ERROR(r.GetBlob(&blob));
    std::vector<uint32_t> codes;
    std::vector<double> escapes;
    MDZ_RETURN_IF_ERROR(internal::UnpackQuantBlock(blob, &codes, &escapes));
    if (codes.size() != s_count * header.n) {
      return Status::Corruption("SZ2 code count mismatch");
    }

    std::vector<std::vector<double>> decoded(s_count,
                                             std::vector<double>(header.n));
    size_t escape_pos = 0;
    size_t pos = 0;
    for (size_t s = 0; s < s_count; ++s) {
      for (size_t i = 0; i < header.n; ++i) {
        const uint32_t code = codes[pos++];
        if (code == 0) {
          if (escape_pos >= escapes.size()) {
            return Status::Corruption("SZ2 escape channel exhausted");
          }
          decoded[s][i] = escapes[escape_pos++];
          continue;
        }
        if (code >= kScale) {
          return Status::Corruption("SZ2 quant code out of scale");
        }
        double pred;
        if (mode == Sz2Mode::k1D) {
          if (i > 0) {
            pred = decoded[s][i - 1];
          } else if (s > 0) {
            pred = decoded[s - 1][header.n - 1];
          } else {
            pred = 0.0;
          }
        } else {
          const double left = (i > 0) ? decoded[s][i - 1] : 0.0;
          const double up = (s > 0) ? decoded[s - 1][i] : 0.0;
          const double diag = (i > 0 && s > 0) ? decoded[s - 1][i - 1] : 0.0;
          if (i > 0 && s > 0) {
            pred = left + up - diag;
          } else if (i > 0) {
            pred = left;
          } else if (s > 0) {
            pred = up;
          } else {
            pred = 0.0;
          }
        }
        decoded[s][i] = quantizer.Decode(code, pred);
      }
    }
    for (auto& snapshot : decoded) field.push_back(std::move(snapshot));
  }
  return field;
}

Result<std::vector<uint8_t>> Sz2CompressDefault(
    const Field& field, const CompressorConfig& config) {
  return Sz2Compress(field, config, Sz2Mode::k2D);
}

}  // namespace mdz::baselines
