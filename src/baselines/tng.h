#ifndef MDZ_BASELINES_TNG_H_
#define MDZ_BASELINES_TNG_H_

#include "baselines/compressor_interface.h"

namespace mdz::baselines {

// TNG-like compressor (Lundborg et al., JCC'14 — the GROMACS TNG trajectory
// format): positions are quantized to a fixed-point integer grid derived from
// the error bound, the first frame of each buffer is intra-frame delta coded
// (particle i vs particle i-1) and subsequent frames are inter-frame delta
// coded (vs the same particle in the previous frame); the deltas go through
// zigzag varint packing and a dictionary coder.
Result<std::vector<uint8_t>> TngCompress(const Field& field,
                                         const CompressorConfig& config);

Result<Field> TngDecompress(std::span<const uint8_t> data);

}  // namespace mdz::baselines

#endif  // MDZ_BASELINES_TNG_H_
