#include "baselines/sz3_interp.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/common.h"
#include "quant/quantizer.h"
#include "util/byte_buffer.h"

namespace mdz::baselines {

namespace {

using internal::FieldHeader;

constexpr uint32_t kScale = 1024;

// Decode/encode order of one buffer: snapshot 0 first, then interpolation
// levels with halving stride. Returns the list of (t, stride) pairs in
// processing order; identical on both sides.
std::vector<std::pair<size_t, size_t>> InterpolationOrder(size_t s_count) {
  std::vector<std::pair<size_t, size_t>> order;
  if (s_count <= 1) return order;
  size_t top = 1;
  while (top * 2 < s_count) top *= 2;
  for (size_t stride = top; stride >= 1; stride /= 2) {
    for (size_t t = stride; t < s_count; t += 2 * stride) {
      order.emplace_back(t, stride);
    }
    if (stride == 1) break;
  }
  return order;
}

// Spline prediction of snapshot t for particle i from decoded anchors.
// decoded_at[t] tells whether snapshot t is already reconstructed.
inline double Predict(const std::vector<std::vector<double>>& dec,
                      const std::vector<uint8_t>& decoded_at, size_t t,
                      size_t stride, size_t s_count, size_t i) {
  const bool has_right = (t + stride < s_count) && decoded_at[t + stride];
  if (!has_right) {
    return dec[t - stride][i];  // border: 1-sided (extrapolation)
  }
  // Cubic when the 4-point stencil exists, linear otherwise (the "dynamic"
  // part of dynamic spline interpolation).
  const bool has_far_left = (t >= 3 * stride) && decoded_at[t - 3 * stride];
  const bool has_far_right =
      (t + 3 * stride < s_count) && decoded_at[t + 3 * stride];
  if (has_far_left && has_far_right) {
    return (-dec[t - 3 * stride][i] + 9.0 * dec[t - stride][i] +
            9.0 * dec[t + stride][i] - dec[t + 3 * stride][i]) /
           16.0;
  }
  return 0.5 * (dec[t - stride][i] + dec[t + stride][i]);
}

}  // namespace

Result<std::vector<uint8_t>> Sz3InterpCompress(const Field& field,
                                               const CompressorConfig& config) {
  if (field.empty() || field[0].empty()) {
    return Status::InvalidArgument("empty field");
  }
  const size_t n = field[0].size();
  const double abs_eb =
      internal::ResolveAbsoluteErrorBound(field, config.error_bound, config.buffer_size);
  const quant::LinearQuantizer quantizer(abs_eb, kScale);

  ByteWriter out;
  internal::WriteFieldHeader(field, abs_eb, config.buffer_size, &out);

  std::vector<double> prev_last;  // decoded last snapshot of previous buffer
  for (size_t first = 0; first < field.size(); first += config.buffer_size) {
    const size_t s_count =
        std::min<size_t>(config.buffer_size, field.size() - first);
    std::vector<uint32_t> codes;
    codes.reserve(s_count * n);
    std::vector<double> escapes;
    std::vector<std::vector<double>> dec(s_count, std::vector<double>(n));
    std::vector<uint8_t> decoded_at(s_count, 0);

    auto quantize_snapshot = [&](size_t t, auto&& predictor) {
      for (size_t i = 0; i < n; ++i) {
        const double pred = predictor(i);
        double d;
        const uint32_t code = quantizer.Encode(field[first + t][i], pred, &d);
        if (code == 0) escapes.push_back(field[first + t][i]);
        dec[t][i] = d;
        codes.push_back(code);
      }
      decoded_at[t] = 1;
    };

    // Snapshot 0: previous buffer's last decoded snapshot, or spatial
    // Lorenzo at the stream start.
    if (!prev_last.empty()) {
      quantize_snapshot(0, [&](size_t i) { return prev_last[i]; });
    } else {
      quantize_snapshot(0, [&](size_t i) {
        return (i > 0) ? dec[0][i - 1] : 0.0;
      });
    }
    for (const auto& [t, stride] : InterpolationOrder(s_count)) {
      quantize_snapshot(t, [&](size_t i) {
        return Predict(dec, decoded_at, t, stride, s_count, i);
      });
    }
    prev_last = dec[s_count - 1];
    out.PutBlob(internal::PackQuantBlock(codes, escapes, kScale));
  }
  return out.TakeBytes();
}

Result<Field> Sz3InterpDecompress(std::span<const uint8_t> data) {
  ByteReader r(data);
  FieldHeader header;
  MDZ_RETURN_IF_ERROR(internal::ReadFieldHeader(&r, &header));
  const quant::LinearQuantizer quantizer(header.abs_eb, kScale);

  Field field;
  field.reserve(header.m);
  std::vector<double> prev_last;
  for (size_t first = 0; first < header.m; first += header.buffer_size) {
    const size_t s_count =
        std::min<size_t>(header.buffer_size, header.m - first);
    std::span<const uint8_t> blob;
    MDZ_RETURN_IF_ERROR(r.GetBlob(&blob));
    std::vector<uint32_t> codes;
    std::vector<double> escapes;
    MDZ_RETURN_IF_ERROR(internal::UnpackQuantBlock(blob, &codes, &escapes));
    if (codes.size() != s_count * header.n) {
      return Status::Corruption("SZ3 code count mismatch");
    }

    std::vector<std::vector<double>> dec(s_count,
                                         std::vector<double>(header.n));
    std::vector<uint8_t> decoded_at(s_count, 0);
    size_t pos = 0;
    size_t escape_pos = 0;

    auto decode_snapshot = [&](size_t t, auto&& predictor) -> Status {
      for (size_t i = 0; i < header.n; ++i) {
        const uint32_t code = codes[pos++];
        if (code == 0) {
          if (escape_pos >= escapes.size()) {
            return Status::Corruption("SZ3 escape channel exhausted");
          }
          dec[t][i] = escapes[escape_pos++];
          continue;
        }
        if (code >= kScale) {
          return Status::Corruption("SZ3 quant code out of scale");
        }
        dec[t][i] = quantizer.Decode(code, predictor(i));
      }
      decoded_at[t] = 1;
      return Status::OK();
    };

    if (!prev_last.empty()) {
      MDZ_RETURN_IF_ERROR(
          decode_snapshot(0, [&](size_t i) { return prev_last[i]; }));
    } else {
      MDZ_RETURN_IF_ERROR(decode_snapshot(0, [&](size_t i) {
        return (i > 0) ? dec[0][i - 1] : 0.0;
      }));
    }
    for (const auto& [t, stride] : InterpolationOrder(s_count)) {
      MDZ_RETURN_IF_ERROR(decode_snapshot(t, [&](size_t i) {
        return Predict(dec, decoded_at, t, stride, s_count, i);
      }));
    }
    prev_last = dec[s_count - 1];
    for (auto& snapshot : dec) field.push_back(std::move(snapshot));
  }
  return field;
}

}  // namespace mdz::baselines
