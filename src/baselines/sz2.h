#ifndef MDZ_BASELINES_SZ2_H_
#define MDZ_BASELINES_SZ2_H_

#include "baselines/compressor_interface.h"

namespace mdz::baselines {

// SZ2-like prediction-based error-bounded compressor (Tao et al., IPDPS'17 /
// Liang et al., CLUSTER'18): Lorenzo prediction + linear quantization +
// Huffman + dictionary coding. Supports the two modes of paper Table IV:
//  * 1D: order-1 Lorenzo along the flattened buffer (space only).
//  * 2D: order-1 2-D Lorenzo over the (time x particle) grid of each buffer,
//    exploiting space and time smoothness simultaneously.
enum class Sz2Mode : uint8_t { k1D = 1, k2D = 2 };

Result<std::vector<uint8_t>> Sz2Compress(const Field& field,
                                         const CompressorConfig& config,
                                         Sz2Mode mode);

Result<Field> Sz2Decompress(std::span<const uint8_t> data);

// Registry adapters (2D mode, the setting used in the paper's main
// comparisons per Table IV).
Result<std::vector<uint8_t>> Sz2CompressDefault(const Field& field,
                                                const CompressorConfig& config);

}  // namespace mdz::baselines

#endif  // MDZ_BASELINES_SZ2_H_
