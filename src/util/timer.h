#ifndef MDZ_UTIL_TIMER_H_
#define MDZ_UTIL_TIMER_H_

#include <chrono>

namespace mdz {

// Simple monotonic wall-clock timer for throughput reporting.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mdz

#endif  // MDZ_UTIL_TIMER_H_
