#ifndef MDZ_UTIL_BYTE_BUFFER_H_
#define MDZ_UTIL_BYTE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"
#include "util/unaligned.h"

namespace mdz {

// ByteWriter appends little-endian scalar values and raw blocks to a growable
// byte vector. Used to assemble compressed stream sections.
class ByteWriter {
 public:
  ByteWriter() = default;

  // Appends a trivially-copyable scalar in native (little-endian) layout.
  template <typename T>
  void Put(T value) {
    const auto raw = ToBytes(value);
    bytes_.insert(bytes_.end(), raw.begin(), raw.end());
  }

  void PutBytes(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  void PutBytes(std::span<const uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  // LEB128 unsigned varint.
  void PutVarint(uint64_t value) {
    while (value >= 0x80) {
      bytes_.push_back(static_cast<uint8_t>(value) | 0x80);
      value >>= 7;
    }
    bytes_.push_back(static_cast<uint8_t>(value));
  }

  // Zigzag-encoded signed varint.
  void PutSignedVarint(int64_t value) {
    PutVarint((static_cast<uint64_t>(value) << 1) ^
              static_cast<uint64_t>(value >> 63));
  }

  // Appends a length-prefixed blob (varint length + raw bytes).
  void PutBlob(std::span<const uint8_t> data) {
    PutVarint(data.size());
    PutBytes(data);
  }

  size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

  // Overwrites `sizeof(T)` bytes at `offset` (used to back-patch lengths).
  template <typename T>
  void PatchAt(size_t offset, T value) {
    StoreU(bytes_.data() + offset, value);
  }

 private:
  std::vector<uint8_t> bytes_;
};

// ByteReader consumes a byte span produced by ByteWriter, with bounds checks
// on every read so that truncated/corrupt streams surface as Status errors.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  template <typename T>
  Status Get(T* out) {
    if (pos_ + sizeof(T) > data_.size()) {
      return Status::Corruption("byte stream truncated (scalar)");
    }
    *out = LoadU<T>(data_.data() + pos_);
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status GetBytes(void* out, size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::Corruption("byte stream truncated (raw bytes)");
    }
    if (n != 0) std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status GetVarint(uint64_t* out) {
    uint64_t value = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size()) {
        return Status::Corruption("byte stream truncated (varint)");
      }
      const uint8_t b = data_[pos_++];
      if (shift >= 63 && (b & 0x7F) > 1) {
        return Status::Corruption("varint overflows 64 bits");
      }
      value |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    *out = value;
    return Status::OK();
  }

  Status GetSignedVarint(int64_t* out) {
    uint64_t raw = 0;
    MDZ_RETURN_IF_ERROR(GetVarint(&raw));
    *out = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
    return Status::OK();
  }

  // Reads a length-prefixed blob as a subspan (no copy).
  Status GetBlob(std::span<const uint8_t>* out) {
    uint64_t n = 0;
    MDZ_RETURN_IF_ERROR(GetVarint(&n));
    if (pos_ + n > data_.size()) {
      return Status::Corruption("byte stream truncated (blob)");
    }
    *out = data_.subspan(pos_, n);
    pos_ += n;
    return Status::OK();
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace mdz

#endif  // MDZ_UTIL_BYTE_BUFFER_H_
