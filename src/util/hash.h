#ifndef MDZ_UTIL_HASH_H_
#define MDZ_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace mdz {

// 64-bit FNV-1a over a byte span. Used as the integrity checksum in the
// compressed container format (cheap, streaming-friendly, good avalanche for
// corruption detection; not cryptographic).
inline uint64_t Fnv1a64(std::span<const uint8_t> data,
                        uint64_t seed = 0xCBF29CE484222325ull) {
  uint64_t hash = seed;
  for (uint8_t byte : data) {
    hash ^= byte;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

}  // namespace mdz

#endif  // MDZ_UTIL_HASH_H_
