#ifndef MDZ_UTIL_RNG_H_
#define MDZ_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

namespace mdz {

// Deterministic xoshiro256**-based PRNG. All dataset generators and samplers
// in this library take an explicit seed and use this generator so that every
// experiment is bit-reproducible across platforms (unlike std::normal_distribution,
// whose output is implementation-defined).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97f4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) { return NextU64() % n; }

  // Standard normal via Box-Muller (deterministic, no cached spare to keep
  // state minimal).
  double Gaussian() {
    double u1 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    const double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(6.283185307179586476925286766559 * u2);
  }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace mdz

#endif  // MDZ_UTIL_RNG_H_
