#ifndef MDZ_UTIL_CPU_H_
#define MDZ_UTIL_CPU_H_

// Runtime SIMD capability probe and variant selection for the dispatched
// kernels (core/block_kernels.h, the Huffman fast decoder and the LZ match
// finder). The active variant is resolved once, from strongest supported to
// weakest:
//
//   1. an explicit SetSimdVariant() call (CLI `--simd`, tests),
//   2. the MDZ_SIMD environment variable ("scalar", "avx2", "neon"),
//   3. the CPUID/arch probe (AVX2 on x86-64, NEON on aarch64),
//   4. scalar.
//
// Requesting a variant the host cannot execute (MDZ_SIMD=avx2 on a non-AVX2
// machine) silently falls back to scalar rather than crashing; requesting an
// unknown name is an error at the parse step (see ParseSimdVariant).
//
// Every variant is byte-identical to scalar on encode and decode — the
// override exists for CI pinning, benchmarking and debugging, not for
// output control. See docs/KERNELS.md.

#include <optional>
#include <string_view>

namespace mdz::util {

enum class SimdVariant : int {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

// Stable lower-case name ("scalar", "avx2", "neon").
std::string_view SimdVariantName(SimdVariant variant);

// Parses a variant name; nullopt for unknown names.
std::optional<SimdVariant> ParseSimdVariant(std::string_view name);

// True when the host can execute `variant` (kScalar is always true).
bool SimdVariantSupported(SimdVariant variant);

// The variant the dispatched kernels use. Resolved on first call (env +
// probe) and cached; SetSimdVariant replaces the cached value.
SimdVariant ActiveSimdVariant();

// Overrides the active variant (clamped to a supported one: unsupported
// requests fall back to kScalar). Returns the variant actually installed.
// Thread-safe; takes effect for subsequent kernel dispatch lookups.
SimdVariant SetSimdVariant(SimdVariant variant);

}  // namespace mdz::util

#endif  // MDZ_UTIL_CPU_H_
