#ifndef MDZ_UTIL_BIT_STREAM_H_
#define MDZ_UTIL_BIT_STREAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace mdz {

// BitWriter packs bits LSB-first into a growing byte vector. Hot path for
// Huffman and bit-plane coding, so everything is inline and branch-light.
class BitWriter {
 public:
  BitWriter() = default;

  // Writes the low `nbits` bits of `bits` (nbits in [0, 57]).
  void Write(uint64_t bits, int nbits) {
    acc_ |= bits << filled_;
    filled_ += nbits;
    while (filled_ >= 8) {
      out_.push_back(static_cast<uint8_t>(acc_));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  void WriteBit(bool bit) { Write(bit ? 1u : 0u, 1); }

  // Flushes any partial byte. Call exactly once, after the last Write.
  void Flush() {
    if (filled_ > 0) {
      out_.push_back(static_cast<uint8_t>(acc_));
      acc_ = 0;
      filled_ = 0;
    }
  }

  size_t bit_count() const { return out_.size() * 8 + filled_; }
  const std::vector<uint8_t>& bytes() const { return out_; }
  std::vector<uint8_t> TakeBytes() { return std::move(out_); }

 private:
  std::vector<uint8_t> out_;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

// BitReader consumes bits LSB-first from a byte span. Reads past the end
// return zero bits and set the overrun flag (checked once at the end by the
// caller) instead of per-bit Status plumbing, which would be too slow.
class BitReader {
 public:
  explicit BitReader(std::span<const uint8_t> data) : data_(data) {}

  // Reads `nbits` bits (nbits in [0, 57]).
  uint64_t Read(int nbits) {
    consumed_ += nbits;
    while (filled_ < nbits) {
      if (pos_ < data_.size()) {
        acc_ |= static_cast<uint64_t>(data_[pos_++]) << filled_;
      } else {
        overrun_ = true;
      }
      filled_ += 8;
    }
    const uint64_t mask = (nbits == 64) ? ~0ull : ((1ull << nbits) - 1);
    const uint64_t value = acc_ & mask;
    acc_ >>= nbits;
    filled_ -= nbits;
    return value;
  }

  bool ReadBit() { return Read(1) != 0; }

  // Peeks up to 32 bits without consuming them (for table-driven decoding).
  uint32_t Peek(int nbits) {
    while (filled_ < nbits) {
      if (pos_ < data_.size()) {
        acc_ |= static_cast<uint64_t>(data_[pos_++]) << filled_;
        filled_ += 8;
      } else {
        filled_ = nbits;  // zero-pad; overrun is flagged only on Read
        break;
      }
    }
    const uint64_t mask = (1ull << nbits) - 1;
    return static_cast<uint32_t>(acc_ & mask);
  }

  // Consumes `nbits` previously peeked bits.
  void Skip(int nbits) {
    consumed_ += nbits;
    if (filled_ < nbits) {
      overrun_ = true;
      filled_ = nbits;
    }
    acc_ >>= nbits;
    filled_ -= nbits;
  }

  // True if more bits were consumed than the input contains (zero-padded
  // reads past the end count as overrun even when Peek masked them).
  bool overrun() const {
    return overrun_ || consumed_ > 8 * data_.size();
  }

  Status CheckNoOverrun() const {
    if (overrun()) return Status::Corruption("bit stream truncated");
    return Status::OK();
  }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;
  int filled_ = 0;
  size_t consumed_ = 0;
  bool overrun_ = false;
};

}  // namespace mdz

#endif  // MDZ_UTIL_BIT_STREAM_H_
