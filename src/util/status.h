#ifndef MDZ_UTIL_STATUS_H_
#define MDZ_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace mdz {

// Error categories used across the MDZ library. Mirrors the coarse taxonomy
// used by database-style C++ projects: a small enum plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kCorruption,      // malformed or truncated compressed stream
  kOutOfRange,      // index/value outside the permitted domain
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

// Status carries either success (OK) or an error code plus message.
// It is cheap to copy in the OK case and is the mandatory return type of all
// fallible public APIs in this library (no exceptions cross API boundaries).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status. Modeled after
// absl::StatusOr<T>; accessing the value of an error result aborts.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status to the caller. Usable only in functions
// returning Status.
#define MDZ_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::mdz::Status _mdz_status = (expr);       \
    if (!_mdz_status.ok()) return _mdz_status; \
  } while (false)

// Evaluates a Result<T> expression; on error returns its status, otherwise
// moves the value into `lhs`.
#define MDZ_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto MDZ_CONCAT_(_mdz_result, __LINE__) = (expr);      \
  if (!MDZ_CONCAT_(_mdz_result, __LINE__).ok())          \
    return MDZ_CONCAT_(_mdz_result, __LINE__).status();  \
  lhs = std::move(MDZ_CONCAT_(_mdz_result, __LINE__)).value()

#define MDZ_CONCAT_INNER_(a, b) a##b
#define MDZ_CONCAT_(a, b) MDZ_CONCAT_INNER_(a, b)

}  // namespace mdz

#endif  // MDZ_UTIL_STATUS_H_
