#ifndef MDZ_UTIL_UNALIGNED_H_
#define MDZ_UTIL_UNALIGNED_H_

// Centralized strict-aliasing-clean scalar load/store and type-punning
// helpers. Every codec in this tree reads and writes multi-byte scalars at
// byte granularity (hash probes, match finders, header fields, float<->bit
// punning); routing them all through these helpers keeps the scalar and SIMD
// paths on one idiom that is well-defined under UBSan: memcpy-based
// unaligned access and std::bit_cast for same-size reinterpretation.
//
// All loads/stores are native-endian (the on-disk formats in this repo are
// little-endian and the tree targets little-endian hosts; see FORMAT.md).

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace mdz {

// Reads a T from a possibly unaligned address.
template <typename T>
inline T LoadU(const void* p) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

// Writes a T to a possibly unaligned address.
template <typename T>
inline void StoreU(void* p, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::memcpy(p, &value, sizeof(T));
}

// Same-size bit reinterpretation (double <-> uint64_t and friends).
template <typename To, typename From>
inline To BitCast(From from) {
  static_assert(sizeof(To) == sizeof(From));
  return std::bit_cast<To>(from);
}

// The object representation of a scalar as a byte array (native layout),
// for appending to byte vectors without reinterpret_cast.
template <typename T>
inline std::array<uint8_t, sizeof(T)> ToBytes(T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::bit_cast<std::array<uint8_t, sizeof(T)>>(value);
}

}  // namespace mdz

#endif  // MDZ_UTIL_UNALIGNED_H_
