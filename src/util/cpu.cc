#include "util/cpu.h"

#include <atomic>
#include <cstdlib>

namespace mdz::util {

namespace {

bool HostHasAvx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool HostHasNeon() {
#if defined(__aarch64__)
  return true;  // Advanced SIMD is baseline on AArch64
#else
  return false;
#endif
}

SimdVariant Probe() {
  if (const char* env = std::getenv("MDZ_SIMD")) {
    if (auto parsed = ParseSimdVariant(env);
        parsed.has_value() && SimdVariantSupported(*parsed)) {
      return *parsed;
    }
    // Unknown or unsupported request: run scalar rather than guessing.
    return SimdVariant::kScalar;
  }
  if (HostHasAvx2()) return SimdVariant::kAvx2;
  if (HostHasNeon()) return SimdVariant::kNeon;
  return SimdVariant::kScalar;
}

// -1 = unresolved; otherwise the int value of the active SimdVariant.
std::atomic<int> g_active{-1};

}  // namespace

std::string_view SimdVariantName(SimdVariant variant) {
  switch (variant) {
    case SimdVariant::kScalar: return "scalar";
    case SimdVariant::kAvx2: return "avx2";
    case SimdVariant::kNeon: return "neon";
  }
  return "scalar";
}

std::optional<SimdVariant> ParseSimdVariant(std::string_view name) {
  if (name == "scalar") return SimdVariant::kScalar;
  if (name == "avx2") return SimdVariant::kAvx2;
  if (name == "neon") return SimdVariant::kNeon;
  return std::nullopt;
}

bool SimdVariantSupported(SimdVariant variant) {
  switch (variant) {
    case SimdVariant::kScalar: return true;
    case SimdVariant::kAvx2: return HostHasAvx2();
    case SimdVariant::kNeon: return HostHasNeon();
  }
  return false;
}

SimdVariant ActiveSimdVariant() {
  int v = g_active.load(std::memory_order_acquire);
  if (v < 0) {
    const SimdVariant probed = Probe();
    int expected = -1;
    // First resolver wins; a concurrent SetSimdVariant is preserved.
    if (g_active.compare_exchange_strong(expected, static_cast<int>(probed),
                                         std::memory_order_acq_rel)) {
      return probed;
    }
    v = expected;
  }
  return static_cast<SimdVariant>(v);
}

SimdVariant SetSimdVariant(SimdVariant variant) {
  const SimdVariant installed =
      SimdVariantSupported(variant) ? variant : SimdVariant::kScalar;
  g_active.store(static_cast<int>(installed), std::memory_order_release);
  return installed;
}

}  // namespace mdz::util
