#ifndef MDZ_QUANT_ROW_CODER_H_
#define MDZ_QUANT_ROW_CODER_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace mdz::quant {

// The quantizer seam of the block codec (SZ3-style stage boundary): a
// prediction-relative grid over an S x N block of doubles, driven one row —
// or, for raster-order predictors that read the current row's left
// neighbors, one element — at a time.
//
// A predictor drives the same RowCoder calls in the same processing order on
// both sides of the codec without knowing which side it is on: the encode
// driver quantizes raw values against the predictions (filling the escape
// side channel), the decode driver reconstructs from the code array. Both
// expose the reconstructed rows completed so far through decoded(), which is
// the only data predictors may read back — predictions must be functions of
// reconstructed values, or encoder and decoder would diverge.
class RowCoder {
 public:
  virtual ~RowCoder() = default;

  // Codes row t against per-element predictions preds[0..row_len). The
  // row-wide form is the kernel fast path (core/block_kernels); predictors
  // should prefer it whenever the whole prediction row is known up front.
  virtual Status CodeRow(size_t t, const double* preds) = 0;

  // Codes element (t, i) against pred. Elements of a row must be coded in
  // ascending i; decoded()[t][0..i) is valid during the call, which is what
  // lets Lorenzo-style predictors use the just-coded left neighbor.
  virtual Status CodeElement(size_t t, size_t i, double pred) = 0;

  // Reconstructed rows. decoded()[t] is complete once row t has been coded.
  virtual const std::vector<std::vector<double>>& decoded() const = 0;

  size_t rows() const { return rows_; }
  size_t row_len() const { return row_len_; }

 protected:
  RowCoder(size_t rows, size_t row_len) : rows_(rows), row_len_(row_len) {}

 private:
  size_t rows_;
  size_t row_len_;
};

}  // namespace mdz::quant

#endif  // MDZ_QUANT_ROW_CODER_H_
