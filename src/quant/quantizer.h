#ifndef MDZ_QUANT_QUANTIZER_H_
#define MDZ_QUANT_QUANTIZER_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace mdz::quant {

// Linear-scale quantizer (SZ-style, paper Section VI-C).
//
// Prediction errors are mapped to integer codes: code 0 is reserved as the
// "unpredictable" escape (the original value is stored verbatim in a side
// channel), and code `radius` represents a perfect prediction. The
// quantization scale (total number of codes, default 1024) bounds the Huffman
// alphabet; errors that land outside the scale take the escape path.
//
// Reconstruction is `pred + 2*eb*(code - radius)`, which guarantees
// |decoded - original| <= eb whenever the code is in range.
class LinearQuantizer {
 public:
  LinearQuantizer(double error_bound, uint32_t scale = 1024)
      : eb_(error_bound),
        inv_2eb_(1.0 / (2.0 * error_bound)),
        radius_(scale / 2),
        scale_(scale) {}

  uint32_t scale() const { return scale_; }
  uint32_t radius() const { return radius_; }
  double error_bound() const { return eb_; }
  double inv_two_eb() const { return inv_2eb_; }

  // Quantizes `value` against `prediction`. Returns the code; code 0 means
  // unpredictable (caller must store the exact value) and *decoded is set to
  // `value` in that case, otherwise to the reconstructed approximation.
  uint32_t Encode(double value, double prediction, double* decoded) const {
    const double diff = value - prediction;
    // Round-half-away-from-zero of diff / (2*eb).
    const double scaled = diff * inv_2eb_;
    if (!(std::fabs(scaled) < static_cast<double>(radius_) - 1.0)) {
      *decoded = value;
      return 0;  // escape: out of scale (also catches NaN/inf)
    }
    const int64_t q = static_cast<int64_t>(std::llround(scaled));
    const double recon = prediction + 2.0 * eb_ * static_cast<double>(q);
    if (std::fabs(recon - value) > eb_) {
      *decoded = value;  // numerical edge case; take the exact path
      return 0;
    }
    *decoded = recon;
    return static_cast<uint32_t>(q + static_cast<int64_t>(radius_));
  }

  // Reconstructs from a non-zero code.
  double Decode(uint32_t code, double prediction) const {
    const int64_t q =
        static_cast<int64_t>(code) - static_cast<int64_t>(radius_);
    return prediction + 2.0 * eb_ * static_cast<double>(q);
  }

 private:
  double eb_;
  double inv_2eb_;
  uint32_t radius_;
  uint32_t scale_;
};

}  // namespace mdz::quant

#endif  // MDZ_QUANT_QUANTIZER_H_
