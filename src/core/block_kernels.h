#ifndef MDZ_CORE_BLOCK_KERNELS_H_
#define MDZ_CORE_BLOCK_KERNELS_H_

// PISA-style kernel boundary for the data-parallel inner loops of the block
// codec: each hot kernel is a plain function pointer, grouped per SIMD
// variant, and the variant is picked once at runtime (util/cpu.h). Every
// variant is required to be byte-identical to the scalar reference on both
// encode and decode — including IEEE rounding of the quantizer (llround's
// round-half-away-from-zero is emulated exactly on top of the vector
// round-to-nearest-even) — so ADP trial sizes and tie-breaks never depend
// on the host. tests/block_codec_test.cc enforces this property for every
// registered variant. See docs/KERNELS.md for the inventory and for how to
// add a variant.

#include <cstddef>
#include <cstdint>
#include <span>

#include "quant/quantizer.h"
#include "util/cpu.h"

namespace mdz::core::internal {

// Clamp for VQ level indices so mu + lambda*L stays finite even for
// degenerate level models; out-of-band predictions take the escape path.
// Levels are carried as integral doubles (|L| <= 1e15 < 2^53, so the int64
// conversion at the use site is exact).
inline constexpr double kMaxLevel = 1e15;

struct BlockKernels {
  const char* name;  // "scalar", "avx2", "neon"
  util::SimdVariant variant;

  // Fused prediction-delta + linear-scale quantization over one row:
  // codes[i] = quantizer code of values[i] against preds[i]; decoded[i] is
  // the reconstruction, or the original value for escapes (code 0). The
  // caller appends escaped values to the side channel by scanning codes.
  void (*quantize_row)(const quant::LinearQuantizer& q, const double* values,
                       const double* preds, size_t n, uint32_t* codes,
                       double* decoded);

  // Inverse fast path: decoded[i] = q.Decode(codes[i], preds[i]) provided
  // every code in the row is regular (0 < code < scale). Returns false —
  // with the row possibly partially written — as soon as an escape or
  // out-of-scale code is seen; the caller then redoes the row on the exact
  // scalar reconstruct path (escape channel, corruption Status).
  bool (*dequantize_row)(const quant::LinearQuantizer& q,
                         const uint32_t* codes, const double* preds, size_t n,
                         double* decoded);

  // VQ level lookup (paper Algorithm 1): levels_d[i] = clamped
  // round((values[i] - mu) / lambda) as an integral double, and preds[i] =
  // mu + lambda * levels_d[i].
  void (*vq_predict)(const double* values, size_t n, double mu, double lambda,
                     double* levels_d, double* preds);

  // Seq-2 reorder: row-major rows x cols -> row-major cols x rows
  // (out[c*rows + r] = in[r*cols + c]). Serves both directions of the
  // particle-major transpose.
  void (*transpose)(const uint32_t* in, size_t rows, size_t cols,
                    uint32_t* out);
};

// The scalar reference kernels (always available).
const BlockKernels& ScalarBlockKernels();

// Kernels for a specific variant; nullptr when the host cannot run it or
// the binary was not built for that architecture.
const BlockKernels* BlockKernelsForVariant(util::SimdVariant variant);

// All variants runnable on this host (scalar first). Property tests and the
// micro benches iterate this.
std::span<const BlockKernels* const> RegisteredBlockKernels();

// Kernels for util::ActiveSimdVariant(), falling back to scalar. Also
// refreshes the `simd/variant` observability gauge.
const BlockKernels& ActiveBlockKernels();

}  // namespace mdz::core::internal

#endif  // MDZ_CORE_BLOCK_KERNELS_H_
