#ifndef MDZ_CORE_STREAMING_H_
#define MDZ_CORE_STREAMING_H_

// Bounded-memory streaming pipeline (the execution model the paper assumes:
// only a window of BS snapshots is ever resident). A SnapshotSource yields
// one core::Snapshot at a time, a SnapshotSink consumes them, and
// StreamingCompressor::Pump moves snapshots from one to the other with a
// bounded hand-off queue, overlapping source I/O with sink compute on a
// dedicated reader thread. The same pump drives both directions: streaming
// compression (trajectory reader -> archive writer) and streaming
// decompression (archive reader -> trajectory writer); the file-format
// adapters live in src/io (io/streaming.h), which can see both this layer
// and src/archive.

#include <atomic>
#include <cstddef>

#include "core/trajectory.h"
#include "util/status.h"

namespace mdz::core {

// Produces snapshots in stream order. Implementations are pulled from one
// thread at a time (the pump's reader thread); they need no locking.
class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;

  // Per-snapshot value count per axis; fixed for the stream's lifetime.
  virtual size_t num_particles() const = 0;

  // Yields the next snapshot into *out. Returns false (with *out untouched)
  // when the stream is exhausted.
  virtual Result<bool> Next(Snapshot* out) = 0;
};

// Consumes snapshots in stream order. Append and Finish are called from the
// pump's calling thread only.
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;

  virtual Status Append(const Snapshot& snapshot) = 0;

  // Called exactly once, after the last Append.
  virtual Status Finish() = 0;

  // Snapshots the sink is currently holding (e.g. an archive writer's
  // pending window). Feeds the pump's peak-in-flight accounting so tests can
  // assert the O(N*BS) memory bound end to end.
  virtual size_t buffered_snapshots() const { return 0; }
};

struct StreamOptions {
  // Hand-off queue capacity in snapshots; 0 picks a small default. With a
  // sink that buffers at most BS snapshots (the archive writer), a capacity
  // of BS bounds the whole pipeline at 2*BS snapshots in flight.
  size_t queue_capacity = 0;

  // Read ahead on a dedicated thread so source I/O overlaps sink compute
  // (double buffering). False pulls and pushes on the calling thread.
  bool overlap_io = true;

  // Cooperative cancellation (the CLI's SIGINT/SIGTERM handler sets this
  // from signal context). When the pointed-to flag turns true the pump
  // stops pulling from the source, but still calls sink->Finish() — the
  // archive written so far is sealed and readable — and returns OK with
  // StreamStats::cancelled set. nullptr means not cancellable.
  const std::atomic<bool>* cancel = nullptr;
};

struct StreamStats {
  size_t snapshots = 0;        // snapshots moved source -> sink
  size_t peak_in_flight = 0;   // max queue + in-hand + sink-buffered
  size_t source_stalls = 0;    // sink waited on an empty queue
  size_t sink_stalls = 0;      // source waited on a full queue
  bool cancelled = false;      // stopped early via StreamOptions::cancel
};

// Streaming driver. Pump() drains `source` into `sink` (calling
// sink->Finish() on success) and reports how much moved and how much was
// ever in flight. Errors from either side abort the transfer and surface
// unchanged; the sink is left un-Finished so a caller can distinguish a
// sealed output from an aborted one. Telemetry (when enabled): stream/*
// counters, span/stream_* timings, and the process/peak_rss_bytes gauge.
class StreamingCompressor {
 public:
  static Result<StreamStats> Pump(SnapshotSource* source, SnapshotSink* sink,
                                  const StreamOptions& options = {});
};

}  // namespace mdz::core

#endif  // MDZ_CORE_STREAMING_H_
