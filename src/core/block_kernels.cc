#include "core/block_kernels.h"

#include <cmath>
#include <vector>

#include "obs/metrics.h"

namespace mdz::core::internal {

namespace {

// --- Scalar reference kernels ----------------------------------------------
// These are the semantics every SIMD variant must reproduce bit-exactly.

void QuantizeRowScalar(const quant::LinearQuantizer& q, const double* values,
                       const double* preds, size_t n, uint32_t* codes,
                       double* decoded) {
  for (size_t i = 0; i < n; ++i) {
    codes[i] = q.Encode(values[i], preds[i], &decoded[i]);
  }
}

bool DequantizeRowScalar(const quant::LinearQuantizer& q,
                         const uint32_t* codes, const double* preds, size_t n,
                         double* decoded) {
  const uint32_t scale = q.scale();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t code = codes[i];
    if (code == 0 || code >= scale) return false;
    decoded[i] = q.Decode(code, preds[i]);
  }
  return true;
}

void VqPredictScalar(const double* values, size_t n, double mu, double lambda,
                     double* levels_d, double* preds) {
  for (size_t i = 0; i < n; ++i) {
    double l = std::round((values[i] - mu) / lambda);
    if (!(l > -kMaxLevel)) {
      l = -kMaxLevel;  // also catches NaN
    } else if (!(l < kMaxLevel)) {
      l = kMaxLevel;
    }
    levels_d[i] = l;
    preds[i] = mu + lambda * l;
  }
}

void TransposeScalar(const uint32_t* in, size_t rows, size_t cols,
                     uint32_t* out) {
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      out[c * rows + r] = in[r * cols + c];
    }
  }
}

}  // namespace

const BlockKernels& ScalarBlockKernels() {
  static const BlockKernels kScalar = {
      "scalar",          util::SimdVariant::kScalar,
      &QuantizeRowScalar, &DequantizeRowScalar,
      &VqPredictScalar,  &TransposeScalar,
  };
  return kScalar;
}

#if defined(__x86_64__) || defined(_M_X64)
const BlockKernels& Avx2BlockKernels();  // block_kernels_avx2.cc
#endif
#if defined(__aarch64__)
const BlockKernels& NeonBlockKernels();  // block_kernels_neon.cc
#endif

const BlockKernels* BlockKernelsForVariant(util::SimdVariant variant) {
  if (!util::SimdVariantSupported(variant)) return nullptr;
  switch (variant) {
    case util::SimdVariant::kScalar:
      return &ScalarBlockKernels();
    case util::SimdVariant::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return &Avx2BlockKernels();
#else
      return nullptr;
#endif
    case util::SimdVariant::kNeon:
#if defined(__aarch64__)
      return &NeonBlockKernels();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

std::span<const BlockKernels* const> RegisteredBlockKernels() {
  static const std::vector<const BlockKernels*> registered = [] {
    std::vector<const BlockKernels*> all;
    for (util::SimdVariant v :
         {util::SimdVariant::kScalar, util::SimdVariant::kAvx2,
          util::SimdVariant::kNeon}) {
      if (const BlockKernels* k = BlockKernelsForVariant(v)) all.push_back(k);
    }
    return all;
  }();
  return registered;
}

const BlockKernels& ActiveBlockKernels() {
  const util::SimdVariant variant = util::ActiveSimdVariant();
  const BlockKernels* kernels = BlockKernelsForVariant(variant);
  if (kernels == nullptr) kernels = &ScalarBlockKernels();
  if (obs::Enabled()) {
    // One gauge per dispatched kernel (they switch together today, but the
    // per-kernel gauges keep telemetry honest if a variant ever ships a
    // partial kernel set) plus the summary `simd/variant` gauge.
    static obs::Gauge* variant_gauge =
        obs::MetricsRegistry::Global().GetGauge("simd/variant");
    static obs::Gauge* quantize_gauge =
        obs::MetricsRegistry::Global().GetGauge("simd/kernel/quantize_row");
    static obs::Gauge* dequantize_gauge =
        obs::MetricsRegistry::Global().GetGauge("simd/kernel/dequantize_row");
    static obs::Gauge* vq_gauge =
        obs::MetricsRegistry::Global().GetGauge("simd/kernel/vq_predict");
    static obs::Gauge* transpose_gauge =
        obs::MetricsRegistry::Global().GetGauge("simd/kernel/transpose");
    const auto v = static_cast<int64_t>(kernels->variant);
    variant_gauge->Set(v);
    quantize_gauge->Set(v);
    dequantize_gauge->Set(v);
    vq_gauge->Set(v);
    transpose_gauge->Set(v);
  }
  return *kernels;
}

}  // namespace mdz::core::internal
