#include "core/streaming.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "obs/timeline.h"

namespace mdz::core {

namespace {

constexpr size_t kDefaultQueueCapacity = 8;

bool Cancelled(const std::atomic<bool>* cancel) {
  return cancel != nullptr && cancel->load(std::memory_order_relaxed);
}

// Bounded single-producer single-consumer hand-off queue. The producer (the
// pump's reader thread) blocks when the queue is full — that is what keeps
// the pipeline's memory bounded however fast the source is — and the
// consumer blocks when it is empty. Stall counts are kept for telemetry.
class SnapshotQueue {
 public:
  explicit SnapshotQueue(size_t capacity) : capacity_(std::max<size_t>(capacity, 1)) {}

  // Producer side. Returns false when the consumer closed the queue early
  // (an Append error), telling the producer to stop reading.
  bool Push(Snapshot snapshot) {
    std::unique_lock<std::mutex> lock(mu_);
    while (queue_.size() >= capacity_ && !closed_) {
      ++sink_stalls_;
      space_cv_.wait(lock);
    }
    if (closed_) return false;
    queue_.push_back(std::move(snapshot));
    item_cv_.notify_one();
    return true;
  }

  // Producer side: no more snapshots (end of stream or source error).
  void SetDone(Status status) {
    std::lock_guard<std::mutex> lock(mu_);
    done_ = true;
    source_status_ = std::move(status);
    item_cv_.notify_one();
  }

  // Consumer side. Returns false at end of stream; *queued_behind is how
  // many snapshots remained queued after this pop (for peak accounting).
  Result<bool> Pop(Snapshot* out, size_t* queued_behind) {
    std::unique_lock<std::mutex> lock(mu_);
    while (queue_.empty() && !done_) {
      ++source_stalls_;
      item_cv_.wait(lock);
    }
    if (queue_.empty()) {
      MDZ_RETURN_IF_ERROR(source_status_);
      return false;
    }
    *out = std::move(queue_.front());
    queue_.pop_front();
    *queued_behind = queue_.size();
    space_cv_.notify_one();
    return true;
  }

  // Consumer side: abort — wake and stop the producer.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    space_cv_.notify_one();
  }

  size_t source_stalls() const { return source_stalls_; }
  size_t sink_stalls() const { return sink_stalls_; }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable item_cv_;
  std::condition_variable space_cv_;
  std::deque<Snapshot> queue_;
  bool done_ = false;
  bool closed_ = false;
  Status source_status_ = Status::OK();
  size_t source_stalls_ = 0;  // guarded by mu_; read after the transfer
  size_t sink_stalls_ = 0;
};

void RecordStreamTelemetry(const StreamStats& stats) {
  if (!obs::Enabled()) return;
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("stream/snapshots")->Add(stats.snapshots);
  registry.GetCounter("stream/source_stalls")->Add(stats.source_stalls);
  registry.GetCounter("stream/sink_stalls")->Add(stats.sink_stalls);
  registry.GetGauge("stream/peak_in_flight")
      ->Set(static_cast<int64_t>(stats.peak_in_flight));
  obs::RecordPeakRss();
}

Result<StreamStats> PumpSerial(SnapshotSource* source, SnapshotSink* sink,
                               const std::atomic<bool>* cancel) {
  StreamStats stats;
  Snapshot snapshot;
  while (true) {
    if (Cancelled(cancel)) {
      stats.cancelled = true;
      break;
    }
    bool more = false;
    {
      MDZ_SPAN("stream_read");
      MDZ_ASSIGN_OR_RETURN(more, source->Next(&snapshot));
    }
    if (!more) break;
    stats.peak_in_flight = std::max(stats.peak_in_flight,
                                    1 + sink->buffered_snapshots());
    {
      MDZ_SPAN("stream_append");
      MDZ_RETURN_IF_ERROR(sink->Append(snapshot));
    }
    ++stats.snapshots;
  }
  {
    MDZ_SPAN("stream_finish");
    MDZ_RETURN_IF_ERROR(sink->Finish());
  }
  RecordStreamTelemetry(stats);
  return stats;
}

}  // namespace

Result<StreamStats> StreamingCompressor::Pump(SnapshotSource* source,
                                              SnapshotSink* sink,
                                              const StreamOptions& options) {
  MDZ_SPAN("stream_pump");
  if (source == nullptr || sink == nullptr) {
    return Status::InvalidArgument("streaming pump needs a source and a sink");
  }
  if (!options.overlap_io) return PumpSerial(source, sink, options.cancel);

  const size_t capacity = options.queue_capacity > 0 ? options.queue_capacity
                                                     : kDefaultQueueCapacity;
  SnapshotQueue queue(capacity);

  // The reader must be a dedicated thread, not a pool task: it blocks on the
  // queue while the consumer drives compression, and compression fans its
  // own work onto the shared pool — parking a blocking producer there could
  // deadlock the pool against itself. It adopts the caller's trace context
  // so its stream_read spans stay in the request's span tree.
  const obs::TraceContext trace_context = obs::CurrentTraceContext();
  std::thread producer([&, trace_context]() {
    obs::SetTimelineThreadName("stream-reader");
    obs::PrepareThreadForProfiling();
    obs::ScopedTraceContext adopted(trace_context);
    Snapshot snapshot;
    while (true) {
      if (Cancelled(options.cancel)) {
        queue.SetDone(Status::OK());
        return;
      }
      Result<bool> more = [&]() -> Result<bool> {
        MDZ_SPAN("stream_read");
        return source->Next(&snapshot);
      }();
      if (!more.ok()) {
        queue.SetDone(more.status());
        return;
      }
      if (!*more) {
        queue.SetDone(Status::OK());
        return;
      }
      if (!queue.Push(std::move(snapshot))) return;  // consumer aborted
    }
  });

  StreamStats stats;
  Status sink_status = Status::OK();
  Status source_status = Status::OK();
  Snapshot snapshot;
  while (true) {
    if (Cancelled(options.cancel)) {
      queue.Close();
      break;
    }
    size_t queued_behind = 0;
    Result<bool> more = queue.Pop(&snapshot, &queued_behind);
    if (!more.ok()) {
      source_status = more.status();
      break;
    }
    if (!*more) break;
    // In flight right now: what is still queued, the snapshot in hand, and
    // whatever the sink has pending but not yet flushed.
    stats.peak_in_flight =
        std::max(stats.peak_in_flight,
                 queued_behind + 1 + sink->buffered_snapshots());
    {
      MDZ_SPAN("stream_append");
      sink_status = sink->Append(snapshot);
    }
    if (!sink_status.ok()) {
      queue.Close();
      break;
    }
    ++stats.snapshots;
  }
  producer.join();
  stats.source_stalls = queue.source_stalls();
  stats.sink_stalls = queue.sink_stalls();
  stats.cancelled = Cancelled(options.cancel);
  MDZ_RETURN_IF_ERROR(sink_status);
  MDZ_RETURN_IF_ERROR(source_status);
  {
    MDZ_SPAN("stream_finish");
    MDZ_RETURN_IF_ERROR(sink->Finish());
  }
  RecordStreamTelemetry(stats);
  return stats;
}

}  // namespace mdz::core
