#ifndef MDZ_CORE_MDZ_H_
#define MDZ_CORE_MDZ_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "cluster/kmeans1d.h"
#include "core/trajectory.h"
#include "util/status.h"

namespace mdz::obs {
class TraceSink;  // obs/trace.h
}

namespace mdz::core {

class ThreadPool;  // core/thread_pool.h

// Prediction strategy (paper Section VI). kAdaptive (ADP) trial-compresses
// with the candidate methods periodically and keeps the winner.
enum class Method : uint8_t {
  kVQ = 0,   // vector-quantization (spatial levels), snapshot-independent
  kVQT = 1,  // VQ on the buffer's first snapshot, time prediction after
  kMT = 2,   // snapshot-0 prediction for the first, time prediction after
  kAdaptive = 3,  // selector; never appears in the stream
  // Extension (not in the paper): temporal spline interpolation within the
  // buffer (SZ3-style two-sided prediction). Off by default for ADP; see
  // Options::enable_interpolation.
  kTI = 4,
  // Extensions (not in the paper): opt-in ADP candidates; see
  // Options::adp_methods and docs/FORMAT.md's method-byte registry.
  kLorenzo2D = 5,    // order-1 Lorenzo over the (snapshot x particle) plane
  kBitAdaptive = 6,  // time prediction + per-sub-block bit-adaptive packing
};

// True for methods that can appear as a block/frame method byte (everything
// except the kAdaptive selector).
bool IsConcreteMethod(Method method);

std::string_view MethodName(Method method);

enum class ErrorBoundMode : uint8_t {
  kAbsolute = 0,
  // Paper's epsilon: absolute bound = epsilon * (max - min), resolved on the
  // first buffer of data and frozen for the rest of the stream.
  kValueRangeRelative = 1,
};

// Quantization-code layout inside a buffer (paper Section VI-C2).
enum class CodeLayout : uint8_t {
  kSnapshotMajor = 1,  // Seq-1
  kParticleMajor = 2,  // Seq-2 (default; better dictionary-coder locality)
};

struct Options {
  double error_bound = 1e-3;
  ErrorBoundMode error_bound_mode = ErrorBoundMode::kValueRangeRelative;
  Method method = Method::kAdaptive;
  uint32_t buffer_size = 10;            // BS: snapshots per buffer
  uint32_t quantization_scale = 1024;   // paper Section VI-C1
  CodeLayout layout = CodeLayout::kParticleMajor;
  uint32_t adaptation_interval = 50;    // ADP re-evaluation period (buffers)
  // Adds the TI (temporal interpolation) predictor to ADP's candidate set.
  // Off by default so the adaptive selector matches the paper's VQ/VQT/MT
  // design; turn on for maximum ratio on temporally smooth data.
  bool enable_interpolation = false;
  // ADP trial-candidate allow-list. Empty means the paper's set: VQ, VQT,
  // MT, plus TI when enable_interpolation is on and the buffer is large
  // enough. Entries must be concrete methods (not kAdaptive) and unique;
  // the list order is the trial order, and with the first-smallest
  // tie-break it fully determines the stream — the same list always
  // reproduces the same bytes at any thread count. This IS part of the
  // stream format in that sense: resuming a sealed ADP stream
  // (ArchiveWriter::Reopen, mdz append) must use the list it was written
  // with.
  std::vector<Method> adp_methods;
  // Fraction of the absolute error bound granted to the bit-adaptive
  // candidate's quantization grid, in (0, 1] (the HRTC-style error-budget
  // split between prediction and quantization error). 1.0 spends the whole
  // budget on the grid; smaller values buy downstream accuracy headroom at
  // the cost of wider codes. Ignored by every other method.
  double eb_split = 1.0;
  cluster::LevelFitOptions level_fit;   // VQ level-detection knobs
  // Optional, non-owning: when set, ADP runs its trial encodes concurrently
  // on this pool. The candidate order and smallest-output tie-break are
  // fixed, so the stream stays byte-identical to a serial run. Not part of
  // the stream format. The pool must outlive the compressor.
  ThreadPool* pool = nullptr;

  // --- Telemetry (src/obs, docs/OBSERVABILITY.md) --------------------------
  // When true, the compressor records per-stage timing spans and pipeline
  // counters into obs::MetricsRegistry::Global() and emits one trace event
  // per flushed buffer to `trace` (if set). Create() flips the process-wide
  // obs::SetEnabled switch on, so the shared instrumentation (thread pool,
  // codec spans) lights up too. Off by default: the only residual cost is a
  // relaxed atomic load per instrumentation site. None of these fields are
  // part of the stream format.
  bool telemetry = false;
  obs::TraceSink* trace = nullptr;  // non-owning; must outlive the compressor
  int trace_axis = -1;              // axis label stamped into trace events

  Status Validate() const;
};

// Per-stream statistics exposed by the compressor (for the adaptive-tracking
// experiments and the examples).
struct CompressorStats {
  size_t snapshots_in = 0;
  size_t buffers_out = 0;
  size_t raw_bytes = 0;
  size_t compressed_bytes = 0;
  size_t escape_count = 0;      // values stored verbatim
  size_t adaptation_runs = 0;   // ADP trial rounds executed
  Method current_method = Method::kVQ;

  // Per-method block counters (which predictor actually won each buffer;
  // Fig. 10/11 material). They sum to buffers_out.
  size_t blocks_vq = 0;
  size_t blocks_vqt = 0;
  size_t blocks_mt = 0;
  size_t blocks_ti = 0;
  size_t blocks_l2d = 0;
  size_t blocks_ba = 0;

  // Where the compressed bytes went, by pipeline stage. huffman_bytes is the
  // entropy-stage output *before* the dictionary coder (so it does not sum
  // with the others); main_lz_bytes + side_lz_bytes + framing_bytes ==
  // compressed_bytes.
  size_t huffman_bytes = 0;   // Huffman(B) + Huffman(J), pre-dictionary
  size_t main_lz_bytes = 0;   // dictionary-coded main payload
  size_t side_lz_bytes = 0;   // dictionary-coded escape/level side channel
  size_t framing_bytes = 0;   // stream header + block framing/method bytes

  double compression_ratio() const {
    return compressed_bytes == 0
               ? 0.0
               : static_cast<double>(raw_bytes) /
                     static_cast<double>(compressed_bytes);
  }
};

// Decompression-side accounting, exposed by FieldDecompressor::stats().
struct DecompressorStats {
  size_t blocks_decoded = 0;      // block payloads decoded (incl. re-decodes
                                  // for seeks and the MT initial-state read)
  size_t snapshots_decoded = 0;   // snapshots materialized from blocks
  size_t bytes_in = 0;            // framed compressed bytes consumed
  size_t bytes_out = 0;           // decoded doubles produced
  size_t corruption_errors = 0;   // Corruption statuses surfaced to callers
};

// Streaming compressor for one scalar field (one axis of an MD trajectory):
// snapshots are appended one at a time, buffered BS at a time, and each full
// buffer is compressed into a self-contained block. This mirrors the paper's
// execution model where only a bounded window of snapshots is ever held in
// memory.
class FieldCompressor {
 public:
  // num_particles is the fixed per-snapshot length N.
  static Result<std::unique_ptr<FieldCompressor>> Create(size_t num_particles,
                                                         const Options& options);

  // Everything a sealed stream determines about its compressor's mid-stream
  // state, in plain values a container layer can recover from the file:
  // the resolved absolute bound and the level grid come verbatim from the
  // stream (header / first VQ-family block), the two predictor snapshots
  // are decoded output, and the block count replays ADP's deterministic
  // evaluation schedule. See FieldCompressor::Resume.
  struct ResumeState {
    double abs_eb = 0.0;            // stream header's resolved bound
    bool has_levels = false;        // level grid recovered?
    double level_mu = 0.0;
    double level_lambda = 1.0;
    std::vector<double> initial;    // decoded stream snapshot 0
    std::vector<double> prev_last;  // last decoded snapshot of the stream
    Method current_method = Method::kMT;  // method of the final block
    size_t buffers_out = 0;         // blocks already in the stream
    size_t snapshots_in = 0;        // snapshots already in the stream
  };

  // Re-creates a compressor positioned exactly where a previous one stood
  // after emitting `state.buffers_out` full buffers: no stream header is
  // written again, the bound/grid/predictor state are restored from `state`,
  // and ADP's interval counter is replayed from the block count (the
  // schedule is a pure function of it). Appending to a Resume()d compressor
  // yields bytes identical to what the original compressor would have
  // produced for the same snapshots — the contract behind in-situ archive
  // append. Requires the same Options the stream was created with (buffer
  // size, scale, layout, method, adaptation interval); `state.has_levels`
  // false leaves the grid to be refit from the next buffer, which only
  // matches the original when the stream never encoded a VQ/VQT block.
  static Result<std::unique_ptr<FieldCompressor>> Resume(
      size_t num_particles, const Options& options, const ResumeState& state);

  ~FieldCompressor();

  FieldCompressor(const FieldCompressor&) = delete;
  FieldCompressor& operator=(const FieldCompressor&) = delete;

  // Appends one snapshot (size must equal num_particles). Compression of a
  // buffer happens transparently when BS snapshots have accumulated.
  Status Append(std::span<const double> snapshot);

  // Flushes a partial final buffer. Must be called exactly once, after the
  // last Append.
  Status Finish();

  const std::vector<uint8_t>& output() const;
  // Moves the bytes produced so far out of the compressor. May be called
  // between Appends, not just after Finish: the compressor keeps appending
  // newly flushed buffers to a now-empty output, so a streaming container
  // (src/archive) can drain frames as they are produced and keep memory
  // bounded. Stats (compressed_bytes et al.) accumulate across drains.
  std::vector<uint8_t> TakeOutput();
  const CompressorStats& stats() const;

  // Size of compressed output produced for the most recent buffer, and the
  // method that produced it (diagnostics for Fig. 10/11).
  size_t last_block_bytes() const;
  Method last_block_method() const;

 private:
  FieldCompressor();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Streaming decompressor: yields snapshots in order.
class FieldDecompressor {
 public:
  // Parses the stream header. `data` must stay alive while decompressing.
  static Result<std::unique_ptr<FieldDecompressor>> Open(
      std::span<const uint8_t> data);
  ~FieldDecompressor();

  FieldDecompressor(const FieldDecompressor&) = delete;
  FieldDecompressor& operator=(const FieldDecompressor&) = delete;

  size_t num_particles() const;
  double absolute_error_bound() const;
  const DecompressorStats& stats() const;

  // One entry per block frame, in stream order: where it sits, which method
  // produced it, and what it covers. Built from the O(#blocks) header scan
  // (no payload decoding) — the raw material for `mdz stats` and for
  // reconstructing the paper's method-over-time plots from an archive.
  struct BlockInfo {
    size_t offset = 0;          // byte offset of the framed block
    size_t frame_bytes = 0;     // framing varint + payload
    size_t first_snapshot = 0;  // global index of its first snapshot
    size_t snapshots = 0;
    Method method = Method::kVQ;
  };
  Result<std::vector<BlockInfo>> ListBlocks();

  // Decodes the next snapshot into *out (resized to num_particles).
  // Returns false (with *out untouched) when the stream is exhausted.
  Result<bool> Next(std::vector<double>* out);

  // Total snapshots in the stream (scans the block index lazily; O(#blocks)
  // the first time, O(1) after).
  Result<size_t> CountSnapshots();

  // Random access: positions the stream so the next Next() returns snapshot
  // `index`. Only the containing buffer (plus, once, the stream's first
  // buffer, which seeds the MT predictor state) is decoded — decompressing
  // snapshot k does not require decompressing the k-1 preceding snapshots
  // (paper Section VI: VQ/buffer independence).
  Status SeekToSnapshot(size_t index);

  // Decodes the whole stream in one shot, decoding blocks concurrently on
  // `pool` when the stream has no TI blocks (TI chains each buffer on the
  // previous one, which forces sequential decoding). Output is identical to
  // draining Next(). Resets any in-progress sequential read and leaves the
  // decompressor positioned at end of stream. A null or serial pool decodes
  // sequentially.
  Result<std::vector<std::vector<double>>> DecodeAll(ThreadPool* pool = nullptr);

 private:
  FieldDecompressor();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Parsed form of the fixed field-stream header (docs/FORMAT.md Section 1).
// `header_bytes` is the offset of the first block frame. Exposed so container
// layers (src/archive) can split a stream into self-contained frames and
// re-derive the codec parameters without instantiating a decompressor.
struct FieldStreamHeader {
  size_t num_particles = 0;
  double abs_eb = 0.0;
  uint32_t quantization_scale = 0;
  CodeLayout layout = CodeLayout::kParticleMajor;
  size_t header_bytes = 0;  // offset of the first block frame
};

// Validates and parses the stream header at the start of `data`. Returns
// Corruption for anything that is not a well-formed MDZF version-1 header.
Result<FieldStreamHeader> ParseFieldStreamHeader(std::span<const uint8_t> data);

// --- One-shot helpers -------------------------------------------------------

// Compresses a whole field given as M snapshots of N values.
Result<std::vector<uint8_t>> CompressField(
    const std::vector<std::vector<double>>& snapshots, const Options& options);

Result<std::vector<std::vector<double>>> DecompressField(
    std::span<const uint8_t> data);

// Compresses all three axes of a trajectory (independent streams, as in the
// paper where per-axis results are reported).
struct CompressedTrajectory {
  std::array<std::vector<uint8_t>, 3> axes;

  size_t total_bytes() const {
    return axes[0].size() + axes[1].size() + axes[2].size();
  }
};

Result<CompressedTrajectory> CompressTrajectory(const Trajectory& trajectory,
                                                const Options& options);

Result<Trajectory> DecompressTrajectory(const CompressedTrajectory& compressed);

}  // namespace mdz::core

#endif  // MDZ_CORE_MDZ_H_
